lib/click/el_market.ml: Array El_stateful El_util Vdp_bitvec Vdp_ir
