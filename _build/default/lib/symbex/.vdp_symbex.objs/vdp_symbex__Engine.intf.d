lib/symbex/engine.mli: Format Sstate Vdp_ir Vdp_smt
