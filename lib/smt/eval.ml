(** Evaluate a term to a concrete value under a model.

    Total on closed-under-model terms: unassigned variables take the
    model's defaults (zero / false). Used both by the concrete packet
    interpreter indirectly and by the solver to double-check every model
    it emits against the original (pre-bit-blasting) constraints.

    The [~strict:true] variants instead raise {!Unbound} on the first
    variable the model does not assign — the witness-replay machinery
    uses them to distinguish "this condition is definitely true/false
    under the observed concrete state" from "this condition mentions
    state we cannot observe" (havocked loop bytes, unperformed reads). *)

module B = Vdp_bitvec.Bitvec

exception Unbound of string

let eval_gen ~strict (m : Model.t) (t : Term.t) : Value.t =
  let memo : (int, Value.t) Hashtbl.t = Hashtbl.create 64 in
  let rec go (t : Term.t) : Value.t =
    match Hashtbl.find_opt memo t.id with
    | Some v -> v
    | None ->
      let v = compute t in
      Hashtbl.add memo t.id v;
      v
  and bool_of t = Value.to_bool (go t)
  and bv_of t = Value.to_bv (go t)
  and compute (t : Term.t) : Value.t =
    match t.node with
    | True -> Vbool true
    | False -> Vbool false
    | Bool_var s ->
      Vbool
        (match Model.bool_opt m s with
        | Some b -> b
        | None -> if strict then raise (Unbound s) else false)
    | Not a -> Vbool (not (bool_of a))
    | And ts -> Vbool (Array.for_all bool_of ts)
    | Or ts -> Vbool (Array.exists bool_of ts)
    | Eq (a, b) -> Vbool (Value.equal (go a) (go b))
    | Ite (c, a, b) -> if bool_of c then go a else go b
    | Bv_const v -> Vbv v
    | Bv_var (s, w) ->
      Vbv
        (match Model.bv_opt m s with
        | Some v -> v
        | None -> if strict then raise (Unbound s) else B.zero w)
    | Bv_bin (op, a, b) ->
      let va = bv_of a and vb = bv_of b in
      Vbv
        (match op with
        | Badd -> B.add va vb
        | Bsub -> B.sub va vb
        | Bmul -> B.mul va vb
        | Budiv -> B.udiv va vb
        | Burem -> B.urem va vb
        | Bsdiv -> B.sdiv va vb
        | Bsrem -> B.srem va vb
        | Band -> B.logand va vb
        | Bor -> B.logor va vb
        | Bxor -> B.logxor va vb
        | Bshl -> B.shl_bv va vb
        | Blshr -> B.lshr_bv va vb
        | Bashr -> B.ashr_bv va vb)
    | Bv_not a -> Vbv (B.lognot (bv_of a))
    | Bv_neg a -> Vbv (B.neg (bv_of a))
    | Bv_cmp (op, a, b) ->
      let va = bv_of a and vb = bv_of b in
      Vbool
        (match op with
        | Ult -> B.ult va vb
        | Ule -> B.ule va vb
        | Slt -> B.slt va vb
        | Sle -> B.sle va vb)
    | Extract (hi, lo, a) -> Vbv (B.extract ~hi ~lo (bv_of a))
    | Concat (a, b) -> Vbv (B.concat (bv_of a) (bv_of b))
    | Zext (w, a) -> Vbv (B.zext w (bv_of a))
    | Sext (w, a) -> Vbv (B.sext w (bv_of a))
  in
  go t

let eval m t = eval_gen ~strict:false m t
let eval_bool m t = Value.to_bool (eval m t)
let eval_bv m t = Value.to_bv (eval m t)

let eval_strict m t = eval_gen ~strict:true m t
let eval_bool_strict m t = Value.to_bool (eval_strict m t)
let eval_bv_strict m t = Value.to_bv (eval_strict m t)
