(* Verdict-level proof certificates for [Unsat] answers.

   [Vdp_smt.Solver] reports "Unsat" for a suspect-path query after a
   pipeline of smart-constructor folding, word-level preprocessing,
   interval refutation, query caching and bit-blasting onto the CDCL
   core. A certificate records *how* a given refutation was discharged,
   in a form small independent code can re-check:

   - {b folded}: the raw conjunction's smart-constructor normal form is
     literally [false]. Checking is [Term.is_false].
   - {b interval}: the producer's interval analysis emptied some
     subject's range. The explanation is replayed by
     {!Interval_check}, which re-derives every bound from the atoms
     themselves and demands each atom occur in the refuted
     conjunction — the raw one, or the preprocessed residual (in which
     case the elimination trace is replayed first, exactly as for a
     DRAT certificate).
   - {b drat}: a DRAT proof over the bit-blasted CNF of the
     (preprocessed or raw) conjunction, validated by the independent
     forward checker in {!Drat}. When the CNF is of the *preprocessed*
     residual, the preprocessing itself is replayed from the recorded
     elimination trace — every stage's side conditions re-checked with
     this module's own pattern matching — and the replayed residual
     must be hash-cons-identical to the certified one, so the CNF
     provably corresponds to the original query.
   - {b cached}: provenance — the same raw conjunction was already
     certified; the reference is to that checked certificate.

   Production always re-solves in a fresh, assumption-free,
   proof-logging solver instance (the incremental front end answers
   under selector assumptions, which never yields a standalone empty
   clause), so certification cost is isolated from solving cost and
   measured separately; [bench e10] reports the overhead.

   Trusted base: [Term]'s hash-consed smart constructors and
   [substitute], [Preprocess.split_list]/[resplit], [Eval], [Bitblast]
   (CNF correspondence), and this library itself. The DRAT checker and
   the interval replay deliberately share no algorithmic code with the
   solver that produced the answers. *)

module T = Vdp_smt.Term
module P = Vdp_smt.Preprocess
module S = Vdp_smt.Solver
module Sat = Vdp_smt.Sat
module Bitblast = Vdp_smt.Bitblast
module I = Vdp_smt.Interval
module Eval = Vdp_smt.Eval
module Model = Vdp_smt.Model

type drat_payload = {
  nvars : int;  (** SAT variables in the certifying instance *)
  cnf : int list list;  (** problem clauses as asserted, oldest first *)
  steps : Drat.step list;  (** the proof trace, oldest first *)
  deletions : int;
      (** the producing solver's own deletion counters (learned +
          problem); cross-checked against the trace's delete steps.
          Always 0 for backward-trimmed proofs, which keep no deletions *)
  residual : T.t list;  (** the refuted conjunction *)
  blasted : T.t list option;
      (** when [Some], the CNF encodes only this multiset-subset of
          [residual] (an unsat core reported by the answering solver);
          refuting a subset of a conjunction refutes the conjunction.
          [None] means the whole residual was blasted *)
  untrimmed : int;
      (** clause additions in the forward proof log before backward
          trimming ([steps] holds the trimmed count) *)
  trace : P.trace_step list;
      (** elimination script from the raw query to [residual]; empty
          when [preprocessed] is false *)
  preprocessed : bool;
}

type interval_payload = {
  i_ex : I.explanation;
  i_residual : T.t list;  (** the conjunction the explanation refutes *)
  i_trace : P.trace_step list;  (** empty unless [i_preprocessed] *)
  i_preprocessed : bool;
}

type reason =
  | R_folded
  | R_interval of interval_payload
  | R_drat of drat_payload
  | R_cached of int
      (** hash-consed id of an already-certified raw conjunction *)

type t = {
  query : T.t list;  (** the refuted conjunction, as the caller gave it *)
  key : T.t;  (** [Term.and_ query] *)
  reason : reason;
}

let kind (c : t) =
  match c.reason with
  | R_folded -> "folded"
  | R_interval p -> if p.i_preprocessed then "interval-pre" else "interval"
  | R_drat p ->
    if p.blasted <> None then "drat-core"
    else if p.preprocessed then "drat"
    else "drat-raw"
  | R_cached _ -> "cached"

let error fmt = Printf.ksprintf (fun s -> Error s) fmt
let ( let* ) = Result.bind
let now () = Unix.gettimeofday ()

(* {1 Elimination-trace replay}

   Re-run the preprocessing stages recorded in a payload's trace,
   starting from the raw query, with independently re-checked side
   conditions. Only the definition check is load-bearing for the Unsat
   direction (substituting [rhs] for [x] is refutation-sound only if
   some conjunct really forces [x = rhs]); dropping conjuncts —
   unconstrained elimination, slicing — can only relax a formula, so
   those checks are an audit of the producer rather than a soundness
   requirement. We check everything anyway. *)

let var_named (t : T.t) n =
  match t.T.node with
  | T.Bv_var (m, _) | T.Bool_var m -> String.equal m n
  | _ -> false

let mentions n t = List.exists (fun (m, _) -> String.equal m n) (T.free_vars t)

(* Remove one occurrence of [c] (by hash-consed identity) from [set]. *)
let remove_one c set =
  let rec go acc = function
    | [] -> None
    | x :: rest ->
      if T.equal x c then Some (List.rev_append acc rest) else go (x :: acc) rest
  in
  go [] set

(* Does conjunct [c] force [n = rhs]? *)
let defines n rhs (c : T.t) =
  match c.T.node with
  | T.Eq (a, b) ->
    (var_named a n && T.equal b rhs) || (var_named b n && T.equal a rhs)
  | T.Bool_var m -> String.equal m n && T.is_true rhs
  | T.Not inner -> (
    match inner.T.node with
    | T.Bool_var m -> String.equal m n && T.is_false rhs
    | _ -> false)
  | _ -> false

(* Is [c] satisfiable for every value of everything but [n] (given [n]
   occurs nowhere else)? Mirrors [Preprocess.as_unconstrained]. *)
let unconstrained_shape (b : P.binding) (c : T.t) =
  match (b, c.T.node) with
  | P.Diseq (n, t), T.Not inner -> (
    match inner.T.node with
    | T.Eq (x, y) ->
      ((var_named x n && T.equal y t) || (var_named y n && T.equal x t))
      && not (mentions n t)
    | _ -> false)
  | P.Def (n, rhs), T.Bv_cmp (T.Ule, x, y) ->
    (var_named x n && (not (mentions n y))
     && T.equal rhs (T.bv_int ~width:(T.width x) 0))
    || (var_named y n && (not (mentions n x)) && T.equal rhs x)
  | _ -> false

let replay_trace (query : T.t list) (trace : P.trace_step list)
    (residual : T.t list) : (unit, string) result =
  (* Occurs-check memoized across the whole replay (subterms recur from
     step to step) with early exit — the replay's hot path is deciding
     which conjuncts a definition touches, and most touch nothing. *)
  let occ_tbl = Hashtbl.create 512 in
  let rec occurs n (t : T.t) =
    match t.T.node with
    | T.Bool_var s | T.Bv_var (s, _) -> String.equal s n
    | _ -> (
      match Hashtbl.find_opt occ_tbl (t.T.id, n) with
      | Some b -> b
      | None ->
        let b = List.exists (occurs n) (T.children t) in
        Hashtbl.add occ_tbl (t.T.id, n) b;
        b)
  in
  let step set = function
    | P.T_def (n, rhs, c) -> (
      match remove_one c set with
      | None -> error "definition conjunct for %s is not in the set" n
      | Some rest ->
        if not (defines n rhs c) then
          error "conjunct does not define %s as recorded" n
        else if occurs n rhs then error "definition of %s mentions itself" n
        else
          (* One memo across the conjuncts: they share subterms, and
             conjuncts that never mention [n] are kept as-is rather
             than rebuilt. *)
          let memo = Hashtbl.create 64 in
          let subst v _ = if String.equal v n then Some rhs else None in
          Ok
            (P.resplit
               (List.map
                  (fun t ->
                    if occurs n t then T.substitute_vars ~memo subst t else t)
                  rest)))
    | P.T_unconstrained (b, c) -> (
      let n = match b with P.Def (n, _) | P.Diseq (n, _) -> n in
      match remove_one c set with
      | None -> error "unconstrained conjunct for %s is not in the set" n
      | Some rest ->
        if List.exists (occurs n) rest then
          error "%s still occurs elsewhere; elimination unsound" n
        else if not (unconstrained_shape b c) then
          error "unconstrained elimination of %s has an unexpected shape" n
        else Ok rest)
    | P.T_slice dropped ->
      let defaults = Model.create () in
      let rec drop set = function
        | [] -> Ok set
        | d :: rest -> (
          match remove_one d set with
          | None -> error "sliced conjunct is not in the set"
          | Some set' ->
            if not (Eval.eval_bool defaults d) then
              error "sliced conjunct does not hold under defaults"
            else drop set' rest)
      in
      let* rest = drop set dropped in
      (* The dropped component must share no variable with what
         remains — otherwise it was not a component. *)
      let dropped_vars =
        List.concat_map (fun d -> List.map fst (T.free_vars d)) dropped
      in
      if List.exists (fun n -> List.exists (occurs n) rest) dropped_vars then
        error "sliced component shares variables with the residual"
      else Ok rest
  in
  let rec go set = function
    | [] ->
      if T.equal (T.and_ set) (T.and_ residual) then Ok ()
      else error "replayed residual differs from the certified one"
    | st :: rest ->
      let* set = step set st in
      go set rest
  in
  go (P.resplit (P.split_list query)) trace

(* {1 Checking} *)

let prof_replay = ref 0.
let prof_drat = ref 0.
let prof_blast = ref 0.
let prof_sat = ref 0.
let prof_setup = ref 0.
let prof_trim = ref 0.
let prof_interval = ref 0.
let prof_core_certs = ref 0
let prof_full_certs = ref 0
let prof_cone_clauses = ref 0

let () =
  at_exit (fun () ->
      if Sys.getenv_opt "VDP_CERT_PROF" <> None then
        Printf.eprintf
          "CERT_PROF replay %.3fs drat %.3fs blast %.3fs sat %.3fs setup %.3fs trim %.3fs interval %.3fs core/full %d/%d cone_clauses %d\n%!"
          !prof_replay !prof_drat !prof_blast !prof_sat !prof_setup !prof_trim
          !prof_interval !prof_core_certs !prof_full_certs !prof_cone_clauses)

let timed acc f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  acc := !acc +. (Unix.gettimeofday () -. t0);
  r

let check ?(lookup = fun _ -> false) (cert : t) : (unit, string) result =
  match cert.reason with
  | R_folded ->
    if T.is_false cert.key then Ok ()
    else error "conjunction does not fold to false"
  | R_interval p ->
    let* () =
      if p.i_preprocessed then replay_trace cert.query p.i_trace p.i_residual
      else if T.equal (T.and_ p.i_residual) cert.key then Ok ()
      else error "interval residual differs from the query conjunction"
    in
    Interval_check.check p.i_residual p.i_ex
  | R_cached id ->
    if lookup id then Ok ()
    else error "no previously checked certificate for this conjunction"
  | R_drat p ->
    if p.residual = [] then error "empty residual certifies nothing"
    else
      let* () =
        if p.preprocessed then
          timed prof_replay (fun () -> replay_trace cert.query p.trace p.residual)
        else if T.equal (T.and_ p.residual) cert.key then Ok ()
        else error "raw residual differs from the query conjunction"
      in
      let* () =
        (* A core certificate refutes a subset of the residual; verify
           the subset relation (multiset inclusion by hash-consed
           identity) so the CNF provably talks about conjuncts of the
           residual the trace replay just vouched for. *)
        match p.blasted with
        | None -> Ok ()
        | Some [] -> error "empty unsat core certifies nothing"
        | Some sub ->
          let rec covered set = function
            | [] -> Ok ()
            | c :: rest -> (
              match remove_one c set with
              | None -> error "core conjunct is not part of the residual"
              | Some set' -> covered set' rest)
          in
          covered p.residual sub
      in
      timed prof_drat (fun () ->
          Drat.check ~expected_deletions:p.deletions ~nvars:p.nvars ~cnf:p.cnf
            p.steps)

(* {1 Production} *)

(* A long-lived provenance-recording blast context shared across
   certificate productions. Suspect paths through one pipeline share
   most of their conjuncts, so a per-certificate fresh blast re-encodes
   the same circuits hundreds of times; the shared context encodes each
   gate once and {!blast_unsat} copies only the clause cone of its own
   roots into a fresh proof-logging solver. The shared instance never
   receives root unit clauses — it is a gate store, not a solver — and
   it carries its own lock because production runs outside the
   collector's. *)
type shared_blast = { sb_ctx : Bitblast.ctx; sb_lock : Mutex.t }

let create_shared_blast () =
  {
    sb_ctx = Bitblast.create ~track:true ~provenance:true ();
    sb_lock = Mutex.create ();
  }

(* Re-answer [conjuncts] on the persistent shared instance under a
   throwaway selector assumption and harvest the conflict cone's tags
   as an unsat core. Used when the answering solver supplied no core
   (flat mode, a query-cache hit): the persistent instance keeps gate
   encodings and learned clauses across certificates, so this discovery
   solve costs a fraction of a standalone re-solve, and the core it
   yields shrinks the standalone proof solve that follows. The core is
   only a hint — {!check} verifies the subset relation and the DRAT
   proof regardless — so a wrong answer here degrades cost, never
   soundness. *)
let discover_core ?max_conflicts sb (conjuncts : T.t list) : T.t list option =
  Mutex.lock sb.sb_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock sb.sb_lock)
    (fun () ->
      let sat = Bitblast.sat sb.sb_ctx in
      let selector = Bitblast.fresh sb.sb_ctx in
      List.iteri
        (fun i c -> Bitblast.assert_under ~tag:i sb.sb_ctx ~selector c)
        conjuncts;
      let r = Sat.solve ?max_conflicts ~assumptions:[ selector ] sat in
      let core =
        match r with
        | Sat.Unsat ->
          let arr = Array.of_list conjuncts in
          let sub =
            List.filter_map
              (fun i ->
                if i >= 0 && i < Array.length arr then Some arr.(i) else None)
              (List.sort_uniq compare (Sat.last_cone_tags sat))
          in
          if sub = [] then None else Some sub
        | Sat.Sat | Sat.Unknown -> None
      in
      (* Permanently retire the selector: this query's root clauses
         become satisfied at level 0 and never burden later solves. *)
      Sat.add_clause sat [ Sat.lit_not selector ];
      core)

(* Bit-blast into a fresh proof-logging, antecedent-tracking instance
   and re-solve without assumptions. [blasted], when given, is the
   subset of [pre.conjuncts] actually asserted (an unsat core from the
   answering solver); the payload records it so {!check} can verify the
   subset relation. The forward proof is backward-trimmed: only the
   CNF clauses and derivation steps inside the dependency cone of the
   empty clause are kept, with no deletions — every kept derived clause
   is RUP with respect to the kept clauses before it, so the trimmed
   trace still checks as forward DRAT with 0 expected deletions.

   With [?shared], the conjuncts are encoded in (or found already
   encoded in) the shared gate store, and only their clause cone is
   replayed into the fresh instance, under the same variable numbering
   (the fresh instance pre-allocates every shared variable). The
   payload's CNF and proof still both come from the fresh instance's
   own log, so the certificate stays self-contained: sharing cuts
   encoding work, not the evidence. *)
let blast_unsat ?shared ?max_conflicts ?blasted ~preprocessed
    (pre : P.result) : (drat_payload, string) result =
  (* No core from the answering solver (flat mode, cache hits): try to
     discover one on the persistent shared instance before paying for a
     full-residual standalone proof solve. *)
  let blasted =
    match (blasted, shared) with
    | None, Some sb -> discover_core ?max_conflicts sb pre.P.conjuncts
    | b, _ -> b
  in
  let to_blast = match blasted with Some sub -> sub | None -> pre.P.conjuncts in
  let sat =
    match shared with
    | None ->
      let bb = Bitblast.create ~proof:true ~track:true () in
      timed prof_blast (fun () ->
          List.iter (fun c -> Bitblast.assert_term bb c) to_blast);
      Bitblast.sat bb
    | Some sb ->
      let roots, cone =
        timed prof_blast (fun () ->
            Mutex.lock sb.sb_lock;
            Fun.protect
              ~finally:(fun () -> Mutex.unlock sb.sb_lock)
              (fun () ->
                let roots =
                  List.map (Bitblast.lit_of_bool sb.sb_ctx) to_blast
                in
                (roots, Bitblast.clause_cone sb.sb_ctx roots)))
      in
      (* Renumber the cone compactly. The shared store numbers gates
         across every certificate it has ever served; reusing that
         numbering would make each fresh instance (and each payload's
         [nvars]) carry the whole history rather than its own cone. *)
      let map = Hashtbl.create 256 in
      let next = ref 0 in
      let mvar v =
        match Hashtbl.find_opt map v with
        | Some m -> m
        | None ->
          let m = !next in
          incr next;
          Hashtbl.add map v m;
          m
      in
      let mlit l = Sat.lit (mvar (Sat.lit_var l)) (Sat.lit_is_pos l) in
      (match blasted with
      | Some _ -> incr prof_core_certs
      | None -> incr prof_full_certs);
      prof_cone_clauses := !prof_cone_clauses + List.length cone;
      timed prof_setup (fun () ->
          let tl = mlit (Bitblast.const_lit sb.sb_ctx true) in
          let cone = List.map (List.map mlit) cone in
          let roots = List.map mlit roots in
          let sat = Sat.create () in
          Sat.enable_proof sat;
          Sat.enable_tracking sat;
          for _ = 1 to !next do
            ignore (Sat.new_var sat)
          done;
          Sat.add_clause sat [ tl ];
          List.iter (fun c -> Sat.add_clause sat c) cone;
          List.iter (fun l -> Sat.add_clause sat [ l ]) roots;
          sat)
  in
  match timed prof_sat (fun () -> Sat.solve ?max_conflicts sat) with
  | Sat.Unsat ->
    let untrimmed, _ = Sat.proof_sizes sat in
    let cnf, steps, deletions =
      match timed prof_trim (fun () -> Sat.trimmed_proof sat) with
      | Some (cnf, adds) ->
        ( cnf,
          List.map
            (function
              | Sat.P_add lits -> Drat.Add lits
              | Sat.P_delete _ -> assert false)
            adds,
          0 )
      | None ->
        (* Tracking captured no cone (cannot happen on an
           assumption-free Unsat, but degrade to the forward log). *)
        ( Sat.proof_cnf sat,
          List.map
            (function
              | Sat.P_add lits -> Drat.Add lits
              | Sat.P_delete lits -> Drat.Delete lits)
            (Sat.proof_steps sat),
          Sat.num_learned_deleted sat + Sat.num_problem_deleted sat )
    in
    Ok
      {
        nvars = Sat.num_vars sat;
        cnf;
        steps;
        deletions;
        residual = pre.P.conjuncts;
        blasted;
        untrimmed;
        trace = pre.P.trace;
        preprocessed;
      }
  | Sat.Sat ->
    if blasted = None then error "certifying re-solve answered Sat"
    else error "unsat core re-solve answered Sat"
  | Sat.Unknown -> error "certifying re-solve exhausted its conflict budget"

(* Produce a certificate that has already passed {!check}, walking the
   fallback chain: folded, interval replay, a proof-cache hit (a
   previously checked trimmed proof over the same preprocessed key,
   re-checked in full against this query's own elimination trace — a
   tampered cached proof is rejected, never trusted), DRAT over the
   answering solver's unsat core, DRAT over the preprocessed residual,
   DRAT over the raw conjunction. Each candidate is validated before
   acceptance, so a producer/checker divergence (e.g. the replayed
   interval analysis is weaker than the solver's, or a stale core no
   longer refutes) degrades to the next, more expensive certificate
   instead of a bogus one.

   [pre] lets the caller hand over the preprocessing result of the
   answering solve, so the certified residual — and the proof-cache
   key — are exactly the ones the query cache saw, and the pass is not
   re-run. [core] is the answering solver's unsat core over
   [pre.conjuncts] (see [Solver.last_core]). *)

let produce ?(preprocess = true) ?max_conflicts ?shared ?pre:pre0 ?core
    ?pcache_find ?pcache_store ?(pcache_hit = ref false)
    ?(solve_seconds = ref 0.) ?(check_seconds = ref 0.) (query : T.t list) :
    (t, string) result =
  let key = T.and_ query in
  let checked cert =
    let t0 = now () in
    let r = check cert in
    check_seconds := !check_seconds +. (now () -. t0);
    match r with Ok () -> Ok cert | Error e -> Error (kind cert ^ ": " ^ e)
  in
  let drat ?sb pre ?blasted ~preprocessed () =
    if T.is_true pre.P.key then
      error "preprocessing reduced the query to true; nothing to refute"
    else
      let t0 = now () in
      let r = blast_unsat ?shared:sb ?max_conflicts ?blasted ~preprocessed pre in
      solve_seconds := !solve_seconds +. (now () -. t0);
      let* payload = r in
      checked { query; key; reason = R_drat payload }
  in
  (* One preprocessing pass shared by every candidate that wants it. *)
  let pre =
    lazy (match pre0 with Some p -> p | None -> P.run query)
  in
  let interval conjs residual ~trace ~preprocessed () =
    match timed prof_interval (fun () -> I.explain (T.and_ conjs)) with
    | Some ex ->
      checked
        {
          query;
          key;
          reason =
            R_interval
              {
                i_ex = ex;
                i_residual = residual;
                i_trace = trace;
                i_preprocessed = preprocessed;
              };
        }
    | None -> error "interval: no explanation"
  in
  let candidates =
    [
      (fun () ->
        if T.is_false key then checked { query; key; reason = R_folded }
        else error "folded: conjunction is not literally false");
      (fun () -> interval query query ~trace:[] ~preprocessed:false ());
      (fun () ->
        if not preprocess then error "interval-pre: preprocessing disabled"
        else
          let p = Lazy.force pre in
          interval p.P.conjuncts p.P.conjuncts ~trace:p.P.trace
            ~preprocessed:true ());
      (fun () ->
        match pcache_find with
        | None -> error "pcache: no proof cache"
        | Some find ->
          if not preprocess then error "pcache: preprocessing disabled"
          else
            let p = Lazy.force pre in
            (match find p.P.key.T.id with
            | None -> error "pcache: miss"
            | Some payload -> (
              (* Same preprocessed key, so the cached residual's
                 conjunction is hash-cons-equal to this query's; swap in
                 this query's own elimination trace and re-check in
                 full. *)
              match
                checked
                  {
                    query;
                    key;
                    reason =
                      R_drat
                        { payload with trace = p.P.trace; preprocessed = true };
                  }
              with
              | Ok cert ->
                pcache_hit := true;
                Ok cert
              | Error e -> Error e)));
      (fun () ->
        match core with
        | None -> error "drat-core: no core from the answering solver"
        | Some [] -> error "drat-core: empty core"
        | Some sub ->
          if not preprocess then error "drat-core: preprocessing disabled"
          else drat ?sb:shared (Lazy.force pre) ~blasted:sub ~preprocessed:true ());
      (fun () ->
        if not preprocess then error "drat: preprocessing disabled"
        else drat ?sb:shared (Lazy.force pre) ~preprocessed:true ());
      (* Last-resort raw blast stays unshared on purpose: it must hold
         even if the shared gate store is somehow corrupted. *)
      (fun () -> drat (P.identity query) ~preprocessed:false ());
    ]
  in
  let rec walk errs = function
    | [] -> error "uncertified (%s)" (String.concat "; " (List.rev errs))
    | c :: rest -> (
      match c () with Ok cert -> Ok cert | Error e -> walk (e :: errs) rest)
  in
  let r = walk [] candidates in
  (* Remember freshly produced-and-checked preprocessed proofs under
     their preprocessed key for future queries with the same residual. *)
  (match (r, pcache_store) with
  | Ok { reason = R_drat payload; _ }, Some store
    when (not !pcache_hit) && payload.preprocessed ->
    store (Lazy.force pre).P.key.T.id payload
  | _ -> ());
  r

(* {1 Collector}

   Verifier-facing registry: certifies each refuted conjunction once,
   answers repeats by provenance, aggregates counters into a summary
   and into [Solver.stats] (so they ride the existing stats plumbing
   into reports and benchmark JSON). Thread-safe — parallel
   verification certifies from worker domains. *)

type summary = {
  mutable attempted : int;
  mutable certified : int;
  mutable failed : int;
  mutable folded : int;
  mutable interval : int;
  mutable drat : int;
  mutable cached : int;
  mutable pcache_hits : int;
      (** discharged by the proof cache: a previously checked trimmed
          proof over the same preprocessed key, re-checked per hit *)
  mutable proof_clauses : int;
  mutable proof_deletions : int;
  mutable trimmed_clauses : int;
      (** proof additions kept after backward trimming (sums [steps]) *)
  mutable untrimmed_clauses : int;
      (** proof additions in the forward logs before trimming *)
  mutable solve_seconds : float;
  mutable check_seconds : float;
  mutable failures : string list;  (** first few messages, oldest first *)
}

let empty_summary () =
  {
    attempted = 0;
    certified = 0;
    failed = 0;
    folded = 0;
    interval = 0;
    drat = 0;
    cached = 0;
    pcache_hits = 0;
    proof_clauses = 0;
    proof_deletions = 0;
    trimmed_clauses = 0;
    untrimmed_clauses = 0;
    solve_seconds = 0.;
    check_seconds = 0.;
    failures = [];
  }

type collector = {
  preprocess : bool;
  max_conflicts : int option;
  memo : (int, bool) Hashtbl.t;  (* raw key id -> certified? *)
  pcache : (int, drat_payload) Hashtbl.t;
      (* preprocessed key id -> checked trimmed proof; aligned with the
         query cache's key so solver cache hits become proof-cache hits *)
  shared : shared_blast;  (* gate store reused across productions *)
  sum : summary;
  lock : Mutex.t;
}

let create_collector ?(preprocess = true) ?max_conflicts () =
  {
    preprocess;
    max_conflicts;
    memo = Hashtbl.create 64;
    pcache = Hashtbl.create 64;
    shared = create_shared_blast ();
    sum = empty_summary ();
    lock = Mutex.create ();
  }

let locked col f =
  Mutex.lock col.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock col.lock) f

let max_kept_failures = 5

let record_failure col msg =
  if List.length col.sum.failures < max_kept_failures then
    col.sum.failures <- col.sum.failures @ [ msg ]

(* Account one fresh (non-provenance) result under the lock. *)
let record_fresh col outcome ~pcache_hit solve_s check_s =
  let s = col.sum and g = S.stats in
  s.attempted <- s.attempted + 1;
  g.S.cert_attempted <- g.S.cert_attempted + 1;
  s.solve_seconds <- s.solve_seconds +. solve_s;
  s.check_seconds <- s.check_seconds +. check_s;
  g.S.cert_solve_time <- g.S.cert_solve_time +. solve_s;
  g.S.cert_check_time <- g.S.cert_check_time +. check_s;
  match outcome with
  | Ok cert ->
    s.certified <- s.certified + 1;
    g.S.cert_checked <- g.S.cert_checked + 1;
    (match cert.reason with
    | R_folded ->
      s.folded <- s.folded + 1;
      g.S.cert_folded <- g.S.cert_folded + 1
    | R_interval _ ->
      s.interval <- s.interval + 1;
      g.S.cert_interval <- g.S.cert_interval + 1
    | R_drat p ->
      s.drat <- s.drat + 1;
      g.S.cert_drat <- g.S.cert_drat + 1;
      if pcache_hit then begin
        s.pcache_hits <- s.pcache_hits + 1;
        g.S.cert_pcache_hits <- g.S.cert_pcache_hits + 1
      end;
      let adds =
        List.length
          (List.filter (function Drat.Add _ -> true | _ -> false) p.steps)
      in
      let dels = p.deletions in
      s.proof_clauses <- s.proof_clauses + adds;
      s.proof_deletions <- s.proof_deletions + dels;
      g.S.cert_proof_clauses <- g.S.cert_proof_clauses + adds;
      g.S.cert_proof_deletions <- g.S.cert_proof_deletions + dels;
      if not pcache_hit then begin
        (* Trimming effectiveness over freshly produced proofs only
           (a cache hit re-checks an already-counted proof). *)
        s.trimmed_clauses <- s.trimmed_clauses + adds;
        s.untrimmed_clauses <- s.untrimmed_clauses + p.untrimmed;
        g.S.cert_trimmed_clauses <- g.S.cert_trimmed_clauses + adds;
        g.S.cert_untrimmed_clauses <- g.S.cert_untrimmed_clauses + p.untrimmed
      end
    | R_cached _ -> ())
  | Error msg ->
    s.failed <- s.failed + 1;
    g.S.cert_failed <- g.S.cert_failed + 1;
    record_failure col msg

(* Account a provenance hit under the lock. *)
let record_cached col ok =
  let s = col.sum and g = S.stats in
  s.attempted <- s.attempted + 1;
  g.S.cert_attempted <- g.S.cert_attempted + 1;
  if ok then begin
    s.certified <- s.certified + 1;
    s.cached <- s.cached + 1;
    g.S.cert_checked <- g.S.cert_checked + 1;
    g.S.cert_cached <- g.S.cert_cached + 1
  end
  else begin
    s.failed <- s.failed + 1;
    g.S.cert_failed <- g.S.cert_failed + 1
  end

(* Certify a refuted conjunction. Returns the checked certificate —
   [R_cached] when this exact raw conjunction was certified before —
   or the producer/checker failure chain. [pre] and [core] come from
   the answering solver when available (see {!Vdp_smt.Solver.last_pre}
   and [last_core]): they let the producer skip re-preprocessing, blast
   only the unsat core, and hit the proof cache on the same key the
   query cache used. *)
let certify_refutation ?pre ?core col (query : T.t list) : (t, string) result =
  let key = T.and_ query in
  let prior = locked col (fun () -> Hashtbl.find_opt col.memo key.T.id) in
  match prior with
  | Some ok ->
    locked col (fun () -> record_cached col ok);
    if ok then Ok { query; key; reason = R_cached key.T.id }
    else error "previously failed to certify this conjunction"
  | None ->
    let solve_s = ref 0. and check_s = ref 0. in
    let pcache_hit = ref false in
    let pcache_find id = locked col (fun () -> Hashtbl.find_opt col.pcache id) in
    let pcache_store id payload =
      locked col (fun () -> Hashtbl.replace col.pcache id payload)
    in
    let outcome =
      produce ~preprocess:col.preprocess ?max_conflicts:col.max_conflicts
        ~shared:col.shared ?pre ?core ~pcache_find ~pcache_store ~pcache_hit
        ~solve_seconds:solve_s ~check_seconds:check_s query
    in
    locked col (fun () ->
        (* A racing domain may have finished the same key first; keep
           the first verdict, but account this (real) work too. *)
        if not (Hashtbl.mem col.memo key.T.id) then
          Hashtbl.replace col.memo key.T.id (Result.is_ok outcome);
        record_fresh col outcome ~pcache_hit:!pcache_hit !solve_s !check_s);
    outcome

let certified col query = Result.is_ok (certify_refutation col query)

let summary col : summary =
  locked col (fun () -> { col.sum with attempted = col.sum.attempted })
