examples/element_market.mli:
