(** RFC 1071 internet checksum. *)

(** One's-complement sum of 16-bit big-endian words over
    [data.[off .. off+len)]; odd trailing byte padded with zero. *)
let ones_sum ?(initial = 0) data off len =
  let sum = ref initial in
  let i = ref 0 in
  while !i + 1 < len do
    sum := !sum + (Char.code data.[off + !i] lsl 8)
           + Char.code data.[off + !i + 1];
    i := !i + 2
  done;
  if !i < len then sum := !sum + (Char.code data.[off + !i] lsl 8);
  while !sum > 0xffff do
    sum := (!sum land 0xffff) + (!sum lsr 16)
  done;
  !sum

(* Same, reading a [Bytes.t] in place — the packet-facing entry points
   below must not copy the whole buffer per call. *)
let ones_sum_bytes ?(initial = 0) data off len =
  let sum = ref initial in
  let i = ref 0 in
  while !i + 1 < len do
    sum := !sum + (Char.code (Bytes.get data (off + !i)) lsl 8)
           + Char.code (Bytes.get data (off + !i + 1));
    i := !i + 2
  done;
  if !i < len then
    sum := !sum + (Char.code (Bytes.get data (off + !i)) lsl 8);
  while !sum > 0xffff do
    sum := (!sum land 0xffff) + (!sum lsr 16)
  done;
  !sum

let checksum ?initial data off len = lnot (ones_sum ?initial data off len) land 0xffff

(** [valid data off len] — true iff the region checksums to zero
    (i.e. the embedded checksum field is correct). *)
let valid data off len = ones_sum data off len = 0xffff

(** Checksum of a packet region, offsets relative to the head. *)
let over_packet (p : Packet.t) off len =
  lnot (ones_sum_bytes p.Packet.buf (p.Packet.head + off) len) land 0xffff

let valid_packet (p : Packet.t) off len =
  ones_sum_bytes p.Packet.buf (p.Packet.head + off) len = 0xffff
