(** Concrete execution of IR programs — the dataplane's fast path.

    Mirrors the symbolic engine exactly: both implement the same
    semantics, including the crash conditions (out-of-window access,
    division by zero, failed assertions, headroom exhaustion). The
    instruction count this interpreter reports is the quantity bounded
    by the paper's "bounded execution" property. *)

module B = Vdp_bitvec.Bitvec
module P = Vdp_packet.Packet
open Types

type result = {
  outcome : outcome;
  instr_count : int;
}

exception Crash of crash

let default_budget = 1_000_000

let run ?(budget = default_budget) (prog : program) (stores : Stores.t)
    (pkt : P.t) : result =
  let regs =
    Array.map (fun w -> B.zero w) prog.reg_widths
  in
  let count = ref 0 in
  let value = function Const v -> v | Reg r -> regs.(r) in
  let value_int rv = B.to_int_trunc (value rv) in
  let bool_of rv = B.is_true (value rv) in
  let eval_rhs rhs =
    match rhs with
    | Move v -> value v
    | Unop (Not, v) -> B.lognot (value v)
    | Unop (Neg, v) -> B.neg (value v)
    | Binop (op, a, b) -> (
      let va = value a and vb = value b in
      match op with
      | Add -> B.add va vb
      | Sub -> B.sub va vb
      | Mul -> B.mul va vb
      | Udiv ->
        if B.is_zero vb then raise (Crash Div_by_zero) else B.udiv va vb
      | Urem ->
        if B.is_zero vb then raise (Crash Div_by_zero) else B.urem va vb
      | Sdiv ->
        if B.is_zero vb then raise (Crash Div_by_zero) else B.sdiv va vb
      | Srem ->
        if B.is_zero vb then raise (Crash Div_by_zero) else B.srem va vb
      | And -> B.logand va vb
      | Or -> B.logor va vb
      | Xor -> B.logxor va vb
      | Shl -> B.shl_bv va vb
      | Lshr -> B.lshr_bv va vb
      | Ashr -> B.ashr_bv va vb)
    | Cmp (op, a, b) -> (
      let va = value a and vb = value b in
      B.of_bool
        (match op with
        | Eq -> B.equal va vb
        | Ne -> not (B.equal va vb)
        | Ult -> B.ult va vb
        | Ule -> B.ule va vb
        | Slt -> B.slt va vb
        | Sle -> B.sle va vb))
    | Select (c, a, b) -> if bool_of c then value a else value b
    | Extract (hi, lo, v) -> B.extract ~hi ~lo (value v)
    | Concat (a, b) -> B.concat (value a) (value b)
    | Zext (w, v) -> B.zext w (value v)
    | Sext (w, v) -> B.sext w (value v)
  in
  let exec_instr ins =
    incr count;
    if !count > budget then raise (Crash Budget_exhausted);
    match ins with
    | Assign (r, rhs) ->
      let v = eval_rhs rhs in
      (* Validated programs cannot trip this; it catches hand-built IR
         with width bugs concretely, as the symbolic engine would. *)
      if B.width v <> prog.reg_widths.(r) then
        invalid_arg
          (Printf.sprintf
             "Interp: %s: assign produces width %d, r%d has width %d"
             prog.name (B.width v) r prog.reg_widths.(r));
      regs.(r) <- v
    | Load (r, off, n) -> (
      let o = value_int off in
      if o + n > P.length pkt then
        raise
          (Crash
             (Out_of_bounds
                (Printf.sprintf "load %d+%d > len %d" o n (P.length pkt))))
      else
        let bytes = String.init n (fun i -> Char.chr (P.get_u8 pkt (o + i))) in
        regs.(r) <- B.of_bytes_be bytes)
    | Store (off, v, n) -> (
      let o = value_int off in
      if o + n > P.length pkt then
        raise
          (Crash
             (Out_of_bounds
                (Printf.sprintf "store %d+%d > len %d" o n (P.length pkt))))
      else
        let bytes = B.to_bytes_be (value v) in
        String.iteri (fun i c -> P.set_u8 pkt (o + i) (Char.code c)) bytes)
    | Load_len r -> regs.(r) <- B.of_int ~width:16 (P.length pkt)
    | Pull n ->
      if n > P.length pkt then
        raise (Crash (Out_of_bounds (Printf.sprintf "pull %d" n)))
      else P.pull pkt n
    | Push n -> (
      try P.push pkt n with P.Out_of_bounds _ -> raise (Crash Headroom_exhausted))
    | Take v ->
      let n = value_int v in
      if n > P.length pkt then
        raise (Crash (Out_of_bounds (Printf.sprintf "take %d" n)))
      else P.take pkt n
    | Meta_get (r, m) ->
      let v =
        match m with
        | Port -> pkt.P.port
        | Color -> pkt.P.color
        | W0 -> pkt.P.w0
        | W1 -> pkt.P.w1
      in
      regs.(r) <- B.of_int ~width:(meta_width m) v
    | Meta_set (m, v) -> (
      let n = value_int v in
      match m with
      | Port -> pkt.P.port <- n
      | Color -> pkt.P.color <- n
      | W0 -> pkt.P.w0 <- n
      | W1 -> pkt.P.w1 <- n)
    | Kv_read (r, name, key) -> regs.(r) <- Stores.read stores name (value key)
    | Kv_write (name, key, v) -> Stores.write stores name (value key) (value v)
    | Assert (c, msg) ->
      if not (bool_of c) then raise (Crash (Assert_failed msg))
  in
  let rec exec_block label =
    let blk = prog.blocks.(label) in
    List.iter exec_instr blk.instrs;
    incr count;
    if !count > budget then raise (Crash Budget_exhausted);
    match blk.term with
    | Goto l -> exec_block l
    | Branch (c, t, e) -> exec_block (if bool_of c then t else e)
    | Emit p -> Emitted p
    | Drop -> Dropped
    | Abort m -> raise (Crash (Aborted m))
  in
  match exec_block 0 with
  | outcome -> { outcome; instr_count = !count }
  | exception Crash c -> { outcome = Crashed c; instr_count = !count }
