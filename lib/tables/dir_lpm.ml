(** Array-based longest-prefix match in the DIR-16-8-8 style of
    Gupta–Lin–McKeown (the paper's argument for verifiable lookup
    structures: trade memory for plain array indexing).

    A first array of 2^16 slots is indexed by the top 16 address bits;
    prefixes longer than /16 spill into 256-slot second-level blocks
    (bits 15..8), and prefixes longer than /24 into 256-slot third-level
    blocks (bits 7..0). Every lookup is at most three array reads — no
    loops, no pointers to chase, trivially bounded — and the three
    levels mirror the lpm16/lpm24/lpm32 static stores of the
    [RadixIPLookup] element, which is differentially checked against
    this structure.

    Each occupied slot records the length of the prefix whose expansion
    filled it, so [insert] and [delete] are total in any order: a
    shorter prefix arriving after a longer one only overwrites slots
    still owned by an even shorter prefix, and deleting a route restores
    the next-longest covering route from the registry. *)

type level = {
  vals : int array;
      (** [> 0]: next hop + 1; [0]: no route; [< 0]: -(child block) - 1 *)
  lens : Bytes.t;  (** prefix length owning the slot; [0xff]: none *)
}

type t = {
  top : level;  (** 2^16 slots, address bits 31..16 *)
  mutable l2 : level array;  (** 256-slot blocks, address bits 15..8 *)
  mutable nl2 : int;
  mutable l3 : level array;  (** 256-slot blocks, address bits 7..0 *)
  mutable nl3 : int;
  routes : (int, int) Hashtbl.t;
      (** (masked prefix lsl 6) lor len -> next hop; the exact-match
          registry consulted for covering-prefix fallback on delete *)
}

let no_len = 0xff

let mk_level n = { vals = Array.make n 0; lens = Bytes.make n (Char.chr no_len) }

let create () =
  {
    top = mk_level 65536;
    l2 = [||];
    nl2 = 0;
    l3 = [||];
    nl3 = 0;
    routes = Hashtbl.create 1024;
  }

let mask32 len = if len = 0 then 0 else 0xffffffff lsl (32 - len) land 0xffffffff
let route_key prefix len = ((prefix land mask32 len) lsl 6) lor len
let slot_len lv i = Char.code (Bytes.unsafe_get lv.lens i)
let set_slot lv i v len =
  lv.vals.(i) <- v;
  Bytes.unsafe_set lv.lens i (Char.chr len)

let grow blocks n =
  if n = Array.length blocks then begin
    let arr = Array.make (max 4 (2 * n)) (mk_level 0) in
    Array.blit blocks 0 arr 0 n;
    arr
  end
  else blocks

(* Allocate a child block seeded with the slot's current route (value and
   owning prefix length), then turn the slot into a pointer. *)
let spill_slot t lv i ~l3 =
  let fill = lv.vals.(i) and flen = slot_len lv i in
  let b = mk_level 256 in
  if fill > 0 then begin
    Array.fill b.vals 0 256 fill;
    Bytes.fill b.lens 0 256 (Char.chr flen)
  end;
  let bi =
    if l3 then begin
      t.l3 <- grow t.l3 t.nl3;
      t.l3.(t.nl3) <- b;
      t.nl3 <- t.nl3 + 1;
      t.nl3 - 1
    end
    else begin
      t.l2 <- grow t.l2 t.nl2;
      t.l2.(t.nl2) <- b;
      t.nl2 <- t.nl2 + 1;
      t.nl2 - 1
    end
  in
  set_slot lv i (-bi - 1) no_len;
  b

let child_l2 t lv i =
  if lv.vals.(i) < 0 then t.l2.(-lv.vals.(i) - 1) else spill_slot t lv i ~l3:false

let child_l3 t lv i =
  if lv.vals.(i) < 0 then t.l3.(-lv.vals.(i) - 1) else spill_slot t lv i ~l3:true

(* Overwrite every slot of [lv] (descending through pointer slots, which
   in any block can only point into L3) whose owning prefix is no longer
   than [len] — i.e. everything a new [len] route legitimately shadows.
   This is the fix for the old fallback that only wrote empty slots and
   left shorter-prefix fills stale. *)
let rec flood t lv ~len v =
  for i = 0 to Array.length lv.vals - 1 do
    if lv.vals.(i) < 0 then flood t t.l3.(-lv.vals.(i) - 1) ~len v
    else begin
      let l = slot_len lv i in
      if l = no_len || l <= len then set_slot lv i v len
    end
  done

(* Write route [v]/[len] into slot [i] of [lv]; if the slot has spilled
   into a child block, flood the child instead. *)
let write_slot t lv i ~len v ~l3 =
  if lv.vals.(i) < 0 then
    let b = if l3 then t.l3.(-lv.vals.(i) - 1) else t.l2.(-lv.vals.(i) - 1) in
    flood t b ~len v
  else begin
    let l = slot_len lv i in
    if l = no_len || l <= len then set_slot lv i v len
  end

let insert t ~prefix ~len next_hop =
  if len < 0 || len > 32 then invalid_arg "Dir_lpm.insert: bad length";
  if next_hop < 0 then invalid_arg "Dir_lpm.insert: negative next hop";
  Hashtbl.replace t.routes (route_key prefix len) next_hop;
  let v = next_hop + 1 in
  if len <= 16 then begin
    let span = 1 lsl (16 - len) in
    let base = (prefix lsr 16) land 0xffff land lnot (span - 1) in
    for i = base to base + span - 1 do
      write_slot t t.top i ~len v ~l3:false
    done
  end
  else if len <= 24 then begin
    let b2 = child_l2 t t.top ((prefix lsr 16) land 0xffff) in
    let span = 1 lsl (24 - len) in
    let base = (prefix lsr 8) land 0xff land lnot (span - 1) in
    for i = base to base + span - 1 do
      write_slot t b2 i ~len v ~l3:true
    done
  end
  else begin
    let b2 = child_l2 t t.top ((prefix lsr 16) land 0xffff) in
    let b3 = child_l3 t b2 ((prefix lsr 8) land 0xff) in
    let span = 1 lsl (32 - len) in
    let base = prefix land 0xff land lnot (span - 1) in
    for i = base to base + span - 1 do
      let l = slot_len b3 i in
      if l = no_len || l <= len then set_slot b3 i v len
    done
  end

(* The longest registered route strictly shorter than [len] covering
   [prefix]: every slot in a deleted route's expansion cone shares its
   top [len] bits, so one fallback serves the whole cone. *)
let fallback t ~prefix ~len =
  let rec probe l =
    if l < 0 then (0, no_len)
    else
      match Hashtbl.find_opt t.routes (route_key prefix l) with
      | Some nh -> (nh + 1, l)
      | None -> probe (l - 1)
  in
  probe (len - 1)

(* Replace every slot owned by exactly [len] with the fallback route. *)
let rec unflood t lv ~len v flen =
  for i = 0 to Array.length lv.vals - 1 do
    if lv.vals.(i) < 0 then unflood t t.l3.(-lv.vals.(i) - 1) ~len v flen
    else if slot_len lv i = len then set_slot lv i v flen
  done

let erase_slot t lv i ~len v flen ~l3 =
  if lv.vals.(i) < 0 then
    let b = if l3 then t.l3.(-lv.vals.(i) - 1) else t.l2.(-lv.vals.(i) - 1) in
    unflood t b ~len v flen
  else if slot_len lv i = len then set_slot lv i v flen

let delete t ~prefix ~len =
  if len < 0 || len > 32 then invalid_arg "Dir_lpm.delete: bad length";
  let key = route_key prefix len in
  if not (Hashtbl.mem t.routes key) then false
  else begin
    Hashtbl.remove t.routes key;
    let v, flen = fallback t ~prefix ~len in
    if len <= 16 then begin
      let span = 1 lsl (16 - len) in
      let base = (prefix lsr 16) land 0xffff land lnot (span - 1) in
      for i = base to base + span - 1 do
        erase_slot t t.top i ~len v flen ~l3:false
      done
    end
    else if len <= 24 then begin
      let ti = (prefix lsr 16) land 0xffff in
      if t.top.vals.(ti) < 0 then begin
        let b2 = t.l2.(-t.top.vals.(ti) - 1) in
        let span = 1 lsl (24 - len) in
        let base = (prefix lsr 8) land 0xff land lnot (span - 1) in
        for i = base to base + span - 1 do
          erase_slot t b2 i ~len v flen ~l3:true
        done
      end
    end
    else begin
      let ti = (prefix lsr 16) land 0xffff in
      if t.top.vals.(ti) < 0 then begin
        let b2 = t.l2.(-t.top.vals.(ti) - 1) in
        let j = (prefix lsr 8) land 0xff in
        if b2.vals.(j) < 0 then begin
          let b3 = t.l3.(-b2.vals.(j) - 1) in
          let span = 1 lsl (32 - len) in
          let base = prefix land 0xff land lnot (span - 1) in
          for i = base to base + span - 1 do
            if slot_len b3 i = len then set_slot b3 i v flen
          done
        end
      end
    end;
    true
  end

let lookup t addr =
  let v = t.top.vals.((addr lsr 16) land 0xffff) in
  let v =
    if v >= 0 then v
    else begin
      let v2 = t.l2.(-v - 1).vals.((addr lsr 8) land 0xff) in
      if v2 >= 0 then v2 else t.l3.(-v2 - 1).vals.(addr land 0xff)
    end
  in
  if v = 0 then None else Some (v - 1)

let count t = Hashtbl.length t.routes

let of_routes routes =
  let t = create () in
  List.iter (fun (prefix, len, nh) -> insert t ~prefix ~len nh) routes;
  t

let memory_slots t = 65536 + (256 * (t.nl2 + t.nl3))
