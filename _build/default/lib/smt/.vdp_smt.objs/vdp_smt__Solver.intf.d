lib/smt/solver.mli: Format Model Term
