examples/quickstart.ml: Format Vdp_click Vdp_packet Vdp_verif
