(** Human-readable verification reports. *)

module P = Vdp_packet.Packet

let pp_violation fmt (v : Verifier.violation) =
  Format.fprintf fmt "@[<v2>violation at element '%s' (node %d): %a%s%s@,"
    v.Verifier.element v.Verifier.node Vdp_symbex.Engine.pp_outcome
    v.Verifier.outcome
    (if v.Verifier.confirmed then " [reproduced on the runtime]" else "")
    (if v.Verifier.stateful then " [depends on private state]" else "");
  (match v.Verifier.replayed with
  | Some r -> (
    (match r.Witness.status with
    | Witness.Confirmed -> ()
    | Witness.Unconfirmed why ->
      Format.fprintf fmt "replay did not reproduce it: %s@," why);
    match r.Witness.state with
    | [] -> ()
    | state ->
      Format.fprintf fmt "initial state loaded for the replay:@,";
      List.iter
        (fun (node, store, kvs) ->
          List.iter
            (fun (k, value) ->
              Format.fprintf fmt "  node %d %s[%s] = %s@," node store
                (Vdp_bitvec.Bitvec.to_string_hex k)
                (Vdp_bitvec.Bitvec.to_string_hex value))
            kvs)
        state)
  | None -> ());
  (match v.Verifier.witness with
  | Some pkt ->
    let shown =
      if P.length pkt <= 96 then pkt
      else begin
        let q = P.clone pkt in
        P.take q 96;
        q
      end
    in
    Format.fprintf fmt "witness packet (%d bytes%s):@,%s@," (P.length pkt)
      (if P.length pkt > 96 then ", first 96 shown" else "")
      (P.hex_dump shown)
  | None -> Format.fprintf fmt "no witness packet extracted@,");
  Format.fprintf fmt "@]"

let pp_verdict fmt = function
  | Verifier.Proved -> Format.pp_print_string fmt "PROVED"
  | Verifier.Violated vs ->
    Format.fprintf fmt "VIOLATED (%d counterexamples)" (List.length vs)
  | Verifier.Unknown why -> Format.fprintf fmt "UNKNOWN (%s)" why

let pp_stats fmt (s : Verifier.stats) =
  Format.fprintf fmt
    "%d elements (%d freshly summarised), %d segments, %d suspects; %d \
     composite states, %d solver checks (%d refuted, %d unknown); step1 \
     %.2fs, step2 %.2fs"
    s.Verifier.elements s.Verifier.unique_summaries s.Verifier.segments_total
    s.Verifier.suspects s.Verifier.composite_paths s.Verifier.suspect_checks
    s.Verifier.refuted s.Verifier.unknown_checks s.Verifier.step1_time
    s.Verifier.step2_time

(** Per-phase solver activity (typically a delta over one verification
    run — callers reset or snapshot {!Vdp_smt.Solver.stats}). *)
let pp_solver_stats fmt (s : Vdp_smt.Solver.stats) =
  let module SS = Vdp_smt.Solver in
  let gate_total = s.SS.gate_hits + s.SS.gate_misses in
  Format.fprintf fmt
    "solver: %d queries (%d folded by preprocessing, %d cache hits, %d \
     interval-refuted); %d conjuncts eliminated, %d sliced; %d SAT vars, %d \
     clauses, gate cache %d/%d hits (%.0f%%), %d learned clauses reduced; \
     preprocess %.2fs, bit-blast %.2fs, SAT %.2fs"
    s.SS.calls s.SS.folded s.SS.cache_hits s.SS.interval_refutations
    s.SS.eliminated_conjuncts s.SS.sliced_conjuncts s.SS.sat_vars
    s.SS.sat_clauses s.SS.gate_hits gate_total
    (if gate_total = 0 then 0.
     else 100. *. float_of_int s.SS.gate_hits /. float_of_int gate_total)
    s.SS.learned_deleted s.SS.preprocess_time s.SS.blast_time s.SS.sat_time;
  if s.SS.sched_spawned > 0 then
    Format.fprintf fmt
      "@,scheduler: %d tasks (%d executed, %d stolen); busy %.2fs, idle \
       %.2fs; durations <1ms:%d <10ms:%d <100ms:%d <1s:%d >=1s:%d"
      s.SS.sched_spawned s.SS.sched_executed s.SS.sched_stolen s.SS.sched_busy
      s.SS.sched_idle s.SS.sched_hist.(0) s.SS.sched_hist.(1)
      s.SS.sched_hist.(2) s.SS.sched_hist.(3) s.SS.sched_hist.(4)

(** Certification summary: how each refuted suspect-path query was
    discharged and whether the independent checkers accepted it. *)
let pp_cert_summary fmt (c : Vdp_cert.Certificate.summary) =
  let module C = Vdp_cert.Certificate in
  Format.fprintf fmt
    "certificates: %d/%d refutations certified (%d folded, %d interval, %d \
     DRAT, %d by provenance, %d proof-cache hits); %d proof clauses, %d \
     deletions; trimming kept %d of %d logged additions; re-solve %.2fs, \
     check %.2fs"
    c.C.certified c.C.attempted c.C.folded c.C.interval c.C.drat c.C.cached
    c.C.pcache_hits c.C.proof_clauses c.C.proof_deletions c.C.trimmed_clauses
    c.C.untrimmed_clauses c.C.solve_seconds c.C.check_seconds;
  if c.C.failed > 0 then begin
    Format.fprintf fmt "@,  %d UNCERTIFIED" c.C.failed;
    List.iter (fun m -> Format.fprintf fmt "@,    %s" m) c.C.failures
  end

let pp_cert_opt fmt = function
  | None -> ()
  | Some c -> Format.fprintf fmt "  %a@," pp_cert_summary c

let pp_report fmt (r : Verifier.report) =
  Format.fprintf fmt "@[<v>crash freedom: %a@,  %a@,%a" pp_verdict
    r.Verifier.verdict pp_stats r.Verifier.stats pp_cert_opt r.Verifier.cert;
  (match r.Verifier.verdict with
  | Verifier.Violated vs -> List.iter (pp_violation fmt) vs
  | _ -> ());
  Format.fprintf fmt "@]"

let pp_bound_report fmt (r : Verifier.bound_report) =
  Format.fprintf fmt "@[<v>bounded execution: ";
  (match r.Verifier.bound with
  | Some b ->
    Format.fprintf fmt "<= %d instructions per packet (%s)" b
      (if r.Verifier.exact then "exact maximum" else "upper bound")
  | None -> Format.fprintf fmt "no feasible path found");
  (match r.Verifier.measured with
  | Some m -> Format.fprintf fmt "; witness measured at %d instructions" m
  | None -> ());
  (match r.Verifier.b_replayed with
  | Some { Witness.status = Witness.Unconfirmed why; _ } ->
    Format.fprintf fmt "@,  replay did not reproduce the bound: %s" why
  | _ -> ());
  Format.fprintf fmt "@,  %a@,%a" pp_stats r.Verifier.b_stats pp_cert_opt
    r.Verifier.b_cert;
  (match r.Verifier.witness with
  | Some pkt ->
    let shown =
      if P.length pkt <= 96 then pkt
      else begin
        let q = P.clone pkt in
        P.take q 96;
        q
      end
    in
    Format.fprintf fmt "  witness packet (%d bytes%s):@,%s@," (P.length pkt)
      (if P.length pkt > 96 then ", first 96 shown" else "")
      (P.hex_dump shown)
  | None -> ());
  Format.fprintf fmt "@]"

let to_string pp v = Format.asprintf "%a" pp v
