lib/core/kvmodel.ml: List Printf String Vdp_bitvec Vdp_smt Vdp_symbex
