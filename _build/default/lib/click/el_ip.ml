(** IPv4 elements: CheckIPHeader, DecIPTTL, SetIPChecksum, IPGWOptions.

    All of them expect the IP header at offset 0 (i.e. after Strip(14)).
    CheckIPHeader is the safety anchor: downstream of its good port,
    [len >= total_len >= ihl * 4 >= 20] holds, which is what discharges
    the other elements' suspect out-of-bounds segments during pipeline
    composition. *)

module B = Vdp_bitvec.Bitvec
module Ir = Vdp_ir.Types
module Bld = Vdp_ir.Builder
open El_util

(** Port 0: valid IPv4 header. Port 1: malformed. Never crashes. *)
let check_ip_header () =
  let b = Bld.create ~name:"CheckIPHeader" in
  Bld.set_nports b 2;
  let len = Bld.load_len b in
  (* len >= 20 *)
  let min_ok = Bld.cmp b Ir.Ule (c16 20) (Ir.Reg len) in
  guard_or_port b (Ir.Reg min_ok) ~port:1;
  let b0 = Bld.load b ~off:(c16 0) ~n:1 in
  let version = Bld.assign b ~width:8 (Ir.Binop (Ir.Lshr, Ir.Reg b0, c8 4)) in
  let v4 = Bld.cmp b Ir.Eq (Ir.Reg version) (c8 4) in
  guard_or_port b (Ir.Reg v4) ~port:1;
  let ihl = Bld.assign b ~width:8 (Ir.Binop (Ir.And, Ir.Reg b0, c8 0xf)) in
  let ihl_ok = Bld.cmp b Ir.Ule (c8 5) (Ir.Reg ihl) in
  guard_or_port b (Ir.Reg ihl_ok) ~port:1;
  let ihl16 = Bld.zext b ~width:16 (Ir.Reg ihl) in
  let hlen =
    Bld.assign b ~width:16 (Ir.Binop (Ir.Shl, Ir.Reg ihl16, c16 2))
  in
  (* len >= hlen *)
  let hlen_ok = Bld.cmp b Ir.Ule (Ir.Reg hlen) (Ir.Reg len) in
  guard_or_port b (Ir.Reg hlen_ok) ~port:1;
  (* total_len sanity: hlen <= total_len <= len *)
  let total = Bld.load b ~off:(c16 2) ~n:2 in
  let t_lo = Bld.cmp b Ir.Ule (Ir.Reg hlen) (Ir.Reg total) in
  guard_or_port b (Ir.Reg t_lo) ~port:1;
  let t_hi = Bld.cmp b Ir.Ule (Ir.Reg total) (Ir.Reg len) in
  guard_or_port b (Ir.Reg t_hi) ~port:1;
  (* Header checksum must verify: the folded one's-complement sum over
     the header equals 0xffff. All loads are within [hlen] <= len. *)
  let sum = checksum_sum b ~hlen_rv:(Ir.Reg hlen) in
  let cks_ok = Bld.cmp b Ir.Eq (Ir.Reg sum) (c16 0xffff) in
  guard_or_port b (Ir.Reg cks_ok) ~port:1;
  Bld.term b (Ir.Emit 0);
  Bld.finish b

(** Port 0: TTL decremented, checksum incrementally patched (RFC 1624).
    Port 1: TTL expired (would become 0). In isolation the TTL load is a
    suspect out-of-bounds access; composition with CheckIPHeader
    discharges it. *)
let dec_ip_ttl () =
  let b = Bld.create ~name:"DecIPTTL" in
  Bld.set_nports b 2;
  let ttl = Bld.load b ~off:(c16 8) ~n:1 in
  let alive = Bld.cmp b Ir.Ult (c8 1) (Ir.Reg ttl) in
  guard_or_port b (Ir.Reg alive) ~port:1;
  let ttl' =
    Bld.assign b ~width:8 (Ir.Binop (Ir.Sub, Ir.Reg ttl, c8 1))
  in
  Bld.store b ~off:(c16 8) ~n:1 (Ir.Reg ttl');
  (* Incremental checksum update: adding 0x0100 with end-around carry. *)
  let cks = Bld.load b ~off:(c16 10) ~n:2 in
  let wide = Bld.zext b ~width:32 (Ir.Reg cks) in
  let bumped =
    Bld.assign b ~width:32 (Ir.Binop (Ir.Add, Ir.Reg wide, c32 0x0100))
  in
  let low =
    Bld.assign b ~width:32 (Ir.Binop (Ir.And, Ir.Reg bumped, c32 0xffff))
  in
  let carry =
    Bld.assign b ~width:32 (Ir.Binop (Ir.Lshr, Ir.Reg bumped, c32 16))
  in
  let folded =
    Bld.assign b ~width:32 (Ir.Binop (Ir.Add, Ir.Reg low, Ir.Reg carry))
  in
  let cks' = Bld.extract b ~hi:15 ~lo:0 (Ir.Reg folded) in
  Bld.store b ~off:(c16 10) ~n:2 (Ir.Reg cks');
  Bld.term b (Ir.Emit 0);
  Bld.finish b

(** Recomputes the header checksum from scratch. *)
let set_ip_checksum () =
  let b = Bld.create ~name:"SetIPChecksum" in
  let b0 = Bld.load b ~off:(c16 0) ~n:1 in
  let ihl = Bld.assign b ~width:8 (Ir.Binop (Ir.And, Ir.Reg b0, c8 0xf)) in
  let ihl16 = Bld.zext b ~width:16 (Ir.Reg ihl) in
  let hlen =
    Bld.assign b ~width:16 (Ir.Binop (Ir.Shl, Ir.Reg ihl16, c16 2))
  in
  Bld.store b ~off:(c16 10) ~n:2 (c16 0);
  let sum = checksum_sum b ~hlen_rv:(Ir.Reg hlen) in
  let cks =
    Bld.assign b ~width:16 (Ir.Unop (Ir.Not, Ir.Reg sum))
  in
  Bld.store b ~off:(c16 10) ~n:2 (Ir.Reg cks);
  Bld.term b (Ir.Emit 0);
  Bld.finish b

(** IP options processing, modelled on Click's IPGWOptions: walks the
    option list; NOPs advance by one, EOL stops, Record-Route options
    get the gateway address stamped at the pointer. Malformed options go
    to port 1. This is the element whose loop makes naive symbolic
    execution blow up — each iteration reads attacker-controlled kind
    and length bytes. *)
let ip_gw_options ~gw =
  let b = Bld.create ~name:"IPGWOptions" in
  Bld.set_nports b 2;
  let b0 = Bld.load b ~off:(c16 0) ~n:1 in
  let ihl = Bld.assign b ~width:8 (Ir.Binop (Ir.And, Ir.Reg b0, c8 0xf)) in
  let ihl16 = Bld.zext b ~width:16 (Ir.Reg ihl) in
  let hlen =
    Bld.assign b ~width:16 (Ir.Binop (Ir.Shl, Ir.Reg ihl16, c16 2))
  in
  (* No options: pass straight through. *)
  let has_opts = Bld.cmp b Ir.Ult (c16 20) (Ir.Reg hlen) in
  guard_or_port b (Ir.Reg has_opts) ~port:0;
  let off = Bld.reg b ~width:16 in
  Bld.instr b (Ir.Assign (off, Ir.Move (c16 20)));
  let head = Bld.new_block b in
  let body = Bld.new_block b in
  let done_ = Bld.new_block b in
  let bad = Bld.new_block b in
  Bld.term b (Ir.Goto head);
  (* loop head: while off < hlen *)
  Bld.select b head;
  let more = Bld.cmp b Ir.Ult (Ir.Reg off) (Ir.Reg hlen) in
  Bld.term b (Ir.Branch (Ir.Reg more, body, done_));
  (* loop body *)
  Bld.select b body;
  let kind = Bld.load b ~off:(Ir.Reg off) ~n:1 in
  (* EOL (0): stop processing. *)
  let is_eol = Bld.cmp b Ir.Eq (Ir.Reg kind) (c8 0) in
  let not_eol = Bld.new_block b in
  Bld.term b (Ir.Branch (Ir.Reg is_eol, done_, not_eol));
  Bld.select b not_eol;
  (* NOP (1): advance one byte. *)
  let is_nop = Bld.cmp b Ir.Eq (Ir.Reg kind) (c8 1) in
  let nop_blk = Bld.new_block b and option_blk = Bld.new_block b in
  Bld.term b (Ir.Branch (Ir.Reg is_nop, nop_blk, option_blk));
  Bld.select b nop_blk;
  Bld.instr b (Ir.Assign (off, Ir.Binop (Ir.Add, Ir.Reg off, c16 1)));
  Bld.term b (Ir.Goto head);
  (* Multi-byte option: need a length byte within the header. *)
  Bld.select b option_blk;
  let off1 = Bld.assign b ~width:16 (Ir.Binop (Ir.Add, Ir.Reg off, c16 1)) in
  let len_in = Bld.cmp b Ir.Ult (Ir.Reg off1) (Ir.Reg hlen) in
  let have_len = Bld.new_block b in
  Bld.term b (Ir.Branch (Ir.Reg len_in, have_len, bad));
  Bld.select b have_len;
  let olen8 = Bld.load b ~off:(Ir.Reg off1) ~n:1 in
  let olen = Bld.zext b ~width:16 (Ir.Reg olen8) in
  (* olen >= 2 and off + olen <= hlen *)
  let len_lo = Bld.cmp b Ir.Ule (c16 2) (Ir.Reg olen) in
  let l_ok = Bld.new_block b in
  Bld.term b (Ir.Branch (Ir.Reg len_lo, l_ok, bad));
  Bld.select b l_ok;
  let opt_end =
    Bld.assign b ~width:16 (Ir.Binop (Ir.Add, Ir.Reg off, Ir.Reg olen))
  in
  let fits = Bld.cmp b Ir.Ule (Ir.Reg opt_end) (Ir.Reg hlen) in
  let f_ok = Bld.new_block b in
  Bld.term b (Ir.Branch (Ir.Reg fits, f_ok, bad));
  Bld.select b f_ok;
  (* Record Route (7): stamp the gateway address at the pointer. *)
  let is_rr = Bld.cmp b Ir.Eq (Ir.Reg kind) (c8 7) in
  let rr_blk = Bld.new_block b and advance = Bld.new_block b in
  Bld.term b (Ir.Branch (Ir.Reg is_rr, rr_blk, advance));
  Bld.select b rr_blk;
  (* RR layout: kind, len, ptr, data...; ptr is 1-based, first slot 4. *)
  let rr_min = Bld.cmp b Ir.Ule (c16 3) (Ir.Reg olen) in
  let rr_have_ptr = Bld.new_block b in
  Bld.term b (Ir.Branch (Ir.Reg rr_min, rr_have_ptr, bad));
  Bld.select b rr_have_ptr;
  let off2 = Bld.assign b ~width:16 (Ir.Binop (Ir.Add, Ir.Reg off, c16 2)) in
  let ptr8 = Bld.load b ~off:(Ir.Reg off2) ~n:1 in
  let ptr = Bld.zext b ~width:16 (Ir.Reg ptr8) in
  let ptr_lo = Bld.cmp b Ir.Ule (c16 4) (Ir.Reg ptr) in
  let rr_ptr_ok = Bld.new_block b in
  Bld.term b (Ir.Branch (Ir.Reg ptr_lo, rr_ptr_ok, bad));
  Bld.select b rr_ptr_ok;
  (* Room for a 4-byte address: ptr - 1 + 4 <= olen ? stamp : full. *)
  let slot_end =
    Bld.assign b ~width:16 (Ir.Binop (Ir.Add, Ir.Reg ptr, c16 3))
  in
  let room = Bld.cmp b Ir.Ule (Ir.Reg slot_end) (Ir.Reg olen) in
  let stamp = Bld.new_block b in
  Bld.term b (Ir.Branch (Ir.Reg room, stamp, advance));
  Bld.select b stamp;
  let ptr_base =
    Bld.assign b ~width:16 (Ir.Binop (Ir.Add, Ir.Reg off, Ir.Reg ptr))
  in
  let slot =
    Bld.assign b ~width:16 (Ir.Binop (Ir.Sub, Ir.Reg ptr_base, c16 1))
  in
  Bld.store b ~off:(Ir.Reg slot) ~n:4 (c32 gw);
  let ptr' = Bld.assign b ~width:8 (Ir.Binop (Ir.Add, Ir.Reg ptr8, c8 4)) in
  Bld.store b ~off:(Ir.Reg off2) ~n:1 (Ir.Reg ptr');
  Bld.term b (Ir.Goto advance);
  (* advance to next option *)
  Bld.select b advance;
  Bld.instr b (Ir.Assign (off, Ir.Move (Ir.Reg opt_end)));
  Bld.term b (Ir.Goto head);
  (* exits *)
  Bld.select b done_;
  Bld.term b (Ir.Emit 0);
  Bld.select b bad;
  Bld.term b (Ir.Emit 1);
  Bld.finish b
