test/test_ir.ml: Alcotest Array Char List QCheck QCheck_alcotest String Vdp_bitvec Vdp_ir Vdp_packet
