(** ARPResponder — answers ARP requests for a configured address by
    rewriting the request into a reply in place (Click's
    ARPResponder). Input: full Ethernet frame. Port 0: the reply
    (ready to transmit); port 1: not an ARP request for us. *)

module B = Vdp_bitvec.Bitvec
module Ir = Vdp_ir.Types
module Bld = Vdp_ir.Builder
open El_util

let arp_responder ~ip ~mac =
  let b = Bld.create ~name:"ARPResponder" in
  Bld.set_nports b 2;
  let len = Bld.load_len b in
  (* Ethernet (14) + ARP (28). *)
  let long_enough = Bld.cmp b Ir.Ule (c16 42) (Ir.Reg len) in
  guard_or_port b (Ir.Reg long_enough) ~port:1;
  let ethertype = Bld.load b ~off:(c16 12) ~n:2 in
  let is_arp = Bld.cmp b Ir.Eq (Ir.Reg ethertype) (c16 0x0806) in
  guard_or_port b (Ir.Reg is_arp) ~port:1;
  (* htype=1, ptype=0x0800, hlen=6, plen=4, op=request. *)
  let fixed = Bld.load b ~off:(c16 14) ~n:8 in
  let expect =
    B.of_bytes_be "\x00\x01\x08\x00\x06\x04\x00\x01"
  in
  let hdr_ok = Bld.cmp b Ir.Eq (Ir.Reg fixed) (Ir.Const expect) in
  guard_or_port b (Ir.Reg hdr_ok) ~port:1;
  (* Target IP must be ours. *)
  let target_ip = Bld.load b ~off:(c16 38) ~n:4 in
  let for_us = Bld.cmp b Ir.Eq (Ir.Reg target_ip) (c32 ip) in
  guard_or_port b (Ir.Reg for_us) ~port:1;
  (* Rewrite into a reply:
     - ethernet dst <- requester mac (ARP sender), src <- ours
     - op <- 2
     - target mac/ip <- original sender mac/ip
     - sender mac/ip <- ours *)
  let req_mac = Bld.load b ~off:(c16 22) ~n:6 in
  let req_ip = Bld.load b ~off:(c16 28) ~n:4 in
  let ours = Ir.Const (B.of_bytes_be mac) in
  Bld.store b ~off:(c16 0) ~n:6 (Ir.Reg req_mac);
  Bld.store b ~off:(c16 6) ~n:6 ours;
  Bld.store b ~off:(c16 20) ~n:2 (c16 2);
  Bld.store b ~off:(c16 22) ~n:6 ours;
  Bld.store b ~off:(c16 28) ~n:4 (c32 ip);
  Bld.store b ~off:(c16 32) ~n:6 (Ir.Reg req_mac);
  Bld.store b ~off:(c16 38) ~n:4 (Ir.Reg req_ip);
  Bld.term b (Ir.Emit 0);
  Bld.finish b
