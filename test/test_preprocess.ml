(* Differential testing of the word-level preprocessor: the solver
   must give the same answer with preprocessing on and off, on random
   conjunctions and end-to-end on the example pipelines, and every Sat
   model must satisfy the *original* conjunction (exercising the
   completion of eliminated variables). *)

module T = Vdp_smt.Term
module B = Vdp_bitvec.Bitvec
module Solver = Vdp_smt.Solver
module Preprocess = Vdp_smt.Preprocess
module Eval = Vdp_smt.Eval
module V = Vdp_verif.Verifier
module Summaries = Vdp_verif.Summaries
module Click = Vdp_click

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let px = T.var "px" 4
let py = T.var "py" 4
let pz = T.var "pz" 4
let c4 n = T.bv_int ~width:4 n

(* {1 Unit checks of individual passes, observed through the solver} *)

let vars_used terms =
  Solver.reset_stats ();
  let r = Solver.check terms in
  (r, Solver.stats.Solver.sat_vars, Solver.stats.Solver.sat_clauses)

let unit_tests =
  [
    Alcotest.test_case "equality substitution shrinks the SAT problem"
      `Quick (fun () ->
        let k = T.var "pk" 4 in
        let q = [ T.eq k (T.add px py); T.ult k pz; T.ule py px ] in
        let r1, v1, c1 = vars_used q in
        Solver.reset_stats ();
        let r0 = Solver.check ~preprocess:false q in
        let v0 = Solver.stats.Solver.sat_vars in
        let c0 = Solver.stats.Solver.sat_clauses in
        check_bool "same answer" true
          ((match r1 with Solver.Sat _ -> true | _ -> false)
          = (match r0 with Solver.Sat _ -> true | _ -> false));
        check_bool "fewer vars" true (v1 < v0);
        check_bool "fewer clauses" true (c1 < c0));
    Alcotest.test_case "eliminated variables reappear in the model" `Quick
      (fun () ->
        let k = T.var "pk2" 4 in
        let q = [ T.eq k (T.add px py); T.ult k pz ] in
        match Solver.check q with
        | Solver.Sat m ->
          check_bool "model mentions k and satisfies the original" true
            (List.for_all (Eval.eval_bool m) q)
        | _ -> Alcotest.fail "expected sat");
    Alcotest.test_case "unconstrained upper bound is dropped" `Quick
      (fun () ->
        let lone = T.var "lone" 4 in
        let p = Preprocess.run [ T.ule lone (c4 3); T.ult px py ] in
        check_int "one conjunct eliminated" 1 p.Preprocess.eliminated;
        (* and its binding completes any model of the residue *)
        match Solver.check [ T.ule lone (c4 3); T.ult px py ] with
        | Solver.Sat m ->
          check_bool "lone bound in completed model" true
            (Eval.eval_bool m (T.ule lone (c4 3)))
        | _ -> Alcotest.fail "expected sat");
    Alcotest.test_case "all-defaults component is sliced away" `Quick
      (fun () ->
        (* Both variables occur twice, so unconstrained elimination
           leaves the component alone; it is satisfied by the all-zero
           default model and disconnected from the px/py conjunct, so
           slicing drops it whole. *)
        let u = T.var "pu" 4 and v = T.var "pv" 4 in
        let p =
          Preprocess.run [ T.ule u v; T.ule v u; T.ult px py ]
        in
        check_bool "sliced" true (p.Preprocess.sliced >= 1);
        (* the sliced variables still get default bindings in models *)
        match Solver.check [ T.ule u v; T.ule v u; T.ult px py ] with
        | Solver.Sat m ->
          check_bool "completed model satisfies the sliced conjuncts" true
            (Eval.eval_bool m (T.and_ [ T.ule u v; T.ule v u ]))
        | _ -> Alcotest.fail "expected sat");
    Alcotest.test_case "contradiction survives preprocessing" `Quick
      (fun () ->
        let k = T.var "pk3" 4 in
        let q =
          [ T.eq k (T.add px py); T.ult k pz; T.ule pz px; T.ult px k;
            T.ule py (c4 0) ]
        in
        check_bool "same (unsat) answer" true
          (Solver.check q = Solver.check ~preprocess:false q));
  ]

(* {1 Randomized differential, >= 1000 conjunctions} *)

(* Conjunctions over three 4-bit variables with definition equalities
   mixed in, shaped like composite Step-2 conditions. *)
let gen_conj : T.t list QCheck.Gen.t =
  let open QCheck.Gen in
  let atomv = oneof [ return px; return py; return pz ] in
  let rec bv_term depth =
    if depth = 0 then
      oneof [ atomv; map (fun n -> c4 n) (int_bound 15) ]
    else
      let sub = bv_term (depth - 1) in
      oneof
        [
          map2 T.add sub sub; map2 T.sub sub sub; map2 T.band sub sub;
          map2 T.bor sub sub; map2 T.bxor sub sub; map T.bnot sub; sub;
        ]
  in
  let atom =
    oneof
      [
        map2 T.ult (bv_term 1) (bv_term 1);
        map2 T.ule (bv_term 1) (bv_term 1);
        map2 T.eq (bv_term 1) (bv_term 1);
        map2 (fun a b -> T.not_ (T.eq a b)) (bv_term 1) (bv_term 1);
      ]
  in
  (* a definition conjunct for a fresh-ish variable, the food of the
     equality-substitution pass *)
  let def =
    map2
      (fun i t -> T.eq (T.var (Printf.sprintf "pd%d" i) 4) t)
      (int_bound 3) (bv_term 1)
  in
  let* n = int_range 1 4 in
  let* atoms = list_repeat n atom in
  let* ndefs = int_bound 2 in
  let* defs = list_repeat ndefs def in
  (* use the defined variables somewhere so substitution has work *)
  let uses =
    List.map
      (fun (d : T.t) ->
        match d.T.node with
        | T.Eq (x, _) -> T.ule x (T.add px py)
        | _ -> T.tru)
      defs
  in
  return (atoms @ defs @ uses)

let differential_test =
  QCheck.Test.make ~count:1000
    ~name:"preprocessing on/off agree (and Sat models check out)"
    (QCheck.make
       ~print:(fun ts -> String.concat " /\\ " (List.map T.to_string ts))
       gen_conj)
    (fun terms ->
      let on = Solver.check terms in
      let off = Solver.check ~preprocess:false terms in
      match (on, off) with
      | Solver.Sat m, Solver.Sat m' ->
        List.for_all (Eval.eval_bool m) terms
        && List.for_all (Eval.eval_bool m') terms
      | Solver.Unsat, Solver.Unsat -> true
      | Solver.Unknown, _ | _, Solver.Unknown -> QCheck.assume_fail ()
      | _ -> false)

(* {1 End-to-end: the example pipelines with preprocessing off} *)

(* Works from both the source root and dune's test sandbox. *)
let example name =
  List.find Sys.file_exists [ "../examples/" ^ name; "examples/" ^ name ]

let e2e_example name =
  Alcotest.test_case (Printf.sprintf "end-to-end examples/%s" name) `Slow
    (fun () ->
      let pl = Click.Config.parse_file (example name) in
      let run ~preprocess =
        Summaries.clear ();
        Solver.Cache.clear Solver.shared_cache;
        let config = { V.default_config with V.preprocess } in
        V.check_crash_freedom ~config pl
      in
      let on = run ~preprocess:true in
      let off = run ~preprocess:false in
      let verdict r =
        match r.V.verdict with
        | V.Proved -> "proved"
        | V.Violated vs -> Printf.sprintf "violated:%d" (List.length vs)
        | V.Unknown _ -> "unknown"
      in
      Alcotest.(check string) "same verdict" (verdict on) (verdict off))

let e2e_bound =
  Alcotest.test_case "end-to-end bound examples/router.click" `Slow
    (fun () ->
      let pl = Click.Config.parse_file (example "router.click") in
      let run ~preprocess =
        Summaries.clear ();
        Solver.Cache.clear Solver.shared_cache;
        let config = { V.default_config with V.preprocess } in
        V.instruction_bound ~config pl
      in
      let on = run ~preprocess:true in
      let off = run ~preprocess:false in
      check_bool "same bound" true
        (on.V.bound = off.V.bound && on.V.exact = off.V.exact))

let tests =
  unit_tests
  @ List.map QCheck_alcotest.to_alcotest [ differential_test ]
  @ [
      e2e_example "router.click";
      e2e_example "firewall.click";
      e2e_bound;
    ]
