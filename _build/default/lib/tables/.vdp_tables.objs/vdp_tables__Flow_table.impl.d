lib/tables/flow_table.ml: Array
