test/test_main.ml: Alcotest Test_bitvec Test_click Test_config Test_elements Test_interval Test_ir Test_packet Test_sat Test_solver Test_symbex Test_tables Test_term Test_verif
