(** Process-wide parallel-mode switch.

    The SMT substrate keeps two pieces of process-wide mutable state —
    the hash-consing table in {!Term} and the shared query cache /
    aggregate stats in {!Solver}. Guarding them with mutexes
    unconditionally would tax the (overwhelmingly common) sequential
    case, so locking is gated on this flag: a worker-pool
    implementation calls {!enter} before spawning its domains and
    {!leave} after joining them, and the substrate takes its locks only
    while at least one pool is alive.

    The counter is an [Atomic] so nested or overlapping pools compose;
    {!active} is a single atomic load on the interning hot path. *)

let pools = Atomic.make 0

let enter () = Atomic.incr pools

let leave () =
  let p = Atomic.fetch_and_add pools (-1) in
  if p <= 0 then invalid_arg "Par.leave: not in parallel mode"

let active () = Atomic.get pools > 0
