(** Array-based longest-prefix match in the DIR-24-8 style of
    Gupta–Lin–McKeown (the paper's argument for verifiable lookup
    structures: trade memory for plain array indexing).

    A first array of [2^stride] slots is indexed by the top [stride]
    address bits; prefixes longer than [stride] spill into second-level
    blocks of [2^(32-stride)] slots. Every lookup is one or two array
    reads — no loops, no pointers, trivially bounded. *)

type t = {
  stride : int;
  top : int array;
      (** [>= 0]: next hop + 1; [0]: no route; [< 0]: -(block index) - 1 *)
  mutable blocks : int array array;
  mutable nblocks : int;
  low_bits : int;
}

let create ?(stride = 16) () =
  if stride < 1 || stride > 24 then invalid_arg "Dir_lpm.create: stride";
  {
    stride;
    top = Array.make (1 lsl stride) 0;
    blocks = [||];
    nblocks = 0;
    low_bits = 32 - stride;
  }

let alloc_block t fill =
  let b = Array.make (1 lsl t.low_bits) fill in
  if t.nblocks = Array.length t.blocks then begin
    let arr = Array.make (max 4 (2 * t.nblocks)) [||] in
    Array.blit t.blocks 0 arr 0 t.nblocks;
    t.blocks <- arr
  end;
  t.blocks.(t.nblocks) <- b;
  t.nblocks <- t.nblocks + 1;
  t.nblocks - 1

(* Routes must be inserted in order of increasing prefix length for
   correct longest-match overwrite semantics; [of_routes] takes care of
   sorting. *)
let insert t ~prefix ~len next_hop =
  if len < 0 || len > 32 then invalid_arg "Dir_lpm.insert: bad length";
  if next_hop < 0 then invalid_arg "Dir_lpm.insert: negative next hop";
  let nh = next_hop + 1 in
  if len <= t.stride then begin
    (* Fill all covered top slots (that don't point into blocks). *)
    let base = prefix lsr (32 - t.stride) in
    let span = 1 lsl (t.stride - len) in
    let base = base land lnot (span - 1) in
    for i = base to base + span - 1 do
      if t.top.(i) >= 0 then t.top.(i) <- nh
      else begin
        (* A longer prefix already expanded this slot: update the whole
           block where it still holds shorter-prefix data. This cannot
           happen when inserting in length order; keep it total anyway. *)
        let b = t.blocks.(-t.top.(i) - 1) in
        Array.iteri (fun j v -> if v = 0 then b.(j) <- nh) b
      end
    done
  end
  else begin
    let ti = prefix lsr (32 - t.stride) in
    let bi =
      if t.top.(ti) < 0 then -t.top.(ti) - 1
      else begin
        let fill = t.top.(ti) in
        let bi = alloc_block t fill in
        t.top.(ti) <- -bi - 1;
        bi
      end
    in
    let block = t.blocks.(bi) in
    let low = (prefix lsr (32 - len)) land ((1 lsl (len - t.stride)) - 1) in
    let shift = t.low_bits - (len - t.stride) in
    let base = low lsl shift in
    for i = base to base + (1 lsl shift) - 1 do
      block.(i) <- nh
    done
  end

let lookup t addr =
  let ti = (addr lsr (32 - t.stride)) land ((1 lsl t.stride) - 1) in
  let v = t.top.(ti) in
  let v =
    if v >= 0 then v
    else t.blocks.(-v - 1).(addr land ((1 lsl t.low_bits) - 1))
  in
  if v = 0 then None else Some (v - 1)

let of_routes ?stride routes =
  let t = create ?stride () in
  let sorted =
    List.sort (fun (_, l1, _) (_, l2, _) -> Stdlib.compare l1 l2) routes
  in
  List.iter (fun (prefix, len, nh) -> insert t ~prefix ~len nh) sorted;
  t

let memory_slots t = Array.length t.top + (t.nblocks * (1 lsl t.low_bits))
