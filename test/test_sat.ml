(* The CDCL core: known instances plus random 3-SAT cross-checked
   against brute force. *)

module Sat = Vdp_smt.Sat

let check_bool = Alcotest.(check bool)

let solve_clauses nvars clauses =
  let s = Sat.create () in
  let vars = Array.init nvars (fun _ -> Sat.new_var s) in
  List.iter
    (fun clause ->
      Sat.add_clause s
        (List.map (fun l -> Sat.lit vars.(abs l - 1) (l > 0)) clause))
    clauses;
  (s, vars)

let is_sat nvars clauses =
  match Sat.solve (fst (solve_clauses nvars clauses)) with
  | Sat.Sat -> true
  | Sat.Unsat -> false
  | Sat.Unknown -> Alcotest.fail "unexpected Unknown"

(* Brute-force satisfiability for <= 20 vars. *)
let brute_force nvars clauses =
  let n = 1 lsl nvars in
  let rec try_assignment i =
    if i >= n then false
    else
      let ok =
        List.for_all
          (fun clause ->
            List.exists
              (fun l ->
                let v = abs l - 1 in
                let bit = i land (1 lsl v) <> 0 in
                if l > 0 then bit else not bit)
              clause)
          clauses
      in
      ok || try_assignment (i + 1)
  in
  try_assignment 0

(* Pigeonhole: n+1 pigeons, n holes — classically unsat. *)
let pigeonhole n =
  let var p h = (p * n) + h + 1 in
  let each_pigeon =
    List.init (n + 1) (fun p -> List.init n (fun h -> var p h))
  in
  let no_share =
    List.concat_map
      (fun h ->
        List.concat_map
          (fun p1 ->
            List.filter_map
              (fun p2 ->
                if p1 < p2 then Some [ -var p1 h; -var p2 h ] else None)
              (List.init (n + 1) Fun.id))
          (List.init (n + 1) Fun.id))
      (List.init n Fun.id)
  in
  ((n + 1) * n, each_pigeon @ no_share)

let unit_tests =
  [
    Alcotest.test_case "trivial sat" `Quick (fun () ->
        check_bool "x" true (is_sat 1 [ [ 1 ] ]));
    Alcotest.test_case "trivial unsat" `Quick (fun () ->
        check_bool "x & ~x" false (is_sat 1 [ [ 1 ]; [ -1 ] ]));
    Alcotest.test_case "empty clause unsat" `Quick (fun () ->
        check_bool "[]" false (is_sat 1 [ [] ]));
    Alcotest.test_case "model is consistent" `Quick (fun () ->
        let clauses = [ [ 1; 2 ]; [ -1; 3 ]; [ -2; -3 ]; [ 2; 3 ] ] in
        let s, vars = solve_clauses 3 clauses in
        (match Sat.solve s with
        | Sat.Sat -> ()
        | _ -> Alcotest.fail "expected sat");
        let value i = Sat.value s vars.(i - 1) in
        List.iter
          (fun clause ->
            check_bool "clause satisfied" true
              (List.exists
                 (fun l -> if l > 0 then value l else not (value (-l)))
                 clause))
          clauses);
    Alcotest.test_case "chain of implications" `Quick (fun () ->
        (* x1 & (x1 -> x2) & ... & (x_{n-1} -> x_n) & ~x_n : unsat *)
        let n = 50 in
        let clauses =
          [ [ 1 ] ]
          @ List.init (n - 1) (fun i -> [ -(i + 1); i + 2 ])
          @ [ [ -n ] ]
        in
        check_bool "unsat" false (is_sat n clauses));
    Alcotest.test_case "pigeonhole 4 unsat" `Quick (fun () ->
        let nvars, clauses = pigeonhole 4 in
        check_bool "php4" false (is_sat nvars clauses));
    Alcotest.test_case "pigeonhole sat direction" `Quick (fun () ->
        (* n pigeons in n holes is satisfiable: drop one pigeon's clauses. *)
        let n = 4 in
        let nvars, clauses = pigeonhole n in
        let var p h = (p * n) + h + 1 in
        let reduced =
          List.filter (fun c -> not (List.mem (var n 0) c && List.length c = n)) clauses
        in
        check_bool "php-1" true (is_sat nvars reduced));
    Alcotest.test_case "clause-database reduction keeps answers right"
      `Quick (fun () ->
        (* An aggressive reduction schedule forces several learned-DB
           sweeps on an instance that needs real search; the verdict
           must be unchanged and deletions must actually happen. *)
        let nvars, clauses = pigeonhole 6 in
        let s = Sat.create ~reduce_interval:50 () in
        let vars = Array.init nvars (fun _ -> Sat.new_var s) in
        List.iter
          (fun clause ->
            Sat.add_clause s
              (List.map (fun l -> Sat.lit vars.(abs l - 1) (l > 0)) clause))
          clauses;
        (match Sat.solve s with
        | Sat.Unsat -> ()
        | Sat.Sat -> Alcotest.fail "php6 cannot be sat"
        | Sat.Unknown -> Alcotest.fail "unexpected Unknown");
        check_bool "reductions ran" true (Sat.num_reductions s > 0);
        check_bool "learned clauses were deleted" true
          (Sat.num_learned_deleted s > 0);
        (* Same schedule on a satisfiable instance still finds a model. *)
        let nvars', clauses' = pigeonhole 6 in
        let reduced =
          (* drop one pigeon's clauses -> n pigeons, n holes: sat *)
          List.filter
            (fun c -> not (List.exists (fun l -> abs l > 6 * 6) c))
            clauses'
        in
        let s' = Sat.create ~reduce_interval:50 () in
        let vars' = Array.init nvars' (fun _ -> Sat.new_var s') in
        List.iter
          (fun clause ->
            Sat.add_clause s'
              (List.map (fun l -> Sat.lit vars'.(abs l - 1) (l > 0)) clause))
          reduced;
        match Sat.solve s' with
        | Sat.Sat -> ()
        | _ -> Alcotest.fail "php with equal pigeons and holes is sat");
    Alcotest.test_case "budget returns Unknown" `Quick (fun () ->
        let nvars, clauses = pigeonhole 7 in
        let s, _ = solve_clauses nvars clauses in
        match Sat.solve ~max_conflicts:10 s with
        | Sat.Unknown -> ()
        | Sat.Unsat -> () (* solved within budget: also fine *)
        | Sat.Sat -> Alcotest.fail "php7 cannot be sat");
  ]

let random_3sat =
  let gen =
    QCheck.Gen.(
      let nvars = 8 in
      let* nclauses = int_range 10 40 in
      let lit = map2 (fun v s -> if s then v + 1 else -(v + 1))
          (int_bound (nvars - 1)) bool
      in
      let* clauses = list_size (return nclauses) (list_size (return 3) lit) in
      return (nvars, clauses))
  in
  QCheck.Test.make ~count:300 ~name:"random 3-SAT agrees with brute force"
    (QCheck.make
       ~print:(fun (n, cs) ->
         Printf.sprintf "%d vars, %s" n
           (String.concat " "
              (List.map
                 (fun c ->
                   "(" ^ String.concat "|" (List.map string_of_int c) ^ ")")
                 cs)))
       gen)
    (fun (nvars, clauses) -> is_sat nvars clauses = brute_force nvars clauses)

let tests = unit_tests @ List.map QCheck_alcotest.to_alcotest [ random_3sat ]
