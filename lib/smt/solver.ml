type outcome =
  | Sat of Model.t
  | Unsat
  | Unknown

type stats = {
  mutable calls : int;
  mutable sat_answers : int;
  mutable unsat_answers : int;
  mutable unknown_answers : int;
  mutable interval_refutations : int;
  mutable folded : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_evictions : int;
}

let fresh_stats () =
  {
    calls = 0;
    sat_answers = 0;
    unsat_answers = 0;
    unknown_answers = 0;
    interval_refutations = 0;
    folded = 0;
    cache_hits = 0;
    cache_misses = 0;
    cache_evictions = 0;
  }

(* Process-wide aggregate, kept for compatibility: every context also
   bumps this record, so the sum over all solving activity remains
   observable in one place. Under parallel mode every stats bump is
   serialised by [stats_lock] (contexts are single-domain, but they
   share this aggregate), so counts are never lost to races. *)
let stats = fresh_stats ()

let stats_lock = Mutex.create ()

let locked f =
  if Par.active () then begin
    Mutex.lock stats_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock stats_lock) f
  end
  else f ()

let reset_stats_record s =
  s.calls <- 0;
  s.sat_answers <- 0;
  s.unsat_answers <- 0;
  s.unknown_answers <- 0;
  s.interval_refutations <- 0;
  s.folded <- 0;
  s.cache_hits <- 0;
  s.cache_misses <- 0;
  s.cache_evictions <- 0

let reset_stats () = reset_stats_record stats

(* {1 Query cache}

   Memoizes definite answers keyed on the hash-consed id of the full
   conjunction. [Term.and_] flattens and deduplicates through a set, so
   the same multiset of constraints always maps to the same id no
   matter in which order a caller accumulated them. [Unknown] answers
   are never cached: they depend on the conflict budget. *)

module Cache = struct
  type t = {
    table : (int, outcome) Hashtbl.t;
    order : int Queue.t;  (* insertion order, for FIFO eviction *)
    capacity : int;
    lock : Mutex.t;
        (* taken only in parallel mode: a cache may then be shared by
           every worker domain (lookup/insert stay individually atomic;
           a racing duplicate solve is harmless and [add] dedupes) *)
  }

  let create ?(capacity = 1 lsl 14) () =
    {
      table = Hashtbl.create 256;
      order = Queue.create ();
      capacity;
      lock = Mutex.create ();
    }

  let guarded c f =
    if Par.active () then begin
      Mutex.lock c.lock;
      Fun.protect ~finally:(fun () -> Mutex.unlock c.lock) f
    end
    else f ()

  let clear c =
    guarded c (fun () ->
        Hashtbl.reset c.table;
        Queue.clear c.order)

  let length c = guarded c (fun () -> Hashtbl.length c.table)

  let find c id = guarded c (fun () -> Hashtbl.find_opt c.table id)

  (* Returns the number of evicted entries (0 or 1). *)
  let add c id outcome =
    guarded c (fun () ->
        if Hashtbl.mem c.table id then 0
        else begin
          let evicted =
            if Hashtbl.length c.table >= c.capacity then (
              match Queue.take_opt c.order with
              | Some victim ->
                Hashtbl.remove c.table victim;
                1
              | None -> 0)
            else 0
          in
          Hashtbl.add c.table id outcome;
          Queue.add id c.order;
          evicted
        end)
end

(* One shared cache: identical composite conditions recur across the
   crash-freedom, instruction-bound and reachability passes over the
   same pipeline, so sharing pays across properties. *)
let shared_cache = Cache.create ()

let validate_model conj m =
  if not (Eval.eval_bool m conj) then
    failwith
      (Printf.sprintf "Solver: extracted model fails to satisfy %s"
         (Term.to_string conj))

(* {1 Core solving}

   [sts] is the list of stats records to charge (the aggregate plus,
   for context-based solving, the context's own record). *)

let tally sts f = locked (fun () -> List.iter f sts)

let finish sts (o : outcome) =
  (match o with
  | Sat _ -> tally sts (fun s -> s.sat_answers <- s.sat_answers + 1)
  | Unsat -> tally sts (fun s -> s.unsat_answers <- s.unsat_answers + 1)
  | Unknown -> tally sts (fun s -> s.unknown_answers <- s.unknown_answers + 1));
  o

let cache_store sts cache id outcome =
  match (cache, outcome) with
  | Some c, (Sat _ | Unsat) ->
    let evicted = Cache.add c id outcome in
    if evicted > 0 then
      tally sts (fun s -> s.cache_evictions <- s.cache_evictions + evicted)
  | _ -> ()

(* The shared front end: constant folding, cache lookup, interval
   refutation, then [blast_and_solve] for the real work. *)
let check_conj sts ?cache conj ~blast_and_solve =
  tally sts (fun s -> s.calls <- s.calls + 1);
  if Term.is_true conj then begin
    tally sts (fun s -> s.folded <- s.folded + 1);
    finish sts (Sat (Model.create ()))
  end
  else if Term.is_false conj then begin
    tally sts (fun s -> s.folded <- s.folded + 1);
    finish sts Unsat
  end
  else
    match Option.bind cache (fun c -> Cache.find c conj.Term.id) with
    | Some o ->
      tally sts (fun s -> s.cache_hits <- s.cache_hits + 1);
      finish sts o
    | None ->
      if cache <> None then
        tally sts (fun s -> s.cache_misses <- s.cache_misses + 1);
      if Interval.refute conj then begin
        tally sts (fun s ->
            s.interval_refutations <- s.interval_refutations + 1);
        cache_store sts cache conj.Term.id Unsat;
        finish sts Unsat
      end
      else begin
        let o = blast_and_solve conj in
        cache_store sts cache conj.Term.id o;
        finish sts o
      end

let check ?(max_conflicts = max_int) ?cache terms =
  let conj = Term.and_ terms in
  check_conj [ stats ] ?cache conj ~blast_and_solve:(fun conj ->
      let ctx = Bitblast.create () in
      Bitblast.assert_term ctx conj;
      match Sat.solve ~max_conflicts (Bitblast.sat ctx) with
      | Sat.Sat ->
        let m = Bitblast.extract_model ctx in
        validate_model conj m;
        Sat m
      | Sat.Unsat -> Unsat
      | Sat.Unknown -> Unknown)

let check_term ?max_conflicts t = check ?max_conflicts [ t ]

let is_sat ?max_conflicts terms =
  match check ?max_conflicts terms with
  | Sat _ | Unknown -> true
  | Unsat -> false

let is_unsat ?max_conflicts terms =
  match check ?max_conflicts terms with
  | Unsat -> true
  | Sat _ | Unknown -> false

(* {1 Incremental contexts}

   A context keeps one bit-blaster (so the term DAG is encoded once no
   matter how many checks see it) and a stack of scopes. Each scope
   owns a fresh selector literal; asserting a term adds the guarded
   clause [not selector \/ term]. Checking assumes the selectors of
   all live scopes, so popped scopes stop constraining the search while
   every learned clause — which can only mention selectors negatively —
   remains valid and is retained. *)

type scope = {
  selector : int;
  mutable asserted : Term.t list;  (* newest first *)
}

type ctx = {
  bb : Bitblast.ctx;
  mutable scopes : scope list;  (* innermost first; never empty *)
  cstats : stats;
  cache : Cache.t option;
}

let new_scope bb = { selector = Bitblast.fresh bb; asserted = [] }

let create_ctx ?cache () =
  let bb = Bitblast.create () in
  { bb; scopes = [ new_scope bb ]; cstats = fresh_stats (); cache }

let ctx_stats ctx = ctx.cstats
let depth ctx = List.length ctx.scopes - 1

let push ctx = ctx.scopes <- new_scope ctx.bb :: ctx.scopes

let pop ctx =
  match ctx.scopes with
  | [] | [ _ ] -> invalid_arg "Solver.pop: no scope to pop"
  | sc :: rest ->
    (* Permanently retire the selector: its guarded clauses become
       satisfied at level 0 and never burden the search again. *)
    Sat.add_clause (Bitblast.sat ctx.bb) [ Sat.lit_not sc.selector ];
    ctx.scopes <- rest

let assert_terms ctx terms =
  match ctx.scopes with
  | [] -> assert false
  | sc :: _ ->
    List.iter
      (fun t ->
        if not (Term.is_true t) then begin
          sc.asserted <- t :: sc.asserted;
          Bitblast.assert_under ctx.bb ~selector:sc.selector t
        end)
      terms

let assert_term ctx t = assert_terms ctx [ t ]

let asserted ctx = List.concat_map (fun sc -> sc.asserted) ctx.scopes

let check_ctx ?(max_conflicts = max_int) ctx =
  let sts = [ stats; ctx.cstats ] in
  let conj = Term.and_ (asserted ctx) in
  check_conj sts ?cache:ctx.cache conj ~blast_and_solve:(fun conj ->
      let assumptions = List.rev_map (fun sc -> sc.selector) ctx.scopes in
      match Sat.solve ~max_conflicts ~assumptions (Bitblast.sat ctx.bb) with
      | Sat.Sat ->
        let m = Bitblast.extract_model ctx.bb in
        validate_model conj m;
        Sat m
      | Sat.Unsat -> Unsat
      | Sat.Unknown -> Unknown)

let pp_outcome fmt = function
  | Sat m -> Format.fprintf fmt "sat@ %a" Model.pp m
  | Unsat -> Format.pp_print_string fmt "unsat"
  | Unknown -> Format.pp_print_string fmt "unknown"
