(* Benchmark harness: regenerates every figure and in-text result of
   the paper's evaluation (see DESIGN.md's experiment index), plus
   Bechamel micro-benchmarks of the substrates.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- e3      # one experiment *)

module B = Vdp_bitvec.Bitvec
module T = Vdp_smt.Term
module Solver = Vdp_smt.Solver
module Ir = Vdp_ir.Types
module P = Vdp_packet.Packet
module Ipv4 = Vdp_packet.Ipv4
module Gen = Vdp_packet.Gen
module Click = Vdp_click
module E = Vdp_symbex.Engine
module S = Vdp_symbex.Sstate
module V = Vdp_verif.Verifier
module Mono = Vdp_verif.Monolithic
module Summaries = Vdp_verif.Summaries

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')


let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* {1 Machine-readable results}

   Each experiment writes BENCH_<exp>.json next to the text report so
   scripts can track numbers across runs without scraping stdout. The
   driver supplies the experiment name and wall time; experiments add
   their own fields with [record]. *)

module Json = struct
  type t =
    | Str of string
    | Int of int
    | Float of float
    | Bool of bool
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let rec emit buf = function
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (Printf.sprintf "%.6g" f)
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf (Str k);
          Buffer.add_char buf ':';
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

  let write path j =
    let buf = Buffer.create 1_024 in
    emit buf j;
    Buffer.add_char buf '\n';
    let oc = open_out path in
    Buffer.output_buffer oc buf;
    close_out oc
end

let json_fields : (string * Json.t) list ref = ref []
let record k v = json_fields := !json_fields @ [ (k, v) ]

(* Every BENCH file carries the same top-level shape:
   {"experiment", "wall_seconds", <experiment fields>, "solver_stats"}.
   The solver counters are reset by the driver at the start of each
   experiment, so the object is a per-experiment delta. *)
let solver_stats_json () =
  let s = Solver.stats in
  Json.Obj
    [
      ("queries", Json.Int s.Solver.calls);
      ("sat", Json.Int s.Solver.sat_answers);
      ("unsat", Json.Int s.Solver.unsat_answers);
      ("unknown", Json.Int s.Solver.unknown_answers);
      ("folded", Json.Int s.Solver.folded);
      ("cache_hits", Json.Int s.Solver.cache_hits);
      ("cache_misses", Json.Int s.Solver.cache_misses);
      ("interval_refuted", Json.Int s.Solver.interval_refutations);
      ("eliminated_conjuncts", Json.Int s.Solver.eliminated_conjuncts);
      ("sliced_conjuncts", Json.Int s.Solver.sliced_conjuncts);
      ("sat_vars", Json.Int s.Solver.sat_vars);
      ("sat_clauses", Json.Int s.Solver.sat_clauses);
      ("gate_hits", Json.Int s.Solver.gate_hits);
      ("gate_misses", Json.Int s.Solver.gate_misses);
      ("learned_deleted", Json.Int s.Solver.learned_deleted);
      ("preprocess_seconds", Json.Float s.Solver.preprocess_time);
      ("blast_seconds", Json.Float s.Solver.blast_time);
      ("sat_seconds", Json.Float s.Solver.sat_time);
      ( "cert_stats",
        Json.Obj
          [
            ("attempted", Json.Int s.Solver.cert_attempted);
            ("checked", Json.Int s.Solver.cert_checked);
            ("failed", Json.Int s.Solver.cert_failed);
            ("cached", Json.Int s.Solver.cert_cached);
            ("drat", Json.Int s.Solver.cert_drat);
            ("interval", Json.Int s.Solver.cert_interval);
            ("folded", Json.Int s.Solver.cert_folded);
            ("proof_clauses", Json.Int s.Solver.cert_proof_clauses);
            ("proof_deletions", Json.Int s.Solver.cert_proof_deletions);
            ("pcache_hits", Json.Int s.Solver.cert_pcache_hits);
            ("trimmed_clauses", Json.Int s.Solver.cert_trimmed_clauses);
            ("untrimmed_clauses", Json.Int s.Solver.cert_untrimmed_clauses);
            ("solve_seconds", Json.Float s.Solver.cert_solve_time);
            ("check_seconds", Json.Float s.Solver.cert_check_time);
          ] );
      ( "scheduler",
        Json.Obj
          [
            ("tasks_spawned", Json.Int s.Solver.sched_spawned);
            ("tasks_executed", Json.Int s.Solver.sched_executed);
            ("tasks_stolen", Json.Int s.Solver.sched_stolen);
            ("busy_seconds", Json.Float s.Solver.sched_busy);
            ("idle_seconds", Json.Float s.Solver.sched_idle);
            ( "task_seconds_histogram",
              Json.List
                (Array.to_list
                   (Array.map (fun n -> Json.Int n) s.Solver.sched_hist)) );
          ] );
    ]

(* Experiments that double as checks (E8) flip this on failure; the
   driver still writes their JSON before exiting nonzero. *)
let exit_code = ref 0

let verdict_str v =
  Format.asprintf "%a" Vdp_verif.Report.pp_verdict v

(* The element chain of the Click IP-router configuration (paper §3,
   "Preliminary Results"). *)
let router_elements () =
  [
    Click.Registry.make ~name:"cl" ~cls:"Classifier" ~config:[ "12/0800"; "-" ];
    Click.Registry.make ~name:"strip" ~cls:"Strip" ~config:[ "14" ];
    Click.Registry.make ~name:"chk" ~cls:"CheckIPHeader" ~config:[];
    Click.Registry.make ~name:"opts" ~cls:"IPGWOptions" ~config:[ "9.9.9.1" ];
    Click.Registry.make ~name:"ttl" ~cls:"DecIPTTL" ~config:[];
    Click.Registry.make ~name:"rt" ~cls:"StaticIPLookup"
      ~config:[ "10.0.0.0/8 0"; "192.168.0.0/16 1"; "0.0.0.0/0 2" ];
    Click.Registry.make ~name:"out" ~cls:"EtherEncap"
      ~config:[ "2048"; "02:00:00:00:00:01"; "02:00:00:00:00:02" ];
  ]

(* Chain the first [k] router elements through port 0; extra output
   ports (bad headers, expired TTLs, non-IP traffic) fall off the
   pipeline as egress points, like ToDevice/Discard sinks would. *)
let router_prefix k =
  let elements =
    List.filteri (fun i _ -> i < k) (router_elements ())
  in
  Click.Pipeline.linear elements

let full_router () = router_prefix 7

(* {1 FIG1 — the toy program's execution tree} *)

let fig1 () =
  section "FIG1: toy program execution tree (paper Fig. 1)";
  let prog = Click.El_toy.fig1 () in
  let r = E.explore prog in
  Printf.printf "program: assert in >= 0; out <- max(in, 10)\n";
  Printf.printf "feasible paths under unconstrained input:\n";
  List.iteri
    (fun i (seg : E.segment) ->
      let verdict =
        match Solver.check seg.E.cond with
        | Solver.Sat m ->
          let b = Vdp_smt.Model.bv m (S.byte_var 0) ~width:8 in
          Printf.sprintf "feasible, e.g. in = %d (signed %s)"
            (B.to_int_trunc b)
            (if B.msb b then "negative" else "non-negative")
        | Solver.Unsat -> "infeasible"
        | Solver.Unknown -> "unknown"
      in
      Format.printf "  p%d: %a, %d instrs — %s@." (i + 1) E.pp_outcome
        seg.E.outcome seg.E.instr_hi verdict)
    r.E.segments;
  Printf.printf
    "the crash path is exactly the paper's in < 0 branch: the verifier\n\
     reports every input value that prevents the proof.\n"

(* {1 FIG2 — pipeline decomposition on the toy pipeline} *)

let fig2 () =
  section "FIG2: toy pipeline E1 -> E2 (paper Fig. 2)";
  Summaries.clear ();
  (* Step 1: per-element segments. *)
  let e1 = Click.El_toy.e1_element () in
  let e2 = Click.El_toy.e2_element () in
  List.iter
    (fun (name, (el : Click.Element.t)) ->
      let entry = Summaries.summarize el in
      Printf.printf "step 1: %s has %d segments, %d suspect\n" name
        (List.length entry.Summaries.result.E.segments)
        (List.length
           (List.filter Summaries.is_suspect_crash
              entry.Summaries.result.E.segments)))
    [ ("E1", e1); ("E2", e2) ];
  (* Step 2: compose. *)
  let pl = Click.El_toy.fig2_pipeline () in
  let r, dt = time (fun () -> V.check_crash_freedom pl) in
  Format.printf
    "step 2: stitched suspect paths through the pipeline: %d checks, %d \
     refuted@."
    r.V.stats.V.suspect_checks r.V.stats.V.refuted;
  Format.printf "verdict: %a (%.3fs)@." Vdp_verif.Report.pp_verdict
    r.V.verdict dt;
  Printf.printf
    "E2's crashing segment e3 (in < 0) is infeasible behind E1, exactly\n\
     the <e1, e3> / <e2, e3> stitching argument of the paper.\n"

(* {1 E1 — crash freedom of the Click IP-router pipelines} *)

let e1 () =
  section "E1: crash freedom for pipelines of Click IP-router elements";
  Summaries.clear ();
  Printf.printf "%-46s %8s %8s %8s %s\n" "pipeline" "suspects" "checks"
    "time(s)" "verdict";
  let rows = ref [] in
  for k = 1 to 7 do
    let pl = router_prefix k in
    let names =
      String.concat "->"
        (List.map
           (fun (n : Click.Pipeline.node) ->
             n.Click.Pipeline.element.Click.Element.name)
           (Array.to_list (Click.Pipeline.nodes pl)))
    in
    let r, dt = time (fun () -> V.check_crash_freedom pl) in
    Format.printf "%-46s %8d %8d %8.2f %a@." names r.V.stats.V.suspects
      r.V.stats.V.suspect_checks dt Vdp_verif.Report.pp_verdict r.V.verdict;
    rows :=
      Json.Obj
        [
          ("k", Json.Int k);
          ("suspects", Json.Int r.V.stats.V.suspects);
          ("checks", Json.Int r.V.stats.V.suspect_checks);
          ("composite_paths", Json.Int r.V.stats.V.composite_paths);
          ("seconds", Json.Float dt);
          ("verdict", Json.Str (verdict_str r.V.verdict));
        ]
      :: !rows
  done;
  record "pipelines" (Json.List (List.rev !rows));
  (* A rewired variant (order changed downstream of CheckIPHeader) to
     back the "any pipeline of these elements" claim. *)
  let reordered =
    Click.Pipeline.linear
      [
        Click.Registry.make ~name:"cl" ~cls:"Classifier" ~config:[ "12/0800" ];
        Click.Registry.make ~name:"strip" ~cls:"Strip" ~config:[ "14" ];
        Click.Registry.make ~name:"chk" ~cls:"CheckIPHeader" ~config:[];
        Click.Registry.make ~name:"ttl" ~cls:"DecIPTTL" ~config:[];
        Click.Registry.make ~name:"opts" ~cls:"IPGWOptions" ~config:[ "9.9.9.1" ];
        Click.Registry.make ~name:"rt" ~cls:"StaticIPLookup"
          ~config:[ "0.0.0.0/0 0" ];
        Click.Registry.make ~name:"out" ~cls:"EtherEncap"
          ~config:[ "2048"; "02:00:00:00:00:01"; "02:00:00:00:00:02" ];
      ]
  in
  let r, dt = time (fun () -> V.check_crash_freedom reordered) in
  Format.printf "%-46s %8d %8d %8.2f %a@." "reordered (ttl before opts)"
    r.V.stats.V.suspects r.V.stats.V.suspect_checks dt
    Vdp_verif.Report.pp_verdict r.V.verdict;
  record "reordered"
    (Json.Obj
       [
         ("suspects", Json.Int r.V.stats.V.suspects);
         ("checks", Json.Int r.V.stats.V.suspect_checks);
         ("seconds", Json.Float dt);
         ("verdict", Json.Str (verdict_str r.V.verdict));
       ])

(* {1 E2 — instruction bound of the longest pipeline} *)

let e2 () =
  section "E2: per-packet instruction bound (paper: ~3600 for the longest pipeline)";
  Summaries.clear ();
  let pl = full_router () in
  let r, dt = time (fun () -> V.instruction_bound pl) in
  (match r.V.bound with
  | Some b ->
    Printf.printf
      "bound: <= %d instructions per packet (%s), found in %.2fs\n" b
      (if r.V.exact then "exact" else "upper bound incl. loop-summary slack")
      dt
  | None -> Printf.printf "no bound found\n");
  (match (r.V.witness, r.V.measured) with
  | Some pkt, Some m ->
    Printf.printf
      "witness: a %d-byte frame; the runtime spends %d instructions on it\n"
      (P.length pkt) m;
    let q = P.clone pkt in
    if P.length q >= 15 then begin
      P.pull q 14;
      Printf.printf
        "witness parses as IPv4: version/ihl byte 0x%02x (options present: %b)\n"
        (P.get_u8 q 0)
        (P.get_u8 q 0 land 0x0f > 5)
    end
  | _ -> ());
  (* Stress the runtime with option-heavy frames and report the
     concrete maximum for comparison with the proved bound. *)
  let inst = Click.Runtime.instantiate pl in
  let st = Random.State.make [| 11 |] in
  let max_seen = ref 0 in
  for _ = 1 to 20_000 do
    let f = Gen.random_flow st in
    let pkt =
      if Random.State.int st 3 = 0 then begin
        let nops = Random.State.int st 36 in
        let options =
          String.make nops '\x01' ^ "\x07\x07\x04\x00\x00\x00\x00"
        in
        let options = String.sub options 0 (min 40 (String.length options)) in
        Gen.frame_with_options ~options f
      end
      else Gen.corrupt st (Gen.frame_of_flow f)
    in
    let run = Click.Runtime.push inst pkt in
    max_seen := max !max_seen run.Click.Runtime.total_instrs
  done;
  (match r.V.bound with
  | Some b ->
    Printf.printf
      "fuzzing 20k frames: concrete max %d <= proved bound %d: %b\n"
      !max_seen b (!max_seen <= b)
  | None -> ());
  record "bound"
    (match r.V.bound with Some b -> Json.Int b | None -> Json.Str "none");
  record "exact" (Json.Bool r.V.exact);
  record "witness_measured"
    (match r.V.measured with Some m -> Json.Int m | None -> Json.Str "none");
  record "fuzz_max" (Json.Int !max_seen);
  record "seconds_bound" (Json.Float dt)

(* {1 E3 — compositional vs monolithic verification time} *)

let e3 () =
  section
    "E3: verification time, pipeline decomposition vs monolithic symbex\n\
     (paper: ~18 minutes vs did-not-finish within 12 hours)";
  Printf.printf "%-4s %14s %14s %20s\n" "k" "compositional" "monolithic"
    "monolithic paths";
  let mono_budget = 30_000 in
  let time_limit = 30. in
  let rows = ref [] in
  for k = 1 to 7 do
    let pl = router_prefix k in
    Summaries.clear ();
    let rc, dtc = time (fun () -> V.check_crash_freedom pl) in
    let comp =
      match rc.V.verdict with
      | V.Proved -> Printf.sprintf "%.2fs" dtc
      | V.Violated _ -> Printf.sprintf "%.2fs (viol!)" dtc
      | V.Unknown _ -> Printf.sprintf "%.2fs (unk)" dtc
    in
    let engine_config =
      { Mono.default_engine_config with E.max_paths = mono_budget }
    in
    let mono, mono_paths =
      match Mono.check_crash_freedom ~engine_config ~time_limit pl with
      | Mono.Completed { verdict = `Proved; paths; time } ->
        (Printf.sprintf "%.2fs" time, string_of_int paths)
      | Mono.Completed { verdict = `Violated n; paths; time } ->
        (Printf.sprintf "%.2fs (%d viol)" time n, string_of_int paths)
      | Mono.Did_not_finish { paths_explored; time } ->
        ( Printf.sprintf "DNF@%.0fs" time,
          Printf.sprintf ">= %d (budget %d)" paths_explored mono_budget )
    in
    Printf.printf "%-4d %14s %14s %20s\n%!" k comp mono mono_paths;
    rows :=
      Json.Obj
        [
          ("k", Json.Int k);
          ("compositional_seconds", Json.Float dtc);
          ("compositional_verdict", Json.Str (verdict_str rc.V.verdict));
          ("monolithic", Json.Str mono);
          ("monolithic_paths", Json.Str mono_paths);
        ]
      :: !rows
  done;
  record "pipelines" (Json.List (List.rev !rows));
  Printf.printf
    "\nshape check: compositional stays flat in k (summaries cached, only\n\
     suspects re-checked); the monolithic baseline multiplies paths per\n\
     element and stops finishing once the IP-options loop joins (k >= 4).\n"

(* {1 E4 — path-count analysis: k * 2^n vs 2^(k*n)} *)

let e4 () =
  section "E4: explored paths, per-element sum vs whole-pipeline product";
  Printf.printf "%-4s %18s %22s %22s\n" "k" "sum segments" "product (theory)"
    "monolithic explored";
  for k = 1 to 7 do
    let pl = router_prefix k in
    Summaries.clear ();
    let summaries = Summaries.of_pipeline pl in
    let per_element =
      Array.map
        (fun (e : Summaries.entry) ->
          List.length e.Summaries.result.E.segments)
        summaries
    in
    let sum = Array.fold_left ( + ) 0 per_element in
    let product =
      Array.fold_left (fun acc n -> acc *. float_of_int (max 1 n)) 1. per_element
    in
    let engine_config =
      { Mono.default_engine_config with E.max_paths = 20_000 }
    in
    let mono =
      match Mono.check_crash_freedom ~engine_config ~time_limit:20. pl with
      | Mono.Completed { paths; _ } -> string_of_int paths
      | Mono.Did_not_finish { paths_explored; _ } ->
        Printf.sprintf ">= %d" paths_explored
    in
    Printf.printf "%-4d %18d %22.3g %22s\n%!" k sum product mono
  done;
  Printf.printf
    "\nthe sum column is the k*2^n work Step 1 actually does; the product\n\
     column is the 2^(k*n) path space a monolithic verifier faces.\n"

(* {1 E5 — stateful elements (NetFlow / NAT)} *)

let e5 () =
  section "E5: stateful pipelines (NetFlow-style counter, NAT rewriter)";
  Summaries.clear ();
  let config =
    {|
    cl :: Classifier(12/0800, -);
    strip :: Strip(14);
    chk :: CheckIPHeader;
    flow :: FlowCounter;
    nat :: IPRewriter(203.0.113.7);
    cks :: SetIPChecksum;
    out :: EtherEncap(2048, 02:00:00:00:00:01, 02:00:00:00:00:02);
    cl[0] -> strip -> chk -> flow -> nat -> cks -> out;
    cl[1] -> Discard; chk[1] -> Discard; nat[1] -> cks;
    |}
  in
  let pl = Click.Config.parse config in
  let r, dt = time (fun () -> V.check_crash_freedom pl) in
  Format.printf "NetFlow+NAT pipeline: %a in %.2fs (%d suspects, %d checks)@."
    Vdp_verif.Report.pp_verdict r.V.verdict dt r.V.stats.V.suspects
    r.V.stats.V.suspect_checks;
  (* The broken stateful elements are caught. *)
  List.iter
    (fun (cls, cfg) ->
      Summaries.clear ();
      let pl =
        Click.Pipeline.linear
          [
            Click.Registry.make ~name:"cl" ~cls:"Classifier"
              ~config:[ "12/0800" ];
            Click.Registry.make ~name:"strip" ~cls:"Strip" ~config:[ "14" ];
            Click.Registry.make ~name:"chk" ~cls:"CheckIPHeader" ~config:[];
            Click.Registry.make ~name:"x" ~cls ~config:cfg;
          ]
      in
      let r, dt = time (fun () -> V.check_crash_freedom pl) in
      match r.V.verdict with
      | V.Violated vs ->
        let v = List.hd vs in
        Printf.printf
          "%s: REJECTED in %.2fs — %s%s\n" cls dt
          (Vdp_verif.Report.to_string
             (fun fmt v -> E.pp_outcome fmt v.V.outcome)
             v)
          (if v.V.stateful then " (needs a particular state history)" else "")
      | V.Proved -> Printf.printf "%s: unexpectedly proved safe\n" cls
      | V.Unknown why -> Printf.printf "%s: unknown (%s)\n" cls why)
    [ ("BuggyCounter", []); ("BuggyNAT", [ "198.51.100.1" ]) ];
  (* Write-back provenance: the counter's bad value is producible. *)
  let summary = E.explore (Click.El_market.buggy_counter ()) in
  let crash =
    List.find
      (fun s ->
        match s.E.outcome with E.O_crash (E.C_assert _) -> true | _ -> false)
      summary.E.segments
  in
  let read_var =
    List.find_map
      (function S.Kv_read { value; _ } -> Some value | _ -> None)
      crash.E.kv_log
    |> Option.get
  in
  (match
     Vdp_verif.Kvmodel.check_provenance ~summary ~store:"c8"
       ~default:(B.zero 8) ~read_var crash.E.cond
   with
  | Vdp_verif.Kvmodel.Written w ->
    Printf.printf "write-back check: bad value is producible via %s\n" w
  | _ -> Printf.printf "write-back check: unexpected result\n")

(* {1 E6 — incremental Step-2 solving vs flat re-solving} *)

(* The NetFlow+NAT configuration shared by E5/E6/E7. *)
let nat_config =
  {|
    cl :: Classifier(12/0800, -);
    strip :: Strip(14);
    chk :: CheckIPHeader;
    flow :: FlowCounter;
    nat :: IPRewriter(203.0.113.7);
    cks :: SetIPChecksum;
    out :: EtherEncap(2048, 02:00:00:00:00:01, 02:00:00:00:00:02);
    cl[0] -> strip -> chk -> flow -> nat -> cks -> out;
    cl[1] -> Discard; chk[1] -> Discard; nat[1] -> cks;
    |}

let violated_nodes = function
  | V.Violated vs -> List.sort_uniq compare (List.map (fun v -> v.V.node) vs)
  | V.Proved | V.Unknown _ -> []

let same_verdict a b =
  match (a, b) with
  | V.Proved, V.Proved -> true
  | V.Violated _, V.Violated _ -> violated_nodes a = violated_nodes b
  | V.Unknown _, V.Unknown _ -> true
  | _ -> false

let e6 () =
  section
    "E6: Step-2 solving, incremental context + query cache vs flat re-solve";
  let pipelines =
    [
      ("ip-router (7 elements)", full_router ());
      ("NetFlow+NAT", Click.Config.parse nat_config);
    ]
  in
  Printf.printf "%-24s %10s %10s %8s %s\n" "pipeline" "flat(s)" "incr(s)"
    "speedup" "agreement";
  let rows = ref [] in
  List.iter
    (fun (name, pl) ->
      (* Step 1 is shared work — prewarm it so only Step 2 is timed. *)
      Summaries.clear ();
      ignore (Summaries.of_pipeline pl);
      let run ~incremental ~cache =
        Solver.Cache.clear Solver.shared_cache;
        let config = { V.default_config with V.incremental; V.cache } in
        let crash = V.check_crash_freedom ~config pl in
        let bound = V.instruction_bound ~config pl in
        (crash, bound)
      in
      let fc, fb = run ~incremental:false ~cache:false in
      let ic, ib = run ~incremental:true ~cache:true in
      let flat_t = fc.V.stats.V.step2_time +. fb.V.b_stats.V.step2_time in
      let incr_t = ic.V.stats.V.step2_time +. ib.V.b_stats.V.step2_time in
      let agree =
        same_verdict fc.V.verdict ic.V.verdict
        && fb.V.bound = ib.V.bound
        && fb.V.exact = ib.V.exact
      in
      Printf.printf "%-24s %10.3f %10.3f %7.1fx %s\n%!" name flat_t incr_t
        (flat_t /. incr_t)
        (if agree then "verdicts+bounds identical" else "MISMATCH");
      rows :=
        Json.Obj
          [
            ("pipeline", Json.Str name);
            ("flat_seconds", Json.Float flat_t);
            ("incremental_seconds", Json.Float incr_t);
            ("speedup", Json.Float (flat_t /. incr_t));
            ("agree", Json.Bool agree);
          ]
        :: !rows;
      if not agree then begin
        Format.printf "  flat:  %a bound=%s exact=%b@."
          Vdp_verif.Report.pp_verdict fc.V.verdict
          (match fb.V.bound with Some b -> string_of_int b | None -> "-")
          fb.V.exact;
        Format.printf "  incr:  %a bound=%s exact=%b@."
          Vdp_verif.Report.pp_verdict ic.V.verdict
          (match ib.V.bound with Some b -> string_of_int b | None -> "-")
          ib.V.exact
      end)
    pipelines;
  record "pipelines" (Json.List (List.rev !rows));
  Printf.printf
    "\nthe incremental context keeps the blasted term DAG and learned\n\
     clauses across sibling composite paths; the cache removes queries\n\
     repeated across the crash-freedom and bound properties.\n"

(* Pull one float field back out of a previously written BENCH json;
   enough of a parser for the regression check against the committed
   baseline (flat file, field written by [Json.write]). *)
let json_float_field path key =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    let pat = Printf.sprintf "\"%s\":" key in
    let plen = String.length pat in
    let rec find i =
      if i + plen > String.length s then None
      else if String.sub s i plen = pat then Some (i + plen)
      else find (i + 1)
    in
    match find 0 with
    | None -> None
    | Some start ->
      let stop = ref start in
      while
        !stop < String.length s
        && (match s.[!stop] with
           | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
           | _ -> false)
      do
        incr stop
      done;
      float_of_string_opt (String.sub s start (!stop - start))
  end

(* {1 E7 — domain-parallel verification scaling} *)

let e7 () =
  section
    "E7: parallel scaling, 1/2/4/8 domains (Step-1 symbex fan-out +\n\
     Step-2 work-stealing task scheduler)";
  let smoke = Sys.getenv_opt "VDP_E7_SMOKE" <> None in
  (* Smoke mode (CI): the router pipeline at -j 2 only — a fast
     sequential-vs-parallel verdict differential through the
     work-stealing scheduler on every commit; the full jobs sweep and
     its gates run in full mode. *)
  let pipelines =
    [ ("ip-router (7 elements)", full_router ()) ]
    @
    if smoke then [] else [ ("NetFlow+NAT", Click.Config.parse nat_config) ]
  in
  let jobs_list = if smoke then [ 2 ] else [ 2; 4; 8 ] in
  (* End-to-end verification (crash freedom + instruction bound) from a
     cold start: summaries and the shared query cache are cleared before
     every run so Step 1 is re-done and timed too. *)
  let run ~incremental ~jobs pl =
    Summaries.clear ();
    Solver.Cache.clear Solver.shared_cache;
    Gc.compact ();
    let config =
      { V.default_config with V.incremental; V.cache = incremental; V.jobs }
    in
    time (fun () ->
        let crash = V.check_crash_freedom ~config pl in
        let bound = V.instruction_bound ~config pl in
        (crash, bound))
  in
  Printf.printf "%-24s %-18s %6s %10s %8s %s\n" "pipeline" "mode" "jobs"
    "time(s)" "speedup" "agreement";
  let rows = ref [] in
  let worst_ratio = ref 0. in
  List.iter
    (fun (name, pl) ->
      (* Warm up untimed: hash-consed terms are interned for good, so a
         pipeline's first verification majors-GC over a growing live set
         and every later one over the full set (~2x wall). All timed
         runs below must sit on the same side of that cliff or the
         jobs/mode comparison measures GC, not the scheduler. *)
      ignore (run ~incremental:true ~jobs:1 pl);
      let (rc0, rb0), base_t = run ~incremental:true ~jobs:1 pl in
      let report ?sched mode jobs (rc, rb) dt =
        let agree =
          same_verdict rc0.V.verdict rc.V.verdict
          && rb0.V.bound = rb.V.bound
          && rb0.V.exact = rb.V.exact
        in
        Printf.printf "%-24s %-18s %6d %10.3f %7.2fx %s\n%!" name mode jobs
          dt (base_t /. dt)
          (if agree then "ok" else "MISMATCH");
        if not agree then begin
          Printf.printf
            "E7 FAILED: %s -j %d verdict/bound differs from sequential\n"
            name jobs;
          exit_code := 1
        end;
        let sched_fields =
          match sched with
          | None -> []
          | Some (spawned, stolen, per_suspect) ->
            [
              ("tasks_spawned", Json.Int spawned);
              ("tasks_stolen", Json.Int stolen);
              ("tasks_per_suspect", Json.Float per_suspect);
            ]
        in
        rows :=
          Json.Obj
            ([
               ("pipeline", Json.Str name);
               ("mode", Json.Str mode);
               ("jobs", Json.Int jobs);
               ("seconds", Json.Float dt);
               ("speedup_vs_incremental_j1", Json.Float (base_t /. dt));
               ("crash_verdict", Json.Str (verdict_str rc.V.verdict));
               ( "bound",
                 match rb.V.bound with
                 | Some b -> Json.Int b
                 | None -> Json.Str "none" );
               ("composite_paths", Json.Int rc.V.stats.V.composite_paths);
               ("agree", Json.Bool agree);
             ]
            @ sched_fields)
          :: !rows;
        dt
      in
      let rf, dtf = run ~incremental:false ~jobs:1 pl in
      ignore (report "flat" 1 rf dtf);
      ignore (report "incremental" 1 (rc0, rb0) base_t);
      List.iter
        (fun jobs ->
          let g = Solver.stats in
          let sp0 = g.Solver.sched_spawned
          and stl0 = g.Solver.sched_stolen in
          let ((rc, rb) as r), dt = run ~incremental:true ~jobs pl in
          let spawned = g.Solver.sched_spawned - sp0 in
          let stolen = g.Solver.sched_stolen - stl0 in
          let suspects =
            rc.V.stats.V.suspect_checks + rb.V.b_stats.V.suspect_checks
          in
          let per_suspect =
            if suspects > 0 then float_of_int spawned /. float_of_int suspects
            else 0.
          in
          let dt =
            report ~sched:(spawned, stolen, per_suspect) "incremental+par"
              jobs r dt
          in
          if jobs = 4 then begin
            worst_ratio := max !worst_ratio (dt /. base_t);
            record
              (Printf.sprintf "speedup_at_4_domains (%s)" name)
              (Json.Float (base_t /. dt));
            record
              (Printf.sprintf "tasks_per_suspect_at_4_domains (%s)" name)
              (Json.Float per_suspect);
            (* Gate 1: fine-grained units — more scheduler tasks than
               suspect-path checks (each check is a task and interior
               tree nodes spawn their own). *)
            if per_suspect <= 1.0 then begin
              Printf.printf
                "E7 FAILED: %.2f scheduler tasks per suspect check on %s \
                 (want > 1)\n"
                per_suspect name;
              exit_code := 1
            end;
            (* Gate 2: bounded coordination overhead — on a single-core
               host -j 4 measures pure scheduler+GC overhead, and must
               stay within 10%% of the sequential run. *)
            if dt > 1.10 *. base_t then begin
              Printf.printf
                "E7 FAILED: -j 4 took %.2fs, more than 10%% over -j 1 \
                 (%.2fs) on %s\n"
                dt base_t name;
              exit_code := 1
            end
          end)
        jobs_list)
    pipelines;
  record "runs" (Json.List (List.rev !rows));
  record "available_cores" (Json.Int (Domain.recommended_domain_count ()));
  record "smoke" (Json.Bool smoke);
  if not smoke then record "worst_j4_over_j1" (Json.Float !worst_ratio);
  (if not smoke then
     match json_float_field "BENCH_e7_baseline.json" "worst_j4_over_j1" with
     | Some baseline ->
       let worst = !worst_ratio in
       let floor = max baseline 0.05 in
       let regressed = worst > 2. *. floor in
       record "baseline_worst_j4_over_j1" (Json.Float baseline);
       record "regressed" (Json.Bool regressed);
       if regressed then begin
         Printf.printf
           "E7 FAILED: worst -j4/-j1 ratio %.2f is more than 2x the \
            baseline %.2f\n"
           worst baseline;
         exit_code := 1
       end
       else
         Printf.printf "no regression vs baseline (%.2f <= 2x %.2f)\n" worst
           floor
     | None -> Printf.printf "no BENCH_e7_baseline.json; skipping regression check\n");
  Printf.printf
    "\nnote: speedup is bounded by the machine's core count\n\
     (Domain.recommended_domain_count = %d here); on a single-core host\n\
     the parallel runs measure coordination overhead, not speedup.\n"
    (Domain.recommended_domain_count ())

(* {1 E8 — witness replay and the differential oracle} *)

let e8 () =
  section
    "E8: witness replay + differential fuzzing (summaries vs concrete \
     runtime)";
  let module W = Vdp_verif.Witness in
  Summaries.clear ();
  let seed = 7 and count = 500 in
  (* Part 1: the differential oracle on the safe pipelines — every random
     packet must take the same path, touch the same state and spend an
     instruction count inside the summarized interval on both sides. *)
  let pipelines =
    [
      ("ip-router (7 elements)", full_router ());
      ("NetFlow+NAT", Click.Config.parse nat_config);
    ]
    @ List.filter_map
        (fun path ->
          if Sys.file_exists path then
            Some (path, Click.Config.parse_file path)
          else None)
        [ "examples/router.click"; "examples/firewall.click" ]
  in
  Printf.printf "%-28s %8s %8s %8s %10s %9s\n" "pipeline" "packets" "hops"
    "approx" "disagree" "time(s)";
  let rows = ref [] in
  let failed = ref false in
  let run_one name r dt =
    let nfail = List.length r.W.f_failures in
    if nfail > 0 then failed := true;
    Printf.printf "%-28s %8d %8d %8d %10d %9.2f\n%!" name r.W.f_packets
      r.W.f_hops r.W.f_approx nfail dt;
    List.iter
      (fun (i, m) -> Printf.printf "    packet %d: %s\n" i m)
      r.W.f_failures;
    rows :=
      Json.Obj
        [
          ("pipeline", Json.Str name);
          ("packets", Json.Int r.W.f_packets);
          ("hops", Json.Int r.W.f_hops);
          ("approx_hops", Json.Int r.W.f_approx);
          ("disagreements", Json.Int nfail);
          ("seconds", Json.Float dt);
        ]
      :: !rows
  in
  List.iter
    (fun (name, pl) ->
      let r, dt = time (fun () -> W.differential ~seed ~count pl) in
      run_one name r dt)
    pipelines;
  (* The same workload with Step 1 fanned out over 4 domains must agree
     byte for byte with the sequential run. *)
  let rpar, dtp =
    time (fun () ->
        Vdp_verif.Pool.with_pool 4 (fun pool ->
            W.differential ~pool ~seed ~count (full_router ())))
  in
  run_one "ip-router (j=4)" rpar dtp;
  record "differential" (Json.List (List.rev !rows));
  record "seed" (Json.Int seed);
  (* Part 2: replay confirmation — every violation the verifier reports
     on the buggy pipelines must reproduce on the concrete runtime, from
     the witness packet plus the recovered initial private state. *)
  let guard cls config =
    Click.Pipeline.linear
      [
        Click.Registry.make ~name:"cl" ~cls:"Classifier" ~config:[ "12/0800" ];
        Click.Registry.make ~name:"strip" ~cls:"Strip" ~config:[ "14" ];
        Click.Registry.make ~name:"chk" ~cls:"CheckIPHeader" ~config:[];
        Click.Registry.make ~name:"x" ~cls ~config;
      ]
  in
  let buggy =
    [
      ("toy e2 (assert crash)", Click.El_toy.e2_pipeline ());
      ("BuggyCounter", guard "BuggyCounter" []);
      ("BuggyQuota(1000)", guard "BuggyQuota" [ "1000" ]);
      ("BuggyNAT", guard "BuggyNAT" [ "198.51.100.1" ]);
    ]
  in
  Printf.printf "\n%-24s %10s %10s %10s\n" "buggy pipeline" "violations"
    "replays" "confirmed";
  let vrows = ref [] in
  let total_replays = ref 0 and total_confirmed = ref 0 in
  List.iter
    (fun (name, pl) ->
      Summaries.clear ();
      let r = V.check_crash_freedom pl in
      let vs = match r.V.verdict with V.Violated vs -> vs | _ -> [] in
      let confirmed = List.filter (fun v -> v.V.confirmed) vs in
      total_replays := !total_replays + r.V.stats.V.replays;
      total_confirmed := !total_confirmed + r.V.stats.V.replays_confirmed;
      if vs = [] || List.length confirmed < List.length vs then begin
        failed := true;
        List.iter
          (fun (v : V.violation) ->
            if not v.V.confirmed then
              Printf.printf "    UNCONFIRMED at node %d: %s\n" v.V.node
                (match v.V.replayed with
                | Some { W.status = W.Unconfirmed why; _ } -> why
                | _ -> "no replay attempted"))
          vs
      end;
      Printf.printf "%-24s %10d %10d %10d\n%!" name (List.length vs)
        r.V.stats.V.replays (List.length confirmed);
      vrows :=
        Json.Obj
          [
            ("pipeline", Json.Str name);
            ("violations", Json.Int (List.length vs));
            ("replays", Json.Int r.V.stats.V.replays);
            ("confirmed", Json.Int (List.length confirmed));
          ]
        :: !vrows)
    buggy;
  record "violations" (Json.List (List.rev !vrows));
  record "replays" (Json.Int !total_replays);
  record "replays_confirmed" (Json.Int !total_confirmed);
  record "confirm_rate"
    (Json.Float
       (if !total_replays = 0 then 0.
        else float_of_int !total_confirmed /. float_of_int !total_replays));
  record "pass" (Json.Bool (not !failed));
  if !failed then begin
    Printf.printf "\nE8 FAILED: disagreement or unconfirmed violation above\n";
    exit_code := 1
  end
  else
    Printf.printf
      "\nevery random packet agreed on both sides and every reported\n\
       violation reproduced concretely (confirm rate %d/%d).\n"
      !total_confirmed !total_replays

(* {1 E9 — word-level preprocessing + gate-level sharing} *)

let e9 () =
  section
    "E9: word-level preprocessing + gate-level sharing on Step-2-shaped \
     queries";
  let smoke = Sys.getenv_opt "VDP_E9_SMOKE" <> None in
  let iters = if smoke then 10 else 50 in
  (* Each query is shaped like a composite Step-2 condition: definition
     equalities that substitution should eliminate, a conjunct over a
     variable nothing else mentions, an all-defaults-satisfiable
     independent component, and subtraction/comparison cones over the
     same operands so the bit-blaster's structural gate cache gets
     exercised within a single blast. *)
  let v16 n = T.var ("e9" ^ n) 16 in
  let c16 = T.bv_int ~width:16 in
  let c8 = T.bv_int ~width:8 in
  let a = v16 "a" and b = v16 "b" and c = v16 "c" and d = v16 "d" in
  let k = v16 "k" and k2 = v16 "k2" in
  let x = v16 "x" and y = v16 "y" in
  let p0 = T.var "e9p0" 8 in
  let queries =
    [
      ( "def-elim + shared sub/cmp cone",
        [
          T.eq k (T.sub a b);
          T.ule k c;
          T.ule b a;
          T.ult c (c16 0x4000);
          (* nonzero anchor: keeps the component off the all-defaults
             slice so both modes actually reach the SAT core *)
          T.ule (c16 1) b;
        ] );
      ( "byte pin + constant propagation",
        [
          T.eq p0 (c8 0x45);
          T.eq k (T.add (T.zext 16 p0) c);
          T.ult k (c16 0x8000);
          T.eq k2 (T.sub a b);
          T.ule k2 c;
          T.ule b a;
          T.ule (c16 1) b;
        ] );
      ( "unconstrained-variable drop",
        [
          T.ule d (c16 100);
          T.eq k (T.sub a b);
          T.ult k c;
          T.ule b a;
          T.ule (c16 1) b;
        ] );
      ( "ite under negated condition",
        [
          T.eq k (T.ite (T.ult a b) c d);
          T.eq k2 (T.ite (T.ule b a) d c);
          T.ule k k2;
          T.eq (T.band k (c16 0xff)) (c16 0x2a);
        ] );
      ( "transitivity refuted by SAT",
        [
          T.eq k (T.add a b);
          T.ule k c;
          T.ule c d;
          T.ult d k;
          T.eq k2 (T.sub a b);
          T.ule k2 (c16 0xfff0);
          T.ule b a;
        ] );
      ( "independent sliceable component",
        [
          T.ule x y;
          T.eq k (T.sub a b);
          T.ule k c;
          T.ule b a;
          T.ule (c16 1) b;
        ] );
    ]
  in
  let run_query ~preprocess terms =
    Solver.reset_stats ();
    let verdict = ref "?" in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      verdict :=
        match Solver.check ~preprocess terms with
        | Solver.Sat _ -> "sat"
        | Solver.Unsat -> "unsat"
        | Solver.Unknown -> "unknown"
    done;
    let dt = (Unix.gettimeofday () -. t0) /. float_of_int iters in
    let s = Solver.stats in
    ( !verdict,
      dt,
      s.Solver.sat_vars / iters,
      s.Solver.sat_clauses / iters,
      s.Solver.gate_hits / iters,
      (s.Solver.gate_hits + s.Solver.gate_misses) / iters,
      (s.Solver.eliminated_conjuncts + s.Solver.sliced_conjuncts) / iters )
  in
  Printf.printf "%-34s %7s  %12s %14s %10s %9s\n" "query" "verdict"
    "vars off/on" "clauses off/on" "gate hits" "elim";
  let rows = ref [] in
  let queries_ok = ref true in
  let total_hits = ref 0 in
  let total_on = ref 0. and total_off = ref 0. in
  List.iter
    (fun (name, terms) ->
      let voff, toff, vars_off, cls_off, _, _, _ =
        run_query ~preprocess:false terms
      in
      let von, ton, vars_on, cls_on, hits_on, gates_on, elim_on =
        run_query ~preprocess:true terms
      in
      total_on := !total_on +. ton;
      total_off := !total_off +. toff;
      total_hits := !total_hits + hits_on;
      let agree = voff = von in
      let reduced = vars_on < vars_off && cls_on < cls_off in
      if not (agree && reduced) then queries_ok := false;
      Printf.printf "%-34s %7s  %5d/%-6d %7d/%-6d %6d/%-3d %6d %s\n%!" name
        von vars_off vars_on cls_off cls_on hits_on gates_on elim_on
        ((if agree then "" else " VERDICT-MISMATCH")
        ^ if reduced then "" else " NOT-REDUCED");
      rows :=
        Json.Obj
          [
            ("query", Json.Str name);
            ("verdict", Json.Str von);
            ("agree", Json.Bool agree);
            ("sat_vars_off", Json.Int vars_off);
            ("sat_vars_on", Json.Int vars_on);
            ("sat_clauses_off", Json.Int cls_off);
            ("sat_clauses_on", Json.Int cls_on);
            ("gate_hits_on", Json.Int hits_on);
            ("gates_on", Json.Int gates_on);
            ("conjuncts_eliminated", Json.Int elim_on);
            ("seconds_off", Json.Float toff);
            ("seconds_on", Json.Float ton);
            ("strictly_reduced", Json.Bool reduced);
          ]
        :: !rows)
    queries;
  record "queries" (Json.List (List.rev !rows));
  record "iterations" (Json.Int iters);
  record "per_query_seconds_preprocessed" (Json.Float !total_on);
  record "per_query_seconds_raw" (Json.Float !total_off);
  let gate_sharing_ok = !total_hits > 0 in
  Printf.printf
    "\npreprocessed totals: %.4fs vs %.4fs raw per pass; %d gate-cache \
     hits\n"
    !total_on !total_off !total_hits;
  if not !queries_ok then begin
    Printf.printf
      "E9 FAILED: a query disagreed or was not strictly reduced\n";
    exit_code := 1
  end;
  if not gate_sharing_ok then begin
    Printf.printf "E9 FAILED: the structural gate cache never hit\n";
    exit_code := 1
  end;
  (* End-to-end differential: both example pipelines, full crash +
     bound verification, preprocessing on vs off, must agree. *)
  let examples =
    List.filter Sys.file_exists
      [ "examples/router.click"; "examples/firewall.click" ]
  in
  let erows = ref [] in
  List.iter
    (fun path ->
      let pl = Click.Config.parse_file path in
      (* The instruction bound enumerates far more composite paths than
         crash freedom; on the segment-heavy firewall (IPFilter) that
         search is impractical in either mode, so the bound leg of the
         differential runs on the router only. *)
      let with_bound = path = "examples/router.click" in
      let run ~preprocess =
        Summaries.clear ();
        Solver.Cache.clear Solver.shared_cache;
        let config = { V.default_config with V.preprocess } in
        let crash = V.check_crash_freedom ~config pl in
        let bound =
          if with_bound then Some (V.instruction_bound ~config pl) else None
        in
        (crash, bound)
      in
      let (c1, b1), dt1 = time (fun () -> run ~preprocess:true) in
      let (c0, b0), dt0 = time (fun () -> run ~preprocess:false) in
      let bound r = Option.bind r (fun (b : V.bound_report) -> b.V.bound) in
      let agree =
        same_verdict c1.V.verdict c0.V.verdict
        && bound b1 = bound b0
        && Option.map (fun (b : V.bound_report) -> b.V.exact) b1
           = Option.map (fun (b : V.bound_report) -> b.V.exact) b0
      in
      Printf.printf
        "%-28s preprocess on %.2fs / off %.2fs: %s (%s, bound %s)\n%!" path
        dt1 dt0
        (if agree then "identical verdicts+bounds" else "MISMATCH")
        (verdict_str c1.V.verdict)
        (match bound b1 with
        | Some b -> string_of_int b
        | None -> if with_bound then "none" else "skipped");
      if not agree then begin
        Printf.printf "E9 FAILED: end-to-end divergence on %s\n" path;
        exit_code := 1
      end;
      erows :=
        Json.Obj
          [
            ("pipeline", Json.Str path);
            ("agree", Json.Bool agree);
            ("crash_verdict", Json.Str (verdict_str c1.V.verdict));
            ( "bound",
              match bound b1 with
              | Some b -> Json.Int b
              | None -> Json.Str (if with_bound then "none" else "skipped") );
            ("seconds_preprocessed", Json.Float dt1);
            ("seconds_raw", Json.Float dt0);
          ]
        :: !erows)
    examples;
  record "end_to_end" (Json.List (List.rev !erows));
  (* Regression check against the committed baseline: the per-pass
     query total is iteration-normalized, so smoke runs compare on the
     same scale as full runs. *)
  (match
     json_float_field "BENCH_e9_baseline.json" "per_query_seconds_preprocessed"
   with
  | Some baseline ->
    let floor = max baseline 0.001 in
    let regressed = !total_on > 2. *. floor in
    record "baseline_seconds" (Json.Float baseline);
    record "regressed" (Json.Bool regressed);
    if regressed then begin
      Printf.printf
        "E9 FAILED: query total %.4fs is more than 2x the baseline %.4fs\n"
        !total_on baseline;
      exit_code := 1
    end
    else
      Printf.printf "no regression vs baseline (%.4fs <= 2x %.4fs)\n"
        !total_on floor
  | None ->
    Printf.printf "no BENCH_e9_baseline.json; skipping regression check\n")

(* {1 E10 — proof-certificate coverage and overhead} *)

let e10 () =
  section "E10: proof-certificate coverage and overhead";
  let module C = Vdp_cert.Certificate in
  let smoke = Sys.getenv_opt "VDP_E10_SMOKE" <> None in
  (* Verify each pipeline twice — certification off, then on — and
     require (a) identical verdicts/bounds, (b) every refutation behind
     the certified run independently validated. The instruction bound
     runs on the router only (see E9: the firewall's segment count makes
     it impractical in either mode). The regression gate is computed
     over the two fast pipelines only, so smoke and full runs compare on
     the same scale; smoke mode skips the router entirely. *)
  let pipelines =
    List.concat
      [
        (if Sys.file_exists "examples/firewall.click" then
           [
             ( "examples/firewall.click",
               Click.Config.parse_file "examples/firewall.click",
               false,
               true );
           ]
         else []);
        [ ("NetFlow+NAT", Click.Config.parse nat_config, false, true) ];
        (if (not smoke) && Sys.file_exists "examples/router.click" then
           [
             ( "examples/router.click",
               Click.Config.parse_file "examples/router.click",
               true,
               false );
           ]
         else []);
      ]
  in
  let rows = ref [] in
  let gated_total = ref 0. in
  List.iter
    (fun (name, pl, with_bound, gated) ->
      let run ~certify =
        Summaries.clear ();
        Solver.Cache.clear Solver.shared_cache;
        (* Level the heap between the plain and certified runs: floating
           garbage inherited from the previous run otherwise inflates
           whichever run happens second. *)
        Gc.compact ();
        Solver.reset_stats ();
        let config = { V.default_config with V.certify } in
        let crash = V.check_crash_freedom ~config pl in
        let bound =
          if with_bound then Some (V.instruction_bound ~config pl) else None
        in
        (crash, bound)
      in
      (* Warm up once, untimed: hash-consed terms survive the run (the
         intern table is deliberately permanent), so the first
         verification of a pipeline pays major-GC marking over a growing
         live set while every later one marks the full set throughout —
         about 2x slower wall, whatever the mode. Warming up puts both
         timed runs on the later, steady-state side of that cliff, so
         the ratio below measures certification cost and nothing else. *)
      ignore (run ~certify:false);
      let (c0, b0), dt0 = time (fun () -> run ~certify:false) in
      let (c1, b1), dt1 = time (fun () -> run ~certify:true) in
      if gated then gated_total := !gated_total +. dt1;
      let bound_of r = Option.bind r (fun (b : V.bound_report) -> b.V.bound) in
      let verdict_ok =
        same_verdict c0.V.verdict c1.V.verdict && bound_of b0 = bound_of b1
      in
      (* Every property the certified run proved must carry a summary
         with full coverage; a Proved verdict with an uncertified (or
         missing) refutation is exactly what this experiment exists to
         catch. *)
      let summaries =
        (match c1.V.cert with
        | Some s -> [ ("crash", s) ]
        | None -> [])
        @
        match b1 with
        | Some b -> (
          match b.V.b_cert with Some s -> [ ("bound", s) ] | None -> [])
        | None -> []
      in
      let covered =
        summaries <> []
        && List.for_all
             (fun (_, (s : C.summary)) ->
               s.C.failed = 0 && s.C.certified = s.C.attempted)
             summaries
      in
      let cert_json (s : C.summary) =
        Json.Obj
          [
            ("attempted", Json.Int s.C.attempted);
            ("certified", Json.Int s.C.certified);
            ("failed", Json.Int s.C.failed);
            ("folded", Json.Int s.C.folded);
            ("interval", Json.Int s.C.interval);
            ("drat", Json.Int s.C.drat);
            ("cached", Json.Int s.C.cached);
            ("proof_clauses", Json.Int s.C.proof_clauses);
            ("proof_deletions", Json.Int s.C.proof_deletions);
            ("pcache_hits", Json.Int s.C.pcache_hits);
            ("trimmed_clauses", Json.Int s.C.trimmed_clauses);
            ("untrimmed_clauses", Json.Int s.C.untrimmed_clauses);
            ("solve_seconds", Json.Float s.C.solve_seconds);
            ("check_seconds", Json.Float s.C.check_seconds);
          ]
      in
      Printf.printf
        "%-28s plain %.2fs / certified %.2fs (%.2fx): %s, %s\n%!" name dt0
        dt1
        (if dt0 > 0. then dt1 /. dt0 else 0.)
        (verdict_str c1.V.verdict)
        (if verdict_ok && covered then
           String.concat "; "
             (List.map
                (fun (prop, (s : C.summary)) ->
                  Printf.sprintf "%s %d/%d certified" prop s.C.certified
                    s.C.attempted)
                summaries)
         else "FAILED");
      if not verdict_ok then begin
        Printf.printf "E10 FAILED: certification changed the verdict on %s\n"
          name;
        exit_code := 1
      end;
      if not covered then begin
        Printf.printf "E10 FAILED: uncertified refutations on %s\n" name;
        exit_code := 1
      end;
      (* Always-on gate: certification may cost at most 1.5x the plain
         run (it used to cost 5-7x before backward trimming, core-subset
         re-blasting and the proof cache). A small absolute floor keeps
         sub-second runs from failing on timer jitter. *)
      let ratio = if dt0 > 0. then dt1 /. dt0 else 0. in
      if dt1 > (1.5 *. dt0) +. 0.2 then begin
        Printf.printf
          "E10 FAILED: certified run %.2fs is more than 1.5x the plain \
           %.2fs on %s\n"
          dt1 dt0 name;
        exit_code := 1
      end;
      (* Backward trimming must actually shrink every freshly produced
         DRAT proof set: strictly fewer clauses kept than the forward
         log recorded. *)
      let trim_ok =
        List.for_all
          (fun (_, (s : C.summary)) ->
            s.C.drat = 0
            || (s.C.trimmed_clauses < s.C.untrimmed_clauses
               && s.C.proof_deletions = 0))
          summaries
      in
      if not trim_ok then begin
        Printf.printf
          "E10 FAILED: trimmed proofs not strictly smaller than the \
           forward log on %s\n"
          name;
        exit_code := 1
      end;
      rows :=
        Json.Obj
          [
            ("pipeline", Json.Str name);
            ("crash_verdict", Json.Str (verdict_str c1.V.verdict));
            ( "bound",
              match bound_of b1 with
              | Some b -> Json.Int b
              | None -> Json.Str (if with_bound then "none" else "skipped")
            );
            ("verdicts_agree", Json.Bool verdict_ok);
            ("fully_certified", Json.Bool covered);
            ("trim_strictly_smaller", Json.Bool trim_ok);
            ("seconds_plain", Json.Float dt0);
            ("seconds_certified", Json.Float dt1);
            ("certified_over_plain", Json.Float ratio);
            ( "certificates",
              Json.Obj (List.map (fun (p, s) -> (p, cert_json s)) summaries)
            );
          ]
        :: !rows)
    pipelines;
  record "pipelines" (Json.List (List.rev !rows));
  record "smoke" (Json.Bool smoke);
  record "gated_certify_seconds" (Json.Float !gated_total);
  match
    json_float_field "BENCH_e10_baseline.json" "gated_certify_seconds"
  with
  | Some baseline ->
    let floor = max baseline 0.001 in
    let regressed = !gated_total > 2. *. floor in
    record "baseline_seconds" (Json.Float baseline);
    record "regressed" (Json.Bool regressed);
    if regressed then begin
      Printf.printf
        "E10 FAILED: certified runs took %.2fs, more than 2x the baseline \
         %.2fs\n"
        !gated_total baseline;
      exit_code := 1
    end
    else
      Printf.printf "no regression vs baseline (%.2fs <= 2x %.2fs)\n"
        !gated_total floor
  | None ->
    Printf.printf "no BENCH_e10_baseline.json; skipping regression check\n"

(* {1 E11 — batched runtime and compiled fast-path throughput} *)

(* Packets/sec on the evaluation pipelines, one run per engine. Each
   engine gets a fresh instance and an identically seeded workload, so
   store evolution is the same on every run — which lets the experiment
   double as a differential check: aggregate stats (finals, instruction
   totals, per-packet max) must agree bit for bit across engines.

   The regression gate is on the compiled-vs-scalar speedup ratio, not
   absolute pps, so the committed baseline is machine-independent. *)
let e11 () =
  section
    "E11: packets/sec — scalar interpreter vs batched vs batched+compiled";
  let smoke = Sys.getenv_opt "VDP_E11_SMOKE" <> None in
  let count = if smoke then 5_000 else 200_000 in
  let seed = 11 in
  let pipelines =
    [
      ("ip-router (7 elements)", full_router ());
      ("NetFlow+NAT", Click.Config.parse nat_config);
    ]
    @ List.filter_map
        (fun path ->
          if Sys.file_exists path then
            Some (path, Click.Config.parse_file path)
          else None)
        [ "examples/firewall.click" ]
  in
  let engines = Click.Runtime.[ Scalar; Batched; Compiled ] in
  Printf.printf "%d packets per run (seed %d)%s\n\n" count seed
    (if smoke then " [smoke]" else "");
  Printf.printf "%-24s %10s %12s %10s %9s\n" "pipeline" "engine" "pps"
    "speedup" "time(s)";
  let rows = ref [] in
  let stats_diverged = ref false in
  let best_speedup = ref 0. in
  List.iter
    (fun (name, pl) ->
      let scalar_pps = ref 0. in
      let scalar_stats = ref None in
      (* A fixed template pool driven round-robin (steady state, no
         allocation in the timed loop) rather than one list of [count]
         packets: hundreds of MB of live packet buffers would make the
         timings GC noise. Same pool and order per engine: identical
         packets, so identical outcomes and store evolution are
         required, not hoped for. *)
      let templates =
        Array.of_list (Gen.workload ~seed ~nflows:32 ~corrupt_ratio:0.1 1024)
      in
      List.iter
        (fun engine ->
          let inst = Click.Runtime.instantiate ~engine pl in
          Gc.full_major ();
          let st, dt =
            time (fun () -> Click.Runtime.run_pool inst templates count)
          in
          let pps = if dt > 0. then float_of_int st.Click.Runtime.sent /. dt else 0. in
          (match engine with
          | Click.Runtime.Scalar ->
            scalar_pps := pps;
            scalar_stats := Some st
          | _ -> ());
          let speedup = if !scalar_pps > 0. then pps /. !scalar_pps else 1. in
          (match engine with
          | Click.Runtime.Compiled ->
            if speedup > !best_speedup then best_speedup := speedup
          | _ -> ());
          let agree =
            match !scalar_stats with
            | None -> true
            | Some s0 ->
              s0.Click.Runtime.sent = st.Click.Runtime.sent
              && s0.Click.Runtime.egressed = st.Click.Runtime.egressed
              && s0.Click.Runtime.dropped = st.Click.Runtime.dropped
              && s0.Click.Runtime.crashed = st.Click.Runtime.crashed
              && s0.Click.Runtime.hop_budget = st.Click.Runtime.hop_budget
              && s0.Click.Runtime.instrs = st.Click.Runtime.instrs
              && s0.Click.Runtime.max_instrs = st.Click.Runtime.max_instrs
          in
          if not agree then begin
            stats_diverged := true;
            Printf.printf
              "    DIVERGED: %s %s disagrees with scalar on aggregate stats\n"
              name
              (Click.Runtime.engine_name engine)
          end;
          Printf.printf "%-24s %10s %12.0f %9.1fx %9.2f%s\n%!" name
            (Click.Runtime.engine_name engine)
            pps speedup dt
            (if agree then "" else "  [STATS DIVERGED]");
          rows :=
            Json.Obj
              [
                ("pipeline", Json.Str name);
                ("engine", Json.Str (Click.Runtime.engine_name engine));
                ("packets", Json.Int st.Click.Runtime.sent);
                ("egressed", Json.Int st.Click.Runtime.egressed);
                ("dropped", Json.Int st.Click.Runtime.dropped);
                ("crashed", Json.Int st.Click.Runtime.crashed);
                ("hop_budget", Json.Int st.Click.Runtime.hop_budget);
                ("instrs", Json.Int st.Click.Runtime.instrs);
                ("pps", Json.Float pps);
                ("speedup_vs_scalar", Json.Float speedup);
                ("seconds", Json.Float dt);
                ("stats_match_scalar", Json.Bool agree);
              ]
            :: !rows)
        engines)
    pipelines;
  record "runs" (Json.List (List.rev !rows));
  record "packets_per_run" (Json.Int count);
  record "seed" (Json.Int seed);
  record "smoke" (Json.Bool smoke);
  record "best_compiled_speedup" (Json.Float !best_speedup);
  if !stats_diverged then begin
    Printf.printf "\nE11 FAILED: engines disagreed on aggregate stats\n";
    exit_code := 1
  end;
  (* Timing gates only outside smoke mode — 5k-packet smoke runs are
     noise-dominated, but the cross-engine stats check above always
     applies. *)
  if not smoke then begin
    if !best_speedup < 10. then begin
      Printf.printf
        "\nE11 FAILED: best compiled speedup %.1fx is below the 10x target\n"
        !best_speedup;
      exit_code := 1
    end;
    match
      json_float_field "BENCH_e11_baseline.json" "best_compiled_speedup"
    with
    | Some baseline ->
      let regressed = !best_speedup < 0.5 *. baseline in
      record "baseline_speedup" (Json.Float baseline);
      record "regressed" (Json.Bool regressed);
      if regressed then begin
        Printf.printf
          "E11 FAILED: best compiled speedup %.1fx is less than half the \
           baseline %.1fx\n"
          !best_speedup baseline;
        exit_code := 1
      end
      else
        Printf.printf
          "\nbest compiled speedup %.1fx (baseline %.1fx; no regression)\n"
          !best_speedup baseline
    | None ->
      Printf.printf
        "\nbest compiled speedup %.1fx; no BENCH_e11_baseline.json, \
         skipping regression check\n"
        !best_speedup
  end

(* {1 E12 — re-verification latency under config churn}

   The paper's pitch is verification you can afford to re-run when the
   configuration changes. This experiment builds a production-scale
   (1M-prefix) FIB behind RadixIPLookup, proves the router crash-free,
   then applies single route changes and measures how long the verifier
   takes to produce the next verdict. Step-1 summaries and Step-2 query
   cache entries are tagged with the static-state slices they read, so
   a rule change invalidates only dependent entries — for the radix
   element (whose table reads are symbolic in the address, hence
   content-independent) that is {e nothing}, and re-verification is a
   summary-cache probe returning the memoized verdict in milliseconds.

   Gates: the 1M-entry tables must build in a few seconds (this part
   runs in CI via VDP_E12_SMOKE=1); the array-backed DIR-16-8-8 store
   must agree with the reference trie on randomized lookups; the
   incremental verdict must equal the from-scratch one and arrive at
   least 10x faster (regression-gated against BENCH_e12_baseline.json). *)

let e12 () =
  section "E12: re-verification latency after a route change (1M-entry FIB)";
  let smoke = Sys.getenv_opt "VDP_E12_SMOKE" <> None in
  (* Table size is overridable for experimentation; the gates below are
     calibrated for (and CI runs at) the default 1M. *)
  let nroutes =
    match Sys.getenv_opt "VDP_E12_ROUTES" with
    | Some s -> (try int_of_string s with _ -> 1_000_000)
    | None -> 1_000_000
  in
  let rng = Random.State.make [| 0xe12 |] in
  let mask32 len =
    if len = 0 then 0 else 0xffffffff lxor ((1 lsl (32 - len)) - 1)
  in
  let rand32 () =
    ((Random.State.bits rng land 0xffff) lsl 16)
    lor (Random.State.bits rng land 0xffff)
  in
  (* Internet-table-like prefix-length mix (BGP reports): /24 dominates,
     mid lengths taper off toward /17, long prefixes are a small tail
     concentrated at /28-/32. *)
  let gen_plen () =
    let r = Random.State.int rng 1000 in
    if r < 10 then 8 + Random.State.int rng 8
    else if r < 60 then 16
    else if r < 65 then 17
    else if r < 75 then 18
    else if r < 95 then 19
    else if r < 130 then 20
    else if r < 170 then 21
    else if r < 270 then 22
    else if r < 370 then 23
    else if r < 950 then 24
    else if r < 960 then 25 + Random.State.int rng 3
    else 28 + Random.State.int rng 5
  in
  let gen_route () =
    let plen = gen_plen () in
    {
      Click.El_lookup.prefix = rand32 () land mask32 plen;
      plen;
      gw = 0;
      port = Random.State.int rng 3;
    }
  in
  let routes =
    { Click.El_lookup.prefix = 0; plen = 0; gw = 0; port = 2 }
    :: List.init nroutes (fun _ -> gen_route ())
  in
  (* Mutations from here on sweep the verification caches; empty them
     so the millions of build-time slot writes sweep empty tables. *)
  Summaries.clear ();
  Vdp_verif.Staleness.reset_stats ();
  (* 1M-entry builds: the standalone DIR-16-8-8 array store and the
     element-level FIB (three shared static stores + ownership maps). *)
  let triples =
    List.map
      (fun (r : Click.El_lookup.route) ->
        (r.Click.El_lookup.prefix, r.Click.El_lookup.plen,
         r.Click.El_lookup.port + 1))
      routes
  in
  let dir, dir_dt = time (fun () -> Vdp_tables.Dir_lpm.of_routes triples) in
  let fib, fib_dt =
    time (fun () -> Click.El_lookup.Fib.create ~nports:3 routes)
  in
  let dir_slots = Vdp_tables.Dir_lpm.memory_slots dir in
  Printf.printf
    "build (%d routes): DIR-16-8-8 %.2fs (%d slots, ~%.0f MB), element FIB \
     %.2fs (%d routes)\n"
    (List.length routes) dir_dt dir_slots
    (float_of_int (dir_slots * 9) /. 1e6)
    fib_dt
    (Click.El_lookup.Fib.count fib);
  let build_budget = 8.0 in
  if dir_dt > build_budget || fib_dt > build_budget then begin
    Printf.printf "E12 FAILED: 1M-entry build exceeded %.0fs\n" build_budget;
    exit_code := 1
  end;
  (* Randomized differential of the compact store against the reference
     trie, on a deduplicated subset (the trie is pointer-fat at 1M). *)
  let sub_n = 100_000 in
  let dedup = Hashtbl.create sub_n in
  List.iter
    (fun (p, l, v) ->
      if Hashtbl.length dedup < sub_n || Hashtbl.mem dedup (p, l) then
        Hashtbl.replace dedup (p, l) v)
    triples;
  let sub = Hashtbl.fold (fun (p, l) v acc -> (p, l, v) :: acc) dedup [] in
  let trie = Vdp_tables.Lpm.of_list sub in
  let dir_sub = Vdp_tables.Dir_lpm.of_routes sub in
  let nlookups = if smoke then 50_000 else 200_000 in
  let mismatches = ref 0 in
  for _ = 1 to nlookups do
    let addr = rand32 () in
    if Vdp_tables.Lpm.lookup trie addr <> Vdp_tables.Dir_lpm.lookup dir_sub addr
    then incr mismatches
  done;
  Printf.printf "differential vs trie: %d lookups, %d mismatches\n" nlookups
    !mismatches;
  if !mismatches > 0 then begin
    Printf.printf "E12 FAILED: DIR store disagrees with the reference trie\n";
    exit_code := 1
  end;
  (* The router pipeline with the 1M-entry FIB behind RadixIPLookup. *)
  let rt =
    Click.Element.make ~name:"rt" ~cls:"RadixIPLookup"
      ~config:[ Printf.sprintf "<%d routes>" (Click.El_lookup.Fib.count fib) ]
      (Click.El_lookup.radix_program fib)
  in
  let elements =
    List.map
      (fun (e : Click.Element.t) ->
        if e.Click.Element.name = "rt" then rt else e)
      (router_elements ())
  in
  let pl = Click.Pipeline.linear elements in
  let session = V.session pl in
  let (r_cold, _), cold_dt = time (fun () -> V.verify_crash session) in
  Printf.printf "initial verification: %s in %.2fs\n"
    (verdict_str r_cold.V.verdict)
    cold_dt;
  (* Churn: single-route changes, each followed by re-verification. *)
  Vdp_verif.Staleness.reset_stats ();
  let rounds = if smoke then 3 else 10 in
  let latencies = ref [] in
  let verdicts_agree = ref true in
  for i = 1 to rounds do
    let prefix = rand32 () land mask32 24 in
    if i mod 3 = 0 then
      ignore (Click.El_lookup.Fib.delete fib ~prefix ~plen:24)
    else
      Click.El_lookup.Fib.insert fib
        { Click.El_lookup.prefix; plen = 24; gw = 0; port = i mod 3 };
    let (r, _reused), dt = time (fun () -> V.verify_crash session) in
    latencies := dt :: !latencies;
    if verdict_str r.V.verdict <> verdict_str r_cold.V.verdict then
      verdicts_agree := false
  done;
  let lat = !latencies in
  let lat_max = List.fold_left max 0. lat in
  let lat_avg =
    List.fold_left ( +. ) 0. lat /. float_of_int (List.length lat)
  in
  let st = Vdp_verif.Staleness.stats in
  Printf.printf
    "%d single-route changes: re-verify avg %.4fs, max %.4fs\n\
     staleness: %d slot writes swept, %d summaries + %d cached queries \
     invalidated\n"
    rounds lat_avg lat_max st.Vdp_verif.Staleness.mutations
    st.Vdp_verif.Staleness.summaries_dropped
    st.Vdp_verif.Staleness.queries_dropped;
  (* From-scratch comparison run: cold caches, same pipeline. *)
  Summaries.clear ();
  let r_scratch, scratch_dt =
    time (fun () -> V.check_crash_freedom pl)
  in
  if verdict_str r_scratch.V.verdict <> verdict_str r_cold.V.verdict then
    verdicts_agree := false;
  let speedup = scratch_dt /. max lat_max 1e-6 in
  Printf.printf
    "from-scratch re-verification: %s in %.2fs -> incremental speedup %.0fx\n"
    (verdict_str r_scratch.V.verdict)
    scratch_dt speedup;
  (* Dynamic-state churn: the NAT/IPRewriter mapping table. Route churn
     above sweeps the mutated prefix cone out of the caches because
     Step-1 bakes concrete static-store reads into segments. Dynamic
     stores are the opposite contract — Step 1 havocs every read, so the
     verdict holds for *any* map contents and runtime churn of the
     rewriter map must invalidate nothing: re-verification is pure
     session reuse, and a from-scratch run on the churned state agrees. *)
  let nat_pl = Click.Config.parse nat_config in
  let nat_session = V.session nat_pl in
  let (n_cold, _), n_cold_dt = time (fun () -> V.verify_crash nat_session) in
  Printf.printf "NAT initial verification: %s in %.2fs\n"
    (verdict_str n_cold.V.verdict)
    n_cold_dt;
  let nat_inst = Click.Runtime.instantiate nat_pl in
  let nat_node =
    let nodes = Click.Pipeline.nodes nat_pl in
    let found = ref (-1) in
    Array.iteri
      (fun i (n : Click.Pipeline.node) ->
        if n.Click.Pipeline.element.Click.Element.name = "nat" then found := i)
      nodes;
    if !found < 0 then failwith "e12: no nat node";
    !found
  in
  (* Populate the map organically first: established flows. *)
  List.iter
    (fun pkt -> ignore (Click.Runtime.push nat_inst pkt))
    (Gen.workload ~nflows:16 ~corrupt_ratio:0.0 64);
  Vdp_verif.Staleness.reset_stats ();
  let nat_rounds = if smoke then 3 else 10 in
  let nat_lat = ref [] in
  let nat_agree = ref true in
  for i = 1 to nat_rounds do
    (* One churned binding per round: a new flow claims a public port,
       exactly what the dataplane does to this table at line rate. *)
    Click.Runtime.load_state nat_inst
      [
        ( nat_node,
          "nat_map",
          [
            ( B.of_int ~width:48 ((0x0a00_0000 + i) * 65536 + 40_000 + i),
              B.of_int ~width:16 (2048 + i) );
          ] );
      ];
    let (r, _), dt = time (fun () -> V.verify_crash nat_session) in
    nat_lat := dt :: !nat_lat;
    if verdict_str r.V.verdict <> verdict_str n_cold.V.verdict then
      nat_agree := false
  done;
  let nat_max = List.fold_left max 0. !nat_lat in
  let nst = Vdp_verif.Staleness.stats in
  let nat_invalidated =
    nst.Vdp_verif.Staleness.summaries_dropped
    + nst.Vdp_verif.Staleness.queries_dropped
  in
  Summaries.clear ();
  let n_scratch, n_scratch_dt = time (fun () -> V.check_crash_freedom nat_pl) in
  if verdict_str n_scratch.V.verdict <> verdict_str n_cold.V.verdict then
    nat_agree := false;
  Printf.printf
    "NAT map churn: %d bindings, re-verify max %.4fs, %d cache entries \
     invalidated; from-scratch %s in %.2fs\n"
    nat_rounds nat_max nat_invalidated
    (verdict_str n_scratch.V.verdict)
    n_scratch_dt;
  record "nat_churn_rounds" (Json.Int nat_rounds);
  record "nat_reverify_seconds_max" (Json.Float nat_max);
  record "nat_entries_invalidated" (Json.Int nat_invalidated);
  record "nat_scratch_seconds" (Json.Float n_scratch_dt);
  record "nat_verdicts_match" (Json.Bool !nat_agree);
  if not !nat_agree then begin
    Printf.printf
      "E12 FAILED: NAT incremental and from-scratch verdicts disagree\n";
    exit_code := 1
  end;
  if nat_invalidated <> 0 then begin
    Printf.printf
      "E12 FAILED: dynamic-map churn invalidated %d cache entries (dynamic \
       reads are havoc-modelled; nothing may depend on map contents)\n"
      nat_invalidated;
    exit_code := 1
  end;
  if nat_max > 0.25 then begin
    Printf.printf
      "E12 FAILED: re-verification after a NAT map change took %.3fs \
       (pure session reuse expected)\n"
      nat_max;
    exit_code := 1
  end;
  record "routes" (Json.Int (Click.El_lookup.Fib.count fib));
  record "dir_build_seconds" (Json.Float dir_dt);
  record "fib_build_seconds" (Json.Float fib_dt);
  record "dir_slots" (Json.Int dir_slots);
  record "differential_lookups" (Json.Int nlookups);
  record "differential_mismatches" (Json.Int !mismatches);
  record "cold_seconds" (Json.Float cold_dt);
  record "churn_rounds" (Json.Int rounds);
  record "incremental_seconds_avg" (Json.Float lat_avg);
  record "incremental_seconds_max" (Json.Float lat_max);
  record "scratch_seconds" (Json.Float scratch_dt);
  record "incremental_speedup" (Json.Float speedup);
  record "verdicts_match" (Json.Bool !verdicts_agree);
  record "slot_writes" (Json.Int st.Vdp_verif.Staleness.mutations);
  record "summaries_invalidated"
    (Json.Int st.Vdp_verif.Staleness.summaries_dropped);
  record "queries_invalidated"
    (Json.Int st.Vdp_verif.Staleness.queries_dropped);
  record "smoke" (Json.Bool smoke);
  if not !verdicts_agree then begin
    Printf.printf
      "E12 FAILED: incremental and from-scratch verdicts disagree\n";
    exit_code := 1
  end;
  if lat_max > 0.25 then begin
    Printf.printf
      "E12 FAILED: re-verification after 1 change took %.3fs (target: \
       milliseconds)\n"
      lat_max;
    exit_code := 1
  end;
  if speedup < 10. then begin
    Printf.printf
      "E12 FAILED: incremental re-verification only %.1fx faster than \
       from-scratch (need >= 10x)\n"
      speedup;
    exit_code := 1
  end;
  if not smoke then
    match json_float_field "BENCH_e12_baseline.json" "incremental_speedup" with
    | Some baseline ->
      let regressed = speedup < 0.5 *. baseline in
      record "baseline_speedup" (Json.Float baseline);
      record "regressed" (Json.Bool regressed);
      if regressed then begin
        Printf.printf
          "E12 FAILED: incremental speedup %.0fx is less than half the \
           baseline %.0fx\n"
          speedup baseline;
        exit_code := 1
      end
      else
        Printf.printf "no regression vs baseline (%.0fx >= half of %.0fx)\n"
          speedup baseline
    | None ->
      Printf.printf
        "no BENCH_e12_baseline.json; skipping regression check\n"

(* {1 E13: topology fabric — relational isolation and reachability}

   Two parts. (a) The two-tenants-behind-a-NAT fabric (the committed
   examples/multi_tenant.click, inlined here so the bench is
   cwd-independent): every declared property must come back exactly as
   designed — reach with a replay-confirmed witness, isolate as a
   certified Proved verdict, temporal with a confirmed two-packet
   flow. (b) The adversarial scenario generator: randomized
   multi-tenant fabrics with leaks planted with ground truth must
   score 100% detection with every breach witness replay-Confirmed
   end-to-end, zero false leaks on the safe pairs, and no unknowns.
   Query latency is regression-gated against BENCH_e13_baseline.json.
   CI runs the small-fabric mode via VDP_E13_SMOKE=1. *)

let multi_tenant_src =
  {|
topology {
  pipeline tenant_a {
    cl :: Classifier(12/0800, -);
    chk :: CheckIPHeader;
    cl[0] -> Strip(14) -> chk -> IPFilter(allow src 10.1.0.0/16, deny all);
    chk[1] -> Discard;
    cl[1] -> Discard;
  }
  pipeline tenant_b {
    cl :: Classifier(12/0800, -);
    chk :: CheckIPHeader;
    cl[0] -> Strip(14) -> chk -> IPFilter(allow src 10.2.0.0/16, deny all);
    chk[1] -> Discard;
    cl[1] -> Discard;
  }
  pipeline wan_in {
    cl :: Classifier(12/0800, -);
    chk :: CheckIPHeader;
    cl[0] -> Strip(14) -> chk;
    chk[1] -> Discard;
    cl[1] -> Discard;
  }
  pipeline gw {
    nat :: NATGateway(203.0.113.1);
    rt :: StaticIPLookup(10.1.0.0/16 0, 10.2.0.0/16 1);
    nat[1] -> rt;
    nat[2] -> Discard;
  }
  tenant_a[0] -> [0] gw;
  tenant_b[0] -> [0] gw;
  wan_in[0] -> [1] gw;
  ingress a = tenant_a;
  ingress b = tenant_b;
  ingress wan = wan_in;
  egress wan_out = gw[0];
  egress lan_a = gw[1];
  egress lan_b = gw[2];
  reach a -> wan_out;
  reach b -> wan_out;
  isolate a -> lan_b;
  isolate b -> lan_a;
  temporal wan -> lan_a;
  temporal wan -> lan_b;
}
|}

let e13 () =
  section "E13: cross-pipeline isolation and reachability over fabrics";
  let module F = Vdp_topo.Fabric in
  let module R = Vdp_topo.Relation in
  let module Q = Vdp_topo.Query in
  let module Sc = Vdp_topo.Scenario in
  let smoke = Sys.getenv_opt "VDP_E13_SMOKE" <> None in
  (* Part (a): the NAT fabric with its declared property suite. *)
  let fab =
    match Click.Config.parse_source multi_tenant_src with
    | Click.Config.Fabric topo -> F.of_topo topo
    | Click.Config.Single _ -> failwith "e13: expected a topology"
  in
  let qcfg = { Q.default_config with Q.certify = true } in
  let rel, build_dt = time (fun () -> R.build ~config:qcfg.Q.engine fab) in
  Printf.printf "fabric build (%d pipelines): %.3fs\n%!"
    (Array.length fab.F.pipes) build_dt;
  let prows = ref [] in
  let query_dt = ref 0. in
  List.iter
    (fun prop ->
      let r, dt = time (fun () -> Q.run ~config:qcfg rel prop) in
      query_dt := !query_dt +. dt;
      let ok =
        match (prop, r.Q.verdict) with
        | Click.Config.Reach _, Q.Holds (Some f) -> f.Q.w_confirmed
        | Click.Config.Isolate _, Q.Holds None -> Q.cert_complete r.Q.cert
        | Click.Config.Temporal _, Q.Holds (Some f) -> f.Q.w_confirmed
        | _ -> false
      in
      Printf.printf "  %-24s %-30s depth %d, %d paths, %d checks, %.3fs%s\n%!"
        (Q.prop_to_string r.Q.prop)
        (Q.verdict_to_string r.Q.verdict)
        r.Q.depth r.Q.paths r.Q.checks dt
        (if ok then "" else "  <- FAILED");
      if not ok then begin
        Printf.printf "E13 FAILED: %s did not come back as designed\n"
          (Q.prop_to_string prop);
        exit_code := 1
      end;
      prows :=
        Json.Obj
          [
            ("prop", Json.Str (Q.prop_to_string prop));
            ("verdict", Json.Str (Q.verdict_to_string r.Q.verdict));
            ("depth", Json.Int r.Q.depth);
            ("paths", Json.Int r.Q.paths);
            ("checks", Json.Int r.Q.checks);
            ("seconds", Json.Float dt);
            ("ok", Json.Bool ok);
          ]
        :: !prows)
    fab.F.props;
  (* Part (b): planted-leak detection on generated fabrics. *)
  let tenants = if smoke then 2 else 3 in
  let seeds = if smoke then [ 1 ] else [ 1; 2; 3 ] in
  let leaks = [ `None; `Dropped_deny; `Misordered ] in
  let leak_name = function
    | `None -> "none"
    | `Dropped_deny -> "dropped_deny"
    | `Misordered -> "misordered"
  in
  let srows = ref [] in
  let tot_planted = ref 0 and tot_detected = ref 0 in
  let tot_safe = ref 0 and tot_safe_proved = ref 0 in
  let tot_false = ref 0 and tot_unknowns = ref 0 in
  let all_conf = ref true in
  let scen_dt = ref 0. in
  List.iter
    (fun seed ->
      List.iter
        (fun leak ->
          let sc = Sc.generate ~tenants ~seed ~leak () in
          let score, dt = time (fun () -> Sc.check sc) in
          scen_dt := !scen_dt +. dt;
          Printf.printf
            "  seed %d %-13s detected %d/%d, false %d, safe proved %d/%d, \
             unknowns %d%s (%.3fs)\n%!"
            seed (leak_name leak) score.Sc.detected score.Sc.planted
            score.Sc.false_leaks score.Sc.safe_proved score.Sc.safe
            score.Sc.unknowns
            (if score.Sc.confirmed then "" else ", UNCONFIRMED breaches")
            dt;
          tot_planted := !tot_planted + score.Sc.planted;
          tot_detected := !tot_detected + score.Sc.detected;
          tot_safe := !tot_safe + score.Sc.safe;
          tot_safe_proved := !tot_safe_proved + score.Sc.safe_proved;
          tot_false := !tot_false + score.Sc.false_leaks;
          tot_unknowns := !tot_unknowns + score.Sc.unknowns;
          if not score.Sc.confirmed then all_conf := false;
          srows :=
            Json.Obj
              [
                ("seed", Json.Int seed);
                ("leak", Json.Str (leak_name leak));
                ("detected", Json.Int score.Sc.detected);
                ("planted", Json.Int score.Sc.planted);
                ("false_leaks", Json.Int score.Sc.false_leaks);
                ("safe_proved", Json.Int score.Sc.safe_proved);
                ("safe", Json.Int score.Sc.safe);
                ("confirmed", Json.Bool score.Sc.confirmed);
                ("seconds", Json.Float dt);
              ]
            :: !srows)
        leaks)
    seeds;
  let detection_rate =
    if !tot_planted = 0 then 1.
    else float_of_int !tot_detected /. float_of_int !tot_planted
  in
  Printf.printf
    "planted-leak detection: %d/%d (%.0f%%), %d false leak(s), safe proved \
     %d/%d\n"
    !tot_detected !tot_planted (100. *. detection_rate) !tot_false
    !tot_safe_proved !tot_safe;
  if detection_rate < 1.0 then begin
    Printf.printf "E13 FAILED: planted leaks went undetected\n";
    exit_code := 1
  end;
  if not !all_conf then begin
    Printf.printf
      "E13 FAILED: a reported breach did not replay-confirm end-to-end\n";
    exit_code := 1
  end;
  if !tot_false > 0 then begin
    Printf.printf "E13 FAILED: false leak(s) on safe pairs\n";
    exit_code := 1
  end;
  if !tot_safe_proved <> !tot_safe || !tot_unknowns > 0 then begin
    Printf.printf "E13 FAILED: safe pairs not all proved\n";
    exit_code := 1
  end;
  record "properties" (Json.List (List.rev !prows));
  record "scenarios" (Json.List (List.rev !srows));
  record "fabric_build_seconds" (Json.Float build_dt);
  record "query_seconds" (Json.Float !query_dt);
  record "scenario_seconds" (Json.Float !scen_dt);
  record "detection_rate" (Json.Float detection_rate);
  record "false_leaks" (Json.Int !tot_false);
  record "breaches_confirmed" (Json.Bool !all_conf);
  record "smoke" (Json.Bool smoke);
  if not smoke then
    match json_float_field "BENCH_e13_baseline.json" "query_seconds" with
    | Some baseline ->
      let floor = max baseline 0.05 in
      let regressed = !query_dt > 2. *. floor in
      record "baseline_query_seconds" (Json.Float baseline);
      record "regressed" (Json.Bool regressed);
      if regressed then begin
        Printf.printf
          "E13 FAILED: property-suite latency %.3fs is more than 2x the \
           baseline %.3fs\n"
          !query_dt baseline;
        exit_code := 1
      end
      else
        Printf.printf "no regression vs baseline (%.3fs <= 2x %.3fs)\n"
          !query_dt floor
    | None ->
      Printf.printf "no BENCH_e13_baseline.json; skipping regression check\n"

(* {1 Micro-benchmarks (Bechamel)} *)

let micro () =
  section "MICRO: substrate micro-benchmarks (Bechamel)";
  let open Bechamel in
  let open Toolkit in
  (* Workloads prepared outside the timed region. *)
  let router = full_router () in
  let inst = Click.Runtime.instantiate router in
  let frames =
    Array.of_list (Gen.workload ~nflows:32 ~corrupt_ratio:0.2 256)
  in
  let idx = ref 0 in
  let routes =
    List.init 64 (fun i -> ((10 lsl 24) lor (i lsl 16), 16 + (i mod 9), i))
  in
  let trie = Vdp_tables.Lpm.of_list routes in
  let dir = Vdp_tables.Dir_lpm.of_routes routes in
  let ft = Vdp_tables.Flow_table.create ~buckets:1024 ~overflow:1024 in
  let x = T.var "x" 16 and y = T.var "y" 16 in
  let sat_query =
    [ T.ult x y; T.eq (T.band x (T.bv_int ~width:16 0xff)) (T.bv_int ~width:16 0x2a) ]
  in
  let unsat_query =
    [ T.ult x y; T.ult y x ]
  in
  let tests =
    [
      Test.make ~name:"router: push one frame"
        (Staged.stage (fun () ->
             let pkt = P.clone frames.(!idx land 255) in
             incr idx;
             ignore (Click.Runtime.push inst pkt)));
      Test.make ~name:"lpm: trie lookup"
        (Staged.stage (fun () ->
             ignore (Vdp_tables.Lpm.lookup trie 0x0a2a0101)));
      Test.make ~name:"lpm: DIR array lookup"
        (Staged.stage (fun () ->
             ignore (Vdp_tables.Dir_lpm.lookup dir 0x0a2a0101)));
      Test.make ~name:"flow table: set+find"
        (Staged.stage (fun () ->
             incr idx;
             Vdp_tables.Flow_table.set ft (!idx land 1023) !idx;
             ignore (Vdp_tables.Flow_table.find ft (!idx land 1023))));
      Test.make ~name:"solver: small sat query"
        (Staged.stage (fun () -> ignore (Solver.check sat_query)));
      Test.make ~name:"solver: small unsat query"
        (Staged.stage (fun () -> ignore (Solver.check unsat_query)));
      Test.make ~name:"checksum: 20-byte header"
        (Staged.stage
           (let hdr =
              Ipv4.header ~tos:0 ~total_len:40 ~ident:7 ~ttl:64
                ~proto:17 ~src:0x0a000001 ~dst:0x0a000002 ()
            in
            fun () -> ignore (Vdp_packet.Checksum.checksum hdr 0 20)));
      Test.make ~name:"symbex: DecIPTTL summary"
        (Staged.stage (fun () ->
             ignore (E.explore (Click.El_ip.dec_ip_ttl ()))));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
            Printf.printf "%-32s %12.1f ns/run\n" name est
          | _ -> Printf.printf "%-32s (no estimate)\n" name)
        results)
    (List.map (fun t -> Test.make_grouped ~name:"" ~fmt:"%s%s" [ t ]) tests)

(* {1 Driver} *)

let all = [ "fig1", fig1; "fig2", fig2; "e1", e1; "e2", e2; "e3", e3;
            "e4", e4; "e5", e5; "e6", e6; "e7", e7; "e8", e8; "e9", e9;
            "e10", e10; "e11", e11; "e12", e12; "e13", e13; "micro", micro ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: args when args <> [] -> args
    | _ -> List.map fst all
  in
  List.iter
    (fun name ->
      let name = String.lowercase_ascii name in
      match List.assoc_opt name all with
      | Some f ->
        json_fields := [];
        Solver.reset_stats ();
        let (), dt = time f in
        let out = Printf.sprintf "BENCH_%s.json" name in
        Json.write out
          (Json.Obj
             (("experiment", Json.Str name)
             :: ("wall_seconds", Json.Float dt)
             :: !json_fields
             @ [ ("solver_stats", solver_stats_json ()) ]));
        Printf.printf "[wrote %s]\n%!" out
      | None ->
        Printf.eprintf "unknown experiment %s (have: %s)\n" name
          (String.concat ", " (List.map fst all));
        exit 1)
    requested;
  if !exit_code <> 0 then exit !exit_code
