(** The push-mode dataplane runtime: drives packets through a pipeline
    with the concrete IR interpreter, collecting per-hop traces and
    aggregate statistics. This is the "fast path" whose behaviour the
    verifier proves things about. *)

module Ir = Vdp_ir.Types
module Interp = Vdp_ir.Interp
module Stores = Vdp_ir.Stores
module P = Vdp_packet.Packet

type instance = {
  pipeline : Pipeline.t;
  stores : Stores.t array;  (** per-node private/static store state *)
}

let instantiate pipeline =
  let stores =
    Array.map
      (fun (n : Pipeline.node) ->
        Stores.init n.Pipeline.element.Element.program.Ir.stores)
      (Pipeline.nodes pipeline)
  in
  { pipeline; stores }

let reset inst = Array.iter Stores.reset inst.stores

(** Preload private store entries, e.g. the initial state a verifier
    witness depends on: [(node, store, [(key, value); ...])]. *)
let load_state inst entries =
  List.iter
    (fun (node, store, kvs) ->
      List.iter (fun (k, v) -> Stores.write inst.stores.(node) store k v) kvs)
    entries

type step = {
  node : int;
  element : string;
  outcome : Ir.outcome;
  instrs : int;
}

type final =
  | Egress of int  (** pipeline-level output number *)
  | Dropped_at of int
  | Crashed_at of int * Ir.crash

type run = {
  final : final;
  steps : step list;  (** in execution order *)
  total_instrs : int;
}

let max_hops = 1024

(** Push one packet in at [in_port] of the entry element. The packet is
    mutated in place (clone first if you need the original). [trace] is
    called after every element with the step just taken and the packet
    as the element left it — before the output port meta is rewritten
    for the next hop — so a caller can snapshot per-element state. *)
let push ?(in_port = 0) ?trace inst pkt =
  pkt.P.port <- in_port;
  let steps = ref [] in
  let total = ref 0 in
  let rec hop ni hops =
    if hops > max_hops then
      (* Cannot happen on validated (acyclic) pipelines. *)
      invalid_arg "Runtime.push: hop budget exceeded";
    let n = Pipeline.node inst.pipeline ni in
    let prog = n.Pipeline.element.Element.program in
    let r = Interp.run prog inst.stores.(ni) pkt in
    total := !total + r.Interp.instr_count;
    let step =
      {
        node = ni;
        element = n.Pipeline.element.Element.name;
        outcome = r.Interp.outcome;
        instrs = r.Interp.instr_count;
      }
    in
    steps := step :: !steps;
    (match trace with Some f -> f step pkt | None -> ());
    match r.Interp.outcome with
    | Ir.Emitted p -> (
      match n.Pipeline.outputs.(p) with
      | Some (dst, dport) ->
        pkt.P.port <- dport;
        hop dst (hops + 1)
      | None -> (
        match Pipeline.egress_index inst.pipeline ~node:ni ~port:p with
        | Some e -> Egress e
        | None -> assert false))
    | Ir.Dropped -> Dropped_at ni
    | Ir.Crashed c -> Crashed_at (ni, c)
  in
  let final = hop (Pipeline.entry inst.pipeline) 0 in
  { final; steps = List.rev !steps; total_instrs = !total }

(** {1 Aggregate statistics over a workload} *)

type stats = {
  mutable sent : int;
  mutable egressed : int;
  mutable dropped : int;
  mutable crashed : int;
  mutable instrs : int;
  mutable max_instrs : int;
}

let fresh_stats () =
  { sent = 0; egressed = 0; dropped = 0; crashed = 0; instrs = 0;
    max_instrs = 0 }

let run_workload inst pkts =
  let st = fresh_stats () in
  List.iter
    (fun pkt ->
      let r = push inst pkt in
      st.sent <- st.sent + 1;
      st.instrs <- st.instrs + r.total_instrs;
      st.max_instrs <- max st.max_instrs r.total_instrs;
      match r.final with
      | Egress _ -> st.egressed <- st.egressed + 1
      | Dropped_at _ -> st.dropped <- st.dropped + 1
      | Crashed_at _ -> st.crashed <- st.crashed + 1)
    pkts;
  st

let pp_final fmt = function
  | Egress e -> Format.fprintf fmt "egress %d" e
  | Dropped_at n -> Format.fprintf fmt "dropped at node %d" n
  | Crashed_at (n, c) ->
    Format.fprintf fmt "CRASH at node %d: %a" n Ir.pp_crash c

let pp_run fmt r =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun s ->
      Format.fprintf fmt "%-16s %a (%d instrs)@," s.element Ir.pp_outcome
        s.outcome s.instrs)
    r.steps;
  Format.fprintf fmt "=> %a, %d instructions total@]" pp_final r.final
    r.total_instrs
