(** Symbolic machine state for one element execution.

    The packet is modelled window-relative: byte [j] of the {e input}
    window is the 8-bit variable [p\[j\]]; the input length is the
    16-bit variable [p.len]. Pull/Push shift a concrete [head] cursor
    (all head adjustments in the IR are compile-time constants), and
    writes land in an override map keyed by absolute buffer offset, so
    a segment summary can report exactly which output bytes differ from
    the input and where the output window sits. *)

module B = Vdp_bitvec.Bitvec
module T = Vdp_smt.Term
module Ir = Vdp_ir.Types

let byte_var j = Printf.sprintf "p[%d]" j
let len_var = "p.len"
let meta_var m = "p." ^ (match m with
  | Ir.Port -> "port" | Ir.Color -> "color" | Ir.W0 -> "w0" | Ir.W1 -> "w1")

(** Internal (renameable) variables are prefixed with '!': fresh values
    returned by key/value store reads and havocked loop state. *)
let internal_prefix = '!'
let is_internal name = name <> "" && name.[0] = internal_prefix

type kv_event =
  | Kv_read of { store : string; key : T.t; value : T.t; cond : T.t }
      (** [value] is the fresh variable the read returned;
          [cond] is the path condition at the time of the read. *)
  | Kv_write of { store : string; key : T.t; value : T.t; cond : T.t }

type t = {
  regs : T.t array;
  mutable path : T.t list;           (* reversed conjuncts *)
  overrides : (int, T.t) Hashtbl.t;  (* absolute offset -> byte term *)
  mutable head : int;                (* absolute; initial = headroom *)
  mutable min_head : int;            (* lowest head reached (Push dips) *)
  headroom : int;
  mutable len : T.t;                 (* 16-bit *)
  mutable meta : (Ir.meta * T.t) list;
  mutable kv_log : kv_event list;    (* reversed *)
  mutable instrs : int;
  mutable extra_instrs : int;        (* upper-bound slack from loop summaries *)
  mutable fresh_counter : int ref;   (* shared across forks of one run *)
  mutable block : int;
  mutable visits : (int, int) Hashtbl.t;  (* block -> visit count *)
  mutable havocked_packet : bool;
      (* set when a loop summary replaced packet contents wholesale;
         byte reads then return per-offset havoc variables *)
  mutable havoc_epoch : int;
}

let create ~headroom =
  let counter = ref 0 in
  {
    regs = [||];
    path = [];
    overrides = Hashtbl.create 32;
    head = headroom;
    min_head = headroom;
    headroom;
    len = T.var len_var 16;
    meta = [];
    kv_log = [];
    instrs = 0;
    extra_instrs = 0;
    fresh_counter = counter;
    block = 0;
    visits = Hashtbl.create 16;
    havocked_packet = false;
    havoc_epoch = 0;
  }

(* Registers start as zero, matching the interpreter. *)
let init ~headroom (prog : Ir.program) =
  let st = create ~headroom in
  { st with regs = Array.map (fun w -> T.bv (B.zero w)) prog.Ir.reg_widths }

let fresh st ?(hint = "v") width =
  incr st.fresh_counter;
  T.var (Printf.sprintf "%c%s%d" internal_prefix hint !(st.fresh_counter)) width

let clone st =
  {
    st with
    overrides = Hashtbl.copy st.overrides;
    regs = Array.copy st.regs;
    visits = Hashtbl.copy st.visits;
  }

let assume st cond = if not (T.is_true cond) then st.path <- cond :: st.path
let path_conjuncts st = List.rev st.path
let path_term st = T.and_ (path_conjuncts st)

(** Read the byte at absolute buffer offset [abs]. *)
let byte_abs st abs =
  match Hashtbl.find_opt st.overrides abs with
  | Some t -> t
  | None ->
    if st.havocked_packet then begin
      (* Lazily materialise a stable havoc variable per offset. *)
      let name =
        Printf.sprintf "%chv%d_%d" internal_prefix st.havoc_epoch abs
      in
      T.var name 8
    end
    else if abs >= st.headroom then
      T.var (byte_var (abs - st.headroom)) 8
    else T.bv (B.zero 8) (* headroom bytes are zeroed *)

(** Read the byte at a {e concrete} window offset. *)
let byte st off = byte_abs st (st.head + off)

let write_byte st off term = Hashtbl.replace st.overrides (st.head + off) term

let meta_term st m =
  match List.assoc_opt m st.meta with
  | Some t -> t
  | None -> T.var (meta_var m) (Ir.meta_width m)

let set_meta st m t = st.meta <- (m, t) :: List.remove_assoc m st.meta

(** Drop all knowledge of packet contents (loop summarisation). Length,
    head and metadata are preserved. *)
let havoc_packet st =
  Hashtbl.reset st.overrides;
  st.havocked_packet <- true;
  st.havoc_epoch <- !(st.fresh_counter);
  incr st.fresh_counter

let record_kv st ev = st.kv_log <- ev :: st.kv_log
