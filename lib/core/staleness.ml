(** Wires static-store mutations to cache invalidation.

    Verification caches bake in the static state they read: Step-1
    segment summaries record the ({!Vdp_ir.Static_data} id, key) slices
    their concrete reads observed ({!Vdp_symbex.Engine.result}
    [static_deps]), and Step-2 query-cache entries are tagged with the
    union of the applied segments' slices ({!Compose.t} [static_deps]).
    This module installs one {!Vdp_ir.Static_data} listener that, on
    every [set]/[remove], drops exactly the dependent entries from
    every live summary cache and every tracked solver query cache —
    so re-verifying after a one-rule change re-does only the work that
    rule can influence.

    [install] is idempotent and called from every verifier entry point;
    call it yourself before mutating stores if you drive {!Summaries}
    or the solver caches directly. *)

module Sdata = Vdp_ir.Static_data
module Solver = Vdp_smt.Solver

type stats = {
  mutable mutations : int;  (** store mutations observed *)
  mutable summaries_dropped : int;  (** Step-1 entries invalidated *)
  mutable queries_dropped : int;  (** Step-2 query-cache entries invalidated *)
}

let stats = { mutations = 0; summaries_dropped = 0; queries_dropped = 0 }

let reset_stats () =
  stats.mutations <- 0;
  stats.summaries_dropped <- 0;
  stats.queries_dropped <- 0

let lock = Mutex.create ()

(* Solver caches swept on mutation. The shared cache is always
   tracked; per-run private caches opt in via [track_solver_cache]. *)
let solver_caches : Solver.Cache.t list ref = ref [ Solver.shared_cache ]

let track_solver_cache c =
  Mutex.lock lock;
  if not (List.memq c !solver_caches) then
    solver_caches := c :: !solver_caches;
  Mutex.unlock lock

let on_mutation data key =
  let sid = Sdata.id data in
  let dropped_summaries = Summaries.invalidate_static_all ~sid ~key in
  Mutex.lock lock;
  let caches = !solver_caches in
  Mutex.unlock lock;
  let dropped_queries =
    List.fold_left
      (fun acc c -> acc + Solver.Cache.invalidate_static c ~sid ~key)
      0 caches
  in
  Mutex.lock lock;
  stats.mutations <- stats.mutations + 1;
  stats.summaries_dropped <- stats.summaries_dropped + dropped_summaries;
  stats.queries_dropped <- stats.queries_dropped + dropped_queries;
  Mutex.unlock lock

let installed = ref false

let install () =
  Mutex.lock lock;
  let first = not !installed in
  installed := true;
  Mutex.unlock lock;
  if first then Sdata.add_listener on_mutation
