(* The Click IP-router pipeline from the paper's evaluation:
   Classifier, Strip (EthDecap), CheckIPHeader, IPGWOptions, DecIPTTL,
   StaticIPLookup, EtherEncap.

   Proves crash freedom, computes the per-packet instruction bound with
   its witness, and then actually forwards a small workload through the
   runtime to show the verified pipeline at work.

     dune exec examples/ip_router.exe *)

module Click = Vdp_click
module V = Vdp_verif.Verifier
module Report = Vdp_verif.Report
module Gen = Vdp_packet.Gen
module Ipv4 = Vdp_packet.Ipv4

let router_config =
  {|
  // Entry classifier: IPv4 to port 0, everything else discarded.
  cl :: Classifier(12/0800, -);
  strip :: Strip(14);
  chk :: CheckIPHeader;
  opts :: IPGWOptions(9.9.9.1);
  rt :: StaticIPLookup(10.0.0.0/8 0, 192.168.0.0/16 1, 0.0.0.0/0 2);
  ttl :: DecIPTTL;
  out :: EtherEncap(2048, 02:00:00:00:00:01, 02:00:00:00:00:02);
  cl[0] -> strip -> chk -> opts -> ttl -> rt;
  rt[0] -> out; rt[1] -> out; rt[2] -> out;
  cl[1] -> Discard; chk[1] -> Discard; opts[1] -> Discard; ttl[1] -> Discard;
  |}

let () =
  let pl = Click.Config.parse router_config in
  Format.printf "%a@." Click.Pipeline.pp pl;

  Format.printf "@.=== crash freedom ===@.";
  let report = V.check_crash_freedom pl in
  Format.printf "%a@." Report.pp_report report;

  Format.printf "@.=== per-packet instruction bound ===@.";
  let bound = V.instruction_bound pl in
  Format.printf "%a@." Report.pp_bound_report bound;

  Format.printf "@.=== forwarding a workload through the runtime ===@.";
  let inst = Click.Runtime.instantiate pl in
  let workload = Gen.workload ~nflows:8 ~corrupt_ratio:0.3 5_000 in
  let stats = Click.Runtime.run_workload inst workload in
  Format.printf
    "sent %d: egressed %d, dropped %d, crashed %d; max %d instrs, avg %.1f@."
    stats.Click.Runtime.sent stats.Click.Runtime.egressed
    stats.Click.Runtime.dropped stats.Click.Runtime.crashed
    stats.Click.Runtime.max_instrs
    (float_of_int stats.Click.Runtime.instrs
    /. float_of_int (max 1 stats.Click.Runtime.sent));

  (* One packet end-to-end, with the per-element trace. *)
  Format.printf "@.=== a single forwarding trace ===@.";
  let pkt =
    Gen.frame_of_flow
      {
        Gen.src_ip = Ipv4.addr_of_string "172.16.0.9";
        dst_ip = Ipv4.addr_of_string "10.20.30.40";
        src_port = 5555;
        dst_port = 80;
        proto = Ipv4.proto_udp;
      }
  in
  let run = Click.Runtime.push inst pkt in
  Format.printf "%a@." Click.Runtime.pp_run run
