lib/packet/ipv4.ml: Bytes Char Checksum Packet Printf String
