(* Proof certificates: the independent DRAT checker, the interval
   replay, certificate production/checking, and the audits the
   subsystem exists for — a mutated proof must be rejected, an Unknown
   must never certify, and certified answers must agree with brute
   force. *)

module B = Vdp_bitvec.Bitvec
module T = Vdp_smt.Term
module Sat = Vdp_smt.Sat
module Solver = Vdp_smt.Solver
module Model = Vdp_smt.Model
module Eval = Vdp_smt.Eval
module I = Vdp_smt.Interval
module D = Vdp_cert.Drat
module C = Vdp_cert.Certificate
module V = Vdp_verif.Verifier

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let is_ok = function Ok () -> true | Error _ -> false
let cert_ok = function Ok _ -> true | Error _ -> false

(* {1 Hand-crafted DRAT traces}

   Literal encoding: variable [v] is [2v] positive, [2v+1] negative. *)

let pos v = 2 * v
let neg v = (2 * v) + 1

(* (v0 | v1)(~v0 | v1)(v0 | ~v1)(~v0 | ~v1) — unsat, but not by unit
   propagation alone, so the empty clause is never RUP over the CNF by
   itself. *)
let cnf2 =
  [
    [ pos 0; pos 1 ];
    [ neg 0; pos 1 ];
    [ pos 0; neg 1 ];
    [ neg 0; neg 1 ];
  ]

let check2 ?expected_deletions steps =
  D.check ?expected_deletions ~nvars:2 ~cnf:cnf2 steps

let drat_hand_tests =
  [
    Alcotest.test_case "valid two-step proof accepted" `Quick (fun () ->
        check_bool "ok" true
          (is_ok (check2 [ D.Add [| pos 1 |]; D.Add [||] ])));
    Alcotest.test_case "valid proof with a deletion" `Quick (fun () ->
        (* The deletion must come after the lemma it supported; deleting
           [(v0 | v1)] first would make [v1] underivable. *)
        check_bool "ok" true
          (is_ok
             (check2 ~expected_deletions:1
                [
                  D.Add [| pos 1 |];
                  D.Delete [| pos 0; pos 1 |];
                  D.Add [||];
                ])));
    Alcotest.test_case "dropped clause rejected" `Quick (fun () ->
        (* Without the intermediate lemma the empty clause is not RUP. *)
        check_bool "rejected" false (is_ok (check2 [ D.Add [||] ])));
    Alcotest.test_case "permuted steps rejected" `Quick (fun () ->
        check_bool "rejected" false
          (is_ok (check2 [ D.Add [||]; D.Add [| pos 1 |] ])));
    Alcotest.test_case "corrupted literal rejected" `Quick (fun () ->
        (* [v2] is fresh: the clause is vacuously RAT (blocked), but the
           derivation it replaced is gone, so the empty clause fails. *)
        check_bool "rejected" false
          (is_ok (check2 [ D.Add [| pos 2 |]; D.Add [||] ])));
    Alcotest.test_case "omitted deletion rejected by count" `Quick (fun () ->
        check_bool "rejected" false
          (is_ok
             (check2 ~expected_deletions:1
                [ D.Add [| pos 1 |]; D.Add [||] ])));
    Alcotest.test_case "deleting an absent clause rejected" `Quick (fun () ->
        check_bool "rejected" false
          (is_ok (check2 [ D.Delete [| pos 0; pos 2 |] ])));
  ]

(* {1 Solver-produced proofs} *)

(* DIMACS-style helper: positive int [i] is variable [i-1] true. *)
let solve_logged ?reduce_interval ?max_conflicts nvars clauses =
  let s = Sat.create ?reduce_interval () in
  Sat.enable_proof s;
  let vars = Array.init nvars (fun _ -> Sat.new_var s) in
  List.iter
    (fun c ->
      Sat.add_clause s (List.map (fun l -> Sat.lit vars.(abs l - 1) (l > 0)) c))
    clauses;
  (Sat.solve ?max_conflicts s, s)

(* Pigeonhole: n+1 pigeons, n holes — unsat, needs real conflicts. *)
let pigeonhole n =
  let var p h = (p * n) + h + 1 in
  let each_pigeon =
    List.init (n + 1) (fun p -> List.init n (fun h -> var p h))
  in
  let no_share =
    List.concat_map
      (fun h ->
        List.concat_map
          (fun p1 ->
            List.filter_map
              (fun p2 ->
                if p1 < p2 then Some [ -var p1 h; -var p2 h ] else None)
              (List.init (n + 1) Fun.id))
          (List.init (n + 1) Fun.id))
      (List.init n Fun.id)
  in
  ((n + 1) * n, each_pigeon @ no_share)

let proof_of s = (Sat.num_vars s, Sat.proof_cnf s, Sat.proof_steps s)

let to_drat steps =
  List.map
    (function Sat.P_add l -> D.Add l | Sat.P_delete l -> D.Delete l)
    steps

let drat_solver_tests =
  [
    Alcotest.test_case "pigeonhole proof with deletions checks" `Quick
      (fun () ->
        (* An aggressive reduction interval forces clause-database
           reductions mid-proof, so deletion logging (and the checker's
           root-assignment rebuild) is actually exercised. *)
        let nvars, clauses = pigeonhole 5 in
        let r, s = solve_logged ~reduce_interval:20 nvars clauses in
        check_bool "unsat" true (r = Sat.Unsat);
        let deletions =
          Sat.num_learned_deleted s + Sat.num_problem_deleted s
        in
        check_bool "deletions happened" true (deletions > 0);
        let nv, cnf, steps = proof_of s in
        check_bool "proof checks" true
          (is_ok
             (D.check ~expected_deletions:deletions ~nvars:nv ~cnf
                (to_drat steps))));
    Alcotest.test_case "empty clause moved to front rejected" `Quick
      (fun () ->
        let nvars, clauses = pigeonhole 4 in
        let r, s = solve_logged nvars clauses in
        check_bool "unsat" true (r = Sat.Unsat);
        let nv, cnf, steps = proof_of s in
        let steps = to_drat steps in
        let empty, rest =
          List.partition
            (function D.Add [||] -> true | _ -> false)
            steps
        in
        check_bool "has empty clause" true (empty <> []);
        check_bool "rejected" false
          (is_ok (D.check ~nvars:nv ~cnf (empty @ rest))));
    Alcotest.test_case "unlogged deletions rejected by count" `Quick
      (fun () ->
        let nvars, clauses = pigeonhole 5 in
        let r, s = solve_logged ~reduce_interval:20 nvars clauses in
        check_bool "unsat" true (r = Sat.Unsat);
        let deletions =
          Sat.num_learned_deleted s + Sat.num_problem_deleted s
        in
        let nv, cnf, steps = proof_of s in
        let without_deletes =
          List.filter
            (function D.Delete _ -> false | _ -> true)
            (to_drat steps)
        in
        check_bool "rejected" false
          (is_ok
             (D.check ~expected_deletions:deletions ~nvars:nv ~cnf
                without_deletes)));
    Alcotest.test_case "learned clauses weakened by a fresh literal" `Quick
      (fun () ->
        (* Injecting one fresh literal into every learned clause leaves
           each individually admissible (blocked on the fresh pivot) but
           destroys the derivation: once the fresh variable satisfies
           them all, only the original CNF is left, which is not
           unit-refutable. *)
        let nvars, clauses = pigeonhole 4 in
        let r, s = solve_logged nvars clauses in
        check_bool "unsat" true (r = Sat.Unsat);
        let nv, cnf, steps = proof_of s in
        let fresh = 2 * nv in
        let corrupted =
          List.map
            (function
              | D.Add l when Array.length l > 0 ->
                D.Add (Array.append [| fresh |] l)
              | st -> st)
            (to_drat steps)
        in
        check_bool "rejected" false
          (is_ok (D.check ~nvars:(nv + 1) ~cnf corrupted)));
    Alcotest.test_case "unknown leaves no empty clause" `Quick (fun () ->
        let nvars, clauses = pigeonhole 6 in
        let r, s = solve_logged ~max_conflicts:3 nvars clauses in
        check_bool "unknown" true (r = Sat.Unknown);
        let nv, cnf, steps = proof_of s in
        check_bool "no empty clause in trace" false
          (List.exists
             (function Sat.P_add [||] -> true | _ -> false)
             steps);
        check_bool "trace does not certify" false
          (is_ok (D.check ~nvars:nv ~cnf (to_drat steps))));
  ]

(* {1 Certificate production and checking} *)

let v16 n = T.var ("tc" ^ n) 16
let c16 = T.bv_int ~width:16

let produce ?preprocess q =
  C.produce ?preprocess q

let kind_of = function Ok c -> C.kind c | Error _ -> "error"

let certificate_tests =
  [
    Alcotest.test_case "folded certificate" `Quick (fun () ->
        let a = v16 "a" in
        let r = produce [ T.ult a a ] in
        check_bool "ok" true (cert_ok r);
        Alcotest.(check string) "kind" "folded" (kind_of r));
    Alcotest.test_case "interval certificate" `Quick (fun () ->
        let x = v16 "x" in
        let r = produce [ T.ult x (c16 5); T.ult (c16 10) x ] in
        check_bool "ok" true (cert_ok r);
        Alcotest.(check string) "kind" "interval" (kind_of r));
    Alcotest.test_case "drat certificate, preprocessing on and off" `Quick
      (fun () ->
        let a = v16 "a" and b = v16 "b" and c = v16 "c" and d = v16 "d" in
        let k = v16 "k" in
        let q =
          [ T.eq k (T.add a b); T.ule k c; T.ule c d; T.ult d k ]
        in
        let on = produce ~preprocess:true q in
        let off = produce ~preprocess:false q in
        check_bool "on ok" true (cert_ok on);
        check_bool "off ok" true (cert_ok off);
        Alcotest.(check string) "kind on" "drat" (kind_of on);
        Alcotest.(check string) "kind off" "drat-raw" (kind_of off));
    Alcotest.test_case "satisfiable query does not certify" `Quick (fun () ->
        let a = v16 "a" and b = v16 "b" in
        check_bool "error" false (cert_ok (produce [ T.ult a b ])));
    Alcotest.test_case "tiny conflict budget cannot certify" `Quick
      (fun () ->
        let a = v16 "a" and b = v16 "b" and c = v16 "c" and d = v16 "d" in
        let k = v16 "k" in
        let q =
          [ T.eq k (T.add a b); T.ule k c; T.ule c d; T.ult d k ]
        in
        check_bool "error" false
          (cert_ok (C.produce ~max_conflicts:0 q)));
    Alcotest.test_case "tampered interval explanation rejected" `Quick
      (fun () ->
        let x = v16 "x" in
        let q = [ T.ult x (c16 5); T.ult (c16 10) x ] in
        match produce q with
        | Error _ -> Alcotest.fail "expected an interval certificate"
        | Ok cert ->
          (* Re-point the certificate at a weaker query: the recorded
             atoms are no longer members of the conjunction. *)
          let weaker =
            {
              cert with
              C.query = [ T.ult x (c16 5) ];
              C.key = T.and_ [ T.ult x (c16 5) ];
            }
          in
          check_bool "rejected" false (is_ok (C.check weaker)));
    Alcotest.test_case "collector answers repeats by provenance" `Quick
      (fun () ->
        let a = v16 "ca" and b = v16 "cb" in
        let col = C.create_collector () in
        let q = [ T.ult a b; T.ule b a ] in
        let first = C.certify_refutation col q in
        check_bool "first ok" true (cert_ok first);
        check_bool "first not cached" true
          (match first with
          | Ok { C.reason = C.R_cached _; _ } -> false
          | Ok _ -> true
          | Error _ -> false);
        let second = C.certify_refutation col q in
        check_bool "second ok" true (cert_ok second);
        check_bool "second cached" true
          (match second with
          | Ok { C.reason = C.R_cached _; _ } -> true
          | _ -> false);
        let s = C.summary col in
        check_int "attempted" 2 s.C.attempted;
        check_int "certified" 2 s.C.certified;
        check_int "cached" 1 s.C.cached;
        check_int "failed" 0 s.C.failed);
  ]

(* {1 Backward trimming and the proof cache} *)

(* Two raw queries that preprocess to the same residual: [q2] adds an
   equality-defined alias that elimination removes, so the raw keys (and
   the collector's provenance memo) differ while the preprocessed key —
   the proof-cache key — coincides. *)
let pcache_q1 () =
  let a = v16 "pa" and b = v16 "pb" and c = v16 "pc" and d = v16 "pd" in
  let k = v16 "pk" in
  [ T.eq k (T.add a b); T.ule k c; T.ule c d; T.ult d k ]

let pcache_q2 () =
  let m = v16 "pm" and a = v16 "pa" and b = v16 "pb" in
  pcache_q1 () @ [ T.eq m (T.add b a) ]

let drat_payload_of = function
  | Ok { C.reason = C.R_drat p; _ } -> Some p
  | _ -> None

let trimming_tests =
  [
    Alcotest.test_case "trimmed solver proof: smaller, deletion-free, checks"
      `Quick (fun () ->
        (* The forward log vs its backward cone on a proof with real
           conflict activity: the trimmed trace must drop clauses, keep
           no deletions, and still refute the cone-filtered CNF. *)
        let nvars, clauses = pigeonhole 5 in
        let s = Sat.create ~reduce_interval:20 () in
        Sat.enable_proof s;
        Sat.enable_tracking s;
        let vars = Array.init nvars (fun _ -> Sat.new_var s) in
        List.iter
          (fun c ->
            Sat.add_clause s
              (List.map (fun l -> Sat.lit vars.(abs l - 1) (l > 0)) c))
          clauses;
        check_bool "unsat" true (Sat.solve s = Sat.Unsat);
        let forward_adds =
          List.length
            (List.filter
               (function Sat.P_add _ -> true | _ -> false)
               (Sat.proof_steps s))
        in
        match Sat.trimmed_proof s with
        | None -> Alcotest.fail "expected a trimmed proof"
        | Some (cnf, steps) ->
          let adds =
            List.length
              (List.filter (function Sat.P_add _ -> true | _ -> false) steps)
          in
          let dels =
            List.length
              (List.filter
                 (function Sat.P_delete _ -> true | _ -> false)
                 steps)
          in
          check_bool "strictly fewer additions" true (adds < forward_adds);
          check_int "no deletions survive trimming" 0 dels;
          check_bool "trimmed proof checks" true
            (is_ok
               (D.check ~expected_deletions:0 ~nvars:(Sat.num_vars s) ~cnf
                  (to_drat steps))));
    Alcotest.test_case "certificate proofs are trimmed strictly smaller"
      `Quick (fun () ->
        match drat_payload_of (produce ~preprocess:true (pcache_q1 ())) with
        | None -> Alcotest.fail "expected a drat certificate"
        | Some p ->
          let adds =
            List.length
              (List.filter (function D.Add _ -> true | _ -> false) p.C.steps)
          in
          check_bool "trimmed below the forward log" true
            (adds < p.C.untrimmed);
          check_int "deletion-free" 0 p.C.deletions);
    Alcotest.test_case "proof-cache hit passes the independent checker"
      `Quick (fun () ->
        let col = C.create_collector () in
        check_bool "first certified" true
          (cert_ok (C.certify_refutation col (pcache_q1 ())));
        let second = C.certify_refutation col (pcache_q2 ()) in
        check_bool "second certified" true (cert_ok second);
        let s = C.summary col in
        check_int "second came from the proof cache" 1 s.C.pcache_hits;
        check_int "nothing failed" 0 s.C.failed;
        (* The hit is evidence, not trust: its payload must stand alone
           under the independent checker. *)
        match drat_payload_of second with
        | None -> Alcotest.fail "expected a drat certificate from the cache"
        | Some p ->
          check_bool "cached payload re-checks" true
            (is_ok
               (D.check ~expected_deletions:p.C.deletions ~nvars:p.C.nvars
                  ~cnf:p.C.cnf p.C.steps)));
    Alcotest.test_case "tampered cached proof is rejected, not trusted"
      `Quick (fun () ->
        let col = C.create_collector () in
        check_bool "first certified" true
          (cert_ok (C.certify_refutation col (pcache_q1 ())));
        (* Gut every cached proof's CNF: with nothing to propagate
           against, no derivation step is RUP/RAT and an empty trace
           derives no empty clause — the checker must reject the
           payload whatever shape the proof had. *)
        let tampered = Hashtbl.create 4 in
        Hashtbl.iter
          (fun id (p : C.drat_payload) ->
            Hashtbl.replace tampered id { p with C.cnf = [] })
          col.C.pcache;
        Hashtbl.reset col.C.pcache;
        Hashtbl.iter (Hashtbl.replace col.C.pcache) tampered;
        let second = C.certify_refutation col (pcache_q2 ()) in
        (* Certification must still succeed — by producing a fresh
           proof, never by accepting the tampered payload. *)
        check_bool "second certified" true (cert_ok second);
        let s = C.summary col in
        check_int "no proof-cache hit on tampered payload" 0 s.C.pcache_hits;
        match drat_payload_of second with
        | None -> Alcotest.fail "expected a fresh drat certificate"
        | Some p ->
          check_bool "fresh payload has a CNF again" true (p.C.cnf <> []);
          check_bool "fresh payload re-checks" true
            (is_ok
               (D.check ~expected_deletions:p.C.deletions ~nvars:p.C.nvars
                  ~cnf:p.C.cnf p.C.steps)));
  ]

(* {1 Randomized differential: certificates vs brute force}

   Step-2-shaped random queries over narrow vectors. Solver verdicts
   (preprocessing on and off) must agree with Eval-based enumeration,
   and every Unsat must yield a checkable certificate both with and
   without preprocessing. *)

let brute_force terms =
  let key = T.and_ terms in
  let vars = T.free_vars key in
  let m = Model.create () in
  let rec go = function
    | [] -> Eval.eval_bool m key
    | (n, s) :: rest ->
      if Vdp_smt.Sort.is_bool s then
        (Model.set_bool m n false;
         go rest)
        ||
        (Model.set_bool m n true;
         go rest)
      else
        let w = Vdp_smt.Sort.width s in
        let rec try_v v =
          v < 1 lsl w
          && ((Model.set_bv m n (B.of_int ~width:w v);
               go rest)
             || try_v (v + 1))
        in
        try_v 0
  in
  go vars

let random_query st =
  let w = 3 in
  let names = [| "ra"; "rb"; "rc"; "rd" |] in
  let var i = T.var names.(i) w in
  let rand_var () = var (Random.State.int st 4) in
  let rand_const () = T.bv_int ~width:w (Random.State.int st 8) in
  let operand () =
    if Random.State.int st 3 = 0 then rand_const () else rand_var ()
  in
  let rand_term () =
    match Random.State.int st 6 with
    | 0 -> T.add (operand ()) (operand ())
    | 1 -> T.sub (operand ()) (operand ())
    | 2 -> T.band (operand ()) (operand ())
    | 3 -> T.ite (T.ult (rand_var ()) (operand ())) (operand ()) (operand ())
    | _ -> operand ()
  in
  let conjunct () =
    match Random.State.int st 5 with
    | 0 -> T.eq (rand_var ()) (rand_term ())  (* definition-shaped *)
    | 1 -> T.ule (rand_term ()) (rand_term ())
    | 2 -> T.ult (rand_term ()) (rand_term ())
    | 3 -> T.not_ (T.eq (rand_var ()) (rand_const ()))  (* diseq *)
    | _ -> T.eq (rand_term ()) (rand_const ())
  in
  List.init (2 + Random.State.int st 5) (fun _ -> conjunct ())

let differential_tests =
  [
    Alcotest.test_case "500 random queries: certificates vs brute force"
      `Quick (fun () ->
        let st = Random.State.make [| 0xC347 |] in
        let unsats = ref 0 in
        for i = 1 to 500 do
          let q = random_query st in
          let expect = brute_force q in
          let outcome ~preprocess =
            match Solver.check ~preprocess q with
            | Solver.Sat _ -> true
            | Solver.Unsat -> false
            | Solver.Unknown ->
              Alcotest.failf "query %d: unexpected Unknown" i
          in
          let on = outcome ~preprocess:true in
          let off = outcome ~preprocess:false in
          if on <> expect || off <> expect then
            Alcotest.failf "query %d: solver disagrees with brute force" i;
          if not expect then begin
            incr unsats;
            (match C.produce ~preprocess:true q with
            | Ok cert ->
              if not (is_ok (C.check cert)) then
                Alcotest.failf "query %d: certificate fails recheck" i
            | Error e ->
              Alcotest.failf "query %d: uncertified (preprocess on): %s" i e);
            match C.produce ~preprocess:false q with
            | Ok cert ->
              if not (is_ok (C.check cert)) then
                Alcotest.failf "query %d: raw certificate fails recheck" i
            | Error e ->
              Alcotest.failf "query %d: uncertified (preprocess off): %s" i e
          end
        done;
        check_bool "a healthy share of queries were unsat" true
          (!unsats > 50));
  ]

(* {1 Verifier-level audits} *)

let find_example name =
  List.find Sys.file_exists [ "../examples/" ^ name; "examples/" ^ name ]

let load_example name =
  Vdp_click.Config.parse_file (find_example name)

let verifier_tests =
  [
    Alcotest.test_case "tiny solver budget reports Unknown, never Proved"
      `Quick (fun () ->
        (* With a one-conflict budget most Step-2 checks come back
           Unknown; an Unknown must poison the verdict on all three
           checkers, and nothing Unknown may be certified. *)
        let pl = load_example "router.click" in
        let config =
          { V.default_config with V.solver_budget = 1; V.certify = true }
        in
        let not_proved = function V.Proved -> false | _ -> true in
        let clean = function
          | Some (c : C.summary) -> c.C.failed = 0
          | None -> false
        in
        let rc = V.check_crash_freedom ~config pl in
        check_bool "crash not Proved" true (not_proved rc.V.verdict);
        check_bool "crash certs clean" true (clean rc.V.cert);
        let rb = V.instruction_bound ~config pl in
        check_bool "bound not Proved" true (not_proved rb.V.b_verdict);
        check_bool "bound not exact" false rb.V.exact;
        check_bool "bound certs clean" true (clean rb.V.b_cert);
        let rr =
          V.check_reachability ~config
            ~bad:(function V.End_crash _ -> true | _ -> false)
            pl
        in
        check_bool "reach not Proved" true (not_proved rr.V.verdict);
        check_bool "reach certs clean" true (clean rr.V.cert));
    Alcotest.test_case "firewall crash freedom fully certified" `Quick
      (fun () ->
        let pl = load_example "firewall.click" in
        let config = { V.default_config with V.certify = true } in
        let r = V.check_crash_freedom ~config pl in
        check_bool "proved" true (r.V.verdict = V.Proved);
        match r.V.cert with
        | None -> Alcotest.fail "no certification summary"
        | Some c ->
          check_bool "refutations were certified" true (c.C.attempted > 0);
          check_int "none uncertified" 0 c.C.failed;
          check_int "all certified" c.C.attempted c.C.certified);
  ]

let tests =
  drat_hand_tests @ drat_solver_tests @ certificate_tests @ trimming_tests
  @ differential_tests @ verifier_tests
