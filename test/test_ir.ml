(* IR construction, validation and concrete interpretation. *)

module B = Vdp_bitvec.Bitvec
module Ir = Vdp_ir.Types
module Bld = Vdp_ir.Builder
module Interp = Vdp_ir.Interp
module Stores = Vdp_ir.Stores
module Validate = Vdp_ir.Validate
module P = Vdp_packet.Packet

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let c8 n = Ir.Const (B.of_int ~width:8 n)
let c16 n = Ir.Const (B.of_int ~width:16 n)

let run ?budget prog ?(pkt = P.create "0123456789") () =
  let stores = Stores.init prog.Ir.stores in
  (Interp.run ?budget prog stores pkt, pkt)

(* The paper's Fig. 1 toy program over the first packet byte:
     assert in >= 0 (signed); out = max(in, 10); emit. *)
let fig1_program () =
  let b = Bld.create ~name:"fig1" in
  let x = Bld.load b ~off:(c16 0) ~n:1 in
  let nonneg = Bld.cmp b Ir.Sle (c8 0) (Ir.Reg x) in
  Bld.instr b (Ir.Assert (Ir.Reg nonneg, "in >= 0"));
  let small = Bld.cmp b Ir.Ult (Ir.Reg x) (c8 10) in
  let then_b = Bld.new_block b and else_b = Bld.new_block b in
  Bld.term b (Ir.Branch (Ir.Reg small, then_b, else_b));
  Bld.select b then_b;
  Bld.store b ~off:(c16 0) ~n:1 (c8 10);
  Bld.term b (Ir.Emit 0);
  Bld.select b else_b;
  Bld.term b (Ir.Emit 0);
  Bld.finish b

let byte_pkt n = P.create (String.make 1 (Char.chr n))

let unit_tests =
  [
    Alcotest.test_case "fig1 paths" `Quick (fun () ->
        let prog = fig1_program () in
        (* small input -> clamped to 10 *)
        let pkt = byte_pkt 3 in
        let r, _ = run prog ~pkt () in
        check_bool "emitted" true (r.Interp.outcome = Ir.Emitted 0);
        check_int "clamped" 10 (P.get_u8 pkt 0);
        (* large input -> unchanged *)
        let pkt = byte_pkt 42 in
        let r, _ = run prog ~pkt () in
        check_bool "emitted" true (r.Interp.outcome = Ir.Emitted 0);
        check_int "unchanged" 42 (P.get_u8 pkt 0);
        (* negative (signed) input -> assertion crash *)
        let pkt = byte_pkt 0x80 in
        let r, _ = run prog ~pkt () in
        check_bool "crashed" true
          (match r.Interp.outcome with
          | Ir.Crashed (Ir.Assert_failed _) -> true
          | _ -> false));
    Alcotest.test_case "load out of bounds crashes" `Quick (fun () ->
        let b = Bld.create ~name:"oob" in
        let _ = Bld.load b ~off:(c16 100) ~n:2 in
        Bld.term b (Ir.Emit 0);
        let prog = Bld.finish b in
        let r, _ = run prog () in
        check_bool "oob" true
          (match r.Interp.outcome with
          | Ir.Crashed (Ir.Out_of_bounds _) -> true
          | _ -> false));
    Alcotest.test_case "division by zero crashes" `Quick (fun () ->
        let b = Bld.create ~name:"div0" in
        let x = Bld.load b ~off:(c16 0) ~n:1 in
        let _ = Bld.assign b ~width:8 (Ir.Binop (Ir.Udiv, c8 10, Ir.Reg x)) in
        Bld.term b (Ir.Emit 0);
        let prog = Bld.finish b in
        let r, _ = run prog ~pkt:(byte_pkt 0) () in
        check_bool "div0" true (r.Interp.outcome = Ir.Crashed Ir.Div_by_zero);
        let r, _ = run prog ~pkt:(byte_pkt 2) () in
        check_bool "ok" true (r.Interp.outcome = Ir.Emitted 0));
    Alcotest.test_case "budget exhaustion on infinite loop" `Quick (fun () ->
        let b = Bld.create ~name:"spin" in
        Bld.term b (Ir.Goto 0);
        let prog = Bld.finish b in
        let r, _ = run ~budget:1000 prog () in
        check_bool "budget" true
          (r.Interp.outcome = Ir.Crashed Ir.Budget_exhausted));
    Alcotest.test_case "instruction counting" `Quick (fun () ->
        (* 3 straight-line instructions + 1 terminator. *)
        let b = Bld.create ~name:"count" in
        let r0 = Bld.assign b ~width:8 (Ir.Move (c8 1)) in
        let r1 = Bld.assign b ~width:8 (Ir.Binop (Ir.Add, Ir.Reg r0, c8 2)) in
        let _ = Bld.assign b ~width:8 (Ir.Binop (Ir.Add, Ir.Reg r1, c8 3)) in
        Bld.term b (Ir.Emit 0);
        let prog = Bld.finish b in
        let r, _ = run prog () in
        check_int "count" 4 r.Interp.instr_count);
    Alcotest.test_case "kv store read/write with default" `Quick (fun () ->
        let b = Bld.create ~name:"kv" in
        Bld.declare_store b
          (Ir.store ~name:"s" ~key_width:8 ~val_width:16 ~kind:Ir.Private
             ~default:(B.of_int ~width:16 7) ());
        let v = Bld.kv_read b ~store:"s" ~key:(c8 1) ~val_width:16 in
        let v' = Bld.assign b ~width:16 (Ir.Binop (Ir.Add, Ir.Reg v, c16 1)) in
        Bld.instr b (Ir.Kv_write ("s", c8 1, Ir.Reg v'));
        Bld.term b (Ir.Emit 0);
        let prog = Bld.finish b in
        let stores = Stores.init prog.Ir.stores in
        let _ = Interp.run prog stores (P.create "x") in
        check_bool "default+1" true
          (B.equal
             (Stores.read stores "s" (B.of_int ~width:8 1))
             (B.of_int ~width:16 8));
        let _ = Interp.run prog stores (P.create "x") in
        check_bool "default+2" true
          (B.equal
             (Stores.read stores "s" (B.of_int ~width:8 1))
             (B.of_int ~width:16 9)));
    Alcotest.test_case "static store rejects writes" `Quick (fun () ->
        let decl =
          Ir.store ~name:"ro" ~key_width:8 ~val_width:8 ~kind:Ir.Static
            ~default:(B.zero 8) ()
        in
        let stores = Stores.init [ decl ] in
        check_bool "raises" true
          (try
             Stores.write stores "ro" (B.zero 8) (B.zero 8);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "validator catches width mismatch" `Quick (fun () ->
        let b = Bld.create ~name:"bad" in
        let r8 = Bld.reg b ~width:8 in
        (* Manually build an ill-typed instruction. *)
        Bld.instr b (Ir.Assign (r8, Ir.Move (c16 0)));
        Bld.term b (Ir.Emit 0);
        check_bool "raises" true
          (try
             ignore (Validate.check_program (Bld.finish b));
             false
           with Validate.Invalid _ -> true));
    Alcotest.test_case "validator catches dangling label" `Quick (fun () ->
        let b = Bld.create ~name:"bad2" in
        Bld.term b (Ir.Goto 99);
        check_bool "raises" true
          (try
             ignore (Validate.check_program (Bld.finish b));
             false
           with Validate.Invalid _ -> true));
    Alcotest.test_case "builder rejects unterminated blocks" `Quick (fun () ->
        let b = Bld.create ~name:"unterm" in
        let _ = Bld.new_block b in
        Bld.term b (Ir.Emit 0);
        check_bool "raises" true
          (try ignore (Bld.finish b); false with Invalid_argument _ -> true));
    Alcotest.test_case "pull/push interplay" `Quick (fun () ->
        let b = Bld.create ~name:"pp" in
        Bld.instr b (Ir.Pull 4);
        Bld.instr b (Ir.Push 2);
        Bld.term b (Ir.Emit 0);
        let prog = Bld.finish b in
        let pkt = P.create "abcdefgh" in
        let r, _ = run prog ~pkt () in
        check_bool "ok" true (r.Interp.outcome = Ir.Emitted 0);
        check_int "len" 6 (P.length pkt);
        (* Pushed bytes are zeroed; remaining payload preserved. *)
        check_int "zero" 0 (P.get_u8 pkt 0);
        check_int "e" (Char.code 'e') (P.get_u8 pkt 2));
    Alcotest.test_case "select rhs" `Quick (fun () ->
        let b = Bld.create ~name:"sel" in
        let x = Bld.load b ~off:(c16 0) ~n:1 in
        let c = Bld.cmp b Ir.Ult (Ir.Reg x) (c8 5) in
        let v =
          Bld.select_val b ~width:8 (Ir.Reg c) (c8 100) (c8 200)
        in
        Bld.store b ~off:(c16 0) ~n:1 (Ir.Reg v);
        Bld.term b (Ir.Emit 0);
        let prog = Bld.finish b in
        let pkt = byte_pkt 3 in
        let _ = run prog ~pkt () in
        check_int "then" 100 (P.get_u8 pkt 0);
        let pkt = byte_pkt 50 in
        let _ = run prog ~pkt () in
        check_int "else" 200 (P.get_u8 pkt 0));
  ]

(* Property: the interpreter's arithmetic agrees with Bitvec. *)
let interp_matches_bitvec =
  QCheck.Test.make ~count:300 ~name:"interp binop agrees with bitvec"
    QCheck.(triple (int_bound 255) (int_bound 255) (int_bound 11))
    (fun (x, y, opi) ->
      let ops =
        [| Ir.Add; Ir.Sub; Ir.Mul; Ir.And; Ir.Or; Ir.Xor; Ir.Shl; Ir.Lshr;
           Ir.Ashr; Ir.Udiv; Ir.Urem; Ir.Sdiv |]
      in
      let op = ops.(opi) in
      let divlike = List.mem op [ Ir.Udiv; Ir.Urem; Ir.Sdiv ] in
      QCheck.assume (not (divlike && y = 0));
      let b = Bld.create ~name:"prop" in
      let r = Bld.assign b ~width:8 (Ir.Binop (op, c8 x, c8 y)) in
      Bld.store b ~off:(c16 0) ~n:1 (Ir.Reg r);
      Bld.term b (Ir.Emit 0);
      let prog = Bld.finish b in
      let pkt = P.create "z" in
      let stores = Stores.init [] in
      let _ = Interp.run prog stores pkt in
      let bx = B.of_int ~width:8 x and by = B.of_int ~width:8 y in
      let expect =
        match op with
        | Ir.Add -> B.add bx by
        | Ir.Sub -> B.sub bx by
        | Ir.Mul -> B.mul bx by
        | Ir.And -> B.logand bx by
        | Ir.Or -> B.logor bx by
        | Ir.Xor -> B.logxor bx by
        | Ir.Shl -> B.shl_bv bx by
        | Ir.Lshr -> B.lshr_bv bx by
        | Ir.Ashr -> B.ashr_bv bx by
        | Ir.Udiv -> B.udiv bx by
        | Ir.Urem -> B.urem bx by
        | Ir.Sdiv -> B.sdiv bx by
        | _ -> assert false
      in
      P.get_u8 pkt 0 = B.to_int_trunc expect)

let tests =
  unit_tests @ List.map QCheck_alcotest.to_alcotest [ interp_matches_bitvec ]
