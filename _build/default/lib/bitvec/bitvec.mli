(** Fixed-width bit vectors of arbitrary width.

    Values are immutable. All binary operations require both operands to
    have the same width and return a result of that width (except
    {!extract}, {!concat}, {!zext}, {!sext}). Division follows SMT-LIB
    semantics: [udiv x 0] is all-ones, [urem x 0] is [x]; this keeps the
    concrete interpreter and the bit-blasted solver in exact agreement. *)

type t

val width : t -> int
(** Width in bits; always [>= 1]. *)

(** {1 Construction} *)

val zero : int -> t
val one : int -> t
val ones : int -> t
(** [ones w] is the all-ones vector of width [w]. *)

val of_int : width:int -> int -> t
(** [of_int ~width n] truncates [n] (two's complement for negatives). *)

val of_int64 : width:int -> int64 -> t
val of_string : width:int -> string -> t
(** Accepts decimal, [0x...] hex, and [0b...] binary. Truncates. *)

val of_bytes_be : string -> t
(** Big-endian byte string; width is [8 * String.length]. *)

val of_bool : bool -> t
(** Width-1 vector: [true -> 1], [false -> 0]. *)

(** {1 Deconstruction} *)

val to_bytes_be : t -> string
(** Width must be a multiple of 8. *)

val to_int : t -> int option
(** [Some n] iff the unsigned value fits in a non-negative OCaml [int]. *)

val to_int_exn : t -> int
val to_int_trunc : t -> int
(** Low [Sys.int_size - 1] bits, as a non-negative [int]. *)

val to_signed_int : t -> int option
(** Two's-complement value if it fits in an OCaml [int]. *)

val testbit : t -> int -> bool
val msb : t -> bool
val is_zero : t -> bool
val is_ones : t -> bool
val is_one : t -> bool
val is_true : t -> bool
(** For width-1 vectors: is the bit set? *)

(** {1 Comparison} *)

val equal : t -> t -> bool
val hash : t -> int
val compare : t -> t -> int
(** Total order: first by width, then unsigned value. *)

val compare_u : t -> t -> int
val compare_s : t -> t -> int
val ult : t -> t -> bool
val ule : t -> t -> bool
val slt : t -> t -> bool
val sle : t -> t -> bool

(** {1 Arithmetic (modular)} *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val udiv : t -> t -> t
val urem : t -> t -> t
val sdiv : t -> t -> t
val srem : t -> t -> t

(** {1 Bitwise} *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t
val shl : t -> int -> t
val lshr : t -> int -> t
val ashr : t -> int -> t
val shl_bv : t -> t -> t
(** Shift amount given as a bit vector (same width); amounts [>= width]
    yield zero (or sign-fill for {!ashr_bv}). *)

val lshr_bv : t -> t -> t
val ashr_bv : t -> t -> t

(** {1 Width changes} *)

val extract : hi:int -> lo:int -> t -> t
(** Bits [hi..lo] inclusive; result width [hi - lo + 1]. *)

val concat : t -> t -> t
(** [concat hi lo]: [hi] becomes the most significant part. *)

val zext : int -> t -> t
(** [zext w v] zero-extends (or is the identity) to width [w >= width v]. *)

val sext : int -> t -> t

val popcount : t -> int

(** {1 Printing} *)

val to_string_hex : t -> string
(** [0x...] with full width (zero-padded). *)

val to_string_dec : t -> string
(** Unsigned decimal. *)

val pp : Format.formatter -> t -> unit
