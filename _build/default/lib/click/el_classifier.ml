(** Classifier: compiles Click-style patterns into a compare/branch
    chain. Pattern [i] routes to output port [i]; packets matching no
    pattern are dropped. Length checks are compiled in front of every
    load, so a Classifier can never crash — it is the guard other
    elements rely on. *)

module B = Vdp_bitvec.Bitvec
module Ir = Vdp_ir.Types
module Bld = Vdp_ir.Builder
module Cls = Vdp_tables.Classifier
open El_util

(* Split a clause into loads of at most 8 bytes. *)
let clause_chunks (c : Cls.clause) =
  let n = String.length c.Cls.value in
  let rec go off acc =
    if off >= n then List.rev acc
    else
      let k = min 8 (n - off) in
      go (off + k)
        ((c.Cls.offset + off, String.sub c.Cls.value off k,
          String.sub c.Cls.mask off k)
        :: acc)
  in
  go 0 []

let compile specs =
  let patterns = Cls.parse specs in
  let b = Bld.create ~name:"Classifier" in
  Bld.set_nports b (Array.length patterns);
  let len = Bld.load_len b in
  (* Blocks: try_i tests pattern i, jumping to try_{i+1} on mismatch. *)
  let ntry = Array.length patterns in
  let try_blocks = Array.init ntry (fun _ -> Bld.new_block b) in
  let no_match = Bld.new_block b in
  (match try_blocks with
  | [||] -> Bld.term b (Ir.Goto no_match)
  | _ -> Bld.term b (Ir.Goto try_blocks.(0)));
  Array.iteri
    (fun i pat ->
      Bld.select b try_blocks.(i);
      let next = if i + 1 < ntry then try_blocks.(i + 1) else no_match in
      match pat with
      | Cls.Any -> Bld.term b (Ir.Emit i)
      | Cls.Match clauses ->
        (* Length precondition for all loads of this pattern. *)
        let reach = Cls.max_reach pat in
        let long_enough =
          Bld.cmp b Ir.Ule (c16 reach) (Ir.Reg len)
        in
        let load_blk = Bld.new_block b in
        Bld.term b (Ir.Branch (Ir.Reg long_enough, load_blk, next));
        Bld.select b load_blk;
        (* Each chunk comparison can fail to [next]. *)
        List.iter
          (fun clause ->
            List.iter
              (fun (off, value, mask) ->
                let k = String.length value in
                let loaded = Bld.load b ~off:(c16 off) ~n:k in
                let masked =
                  Bld.assign b ~width:(8 * k)
                    (Ir.Binop
                       (Ir.And, Ir.Reg loaded, Ir.Const (B.of_bytes_be mask)))
                in
                let expect =
                  B.logand (B.of_bytes_be value) (B.of_bytes_be mask)
                in
                let is_eq =
                  Bld.cmp b Ir.Eq (Ir.Reg masked) (Ir.Const expect)
                in
                let cont = Bld.new_block b in
                Bld.term b (Ir.Branch (Ir.Reg is_eq, cont, next));
                Bld.select b cont)
              (clause_chunks clause))
          clauses;
        Bld.term b (Ir.Emit i))
    patterns;
  Bld.select b no_match;
  Bld.term b Ir.Drop;
  Bld.finish b
