lib/smt/sat.mli:
