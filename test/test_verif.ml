(* The compositional verifier: the paper's Fig. 2 story, the IP-router
   proof, counterexample extraction with runtime confirmation, the
   stateful write-back check, reachability, and the monolithic
   baseline. *)

module B = Vdp_bitvec.Bitvec
module T = Vdp_smt.Term
module Ir = Vdp_ir.Types
module P = Vdp_packet.Packet
module Ipv4 = Vdp_packet.Ipv4
module E = Vdp_symbex.Engine
module S = Vdp_symbex.Sstate
module Click = Vdp_click
module V = Vdp_verif.Verifier
module Mono = Vdp_verif.Monolithic
module Kv = Vdp_verif.Kvmodel
module Summaries = Vdp_verif.Summaries

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let router_config =
  {|
  cl :: Classifier(12/0800, -);
  strip :: Strip(14);
  chk :: CheckIPHeader;
  opts :: IPGWOptions(9.9.9.1);
  rt :: StaticIPLookup(10.0.0.0/8 0, 192.168.0.0/16 1, 0.0.0.0/0 2);
  ttl :: DecIPTTL;
  out :: EtherEncap(2048, 02:00:00:00:00:01, 02:00:00:00:00:02);
  cl[0] -> strip -> chk -> opts -> ttl -> rt;
  rt[0] -> out; rt[1] -> out; rt[2] -> out;
  cl[1] -> Discard; chk[1] -> Discard; opts[1] -> Discard; ttl[1] -> Discard;
  |}

let proved r = r.V.verdict = V.Proved

let violations r =
  match r.V.verdict with V.Violated vs -> vs | _ -> []

let fast_config =
  (* Smaller packet bound keeps witness construction cheap in tests. *)
  { V.default_config with
    V.engine = { E.default_config with E.max_len = 128 } }

let tests_unit =
  [
    Alcotest.test_case "fig2: E2 alone crashes, with witness" `Quick
      (fun () ->
        Summaries.clear ();
        let r = V.check_crash_freedom ~config:fast_config
            (Click.El_toy.e2_pipeline ()) in
        let vs = violations r in
        check_bool "violated" true (vs <> []);
        let v =
          match
            List.find_opt
              (fun v ->
                match v.V.outcome with
                | E.O_crash (E.C_assert _) -> true
                | _ -> false)
              vs
          with
          | Some v -> v
          | None -> Alcotest.fail "expected the assert violation"
        in
        check_bool "witness reproduces on runtime" true v.V.confirmed;
        match v.V.witness with
        | Some pkt ->
          check_bool "first byte negative" true (P.get_u8 pkt 0 >= 0x80)
        | None -> Alcotest.fail "expected witness");
    Alcotest.test_case "fig2: E1 -> E2 is crash-free (composition)" `Quick
      (fun () ->
        Summaries.clear ();
        let r = V.check_crash_freedom ~config:fast_config
            (Click.El_toy.fig2_pipeline ()) in
        check_bool "proved" true (proved r);
        (* E2's suspect existed but was refuted during composition. *)
        check_bool "suspects found in isolation" true (r.V.stats.V.suspects > 0);
        check_bool "all refuted" true (r.V.stats.V.refuted > 0));
    Alcotest.test_case "router pipeline is crash-free" `Slow (fun () ->
        Summaries.clear ();
        let pl = Click.Config.parse router_config in
        let r = V.check_crash_freedom pl in
        check_bool "proved" true (proved r);
        check_bool "many isolated suspects" true (r.V.stats.V.suspects >= 20));
    Alcotest.test_case "summaries are cached per class+config" `Quick
      (fun () ->
        Summaries.clear ();
        let mk name = Click.Registry.make ~name ~cls:"DecIPTTL" ~config:[] in
        let dis name = Click.Registry.make ~name ~cls:"Discard" ~config:[] in
        (* Chain where ttl appears twice; also two discards. *)
        let pl =
          Click.Pipeline.create
            [ mk "a"; mk "b"; dis "d1"; dis "d2" ]
            [ (0, 0, 1, 0); (0, 1, 2, 0); (1, 1, 3, 0) ]
        in
        Summaries.clear ();
        let r = V.check_crash_freedom ~config:fast_config pl in
        check_int "4 elements" 4 r.V.stats.V.elements;
        check_int "2 unique summaries" 2 r.V.stats.V.unique_summaries;
        (* a and b crash on short packets: violations at both nodes. *)
        check_bool "violations found" true (violations r <> []));
    Alcotest.test_case "buggy market element caught with crashing packet"
      `Quick (fun () ->
        Summaries.clear ();
        (* Classifier guards, then the buggy div-by-zero element. *)
        let pl =
          Click.Pipeline.linear
            [
              Click.Registry.make ~name:"cl" ~cls:"Classifier"
                ~config:[ "12/0800" ];
              Click.Registry.make ~name:"strip" ~cls:"Strip" ~config:[ "14" ];
              Click.Registry.make ~name:"chk" ~cls:"CheckIPHeader" ~config:[];
              Click.Registry.make ~name:"q" ~cls:"BuggyQuota"
                ~config:[ "1000" ];
            ]
        in
        let r = V.check_crash_freedom ~config:fast_config pl in
        let vs = violations r in
        check_bool "violation found" true (vs <> []);
        let div0 =
          List.find_opt
            (fun v -> v.V.outcome = E.O_crash E.C_div0)
            vs
        in
        match div0 with
        | Some v ->
          check_bool "confirmed on runtime" true v.V.confirmed;
          (* The witness must be a valid IPv4 frame with TTL 0 — the
             solver had to satisfy the checksum to get it past
             CheckIPHeader. *)
          (match v.V.witness with
          | Some pkt ->
            let q = P.clone pkt in
            P.pull q 14;
            check_bool "valid header" true (Ipv4.header_ok q);
            check_int "ttl zero" 0 (P.get_u8 q 8)
          | None -> Alcotest.fail "expected witness")
        | None -> Alcotest.fail "expected div-by-zero violation");
    Alcotest.test_case "safe market element certifies" `Quick (fun () ->
        Summaries.clear ();
        let pl =
          Click.Pipeline.linear
            [
              Click.Registry.make ~name:"cl" ~cls:"Classifier"
                ~config:[ "12/0800" ];
              Click.Registry.make ~name:"strip" ~cls:"Strip" ~config:[ "14" ];
              Click.Registry.make ~name:"chk" ~cls:"CheckIPHeader" ~config:[];
              Click.Registry.make ~name:"dpi" ~cls:"SafeDPI"
                ~config:[ "144"; "32" ];
            ]
        in
        let r = V.check_crash_freedom ~config:fast_config pl in
        check_bool "proved" true (proved r));
    Alcotest.test_case "instruction bound is sound on workload" `Slow
      (fun () ->
        Summaries.clear ();
        let pl = Click.Config.parse router_config in
        let r = V.instruction_bound pl in
        let bound =
          match r.V.bound with
          | Some b -> b
          | None -> Alcotest.fail "expected a bound"
        in
        (* No concrete packet may exceed the proved bound. *)
        let inst = Click.Runtime.instantiate pl in
        let st = Random.State.make [| 5 |] in
        for _ = 1 to 2000 do
          let pkt =
            if Random.State.bool st then
              Vdp_packet.Gen.random_frame ~min_len:1 ~max_len:96 st
            else
              Vdp_packet.Gen.corrupt st
                (Vdp_packet.Gen.frame_of_flow (Vdp_packet.Gen.random_flow st))
          in
          let run = Click.Runtime.push inst pkt in
          check_bool "within bound" true
            (run.Click.Runtime.total_instrs <= bound)
        done;
        (* Frames with options exercise the summarised loop. *)
        for i = 1 to 200 do
          let f = Vdp_packet.Gen.random_flow st in
          let options =
            String.concat ""
              [ String.make (i mod 16) '\x01'; "\x07\x07\x04"; "\x00\x00\x00\x00" ]
          in
          let pkt = Vdp_packet.Gen.frame_with_options ~options f in
          let run = Click.Runtime.push inst pkt in
          check_bool "options within bound" true
            (run.Click.Runtime.total_instrs <= bound)
        done);
    Alcotest.test_case "reachability: 10/8 not dropped when well-formed"
      `Slow (fun () ->
        Summaries.clear ();
        let pl = Click.Config.parse router_config in
        (* Assumption: minimal well-formed IPv4 unicast to 10/8 without
           options and ttl > 1 and correct checksum. Build as terms. *)
        let byte j = T.var (S.byte_var j) 8 in
        let len = T.var S.len_var 16 in
        let assume =
          [
            (* Ethernet: IPv4 ethertype *)
            T.eq (byte 12) (T.bv_int ~width:8 0x08);
            T.eq (byte 13) (T.bv_int ~width:8 0x00);
            (* version 4, ihl 5 *)
            T.eq (byte 14) (T.bv_int ~width:8 0x45);
            (* no fragmentation magic needed; total_len = len - 14 *)
            T.eq
              (T.concat (byte 16) (byte 17))
              (T.sub len (T.bv_int ~width:16 14));
            T.ule (T.bv_int ~width:16 34) len;
            T.ule len (T.bv_int ~width:16 128);
            (* ttl > 1 *)
            T.ugt (byte 22) (T.bv_int ~width:8 1);
            (* dst in 10/8 *)
            T.eq (byte 30) (T.bv_int ~width:8 10);
            (* header checksum correct: sum of the ten 16-bit words
               equals 0xffff after folding. Encode via the checksum
               identity: sum16(words) + carry folds = 0xffff. *)
            (let words =
               List.init 10 (fun i ->
                   T.zext 32 (T.concat (byte (14 + (2 * i))) (byte (15 + (2 * i)))))
             in
             let total = List.fold_left T.add (T.bv_int ~width:32 0) words in
             let fold1 =
               T.add
                 (T.band total (T.bv_int ~width:32 0xffff))
                 (T.lshr total (T.bv_int ~width:32 16))
             in
             let fold2 =
               T.add
                 (T.band fold1 (T.bv_int ~width:32 0xffff))
                 (T.lshr fold1 (T.bv_int ~width:32 16))
             in
             T.eq (T.extract ~hi:15 ~lo:0 fold2) (T.bv_int ~width:16 0xffff));
          ]
        in
        let config =
          { V.default_config with
            V.assume;
            V.engine = { E.default_config with E.max_len = 128 } }
        in
        let bad = function
          | V.End_drop _ | V.End_crash _ -> true
          | V.End_egress _ -> false
        in
        let r = V.check_reachability ~config ~bad pl in
        check_bool "proved" true (proved r));
    Alcotest.test_case "reachability finds dropped traffic without assumption"
      `Quick (fun () ->
        Summaries.clear ();
        let pl = Click.El_toy.fig2_pipeline () in
        (* Toy pipeline never drops; E2's crash is infeasible; so 'never
           drop' is proved... while for a Discard pipeline it is not. *)
        let bad = function
          | V.End_drop _ -> true
          | V.End_crash _ | V.End_egress _ -> false
        in
        (* Non-empty frames only: the toys drop zero-length frames. *)
        let nonempty =
          T.ugt (T.var S.len_var 16) (T.bv_int ~width:16 0)
        in
        let config = { fast_config with V.assume = [ nonempty ] } in
        let r = V.check_reachability ~config ~bad pl in
        check_bool "toy never drops" true (proved r);
        let dpl =
          Click.Pipeline.linear
            [ Click.Registry.make ~name:"d" ~cls:"Discard" ~config:[] ]
        in
        let r2 = V.check_reachability ~config:fast_config ~bad dpl in
        check_bool "discard pipeline drops" true (violations r2 <> []));
    Alcotest.test_case "monolithic baseline completes on tiny pipeline"
      `Quick (fun () ->
        let pl = Click.El_toy.fig2_pipeline () in
        match Mono.check_crash_freedom pl with
        | Mono.Completed { verdict = `Proved; _ } -> ()
        | Mono.Completed { verdict = `Violated _; _ } ->
          Alcotest.fail "fig2 pipeline is crash-free"
        | Mono.Did_not_finish _ -> Alcotest.fail "tiny pipeline must finish");
    Alcotest.test_case "monolithic baseline DNFs on the options pipeline"
      `Slow (fun () ->
        let pl = Click.Config.parse router_config in
        let engine_config =
          { Mono.default_engine_config with E.max_paths = 20_000 }
        in
        match Mono.check_crash_freedom ~engine_config ~time_limit:60. pl with
        | Mono.Did_not_finish _ -> ()
        | Mono.Completed _ ->
          Alcotest.fail "expected the monolithic baseline to exceed budget");
    Alcotest.test_case "kvmodel: counter overflow is writable" `Quick
      (fun () ->
        Summaries.clear ();
        let prog = Click.El_market.buggy_counter () in
        let summary = E.explore prog in
        (* The crash segment constrains the read value to 0xff. *)
        let crash =
          List.find
            (fun s ->
              match s.E.outcome with
              | E.O_crash (E.C_assert _) -> true
              | _ -> false)
            summary.E.segments
        in
        let read_var =
          List.find_map
            (function
              | S.Kv_read { value; _ } -> Some value
              | _ -> None)
            crash.E.kv_log
          |> Option.get
        in
        (* Bad value 0xff: not the default (0), but writable via the
           increment chain. *)
        (match
           Kv.check_provenance ~summary ~store:"c8" ~default:(B.zero 8)
             ~read_var crash.E.cond
         with
        | Kv.Written _ -> ()
        | Kv.Default_value -> Alcotest.fail "0xff is not the default"
        | Kv.Unwritable -> Alcotest.fail "0xff is writable (254 + 1)");
        (* Impossible value: constrain the read to something no write
           produces AND not default — e.g. a value forbidden by an
           extra constraint n = 0xff && n = 0x7f. *)
        let impossible = T.eq read_var (T.bv_int ~width:8 0x7f) in
        match
          Kv.check_provenance ~summary ~store:"c8" ~default:(B.zero 8)
            ~read_var (impossible :: crash.E.cond)
        with
        | Kv.Unwritable | Kv.Written _ | Kv.Default_value ->
          (* 0x7f & 0xff conflict: must be unwritable *)
          check_bool "conflicting value unwritable" true
            (match
               Kv.check_provenance ~summary ~store:"c8" ~default:(B.zero 8)
                 ~read_var (impossible :: crash.E.cond)
             with
            | Kv.Unwritable -> true
            | _ -> false));
    Alcotest.test_case "witness packets are minimal-effort valid inputs"
      `Quick (fun () ->
        Summaries.clear ();
        (* Strip(20) alone: witness must be shorter than 20 bytes. *)
        let pl =
          Click.Pipeline.linear
            [ Click.Registry.make ~name:"s" ~cls:"Strip" ~config:[ "20" ] ]
        in
        let r = V.check_crash_freedom ~config:fast_config pl in
        match violations r with
        | [ v ] ->
          check_bool "confirmed" true v.V.confirmed;
          (match v.V.witness with
          | Some pkt -> check_bool "short" true (P.length pkt < 20)
          | None -> Alcotest.fail "expected witness")
        | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs));
  ]

(* {1 Headroom accounting through composition}

   Each element's own summary assumes the full configured headroom, so
   stacked encapsulations are locally safe yet crash concretely once
   their pushes sum past the budget; the composition must carry the
   remaining budget and report the dip as a headroom crash. *)

let encap name =
  Click.Registry.make ~name ~cls:"EtherEncap"
    ~config:[ "2048"; "02:00:00:00:00:01"; "02:00:00:00:00:02" ]

let headroom_tests =
  [
    Alcotest.test_case "stacked encapsulations exhaust headroom" `Quick
      (fun () ->
        Summaries.clear ();
        (* 5 x push 14 = 70 > 64: the fifth encap dips. Replay must
           reproduce the Headroom_exhausted crash on the runtime. *)
        let pl =
          Click.Pipeline.linear (List.init 5 (fun i ->
              encap (Printf.sprintf "e%d" i)))
        in
        let r = V.check_crash_freedom ~config:fast_config pl in
        (match violations r with
        | [] -> Alcotest.fail "expected a headroom violation"
        | vs ->
          List.iter
            (fun (v : V.violation) ->
              check_bool "headroom crash" true
                (v.V.outcome = E.O_crash E.C_headroom);
              check_bool "reproduced on the runtime" true v.V.confirmed)
            vs);
        (* 4 x push 14 = 56 <= 64 stays safe. *)
        Summaries.clear ();
        let pl4 =
          Click.Pipeline.linear (List.init 4 (fun i ->
              encap (Printf.sprintf "f%d" i)))
        in
        check_bool "4 encaps proved" true
          (proved (V.check_crash_freedom ~config:fast_config pl4)));
    Alcotest.test_case "strip/encap alternation replenishes the budget"
      `Quick (fun () ->
        Summaries.clear ();
        (* encap/strip pairs net to zero: 6 elements, never below 50
           remaining, proved — and the static budget pass must keep the
           dip checks off this pipeline (same check count as suspects
           demand, no headroom violations). *)
        let pl =
          Click.Pipeline.linear
            [
              encap "e0";
              Click.Registry.make ~name:"s0" ~cls:"Strip" ~config:[ "14" ];
              encap "e1";
              Click.Registry.make ~name:"s1" ~cls:"Strip" ~config:[ "14" ];
              encap "e2";
              Click.Registry.make ~name:"s2" ~cls:"Strip" ~config:[ "14" ];
            ]
        in
        check_bool "proved" true
          (proved (V.check_crash_freedom ~config:fast_config pl)));
    Alcotest.test_case "configured headroom budget is respected" `Quick
      (fun () ->
        (* Same 3-encap pipeline, verified under different budgets.
           Replay is off: the concrete runtime always allocates the
           default headroom, so non-default budgets cannot reproduce. *)
        let with_headroom h =
          {
            fast_config with
            V.engine = { E.default_config with E.max_len = 128; E.headroom = h };
            V.replay = false;
          }
        in
        let pl () =
          Click.Pipeline.linear (List.init 3 (fun i ->
              encap (Printf.sprintf "g%d" i)))
        in
        Summaries.clear ();
        check_bool "42 bytes suffice for 3 pushes" true
          (proved (V.check_crash_freedom ~config:(with_headroom 42) (pl ())));
        Summaries.clear ();
        let r = V.check_crash_freedom ~config:(with_headroom 41) (pl ()) in
        check_bool "41 bytes do not" true
          (List.exists
             (fun (v : V.violation) ->
               v.V.outcome = E.O_crash E.C_headroom)
             (violations r)));
  ]

(* Composition soundness oracle: the composite verdicts must agree with
   brute-force concrete execution on random packets. If the verifier
   proved crash-freedom, no packet may crash the runtime. *)
let no_crash_after_proof =
  QCheck.Test.make ~count:60 ~name:"proved pipeline never crashes (fuzz)"
    (QCheck.make ~print:string_of_int QCheck.Gen.int)
    (fun seed ->
      let pl = Click.Config.parse router_config in
      let inst = Click.Runtime.instantiate pl in
      let st = Random.State.make [| seed |] in
      let ok = ref true in
      for _ = 1 to 50 do
        let pkt = Vdp_packet.Gen.random_frame ~min_len:1 ~max_len:90 st in
        match (Click.Runtime.push inst pkt).Click.Runtime.final with
        | Click.Runtime.Crashed_at _ -> ok := false
        | _ -> ()
      done;
      !ok)

let tests =
  tests_unit @ headroom_tests
  @ List.map QCheck_alcotest.to_alcotest [ no_crash_after_proof ]
