(** Basic elements: Discard, Counter, Paint, Strip, Unstrip,
    EtherEncap, EtherRewrite. *)

module B = Vdp_bitvec.Bitvec
module Ir = Vdp_ir.Types
module Bld = Vdp_ir.Builder
open El_util

let discard () =
  let b = Bld.create ~name:"Discard" in
  Bld.set_nports b 0;
  Bld.term b Ir.Drop;
  Bld.finish b

(** Counts packets and bytes in a private store (keys 0 and 1). *)
let counter () =
  let b = Bld.create ~name:"Counter" in
  Bld.declare_store b
    (Ir.store ~name:"counter" ~key_width:8 ~val_width:64 ~kind:Ir.Private
       ~default:(B.zero 64) ());
  let pkts = Bld.kv_read b ~store:"counter" ~key:(c8 0) ~val_width:64 in
  let pkts' =
    Bld.assign b ~width:64
      (Ir.Binop (Ir.Add, Ir.Reg pkts, Ir.Const (B.one 64)))
  in
  Bld.instr b (Ir.Kv_write ("counter", c8 0, Ir.Reg pkts'));
  let len = Bld.load_len b in
  let len64 = Bld.zext b ~width:64 (Ir.Reg len) in
  let bytes = Bld.kv_read b ~store:"counter" ~key:(c8 1) ~val_width:64 in
  let bytes' =
    Bld.assign b ~width:64 (Ir.Binop (Ir.Add, Ir.Reg bytes, Ir.Reg len64))
  in
  Bld.instr b (Ir.Kv_write ("counter", c8 1, Ir.Reg bytes'));
  Bld.term b (Ir.Emit 0);
  Bld.finish b

let paint color =
  let b = Bld.create ~name:"Paint" in
  Bld.instr b (Ir.Meta_set (Ir.Color, c8 color));
  Bld.term b (Ir.Emit 0);
  Bld.finish b

(** [Strip n] removes the first [n] bytes — crashes on shorter packets,
    exactly like pulling a non-existent header would in C++. *)
let strip n =
  let b = Bld.create ~name:"Strip" in
  Bld.instr b (Ir.Pull n);
  Bld.term b (Ir.Emit 0);
  Bld.finish b

let unstrip n =
  let b = Bld.create ~name:"Unstrip" in
  Bld.instr b (Ir.Push n);
  Bld.term b (Ir.Emit 0);
  Bld.finish b

(** [EtherEncap (ethertype, src, dst)] prepends a fresh Ethernet
    header. Consumes 14 bytes of headroom — crashes when none is left. *)
let ether_encap ~ethertype ~src ~dst =
  let b = Bld.create ~name:"EtherEncap" in
  Bld.instr b (Ir.Push 14);
  let mac_rv m =
    Ir.Const (B.of_bytes_be m)
  in
  Bld.store b ~off:(c16 0) ~n:6 (mac_rv dst);
  Bld.store b ~off:(c16 6) ~n:6 (mac_rv src);
  Bld.store b ~off:(c16 12) ~n:2 (c16 ethertype);
  Bld.term b (Ir.Emit 0);
  Bld.finish b

(** Rewrites the MACs of an existing Ethernet header in place. *)
let ether_rewrite ~src ~dst =
  let b = Bld.create ~name:"EtherRewrite" in
  Bld.store b ~off:(c16 0) ~n:6 (Ir.Const (B.of_bytes_be dst));
  Bld.store b ~off:(c16 6) ~n:6 (Ir.Const (B.of_bytes_be src));
  Bld.term b (Ir.Emit 0);
  Bld.finish b
