(** Routing lookup elements.

    [StaticIPLookup] compiles the route table into a compare/branch
    chain (longest prefix first) — the table is static state baked into
    the code, which is what makes per-configuration reachability proofs
    meaningful.

    [RadixIPLookup] keeps the routes in a static key/value store indexed
    DIR-style by the top 16 address bits — one bounded store read per
    packet, demonstrating the paper's array-backed-structure approach.
    Prefixes longer than 16 bits fall back to a second store read. *)

module B = Vdp_bitvec.Bitvec
module Ir = Vdp_ir.Types
module Bld = Vdp_ir.Builder
open El_util

type route = {
  prefix : int;   (** network byte-order 32-bit address *)
  plen : int;
  gw : int;       (** next-hop address annotation (0 = directly connected) *)
  port : int;
}

let parse_route spec =
  (* "10.0.0.0/8 1" or "10.0.0.0/8 192.168.0.1 1" *)
  match String.split_on_char ' ' (String.trim spec)
        |> List.filter (fun s -> s <> "")
  with
  | [ cidr; port ] | [ cidr; _; port ] as parts -> (
    let gw =
      match parts with
      | [ _; gw; _ ] -> Vdp_packet.Ipv4.addr_of_string gw
      | _ -> 0
    in
    match String.split_on_char '/' cidr with
    | [ addr; len ] ->
      {
        prefix = Vdp_packet.Ipv4.addr_of_string addr;
        plen = int_of_string len;
        gw;
        port = int_of_string port;
      }
    | _ -> invalid_arg ("StaticIPLookup: bad route " ^ spec))
  | _ -> invalid_arg ("StaticIPLookup: bad route " ^ spec)

let mask_of_len len =
  if len = 0 then 0 else 0xffffffff lxor ((1 lsl (32 - len)) - 1)

let static_ip_lookup routes =
  let routes =
    List.sort (fun r1 r2 -> Stdlib.compare r2.plen r1.plen) routes
  in
  let nports =
    List.fold_left (fun acc r -> max acc (r.port + 1)) 1 routes
  in
  let b = Bld.create ~name:"StaticIPLookup" in
  Bld.set_nports b nports;
  let dst = Bld.load b ~off:(c16 16) ~n:4 in
  let rec chain = function
    | [] -> Bld.term b Ir.Drop (* no route: drop (Click discards too) *)
    | r :: rest ->
      let masked =
        Bld.assign b ~width:32
          (Ir.Binop (Ir.And, Ir.Reg dst, c32 (mask_of_len r.plen)))
      in
      let hit =
        Bld.cmp b Ir.Eq (Ir.Reg masked) (c32 (r.prefix land mask_of_len r.plen))
      in
      let hit_blk = Bld.new_block b and miss_blk = Bld.new_block b in
      Bld.term b (Ir.Branch (Ir.Reg hit, hit_blk, miss_blk));
      Bld.select b hit_blk;
      Bld.instr b (Ir.Meta_set (Ir.W0, c32 r.gw));
      Bld.term b (Ir.Emit r.port);
      Bld.select b miss_blk;
      chain rest
  in
  chain routes;
  Bld.finish b

(** DIR-16-8-8: static store "lpm16" maps the top 16 address bits to a
    route word; "lpm24" maps the top 24 bits (prefixes /17–/24, and
    /25–/31 expanded); "lpm32" maps the full address (/25–/32 expanded
    into covered /32s — at most 128 per route). Route words are 48
    bits, [spill(1) | gw(32) | port+1(8)] packed as gw*256 + code, 0 =
    miss; the spill bit says a longer prefix may exist one level down,
    and a deeper miss falls back to the shallower word. *)
let route_word ~spill ~gw ~port =
  let w = (gw * 256) + (port + 1) in
  B.of_int ~width:48 (if spill then w lor (1 lsl 40) else w)

let spill_mask = B.lognot (B.shl (B.one 48) 40)

let radix_ip_lookup routes =
  (* Per-slot best route (longest prefix wins; later routes win ties)
     computed independently of insertion order, one table per level. *)
  let best : (int, route) Hashtbl.t array =
    [| Hashtbl.create 1024; Hashtbl.create 256; Hashtbl.create 256 |]
  in
  let keep level slot r =
    match Hashtbl.find_opt best.(level) slot with
    | Some r' when r'.plen > r.plen -> ()
    | _ -> Hashtbl.replace best.(level) slot r
  in
  (* Spill flags are a separate pass over prefix lengths alone, so they
     cannot be clobbered by whatever expansion ran last. *)
  let spill16 = Hashtbl.create 64 and spill24 = Hashtbl.create 64 in
  List.iter
    (fun r ->
      if r.plen < 0 || r.plen > 32 then
        invalid_arg "RadixIPLookup: prefix length must be 0..32";
      if r.plen <= 16 then begin
        let span = 1 lsl (16 - r.plen) in
        let base = (r.prefix lsr 16) land 0xffff land lnot (span - 1) in
        for i = base to base + span - 1 do
          keep 0 i r
        done
      end
      else if r.plen <= 24 then begin
        Hashtbl.replace spill16 ((r.prefix lsr 16) land 0xffff) ();
        let span = 1 lsl (24 - r.plen) in
        let base = (r.prefix lsr 8) land 0xffffff land lnot (span - 1) in
        for i = base to base + span - 1 do
          keep 1 i r
        done
      end
      else begin
        Hashtbl.replace spill16 ((r.prefix lsr 16) land 0xffff) ();
        Hashtbl.replace spill24 ((r.prefix lsr 8) land 0xffffff) ();
        let span = 1 lsl (32 - r.plen) in
        let base = r.prefix land lnot (span - 1) in
        for i = base to base + span - 1 do
          keep 2 i r
        done
      end)
    routes;
  let nports =
    List.fold_left (fun acc r -> max acc (r.port + 1)) 1 routes
  in
  (* Emit each level's entries, merging in spill bits; spill flags on
     slots with no route of their own become spill-only entries
     (code 0). *)
  let entries level ~key_width spills =
    let init = ref [] in
    let add slot word = init := (B.of_int ~width:key_width slot, word) :: !init in
    Hashtbl.iter
      (fun slot (r : route) ->
        add slot
          (route_word ~spill:(Hashtbl.mem spills slot) ~gw:r.gw ~port:r.port))
      best.(level);
    Hashtbl.iter
      (fun slot () ->
        if not (Hashtbl.mem best.(level) slot) then
          add slot (route_word ~spill:true ~gw:0 ~port:(-1)))
      spills;
    !init
  in
  let no_spill = Hashtbl.create 1 in
  let b = Bld.create ~name:"RadixIPLookup" in
  Bld.set_nports b nports;
  List.iter (Bld.declare_store b)
    [
      {
        Ir.store_name = "lpm16";
        key_width = 16;
        val_width = 48;
        kind = Ir.Static;
        default = B.zero 48;
        init = entries 0 ~key_width:16 spill16;
      };
      {
        Ir.store_name = "lpm24";
        key_width = 24;
        val_width = 48;
        kind = Ir.Static;
        default = B.zero 48;
        init = entries 1 ~key_width:24 spill24;
      };
      {
        Ir.store_name = "lpm32";
        key_width = 32;
        val_width = 48;
        kind = Ir.Static;
        default = B.zero 48;
        init = entries 2 ~key_width:32 no_spill;
      };
    ];
  let dst = Bld.load b ~off:(c16 16) ~n:4 in
  let hi16 = Bld.extract b ~hi:31 ~lo:16 (Ir.Reg dst) in
  let w16 = Bld.kv_read b ~store:"lpm16" ~key:(Ir.Reg hi16) ~val_width:48 in
  let final = Bld.reg b ~width:48 in
  Bld.instr b (Ir.Assign (final, Ir.Move (Ir.Reg w16)));
  let spill_bit16 = Bld.extract b ~hi:40 ~lo:40 (Ir.Reg w16) in
  let l24_blk = Bld.new_block b and decide_blk = Bld.new_block b in
  Bld.term b (Ir.Branch (Ir.Reg spill_bit16, l24_blk, decide_blk));
  (* Level 24: prefer its word when it has a route code; maybe descend. *)
  Bld.select b l24_blk;
  let hi24 = Bld.extract b ~hi:31 ~lo:8 (Ir.Reg dst) in
  let w24 = Bld.kv_read b ~store:"lpm24" ~key:(Ir.Reg hi24) ~val_width:48 in
  let code24 = Bld.extract b ~hi:7 ~lo:0 (Ir.Reg w24) in
  let has24 = Bld.cmp b Ir.Ne (Ir.Reg code24) (c8 0) in
  let pick24 =
    Bld.select_val b ~width:48 (Ir.Reg has24) (Ir.Reg w24) (Ir.Reg final)
  in
  Bld.instr b (Ir.Assign (final, Ir.Move (Ir.Reg pick24)));
  let spill_bit24 = Bld.extract b ~hi:40 ~lo:40 (Ir.Reg w24) in
  let l32_blk = Bld.new_block b in
  Bld.term b (Ir.Branch (Ir.Reg spill_bit24, l32_blk, decide_blk));
  (* Level 32: exact /32 word wins; a miss keeps the shallower pick. *)
  Bld.select b l32_blk;
  let w32 = Bld.kv_read b ~store:"lpm32" ~key:(Ir.Reg dst) ~val_width:48 in
  let has32 = Bld.cmp b Ir.Ne (Ir.Reg w32) (Ir.Const (B.zero 48)) in
  let pick32 =
    Bld.select_val b ~width:48 (Ir.Reg has32) (Ir.Reg w32) (Ir.Reg final)
  in
  Bld.instr b (Ir.Assign (final, Ir.Move (Ir.Reg pick32)));
  Bld.term b (Ir.Goto decide_blk);
  Bld.select b decide_blk;
  let clean =
    Bld.assign b ~width:48
      (Ir.Binop (Ir.And, Ir.Reg final, Ir.Const spill_mask))
  in
  let code = Bld.extract b ~hi:7 ~lo:0 (Ir.Reg clean) in
  let has_route = Bld.cmp b Ir.Ne (Ir.Reg code) (c8 0) in
  guard_or_drop b (Ir.Reg has_route);
  let gw = Bld.extract b ~hi:39 ~lo:8 (Ir.Reg clean) in
  Bld.instr b (Ir.Meta_set (Ir.W0, Ir.Reg gw));
  (* Dispatch on the port encoded in the route word. *)
  let rec dispatch p =
    if p >= nports then Bld.term b Ir.Drop
    else begin
      let hit = Bld.cmp b Ir.Eq (Ir.Reg code) (c8 (p + 1)) in
      let hit_blk = Bld.new_block b and next_blk = Bld.new_block b in
      Bld.term b (Ir.Branch (Ir.Reg hit, hit_blk, next_blk));
      Bld.select b hit_blk;
      Bld.term b (Ir.Emit p);
      Bld.select b next_blk;
      dispatch (p + 1)
    end
  in
  dispatch 0;
  Bld.finish b
