(** The paper's running examples (Fig. 1 and Fig. 2), phrased over the
    first packet byte as a signed integer.

    Fig. 1 program: [assert in >= 0; out <- max(in, 10)].
    Fig. 2 pipeline: [E1] clamps negatives to zero, [E2] is the Fig. 1
    program; composing them makes E2's crashing segment [e3]
    infeasible, which is exactly what the verifier must discover. *)

module B = Vdp_bitvec.Bitvec
module Ir = Vdp_ir.Types
module Bld = Vdp_ir.Builder
open El_util

(* Both elements drop empty frames up front — the paper's toy deals in
   integers, so the packet-length dimension must not contribute
   crashes of its own. *)
let guard_nonempty b =
  let len = Bld.load_len b in
  let nonempty = Bld.cmp b Ir.Ult (c16 0) (Ir.Reg len) in
  guard_or_drop b (Ir.Reg nonempty)

(* out <- if in < 0 then 0 else in  (signed), written back to byte 0. *)
let e1 () =
  let b = Bld.create ~name:"ToyE1" in
  guard_nonempty b;
  let x = Bld.load b ~off:(c16 0) ~n:1 in
  let neg = Bld.cmp b Ir.Slt (Ir.Reg x) (c8 0) in
  let clamped = Bld.select_val b ~width:8 (Ir.Reg neg) (c8 0) (Ir.Reg x) in
  Bld.store b ~off:(c16 0) ~n:1 (Ir.Reg clamped);
  Bld.term b (Ir.Emit 0);
  Bld.finish b

(* assert in >= 0; out <- if in < 10 then 10 else in. *)
let e2 () =
  let b = Bld.create ~name:"ToyE2" in
  guard_nonempty b;
  let x = Bld.load b ~off:(c16 0) ~n:1 in
  let nonneg = Bld.cmp b Ir.Sle (c8 0) (Ir.Reg x) in
  Bld.instr b (Ir.Assert (Ir.Reg nonneg, "in >= 0"));
  (* A genuine branch (not a select) so the execution tree mirrors the
     paper's Fig. 1: one leaf per return. *)
  let small = Bld.cmp b Ir.Slt (Ir.Reg x) (c8 10) in
  let clamp = Bld.new_block b and keep = Bld.new_block b in
  Bld.term b (Ir.Branch (Ir.Reg small, clamp, keep));
  Bld.select b clamp;
  Bld.store b ~off:(c16 0) ~n:1 (c8 10);
  Bld.term b (Ir.Emit 0);
  Bld.select b keep;
  Bld.term b (Ir.Emit 0);
  Bld.finish b

(* The Fig. 1 stand-alone program is E2 itself. *)
let fig1 = e2

let e1_element () = Element.make ~name:"e1" ~cls:"ToyE1" ~config:[] (e1 ())
let e2_element () = Element.make ~name:"e2" ~cls:"ToyE2" ~config:[] (e2 ())

(** The Fig. 2 pipeline: E1 -> E2. Crash-free, although E2 alone is
    not. *)
let fig2_pipeline () = Pipeline.linear [ e1_element (); e2_element () ]

(** E2 alone — crashes on any negative input byte. *)
let e2_pipeline () = Pipeline.linear [ e2_element () ]
