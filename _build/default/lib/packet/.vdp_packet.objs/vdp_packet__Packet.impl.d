lib/packet/packet.ml: Buffer Bytes Char Format Printf String
