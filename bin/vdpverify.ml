(* vdpverify — verify a Click-style pipeline configuration.

   Examples:
     vdpverify crash router.click
     vdpverify crash --monolithic --budget 50000 router.click
     vdpverify bound router.click
     vdpverify verify --certify router.click
     vdpverify cert router.click
     vdpverify isolate examples/multi_tenant.click
     vdpverify reach fabric.click t1 wan
     vdpverify classes *)

module E = Vdp_symbex.Engine
module V = Vdp_verif.Verifier
module C = Vdp_cert.Certificate

open Cmdliner

let config_arg =
  let doc = "Pipeline configuration file (Click-like syntax)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"CONFIG" ~doc)

let max_len_arg =
  let doc = "Assumed maximum frame length in bytes." in
  Arg.(value & opt int 1514 & info [ "max-len" ] ~doc)

let budget_arg =
  let doc = "Path budget for the monolithic baseline." in
  Arg.(value & opt int 200_000 & info [ "budget" ] ~doc)

let monolithic_arg =
  let doc =
    "Verify the inlined whole-pipeline program instead of using pipeline \
     decomposition (slow; may not finish)."
  in
  Arg.(value & flag & info [ "monolithic" ] ~doc)

let no_incremental_arg =
  let doc =
    "Re-solve each composite condition from scratch instead of carrying one \
     incremental solver context down the exploration."
  in
  Arg.(value & flag & info [ "no-incremental" ] ~doc)

let no_cache_arg =
  let doc = "Disable the Step-2 query cache." in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let no_preprocess_arg =
  let doc =
    "Disable word-level solver preprocessing (equality substitution, \
     constant propagation, cone slicing) and bit-blast every Step-2 query \
     as written."
  in
  Arg.(value & flag & info [ "no-preprocess" ] ~doc)

let jobs_arg =
  let doc =
    "Number of domains for Step-1 symbolic execution and Step-2 suspect-path \
     checking (default 1 = fully sequential)."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let certify_arg =
  let doc =
    "Produce and independently check a proof certificate for every refuted \
     suspect-path query (constant folding, interval-explanation replay, or \
     a DRAT proof over the bit-blasted query validated by a separate \
     checker). A PROVED verdict that carries any uncertified refutation \
     exits with status 3."
  in
  Arg.(value & flag & info [ "certify" ] ~doc)

let no_replay_arg =
  let doc =
    "Skip replaying witnesses on the concrete runtime. By default every \
     violation's witness (packet plus the initial private state its path \
     depends on) is re-executed and the violation is only reported as \
     confirmed when the runtime reproduces the claimed outcome."
  in
  Arg.(value & flag & info [ "no-replay" ] ~doc)

let load path =
  try Ok (Vdp_click.Config.parse_file path) with
  | Vdp_click.Config.Parse_error m ->
    Error (Printf.sprintf "parse error: %s" m)
  | Vdp_click.Registry.Unknown_class c ->
    Error (Printf.sprintf "unknown element class: %s" c)
  | Vdp_click.Registry.Bad_config (cls, m) ->
    Error (Printf.sprintf "bad configuration for %s: %s" cls m)
  | Invalid_argument m -> Error m

let verifier_config max_len ~no_incremental ~no_cache ~no_preprocess
    ~no_replay ~jobs ~certify =
  {
    V.default_config with
    V.engine = { E.default_config with E.max_len };
    V.incremental = not no_incremental;
    V.cache = not no_cache;
    V.preprocess = not no_preprocess;
    V.replay = not no_replay;
    V.jobs = max 1 jobs;
    V.certify = certify;
  }

(* No certification requested, or every refutation certified. *)
let cert_clean = function None -> true | Some c -> c.C.failed = 0

let verdict_code verdict cert =
  match verdict with
  | V.Proved -> if cert_clean cert then 0 else 3
  | _ -> 2

let crash_cmd =
  let run config_path max_len monolithic budget no_incremental no_cache
      no_preprocess no_replay jobs certify =
    match load config_path with
    | Error m ->
      Format.eprintf "error: %s@." m;
      1
    | Ok pl ->
      if monolithic then begin
        let engine_config =
          {
            Vdp_verif.Monolithic.default_engine_config with
            E.max_paths = budget;
            E.max_len;
          }
        in
        match Vdp_verif.Monolithic.check_crash_freedom ~engine_config pl with
        | Vdp_verif.Monolithic.Completed { verdict; paths; time } ->
          Format.printf "monolithic: %s (%d paths, %.2fs)@."
            (match verdict with
            | `Proved -> "PROVED"
            | `Violated n -> Printf.sprintf "VIOLATED (%d)" n)
            paths time;
          0
        | Vdp_verif.Monolithic.Did_not_finish { paths_explored; time } ->
          Format.printf
            "monolithic: DID NOT FINISH (budget %d paths; explored >= %d in \
             %.2fs)@."
            budget paths_explored time;
          2
      end
      else begin
        let config =
          verifier_config max_len ~no_incremental ~no_cache ~no_preprocess
            ~no_replay ~jobs ~certify
        in
        Vdp_smt.Solver.reset_stats ();
        let r = V.check_crash_freedom ~config pl in
        Format.printf "%a  %a@.@." Vdp_verif.Report.pp_report r
          Vdp_verif.Report.pp_solver_stats Vdp_smt.Solver.stats;
        verdict_code r.V.verdict r.V.cert
      end
  in
  let doc = "Prove crash freedom (or produce crashing packets)." in
  Cmd.v
    (Cmd.info "crash" ~doc)
    Term.(
      const run $ config_arg $ max_len_arg $ monolithic_arg $ budget_arg
      $ no_incremental_arg $ no_cache_arg $ no_preprocess_arg $ no_replay_arg
      $ jobs_arg $ certify_arg)

let bound_cmd =
  let run config_path max_len no_incremental no_cache no_preprocess no_replay
      jobs certify =
    match load config_path with
    | Error m ->
      Format.eprintf "error: %s@." m;
      1
    | Ok pl ->
      let config =
        verifier_config max_len ~no_incremental ~no_cache ~no_preprocess
          ~no_replay ~jobs ~certify
      in
      Vdp_smt.Solver.reset_stats ();
      let r = V.instruction_bound ~config pl in
      Format.printf "%a  %a@.@." Vdp_verif.Report.pp_bound_report r
        Vdp_verif.Report.pp_solver_stats Vdp_smt.Solver.stats;
      verdict_code r.V.b_verdict r.V.b_cert
  in
  let doc = "Prove a per-packet instruction bound and find the witness." in
  Cmd.v
    (Cmd.info "bound" ~doc)
    Term.(
      const run $ config_arg $ max_len_arg $ no_incremental_arg
      $ no_cache_arg $ no_preprocess_arg $ no_replay_arg $ jobs_arg
      $ certify_arg)

(* Crash freedom + instruction bound in one run — the "is this pipeline
   fit to ship" command. With [--certify], both properties' refutations
   must additionally carry independently checked certificates. *)
let verify_cmd =
  let run config_path max_len no_incremental no_cache no_preprocess no_replay
      jobs certify =
    match load config_path with
    | Error m ->
      Format.eprintf "error: %s@." m;
      1
    | Ok pl ->
      let config =
        verifier_config max_len ~no_incremental ~no_cache ~no_preprocess
          ~no_replay ~jobs ~certify
      in
      Vdp_smt.Solver.reset_stats ();
      let rc = V.check_crash_freedom ~config pl in
      Format.printf "%a@." Vdp_verif.Report.pp_report rc;
      let rb = V.instruction_bound ~config pl in
      Format.printf "%a  %a@.@." Vdp_verif.Report.pp_bound_report rb
        Vdp_verif.Report.pp_solver_stats Vdp_smt.Solver.stats;
      max (verdict_code rc.V.verdict rc.V.cert)
        (verdict_code rb.V.b_verdict rb.V.b_cert)
  in
  let doc =
    "Prove crash freedom and the instruction bound together; with \
     $(b,--certify), fail unless every refutation behind the verdicts is \
     independently certified."
  in
  Cmd.v
    (Cmd.info "verify" ~doc)
    Term.(
      const run $ config_arg $ max_len_arg $ no_incremental_arg
      $ no_cache_arg $ no_preprocess_arg $ no_replay_arg $ jobs_arg
      $ certify_arg)

(* Certification-focused view: run both properties with certificates
   forced on and report certified/uncertified counts per verdict. *)
let cert_cmd =
  let run config_path max_len no_incremental no_cache no_preprocess jobs =
    match load config_path with
    | Error m ->
      Format.eprintf "error: %s@." m;
      1
    | Ok pl ->
      let config =
        verifier_config max_len ~no_incremental ~no_cache ~no_preprocess
          ~no_replay:false ~jobs ~certify:true
      in
      Vdp_smt.Solver.reset_stats ();
      let rc = V.check_crash_freedom ~config pl in
      let rb = V.instruction_bound ~config pl in
      let line name verdict cert =
        match cert with
        | None -> ()
        | Some (c : C.summary) ->
          Format.printf
            "%-16s %-12s certified %d/%d (uncertified %d)@.    %a@." name
            (Vdp_verif.Report.to_string Vdp_verif.Report.pp_verdict verdict)
            c.C.certified c.C.attempted c.C.failed
            Vdp_verif.Report.pp_cert_summary c
      in
      line "crash freedom" rc.V.verdict rc.V.cert;
      line "instr bound" rb.V.b_verdict rb.V.b_cert;
      max (verdict_code rc.V.verdict rc.V.cert)
        (verdict_code rb.V.b_verdict rb.V.b_cert)
  in
  let doc =
    "Certify both properties' verdicts: every refuted suspect-path query \
     must come with a proof the independent checker accepts; report \
     certified/uncertified counts per verdict."
  in
  Cmd.v
    (Cmd.info "cert" ~doc)
    Term.(
      const run $ config_arg $ max_len_arg $ no_incremental_arg
      $ no_cache_arg $ no_preprocess_arg $ jobs_arg)

(* Verify, apply live route-table changes, re-verify incrementally.
   The second run reuses every Step-1 summary and Step-2 query-cache
   entry that did not depend on the mutated (store, key) slices, so the
   re-verification cost tracks the size of the change, not the size of
   the table. *)
let delta_cmd =
  let module Fib = Vdp_click.El_lookup.Fib in
  let parse_cidr s =
    match String.split_on_char '/' (String.trim s) with
    | [ addr; len ] -> (Vdp_packet.Ipv4.addr_of_string addr, int_of_string len)
    | _ -> invalid_arg (Printf.sprintf "bad prefix %S (want A.B.C.D/len)" s)
  in
  let run config_path max_len adds dels no_incremental no_cache no_preprocess
      no_replay jobs =
    match load config_path with
    | Error m ->
      Format.eprintf "error: %s@." m;
      1
    | Ok pl -> (
      let fib =
        Array.fold_left
          (fun acc (n : Vdp_click.Pipeline.node) ->
            match acc with
            | Some _ -> acc
            | None ->
              Fib.of_program
                n.Vdp_click.Pipeline.element.Vdp_click.Element.program)
          None (Vdp_click.Pipeline.nodes pl)
      in
      match fib with
      | None ->
        Format.eprintf
          "error: no element with a mutable FIB (RadixIPLookup) in %s@."
          config_path;
        1
      | Some fib -> (
        let config =
          verifier_config max_len ~no_incremental ~no_cache ~no_preprocess
            ~no_replay ~jobs ~certify:false
        in
        Vdp_smt.Solver.reset_stats ();
        Vdp_verif.Staleness.reset_stats ();
        let session = V.session ~config pl in
        let t0 = Unix.gettimeofday () in
        let r1, _ = V.verify_crash session in
        let dt1 = Unix.gettimeofday () -. t0 in
        Format.printf "initial:   %a  (%.3fs, %d routes)@."
          Vdp_verif.Report.pp_verdict r1.V.verdict dt1 (Fib.count fib);
        match
          List.iter
            (fun s ->
              let prefix, plen = parse_cidr s in
              if not (Fib.delete fib ~prefix ~plen) then
                Format.eprintf "warning: no route %s to delete@." s)
            dels;
          List.iter
            (fun s -> Fib.insert fib (Vdp_click.El_lookup.parse_route s))
            adds
        with
        | exception Invalid_argument m ->
          Format.eprintf "error: %s@." m;
          1
        | () ->
          let nchanges = List.length adds + List.length dels in
          let t1 = Unix.gettimeofday () in
          let r2, reused = V.verify_crash session in
          let dt2 = Unix.gettimeofday () -. t1 in
          let s = Vdp_verif.Staleness.stats in
          Format.printf
            "re-verify: %a  (%.3fs after %d change(s)%s)@.  staleness: %d \
             slot writes, %d summaries + %d cached queries invalidated%s@."
            Vdp_verif.Report.pp_verdict r2.V.verdict dt2 nchanges
            (if dt2 > 0. && dt1 > 0. then
               Printf.sprintf ", %.0fx vs initial" (dt1 /. dt2)
             else "")
            s.Vdp_verif.Staleness.mutations
            s.Vdp_verif.Staleness.summaries_dropped
            s.Vdp_verif.Staleness.queries_dropped
            (if reused then "; verdict reused (no dependent state changed)"
             else "");
          max (verdict_code r1.V.verdict None) (verdict_code r2.V.verdict None)
        ))
  in
  let add_arg =
    let doc =
      "Insert a route before re-verifying, in StaticIPLookup syntax: \
       $(i,\"A.B.C.D/len port\") or $(i,\"A.B.C.D/len gateway port\"). \
       Repeatable."
    in
    Arg.(value & opt_all string [] & info [ "add" ] ~docv:"ROUTE" ~doc)
  in
  let del_arg =
    let doc =
      "Delete the route for prefix $(i,A.B.C.D/len) before re-verifying. \
       Repeatable."
    in
    Arg.(value & opt_all string [] & info [ "del" ] ~docv:"PREFIX" ~doc)
  in
  let doc =
    "Prove crash freedom, apply route-table changes to the pipeline's \
     RadixIPLookup FIB, and re-verify incrementally: only summaries and \
     cached queries that read the mutated table slices are recomputed, so \
     the second verdict arrives in time proportional to the change."
  in
  Cmd.v
    (Cmd.info "delta" ~doc)
    Term.(
      const run $ config_arg $ max_len_arg $ add_arg $ del_arg
      $ no_incremental_arg $ no_cache_arg $ no_preprocess_arg $ no_replay_arg
      $ jobs_arg)

let engine_arg =
  let engine_conv =
    Arg.conv
      ( (fun s ->
          match Vdp_click.Runtime.engine_of_string s with
          | Some e -> Ok e
          | None ->
            Error (`Msg (Printf.sprintf "unknown engine %S" s))),
        fun fmt e ->
          Format.pp_print_string fmt (Vdp_click.Runtime.engine_name e) )
  in
  let doc =
    "Concrete runtime engine: $(b,scalar) (per-packet interpreter), \
     $(b,batched) (preallocated batch ring), or $(b,compiled) (batched, \
     with element IR lowered to closures)."
  in
  Arg.(
    value
    & opt engine_conv Vdp_click.Runtime.Scalar
    & info [ "engine" ] ~docv:"ENGINE" ~doc)

let replay_cmd =
  let run config_path max_len count seed jobs engine =
    match load config_path with
    | Error m ->
      Format.eprintf "error: %s@." m;
      1
    | Ok pl ->
      let config = { E.default_config with E.max_len } in
      let r =
        if jobs <= 1 then
          Vdp_verif.Witness.differential ~config ~engine ~seed ~count pl
        else
          Vdp_verif.Pool.with_pool jobs (fun pool ->
              Vdp_verif.Witness.differential ~pool ~config ~engine ~seed
                ~count pl)
      in
      Format.printf
        "differential: %d packets, %d hops (%d matched approximately), %d \
         disagreement(s)@."
        r.Vdp_verif.Witness.f_packets r.Vdp_verif.Witness.f_hops
        r.Vdp_verif.Witness.f_approx
        (List.length r.Vdp_verif.Witness.f_failures);
      List.iter
        (fun (i, m) -> Format.printf "  packet %d: %s@." i m)
        r.Vdp_verif.Witness.f_failures;
      if r.Vdp_verif.Witness.f_failures = [] then 0 else 2
  in
  let count_arg =
    let doc = "Number of fuzzed packets to run through both sides." in
    Arg.(value & opt int 500 & info [ "n"; "count" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "Random seed for the packet workload." in
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let doc =
    "Differential fuzzing: run random packets through the concrete runtime \
     and the symbolic summaries side by side; any disagreement on path, \
     state, packet contents or instruction counts is a verifier bug."
  in
  Cmd.v
    (Cmd.info "replay" ~doc)
    Term.(
      const run $ config_arg $ max_len_arg $ count_arg $ seed_arg $ jobs_arg
      $ engine_arg)

let pump_cmd =
  let run config_path count seed engine batch =
    match load config_path with
    | Error m ->
      Format.eprintf "error: %s@." m;
      1
    | Ok pl -> (
      match Vdp_click.Runtime.instantiate ~engine ~batch pl with
      | exception Invalid_argument m ->
        Format.eprintf "error: %s@." m;
        1
      | inst ->
        let pkts = Vdp_packet.Gen.workload ~seed count in
        let t0 = Unix.gettimeofday () in
        let st = Vdp_click.Runtime.run_workload inst pkts in
        let dt = Unix.gettimeofday () -. t0 in
        let name = Vdp_click.Runtime.engine_name engine in
        let open Vdp_click.Runtime in
        Format.printf
          "%s engine: %d packets in %.3fs (%.0f pps)@.  egressed %d, \
           dropped %d, crashed %d, hop-budget %d@.  %d instructions total, \
           max %d per packet@."
          name st.sent dt
          (if dt > 0. then float_of_int st.sent /. dt else 0.)
          st.egressed st.dropped st.crashed st.hop_budget st.instrs
          st.max_instrs;
        0)
  in
  let count_arg =
    let doc = "Number of generated packets to pump through the pipeline." in
    Arg.(value & opt int 100_000 & info [ "n"; "count" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "Random seed for the packet workload." in
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let batch_arg =
    let doc = "Batch ring capacity for the batched engines." in
    Arg.(
      value
      & opt int Vdp_click.Runtime.default_batch
      & info [ "batch" ] ~docv:"N" ~doc)
  in
  let doc =
    "Drive a generated workload through the concrete runtime and report \
     throughput and outcome statistics (the paper's \"verified need not be \
     slow\" demo; compare $(b,--engine) scalar/batched/compiled)."
  in
  Cmd.v
    (Cmd.info "pump" ~doc)
    Term.(
      const run $ config_arg $ count_arg $ seed_arg $ engine_arg $ batch_arg)

(* {1 Topology queries: reach / isolate} *)

module Q = Vdp_topo.Query

let load_fabric path =
  try Ok (Vdp_topo.Fabric.of_source path) with
  | Vdp_click.Config.Parse_error m ->
    Error (Printf.sprintf "parse error: %s" m)
  | Vdp_topo.Fabric.Bad_fabric m -> Error m
  | Vdp_click.Registry.Unknown_class c ->
    Error (Printf.sprintf "unknown element class: %s" c)
  | Vdp_click.Registry.Bad_config (cls, m) ->
    Error (Printf.sprintf "bad configuration for %s: %s" cls m)
  | Invalid_argument m -> Error m

let topo_config max_len ~no_cache ~no_preprocess ~certify =
  {
    Q.default_config with
    Q.engine = { E.default_config with E.max_len };
    Q.cache = not no_cache;
    Q.preprocess = not no_preprocess;
    Q.certify = certify;
  }

(* 0 = as expected; 2 = property fails / undecided; 3 = untrusted
   result (a breach flow that did not replay-confirm, or a verdict
   whose requested certificates did not all check). *)
let topo_code (r : Q.report) =
  match r.Q.verdict with
  | Q.Holds _ -> if Q.cert_complete r.Q.cert then 0 else 3
  | Q.Fails _ -> if Q.all_confirmed r then 2 else 3
  | Q.Unknown _ -> 2

let print_topo_report (r : Q.report) =
  let module P = Vdp_packet.Packet in
  Format.printf "%-28s %s  [depth %d, %d paths, %d checks, %.2fs]@."
    (Q.prop_to_string r.Q.prop ^ ":")
    (Q.verdict_to_string r.Q.verdict)
    r.Q.depth r.Q.paths r.Q.checks r.Q.time;
  let flows =
    match r.Q.verdict with
    | Q.Fails (flows, _) -> flows
    | Q.Holds (Some f) -> [ f ]
    | _ -> []
  in
  List.iter
    (fun (f : Q.flow) ->
      Format.printf "    %s%s: %d-byte packet -> %s%s@."
        (match f.Q.w_prime with
        | Some (n, p) ->
          Printf.sprintf "[primed via %s, %d bytes] " n (P.length p)
        | None -> "")
        f.Q.w_ingress (P.length f.Q.w_packet) f.Q.w_end
        (if f.Q.w_confirmed then " (replay confirmed)"
         else
           Printf.sprintf " (UNCONFIRMED%s)"
             (match f.Q.w_note with Some n -> ": " ^ n | None -> "")))
    flows;
  match r.Q.cert with
  | Some c ->
    Format.printf "    certificates: %d/%d checked (%d failed)@."
      c.C.certified c.C.attempted c.C.failed
  | None -> ()

let print_crash_report (c : Q.crash_report) =
  let module P = Vdp_packet.Packet in
  Format.printf "%-28s %s  [%d paths, <= %d instrs/packet]@."
    "fabric crash-freedom:"
    (Q.verdict_to_string c.Q.c_verdict)
    c.Q.c_paths c.Q.c_max_instrs;
  (match c.Q.c_verdict with
  | Q.Fails (flows, _) ->
    List.iter
      (fun (f : Q.flow) ->
        Format.printf "    %s: %d-byte packet -> %s%s@." f.Q.w_ingress
          (P.length f.Q.w_packet) f.Q.w_end
          (if f.Q.w_confirmed then " (replay confirmed)"
           else
             Printf.sprintf " (UNCONFIRMED%s)"
               (match f.Q.w_note with Some n -> ": " ^ n | None -> "")))
      flows
  | _ -> ());
  match c.Q.c_cert with
  | Some s ->
    Format.printf "    certificates: %d/%d checked (%d failed)@."
      s.C.certified s.C.attempted s.C.failed
  | None -> ()

let crash_code (c : Q.crash_report) =
  match c.Q.c_verdict with
  | Q.Holds _ -> if Q.cert_complete c.Q.c_cert then 0 else 3
  | Q.Fails (flows, _) ->
    if List.for_all (fun f -> f.Q.w_confirmed) flows then 2 else 3
  | Q.Unknown _ -> 2

(* Run the selected declared properties (or one explicit pair).
   [crash] additionally verifies per-fabric crash-freedom — every
   feasible crash end from any ingress, headroom exhaustion included —
   and reports the worst-case instruction bound. *)
let run_topo ?(crash = false) config_path max_len no_cache no_preprocess
    certify ingress egress ~select ~mk =
  match load_fabric config_path with
  | Error m ->
    Format.eprintf "error: %s@." m;
    1
  | Ok fab -> (
    let props =
      match (ingress, egress) with
      | Some a, Some b -> Ok [ mk a b ]
      | None, None -> (
        match List.filter select fab.Vdp_topo.Fabric.props with
        | [] ->
          Error
            (Printf.sprintf "%s declares no matching property" config_path)
        | ps -> Ok ps)
      | _ -> Error "give both INGRESS and EGRESS, or neither"
    in
    match props with
    | Error m ->
      Format.eprintf "error: %s@." m;
      1
    | Ok props -> (
      let config = topo_config max_len ~no_cache ~no_preprocess ~certify in
      try
        let rel =
          Vdp_topo.Relation.build ~config:config.Q.engine fab
        in
        let code =
          List.fold_left
            (fun code p ->
              let r = Q.run ~config rel p in
              print_topo_report r;
              max code (topo_code r))
            0 props
        in
        if crash then begin
          let c = Q.verify_crash ~config rel in
          print_crash_report c;
          max code (crash_code c)
        end
        else code
      with Vdp_topo.Fabric.Bad_fabric m ->
        Format.eprintf "error: %s@." m;
        1))

let topo_ingress_arg =
  let doc = "Fabric ingress name (with EGRESS, overrides declared props)." in
  Arg.(value & pos 1 (some string) None & info [] ~docv:"INGRESS" ~doc)

let topo_egress_arg =
  let doc = "Fabric egress name." in
  Arg.(value & pos 2 (some string) None & info [] ~docv:"EGRESS" ~doc)

let reach_cmd =
  let run config_path max_len no_cache no_preprocess certify ingress egress =
    run_topo config_path max_len no_cache no_preprocess certify ingress
      egress
      ~select:(function Vdp_click.Config.Reach _ -> true | _ -> false)
      ~mk:(fun a b -> Vdp_click.Config.Reach (a, b))
  in
  let doc =
    "Decide reachability across a topology: some packet injected at the \
     INGRESS pipeline comes out at the EGRESS point. A positive answer \
     must carry a witness packet whose replay through the wired concrete \
     runtimes confirms the path. Without an explicit pair, runs every \
     $(b,reach) property declared in the topology file."
  in
  Cmd.v
    (Cmd.info "reach" ~doc)
    Term.(
      const run $ config_arg $ max_len_arg $ no_cache_arg $ no_preprocess_arg
      $ certify_arg $ topo_ingress_arg $ topo_egress_arg)

let isolate_cmd =
  let run config_path max_len no_cache no_preprocess certify ingress egress =
    run_topo ~crash:true config_path max_len no_cache no_preprocess certify
      ingress egress
      ~select:(function
        | Vdp_click.Config.Isolate _ | Vdp_click.Config.Temporal _ -> true
        | _ -> false)
      ~mk:(fun a b -> Vdp_click.Config.Isolate (a, b))
  in
  let doc =
    "Decide isolation across a topology: no packet injected at the INGRESS \
     pipeline ever comes out at the EGRESS point, neither from a cold \
     (boot-state) fabric nor after one priming packet from any ingress \
     (the NAT case). Every claimed breach is replayed end-to-end through \
     the wired runtimes and tagged confirmed/unconfirmed; with \
     $(b,--certify), every refutation behind a holds verdict must carry a \
     checked certificate. Without an explicit pair, runs every \
     $(b,isolate) and $(b,temporal) property declared in the file. Also \
     verifies per-fabric crash-freedom (headroom exhaustion included) and \
     reports the worst-case instruction bound."
  in
  Cmd.v
    (Cmd.info "isolate" ~doc)
    Term.(
      const run $ config_arg $ max_len_arg $ no_cache_arg $ no_preprocess_arg
      $ certify_arg $ topo_ingress_arg $ topo_egress_arg)

let show_cmd =
  let run config_path =
    match load config_path with
    | Error m ->
      Format.eprintf "error: %s@." m;
      1
    | Ok pl ->
      Format.printf "%a@." Vdp_click.Pipeline.pp pl;
      0
  in
  let doc = "Parse and display a pipeline configuration." in
  Cmd.v (Cmd.info "show" ~doc) Term.(const run $ config_arg)

let classes_cmd =
  let run () =
    List.iter print_endline (Vdp_click.Registry.classes ());
    0
  in
  let doc = "List the available element classes." in
  Cmd.v (Cmd.info "classes" ~doc) Term.(const run $ const ())

let main =
  let doc = "verify software-dataplane pipelines" in
  Cmd.group
    (Cmd.info "vdpverify" ~version:"1.0.0" ~doc)
    [ crash_cmd; bound_cmd; verify_cmd; cert_cmd; delta_cmd; reach_cmd;
      isolate_cmd; replay_cmd; pump_cmd; show_cmd; classes_cmd ]

let () = exit (Cmd.eval' main)
