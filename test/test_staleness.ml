(* Incremental re-verification under config churn: static-store
   mutations must invalidate exactly the dependent cached state (and
   flip verdicts accordingly), element-level FIB churn must keep the
   incremental verdict equal to the from-scratch one, the runtime FIB
   must track churn against the reference trie, and the summary cache
   must survive a symbex exception without poisoning itself. *)

module B = Vdp_bitvec.Bitvec
module Ir = Vdp_ir.Types
module Sdata = Vdp_ir.Static_data
module Bld = Vdp_ir.Builder
module E = Vdp_symbex.Engine
module Click = Vdp_click
module L = Vdp_click.El_lookup
module Lpm = Vdp_tables.Lpm
module V = Vdp_verif.Verifier
module Summaries = Vdp_verif.Summaries
module Staleness = Vdp_verif.Staleness

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let fast_config =
  { V.default_config with
    V.engine = { E.default_config with E.max_len = 128 } }

let verdict_name (r : V.report) =
  match r.V.verdict with
  | V.Proved -> "proved"
  | V.Violated _ -> "violated"
  | V.Unknown m -> "unknown:" ^ m

(* {1 A pipeline whose verdict depends on one static slot} *)

(* FlagGuard asserts that slot 0 of its static "flag" store is zero —
   a concrete-key read, so its summary records the (store, key) slice
   and a mutation of that slot must invalidate and flip the verdict. *)
let flag_element () =
  let decl =
    Ir.store ~name:"flag" ~key_width:8 ~val_width:8 ~kind:Ir.Static
      ~default:(B.zero 8)
      ~init:[ (B.zero 8, B.zero 8) ]
      ()
  in
  let b = Bld.create ~name:"FlagGuard" in
  Bld.declare_store b decl;
  let v =
    Bld.kv_read b ~store:"flag" ~key:(Ir.Const (B.zero 8)) ~val_width:8
  in
  let ok = Bld.cmp b Ir.Eq (Ir.Reg v) (Ir.Const (B.zero 8)) in
  Bld.instr b (Ir.Assert (Ir.Reg ok, "flag clear"));
  Bld.term b (Ir.Emit 0);
  let program = Bld.finish b in
  (Click.Element.make ~name:"guard" ~cls:"FlagGuard" ~config:[] program,
   decl.Ir.init)

let flip_tests =
  [
    Alcotest.test_case "mutating a read slot flips the verdict" `Quick
      (fun () ->
        Summaries.clear ();
        let el, data = flag_element () in
        let pl = Click.Pipeline.linear [ el ] in
        let s = V.session ~config:fast_config pl in
        let r1, _ = V.verify_crash s in
        check_bool "clear flag proves" true (verdict_name r1 = "proved");
        (* Reuse without any mutation: the memoized verdict comes back. *)
        let r1', reused = V.verify_crash s in
        check_bool "verdict reused" true reused;
        check_bool "same verdict" true (verdict_name r1' = "proved");
        (* Mutate the slot the summary read: the verdict must flip. *)
        Staleness.reset_stats ();
        Sdata.set data (B.zero 8) (B.of_int ~width:8 1);
        check_bool "mutation observed" true
          (Staleness.stats.Staleness.mutations >= 1);
        check_bool "dependent summary dropped" true
          (Staleness.stats.Staleness.summaries_dropped >= 1);
        let r2, reused2 = V.verify_crash s in
        check_bool "stale verdict not reused" false reused2;
        check_bool "set flag violates" true (verdict_name r2 = "violated");
        (* And back: restoring the slot restores the proof. *)
        Sdata.set data (B.zero 8) (B.zero 8);
        let r3, _ = V.verify_crash s in
        check_bool "restored flag proves" true (verdict_name r3 = "proved"));
    Alcotest.test_case "unrelated-key mutation spares the summary" `Quick
      (fun () ->
        Summaries.clear ();
        let el, data = flag_element () in
        let pl = Click.Pipeline.linear [ el ] in
        let s = V.session ~config:fast_config pl in
        let r1, _ = V.verify_crash s in
        check_bool "proved" true (verdict_name r1 = "proved");
        Staleness.reset_stats ();
        (* Key 7 was never read concretely; the summary must survive
           and the memoized verdict must be reused. *)
        Sdata.set data (B.of_int ~width:8 7) (B.of_int ~width:8 1);
        check_int "no summaries dropped" 0
          Staleness.stats.Staleness.summaries_dropped;
        let r2, reused = V.verify_crash s in
        check_bool "reused" true reused;
        check_bool "still proved" true (verdict_name r2 = "proved"));
  ]

(* {1 Router + NAT churn: incremental verdict = from-scratch verdict} *)

let mask32 len =
  if len = 0 then 0 else 0xffffffff lxor ((1 lsl (32 - len)) - 1)

let nat_router_pipeline fib =
  Click.Pipeline.linear
    [
      Click.Registry.make ~name:"cl" ~cls:"Classifier" ~config:[ "12/0800" ];
      Click.Registry.make ~name:"strip" ~cls:"Strip" ~config:[ "14" ];
      Click.Registry.make ~name:"chk" ~cls:"CheckIPHeader" ~config:[];
      Click.Registry.make ~name:"flow" ~cls:"FlowCounter" ~config:[];
      Click.Registry.make ~name:"nat" ~cls:"IPRewriter"
        ~config:[ "203.0.113.7" ];
      Click.Registry.make ~name:"cks" ~cls:"SetIPChecksum" ~config:[];
      Click.Element.make ~name:"rt" ~cls:"RadixIPLookup"
        ~config:[ Printf.sprintf "<%d routes>" (L.Fib.count fib) ]
        (L.radix_program fib);
    ]

let churn_tests =
  [
    Alcotest.test_case
      "router+NAT: incremental equals from-scratch across churn" `Slow
      (fun () ->
        Summaries.clear ();
        let st = Random.State.make [| 42 |] in
        let routes =
          { L.prefix = 0; plen = 0; gw = 0; port = 2 }
          :: List.init 200 (fun i ->
                 let plen = 8 + Random.State.int st 25 in
                 {
                   L.prefix =
                     Random.State.int st 0x3fffffff * 4 land mask32 plen;
                   plen;
                   gw = 0;
                   port = i mod 3;
                 })
        in
        let fib = L.Fib.create ~nports:3 routes in
        let pl = nat_router_pipeline fib in
        let s = V.session ~config:fast_config pl in
        let r0, _ = V.verify_crash s in
        for i = 1 to 3 do
          (* One rule change per round: two inserts, then a delete. *)
          let prefix = Random.State.int st 0x3fffffff * 4 land mask32 24 in
          if i = 3 then ignore (L.Fib.delete fib ~prefix ~plen:24)
          else
            L.Fib.insert fib { L.prefix = prefix; plen = 24; gw = 0; port = i mod 3 };
          let r_inc, _ = V.verify_crash s in
          Summaries.clear ();
          let r_scr = V.check_crash_freedom ~config:fast_config pl in
          check_bool
            (Printf.sprintf "round %d verdicts agree" i)
            true
            (verdict_name r_inc = verdict_name r_scr);
          check_bool
            (Printf.sprintf "round %d agrees with initial" i)
            true
            (verdict_name r_inc = verdict_name r0)
        done);
  ]

(* {1 Runtime FIB vs reference trie across out-of-order churn} *)

let fib_churn_tests =
  [
    Alcotest.test_case "FIB tracks the trie across inserts and deletes"
      `Quick
      (fun () ->
        let st = Random.State.make [| 2024 |] in
        let fib = L.Fib.create ~nports:8 [] in
        let model : (int * int, L.route) Hashtbl.t = Hashtbl.create 64 in
        let rand_route () =
          let plen = Random.State.int st 33 in
          let prefix = Random.State.int st 0x3fffffff * 4 land mask32 plen in
          { L.prefix; plen; gw = Random.State.int st 1000;
            port = Random.State.int st 8 }
        in
        let checks () =
          (* Rebuild the reference trie from the surviving routes and
             compare on random addresses plus each route's own cone. *)
          let idx = ref [] in
          let trie = Lpm.create () in
          Hashtbl.iter
            (fun (p, l) (r : L.route) ->
              idx := r :: !idx;
              Lpm.add trie ~prefix:p ~len:l (List.length !idx - 1))
            model;
          let arr = Array.of_list (List.rev !idx) in
          let probe addr =
            let expect =
              match Lpm.lookup trie addr with
              | None -> None
              | Some i -> Some (arr.(i).L.gw, arr.(i).L.port)
            in
            let got = L.Fib.lookup fib addr in
            if expect <> got then
              Alcotest.failf "lookup 0x%08x: model %s, fib %s" addr
                (match expect with
                | None -> "miss"
                | Some (g, p) -> Printf.sprintf "(%d,%d)" g p)
                (match got with
                | None -> "miss"
                | Some (g, p) -> Printf.sprintf "(%d,%d)" g p)
          in
          for _ = 1 to 500 do
            probe (Random.State.int st 0x3fffffff * 4)
          done;
          Hashtbl.iter
            (fun (p, _) _ ->
              probe p;
              probe (p lxor 1);
              probe (p lxor 0x100))
            model
        in
        (* Three waves: grow, mixed insert/delete, shrink — prefix
           lengths arrive in random order throughout. *)
        for _ = 1 to 60 do
          let r = rand_route () in
          L.Fib.insert fib r;
          Hashtbl.replace model (r.L.prefix, r.L.plen) r
        done;
        checks ();
        for _ = 1 to 60 do
          if Random.State.bool st && Hashtbl.length model > 0 then begin
            let keys = Hashtbl.fold (fun k _ acc -> k :: acc) model [] in
            let p, l = List.nth keys (Random.State.int st (List.length keys)) in
            check_bool "delete of present route" true
              (L.Fib.delete fib ~prefix:p ~plen:l);
            Hashtbl.remove model (p, l)
          end
          else begin
            let r = rand_route () in
            L.Fib.insert fib r;
            Hashtbl.replace model (r.L.prefix, r.L.plen) r
          end
        done;
        checks ();
        Hashtbl.iter (fun (p, l) _ -> ignore (L.Fib.delete fib ~prefix:p ~plen:l))
          (Hashtbl.copy model);
        Hashtbl.reset model;
        checks ();
        check_int "all routes deleted" 0 (L.Fib.count fib));
  ]

(* {1 Summary-cache behavior under symbex exceptions} *)

let poison_tests =
  [
    Alcotest.test_case "symbex exception clears in-flight and propagates"
      `Quick
      (fun () ->
        (* A program reading an undeclared store makes Engine.explore
           raise; built directly (Element.make would reject it). *)
        let b = Bld.create ~name:"Broken" in
        let _ =
          Bld.kv_read b ~store:"nope" ~key:(Ir.Const (B.zero 8)) ~val_width:8
        in
        Bld.term b (Ir.Emit 0);
        let broken =
          {
            Click.Element.name = "broken";
            cls = "Broken";
            config = [];
            program = Bld.finish b;
          }
        in
        let raises () =
          try
            ignore (Summaries.summarize broken);
            false
          with _ -> true
        in
        check_bool "first summarize raises" true (raises ());
        (* If the in-flight marker leaked, this second call would wait
           forever on a key nobody is computing. *)
        check_bool "second summarize raises again" true (raises ());
        (* The cache itself is not poisoned for other elements. *)
        let good = Click.El_toy.e1_element () in
        let entry = Summaries.summarize good in
        check_bool "good element still summarizes" true
          (entry.Summaries.result.E.segments <> []));
  ]

(* {1 Fabric sessions: churn in one pipeline spares the others} *)

module Cfg = Vdp_click.Config
module F = Vdp_topo.Fabric
module Q = Vdp_topo.Query

(* Two disconnected single-guard pipelines sharing a fabric. Mutating
   the static slot read by one pipeline's guard must re-verify exactly
   the properties whose pipe-closure contains that pipeline; the other
   pipeline's memoized verdict must survive the churn untouched. *)
let fabric_session_tests =
  [
    Alcotest.test_case "fabric: churn invalidates only the mutated pipe"
      `Quick
      (fun () ->
        Summaries.clear ();
        let ga, data_a = flag_element () in
        let gb, _data_b = flag_element () in
        let eg p = { Cfg.ref_pipeline = p; ref_element = None; ref_port = 0 } in
        let topo =
          {
            Cfg.topo_pipelines =
              [
                ("pa", Click.Pipeline.linear [ ga ]);
                ("pb", Click.Pipeline.linear [ gb ]);
              ];
            topo_links = [];
            topo_ingresses = [ ("ia", "pa", 0); ("ib", "pb", 0) ];
            topo_egresses = [ ("ea", eg "pa"); ("eb", eg "pb") ];
            topo_props = [ Cfg.Reach ("ia", "ea"); Cfg.Reach ("ib", "eb") ];
          }
        in
        let fab = F.of_topo topo in
        let qcfg =
          { Q.default_config with
            Q.engine = { E.default_config with E.max_len = 128 } }
        in
        let s = Q.session ~config:qcfg fab in
        let holds (r : Q.report) =
          match r.Q.verdict with Q.Holds (Some _) -> true | _ -> false
        in
        let ra, m = Q.query s (Cfg.Reach ("ia", "ea")) in
        check_bool "ia fresh" false m;
        check_bool "ia holds" true (holds ra);
        let rb, m = Q.query s (Cfg.Reach ("ib", "eb")) in
        check_bool "ib fresh" false m;
        check_bool "ib holds" true (holds rb);
        (* Warm re-query: both verdicts come back memoized. *)
        let _, m = Q.query s (Cfg.Reach ("ia", "ea")) in
        check_bool "ia memoized" true m;
        let _, m = Q.query s (Cfg.Reach ("ib", "eb")) in
        check_bool "ib memoized" true m;
        (* Poison pa's guard slot: its reach verdict must be recomputed
           (and flip — the assert now fails on every path), while pb's
           verdict is revalidated without re-querying. *)
        Staleness.reset_stats ();
        Sdata.set data_a (B.zero 8) (B.of_int ~width:8 1);
        check_bool "mutation observed" true
          (Staleness.stats.Staleness.mutations >= 1);
        let ra2, m = Q.query s (Cfg.Reach ("ia", "ea")) in
        check_bool "ia recomputed" false m;
        check_bool "ia no longer holds" false (holds ra2);
        let rb2, m = Q.query s (Cfg.Reach ("ib", "eb")) in
        check_bool "ib still memoized" true m;
        check_bool "ib still holds" true (holds rb2);
        (* Restore: pa recomputes back to holding, pb stays warm. *)
        Sdata.set data_a (B.zero 8) (B.zero 8);
        let ra3, m = Q.query s (Cfg.Reach ("ia", "ea")) in
        check_bool "ia recomputed after restore" false m;
        check_bool "ia holds again" true (holds ra3);
        let _, m = Q.query s (Cfg.Reach ("ib", "eb")) in
        check_bool "ib memoized throughout" true m);
  ]

let tests =
  flip_tests @ churn_tests @ fib_churn_tests @ poison_tests
  @ fabric_session_tests
