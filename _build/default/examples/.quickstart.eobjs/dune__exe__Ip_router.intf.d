examples/ip_router.mli:
