lib/packet/packet.mli: Bytes Format
