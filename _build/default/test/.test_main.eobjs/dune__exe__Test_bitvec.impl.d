test/test_bitvec.ml: Alcotest List Printf QCheck QCheck_alcotest String Vdp_bitvec
