lib/click/el_filter.ml: El_util List String Vdp_bitvec Vdp_ir Vdp_packet
