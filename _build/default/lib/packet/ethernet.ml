(** Ethernet II framing. *)

let header_len = 14
let ethertype_ipv4 = 0x0800
let ethertype_arp = 0x0806
let ethertype_vlan = 0x8100
let ethertype_ipv6 = 0x86dd

type mac = string (* 6 bytes *)

let mac_of_string s =
  (* "aa:bb:cc:dd:ee:ff" *)
  let parts = String.split_on_char ':' s in
  if List.length parts <> 6 then invalid_arg "Ethernet.mac_of_string";
  String.concat ""
    (List.map (fun h -> String.make 1 (Char.chr (int_of_string ("0x" ^ h)))) parts)

let mac_to_string m =
  String.concat ":"
    (List.init 6 (fun i -> Printf.sprintf "%02x" (Char.code m.[i])))

let broadcast = "\xff\xff\xff\xff\xff\xff"

type t = { dst : mac; src : mac; ethertype : int }

let parse (p : Packet.t) =
  if Packet.length p < header_len then None
  else
    Some
      {
        dst = String.init 6 (fun i -> Char.chr (Packet.get_u8 p i));
        src = String.init 6 (fun i -> Char.chr (Packet.get_u8 p (6 + i)));
        ethertype = Packet.get_be p 12 2;
      }

let write (p : Packet.t) t =
  Packet.blit_string p 0 t.dst;
  Packet.blit_string p 6 t.src;
  Packet.set_be p 12 2 t.ethertype

(** Prepend an Ethernet header to [p]. *)
let encap (p : Packet.t) ~dst ~src ~ethertype =
  Packet.push p header_len;
  write p { dst; src; ethertype }

let header ~dst ~src ~ethertype =
  let b = Bytes.create header_len in
  Bytes.blit_string dst 0 b 0 6;
  Bytes.blit_string src 0 b 6 6;
  Bytes.set b 12 (Char.chr (ethertype lsr 8));
  Bytes.set b 13 (Char.chr (ethertype land 0xff));
  Bytes.to_string b
