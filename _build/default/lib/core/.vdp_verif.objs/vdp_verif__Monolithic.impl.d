lib/core/monolithic.ml: List Unix Vdp_click Vdp_smt Vdp_symbex
