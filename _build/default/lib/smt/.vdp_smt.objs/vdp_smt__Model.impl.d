lib/smt/model.ml: Format Hashtbl List Option String Vdp_bitvec
