test/test_click.ml: Alcotest Array List QCheck QCheck_alcotest Random Stdlib String Vdp_bitvec Vdp_click Vdp_ir Vdp_packet Vdp_tables
