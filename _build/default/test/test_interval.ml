(* The interval analysis: ranges must over-approximate, refutations
   must be sound (never refute a satisfiable constraint). *)

module B = Vdp_bitvec.Bitvec
module T = Vdp_smt.Term
module I = Vdp_smt.Interval
module Model = Vdp_smt.Model
module Eval = Vdp_smt.Eval

let check_bool = Alcotest.(check bool)

let x = T.var "x" 8
let c n = T.bv_int ~width:8 n

let unit_tests =
  [
    Alcotest.test_case "range of constants" `Quick (fun () ->
        check_bool "const" true (I.range (c 42) = Some (42, 42)));
    Alcotest.test_case "range through masks and shifts" `Quick (fun () ->
        (* (zext16 (x & 0x0f)) << 2 : the header-length pattern. *)
        let hlen = T.shl (T.zext 16 (T.band x (c 0x0f))) (T.bv_int ~width:16 2) in
        match I.range hlen with
        | Some (lo, hi) -> check_bool "0..60" true (lo = 0 && hi = 60)
        | None -> Alcotest.fail "expected a range");
    Alcotest.test_case "refutes contradictory bounds" `Quick (fun () ->
        check_bool "x<5 && x>10" true
          (I.refute (T.and_ [ T.ult x (c 5); T.ult (c 10) x ]));
        check_bool "x<10 && x>5 sat" false
          (I.refute (T.and_ [ T.ult x (c 10); T.ult (c 5) x ])));
    Alcotest.test_case "refutes eq against range" `Quick (fun () ->
        let masked = T.band x (c 0x0f) in
        check_bool "masked = 200 impossible" true
          (I.refute (T.eq masked (c 200))));
    Alcotest.test_case "negated atoms" `Quick (fun () ->
        (* not (x < 5) && x < 3  is unsat *)
        check_bool "refuted" true
          (I.refute (T.and_ [ T.not_ (T.ult x (c 5)); T.ult x (c 3) ])));
  ]

(* Soundness: anything interval-refuted is really unsat (checked by
   brute force over one 8-bit variable). *)
let soundness =
  let gen =
    QCheck.Gen.(
      let atom =
        let* op = int_bound 2 in
        let* k = int_bound 255 in
        let* flip = bool in
        let base = T.var "x" 8 in
        let t =
          match op with
          | 0 -> T.ult base (T.bv_int ~width:8 k)
          | 1 -> T.ule (T.bv_int ~width:8 k) base
          | _ -> T.eq base (T.bv_int ~width:8 k)
        in
        return (if flip then T.not_ t else t)
      in
      let* n = int_range 1 4 in
      let* atoms = list_repeat n atom in
      return (T.and_ atoms))
  in
  QCheck.Test.make ~count:500 ~name:"interval refutation is sound"
    (QCheck.make ~print:T.to_string gen)
    (fun t ->
      if I.refute t then begin
        (* Must be unsat: no byte value satisfies it. *)
        let sat = ref false in
        for v = 0 to 255 do
          let m = Model.of_list [ ("x", B.of_int ~width:8 v) ] in
          if Eval.eval_bool m t then sat := true
        done;
        not !sat
      end
      else true)

let tests = unit_tests @ List.map QCheck_alcotest.to_alcotest [ soundness ]
