# Convenience targets; `make ci` is what the CI job runs.

.PHONY: all build test bench ci clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

ci: build
	dune runtest

clean:
	dune clean
