lib/tables/classifier.ml: Array Char List String Vdp_packet
