(** Shared IR-building helpers for the element library. *)

module B = Vdp_bitvec.Bitvec
module Ir = Vdp_ir.Types
module Bld = Vdp_ir.Builder

let c1 b = Ir.Const (B.of_bool b)
let c8 n = Ir.Const (B.of_int ~width:8 n)
let c16 n = Ir.Const (B.of_int ~width:16 n)
let c32 n = Ir.Const (B.of_int ~width:32 n)

(** One's-complement sum of [hlen] bytes starting at packet offset 0,
    as used by the IPv4 header checksum. [hlen_rv] is a 16-bit rvalue
    that must be even and within the packet (the caller establishes
    that; this code will crash on out-of-window loads, which is the
    point). Returns a 16-bit register holding the folded sum. *)
let checksum_sum b ~hlen_rv =
  let sum = Bld.reg b ~width:32 in
  let off = Bld.reg b ~width:16 in
  Bld.instr b (Ir.Assign (sum, Ir.Move (c32 0)));
  Bld.instr b (Ir.Assign (off, Ir.Move (c16 0)));
  let head = Bld.new_block b in
  let body = Bld.new_block b in
  let exit = Bld.new_block b in
  Bld.term b (Ir.Goto head);
  Bld.select b head;
  let continue = Bld.cmp b Ir.Ult (Ir.Reg off) hlen_rv in
  Bld.term b (Ir.Branch (Ir.Reg continue, body, exit));
  Bld.select b body;
  let word = Bld.load b ~off:(Ir.Reg off) ~n:2 in
  let wide = Bld.zext b ~width:32 (Ir.Reg word) in
  Bld.instr b (Ir.Assign (sum, Ir.Binop (Ir.Add, Ir.Reg sum, Ir.Reg wide)));
  Bld.instr b (Ir.Assign (off, Ir.Binop (Ir.Add, Ir.Reg off, c16 2)));
  Bld.term b (Ir.Goto head);
  Bld.select b exit;
  (* Fold the carries twice: 32-bit sum of <= 30 words fits after two folds. *)
  let fold () =
    let low = Bld.assign b ~width:32 (Ir.Binop (Ir.And, Ir.Reg sum, c32 0xffff)) in
    let high = Bld.assign b ~width:32 (Ir.Binop (Ir.Lshr, Ir.Reg sum, c32 16)) in
    Bld.instr b (Ir.Assign (sum, Ir.Binop (Ir.Add, Ir.Reg low, Ir.Reg high)))
  in
  fold ();
  fold ();
  Bld.extract b ~hi:15 ~lo:0 (Ir.Reg sum)

(** Branch to a fresh "fail" block that [emit]s to port [port] when
    [cond] is false; continues in a fresh block otherwise. *)
let guard_or_port b cond ~port =
  let ok = Bld.new_block b and bad = Bld.new_block b in
  Bld.term b (Ir.Branch (cond, ok, bad));
  Bld.select b bad;
  Bld.term b (Ir.Emit port);
  Bld.select b ok

(** Same, but failing packets are dropped. *)
let guard_or_drop b cond =
  let ok = Bld.new_block b and bad = Bld.new_block b in
  Bld.term b (Ir.Branch (cond, ok, bad));
  Bld.select b bad;
  Bld.term b Ir.Drop;
  Bld.select b ok
