(* Independent forward RUP/DRAT proof checker.

   This module is the trusted base of the certificate subsystem: it
   validates the proof traces emitted by the CDCL core without sharing
   any code with it. Everything is deliberately different from
   [lib/smt/sat.ml] — clauses live in a flat arena with full per-literal
   occurrence lists (no two-watched-literal scheme, no in-place literal
   reordering), the assignment is a var-indexed 0/1/2 array rather than
   the solver's xor-coded literal values, and unit propagation rescans
   whole clauses instead of juggling watches. Slower, but small enough
   to audit.

   Literal encoding is shared *data format* (variable [v] is literal
   [2v] positive, [2v+1] negative) so traces need no translation.

   Checking is the standard forward pass: each added clause must be RUP
   (assuming its negation and unit-propagating the current database
   yields a conflict) or, failing that, RAT on its first literal; each
   deletion must name a clause actually present (set-equal literals).
   The trace is accepted only if it derives the empty clause and — when
   the caller knows how many deletions the producer performed — the
   deletion count matches, which is what catches a producer that
   silently drops clauses without logging them. Steps after the
   derivation are applied without inference checks (this checker's
   eager root propagation can conflict before the lazier producer
   notices, so a valid trace may continue past that point), but they
   still have to be well-formed: deletions must resolve and are
   counted. *)

type step = Add of int array | Delete of int array

let neg l = l lxor 1
let var l = l lsr 1

(* Assignment codes. *)
let unknown = 0
let v_true = 1
let v_false = 2

type db = {
  mutable clauses : int array array;  (* arena; never shrinks *)
  mutable alive : bool array;
  mutable n : int;  (* arena entries used *)
  mutable live : int;  (* alive clauses *)
  mutable occ : int list array;  (* literal -> arena indices *)
  mutable index : (int list, int list ref) Hashtbl.t option;
      (* sorted literals -> live arena indices, for deletion lookup;
         built on the first deletion step — backward-trimmed traces
         contain none, so they never pay for keying inserts *)
  mutable assign : int array;  (* var -> unknown / v_true / v_false *)
  mutable trail : int array;  (* literals assigned true, in order *)
  mutable trail_len : int;
  mutable root_len : int;  (* trail prefix implied by the database *)
  mutable dirty : bool;  (* deletions may have orphaned root units *)
}

let create () =
  {
    clauses = Array.make 64 [||];
    alive = Array.make 64 false;
    n = 0;
    live = 0;
    occ = Array.make 128 [];
    index = None;
    assign = Array.make 64 unknown;
    trail = Array.make 64 0;
    trail_len = 0;
    root_len = 0;
    dirty = false;
  }

let ensure_var db v =
  if v >= Array.length db.assign then begin
    let arr = Array.make (max (v + 1) (2 * Array.length db.assign)) unknown in
    Array.blit db.assign 0 arr 0 (Array.length db.assign);
    db.assign <- arr
  end;
  if (2 * v) + 1 >= Array.length db.occ then begin
    let arr = Array.make (max ((2 * v) + 2) (2 * Array.length db.occ)) [] in
    Array.blit db.occ 0 arr 0 (Array.length db.occ);
    db.occ <- arr
  end

(* Occurrences of literal [l]; a literal the database has never seen
   simply occurs nowhere. *)
let occ_ids db l = if l < Array.length db.occ then db.occ.(l) else []

let lit_state db l =
  let a = db.assign.(var l) in
  if a = unknown then unknown
  else if (a = v_true) = (l land 1 = 0) then v_true
  else v_false

let push_trail db l =
  if db.trail_len = Array.length db.trail then begin
    let arr = Array.make (2 * db.trail_len) 0 in
    Array.blit db.trail 0 arr 0 db.trail_len;
    db.trail <- arr
  end;
  db.trail.(db.trail_len) <- l;
  db.trail_len <- db.trail_len + 1

(* Make [l] true; caller guarantees it is currently unknown. *)
let assign_true db l =
  ensure_var db (var l);
  db.assign.(var l) <- (if l land 1 = 0 then v_true else v_false);
  push_trail db l

let undo_to db mark =
  for i = db.trail_len - 1 downto mark do
    db.assign.(var db.trail.(i)) <- unknown
  done;
  db.trail_len <- mark

let sorted_key lits = List.sort Stdlib.compare (Array.to_list lits)

let index_add index key id =
  let r =
    match Hashtbl.find_opt index key with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.add index key r;
      r
  in
  r := id :: !r

let insert db lits =
  if db.n = Array.length db.clauses then begin
    let cl = Array.make (2 * db.n) [||] in
    Array.blit db.clauses 0 cl 0 db.n;
    db.clauses <- cl;
    let al = Array.make (2 * db.n) false in
    Array.blit db.alive 0 al 0 db.n;
    db.alive <- al
  end;
  let id = db.n in
  db.clauses.(id) <- lits;
  db.alive.(id) <- true;
  db.n <- id + 1;
  db.live <- db.live + 1;
  Array.iter
    (fun l ->
      ensure_var db (var l);
      db.occ.(l) <- id :: db.occ.(l))
    lits;
  (match db.index with
  | None -> ()
  | Some index -> index_add index (sorted_key lits) id);
  id

(* First deletion: key every live clause. Ids are pushed in arena order,
   so the head of each bucket is the most recent insert — the same
   clause a per-insert index would have deleted first. *)
let build_index db =
  let index = Hashtbl.create 256 in
  for id = 0 to db.n - 1 do
    if db.alive.(id) then index_add index (sorted_key db.clauses.(id)) id
  done;
  db.index <- Some index;
  index

let delete db lits =
  let index = match db.index with Some i -> i | None -> build_index db in
  let key = sorted_key lits in
  match Hashtbl.find_opt index key with
  | Some ({ contents = id :: rest } as r) ->
    r := rest;
    db.alive.(id) <- false;
    db.live <- db.live - 1;
    (* Root units propagated through this clause are no longer
       supported; rebuild the root assignment lazily. *)
    db.dirty <- true;
    true
  | _ -> false

(* Scan one clause under the current assignment. *)
type scan = Satisfied | Conflict | Unit of int | Open

let scan_clause db lits =
  let unassigned = ref 0 and the_lit = ref 0 and sat = ref false in
  let i = ref 0 and len = Array.length lits in
  while (not !sat) && !i < len do
    (match lit_state db lits.(!i) with
    | s when s = v_true -> sat := true
    | s when s = unknown ->
      incr unassigned;
      the_lit := lits.(!i)
    | _ -> ());
    incr i
  done;
  if !sat then Satisfied
  else if !unassigned = 0 then Conflict
  else if !unassigned = 1 then Unit !the_lit
  else Open

(* Propagate from [qhead]; returns [true] on conflict. Visits, for each
   newly-true literal, every clause containing its negation. *)
let propagate db qhead =
  let conflict = ref false in
  let q = ref qhead in
  while (not !conflict) && !q < db.trail_len do
    let l = db.trail.(!q) in
    incr q;
    List.iter
      (fun id ->
        if (not !conflict) && db.alive.(id) then
          match scan_clause db db.clauses.(id) with
          | Conflict -> conflict := true
          | Unit u -> assign_true db u
          | Satisfied | Open -> ())
      (occ_ids db (neg l))
  done;
  !conflict

(* Re-derive the database's unit-implied assignment from scratch:
   required initially and after any deletion (a deleted clause may have
   been the sole support of a root unit — keeping such units would make
   the checker unsound). Returns [true] if the database is conflicting
   at the root, i.e. the empty clause is derivable. *)
let rebuild_root db =
  undo_to db 0;
  db.root_len <- 0;
  db.dirty <- false;
  let conflict = ref false in
  (* Seed with every unit/empty clause, then run the fixpoint; cascades
     may make further clauses unit, so rescan until stable. *)
  let changed = ref true in
  while (not !conflict) && !changed do
    changed := false;
    for id = 0 to db.n - 1 do
      if (not !conflict) && db.alive.(id) then
        match scan_clause db db.clauses.(id) with
        | Conflict -> conflict := true
        | Unit u ->
          assign_true db u;
          changed := true
        | Satisfied | Open -> ()
    done;
    if (not !conflict) && !changed then
      conflict := propagate db 0
  done;
  db.root_len <- db.trail_len;
  !conflict

(* RUP test: assume the negation of every literal of [lits] on top of
   the root assignment and propagate; [true] iff that conflicts. The
   trail is restored before returning. *)
let rup db lits =
  let mark = db.trail_len in
  let conflict = ref false in
  Array.iter
    (fun l ->
      if not !conflict then
        match lit_state db l with
        | s when s = v_true -> conflict := true
        | s when s = unknown -> assign_true db (neg l)
        | _ -> ())
    lits;
  let conflict = !conflict || propagate db mark in
  undo_to db mark;
  conflict

(* RAT test on the first literal: every resolvent of [lits] with a live
   clause containing the negated pivot must itself be RUP. *)
let rat db lits =
  Array.length lits > 0
  &&
  let pivot = lits.(0) in
  let ok = ref true in
  List.iter
    (fun id ->
      if !ok && db.alive.(id) then begin
          let d = db.clauses.(id) in
          let resolvent =
            Array.append lits
              (Array.of_seq
                 (Seq.filter (fun l -> l <> neg pivot) (Array.to_seq d)))
          in
          (* A tautological resolvent is vacuously fine: the RUP test
             below treats it as an immediate conflict when it assumes
             both polarities. *)
          let tautology =
            Array.exists
              (fun l -> Array.exists (fun m -> m = neg l) resolvent)
              resolvent
          in
          if not (tautology || rup db resolvent) then ok := false
        end)
    (occ_ids db (neg pivot));
  !ok

type outcome = (unit, string) result

let error fmt = Printf.ksprintf (fun s -> Error s) fmt

(* [check ~nvars ~cnf ~steps] validates a forward DRAT trace over the
   recorded CNF. [expected_deletions], when given, must equal the
   number of deletion steps successfully applied — producers record the
   solver's own deletion counters there, so a deletion performed but
   not logged (or logged but not performed) is caught. *)
let check ?expected_deletions ~nvars ~cnf steps : outcome =
  let db = create () in
  ensure_var db (max 0 (nvars - 1));
  List.iter (fun lits -> ignore (insert db (Array.of_list lits))) cnf;
  let derived_empty = ref (rebuild_root db) in
  let ndel = ref 0 in
  let err = ref None in
  List.iteri
    (fun i step ->
      if !err = None then
        match step with
        | Add lits when !derived_empty ->
          (* The proof is already complete; keep the database in step so
             later deletions still resolve, but infer nothing. *)
          if Array.length lits > 0 then ignore (insert db lits)
        | Add lits ->
          if db.dirty then derived_empty := rebuild_root db;
          if !derived_empty then (
            if Array.length lits > 0 then ignore (insert db lits))
          else if not (rup db lits || rat db lits) then
            err :=
              Some
                (Printf.sprintf "step %d: clause is neither RUP nor RAT" i)
          else if Array.length lits = 0 then derived_empty := true
          else begin
            ignore (insert db lits);
            (* Keep the root assignment current: a freshly added unit
               (or a clause unit under the root) extends it, possibly
               to a conflict — which is a derivation of the empty
               clause. *)
            match scan_clause db lits with
            | Unit u ->
              assign_true db u;
              if propagate db (db.trail_len - 1) then derived_empty := true
              else db.root_len <- db.trail_len
            | Conflict -> derived_empty := true
            | Satisfied | Open -> ()
          end
        | Delete lits ->
          if delete db lits then incr ndel
          else err := Some (Printf.sprintf "step %d: deleting absent clause" i))
    steps;
  match !err with
  | Some e -> Error e
  | None ->
    if not !derived_empty then error "no empty clause derived"
    else (
      match expected_deletions with
      | Some d when d <> !ndel ->
        error "deletion mismatch: %d logged, %d expected" !ndel d
      | _ -> Ok ())
