// Two tenants behind a NAT gateway — the fabric used by the
// relational queries (reach / isolate / temporal).
//
//   dune exec bin/vdpverify.exe -- isolate examples/multi_tenant.click
//   dune exec bin/vdpverify.exe -- reach examples/multi_tenant.click
//   dune exec bin/vdpverify.exe -- isolate --certify examples/multi_tenant.click a lan_b
//
// Each tenant's ingress pipeline admits only its own source prefix;
// the gateway NATs outbound traffic (port 0) to the WAN and maps
// inbound traffic (port 1) back through its dynamic rev_map, so the
// LAN-side egresses are reachable from the WAN only after an
// outbound packet primed the mapping — the temporal properties.

topology {
  pipeline tenant_a {
    cl :: Classifier(12/0800, -);
    chk :: CheckIPHeader;
    cl[0] -> Strip(14) -> chk -> IPFilter(allow src 10.1.0.0/16, deny all);
    chk[1] -> Discard;
    cl[1] -> Discard;
  }

  pipeline tenant_b {
    cl :: Classifier(12/0800, -);
    chk :: CheckIPHeader;
    cl[0] -> Strip(14) -> chk -> IPFilter(allow src 10.2.0.0/16, deny all);
    chk[1] -> Discard;
    cl[1] -> Discard;
  }

  // WAN-side admission: Ethernet + IP header checks only.
  pipeline wan_in {
    cl :: Classifier(12/0800, -);
    chk :: CheckIPHeader;
    cl[0] -> Strip(14) -> chk;
    chk[1] -> Discard;
    cl[1] -> Discard;
  }

  // The gateway. NATGateway branches on the packet's input port:
  //   in 0 (tenants)  -> out 0: source rewritten to the public address
  //   in 1 (WAN)      -> out 1: rev_map hit rewrites the destination
  //                      back to the inside host; miss drops
  //   other in-ports  -> out 2: bypass
  pipeline gw {
    nat :: NATGateway(203.0.113.1);
    rt :: StaticIPLookup(10.1.0.0/16 0, 10.2.0.0/16 1);
    nat[1] -> rt;
    nat[2] -> Discard;
  }

  tenant_a[0] -> [0] gw;
  tenant_b[0] -> [0] gw;
  wan_in[0] -> [1] gw;

  ingress a = tenant_a;
  ingress b = tenant_b;
  ingress wan = wan_in;

  egress wan_out = gw[0];
  egress lan_a = gw[1];
  egress lan_b = gw[2];

  // Tenants can reach the WAN ...
  reach a -> wan_out;
  reach b -> wan_out;
  // ... but never each other's LAN side, even via the NAT ...
  isolate a -> lan_b;
  isolate b -> lan_a;
  // ... and the WAN reaches a LAN side only after that tenant's
  // outbound packet primed the NAT mapping.
  temporal wan -> lan_a;
  temporal wan -> lan_b;
}
