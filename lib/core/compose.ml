(** Step 2 of the paper: stitching per-element segment summaries into
    whole-pipeline paths {e without re-executing any code}.

    A composite packet state maps the current element's input window
    back to terms over the pipeline's original input variables
    ([p\[j\]], [p.len], metadata). Applying a segment (1) renames the
    segment's internal variables (key/value reads, havoc values) so
    different positions cannot collide, (2) substitutes the current
    state into the segment's constraints and transformations, and (3)
    advances the state by the segment's writes and head/length changes.
    Feasibility of the accumulated constraint is decided by the
    bit-vector solver. *)

module B = Vdp_bitvec.Bitvec
module T = Vdp_smt.Term
module S = Vdp_symbex.Sstate
module Engine = Vdp_symbex.Engine
module Ir = Vdp_ir.Types

type background =
  | Input of int  (** shift: window offset [j] is input byte [j + shift] *)
  | Havoc of string * int
      (** renamed havoc prefix and shift relative to the havoc window *)

type t = {
  background : background;
  overrides : (int, T.t) Hashtbl.t;  (** window offset -> byte term *)
  len : T.t;
  meta : (Ir.meta * T.t) list;
  cond : T.t list;
      (** accumulated constraints, {e newest first}; the tail beyond
          [new_cond] physically shares the predecessor state's list, so
          a deep path costs O(|segment|) per step, not O(|path|) *)
  new_cond : T.t list;
      (** the constraints contributed by the latest {!apply} (or the
          assumptions of {!initial}) — exactly the delta a caller must
          assert into a fresh incremental solver scope *)
  instr_lo : int;
  instr_hi : int;
  summarized : bool;
  kv_trace : (string * S.kv_event) list;
      (** (position tag, renamed event), newest first *)
  trail : string list;
      (** position tags of the segments applied so far, newest first —
          the node path this composite state predicts *)
  headroom : int;
      (** remaining headroom budget in bytes: the configured headroom
          plus the accumulated net head deltas of the applied segments.
          Every element's own symbex assumes it starts with the {e full}
          configured headroom, so composition must re-check each
          segment's worst push excursion against this remaining budget. *)
  headroom_short : bool;
      (** true iff the segment just applied dips below the remaining
          budget ([headroom + min_delta < 0]): the concrete runtime
          would crash with [Headroom_exhausted] on this path even
          though the element-local summary did not. *)
  static_deps : (int * B.t) list;
      (** union of the static-state slices ({!Vdp_ir.Static_data} id,
          concrete key) baked into the segments applied so far — the
          tag a Step-2 query-cache entry built from this state carries,
          so a rule change invalidates exactly the dependent entries *)
}

let initial ?(assume = []) ?(meta = [])
    ?(headroom = Vdp_packet.Packet.default_headroom) () =
  {
    background = Input 0;
    overrides = Hashtbl.create 16;
    len = T.var S.len_var 16;
    meta;
    cond = assume;
    new_cond = assume;
    instr_lo = 0;
    instr_hi = 0;
    summarized = false;
    kv_trace = [];
    trail = [];
    headroom;
    headroom_short = false;
    static_deps = [];
  }

(** Byte [j] of the current window as a term over original inputs. *)
let byte st j =
  match Hashtbl.find_opt st.overrides j with
  | Some t -> t
  | None -> (
    match st.background with
    | Input shift ->
      if j + shift >= 0 then T.var (S.byte_var (j + shift)) 8
      else T.bv (B.zero 8) (* pushed-in headroom bytes are zeroed *)
    | Havoc (prefix, shift) ->
      if j + shift >= 0 then T.var (Printf.sprintf "%s_%d" prefix (j + shift)) 8
      else T.bv (B.zero 8))

let meta_term st m =
  match List.assoc_opt m st.meta with
  | Some t -> t
  | None -> T.var (S.meta_var m) (Ir.meta_width m)

let cond_term st = T.and_ st.cond

(** Rewrite one of the segment's terms into pipeline-input terms, in a
    single walk: internal variables (key/value reads, havoc values) are
    renamed with the position tag so different positions cannot
    collide, and packet variables are substituted with the current
    composite state. Partial application [import st ~tag] fixes one
    memo table, so a batch of terms from the same segment — its
    constraints, writes, length and state events, which share most of
    their structure — is rewritten in one DAG traversal total. *)
let import st ~tag =
  let memo = Hashtbl.create 256 in
  let lookup n (sort : Vdp_smt.Sort.t) =
    if S.is_internal n then
      let n' = "!" ^ tag ^ n in
      Some
        (match sort with
        | Vdp_smt.Sort.Bool -> T.bool_var n'
        | Vdp_smt.Sort.Bv w -> T.var n' w)
    else if n = S.len_var then Some st.len
    else if String.length n > 3 && String.sub n 0 2 = "p[" then begin
      match int_of_string_opt (String.sub n 2 (String.length n - 3)) with
      | Some j -> Some (byte st j)
      | None -> None
    end
    else
      match
        List.find_opt (fun m -> S.meta_var m = n)
          [ Ir.Port; Ir.Color; Ir.W0; Ir.W1 ]
      with
      | Some m -> Some (meta_term st m)
      | None -> None
  in
  fun term -> T.substitute_vars ~memo lookup term

(** Apply a segment summary at pipeline position [tag]; returns the
    state {e after} the segment (meaningful when its outcome emits).
    [deps] is the element's static-state slice list (from its
    {!Engine.result}), unioned into the composite state. *)
let apply ?(deps = []) st ~tag (seg : Engine.segment) =
  let xf = import st ~tag in
  let out = seg.Engine.out_state in
  let delta = out.Engine.head_delta in
  let new_cond = List.map xf seg.Engine.cond in
  (* Background and carried-over overrides. *)
  let background, overrides =
    match out.Engine.havoc with
    | Some (epoch, head) ->
      (* All unwritten bytes become the segment's havoc variables,
         renamed with the position tag; offset j is absolute head+j. *)
      (Havoc (Printf.sprintf "!%s!hv%d" tag epoch, head), Hashtbl.create 16)
    | None ->
      let o' = Hashtbl.create (Hashtbl.length st.overrides) in
      Hashtbl.iter
        (fun j v ->
          let j' = j - delta in
          if j' >= 0 then Hashtbl.replace o' j' v)
        st.overrides;
      let bg =
        match st.background with
        | Input shift -> Input (shift + delta)
        | Havoc (p, shift) -> Havoc (p, shift + delta)
      in
      (bg, o')
  in
  List.iter
    (fun (j, term) -> Hashtbl.replace overrides j (xf term))
    out.Engine.writes;
  let meta =
    List.fold_left
      (fun acc (m, term) -> (m, xf term) :: List.remove_assoc m acc)
      st.meta out.Engine.meta_out
  in
  let kv_new =
    List.map
      (fun ev ->
        let ev' =
          match ev with
          | S.Kv_read { store; key; value; cond } ->
            S.Kv_read
              { store; key = xf key; value = xf value; cond = xf cond }
          | S.Kv_write { store; key; value; cond } ->
            S.Kv_write
              { store; key = xf key; value = xf value; cond = xf cond }
        in
        (tag, ev'))
      seg.Engine.kv_log
  in
  {
    background;
    overrides;
    len = xf out.Engine.len_out;
    meta;
    cond = List.rev_append new_cond st.cond;
    new_cond;
    instr_lo = st.instr_lo + seg.Engine.instr_lo;
    instr_hi = st.instr_hi + seg.Engine.instr_hi;
    summarized = st.summarized || seg.Engine.summarized;
    kv_trace = List.rev_append kv_new st.kv_trace;
    trail = tag :: st.trail;
    headroom = st.headroom + delta;
    headroom_short = st.headroom + out.Engine.min_delta < 0;
    static_deps =
      (let fresh =
         List.filter
           (fun (sid, k) ->
             not
               (List.exists
                  (fun (sid', k') -> sid = sid' && B.equal k k')
                  st.static_deps))
           deps
       in
       fresh @ st.static_deps);
  }

(** Cheap infeasibility filter for pruning during path enumeration. *)
let plausible st = not (Vdp_smt.Interval.refute (cond_term st))

(** Build a concrete input packet from a solver model of the composite
    constraint. Bytes the model leaves free default to zero. *)
let witness_packet (m : Vdp_smt.Model.t) ~max_len =
  let len =
    match Vdp_smt.Model.bv_opt m S.len_var with
    | Some v -> min (B.to_int_trunc v) max_len
    | None -> 0
  in
  let data =
    String.init len (fun j ->
        match Vdp_smt.Model.bv_opt m (S.byte_var j) with
        | Some v -> Char.chr (B.to_int_trunc v land 0xff)
        | None -> '\000')
  in
  let pkt = Vdp_packet.Packet.create data in
  (match Vdp_smt.Model.bv_opt m (S.meta_var Ir.Port) with
  | Some v -> pkt.Vdp_packet.Packet.port <- B.to_int_trunc v
  | None -> ());
  pkt
