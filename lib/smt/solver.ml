type outcome =
  | Sat of Model.t
  | Unsat
  | Unknown

type stats = {
  mutable calls : int;
  mutable sat_answers : int;
  mutable unsat_answers : int;
  mutable unknown_answers : int;
  mutable interval_refutations : int;
  mutable folded : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_evictions : int;
  mutable eliminated_conjuncts : int;
  mutable sliced_conjuncts : int;
  mutable gate_hits : int;
  mutable gate_misses : int;
  mutable sat_vars : int;
  mutable sat_clauses : int;
  mutable learned_deleted : int;
  mutable preprocess_time : float;
  mutable blast_time : float;
  mutable sat_time : float;
  (* Certification counters, bumped by [Vdp_cert] (this module only
     stores them so they ride the same stats/reset/reporting plumbing
     as the solving counters). *)
  mutable cert_attempted : int;
  mutable cert_checked : int;
  mutable cert_failed : int;
  mutable cert_cached : int;
  mutable cert_drat : int;
  mutable cert_interval : int;
  mutable cert_folded : int;
  mutable cert_proof_clauses : int;
  mutable cert_proof_deletions : int;
  mutable cert_solve_time : float;
  mutable cert_check_time : float;
  mutable cert_pcache_hits : int;
  mutable cert_trimmed_clauses : int;  (* proof adds kept after trimming *)
  mutable cert_untrimmed_clauses : int;  (* proof adds before trimming *)
  (* Scheduler counters, copied from [Vdp_core.Pool] after a parallel
     run so they ride the same stats/reporting plumbing. *)
  mutable sched_spawned : int;
  mutable sched_executed : int;
  mutable sched_stolen : int;
  mutable sched_busy : float;
  mutable sched_idle : float;
  mutable sched_hist : int array;  (* <1ms, <10ms, <100ms, <1s, rest *)
}

let fresh_stats () =
  {
    calls = 0;
    sat_answers = 0;
    unsat_answers = 0;
    unknown_answers = 0;
    interval_refutations = 0;
    folded = 0;
    cache_hits = 0;
    cache_misses = 0;
    cache_evictions = 0;
    eliminated_conjuncts = 0;
    sliced_conjuncts = 0;
    gate_hits = 0;
    gate_misses = 0;
    sat_vars = 0;
    sat_clauses = 0;
    learned_deleted = 0;
    preprocess_time = 0.;
    blast_time = 0.;
    sat_time = 0.;
    cert_attempted = 0;
    cert_checked = 0;
    cert_failed = 0;
    cert_cached = 0;
    cert_drat = 0;
    cert_interval = 0;
    cert_folded = 0;
    cert_proof_clauses = 0;
    cert_proof_deletions = 0;
    cert_solve_time = 0.;
    cert_check_time = 0.;
    cert_pcache_hits = 0;
    cert_trimmed_clauses = 0;
    cert_untrimmed_clauses = 0;
    sched_spawned = 0;
    sched_executed = 0;
    sched_stolen = 0;
    sched_busy = 0.;
    sched_idle = 0.;
    sched_hist = Array.make 5 0;
  }

(* Process-wide aggregate, kept for compatibility: every context also
   bumps this record, so the sum over all solving activity remains
   observable in one place. Under parallel mode every stats bump is
   serialised by [stats_lock] (contexts are single-domain, but they
   share this aggregate), so counts are never lost to races. *)
let stats = fresh_stats ()

let stats_lock = Mutex.create ()

let locked f =
  if Par.active () then begin
    Mutex.lock stats_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock stats_lock) f
  end
  else f ()

let reset_stats_record s =
  s.calls <- 0;
  s.sat_answers <- 0;
  s.unsat_answers <- 0;
  s.unknown_answers <- 0;
  s.interval_refutations <- 0;
  s.folded <- 0;
  s.cache_hits <- 0;
  s.cache_misses <- 0;
  s.cache_evictions <- 0;
  s.eliminated_conjuncts <- 0;
  s.sliced_conjuncts <- 0;
  s.gate_hits <- 0;
  s.gate_misses <- 0;
  s.sat_vars <- 0;
  s.sat_clauses <- 0;
  s.learned_deleted <- 0;
  s.preprocess_time <- 0.;
  s.blast_time <- 0.;
  s.sat_time <- 0.;
  s.cert_attempted <- 0;
  s.cert_checked <- 0;
  s.cert_failed <- 0;
  s.cert_cached <- 0;
  s.cert_drat <- 0;
  s.cert_interval <- 0;
  s.cert_folded <- 0;
  s.cert_proof_clauses <- 0;
  s.cert_proof_deletions <- 0;
  s.cert_solve_time <- 0.;
  s.cert_check_time <- 0.;
  s.cert_pcache_hits <- 0;
  s.cert_trimmed_clauses <- 0;
  s.cert_untrimmed_clauses <- 0;
  s.sched_spawned <- 0;
  s.sched_executed <- 0;
  s.sched_stolen <- 0;
  s.sched_busy <- 0.;
  s.sched_idle <- 0.;
  Array.fill s.sched_hist 0 (Array.length s.sched_hist) 0

let reset_stats () = reset_stats_record stats

let now () = Unix.gettimeofday ()

(* {1 Query cache}

   Memoizes definite answers keyed on the hash-consed id of the
   *preprocessed* conjunction. [Term.and_] flattens and deduplicates
   through a set, so the same multiset of constraints always maps to
   the same id no matter in which order a caller accumulated them — and
   preprocessing first means queries that differ only in eliminated
   conjuncts (a definition spelled [x = 5] vs the constant 5 already
   propagated) also collide. A cached [Sat] model satisfies the
   preprocessed formula; each hit re-completes it against the hitting
   query's own eliminated variables. [Unknown] answers are never
   cached: they depend on the conflict budget. *)

module Cache = struct
  module B = Vdp_bitvec.Bitvec

  type t = {
    table : (int, outcome * (int * B.t) list) Hashtbl.t;
        (* outcome plus the static-state slices (Static_data id,
           concrete key) the query depended on: a config mutation of
           one of those slices drops exactly the dependent entries *)
    order : int Queue.t;  (* insertion order, for FIFO eviction *)
    capacity : int;
    lock : Mutex.t;
        (* taken only in parallel mode: a cache may then be shared by
           every worker domain (lookup/insert stay individually atomic;
           a racing duplicate solve is harmless and [add] dedupes) *)
    mutable invalidated : int;  (* entries dropped by invalidate_static *)
  }

  let create ?(capacity = 1 lsl 14) () =
    {
      table = Hashtbl.create 256;
      order = Queue.create ();
      capacity;
      lock = Mutex.create ();
      invalidated = 0;
    }

  let guarded c f =
    if Par.active () then begin
      Mutex.lock c.lock;
      Fun.protect ~finally:(fun () -> Mutex.unlock c.lock) f
    end
    else f ()

  let clear c =
    guarded c (fun () ->
        Hashtbl.reset c.table;
        Queue.clear c.order)

  let length c = guarded c (fun () -> Hashtbl.length c.table)

  let find c id =
    guarded c (fun () -> Option.map fst (Hashtbl.find_opt c.table id))

  (* Returns the number of evicted entries (0 or 1). *)
  let add c id outcome deps =
    guarded c (fun () ->
        if Hashtbl.mem c.table id then 0
        else begin
          let evicted =
            if Hashtbl.length c.table >= c.capacity then begin
              (* Invalidation may have removed queued ids already; skip
                 those ghosts until a live victim falls out. *)
              let rec evict () =
                match Queue.take_opt c.order with
                | None -> 0
                | Some victim ->
                  if Hashtbl.mem c.table victim then begin
                    Hashtbl.remove c.table victim;
                    1
                  end
                  else evict ()
              in
              evict ()
            end
            else 0
          in
          Hashtbl.add c.table id (outcome, deps);
          Queue.add id c.order;
          evicted
        end)

  (* Drop every entry that read the mutated (store, key) slice; ids
     linger in [order] and are skipped at eviction time. *)
  let invalidate_static c ~sid ~key =
    guarded c (fun () ->
        let victims =
          Hashtbl.fold
            (fun id (_, deps) acc ->
              if
                List.exists
                  (fun (sid', k) -> sid' = sid && B.equal k key)
                  deps
              then id :: acc
              else acc)
            c.table []
        in
        List.iter (Hashtbl.remove c.table) victims;
        let n = List.length victims in
        c.invalidated <- c.invalidated + n;
        n)

  let invalidations c = guarded c (fun () -> c.invalidated)
end

(* One shared cache: identical composite conditions recur across the
   crash-freedom, instruction-bound and reachability passes over the
   same pipeline, so sharing pays across properties. *)
let shared_cache = Cache.create ()

let validate_model conj m =
  if not (Eval.eval_bool m conj) then
    failwith
      (Printf.sprintf "Solver: extracted model fails to satisfy %s"
         (Term.to_string conj))

(* {1 Core solving}

   [sts] is the list of stats records to charge (the aggregate plus,
   for context-based solving, the context's own record). *)

let tally sts f = locked (fun () -> List.iter f sts)

let finish sts (o : outcome) =
  (match o with
  | Sat _ -> tally sts (fun s -> s.sat_answers <- s.sat_answers + 1)
  | Unsat -> tally sts (fun s -> s.unsat_answers <- s.unsat_answers + 1)
  | Unknown -> tally sts (fun s -> s.unknown_answers <- s.unknown_answers + 1));
  o

let cache_store sts cache id outcome deps =
  match (cache, outcome) with
  | Some c, (Sat _ | Unsat) ->
    let evicted = Cache.add c id outcome deps in
    if evicted > 0 then
      tally sts (fun s -> s.cache_evictions <- s.cache_evictions + evicted)
  | _ -> ()

(* The shared front end: raw-level interval refutation, word-level
   preprocessing, constant folding, cache lookup, a second interval
   refutation on the residue, then [blast_and_solve] for the real
   work. The raw refutation comes first because it is a shallow scan
   and kills the large majority of Step-2 queries — preprocessing them
   would be pure overhead. [blast_and_solve] receives the preprocessed
   conjuncts and returns a model of the *preprocessed* formula; the
   front end completes it with the eliminated variables' bindings and
   re-validates against the original conjunction, so neither a
   preprocessing nor a blasting bug can produce a bogus
   counterexample. *)
let check_conj sts ?cache ?(deps = []) ?(on_pre = fun _ -> ()) ~preprocess
    terms ~blast_and_solve =
  tally sts (fun s -> s.calls <- s.calls + 1);
  let raw = Term.and_ terms in
  if Term.is_false raw then begin
    tally sts (fun s -> s.folded <- s.folded + 1);
    finish sts Unsat
  end
  else if Interval.refute raw then begin
    tally sts (fun s -> s.interval_refutations <- s.interval_refutations + 1);
    finish sts Unsat
  end
  else
  let t0 = now () in
  let pre = if preprocess then Preprocess.run terms else Preprocess.identity terms in
  tally sts (fun s ->
      s.preprocess_time <- s.preprocess_time +. (now () -. t0);
      s.eliminated_conjuncts <- s.eliminated_conjuncts + pre.Preprocess.eliminated;
      s.sliced_conjuncts <- s.sliced_conjuncts + pre.Preprocess.sliced);
  on_pre pre;
  let key = pre.Preprocess.key in
  let accept m =
    let m = Preprocess.complete pre m in
    validate_model (Term.and_ terms) m;
    Sat m
  in
  if Term.is_true key then begin
    tally sts (fun s -> s.folded <- s.folded + 1);
    finish sts (accept (Model.create ()))
  end
  else if Term.is_false key then begin
    tally sts (fun s -> s.folded <- s.folded + 1);
    finish sts Unsat
  end
  else
    match Option.bind cache (fun c -> Cache.find c key.Term.id) with
    | Some o ->
      tally sts (fun s -> s.cache_hits <- s.cache_hits + 1);
      finish sts (match o with Sat m -> accept m | o -> o)
    | None ->
      if cache <> None then
        tally sts (fun s -> s.cache_misses <- s.cache_misses + 1);
      if key != raw && Interval.refute key then begin
        tally sts (fun s ->
            s.interval_refutations <- s.interval_refutations + 1);
        cache_store sts cache key.Term.id Unsat deps;
        finish sts Unsat
      end
      else begin
        let o = blast_and_solve pre in
        cache_store sts cache key.Term.id o deps;
        finish sts (match o with Sat m -> accept m | o -> o)
      end

(* Charge blast/solve phase timings and CNF growth to [sts]. *)
let instrumented sts bb ~blast ~solve =
  let sat = Bitblast.sat bb in
  let v0 = Sat.num_vars sat and c0 = Sat.num_problem_clauses sat in
  let gh0 = Bitblast.gate_hits bb and gm0 = Bitblast.gate_misses bb in
  let ld0 = Sat.num_learned_deleted sat in
  let t0 = now () in
  blast ();
  let t1 = now () in
  let r = solve () in
  let t2 = now () in
  tally sts (fun s ->
      s.blast_time <- s.blast_time +. (t1 -. t0);
      s.sat_time <- s.sat_time +. (t2 -. t1);
      s.sat_vars <- s.sat_vars + (Sat.num_vars sat - v0);
      s.sat_clauses <- s.sat_clauses + (Sat.num_problem_clauses sat - c0);
      s.gate_hits <- s.gate_hits + (Bitblast.gate_hits bb - gh0);
      s.gate_misses <- s.gate_misses + (Bitblast.gate_misses bb - gm0);
      s.learned_deleted <-
        s.learned_deleted + (Sat.num_learned_deleted sat - ld0));
  r

let check ?(max_conflicts = max_int) ?cache ?deps ?(preprocess = true) terms =
  check_conj [ stats ] ?cache ?deps ~preprocess terms ~blast_and_solve:(fun pre ->
      let bb = Bitblast.create () in
      let r =
        instrumented [ stats ] bb
          ~blast:(fun () ->
            List.iter (Bitblast.assert_term bb) pre.Preprocess.conjuncts)
          ~solve:(fun () -> Sat.solve ~max_conflicts (Bitblast.sat bb))
      in
      match r with
      | Sat.Sat -> Sat (Bitblast.extract_model bb)
      | Sat.Unsat -> Unsat
      | Sat.Unknown -> Unknown)

let check_term ?max_conflicts t = check ?max_conflicts [ t ]

let is_sat ?max_conflicts terms =
  match check ?max_conflicts terms with
  | Sat _ | Unknown -> true
  | Unsat -> false

let is_unsat ?max_conflicts terms =
  match check ?max_conflicts terms with
  | Unsat -> true
  | Sat _ | Unknown -> false

(* {1 Incremental contexts}

   A context keeps one bit-blaster (so the term DAG — and, with
   structural hashing, every distinct gate — is encoded once no matter
   how many checks see it) and a stack of scopes holding plain term
   lists. Each check preprocesses the live conjunction, then asserts
   the residual conjuncts under one fresh throwaway selector literal
   and solves with that single assumption; afterwards the selector is
   permanently negated, so the check's root clauses become satisfied at
   level 0 and are periodically swept out by [Sat.simplify]. Learned
   clauses, variable activities, gate encodings and the blasted term
   DAG all persist across checks, which is what makes sibling composite
   paths (sharing long constraint prefixes) cheap to check in
   sequence — while each individual check only pays for its own
   preprocessed (smaller) formula. *)

type scope = { mutable asserted : Term.t list (* newest first *) }

type ctx = {
  bb : Bitblast.ctx;
  mutable scopes : scope list;  (* innermost first; never empty *)
  cstats : stats;
  cache : Cache.t option;
  preprocess : bool;
  track_core : bool;
  mutable checks : int;  (* solved (non-cached) checks, for simplify cadence *)
  (* Residue of the last [check_ctx], for certificate producers: the
     preprocessing result (so the certifier shares the exact
     preprocessed key the query cache and proof cache use) and, when
     [track_core] and the answer was [Unsat], the unsat core — the
     subset of residual conjuncts inside the SAT solver's dependency
     cone. Both are [None] when the check exited before that stage. *)
  mutable last_pre : Preprocess.result option;
  mutable last_core : Term.t list option;
}

let create_ctx ?cache ?(preprocess = true) ?(track_core = false) () =
  {
    bb = Bitblast.create ~track:track_core ();
    scopes = [ { asserted = [] } ];
    cstats = fresh_stats ();
    cache;
    preprocess;
    track_core;
    checks = 0;
    last_pre = None;
    last_core = None;
  }

let ctx_stats ctx = ctx.cstats
let depth ctx = List.length ctx.scopes - 1

let push ctx = ctx.scopes <- { asserted = [] } :: ctx.scopes

let pop ctx =
  match ctx.scopes with
  | [] | [ _ ] -> invalid_arg "Solver.pop: no scope to pop"
  | _ :: rest -> ctx.scopes <- rest

let assert_terms ctx terms =
  match ctx.scopes with
  | [] -> assert false
  | sc :: _ ->
    List.iter
      (fun t -> if not (Term.is_true t) then sc.asserted <- t :: sc.asserted)
      terms

let assert_term ctx t = assert_terms ctx [ t ]

let asserted ctx = List.concat_map (fun sc -> sc.asserted) ctx.scopes

let last_pre ctx = ctx.last_pre
let last_core ctx = ctx.last_core

let check_ctx ?(max_conflicts = max_int) ?deps ctx =
  let sts = [ stats; ctx.cstats ] in
  ctx.last_pre <- None;
  ctx.last_core <- None;
  check_conj sts ?cache:ctx.cache ?deps ~preprocess:ctx.preprocess
    ~on_pre:(fun pre -> ctx.last_pre <- Some pre)
    (asserted ctx)
    ~blast_and_solve:(fun pre ->
      let sat = Bitblast.sat ctx.bb in
      ctx.checks <- ctx.checks + 1;
      if ctx.checks land 63 = 0 then Sat.simplify sat;
      let selector = Bitblast.fresh ctx.bb in
      let r =
        instrumented sts ctx.bb
          ~blast:(fun () ->
            if ctx.track_core then
              (* Tag each residual conjunct's root clause with its index
                 so an Unsat's dependency cone maps back to a core. *)
              List.iteri
                (fun i t -> Bitblast.assert_under ~tag:i ctx.bb ~selector t)
                pre.Preprocess.conjuncts
            else
              List.iter
                (fun t -> Bitblast.assert_under ctx.bb ~selector t)
              pre.Preprocess.conjuncts)
          ~solve:(fun () ->
            Sat.solve ~max_conflicts ~assumptions:[ selector ] sat)
      in
      (* Extract before retiring: adding the unit clause backtracks to
         level 0 and wipes the satisfying trail. *)
      let outcome =
        match r with
        | Sat.Sat -> Sat (Bitblast.extract_model ctx.bb)
        | Sat.Unsat ->
          if ctx.track_core then begin
            (* Read the cone before the selector-retiring [add_clause]
               below touches the solver. Old checks' clauses are
               level-0-satisfied by their retired selectors, so the
               cone's tags all index into {e this} check's conjuncts. *)
            let arr = Array.of_list pre.Preprocess.conjuncts in
            let core =
              List.filter_map
                (fun i ->
                  if i >= 0 && i < Array.length arr then Some arr.(i)
                  else None)
                (Sat.last_cone_tags sat)
            in
            ctx.last_core <- Some core
          end;
          Unsat
        | Sat.Unknown -> Unknown
      in
      (* Permanently retire the selector: this check's root clauses
         become satisfied at level 0 and never burden the search again. *)
      Sat.add_clause sat [ Sat.lit_not selector ];
      outcome)

let pp_outcome fmt = function
  | Sat m -> Format.fprintf fmt "sat@ %a" Model.pp m
  | Unsat -> Format.pp_print_string fmt "unsat"
  | Unknown -> Format.pp_print_string fmt "unknown"
