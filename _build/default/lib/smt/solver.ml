type outcome =
  | Sat of Model.t
  | Unsat
  | Unknown

type stats = {
  mutable calls : int;
  mutable sat_answers : int;
  mutable unsat_answers : int;
  mutable unknown_answers : int;
  mutable interval_refutations : int;
  mutable folded : int;
}

let stats =
  {
    calls = 0;
    sat_answers = 0;
    unsat_answers = 0;
    unknown_answers = 0;
    interval_refutations = 0;
    folded = 0;
  }

let reset_stats () =
  stats.calls <- 0;
  stats.sat_answers <- 0;
  stats.unsat_answers <- 0;
  stats.unknown_answers <- 0;
  stats.interval_refutations <- 0;
  stats.folded <- 0

let validate_model conj m =
  if not (Eval.eval_bool m conj) then
    failwith
      (Printf.sprintf "Solver: extracted model fails to satisfy %s"
         (Term.to_string conj))

let check ?(max_conflicts = max_int) terms =
  stats.calls <- stats.calls + 1;
  let conj = Term.and_ terms in
  if Term.is_true conj then begin
    stats.folded <- stats.folded + 1;
    stats.sat_answers <- stats.sat_answers + 1;
    Sat (Model.create ())
  end
  else if Term.is_false conj then begin
    stats.folded <- stats.folded + 1;
    stats.unsat_answers <- stats.unsat_answers + 1;
    Unsat
  end
  else if Interval.refute conj then begin
    stats.interval_refutations <- stats.interval_refutations + 1;
    stats.unsat_answers <- stats.unsat_answers + 1;
    Unsat
  end
  else begin
    let ctx = Bitblast.create () in
    Bitblast.assert_term ctx conj;
    match Sat.solve ~max_conflicts (Bitblast.sat ctx) with
    | Sat.Sat ->
      let m = Bitblast.extract_model ctx in
      validate_model conj m;
      stats.sat_answers <- stats.sat_answers + 1;
      Sat m
    | Sat.Unsat ->
      stats.unsat_answers <- stats.unsat_answers + 1;
      Unsat
    | Sat.Unknown ->
      stats.unknown_answers <- stats.unknown_answers + 1;
      Unknown
  end

let check_term ?max_conflicts t = check ?max_conflicts [ t ]

let is_sat ?max_conflicts terms =
  match check ?max_conflicts terms with
  | Sat _ | Unknown -> true
  | Unsat -> false

let is_unsat ?max_conflicts terms =
  match check ?max_conflicts terms with
  | Unsat -> true
  | Sat _ | Unknown -> false

let pp_outcome fmt = function
  | Sat m -> Format.fprintf fmt "sat@ %a" Model.pp m
  | Unsat -> Format.pp_print_string fmt "unsat"
  | Unknown -> Format.pp_print_string fmt "unknown"
