(** Parser for the Click-like configuration language.

    Supported syntax (a practical subset of Click's):

    {v
    // comment
    cl :: Classifier(12/0800, -);
    chk :: CheckIPHeader;
    cl[0] -> Strip(14) -> chk;
    chk[1] -> Discard;
    v}

    Declarations introduce named elements; connection chains wire output
    port [p] of the left element to input port [q] of the right one
    ([p]/[q] default to 0). Anonymous elements may be declared inline in
    a chain, as in Click. The first declared element is the pipeline
    entry unless an [input] name exists.

    Two quality-of-life extensions over the original subset:

    - [//] line comments are stripped everywhere, including inside
      parenthesised element configs.
    - Named sub-sections group statements: [acl { f :: IPFilter(...); }]
      declares [acl.f], referencable from outside the braces as
      [acl.f]. Inside a section, short names resolve locally first.

    Fabric descriptions use a top-level [topology { ... }] section (see
    {!parse_source}): named [pipeline name { ... }] sub-sections plus
    link, ingress/egress naming and relational property statements,
    consumed by [Vdp_topo.Fabric]. *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

type token =
  | Ident of string
  | Coloncolon
  | Arrow
  | Lbracket
  | Rbracket
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Eq
  | Dot
  | Semi
  | Int of int
  | Config_blob of string  (** raw text inside parentheses *)

(* Tokenises everything except parenthesised configs, which are kept as
   raw blobs because Click configs have their own per-element syntax.
   [//] comments are stripped even inside blobs (no element config uses
   a double slash; single slashes, as in [12/0800], are untouched). *)
let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let i = ref 0 in
  let push t = tokens := t :: !tokens in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = ':' && !i + 1 < n && src.[!i + 1] = ':' then begin
      push Coloncolon;
      i := !i + 2
    end
    else if c = '-' && !i + 1 < n && src.[!i + 1] = '>' then begin
      push Arrow;
      i := !i + 2
    end
    else if c = '[' then (push Lbracket; incr i)
    else if c = ']' then (push Rbracket; incr i)
    else if c = '{' then (push Lbrace; incr i)
    else if c = '}' then (push Rbrace; incr i)
    else if c = '=' then (push Eq; incr i)
    else if c = '.' then (push Dot; incr i)
    else if c = ';' then (push Semi; incr i)
    else if c = '(' then begin
      (* Raw blob until the matching close paren, comments stripped. *)
      let depth = ref 1 in
      let buf = Buffer.create 32 in
      incr i;
      while !i < n && !depth > 0 do
        let c = src.[!i] in
        if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then
          while !i < n && src.[!i] <> '\n' do incr i done
        else begin
          (match c with
          | '(' -> incr depth
          | ')' -> decr depth
          | _ -> ());
          if !depth > 0 then Buffer.add_char buf c;
          incr i
        end
      done;
      if !depth > 0 then fail "unbalanced parenthesis";
      push (Config_blob (Buffer.contents buf))
    end
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      while !i < n && src.[!i] >= '0' && src.[!i] <= '9' do incr i done;
      push (Int (int_of_string (String.sub src start (!i - start))))
    end
    else if
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
    then begin
      let start = !i in
      while
        !i < n
        && (let c = src.[!i] in
            (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
            || (c >= '0' && c <= '9') || c = '_')
      do
        incr i
      done;
      push (Ident (String.sub src start (!i - start)))
    end
    else fail "unexpected character %c" c
  done;
  List.rev !tokens

(* Split a config blob on top-level commas. *)
let split_config blob =
  let blob = String.trim blob in
  if blob = "" then []
  else begin
    let parts = ref [] and buf = Buffer.create 16 and depth = ref 0 in
    String.iter
      (fun c ->
        match c with
        | '(' ->
          incr depth;
          Buffer.add_char buf c
        | ')' ->
          decr depth;
          Buffer.add_char buf c
        | ',' when !depth = 0 ->
          parts := Buffer.contents buf :: !parts;
          Buffer.clear buf
        | _ -> Buffer.add_char buf c)
      blob;
    parts := Buffer.contents buf :: !parts;
    List.rev_map String.trim !parts
  end

(* {1 Fabric descriptions} *)

(** A pipeline output port: either egress point [port] of the pipeline
    ([ref_element = None]; egress points are numbered in (node, port)
    order as in {!Pipeline.egress_points}), or the unwired output [port]
    of the named element. *)
type port_ref = {
  ref_pipeline : string;
  ref_element : string option;
  ref_port : int;
}

(** Declared relational properties over fabric ingress/egress names:
    [Reach (a, b)] — some packet injected at ingress [a] reaches egress
    [b]; [Isolate (a, b)] — no packet (sequence) from [a] ever reaches
    [b]; [Temporal (a, b)] — [b] is unreachable from [a] cold, but
    reachable after one priming packet (the NAT'd-flows-answered-only-
    after-an-outbound-packet property). *)
type topo_prop =
  | Reach of string * string
  | Isolate of string * string
  | Temporal of string * string

type topo = {
  topo_pipelines : (string * Pipeline.t) list;  (** declaration order *)
  topo_links : (port_ref * string * int) list;
      (** source output -> (destination pipeline, entry in-port) *)
  topo_ingresses : (string * string * int) list;
      (** fabric ingress: (name, pipeline, entry in-port) *)
  topo_egresses : (string * port_ref) list;  (** named fabric egresses *)
  topo_props : topo_prop list;
}

type source = Single of Pipeline.t | Fabric of topo

(* {1 Parsing} *)

type endpoint = { el : int; port : int option }

(* Mutable token cursor shared by the statement and topology parsers. *)
type cursor = { mutable toks : token list }

let peek cur = match cur.toks with [] -> None | t :: _ -> Some t

let advance cur =
  match cur.toks with
  | [] -> fail "unexpected end of input"
  | t :: rest ->
    cur.toks <- rest;
    t

let expect cur t what =
  let got = advance cur in
  if got <> t then fail "expected %s" what

let ident cur what =
  match advance cur with Ident s -> s | _ -> fail "expected %s" what

(* Parse element declarations and connection chains until [stop] (EOF
   for a whole file, the closing brace of a sub-section) and build the
   pipeline. Sub-sections [name { ... }] recurse with [name.] prefixed
   to every declaration; references inside a section resolve the local
   (prefixed) name first, then fall back to the name as written. *)
let parse_pipeline_body cur ~stop =
  let decls : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let elements = ref [] (* reversed (name, cls, config) *) in
  let nelements = ref 0 in
  let edges = ref [] in
  let anon_counter = ref 0 in
  let declare name cls config =
    if Hashtbl.mem decls name then fail "duplicate element name %s" name;
    let idx = !nelements in
    Hashtbl.add decls name idx;
    elements := (name, cls, config) :: !elements;
    incr nelements;
    idx
  in
  let is_class_name s = s <> "" && s.[0] >= 'A' && s.[0] <= 'Z' in
  (* A possibly dotted element name, as written: [a] or [sec.a]. *)
  let dotted first =
    let parts = ref [ first ] in
    let rec go () =
      match peek cur with
      | Some Dot ->
        ignore (advance cur);
        parts := ident cur "name after ." :: !parts;
        go ()
      | _ -> ()
    in
    go ();
    String.concat "." (List.rev !parts)
  in
  let resolve ~prefix name =
    match Hashtbl.find_opt decls (prefix ^ name) with
    | Some idx -> Some idx
    | None -> Hashtbl.find_opt decls name
  in
  (* One element reference inside a chain: a declared name (local names
     shadow outer ones) or an inline anonymous declaration
     Class(config). *)
  let element_ref ~prefix first =
    if is_class_name first then begin
      let config =
        match peek cur with
        | Some (Config_blob blob) ->
          ignore (advance cur);
          split_config blob
        | _ -> []
      in
      incr anon_counter;
      declare (Printf.sprintf "%s%s@%d" prefix first !anon_counter) first
        config
    end
    else
      let name = dotted first in
      match resolve ~prefix name with
      | Some idx -> idx
      | None -> fail "undeclared element %s" name
  in
  let opt_port () =
    match peek cur with
    | Some Lbracket ->
      ignore (advance cur);
      let p =
        match advance cur with
        | Int p -> p
        | _ -> fail "expected port number"
      in
      expect cur Rbracket "]";
      Some p
    | _ -> None
  in
  let rec statement ~prefix =
    match peek cur with
    | None ->
      if stop = Some Rbrace then fail "unterminated section (missing })"
    | Some Rbrace when stop = Some Rbrace && prefix = "" ->
      ignore (advance cur)
    | Some Rbrace when prefix <> "" ->
      (* closes the innermost sub-section; handled by the caller *)
      ()
    | Some Semi ->
      ignore (advance cur);
      statement ~prefix
    | Some (Ident first) -> (
      ignore (advance cur);
      match peek cur with
      | Some Coloncolon ->
        (* name :: Class(config) ; *)
        ignore (advance cur);
        let cls =
          match advance cur with
          | Ident c -> c
          | _ -> fail "expected class name after ::"
        in
        let config =
          match peek cur with
          | Some (Config_blob blob) ->
            ignore (advance cur);
            split_config blob
          | _ -> []
        in
        ignore (declare (prefix ^ first) cls config);
        expect cur Semi ";";
        statement ~prefix
      | Some Lbrace when not (is_class_name first) ->
        (* Named sub-section: [first { statements }]. *)
        ignore (advance cur);
        statement ~prefix:(prefix ^ first ^ ".");
        expect cur Rbrace "}";
        statement ~prefix
      | _ ->
        (* A connection chain starting with [first]. *)
        let src = element_ref ~prefix first in
        chain ~prefix { el = src; port = opt_port () };
        statement ~prefix)
    | Some _ -> fail "expected element name or declaration"
  and chain ~prefix (src : endpoint) =
    match peek cur with
    | Some Arrow ->
      ignore (advance cur);
      let dport = opt_port () in
      let dst_ident =
        match advance cur with
        | Ident id -> id
        | _ -> fail "expected element after ->"
      in
      let dst = element_ref ~prefix dst_ident in
      let sport_next = opt_port () in
      edges :=
        (src.el, Option.value ~default:0 src.port, dst,
         Option.value ~default:0 dport)
        :: !edges;
      chain ~prefix { el = dst; port = sport_next }
    | Some Semi ->
      ignore (advance cur)
    | None -> ()
    | Some Rbrace -> ()
    | Some _ -> fail "expected -> or ; in chain"
  in
  statement ~prefix:"";
  if !nelements = 0 then fail "empty pipeline";
  let elements =
    List.rev_map
      (fun (name, cls, config) -> Registry.make ~name ~cls ~config)
      !elements
  in
  let entry =
    match Hashtbl.find_opt decls "input" with Some i -> i | None -> 0
  in
  Pipeline.validate (Pipeline.create ~entry elements (List.rev !edges))

(* {2 Topology sections} *)

(* [pipe[port]] or [pipe.element[port]]. *)
let parse_port_ref cur first =
  let ref_element, ref_port =
    match peek cur with
    | Some Dot ->
      ignore (advance cur);
      let el = ident cur "element name after ." in
      expect cur Lbracket "[";
      let p = match advance cur with
        | Int p -> p
        | _ -> fail "expected port number"
      in
      expect cur Rbracket "]";
      (Some el, p)
    | Some Lbracket ->
      ignore (advance cur);
      let p = match advance cur with
        | Int p -> p
        | _ -> fail "expected port number"
      in
      expect cur Rbracket "]";
      (None, p)
    | _ -> (None, 0)
  in
  { ref_pipeline = first; ref_element; ref_port }

let parse_topology cur =
  expect cur Lbrace "{ after topology";
  let pipelines = ref [] in
  let links = ref [] in
  let ingresses = ref [] in
  let egresses = ref [] in
  let props = ref [] in
  let prop_pair () =
    let a = ident cur "ingress name" in
    expect cur Arrow "->";
    let b = ident cur "egress name" in
    expect cur Semi ";";
    (a, b)
  in
  let rec stmt () =
    match peek cur with
    | None -> fail "unterminated topology section (missing })"
    | Some Rbrace -> ignore (advance cur)
    | Some Semi ->
      ignore (advance cur);
      stmt ()
    | Some (Ident "pipeline") ->
      ignore (advance cur);
      let name = ident cur "pipeline name" in
      if List.mem_assoc name !pipelines then
        fail "duplicate pipeline name %s" name;
      expect cur Lbrace "{ after pipeline name";
      let pl = parse_pipeline_body cur ~stop:(Some Rbrace) in
      pipelines := (name, pl) :: !pipelines;
      stmt ()
    | Some (Ident "ingress") ->
      ignore (advance cur);
      let name = ident cur "ingress name" in
      expect cur Eq "=";
      let pipe = ident cur "pipeline name" in
      let port =
        match peek cur with
        | Some Lbracket ->
          ignore (advance cur);
          let p = match advance cur with
            | Int p -> p
            | _ -> fail "expected port number"
          in
          expect cur Rbracket "]";
          p
        | _ -> 0
      in
      expect cur Semi ";";
      ingresses := (name, pipe, port) :: !ingresses;
      stmt ()
    | Some (Ident "egress") ->
      ignore (advance cur);
      let name = ident cur "egress name" in
      expect cur Eq "=";
      let first = ident cur "pipeline name" in
      let r = parse_port_ref cur first in
      expect cur Semi ";";
      egresses := (name, r) :: !egresses;
      stmt ()
    | Some (Ident "reach") ->
      ignore (advance cur);
      let a, b = prop_pair () in
      props := Reach (a, b) :: !props;
      stmt ()
    | Some (Ident "isolate") ->
      ignore (advance cur);
      let a, b = prop_pair () in
      props := Isolate (a, b) :: !props;
      stmt ()
    | Some (Ident "temporal") ->
      ignore (advance cur);
      let a, b = prop_pair () in
      props := Temporal (a, b) :: !props;
      stmt ()
    | Some (Ident first) ->
      (* Link: portref -> [dport] pipeline ; *)
      ignore (advance cur);
      let src = parse_port_ref cur first in
      expect cur Arrow "-> in link";
      let dport =
        match peek cur with
        | Some Lbracket ->
          ignore (advance cur);
          let p = match advance cur with
            | Int p -> p
            | _ -> fail "expected port number"
          in
          expect cur Rbracket "]";
          p
        | _ -> 0
      in
      let dst = ident cur "destination pipeline" in
      expect cur Semi ";";
      links := (src, dst, dport) :: !links;
      stmt ()
    | Some _ -> fail "expected a topology statement"
  in
  stmt ();
  (match peek cur with
  | None -> ()
  | Some _ -> fail "trailing input after topology section");
  {
    topo_pipelines = List.rev !pipelines;
    topo_links = List.rev !links;
    topo_ingresses = List.rev !ingresses;
    topo_egresses = List.rev !egresses;
    topo_props = List.rev !props;
  }

(** Parse a configuration that may be either a single pipeline or a
    [topology { ... }] fabric description. *)
let parse_source src =
  let cur = { toks = tokenize src } in
  match cur.toks with
  | Ident "topology" :: (Lbrace :: _ as rest) ->
    cur.toks <- rest;
    Fabric (parse_topology cur)
  | _ -> Single (parse_pipeline_body cur ~stop:None)

let parse src =
  match parse_source src with
  | Single pl -> pl
  | Fabric _ ->
    fail "this configuration declares a topology; use the fabric entry \
          points (vdpverify reach/isolate)"

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  src

let parse_file path = parse (read_file path)
let parse_source_file path = parse_source (read_file path)
