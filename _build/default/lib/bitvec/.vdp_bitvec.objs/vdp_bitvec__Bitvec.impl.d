lib/bitvec/bitvec.ml: Array Buffer Char Format Int64 Stdlib String Sys
