examples/nat_netflow.ml: Array Format List Option Printf Vdp_bitvec Vdp_click Vdp_ir Vdp_packet Vdp_smt Vdp_symbex Vdp_verif
