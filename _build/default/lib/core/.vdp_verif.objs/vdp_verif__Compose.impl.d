lib/core/compose.ml: Char Hashtbl List Printf String Vdp_bitvec Vdp_ir Vdp_packet Vdp_smt Vdp_symbex
