(** Packet-processing elements: a named, configured IR program.

    An element consumes one packet per invocation and either emits it on
    one of its output ports, drops it, or crashes (which is what the
    verifier rules out). Elements carry their own store declarations;
    the pipeline instantiates fresh store state per element instance, so
    no two elements can ever share mutable state. *)

type t = {
  name : string;         (** instance name, unique within a pipeline *)
  cls : string;          (** class name, e.g. "CheckIPHeader" *)
  config : string list;  (** configuration arguments as written *)
  program : Vdp_ir.Types.program;
}

let make ~name ~cls ~config program =
  let program = Vdp_ir.Validate.check_program program in
  { name; cls; config; program }

let nports e = e.program.Vdp_ir.Types.nports

(** Key used to share Step-1 summaries between identical elements: two
    instances of the same class with the same config have the same
    program, hence the same segments.

    Two refinements for production-scale mutable state: a giant config
    (e.g. a 1M-route FIB) is digested rather than concatenated, and an
    element owning [Static] stores gets their {!Vdp_ir.Static_data} ids
    appended — those contents can mutate independently per instance, so
    instances must not share summaries even when configs coincide. *)
let summary_key e =
  let cfg = String.concat "," e.config in
  let cfg =
    if String.length cfg > 160 then Digest.to_hex (Digest.string cfg) else cfg
  in
  let static_ids =
    List.filter_map
      (fun (d : Vdp_ir.Types.store_decl) ->
        match d.kind with
        | Vdp_ir.Types.Static ->
          Some (string_of_int (Vdp_ir.Static_data.id d.init))
        | Vdp_ir.Types.Private -> None)
      e.program.Vdp_ir.Types.stores
  in
  let sid =
    match static_ids with [] -> "" | l -> "#" ^ String.concat "," l
  in
  e.cls ^ "(" ^ cfg ^ ")" ^ sid

let pp fmt e =
  Format.fprintf fmt "%s :: %s(%s)" e.name e.cls (String.concat ", " e.config)
