lib/click/el_ip.ml: El_util Vdp_bitvec Vdp_ir
