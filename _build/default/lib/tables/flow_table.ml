(** Pre-allocated array-chain hash table — the paper's canonical
    "verifiable" stateful structure: all memory allocated up front,
    chains are array indices, every operation touches a statically
    bounded number of slots.

    Keys and values are OCaml ints here (the element-level view goes
    through IR key/value stores); this native version backs tests and
    runtime-only baselines. *)

type slot = {
  mutable occupied : bool;
  mutable key : int;
  mutable value : int;
  mutable next : int;  (** index into the overflow arena, or -1 *)
}

type t = {
  nbuckets : int;
  buckets : slot array;
  overflow : slot array;
  mutable free : int;  (** head of the overflow free list *)
  mutable count : int;
}

let fresh_slot () = { occupied = false; key = 0; value = 0; next = -1 }

let create ~buckets ~overflow =
  if buckets < 1 || overflow < 0 then invalid_arg "Flow_table.create";
  let t =
    {
      nbuckets = buckets;
      buckets = Array.init buckets (fun _ -> fresh_slot ());
      overflow = Array.init overflow (fun _ -> fresh_slot ());
      free = (if overflow = 0 then -1 else 0);
      count = 0;
    }
  in
  Array.iteri
    (fun i s -> s.next <- (if i + 1 < overflow then i + 1 else -1))
    t.overflow;
  t

(* Knuth multiplicative hashing; good enough and branch-free. *)
let hash t k = (k * 0x9e3779b1) land max_int mod t.nbuckets

let find t k =
  let b = t.buckets.(hash t k) in
  if b.occupied && b.key = k then Some b.value
  else begin
    let rec chase i =
      if i = -1 then None
      else
        let s = t.overflow.(i) in
        if s.occupied && s.key = k then Some s.value else chase s.next
    in
    if b.occupied then chase b.next else None
  end

exception Full

(** Insert or update. Raises {!Full} when the overflow arena is
    exhausted — the bounded-memory behaviour a verifiable dataplane
    must expose rather than allocate. *)
let set t k v =
  let b = t.buckets.(hash t k) in
  if not b.occupied then begin
    b.occupied <- true;
    b.key <- k;
    b.value <- v;
    b.next <- -1;
    t.count <- t.count + 1
  end
  else if b.key = k then b.value <- v
  else begin
    let rec chase i =
      let s = t.overflow.(i) in
      if s.occupied && s.key = k then s.value <- v
      else if s.next = -1 then begin
        (* Append a slot from the free list. *)
        if t.free = -1 then raise Full;
        let ni = t.free in
        let n = t.overflow.(ni) in
        t.free <- n.next;
        n.occupied <- true;
        n.key <- k;
        n.value <- v;
        n.next <- -1;
        s.next <- ni;
        t.count <- t.count + 1
      end
      else chase s.next
    in
    if b.next = -1 then begin
      if t.free = -1 then raise Full;
      let ni = t.free in
      let n = t.overflow.(ni) in
      t.free <- n.next;
      n.occupied <- true;
      n.key <- k;
      n.value <- v;
      n.next <- -1;
      b.next <- ni;
      t.count <- t.count + 1
    end
    else chase b.next
  end

let update t k f =
  let cur = find t k in
  set t k (f cur)

let remove t k =
  let b = t.buckets.(hash t k) in
  if b.occupied && b.key = k then begin
    (* Promote the first chained slot into the bucket, if any. *)
    (match b.next with
    | -1 -> b.occupied <- false
    | i ->
      let s = t.overflow.(i) in
      b.key <- s.key;
      b.value <- s.value;
      b.next <- s.next;
      s.occupied <- false;
      s.next <- t.free;
      t.free <- i);
    t.count <- t.count - 1
  end
  else if b.occupied then begin
    let rec chase prev i =
      if i <> -1 then begin
        let s = t.overflow.(i) in
        if s.occupied && s.key = k then begin
          (match prev with
          | None -> b.next <- s.next
          | Some p -> t.overflow.(p).next <- s.next);
          s.occupied <- false;
          s.next <- t.free;
          t.free <- i;
          t.count <- t.count - 1
        end
        else chase (Some i) s.next
      end
    in
    chase None b.next
  end

let count t = t.count

let fold f t init =
  let acc = ref init in
  let visit s = if s.occupied then acc := f s.key s.value !acc in
  Array.iter visit t.buckets;
  Array.iter visit t.overflow;
  !acc
