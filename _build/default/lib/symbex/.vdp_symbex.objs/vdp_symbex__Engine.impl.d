lib/symbex/engine.ml: Array Format Hashtbl List Loopinfo Printf Sstate Stdlib Vdp_bitvec Vdp_ir Vdp_packet Vdp_smt
