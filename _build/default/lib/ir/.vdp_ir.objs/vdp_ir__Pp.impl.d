lib/ir/pp.ml: Array Format List Types Vdp_bitvec
