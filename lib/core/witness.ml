(** Witness replay and the differential oracle.

    Step 2 ends with a solver model: an assignment to the input packet
    bytes, metadata and the values returned by key/value store reads
    along one composite path. This module closes the loop between that
    symbolic claim and the concrete runtime, in two directions:

    - {b Replay} ({!replay}): turn the model into a concrete input
      packet {e plus the initial private store state the path depends
      on}, run it on the real pipeline, and check that the claimed
      violation actually happens there — same crash site, same drop
      node, same egress, or an instruction count inside the claimed
      interval. A violation whose witness survives this is [Confirmed];
      otherwise the verdict carries the first hop where the concrete
      path diverged from the predicted one.

    - {b Differential} ({!check_packet}): drive an arbitrary concrete
      packet through the runtime and, in lockstep, through the Step-1
      summaries and Step-2 composition. At every hop exactly one
      segment must claim the observed input; its outcome, instruction
      count and packet transformation must agree with what the
      interpreter did, and the composed (renamed, substituted)
      constraints must stay true under the original input. Any
      disagreement is a bug in the engine, the composer or the
      interpreter — this is the randomized oracle the fuzzer in
      [test_replay] and [bench e8] run.

    Segments produced by loop summarisation mention havocked bytes and
    fresh loop state no concrete observation can pin down; their
    conditions are undecidable here. Such hops are matched {e
    approximately} (outcome + instruction interval) and counted in
    [approx]; everything else is matched exactly. *)

module B = Vdp_bitvec.Bitvec
module T = Vdp_smt.Term
module Model = Vdp_smt.Model
module Eval = Vdp_smt.Eval
module S = Vdp_symbex.Sstate
module Engine = Vdp_symbex.Engine
module Ir = Vdp_ir.Types
module Stores = Vdp_ir.Stores
module P = Vdp_packet.Packet
module Click = struct
  module Pipeline = Vdp_click.Pipeline
  module Element = Vdp_click.Element
  module Runtime = Vdp_click.Runtime
end

(* {1 Concretizing a Step-2 model} *)

let node_of_tag tag =
  if String.length tag > 1 && tag.[0] = 'n' then
    int_of_string_opt (String.sub tag 1 (String.length tag - 1))
  else None

let store_decl pl node name =
  let prog =
    (Click.Pipeline.node pl node).Click.Pipeline.element.Click.Element.program
  in
  List.find_opt (fun (d : Ir.store_decl) -> d.Ir.store_name = name)
    prog.Ir.stores

(** Initial private-store contents: [(node, store, [(key, value); ...])]. *)
type state_init = (int * string * (B.t * B.t) list) list

(** Walk the composite kv trace oldest-first under the model. The first
    read of a (node, store, key) that no earlier write covers pins that
    key's {e initial} value — exactly the state the violation needs to
    be reachable. Later reads and writes only evolve the simulated
    contents. Only private stores can be preloaded; a model that
    assumes static contents other than the declared ones is noted. *)
let state_of_model pl (model : Model.t) (st : Compose.t) :
    state_init * string list =
  let init : (int * string, (B.t, B.t) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let current : (int * string, (B.t, B.t) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let notes = ref [] in
  let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
  let tbl_of cache key =
    match Hashtbl.find_opt cache key with
    | Some t -> t
    | None ->
      let t = Hashtbl.create 8 in
      Hashtbl.add cache key t;
      t
  in
  List.iter
    (fun (tag, ev) ->
      match node_of_tag tag with
      | None -> ()
      | Some node -> (
        match ev with
        | S.Kv_write { store; key; value; cond } ->
          if Eval.eval_bool model cond then
            Hashtbl.replace
              (tbl_of current (node, store))
              (Eval.eval_bv model key) (Eval.eval_bv model value)
        | S.Kv_read { store; key; value; cond } ->
          if Eval.eval_bool model cond then begin
            let k = Eval.eval_bv model key in
            let v = Eval.eval_bv model value in
            let cur = tbl_of current (node, store) in
            match Hashtbl.find_opt cur k with
            | Some v' ->
              if not (B.equal v v') then
                note "model reads %s from node %d %s[%s] already holding %s"
                  (B.to_string_hex v) node store (B.to_string_hex k)
                  (B.to_string_hex v')
            | None -> (
              Hashtbl.replace cur k v;
              match store_decl pl node store with
              | Some d when d.Ir.kind = Ir.Private ->
                Hashtbl.replace (tbl_of init (node, store)) k v
              | Some d ->
                let actual =
                  match Vdp_ir.Static_data.find d.Ir.init k with
                  | Some v' -> v'
                  | None -> d.Ir.default
                in
                if not (B.equal actual v) then
                  note "model assumes static %s[%s] = %s at node %d, \
                        actual contents are %s"
                    store (B.to_string_hex k) (B.to_string_hex v) node
                    (B.to_string_hex actual)
              | None -> note "model reads undeclared store %s at node %d"
                          store node)
          end))
    (List.rev st.Compose.kv_trace);
  let state =
    Hashtbl.fold
      (fun (node, store) tbl acc ->
        (node, store, Hashtbl.fold (fun k v l -> (k, v) :: l) tbl []) :: acc)
      init []
  in
  (state, List.rev !notes)

let predicted_path (st : Compose.t) =
  List.filter_map node_of_tag (List.rev st.Compose.trail)

(* {1 Replaying a claimed violation} *)

type expect =
  | Crash_at of int
  | Drop_at of int
  | Egress_at of int
  | Instrs_between of int * int

type status = Confirmed | Unconfirmed of string

type t = {
  status : status;
  packet : P.t;         (** the concretized witness input *)
  state : state_init;   (** private store state loaded before the run *)
  run : Click.Runtime.run;
  predicted : int list; (** node path the composite state predicts *)
  notes : string list;
}

let expect_to_string = function
  | Crash_at n -> Printf.sprintf "crash at node %d" n
  | Drop_at n -> Printf.sprintf "drop at node %d" n
  | Egress_at e -> Printf.sprintf "egress %d" e
  | Instrs_between (lo, hi) ->
    if lo = hi then Printf.sprintf "exactly %d instructions" hi
    else Printf.sprintf "%d..%d instructions" lo hi

let final_to_string (run : Click.Runtime.run) =
  let base =
    match run.Click.Runtime.final with
    | Click.Runtime.Egress e -> Printf.sprintf "egress %d" e
    | Click.Runtime.Dropped_at n -> Printf.sprintf "drop at node %d" n
    | Click.Runtime.Crashed_at (n, c) ->
      Format.asprintf "crash at node %d (%a)" n Ir.pp_crash c
    | Click.Runtime.Hop_budget_at n ->
      Printf.sprintf "hop budget exceeded at node %d" n
  in
  Printf.sprintf "%s after %d instructions" base run.Click.Runtime.total_instrs

(* First hop at which the concrete node path left the predicted one.
   [predicted] pairs a pipeline label with each node; labels are [""]
   for single-pipeline replay, where messages keep the classic
   [node %d] form. Fabric replay passes per-pipeline labels and the
   divergence point reads [pipeline:element:hop]. *)
let divergence_steps predicted (steps : Click.Runtime.step list) =
  let pdesc (label, node) =
    if label = "" then Printf.sprintf "node %d" node
    else Printf.sprintf "%s:node %d" label node
  in
  let sdesc i (s : Click.Runtime.step) =
    if s.Click.Runtime.pipeline = "" then
      Printf.sprintf "node %d" s.Click.Runtime.node
    else
      Printf.sprintf "%s:%s:%d" s.Click.Runtime.pipeline
        s.Click.Runtime.element i
  in
  let rec go i ps ss =
    match (ps, ss) with
    | [], [] -> None
    | p :: _, [] ->
      Some (Printf.sprintf "diverged at hop %d: predicted %s but the \
                            run had already ended" i (pdesc p))
    | [], s :: _ ->
      Some (Printf.sprintf "diverged at hop %d: run continued to %s \
                            beyond the predicted path" i (sdesc i s))
    | ((plab, pn) as p) :: ps', s :: ss' ->
      if
        pn <> s.Click.Runtime.node
        || (plab <> "" && plab <> s.Click.Runtime.pipeline)
      then
        Some (Printf.sprintf "diverged at hop %d: predicted %s, \
                              runtime took %s" i (pdesc p) (sdesc i s))
      else go (i + 1) ps' ss'
  in
  go 0 predicted steps

let divergence predicted (run : Click.Runtime.run) =
  divergence_steps
    (List.map (fun n -> ("", n)) predicted)
    run.Click.Runtime.steps

(** Replay a Step-2 model on the concrete runtime: build the witness
    packet (unless the caller already did), derive and load the initial
    private state the path depends on, push, and compare the concrete
    end against the claim. *)
let replay ?packet ?engine ~max_len pl ~(model : Model.t) ~(st : Compose.t)
    ~expect =
  let packet =
    match packet with
    | Some p -> p
    | None -> Compose.witness_packet model ~max_len
  in
  let state, notes = state_of_model pl model st in
  let inst = Click.Runtime.instantiate ?engine pl in
  Click.Runtime.load_state inst state;
  let run =
    Click.Runtime.push ~in_port:packet.P.port inst (P.clone packet)
  in
  let predicted = predicted_path st in
  let ok =
    match (expect, run.Click.Runtime.final) with
    | Crash_at n, Click.Runtime.Crashed_at (n', _) -> n = n'
    | Drop_at n, Click.Runtime.Dropped_at n' -> n = n'
    | Egress_at e, Click.Runtime.Egress e' -> e = e'
    | Instrs_between (lo, hi), _ ->
      let m = run.Click.Runtime.total_instrs in
      lo <= m && m <= hi
    | _ -> false
  in
  let status =
    if ok then Confirmed
    else
      let base =
        Printf.sprintf "claimed %s, runtime did %s" (expect_to_string expect)
          (final_to_string run)
      in
      Unconfirmed
        (match divergence predicted run with
        | Some d -> base ^ "; " ^ d
        | None -> base)
  in
  { status; packet; state; run; predicted; notes }

let confirmed r = r.status = Confirmed

(* {1 The differential oracle} *)

type session = {
  pl : Click.Pipeline.t;
  summaries : Summaries.entry array;
  concrete : Click.Runtime.instance;
      (** the runtime under test; carries real store state *)
  mirror : Click.Runtime.instance;
      (** the predictor's view of store state {e before} the packet
          currently being checked (the concrete instance has already
          processed it when the walk runs) *)
  max_len : int;
  mutable packets : int;
  mutable hops : int;
  mutable approx_hops : int;
}

let create_session ?pool ?(config = Engine.default_config) ?engine pl =
  let summaries = Summaries.of_pipeline ?pool ~config pl in
  {
    pl;
    summaries;
    concrete = Click.Runtime.instantiate ?engine pl;
    mirror = Click.Runtime.instantiate pl;
    max_len = config.Engine.max_len;
    packets = 0;
    hops = 0;
    approx_hops = 0;
  }

(** Bind the symbolic input-window variables to one concrete packet:
    every reachable buffer byte (beyond-window bytes cannot influence a
    feasible path — the engine guards every access with a bounds check
    — but binding them keeps segment conditions total), the window
    length and all metadata. *)
let model_of_packet ~max_len (p : P.t) : Model.t =
  let m = Model.create () in
  let cap = Bytes.length p.P.buf - p.P.head in
  for j = 0 to max (cap - 1) (max_len - 1) do
    let b = if j < cap then Char.code (Bytes.get p.P.buf (p.P.head + j)) else 0 in
    Model.set_bv m (S.byte_var j) (B.of_int ~width:8 b)
  done;
  Model.set_bv m S.len_var (B.of_int ~width:16 p.P.len);
  List.iter
    (fun meta ->
      let v =
        match meta with
        | Ir.Port -> p.P.port
        | Ir.Color -> p.P.color
        | Ir.W0 -> p.P.w0
        | Ir.W1 -> p.P.w1
      in
      Model.set_bv m (S.meta_var meta) (B.of_int ~width:(Ir.meta_width meta) v))
    [ Ir.Port; Ir.Color; Ir.W0; Ir.W1 ];
  m

let meta_of_packet (p : P.t) = function
  | Ir.Port -> p.P.port
  | Ir.Color -> p.P.color
  | Ir.W0 -> p.P.w0
  | Ir.W1 -> p.P.w1

(* Evaluate the values this segment's kv reads would return against the
   mirror store, shadowed by the segment's own earlier writes, and bind
   them into [hop_model] so the segment's condition becomes decidable.
   Fresh-variable names are shared across segments exactly when the
   segments share the path prefix that performed the read, so bindings
   from rejected candidates never conflict with the accepted one. *)
let bind_kv_reads session node hop_model (seg : Engine.segment) =
  let overlay : (string * B.t, B.t) Hashtbl.t = Hashtbl.create 4 in
  let bindings = ref [] in
  let undecided = ref false in
  List.iter
    (fun ev ->
      match ev with
      | S.Kv_write { store; key; value; _ } -> (
        try
          let k = Eval.eval_bv_strict hop_model key in
          let v = Eval.eval_bv_strict hop_model value in
          Hashtbl.replace overlay (store, k) v
        with Eval.Unbound _ -> undecided := true)
      | S.Kv_read { store; key; value; _ } -> (
        try
          let k = Eval.eval_bv_strict hop_model key in
          let v =
            match Hashtbl.find_opt overlay (store, k) with
            | Some v -> v
            | None ->
              Stores.read session.mirror.Click.Runtime.stores.(node) store k
          in
          match value.T.node with
          | T.Bv_var (name, _) ->
            Model.set_bv hop_model name v;
            bindings := (name, v) :: !bindings
          | _ -> ()
        with Eval.Unbound _ -> undecided := true))
    seg.Engine.kv_log;
  (overlay, List.rev !bindings, !undecided)

(* Conjunct-wise tri-state evaluation: a single definitely-false
   conjunct decides the segment even if other conjuncts mention
   unobservable (havocked) state. *)
let tri_of_conds hop_model conds =
  List.fold_left
    (fun acc c ->
      match acc with
      | `F -> `F
      | _ -> (
        try if Eval.eval_bool_strict hop_model c then acc else `F
        with Eval.Unbound _ -> `U))
    `T conds

type diff_outcome = {
  d_run : Click.Runtime.run;
  d_hops : int;
  d_approx : int;  (** hops matched only via a summarized segment *)
}

(* Copy a node's private store contents from the concrete instance into
   the mirror. Needed after an approximate hop: a summarized segment's
   writes are havocked and cannot be applied to the mirror, so the
   mirror re-observes reality instead. Writes never delete keys, so
   overwriting entry-by-entry resynchronises exactly. *)
let resync_node session node =
  let prog =
    (Click.Pipeline.node session.pl node).Click.Pipeline.element
      .Click.Element.program
  in
  List.iter
    (fun (d : Ir.store_decl) ->
      if d.Ir.kind = Ir.Private then
        List.iter
          (fun (k, v) ->
            Stores.write
              session.mirror.Click.Runtime.stores.(node)
              d.Ir.store_name k v)
          (Stores.entries
             session.concrete.Click.Runtime.stores.(node)
             d.Ir.store_name))
    prog.Ir.stores

let resync_all session =
  Array.iteri
    (fun node _ -> resync_node session node)
    (Click.Pipeline.nodes session.pl)

(** Run one packet through the concrete pipeline and through the
    summaries in lockstep; [Error] describes the first disagreement.
    The session's stores evolve with the stream, so feeding a stateful
    pipeline a sequence of packets exercises state evolution too. *)
let check_packet (session : session) (pkt : P.t) :
    (diff_outcome, string) result =
  if P.length pkt > session.max_len then
    invalid_arg "Witness.check_packet: packet exceeds the engine's max_len";
  let nodes = Click.Pipeline.nodes session.pl in
  (* Concrete run first, snapshotting the packet after every element
     (before the output port is rewritten for the next hop). *)
  let snaps = ref [] in
  let input0 = P.clone pkt in
  let run =
    Click.Runtime.push ~in_port:pkt.P.port session.concrete (P.clone pkt)
      ~trace:(fun step p -> snaps := (step, P.clone p) :: !snaps)
  in
  let snaps = Array.of_list (List.rev !snaps) in
  let comp_model = model_of_packet ~max_len:session.max_len input0 in
  let comp_st = ref (Compose.initial ()) in
  let approx = ref 0 in
  let err = ref None in
  let fail node fmt =
    Printf.ksprintf
      (fun s ->
        if !err = None then
          err :=
            Some
              (Printf.sprintf "node %d (%s): %s" node
                 nodes.(node).Click.Pipeline.element.Click.Element.name s))
      fmt
  in
  let commit node overlay bindings (seg : Engine.segment) =
    Hashtbl.iter
      (fun (store, k) v ->
        match store_decl session.pl node store with
        | Some d when d.Ir.kind = Ir.Private ->
          Stores.write session.mirror.Click.Runtime.stores.(node) store k v
        | _ -> ())
      overlay;
    let tag = Printf.sprintf "n%d" node in
    List.iter
      (fun (name, v) -> Model.set_bv comp_model ("!" ^ tag ^ name) v)
      bindings;
    comp_st := Compose.apply !comp_st ~tag seg;
    (* The composed (renamed, substituted) constraints must stay true
       over the original input — this cross-checks Compose.import
       against the element-level match just made. *)
    List.iter
      (fun c ->
        match
          try Some (Eval.eval_bool_strict comp_model c)
          with Eval.Unbound _ -> None
        with
        | Some false ->
          fail node
            "composite constraint is false though the element-level \
             segment matched (composition bug)"
        | _ -> ())
      !comp_st.Compose.new_cond
  in
  (* Check the exact packet transformation an unsummarized emit claims. *)
  let check_out_state node hop_model (seg : Engine.segment)
      (step : Click.Runtime.step) (snap : P.t) =
    match step.Click.Runtime.outcome with
    | Ir.Emitted _ ->
      let out = seg.Engine.out_state in
      let eval_int term =
        try Some (B.to_int_trunc (Eval.eval_bv_strict hop_model term))
        with Eval.Unbound _ -> None
      in
      (match eval_int out.Engine.len_out with
      | Some l when l <> snap.P.len ->
        fail node "predicted output length %d, runtime produced %d" l
          snap.P.len
      | _ -> ());
      if out.Engine.havoc = None then
        List.iter
          (fun (off, term) ->
            if off >= 0 && off < snap.P.len then
              match eval_int term with
              | Some b when b land 0xff <> P.get_u8 snap off ->
                fail node
                  "predicted output byte [%d] = %#x, runtime wrote %#x" off
                  (b land 0xff) (P.get_u8 snap off)
              | _ -> ())
          out.Engine.writes;
      List.iter
        (fun (m, term) ->
          match eval_int term with
          | Some v when v <> meta_of_packet snap m ->
            fail node "predicted %s = %d, runtime has %d" (S.meta_var m) v
              (meta_of_packet snap m)
          | _ -> ())
        out.Engine.meta_out
    | _ -> ()
  in
  let input = ref input0 in
  Array.iteri
    (fun i (step, snap) ->
      if !err = None then begin
        let node = (step : Click.Runtime.step).Click.Runtime.node in
        let hop_model = model_of_packet ~max_len:session.max_len !input in
        let evaluated =
          List.map
            (fun (seg : Engine.segment) ->
              let overlay, bindings, kv_undecided =
                bind_kv_reads session node hop_model seg
              in
              let tri =
                match tri_of_conds hop_model seg.Engine.cond with
                | `F -> `F
                | t -> if kv_undecided then `U else t
              in
              (seg, overlay, bindings, tri))
            session.summaries.(node).Summaries.result.Engine.segments
        in
        let step_agrees (seg : Engine.segment) =
          Engine.outcome_matches seg.Engine.outcome
            step.Click.Runtime.outcome
          && seg.Engine.instr_lo <= step.Click.Runtime.instrs
          && step.Click.Runtime.instrs <= seg.Engine.instr_hi
        in
        (match List.filter (fun (_, _, _, t) -> t = `T) evaluated with
        | [ (seg, overlay, bindings, _) ] ->
          if not (step_agrees seg) then
            fail node
              "segment predicts %s in [%d, %d] instrs, runtime did %s in \
               %d (hop %d)"
              (Format.asprintf "%a" Engine.pp_outcome seg.Engine.outcome)
              seg.Engine.instr_lo seg.Engine.instr_hi
              (Format.asprintf "%a" Ir.pp_outcome step.Click.Runtime.outcome)
              step.Click.Runtime.instrs i
          else begin
            if not seg.Engine.summarized then
              check_out_state node hop_model seg step snap;
            commit node overlay bindings seg
          end
        | [] -> (
          (* No decidable match: fall back to summarized candidates that
             at least agree on what happened. *)
          match
            List.filter
              (fun (seg, _, _, t) -> t = `U && step_agrees seg)
              evaluated
          with
          | (seg, overlay, bindings, _) :: _ ->
            incr approx;
            commit node overlay bindings seg;
            (* The segment's own writes were havocked; re-observe the
               store state the concrete run left behind. *)
            resync_node session node
          | [] ->
            fail node
              "no segment matches the runtime step %s (%d instrs, hop %d)"
              (Format.asprintf "%a" Ir.pp_outcome step.Click.Runtime.outcome)
              step.Click.Runtime.instrs i)
        | _ :: _ :: _ as many ->
          fail node
            "%d segments all claim this input (hop %d) — summaries overlap"
            (List.length many) i);
        (* Next element's input: this snapshot, port rewritten the way
           the runtime does when following the edge. *)
        match step.Click.Runtime.outcome with
        | Ir.Emitted p -> (
          match nodes.(node).Click.Pipeline.outputs.(p) with
          | Some (_, dport) ->
            let q = P.clone snap in
            q.P.port <- dport;
            input := q
          | None -> ())
        | _ -> ()
      end)
    snaps;
  (* Whole-path checks: composed instruction interval and, for egressed
     packets, the composed output contents over the original input. *)
  if !err = None then begin
    let total = run.Click.Runtime.total_instrs in
    if
      total < !comp_st.Compose.instr_lo || total > !comp_st.Compose.instr_hi
    then
      err :=
        Some
          (Printf.sprintf
             "composite instruction interval [%d, %d] excludes the \
              runtime's %d"
             !comp_st.Compose.instr_lo !comp_st.Compose.instr_hi total);
    match run.Click.Runtime.final with
    | Click.Runtime.Egress _ when Array.length snaps > 0 && !err = None ->
      let _, last = snaps.(Array.length snaps - 1) in
      let eval_int term =
        try Some (B.to_int_trunc (Eval.eval_bv_strict comp_model term))
        with Eval.Unbound _ -> None
      in
      (match eval_int !comp_st.Compose.len with
      | Some l when l <> last.P.len ->
        err :=
          Some
            (Printf.sprintf
               "composite output length %d, runtime egressed %d bytes" l
               last.P.len)
      | _ -> ());
      for j = 0 to last.P.len - 1 do
        if !err = None then
          match eval_int (Compose.byte !comp_st j) with
          | Some b when b land 0xff <> P.get_u8 last j ->
            err :=
              Some
                (Printf.sprintf
                   "composite output byte [%d] = %#x, runtime egressed %#x"
                   j (b land 0xff) (P.get_u8 last j))
          | _ -> ()
      done;
      List.iter
        (fun (m, term) ->
          (* Port is rewritten by every edge the runtime follows, which
             the composite state does not model; the per-hop check
             already compared it at each element. *)
          if m <> Ir.Port && !err = None then
            match eval_int term with
            | Some v when v <> meta_of_packet last m ->
              err :=
                Some
                  (Printf.sprintf "composite %s = %d, runtime egressed %d"
                     (S.meta_var m) v (meta_of_packet last m))
            | _ -> ())
        !comp_st.Compose.meta
    | _ -> ()
  end;
  match !err with
  | Some msg ->
    (* Keep the session usable for subsequent packets. *)
    resync_all session;
    Error msg
  | None ->
    session.packets <- session.packets + 1;
    session.hops <- session.hops + Array.length snaps;
    session.approx_hops <- session.approx_hops + !approx;
    Ok { d_run = run; d_hops = Array.length snaps; d_approx = !approx }

(* {1 The randomized differential fuzzer} *)

(** A mixed workload: well-formed UDP/TCP flows, corrupted variants,
    IPv4-options frames and raw random garbage — the same blend of
    valid and hostile traffic the paper's properties quantify over. *)
let fuzz_workload ?(seed = 7) n =
  let module Gen = Vdp_packet.Gen in
  let st = Random.State.make [| seed |] in
  List.init n (fun i ->
      match i mod 5 with
      | 0 | 1 -> Gen.frame_of_flow (Gen.random_flow st)
      | 2 -> Gen.corrupt st (Gen.frame_of_flow (Gen.random_flow st))
      | 3 ->
        Gen.frame_with_options ~options:"\x07\x07\x04\x00\x00\x00\x00"
          (Gen.random_flow st)
      | _ -> Gen.random_frame ~min_len:1 ~max_len:96 st)

type fuzz_report = {
  f_packets : int;  (** packets driven through both sides *)
  f_hops : int;
  f_approx : int;   (** hops matched only via a summarized segment *)
  f_failures : (int * string) list;
      (** (packet index, disagreement) — any entry is a bug *)
}

(** Run the differential oracle over [count] fuzzed packets on a fresh
    session (stores evolve across the stream, so stateful elements see
    a history, not just single packets). *)
let differential ?pool ?config ?engine ?(seed = 7) ?(count = 500) pl =
  let session = create_session ?pool ?config ?engine pl in
  let failures = ref [] in
  List.iteri
    (fun i pkt ->
      match check_packet session pkt with
      | Ok _ -> ()
      | Error m -> failures := (i, m) :: !failures)
    (fuzz_workload ~seed count);
  {
    f_packets = count;
    f_hops = session.hops;
    f_approx = session.approx_hops;
    f_failures = List.rev !failures;
  }
