(** A fixed pool of worker domains with a helping, deadlock-free work
    queue and per-run scheduler statistics.

    [create n] spawns [n - 1] domains; the caller participates as the
    n-th runner whenever it waits inside {!await} or {!map}. A pool of
    size 1 spawns nothing: {!spawn} runs the thunk inline and {!map}
    degrades to [Array.map] — the sequential fast path costs one branch.

    The scheduling discipline is {e helping}: {!spawn} enqueues a task
    and returns a future immediately; {!await} runs queued tasks while
    the awaited future is still pending instead of blocking. Tasks may
    therefore freely spawn subtasks (and call {!map}) from inside a
    running task — the construction that deadlocked the previous
    barrier-style pool. Deadlock-freedom argument: a runner only blocks
    when the queue is empty and its awaited future is {e running} on
    another runner; wait-for edges follow the spawn tree strictly
    downward (a runner awaits only futures of tasks it transitively
    spawned, or helps unrelated queued work), so there is no cycle.

    Guarantees:
    - {e deterministic result ordering} — [map pool f xs] returns
      results positionally, exactly like [Array.map f xs];
    - {e exception propagation} — a task's exception is stored in its
      future and re-raised (with backtrace) at {!await}; [map] awaits
      every element and re-raises the exception of the smallest failing
      index, so no task is abandoned mid-flight;
    - spawning the pool enters {!Vdp_smt.Par} parallel mode (shared
      SMT state becomes lock-guarded) and {!shutdown} leaves it.

    Statistics: every executed task is timed and accounted under the
    pool lock — tasks spawned/executed, tasks {e stolen} (executed by a
    domain other than the spawner), cumulative busy and idle seconds
    across runners, and a log-scale task-duration histogram (<1ms,
    <10ms, <100ms, <1s, >=1s). {!stats} snapshots, {!reset_stats}
    zeroes between benchmark phases. *)

type 'a state = Pending | Done of 'a | Raised of exn * Printexc.raw_backtrace

type 'a future = { mutable st : 'a state; spawner : int (* domain id *) }

type task = Task : { fut : 'a future; run : unit -> 'a } -> task

type stats = {
  spawned : int;  (** tasks submitted via [spawn] (and [map]) *)
  executed : int;  (** tasks run to completion *)
  stolen : int;  (** executed by a domain other than the spawner *)
  busy_seconds : float;  (** cumulative task execution time *)
  idle_seconds : float;  (** cumulative runner time blocked waiting *)
  hist : int array;  (** task durations: <1ms, <10ms, <100ms, <1s, rest *)
}

type t = {
  mutable workers : unit Domain.t array;
  size : int;  (* total concurrent runners, including the caller *)
  queue : task Queue.t;
  lock : Mutex.t;
  wake : Condition.t;  (* new task or completed future *)
  mutable closed : bool;
  (* stats, all under [lock] *)
  mutable spawned : int;
  mutable executed : int;
  mutable stolen : int;
  mutable busy : float;
  mutable idle : float;
  hist : int array;
}

let size pool = pool.size

let stats pool =
  Mutex.lock pool.lock;
  let s =
    {
      spawned = pool.spawned;
      executed = pool.executed;
      stolen = pool.stolen;
      busy_seconds = pool.busy;
      idle_seconds = pool.idle;
      hist = Array.copy pool.hist;
    }
  in
  Mutex.unlock pool.lock;
  s

let reset_stats pool =
  Mutex.lock pool.lock;
  pool.spawned <- 0;
  pool.executed <- 0;
  pool.stolen <- 0;
  pool.busy <- 0.;
  pool.idle <- 0.;
  Array.fill pool.hist 0 (Array.length pool.hist) 0;
  Mutex.unlock pool.lock

let self_id () = (Domain.self () :> int)

let bucket dt =
  if dt < 0.001 then 0
  else if dt < 0.01 then 1
  else if dt < 0.1 then 2
  else if dt < 1.0 then 3
  else 4

(* Run one claimed task and publish its result. Called without the
   lock; takes it only to account stats and signal completion. *)
let run_task pool (Task { fut; run }) =
  let t0 = Unix.gettimeofday () in
  let outcome =
    match run () with
    | v -> Done v
    | exception e -> Raised (e, Printexc.get_raw_backtrace ())
  in
  let dt = Unix.gettimeofday () -. t0 in
  Mutex.lock pool.lock;
  fut.st <- outcome;
  pool.executed <- pool.executed + 1;
  if self_id () <> fut.spawner then pool.stolen <- pool.stolen + 1;
  pool.busy <- pool.busy +. dt;
  pool.hist.(bucket dt) <- pool.hist.(bucket dt) + 1;
  (* Broadcast: the awaiter of [fut] may be blocked, and distinct
     runners may await distinct futures. *)
  Condition.broadcast pool.wake;
  Mutex.unlock pool.lock

let rec worker_loop pool =
  Mutex.lock pool.lock;
  let rec claim () =
    match Queue.take_opt pool.queue with
    | Some task ->
      Mutex.unlock pool.lock;
      run_task pool task;
      worker_loop pool
    | None ->
      if pool.closed then Mutex.unlock pool.lock
      else begin
        let t0 = Unix.gettimeofday () in
        Condition.wait pool.wake pool.lock;
        pool.idle <- pool.idle +. (Unix.gettimeofday () -. t0);
        claim ()
      end
  in
  claim ()

let create n =
  let n = max 1 n in
  let pool =
    {
      workers = [||];
      size = n;
      queue = Queue.create ();
      lock = Mutex.create ();
      wake = Condition.create ();
      closed = false;
      spawned = 0;
      executed = 0;
      stolen = 0;
      busy = 0.;
      idle = 0.;
      hist = Array.make 5 0;
    }
  in
  if n > 1 then begin
    (* Flip the SMT substrate to locked mode {e before} any worker can
       intern a term or touch a shared cache. *)
    Vdp_smt.Par.enter ();
    pool.workers <-
      Array.init (n - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool))
  end;
  pool

let shutdown pool =
  if pool.size > 1 && not pool.closed then begin
    Mutex.lock pool.lock;
    pool.closed <- true;
    Condition.broadcast pool.wake;
    Mutex.unlock pool.lock;
    Array.iter Domain.join pool.workers;
    pool.workers <- [||];
    Vdp_smt.Par.leave ()
  end

let with_pool n f =
  let pool = create n in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let spawn pool f =
  if pool.size <= 1 then begin
    (* Sequential pool: run inline, still tracking task counts so
       callers can reason about granularity uniformly. *)
    let fut = { st = Pending; spawner = self_id () } in
    pool.spawned <- pool.spawned + 1;
    let t0 = Unix.gettimeofday () in
    (match f () with
    | v -> fut.st <- Done v
    | exception e -> fut.st <- Raised (e, Printexc.get_raw_backtrace ()));
    let dt = Unix.gettimeofday () -. t0 in
    pool.executed <- pool.executed + 1;
    pool.busy <- pool.busy +. dt;
    pool.hist.(bucket dt) <- pool.hist.(bucket dt) + 1;
    fut
  end
  else begin
    let fut = { st = Pending; spawner = self_id () } in
    Mutex.lock pool.lock;
    if pool.closed then begin
      Mutex.unlock pool.lock;
      invalid_arg "Pool.spawn: pool is shut down"
    end;
    Queue.add (Task { fut; run = f }) pool.queue;
    pool.spawned <- pool.spawned + 1;
    Condition.signal pool.wake;
    Mutex.unlock pool.lock;
    fut
  end

(* Help-first wait: while the future is pending, run queued tasks; only
   block when there is nothing to help with. *)
let await pool fut =
  let rec loop () =
    Mutex.lock pool.lock;
    match fut.st with
    | Done v ->
      Mutex.unlock pool.lock;
      v
    | Raised (e, bt) ->
      Mutex.unlock pool.lock;
      Printexc.raise_with_backtrace e bt
    | Pending -> (
      match Queue.take_opt pool.queue with
      | Some task ->
        Mutex.unlock pool.lock;
        run_task pool task;
        loop ()
      | None ->
        let t0 = Unix.gettimeofday () in
        Condition.wait pool.wake pool.lock;
        pool.idle <- pool.idle +. (Unix.gettimeofday () -. t0);
        Mutex.unlock pool.lock;
        loop ())
  in
  loop ()

(* Legacy fire-and-forget submission (no future). *)
let submit pool task = ignore (spawn pool task)

let map pool f xs =
  let n = Array.length xs in
  if pool.size <= 1 || n <= 1 then Array.map f xs
  else begin
    let futs = Array.map (fun x -> spawn pool (fun () -> f x)) xs in
    (* Await every element — even past a failure — so no task of this
       call is still running when we return; then re-raise the
       exception of the smallest failing index. *)
    let first_err = ref None in
    let results =
      Array.map
        (fun fut ->
          match await pool fut with
          | v -> Some v
          | exception e ->
            if !first_err = None then
              first_err := Some (e, Printexc.get_raw_backtrace ());
            None)
        futs
    in
    match !first_err with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
      Array.map (function Some r -> r | None -> assert false) results
  end

let map_list pool f xs = Array.to_list (map pool f (Array.of_list xs))
