(** Closure compilation of IR programs — the optional compiled fast path.

    [compile prog stores] lowers a validated program to a chain of OCaml
    closures {e once}, so the per-packet cost is a closure walk instead
    of re-matching [blocks]/[instrs] constructors on every packet. The
    result observes {e exactly} the semantics of {!Interp.run}: the same
    outcomes, the same crash taxonomy with byte-identical crash
    messages, and the same instruction counts (one per executed
    instruction, one per block terminator, with the budget checked at
    the same points). The differential oracle and the batch tests run
    both engines against each other to enforce this.

    Two tiers, chosen per program:

    - {e Native}: when every value in the program (register, constant,
      store key/value) fits in 61 bits, values live unboxed in an [int]
      array as masked unsigned words and all arithmetic is native.
      Static store contents are snapshotted into an int-keyed hash
      table at compile time (static stores cannot change, so the
      snapshot stays valid across [reset]/[load_state]). Packet bytes
      are accessed copy-free, straight out of the packet buffer after
      one window check — the same idiom as [Checksum.over_packet].

    - {e Boxed}: the fallback for wide values (e.g. 104-bit flow keys,
      64-bit counters, 8-byte loads). Registers are {!Bitvec.t} as in
      the interpreter, but operand dispatch, constants, store handles
      and block structure are still resolved at compile time.

    The returned function reuses one preallocated register file, so it
    is not re-entrant; the runtime drives packets sequentially. *)

module B = Vdp_bitvec.Bitvec
module P = Vdp_packet.Packet
open Types

let crash c = raise (Interp.Crash c)

(* {1 Tier selection} *)

(* 61 rather than 62/63 so that [1 lsl w], [x + y], [x - y] and the
   sign-extension constants below never touch the native-int sign bit:
   two masked 61-bit values sum to at most 2^62 - 2 = max_int - 1. *)
let max_native_width = 61

let native_eligible (prog : program) =
  let ok_w w = w >= 1 && w <= max_native_width in
  let ok_rv = function Const v -> ok_w (B.width v) | Reg _ -> true in
  let ok_rhs = function
    | Move v | Unop (_, v) | Zext (_, v) | Sext (_, v) | Extract (_, _, v)
      -> ok_rv v
    | Binop (_, a, b) | Cmp (_, a, b) | Concat (a, b) -> ok_rv a && ok_rv b
    | Select (c, a, b) -> ok_rv c && ok_rv a && ok_rv b
  in
  let ok_instr = function
    | Assign (_, rhs) -> ok_rhs rhs
    (* Load/Store byte counts are bounded by the (checked) register and
       value widths: 8n <= 61 forces n <= 7. *)
    | Load (_, off, _) -> ok_rv off
    | Store (off, v, _) -> ok_rv off && ok_rv v
    | Take v | Meta_set (_, v) -> ok_rv v
    | Kv_read (_, _, key) -> ok_rv key
    | Kv_write (_, key, v) -> ok_rv key && ok_rv v
    | Assert (c, _) -> ok_rv c
    | Load_len _ | Pull _ | Push _ | Meta_get _ -> true
  in
  let ok_block blk =
    List.for_all ok_instr blk.instrs
    && match blk.term with
       | Branch (c, _, _) -> ok_rv c
       | Goto _ | Emit _ | Drop | Abort _ -> true
  in
  Array.for_all ok_w prog.reg_widths
  && List.for_all (fun d -> ok_w d.key_width && ok_w d.val_width) prog.stores
  && Array.for_all ok_block prog.blocks

type tier = Native | Boxed

let tier prog = if native_eligible prog then Native else Boxed

let tier_name = function Native -> "native" | Boxed -> "boxed"

let store_decl prog name =
  (* Validation guarantees the declaration exists. *)
  List.find (fun d -> d.store_name = name) prog.stores

(* Block execution result encoding, so terminator closures return an
   unboxed [int]: label >= 0 continues, -1 drops, -(p+2) emits to p. *)
let drop_code = -1
let emit_code p = -(p + 2)

(* {1 The native (unboxed int) tier}

   One closure per instruction, everything inlined into its body:
   instruction counting, the budget check, operand fetches and the
   operation itself — no per-operand thunks and no shared "bump"
   helper, so executing an instruction is a single indirect call.
   Closures are chained in continuation-passing style (each tail-calls
   the next; the terminator returns the block-result code), so running
   a block is a closure walk with no dispatch loop.

   Operands are uniform register-file indices: constants are interned
   once into a read-only tail of the register array (the reset only
   clears the real-register prefix), so a fetch is one unsafe array
   load whether the operand was [Reg] or [Const].

   A must-reach dataflow pass finds registers that some path can read
   before writing; only those need the interpreter's zero-init. For
   Builder-generated programs the set is empty and reset skips the
   register file entirely. *)

type native_state = {
  mutable pkt : P.t;
  mutable count : int;
}

(* Enumerate register uses, register defs and constant operands of one
   instruction, uses before defs (operand evaluation precedes the
   destination write). *)
let iter_instr ~use ~def ~const ins =
  let rv = function Reg r -> use r | Const c -> const c in
  let rhs = function
    | Move v | Unop (_, v) | Zext (_, v) | Sext (_, v) | Extract (_, _, v) ->
      rv v
    | Binop (_, a, b) | Cmp (_, a, b) | Concat (a, b) ->
      rv a;
      rv b
    | Select (c, a, b) ->
      rv c;
      rv a;
      rv b
  in
  match ins with
  | Assign (r, x) ->
    rhs x;
    def r
  | Load (r, off, _) ->
    rv off;
    def r
  | Store (off, v, _) ->
    rv off;
    rv v
  | Load_len r -> def r
  | Pull _ | Push _ -> ()
  | Take v | Meta_set (_, v) | Assert (v, _) -> rv v
  | Meta_get (r, _) -> def r
  | Kv_read (r, _, key) ->
    rv key;
    def r
  | Kv_write (_, key, v) ->
    rv key;
    rv v

let iter_term ~use ~const = function
  | Branch (c, _, _) -> (
    match c with Reg r -> use r | Const v -> const v)
  | Goto _ | Emit _ | Drop | Abort _ -> ()

(* Registers a path can read before any write reaches them: forward
   must-write analysis (intersection over predecessors), reads checked
   against the definitely-written set at each point. *)
let read_before_write (prog : program) =
  let nregs = Array.length prog.reg_widths in
  let nblocks = Array.length prog.blocks in
  let written_in = Array.make_matrix nblocks nregs false in
  let reached = Array.make nblocks false in
  reached.(0) <- true;
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun l blk ->
        if reached.(l) then begin
          let w = Array.copy written_in.(l) in
          List.iter
            (fun ins ->
              iter_instr ins ~use:ignore ~const:ignore ~def:(fun r ->
                  w.(r) <- true))
            blk.instrs;
          let flow_to l' =
            if not reached.(l') then begin
              reached.(l') <- true;
              Array.blit w 0 written_in.(l') 0 nregs;
              changed := true
            end
            else
              for r = 0 to nregs - 1 do
                if written_in.(l').(r) && not w.(r) then begin
                  written_in.(l').(r) <- false;
                  changed := true
                end
              done
          in
          match blk.term with
          | Goto l' -> flow_to l'
          | Branch (_, t, e) ->
            flow_to t;
            flow_to e
          | Emit _ | Drop | Abort _ -> ()
        end)
      prog.blocks
  done;
  let unsafe = Array.make nregs false in
  Array.iteri
    (fun l blk ->
      if reached.(l) then begin
        let w = Array.copy written_in.(l) in
        let use r = if not w.(r) then unsafe.(r) <- true in
        List.iter
          (fun ins ->
            iter_instr ins ~use ~const:ignore ~def:(fun r -> w.(r) <- true))
          blk.instrs;
        iter_term blk.term ~use ~const:ignore
      end)
    prog.blocks;
  let out = ref [] in
  for r = nregs - 1 downto 0 do
    if unsafe.(r) then out := r :: !out
  done;
  Array.of_list !out

let compile_native ~budget (prog : program) (stores : Stores.t) :
    P.t -> Interp.result =
  let nregs = Array.length prog.reg_widths in
  (* Intern every constant operand into the read-only pool tail. *)
  let pool = Hashtbl.create 16 in
  let npool = ref 0 in
  let walk_const v =
    let c = B.to_int_trunc v in
    if not (Hashtbl.mem pool c) then begin
      Hashtbl.replace pool c (nregs + !npool);
      incr npool
    end
  in
  Array.iter
    (fun blk ->
      List.iter
        (iter_instr ~use:ignore ~def:ignore ~const:walk_const)
        blk.instrs;
      iter_term ~use:ignore ~const:walk_const blk.term)
    prog.blocks;
  let regs = Array.make (nregs + !npool) 0 in
  Hashtbl.iter (fun c i -> regs.(i) <- c) pool;
  let src = function
    | Reg r -> r
    | Const v -> Hashtbl.find pool (B.to_int_trunc v)
  in
  let zero_list = read_before_write prog in
  let nzero = Array.length zero_list in
  let st = { pkt = P.create ""; count = 0 } in
  let mask w = (1 lsl w) - 1 in
  let width_rv = function
    | Const v -> B.width v
    | Reg r -> prog.reg_widths.(r)
  in
  (* One closure per instruction: count, budget check, fetches and the
     operation inline, then a tail call to the rest of the block. *)
  let instr_fn ins (k : unit -> int) : unit -> int =
    match ins with
    | Assign (r, rhs) -> (
      let dw = prog.reg_widths.(r) in
      let m = mask dw in
      match rhs with
      | Move v | Zext (_, v) ->
        let a = src v in
        fun () ->
          let c = st.count + 1 in
          st.count <- c;
          if c > budget then crash Budget_exhausted;
          Array.unsafe_set regs r (Array.unsafe_get regs a);
          k ()
      | Unop (Not, v) ->
        let a = src v in
        fun () ->
          let c = st.count + 1 in
          st.count <- c;
          if c > budget then crash Budget_exhausted;
          Array.unsafe_set regs r (lnot (Array.unsafe_get regs a) land m);
          k ()
      | Unop (Neg, v) ->
        let a = src v in
        fun () ->
          let c = st.count + 1 in
          st.count <- c;
          if c > budget then crash Budget_exhausted;
          Array.unsafe_set regs r (-Array.unsafe_get regs a land m);
          k ()
      | Binop (op, va, vb) -> (
        let a = src va and b = src vb in
        let w = dw in
        let sb = 1 lsl (w - 1) and fw = 1 lsl w in
        match op with
        | Add ->
          fun () ->
            let c = st.count + 1 in
            st.count <- c;
            if c > budget then crash Budget_exhausted;
            Array.unsafe_set regs r
              ((Array.unsafe_get regs a + Array.unsafe_get regs b) land m);
            k ()
        | Sub ->
          fun () ->
            let c = st.count + 1 in
            st.count <- c;
            if c > budget then crash Budget_exhausted;
            Array.unsafe_set regs r
              ((Array.unsafe_get regs a - Array.unsafe_get regs b) land m);
            k ()
        | Mul ->
          (* Native [( * )] wraps mod 2^63; [land m] recovers the low
             [w] bits exactly. *)
          fun () ->
            let c = st.count + 1 in
            st.count <- c;
            if c > budget then crash Budget_exhausted;
            Array.unsafe_set regs r
              (Array.unsafe_get regs a * Array.unsafe_get regs b land m);
            k ()
        | Udiv ->
          fun () ->
            let c = st.count + 1 in
            st.count <- c;
            if c > budget then crash Budget_exhausted;
            let d = Array.unsafe_get regs b in
            if d = 0 then crash Div_by_zero;
            Array.unsafe_set regs r (Array.unsafe_get regs a / d);
            k ()
        | Urem ->
          fun () ->
            let c = st.count + 1 in
            st.count <- c;
            if c > budget then crash Budget_exhausted;
            let d = Array.unsafe_get regs b in
            if d = 0 then crash Div_by_zero;
            Array.unsafe_set regs r (Array.unsafe_get regs a mod d);
            k ()
        | Sdiv ->
          (* OCaml (/) truncates toward zero, matching SMT-LIB bvsdiv. *)
          fun () ->
            let c = st.count + 1 in
            st.count <- c;
            if c > budget then crash Budget_exhausted;
            let d = Array.unsafe_get regs b in
            if d = 0 then crash Div_by_zero;
            let x = Array.unsafe_get regs a in
            let xs = if x land sb <> 0 then x - fw else x in
            let ds = if d land sb <> 0 then d - fw else d in
            Array.unsafe_set regs r (xs / ds land m);
            k ()
        | Srem ->
          fun () ->
            let c = st.count + 1 in
            st.count <- c;
            if c > budget then crash Budget_exhausted;
            let d = Array.unsafe_get regs b in
            if d = 0 then crash Div_by_zero;
            let x = Array.unsafe_get regs a in
            let xs = if x land sb <> 0 then x - fw else x in
            let ds = if d land sb <> 0 then d - fw else d in
            Array.unsafe_set regs r (xs mod ds land m);
            k ()
        | And ->
          fun () ->
            let c = st.count + 1 in
            st.count <- c;
            if c > budget then crash Budget_exhausted;
            Array.unsafe_set regs r
              (Array.unsafe_get regs a land Array.unsafe_get regs b);
            k ()
        | Or ->
          fun () ->
            let c = st.count + 1 in
            st.count <- c;
            if c > budget then crash Budget_exhausted;
            Array.unsafe_set regs r
              (Array.unsafe_get regs a lor Array.unsafe_get regs b);
            k ()
        | Xor ->
          fun () ->
            let c = st.count + 1 in
            st.count <- c;
            if c > budget then crash Budget_exhausted;
            Array.unsafe_set regs r
              (Array.unsafe_get regs a lxor Array.unsafe_get regs b);
            k ()
        | Shl ->
          fun () ->
            let c = st.count + 1 in
            st.count <- c;
            if c > budget then crash Budget_exhausted;
            let n = Array.unsafe_get regs b in
            Array.unsafe_set regs r
              (if n >= w then 0 else (Array.unsafe_get regs a lsl n) land m);
            k ()
        | Lshr ->
          fun () ->
            let c = st.count + 1 in
            st.count <- c;
            if c > budget then crash Budget_exhausted;
            let n = Array.unsafe_get regs b in
            Array.unsafe_set regs r
              (if n >= w then 0 else Array.unsafe_get regs a lsr n);
            k ()
        | Ashr ->
          fun () ->
            let c = st.count + 1 in
            st.count <- c;
            if c > budget then crash Budget_exhausted;
            let n = Array.unsafe_get regs b in
            let x = Array.unsafe_get regs a in
            let xs = if x land sb <> 0 then x - fw else x in
            Array.unsafe_set regs r
              (if n >= w then if xs < 0 then m else 0
               else xs asr n land m);
            k ())
      | Cmp (op, va, vb) -> (
        let a = src va and b = src vb in
        let w = width_rv va in
        let sb = 1 lsl (w - 1) and fw = 1 lsl w in
        match op with
        | Eq ->
          fun () ->
            let c = st.count + 1 in
            st.count <- c;
            if c > budget then crash Budget_exhausted;
            Array.unsafe_set regs r
              (if Array.unsafe_get regs a = Array.unsafe_get regs b then 1
               else 0);
            k ()
        | Ne ->
          fun () ->
            let c = st.count + 1 in
            st.count <- c;
            if c > budget then crash Budget_exhausted;
            Array.unsafe_set regs r
              (if Array.unsafe_get regs a <> Array.unsafe_get regs b then 1
               else 0);
            k ()
        | Ult ->
          fun () ->
            let c = st.count + 1 in
            st.count <- c;
            if c > budget then crash Budget_exhausted;
            Array.unsafe_set regs r
              (if Array.unsafe_get regs a < Array.unsafe_get regs b then 1
               else 0);
            k ()
        | Ule ->
          fun () ->
            let c = st.count + 1 in
            st.count <- c;
            if c > budget then crash Budget_exhausted;
            Array.unsafe_set regs r
              (if Array.unsafe_get regs a <= Array.unsafe_get regs b then 1
               else 0);
            k ()
        | Slt ->
          fun () ->
            let c = st.count + 1 in
            st.count <- c;
            if c > budget then crash Budget_exhausted;
            let x = Array.unsafe_get regs a and y = Array.unsafe_get regs b in
            let xs = if x land sb <> 0 then x - fw else x in
            let ys = if y land sb <> 0 then y - fw else y in
            Array.unsafe_set regs r (if xs < ys then 1 else 0);
            k ()
        | Sle ->
          fun () ->
            let c = st.count + 1 in
            st.count <- c;
            if c > budget then crash Budget_exhausted;
            let x = Array.unsafe_get regs a and y = Array.unsafe_get regs b in
            let xs = if x land sb <> 0 then x - fw else x in
            let ys = if y land sb <> 0 then y - fw else y in
            Array.unsafe_set regs r (if xs <= ys then 1 else 0);
            k ())
      | Select (vc, va, vb) ->
        let cc = src vc and a = src va and b = src vb in
        fun () ->
          let c = st.count + 1 in
          st.count <- c;
          if c > budget then crash Budget_exhausted;
          Array.unsafe_set regs r
            (if Array.unsafe_get regs cc land 1 <> 0 then
               Array.unsafe_get regs a
             else Array.unsafe_get regs b);
          k ()
      | Extract (_, lo, v) ->
        (* dw = hi - lo + 1 by validation, so [m] is the slice mask. *)
        let a = src v in
        fun () ->
          let c = st.count + 1 in
          st.count <- c;
          if c > budget then crash Budget_exhausted;
          Array.unsafe_set regs r ((Array.unsafe_get regs a lsr lo) land m);
          k ()
      | Concat (va, vb) ->
        let a = src va and b = src vb in
        let wb = width_rv vb in
        fun () ->
          let c = st.count + 1 in
          st.count <- c;
          if c > budget then crash Budget_exhausted;
          Array.unsafe_set regs r
            ((Array.unsafe_get regs a lsl wb) lor Array.unsafe_get regs b);
          k ()
      | Sext (w2, v) ->
        let a = src v in
        let wv = width_rv v in
        if wv = w2 then
          fun () ->
            let c = st.count + 1 in
            st.count <- c;
            if c > budget then crash Budget_exhausted;
            Array.unsafe_set regs r (Array.unsafe_get regs a);
            k ()
        else
          let sign = 1 lsl (wv - 1) in
          let ext = mask w2 land lnot (mask wv) in
          fun () ->
            let c = st.count + 1 in
            st.count <- c;
            if c > budget then crash Budget_exhausted;
            let x = Array.unsafe_get regs a in
            Array.unsafe_set regs r
              (if x land sign <> 0 then x lor ext else x);
            k ())
    | Load (r, off, n) -> (
      let o = src off in
      match n with
      | 1 ->
        fun () ->
          let c = st.count + 1 in
          st.count <- c;
          if c > budget then crash Budget_exhausted;
          let p = st.pkt in
          let ov = Array.unsafe_get regs o in
          if ov + 1 > p.P.len then
            crash
              (Out_of_bounds
                 (Printf.sprintf "load %d+%d > len %d" ov 1 p.P.len));
          (* In-window implies in-buffer: head + len <= |buf|. *)
          Array.unsafe_set regs r
            (Char.code (Bytes.unsafe_get p.P.buf (p.P.head + ov)));
          k ()
      | 2 ->
        fun () ->
          let c = st.count + 1 in
          st.count <- c;
          if c > budget then crash Budget_exhausted;
          let p = st.pkt in
          let ov = Array.unsafe_get regs o in
          if ov + 2 > p.P.len then
            crash
              (Out_of_bounds
                 (Printf.sprintf "load %d+%d > len %d" ov 2 p.P.len));
          let base = p.P.head + ov in
          let buf = p.P.buf in
          Array.unsafe_set regs r
            ((Char.code (Bytes.unsafe_get buf base) lsl 8)
            lor Char.code (Bytes.unsafe_get buf (base + 1)));
          k ()
      | 4 ->
        fun () ->
          let c = st.count + 1 in
          st.count <- c;
          if c > budget then crash Budget_exhausted;
          let p = st.pkt in
          let ov = Array.unsafe_get regs o in
          if ov + 4 > p.P.len then
            crash
              (Out_of_bounds
                 (Printf.sprintf "load %d+%d > len %d" ov 4 p.P.len));
          let base = p.P.head + ov in
          let buf = p.P.buf in
          Array.unsafe_set regs r
            ((Char.code (Bytes.unsafe_get buf base) lsl 24)
            lor (Char.code (Bytes.unsafe_get buf (base + 1)) lsl 16)
            lor (Char.code (Bytes.unsafe_get buf (base + 2)) lsl 8)
            lor Char.code (Bytes.unsafe_get buf (base + 3)));
          k ()
      | n ->
        fun () ->
          let c = st.count + 1 in
          st.count <- c;
          if c > budget then crash Budget_exhausted;
          let p = st.pkt in
          let ov = Array.unsafe_get regs o in
          if ov + n > p.P.len then
            crash
              (Out_of_bounds
                 (Printf.sprintf "load %d+%d > len %d" ov n p.P.len));
          let base = p.P.head + ov in
          let buf = p.P.buf in
          let acc = ref 0 in
          for i = 0 to n - 1 do
            acc :=
              (!acc lsl 8) lor Char.code (Bytes.unsafe_get buf (base + i))
          done;
          Array.unsafe_set regs r !acc;
          k ())
    | Store (off, v, n) -> (
      let o = src off and a = src v in
      match n with
      | 1 ->
        fun () ->
          let c = st.count + 1 in
          st.count <- c;
          if c > budget then crash Budget_exhausted;
          let p = st.pkt in
          let ov = Array.unsafe_get regs o in
          if ov + 1 > p.P.len then
            crash
              (Out_of_bounds
                 (Printf.sprintf "store %d+%d > len %d" ov 1 p.P.len));
          Bytes.unsafe_set p.P.buf (p.P.head + ov)
            (Char.unsafe_chr (Array.unsafe_get regs a land 0xff));
          k ()
      | 2 ->
        fun () ->
          let c = st.count + 1 in
          st.count <- c;
          if c > budget then crash Budget_exhausted;
          let p = st.pkt in
          let ov = Array.unsafe_get regs o in
          if ov + 2 > p.P.len then
            crash
              (Out_of_bounds
                 (Printf.sprintf "store %d+%d > len %d" ov 2 p.P.len));
          let base = p.P.head + ov in
          let buf = p.P.buf in
          let x = Array.unsafe_get regs a in
          Bytes.unsafe_set buf base (Char.unsafe_chr ((x lsr 8) land 0xff));
          Bytes.unsafe_set buf (base + 1) (Char.unsafe_chr (x land 0xff));
          k ()
      | n ->
        fun () ->
          let c = st.count + 1 in
          st.count <- c;
          if c > budget then crash Budget_exhausted;
          let p = st.pkt in
          let ov = Array.unsafe_get regs o in
          if ov + n > p.P.len then
            crash
              (Out_of_bounds
                 (Printf.sprintf "store %d+%d > len %d" ov n p.P.len));
          let base = p.P.head + ov in
          let buf = p.P.buf in
          let x = Array.unsafe_get regs a in
          for i = 0 to n - 1 do
            Bytes.unsafe_set buf (base + i)
              (Char.unsafe_chr ((x lsr (8 * (n - 1 - i))) land 0xff))
          done;
          k ())
    | Load_len r ->
      fun () ->
        let c = st.count + 1 in
        st.count <- c;
        if c > budget then crash Budget_exhausted;
        Array.unsafe_set regs r st.pkt.P.len;
        k ()
    | Pull n ->
      fun () ->
        let c = st.count + 1 in
        st.count <- c;
        if c > budget then crash Budget_exhausted;
        let p = st.pkt in
        if n > p.P.len then
          crash (Out_of_bounds (Printf.sprintf "pull %d" n));
        p.P.head <- p.P.head + n;
        p.P.len <- p.P.len - n;
        k ()
    | Push n ->
      fun () ->
        let c = st.count + 1 in
        st.count <- c;
        if c > budget then crash Budget_exhausted;
        let p = st.pkt in
        if n > p.P.head then crash Headroom_exhausted;
        p.P.head <- p.P.head - n;
        p.P.len <- p.P.len + n;
        Bytes.fill p.P.buf p.P.head n '\000';
        k ()
    | Take v ->
      let a = src v in
      fun () ->
        let c = st.count + 1 in
        st.count <- c;
        if c > budget then crash Budget_exhausted;
        let n = Array.unsafe_get regs a in
        let p = st.pkt in
        if n > p.P.len then
          crash (Out_of_bounds (Printf.sprintf "take %d" n));
        p.P.len <- n;
        k ()
    | Meta_get (r, mt) -> (
      let m = mask (meta_width mt) in
      match mt with
      | Port ->
        fun () ->
          let c = st.count + 1 in
          st.count <- c;
          if c > budget then crash Budget_exhausted;
          Array.unsafe_set regs r (st.pkt.P.port land m);
          k ()
      | Color ->
        fun () ->
          let c = st.count + 1 in
          st.count <- c;
          if c > budget then crash Budget_exhausted;
          Array.unsafe_set regs r (st.pkt.P.color land m);
          k ()
      | W0 ->
        fun () ->
          let c = st.count + 1 in
          st.count <- c;
          if c > budget then crash Budget_exhausted;
          Array.unsafe_set regs r (st.pkt.P.w0 land m);
          k ()
      | W1 ->
        fun () ->
          let c = st.count + 1 in
          st.count <- c;
          if c > budget then crash Budget_exhausted;
          Array.unsafe_set regs r (st.pkt.P.w1 land m);
          k ())
    | Meta_set (mt, v) -> (
      let a = src v in
      match mt with
      | Port ->
        fun () ->
          let c = st.count + 1 in
          st.count <- c;
          if c > budget then crash Budget_exhausted;
          st.pkt.P.port <- Array.unsafe_get regs a;
          k ()
      | Color ->
        fun () ->
          let c = st.count + 1 in
          st.count <- c;
          if c > budget then crash Budget_exhausted;
          st.pkt.P.color <- Array.unsafe_get regs a;
          k ()
      | W0 ->
        fun () ->
          let c = st.count + 1 in
          st.count <- c;
          if c > budget then crash Budget_exhausted;
          st.pkt.P.w0 <- Array.unsafe_get regs a;
          k ()
      | W1 ->
        fun () ->
          let c = st.count + 1 in
          st.count <- c;
          if c > budget then crash Budget_exhausted;
          st.pkt.P.w1 <- Array.unsafe_get regs a;
          k ())
    | Kv_read (r, name, key) -> (
      let d = store_decl prog name in
      let kk = src key in
      match d.kind with
      | Static ->
        (* Static contents are snapshotted into an int-keyed table, but
           config churn can mutate them after compilation; the snapshot
           is rebuilt lazily whenever the generation counter moves. *)
        let data = d.init in
        let tbl = Hashtbl.create 64 in
        let snap_gen = ref (-1) in
        let refresh () =
          Hashtbl.reset tbl;
          Static_data.iter
            (fun k v ->
              Hashtbl.replace tbl (B.to_int_trunc k) (B.to_int_trunc v))
            data;
          snap_gen := Static_data.generation data
        in
        let dflt = B.to_int_trunc d.default in
        fun () ->
          let c = st.count + 1 in
          st.count <- c;
          if c > budget then crash Budget_exhausted;
          if !snap_gen <> Static_data.generation data then refresh ();
          Array.unsafe_set regs r
            (match Hashtbl.find_opt tbl (Array.unsafe_get regs kk) with
            | Some v -> v
            | None -> dflt);
          k ()
      | Private ->
        let kw = d.key_width in
        fun () ->
          let c = st.count + 1 in
          st.count <- c;
          if c > budget then crash Budget_exhausted;
          Array.unsafe_set regs r
            (B.to_int_trunc
               (Stores.read stores name
                  (B.of_int ~width:kw (Array.unsafe_get regs kk))));
          k ())
    | Kv_write (name, key, v) ->
      let d = store_decl prog name in
      let kk = src key and a = src v in
      let kw = d.key_width and vw = d.val_width in
      fun () ->
        let c = st.count + 1 in
        st.count <- c;
        if c > budget then crash Budget_exhausted;
        Stores.write stores name
          (B.of_int ~width:kw (Array.unsafe_get regs kk))
          (B.of_int ~width:vw (Array.unsafe_get regs a));
        k ()
    | Assert (cnd, msg) ->
      let a = src cnd in
      fun () ->
        let c = st.count + 1 in
        st.count <- c;
        if c > budget then crash Budget_exhausted;
        if Array.unsafe_get regs a land 1 = 0 then crash (Assert_failed msg);
        k ()
  in
  let term_fn t : unit -> int =
    match t with
    | Goto l ->
      fun () ->
        let c = st.count + 1 in
        st.count <- c;
        if c > budget then crash Budget_exhausted;
        l
    | Branch (cnd, t1, e) ->
      let a = src cnd in
      fun () ->
        let c = st.count + 1 in
        st.count <- c;
        if c > budget then crash Budget_exhausted;
        if Array.unsafe_get regs a land 1 <> 0 then t1 else e
    | Emit p ->
      let code = emit_code p in
      fun () ->
        let c = st.count + 1 in
        st.count <- c;
        if c > budget then crash Budget_exhausted;
        code
    | Drop ->
      fun () ->
        let c = st.count + 1 in
        st.count <- c;
        if c > budget then crash Budget_exhausted;
        drop_code
    | Abort msg ->
      fun () ->
        let c = st.count + 1 in
        st.count <- c;
        if c > budget then crash Budget_exhausted;
        crash (Aborted msg)
  in
  let blocks =
    Array.map
      (fun blk -> List.fold_right instr_fn blk.instrs (term_fn blk.term))
      prog.blocks
  in
  (* Emit outcomes preallocated; validation bounds Emit ports. *)
  let emitted = Array.init (max 1 prog.nports) (fun p -> Emitted p) in
  let dummy = st.pkt in
  fun pkt ->
    st.pkt <- pkt;
    for i = 0 to nzero - 1 do
      Array.unsafe_set regs (Array.unsafe_get zero_list i) 0
    done;
    st.count <- 0;
    let outcome =
      try
        let rec go l =
          let t = (Array.unsafe_get blocks l) () in
          if t >= 0 then go t
          else if t = drop_code then Dropped
          else Array.unsafe_get emitted (-t - 2)
        in
        go 0
      with Interp.Crash c -> Crashed c
    in
    st.pkt <- dummy;
    { Interp.outcome; instr_count = st.count }

(* {1 The boxed (bitvector) tier} *)

type boxed_state = {
  mutable bpkt : P.t;
  bregs : B.t array;
  mutable bcount : int;
}

let compile_boxed ~budget (prog : program) (stores : Stores.t) :
    P.t -> Interp.result =
  let nregs = Array.length prog.reg_widths in
  (* Shared zero templates are safe: Bitvec operations never mutate
     their arguments, only freshly allocated results. *)
  let zeros = Array.map B.zero prog.reg_widths in
  let st =
    { bpkt = P.create ""; bregs = Array.map B.zero prog.reg_widths;
      bcount = 0 }
  in
  let bump () =
    st.bcount <- st.bcount + 1;
    if st.bcount > budget then crash Budget_exhausted
  in
  let value rv : unit -> B.t =
    match rv with
    | Const v -> fun () -> v
    | Reg r ->
      let regs = st.bregs in
      fun () -> Array.unsafe_get regs r
  in
  let rhs_fn rhs : unit -> B.t =
    match rhs with
    | Move v -> value v
    | Unop (Not, v) ->
      let g = value v in
      fun () -> B.lognot (g ())
    | Unop (Neg, v) ->
      let g = value v in
      fun () -> B.neg (g ())
    | Binop (op, a, b) -> (
      let ga = value a and gb = value b in
      let guard f () =
        let vb = gb () in
        if B.is_zero vb then crash Div_by_zero else f (ga ()) vb
      in
      match op with
      | Add -> fun () -> B.add (ga ()) (gb ())
      | Sub -> fun () -> B.sub (ga ()) (gb ())
      | Mul -> fun () -> B.mul (ga ()) (gb ())
      | Udiv -> guard B.udiv
      | Urem -> guard B.urem
      | Sdiv -> guard B.sdiv
      | Srem -> guard B.srem
      | And -> fun () -> B.logand (ga ()) (gb ())
      | Or -> fun () -> B.logor (ga ()) (gb ())
      | Xor -> fun () -> B.logxor (ga ()) (gb ())
      | Shl -> fun () -> B.shl_bv (ga ()) (gb ())
      | Lshr -> fun () -> B.lshr_bv (ga ()) (gb ())
      | Ashr -> fun () -> B.ashr_bv (ga ()) (gb ()))
    | Cmp (op, a, b) -> (
      let ga = value a and gb = value b in
      match op with
      | Eq -> fun () -> B.of_bool (B.equal (ga ()) (gb ()))
      | Ne -> fun () -> B.of_bool (not (B.equal (ga ()) (gb ())))
      | Ult -> fun () -> B.of_bool (B.ult (ga ()) (gb ()))
      | Ule -> fun () -> B.of_bool (B.ule (ga ()) (gb ()))
      | Slt -> fun () -> B.of_bool (B.slt (ga ()) (gb ()))
      | Sle -> fun () -> B.of_bool (B.sle (ga ()) (gb ())))
    | Select (c, a, b) ->
      let gc = value c and ga = value a and gb = value b in
      fun () -> if B.is_true (gc ()) then ga () else gb ()
    | Extract (hi, lo, v) ->
      let g = value v in
      fun () -> B.extract ~hi ~lo (g ())
    | Concat (a, b) ->
      let ga = value a and gb = value b in
      fun () -> B.concat (ga ()) (gb ())
    | Zext (w, v) ->
      let g = value v in
      fun () -> B.zext w (g ())
    | Sext (w, v) ->
      let g = value v in
      fun () -> B.sext w (g ())
  in
  let value_int rv =
    let g = value rv in
    fun () -> B.to_int_trunc (g ())
  in
  let instr_fn ins : unit -> unit =
    match ins with
    | Assign (r, rhs) ->
      let f = rhs_fn rhs in
      fun () ->
        bump ();
        st.bregs.(r) <- f ()
    | Load (r, off, n) ->
      let goff = value_int off in
      fun () ->
        bump ();
        let p = st.bpkt in
        let o = goff () in
        if o + n > p.P.len then
          crash
            (Out_of_bounds (Printf.sprintf "load %d+%d > len %d" o n p.P.len))
        else
          st.bregs.(r) <-
            B.of_bytes_be (Bytes.sub_string p.P.buf (p.P.head + o) n)
    | Store (off, v, n) ->
      let goff = value_int off and gv = value v in
      fun () ->
        bump ();
        let p = st.bpkt in
        let o = goff () in
        if o + n > p.P.len then
          crash
            (Out_of_bounds (Printf.sprintf "store %d+%d > len %d" o n p.P.len))
        else
          Bytes.blit_string (B.to_bytes_be (gv ())) 0 p.P.buf (p.P.head + o) n
    | Load_len r ->
      fun () ->
        bump ();
        st.bregs.(r) <- B.of_int ~width:16 st.bpkt.P.len
    | Pull n ->
      fun () ->
        bump ();
        let p = st.bpkt in
        if n > p.P.len then
          crash (Out_of_bounds (Printf.sprintf "pull %d" n))
        else P.pull p n
    | Push n ->
      fun () ->
        bump ();
        (try P.push st.bpkt n
         with P.Out_of_bounds _ -> crash Headroom_exhausted)
    | Take v ->
      let gv = value_int v in
      fun () ->
        bump ();
        let n = gv () in
        let p = st.bpkt in
        if n > p.P.len then
          crash (Out_of_bounds (Printf.sprintf "take %d" n))
        else P.take p n
    | Meta_get (r, mt) -> (
      let w = meta_width mt in
      match mt with
      | Port ->
        fun () ->
          bump ();
          st.bregs.(r) <- B.of_int ~width:w st.bpkt.P.port
      | Color ->
        fun () ->
          bump ();
          st.bregs.(r) <- B.of_int ~width:w st.bpkt.P.color
      | W0 ->
        fun () ->
          bump ();
          st.bregs.(r) <- B.of_int ~width:w st.bpkt.P.w0
      | W1 ->
        fun () ->
          bump ();
          st.bregs.(r) <- B.of_int ~width:w st.bpkt.P.w1)
    | Meta_set (mt, v) -> (
      let gv = value_int v in
      match mt with
      | Port ->
        fun () ->
          bump ();
          st.bpkt.P.port <- gv ()
      | Color ->
        fun () ->
          bump ();
          st.bpkt.P.color <- gv ()
      | W0 ->
        fun () ->
          bump ();
          st.bpkt.P.w0 <- gv ()
      | W1 ->
        fun () ->
          bump ();
          st.bpkt.P.w1 <- gv ())
    | Kv_read (r, name, key) ->
      let gk = value key in
      fun () ->
        bump ();
        st.bregs.(r) <- Stores.read stores name (gk ())
    | Kv_write (name, key, v) ->
      let gk = value key and gv = value v in
      fun () ->
        bump ();
        Stores.write stores name (gk ()) (gv ())
    | Assert (c, msg) ->
      let gc = value c in
      fun () ->
        bump ();
        if not (B.is_true (gc ())) then crash (Assert_failed msg)
  in
  let term_fn t : unit -> int =
    match t with
    | Goto l ->
      fun () ->
        bump ();
        l
    | Branch (c, t1, e) ->
      let gc = value c in
      fun () ->
        bump ();
        if B.is_true (gc ()) then t1 else e
    | Emit p ->
      let code = emit_code p in
      fun () ->
        bump ();
        code
    | Drop ->
      fun () ->
        bump ();
        drop_code
    | Abort msg ->
      fun () ->
        bump ();
        crash (Aborted msg)
  in
  let blocks =
    Array.map
      (fun blk ->
        (Array.of_list (List.map instr_fn blk.instrs), term_fn blk.term))
      prog.blocks
  in
  let dummy = st.bpkt in
  fun pkt ->
    st.bpkt <- pkt;
    Array.blit zeros 0 st.bregs 0 nregs;
    st.bcount <- 0;
    let outcome =
      try
        let rec go l =
          let instrs, term = blocks.(l) in
          for i = 0 to Array.length instrs - 1 do
            (Array.unsafe_get instrs i) ()
          done;
          let t = term () in
          if t >= 0 then go t
          else if t = drop_code then Dropped
          else Emitted (-t - 2)
        in
        go 0
      with Interp.Crash c -> Crashed c
    in
    st.bpkt <- dummy;
    { Interp.outcome; instr_count = st.bcount }

(* {1 Entry point} *)

(** [compile prog stores] — validate, pick a tier, and lower. Partial
    application [compile prog] performs validation and tier selection
    once; applying the store state builds the closure program (constant
    resolution, store snapshots, register file allocation). *)
let compile ?(budget = Interp.default_budget) (prog : program) :
    Stores.t -> P.t -> Interp.result =
  let prog = Validate.check_program prog in
  match tier prog with
  | Native -> compile_native ~budget prog
  | Boxed -> compile_boxed ~budget prog
