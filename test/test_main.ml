let () =
  Alcotest.run "vdp"
    [
      ("bitvec", Test_bitvec.tests);
      ("term", Test_term.tests);
      ("sat", Test_sat.tests);
      ("solver", Test_solver.tests);
      ("packet", Test_packet.tests);
      ("ir", Test_ir.tests);
      ("tables", Test_tables.tests);
      ("click", Test_click.tests);
      ("symbex", Test_symbex.tests);
      ("verif", Test_verif.tests);
      ("elements", Test_elements.tests);
      ("interval", Test_interval.tests);
      ("config", Test_config.tests);
      ("incremental", Test_incremental.tests);
      ("parallel", Test_parallel.tests);
      ("replay", Test_replay.tests);
      ("preprocess", Test_preprocess.tests);
      ("cert", Test_cert.tests);
      ("batch", Test_batch.tests);
      ("staleness", Test_staleness.tests);
      ("topo", Test_topo.tests);
    ]
