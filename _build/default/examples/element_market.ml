(* The "app market" use case: an operator about to deploy third-party
   packet-processing elements into a working pipeline asks the verifier
   to certify each candidate against the pipeline it will join.

   SafeDPI passes. BuggyPeek (unchecked data-dependent offset),
   BuggyQuota (divides by the TTL) and BuggyNAT (asserts on port-pool
   exhaustion) are rejected — each with the concrete packet sequence
   that breaks it.

     dune exec examples/element_market.exe *)

module Click = Vdp_click
module V = Vdp_verif.Verifier
module Report = Vdp_verif.Report
module P = Vdp_packet.Packet

(* The operator's pipeline with a slot for the candidate element. *)
let pipeline_with candidate =
  Click.Pipeline.linear
    [
      Click.Registry.make ~name:"cl" ~cls:"Classifier" ~config:[ "12/0800" ];
      Click.Registry.make ~name:"strip" ~cls:"Strip" ~config:[ "14" ];
      Click.Registry.make ~name:"chk" ~cls:"CheckIPHeader" ~config:[];
      candidate;
      Click.Registry.make ~name:"ttl" ~cls:"DecIPTTL" ~config:[];
    ]

let certify ~cls ~config =
  let candidate = Click.Registry.make ~name:"candidate" ~cls ~config in
  let pl = pipeline_with candidate in
  Format.printf "@.=== candidate %s(%s) ===@." cls (String.concat ", " config);
  let t0 = Unix.gettimeofday () in
  let report = V.check_crash_freedom pl in
  let dt = Unix.gettimeofday () -. t0 in
  (match report.V.verdict with
  | V.Proved ->
    Format.printf "CERTIFIED: cannot crash this pipeline (%.2fs)@." dt
  | V.Unknown why -> Format.printf "NOT CERTIFIED: %s (%.2fs)@." why dt
  | V.Violated vs ->
    Format.printf "REJECTED: %d crashing input(s) found (%.2fs)@."
      (List.length vs) dt;
    List.iter
      (fun (v : V.violation) ->
        Format.printf "  %a at '%s'%s@." Vdp_symbex.Engine.pp_outcome
          v.V.outcome v.V.element
          (if v.V.confirmed then " — reproduced on the runtime" else
             if v.V.stateful then " — requires a particular state history"
             else "");
        match v.V.witness with
        | Some pkt when P.length pkt <= 64 ->
          Format.printf "  crashing packet:@.%s@." (P.hex_dump pkt)
        | Some pkt ->
          Format.printf "  crashing packet of %d bytes (first 32):@.%s@."
            (P.length pkt)
            (P.hex_dump
               (let q = P.clone pkt in
                P.take q 32;
                q))
        | None -> ())
      vs);
  report

let () =
  (* A well-behaved candidate: bounded, checked payload scanning. *)
  let _ = certify ~cls:"SafeDPI" ~config:[ "144"; "32" ] in
  (* A scanner that trusts a header field as an offset. *)
  let _ = certify ~cls:"BuggyPeek" ~config:[] in
  (* An accountant that divides by the TTL. *)
  let _ = certify ~cls:"BuggyQuota" ~config:[ "100000" ] in
  (* A NAT that asserts instead of shedding load. *)
  let _ = certify ~cls:"BuggyNAT" ~config:[ "198.51.100.1" ] in
  (* The fixed NAT passes. *)
  let _ = certify ~cls:"IPRewriter" ~config:[ "198.51.100.1" ] in
  ()
