(** Runtime state of an element's key/value stores.

    Static stores are immutable views of their declared contents; the
    interpreter rejects writes to them. Private stores start from their
    declared contents and evolve as packets are processed. *)

module B = Vdp_bitvec.Bitvec
open Types

type store = {
  decl : store_decl;
  table : (B.t, B.t) Hashtbl.t;
}

type t = (string, store) Hashtbl.t

let init (decls : store_decl list) : t =
  let state = Hashtbl.create (max 4 (List.length decls)) in
  List.iter
    (fun decl ->
      if Hashtbl.mem state decl.store_name then
        invalid_arg ("Stores.init: duplicate store " ^ decl.store_name);
      let table = Hashtbl.create 64 in
      List.iter
        (fun (k, v) ->
          if B.width k <> decl.key_width || B.width v <> decl.val_width then
            invalid_arg ("Stores.init: width mismatch in " ^ decl.store_name);
          Hashtbl.replace table k v)
        decl.init;
      Hashtbl.replace state decl.store_name { decl; table })
    decls;
  state

let find state name =
  match Hashtbl.find_opt state name with
  | Some s -> s
  | None -> invalid_arg ("Stores: undeclared store " ^ name)

let read state name key =
  let s = find state name in
  if B.width key <> s.decl.key_width then
    invalid_arg ("Stores.read: key width mismatch in " ^ name);
  match Hashtbl.find_opt s.table key with
  | Some v -> v
  | None -> s.decl.default

let write state name key value =
  let s = find state name in
  (match s.decl.kind with
  | Static -> invalid_arg ("Stores.write: store is static: " ^ name)
  | Private -> ());
  if B.width key <> s.decl.key_width || B.width value <> s.decl.val_width
  then invalid_arg ("Stores.write: width mismatch in " ^ name);
  Hashtbl.replace s.table key value

let reset state =
  Hashtbl.iter
    (fun _ s ->
      Hashtbl.reset s.table;
      List.iter (fun (k, v) -> Hashtbl.replace s.table k v) s.decl.init)
    state

let entries state name =
  let s = find state name in
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) s.table []
