(** Routing lookup elements.

    [StaticIPLookup] compiles the route table into a compare/branch
    chain (longest prefix first) — the table is static state baked into
    the code, which is what makes per-configuration reachability proofs
    meaningful.

    [RadixIPLookup] keeps the routes in a static key/value store indexed
    DIR-style by the top 16 address bits — one bounded store read per
    packet, demonstrating the paper's array-backed-structure approach.
    Prefixes longer than 16 bits fall back to a second store read. *)

module B = Vdp_bitvec.Bitvec
module Ir = Vdp_ir.Types
module Bld = Vdp_ir.Builder
module Sdata = Vdp_ir.Static_data
open El_util

type route = {
  prefix : int;   (** network byte-order 32-bit address *)
  plen : int;
  gw : int;       (** next-hop address annotation (0 = directly connected) *)
  port : int;
}

let parse_route spec =
  (* "10.0.0.0/8 1" or "10.0.0.0/8 192.168.0.1 1" *)
  match String.split_on_char ' ' (String.trim spec)
        |> List.filter (fun s -> s <> "")
  with
  | [ cidr; port ] | [ cidr; _; port ] as parts -> (
    let gw =
      match parts with
      | [ _; gw; _ ] -> Vdp_packet.Ipv4.addr_of_string gw
      | _ -> 0
    in
    match String.split_on_char '/' cidr with
    | [ addr; len ] ->
      {
        prefix = Vdp_packet.Ipv4.addr_of_string addr;
        plen = int_of_string len;
        gw;
        port = int_of_string port;
      }
    | _ -> invalid_arg ("StaticIPLookup: bad route " ^ spec))
  | _ -> invalid_arg ("StaticIPLookup: bad route " ^ spec)

let mask_of_len len =
  if len = 0 then 0 else 0xffffffff lxor ((1 lsl (32 - len)) - 1)

let static_ip_lookup routes =
  let routes =
    List.sort (fun r1 r2 -> Stdlib.compare r2.plen r1.plen) routes
  in
  let nports =
    List.fold_left (fun acc r -> max acc (r.port + 1)) 1 routes
  in
  let b = Bld.create ~name:"StaticIPLookup" in
  Bld.set_nports b nports;
  let dst = Bld.load b ~off:(c16 16) ~n:4 in
  let rec chain = function
    | [] -> Bld.term b Ir.Drop (* no route: drop (Click discards too) *)
    | r :: rest ->
      let masked =
        Bld.assign b ~width:32
          (Ir.Binop (Ir.And, Ir.Reg dst, c32 (mask_of_len r.plen)))
      in
      let hit =
        Bld.cmp b Ir.Eq (Ir.Reg masked) (c32 (r.prefix land mask_of_len r.plen))
      in
      let hit_blk = Bld.new_block b and miss_blk = Bld.new_block b in
      Bld.term b (Ir.Branch (Ir.Reg hit, hit_blk, miss_blk));
      Bld.select b hit_blk;
      Bld.instr b (Ir.Meta_set (Ir.W0, c32 r.gw));
      Bld.term b (Ir.Emit r.port);
      Bld.select b miss_blk;
      chain rest
  in
  chain routes;
  Bld.finish b

(** DIR-16-8-8: static store "lpm16" maps the top 16 address bits to a
    route word; "lpm24" maps the top 24 bits (prefixes /17–/24, and
    /25–/31 expanded); "lpm32" maps the full address (/25–/32 expanded
    into covered /32s — at most 128 per route). Route words are 48
    bits, [spill(1) | gw(32) | port+1(8)] packed as gw*256 + code, 0 =
    miss; the spill bit says a longer prefix may exist one level down,
    and a deeper miss falls back to the shallower word. *)
let route_word =
  (* memoized: a FIB has millions of slots but only as many distinct
     route words as (spill, next-hop, port) combinations, and sharing
     them keeps a million-entry bulk load from promoting a fresh
     bitvector per slot (values are immutable) *)
  let cache : (int, B.t) Hashtbl.t = Hashtbl.create 64 in
  fun ~spill ~gw ~port ->
    let w = (gw * 256) + (port + 1) in
    let w = if spill then w lor (1 lsl 40) else w in
    match Hashtbl.find_opt cache w with
    | Some b -> b
    | None ->
      let b = B.of_int ~width:48 w in
      Hashtbl.add cache w b;
      b

let spill_mask = B.lognot (B.shl (B.one 48) 40)

(** A mutable DIR-16-8-8 FIB backing a [RadixIPLookup] instance.

    The three levels live in shared {!Vdp_ir.Static_data} stores, so the
    runtime, the symbolic engine and witness replay all observe the same
    (current) contents, and every mutation notifies the staleness
    listeners with exactly the slots it rewrote — the "prefix cone" of
    the changed route. [insert]/[delete] are total in any order: each
    level records the prefix length owning every slot, a shorter prefix
    only overwrites slots owned by even shorter ones, and deleting a
    route restores the next-longest covering route of the same level
    (shallower levels are reached by the element's own miss fallback). *)
module Fib = struct
  (* Sparse int arrays in 256-slot pages. The owner/spill shadow tables
     cover up to 2^32 slots; a prefix cone is a power-of-two span
     aligned to its own size, so page-sized chunks of a cone are
     straight array writes and a million-route bulk load does a handful
     of hash operations per route instead of one per covered slot.
     [-1] = absent. *)
  module Pages = struct
    type t = (int, int array) Hashtbl.t

    let create () : t = Hashtbl.create 64

    let page (p : t) slot =
      let idx = slot lsr 8 in
      match Hashtbl.find_opt p idx with
      | Some a -> a
      | None ->
        let a = Array.make 256 (-1) in
        Hashtbl.add p idx a;
        a

    let get (p : t) slot =
      match Hashtbl.find_opt p (slot lsr 8) with
      | None -> -1
      | Some a -> Array.unsafe_get a (slot land 0xff)

    let set (p : t) slot v = (page p slot).(slot land 0xff) <- v

    let iter f (p : t) =
      Hashtbl.iter
        (fun idx a ->
          Array.iteri (fun o v -> if v >= 0 then f ((idx lsl 8) lor o) v) a)
        p
  end

  type t = {
    stores : Sdata.t array;  (** lpm16, lpm24, lpm32 *)
    own : Pages.t array;
        (** per level: slot -> owning route packed as
            [plen lsl 41 | gw lsl 8 | port] — unboxed to keep
            million-slot bulk loads allocation-free *)
    spills : Pages.t array;
        (** slot -> number of routes one level deeper, for levels 0/1 *)
    routes : (int, route) Hashtbl.t;
        (** (masked prefix lsl 6) lor plen -> route, the exact registry
            consulted for covering-route fallback on delete *)
    nports : int;
    mutable program : Ir.program option;  (** built once, memoized *)
    mutable muted : bool;
        (** bulk-load mode: suppress per-slot store writes; [flush]
            emits every live slot once at the end *)
  }

  let key_widths = [| 16; 24; 32 |]
  let level_of plen = if plen <= 16 then 0 else if plen <= 24 then 1 else 2
  let level_min = [| 0; 17; 25 |]
  let mask32 len = if len = 0 then 0 else 0xffffffff lsl (32 - len) land 0xffffffff
  let rkey prefix plen = ((prefix land mask32 plen) lsl 6) lor plen
  let slot_of level prefix = (prefix lsr (32 - key_widths.(level))) land ((1 lsl key_widths.(level)) - 1)

  (* All covered slots of [plen] at its own level: contiguous. *)
  let cone level prefix plen =
    let span = 1 lsl (key_widths.(level) - plen) in
    (slot_of level prefix land lnot (span - 1), span)

  let bkey level slot = B.of_int ~width:key_widths.(level) slot

  let pack_own ~plen ~gw ~port = (plen lsl 41) lor (gw lsl 8) lor port
  let own_plen v = v lsr 41
  let own_gw v = (v lsr 8) land 0xffffffff
  let own_port v = v land 0xff

  (* Re-derive and write the route word for one slot from the owner and
     spill tables — the single funnel for all store mutations. *)
  let emit t level slot =
    if t.muted then ()
    else begin
      let spill = level < 2 && Pages.get t.spills.(level) slot > 0 in
      let v = Pages.get t.own.(level) slot in
      if v >= 0 then
        Sdata.set t.stores.(level) (bkey level slot)
          (route_word ~spill ~gw:(own_gw v) ~port:(own_port v))
      else if spill then
        Sdata.set t.stores.(level) (bkey level slot)
          (route_word ~spill:true ~gw:0 ~port:(-1))
      else Sdata.remove t.stores.(level) (bkey level slot)
    end

  (* Write every live slot (owned or spill-marked) once. Used after a
     muted bulk load: a million-route build touches each covered slot
     many times as overlapping cones shadow each other, but only the
     final word per slot needs to reach the store. The stores are fresh
     and empty here (no consumer can have cached a view, each slot is
     visited once), so this takes the probe- and notification-free
     [preload_fresh] path. *)
  let flush t =
    Array.iteri
      (fun lv (own : Pages.t) ->
        let store = t.stores.(lv) in
        let spills : Pages.t =
          if lv < 2 then t.spills.(lv) else Hashtbl.create 1
        in
        Hashtbl.iter
          (fun idx a ->
            let sp = Hashtbl.find_opt spills idx in
            Array.iteri
              (fun o v ->
                if v >= 0 then
                  let spill =
                    match sp with Some b -> b.(o) > 0 | None -> false
                  in
                  Sdata.preload_fresh_int store
                    ((idx lsl 8) lor o)
                    (route_word ~spill ~gw:(own_gw v) ~port:(own_port v)))
              a)
          own;
        (* spill-marked slots with no owner of their own *)
        let spill_word = route_word ~spill:true ~gw:0 ~port:(-1) in
        Hashtbl.iter
          (fun idx b ->
            let ow = Hashtbl.find_opt own idx in
            Array.iteri
              (fun o n ->
                if
                  n > 0
                  && (match ow with Some a -> a.(o) < 0 | None -> true)
                then
                  Sdata.preload_fresh_int store ((idx lsl 8) lor o) spill_word)
              b)
          spills)
      t.own

  let bump t level slot delta =
    let n = max 0 (Pages.get t.spills.(level) slot) in
    let n' = n + delta in
    if n' < 0 then invalid_arg "Fib: spill underflow";
    Pages.set t.spills.(level) slot (if n' = 0 then -1 else n');
    (* Only the 0 <-> nonzero transitions change the emitted word. *)
    if (n = 0) <> (n' = 0) then emit t level slot

  let insert t (r : route) =
    if r.plen < 0 || r.plen > 32 then
      invalid_arg "RadixIPLookup: prefix length must be 0..32";
    if r.port < 0 || r.port >= t.nports then
      invalid_arg "RadixIPLookup: route port out of range";
    let key = rkey r.prefix r.plen in
    let existed = Hashtbl.mem t.routes key in
    Hashtbl.replace t.routes key r;
    let lv = level_of r.plen in
    if not existed then begin
      if lv >= 1 then bump t 0 (slot_of 0 r.prefix) 1;
      if lv = 2 then bump t 1 (slot_of 1 r.prefix) 1
    end;
    let base, span = cone lv r.prefix r.plen in
    let packed = pack_own ~plen:r.plen ~gw:r.gw ~port:r.port in
    (* page-sized chunks: a cone shorter than a page fits in one *)
    let rec sweep i remaining =
      if remaining > 0 then begin
        let a = Pages.page t.own.(lv) i in
        let off = i land 0xff in
        let n = min remaining (256 - off) in
        for j = 0 to n - 1 do
          let v = Array.unsafe_get a (off + j) in
          if v < 0 || own_plen v <= r.plen then begin
            Array.unsafe_set a (off + j) packed;
            emit t lv (i + j)
          end
        done;
        sweep (i + n) (remaining - n)
      end
    in
    sweep base span

  let delete t ~prefix ~plen =
    if plen < 0 || plen > 32 then
      invalid_arg "RadixIPLookup: prefix length must be 0..32";
    let key = rkey prefix plen in
    if not (Hashtbl.mem t.routes key) then false
    else begin
      Hashtbl.remove t.routes key;
      let lv = level_of plen in
      if lv >= 1 then bump t 0 (slot_of 0 prefix) (-1);
      if lv = 2 then bump t 1 (slot_of 1 prefix) (-1);
      (* Fallback: longest registered shorter route of the same level
         covering the cone (shallower levels are consulted by the
         element's own miss logic, so they don't refill these slots). *)
      let rec probe l =
        if l < level_min.(lv) then None
        else
          match Hashtbl.find_opt t.routes (rkey prefix l) with
          | Some r -> Some r
          | None -> probe (l - 1)
      in
      let fb = probe (plen - 1) in
      let fbv =
        match fb with
        | Some r -> pack_own ~plen:r.plen ~gw:r.gw ~port:r.port
        | None -> -1
      in
      let base, span = cone lv prefix plen in
      let rec sweep i remaining =
        if remaining > 0 then begin
          let a = Pages.page t.own.(lv) i in
          let off = i land 0xff in
          let n = min remaining (256 - off) in
          for j = 0 to n - 1 do
            let v = Array.unsafe_get a (off + j) in
            if v >= 0 && own_plen v = plen then begin
              Array.unsafe_set a (off + j) fbv;
              emit t lv (i + j)
            end
          done;
          sweep (i + n) (remaining - n)
        end
      in
      sweep base span;
      true
    end

  (* Reference lookup mirroring the element's IR logic exactly. *)
  let lookup t addr =
    let word level slot =
      match Sdata.find t.stores.(level) (bkey level slot) with
      | Some w -> B.to_int_trunc w
      | None -> 0
    in
    let w16 = word 0 ((addr lsr 16) land 0xffff) in
    let final = ref w16 in
    if w16 land (1 lsl 40) <> 0 then begin
      let w24 = word 1 ((addr lsr 8) land 0xffffff) in
      if w24 land 0xff <> 0 then final := w24;
      if w24 land (1 lsl 40) <> 0 then begin
        let w32 = word 2 (addr land 0xffffffff) in
        if w32 land 0xff <> 0 then final := w32
      end
    end;
    let code = !final land 0xff in
    if code = 0 then None else Some ((!final lsr 8) land 0xffffffff, code - 1)

  let count t = Hashtbl.length t.routes
  let nports t = t.nports
  let store_ids t = Array.to_list (Array.map Sdata.id t.stores)

  (* Fibs indexed by the Static_data id of their stores, so a CLI that
     only holds a parsed pipeline can find the handle to mutate. *)
  let registry : (int, t) Hashtbl.t = Hashtbl.create 16

  let create ?nports routes =
    let np =
      List.fold_left (fun acc r -> max acc (r.port + 1)) 1 routes
    in
    let np = match nports with Some n -> max n np | None -> np in
    let size =
      (* pre-size the stores for bulk loads: covered slots outnumber
         routes a few times over, and int-key resizing is cheap but not
         free at millions of entries *)
      min 4_194_304 (max 64 (2 * List.length routes))
    in
    let t =
      {
        stores =
          Array.map
            (fun kw -> Sdata.create ~size ~key_width:kw ~val_width:48 ())
            key_widths;
        own = [| Pages.create (); Pages.create (); Pages.create () |];
        spills = [| Pages.create (); Pages.create () |];
        routes = Hashtbl.create (max 16 (List.length routes));
        nports = np;
        program = None;
        muted = false;
      }
    in
    t.muted <- true;
    List.iter (insert t) routes;
    t.muted <- false;
    flush t;
    Array.iter (fun s -> Hashtbl.replace registry (Sdata.id s) t) t.stores;
    t

  let of_program (p : Ir.program) =
    List.find_map
      (fun (d : Ir.store_decl) ->
        if d.kind = Ir.Static then Hashtbl.find_opt registry (Sdata.id d.init)
        else None)
      p.stores
end

let radix_program (fib : Fib.t) =
  match fib.Fib.program with
  | Some p -> p
  | None ->
    let nports = fib.Fib.nports in
    let b = Bld.create ~name:"RadixIPLookup" in
    Bld.set_nports b nports;
    List.iteri
      (fun level name ->
        Bld.declare_store b
          {
            Ir.store_name = name;
            key_width = Fib.key_widths.(level);
            val_width = 48;
            kind = Ir.Static;
            default = B.zero 48;
            init = fib.Fib.stores.(level);
          })
      [ "lpm16"; "lpm24"; "lpm32" ];
    let dst = Bld.load b ~off:(c16 16) ~n:4 in
  let hi16 = Bld.extract b ~hi:31 ~lo:16 (Ir.Reg dst) in
  let w16 = Bld.kv_read b ~store:"lpm16" ~key:(Ir.Reg hi16) ~val_width:48 in
  let final = Bld.reg b ~width:48 in
  Bld.instr b (Ir.Assign (final, Ir.Move (Ir.Reg w16)));
  let spill_bit16 = Bld.extract b ~hi:40 ~lo:40 (Ir.Reg w16) in
  let l24_blk = Bld.new_block b and decide_blk = Bld.new_block b in
  Bld.term b (Ir.Branch (Ir.Reg spill_bit16, l24_blk, decide_blk));
  (* Level 24: prefer its word when it has a route code; maybe descend. *)
  Bld.select b l24_blk;
  let hi24 = Bld.extract b ~hi:31 ~lo:8 (Ir.Reg dst) in
  let w24 = Bld.kv_read b ~store:"lpm24" ~key:(Ir.Reg hi24) ~val_width:48 in
  let code24 = Bld.extract b ~hi:7 ~lo:0 (Ir.Reg w24) in
  let has24 = Bld.cmp b Ir.Ne (Ir.Reg code24) (c8 0) in
  let pick24 =
    Bld.select_val b ~width:48 (Ir.Reg has24) (Ir.Reg w24) (Ir.Reg final)
  in
  Bld.instr b (Ir.Assign (final, Ir.Move (Ir.Reg pick24)));
  let spill_bit24 = Bld.extract b ~hi:40 ~lo:40 (Ir.Reg w24) in
  let l32_blk = Bld.new_block b in
  Bld.term b (Ir.Branch (Ir.Reg spill_bit24, l32_blk, decide_blk));
  (* Level 32: exact /32 word wins; a miss keeps the shallower pick. *)
  Bld.select b l32_blk;
  let w32 = Bld.kv_read b ~store:"lpm32" ~key:(Ir.Reg dst) ~val_width:48 in
  let has32 = Bld.cmp b Ir.Ne (Ir.Reg w32) (Ir.Const (B.zero 48)) in
  let pick32 =
    Bld.select_val b ~width:48 (Ir.Reg has32) (Ir.Reg w32) (Ir.Reg final)
  in
  Bld.instr b (Ir.Assign (final, Ir.Move (Ir.Reg pick32)));
  Bld.term b (Ir.Goto decide_blk);
  Bld.select b decide_blk;
  let clean =
    Bld.assign b ~width:48
      (Ir.Binop (Ir.And, Ir.Reg final, Ir.Const spill_mask))
  in
  let code = Bld.extract b ~hi:7 ~lo:0 (Ir.Reg clean) in
  let has_route = Bld.cmp b Ir.Ne (Ir.Reg code) (c8 0) in
  guard_or_drop b (Ir.Reg has_route);
  let gw = Bld.extract b ~hi:39 ~lo:8 (Ir.Reg clean) in
  Bld.instr b (Ir.Meta_set (Ir.W0, Ir.Reg gw));
  (* Dispatch on the port encoded in the route word. *)
  let rec dispatch p =
    if p >= nports then Bld.term b Ir.Drop
    else begin
      let hit = Bld.cmp b Ir.Eq (Ir.Reg code) (c8 (p + 1)) in
      let hit_blk = Bld.new_block b and next_blk = Bld.new_block b in
      Bld.term b (Ir.Branch (Ir.Reg hit, hit_blk, next_blk));
      Bld.select b hit_blk;
      Bld.term b (Ir.Emit p);
      Bld.select b next_blk;
      dispatch (p + 1)
    end
  in
  dispatch 0;
  let p = Bld.finish b in
  fib.Fib.program <- Some p;
  p

let radix_ip_lookup routes = radix_program (Fib.create routes)
