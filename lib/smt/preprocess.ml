(* Word-level preprocessing applied to a constraint conjunction before
   bit-blasting (STP-style). All passes preserve satisfiability, and
   every eliminated variable carries a completion binding so a model of
   the residual formula extends to a model of the original one. The
   solver re-validates the completed model against the original
   constraints, so a preprocessing bug can never smuggle in a bogus
   [Sat]; the [Unsat] direction is argued pass by pass below.

   Passes, iterated to fixpoint:

   - Conjunct splitting (equivalence-preserving): nested conjunctions
     and negated disjunctions are flattened; [concat hi lo = c] splits
     into per-part equalities. Splitting exposes more work to the later
     passes and lets [Term.and_]'s set-based dedup merge more conjuncts.

   - Equality substitution / constant propagation: a conjunct [x = t]
     with [x] a variable not occurring in [t] is dropped and [t] is
     substituted for [x] everywhere else (one variable at a time —
     simultaneous selection would be unsound for cyclic definition sets
     like [x = y /\ y = x+1]). When [t] is a constant this is constant
     propagation, and the smart constructors fold downstream. The
     rewritten formula is equisatisfiable: any model of it extends to
     the original by setting [x := eval t].

   - Unconstrained-variable elimination: a variable occurring in exactly
     one conjunct whose shape is satisfiable for *every* value of the
     other side can be dropped: [x <> t] (pick [x := t + 1], sound for
     any width since t+1 <> t mod 2^w), [x <= t] (pick [x := 0]) and
     [t <= x] (pick [x := t]).

   - Slicing: the residual conjuncts split into connected components by
     shared variables. A component all of whose conjuncts already hold
     under the all-defaults model (every variable zero / false) is
     dropped and its variables are pinned to the defaults: any model of
     the remaining components extends by exactly those defaults, and
     conversely dropping conjuncts can only relax the formula. This is
     the sound satisfiability analogue of cone-of-influence slicing:
     components disconnected from any conjunct that actually constrains
     its variables never reach the SAT solver. *)

module B = Vdp_bitvec.Bitvec
module T = Term

type binding =
  | Def of string * Term.t  (** the variable takes [t]'s value *)
  | Diseq of string * Term.t
      (** the variable takes [t]'s value + 1 (bv) / negation (bool) *)

(* One entry per elimination, oldest first, carrying enough context for
   an independent replay: the certificate checker ([Vdp_cert]) re-runs
   every stage from the original conjunction, re-checking each stage's
   side conditions (the dropped definition really is a conjunct, the
   eliminated variable really occurs nowhere else, sliced components
   really are disjoint) with its own pattern matching, and then demands
   the replayed residual equals the one that was blasted. *)
type trace_step =
  | T_def of string * Term.t * Term.t
      (** [T_def (x, rhs, c)]: conjunct [c] defined [x = rhs]; [c] was
          dropped and [rhs] substituted for [x] everywhere else *)
  | T_unconstrained of binding * Term.t
      (** the conjunct was the only one mentioning the bound variable
          and is satisfiable for every value of its other side *)
  | T_slice of Term.t list
      (** connected components, already satisfied by the all-defaults
          model, dropped wholesale *)

type result = {
  conjuncts : Term.t list;  (** residual conjuncts, preprocessed *)
  key : Term.t;  (** [Term.and_ conjuncts] — cache / refutation key *)
  bindings : binding list;  (** newest elimination first *)
  trace : trace_step list;  (** elimination replay script, oldest first *)
  eliminated : int;  (** equality + unconstrained eliminations *)
  sliced : int;  (** conjuncts dropped by component slicing *)
}

let split_list terms =
  match (T.and_ terms).T.node with
  | T.And ts -> Array.to_list ts
  | T.True -> []
  | _ -> ( match terms with [ t ] -> [ t ] | _ -> [ T.and_ terms ])

let identity terms =
  let key = T.and_ terms in
  let conjuncts = split_list terms in
  { conjuncts; key; bindings = []; trace = []; eliminated = 0; sliced = 0 }

(* {1 Conjunct splitting} *)

let is_const (t : T.t) = match t.T.node with T.Bv_const _ -> true | _ -> false

let rec split_conjunct (t : T.t) acc =
  match t.T.node with
  | T.True -> acc
  | T.And ts -> Array.fold_left (fun acc c -> split_conjunct c acc) acc ts
  | T.Not inner -> (
    match inner.T.node with
    | T.Or ts ->
      Array.fold_left (fun acc c -> split_conjunct (T.not_ c) acc) acc ts
    | _ -> t :: acc)
  | T.Eq (a, b) -> split_eq t a b acc
  | _ -> t :: acc

and split_eq orig a b acc =
  (* [concat hi lo = c]  <->  [hi = c_hi /\ lo = c_lo]; the extracts on
     the constant side fold immediately. *)
  let split_concat hi lo c acc =
    let w = T.width c and wlo = T.width lo in
    split_conjunct
      (T.eq hi (T.extract ~hi:(w - 1) ~lo:wlo c))
      (split_conjunct (T.eq lo (T.extract ~hi:(wlo - 1) ~lo:0 c)) acc)
  in
  match (a.T.node, b.T.node) with
  | T.Concat (hi, lo), _ when is_const b -> split_concat hi lo b acc
  | _, T.Concat (hi, lo) when is_const a -> split_concat hi lo a acc
  | T.Concat (h1, l1), T.Concat (h2, l2) when T.width l1 = T.width l2 ->
    split_conjunct (T.eq h1 h2) (split_conjunct (T.eq l1 l2) acc)
  | _ -> orig :: acc

let resplit conjs = List.fold_left (fun acc t -> split_conjunct t acc) [] conjs

(* {1 Variable occurrence bookkeeping} *)

(* Free-variable names per term, memoised on the hash-consed id: the
   occurrence bookkeeping below asks for the same conjunct's variables
   several times per round, and the incremental solver re-presents the
   same (shared) conjuncts across thousands of queries. Entries are
   permanent, like the hash-cons table itself. *)
let names_memo : (int, string list) Hashtbl.t = Hashtbl.create 4096

let var_names (t : T.t) =
  match Hashtbl.find_opt names_memo t.T.id with
  | Some ns -> ns
  | None ->
    let ns = List.map fst (T.free_vars t) in
    Hashtbl.add names_memo t.T.id ns;
    ns

let occurs name t = List.mem name (var_names t)

(* How many conjuncts mention each variable (distinct per conjunct). *)
let occurrence_counts conjs =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun c ->
      List.iter
        (fun n ->
          Hashtbl.replace counts n (1 + Option.value ~default:0 (Hashtbl.find_opt counts n)))
        (var_names c))
    conjs;
  counts

(* {1 Equality substitution} *)

let as_var (t : T.t) =
  match t.T.node with
  | T.Bv_var (n, _) | T.Bool_var n -> Some n
  | _ -> None

(* [Some (name, rhs)] if the conjunct defines a variable. *)
let as_definition (c : T.t) =
  match c.T.node with
  | T.Bool_var n -> Some (n, T.tru)
  | T.Not a -> (
    match a.T.node with T.Bool_var n -> Some (n, T.fls) | _ -> None)
  | T.Eq (a, b) -> (
    match (as_var a, as_var b) with
    | Some n, _ when not (occurs n b) -> Some (n, b)
    | _, Some n when not (occurs n a) -> Some (n, a)
    | _ -> None)
  | _ -> None

(* {1 Unconstrained-variable elimination} *)

(* [Some binding] if dropping [c] is sound given [c] is the only
   conjunct mentioning the bound variable. *)
let as_unconstrained counts (c : T.t) =
  let single n = Hashtbl.find_opt counts n = Some 1 in
  match c.T.node with
  | T.Not a -> (
    match a.T.node with
    | T.Eq (x, t) -> (
      match (as_var x, as_var t) with
      | Some n, _ when single n && not (occurs n t) -> Some (Diseq (n, t))
      | _, Some n when single n && not (occurs n x) -> Some (Diseq (n, x))
      | _ -> None)
    | _ -> None)
  | T.Bv_cmp (T.Ule, x, t) -> (
    match as_var x with
    | Some n when single n && not (occurs n t) ->
      Some (Def (n, T.bv (B.zero (T.width x))))
    | _ -> (
      match as_var t with
      | Some n when single n && not (occurs n x) -> Some (Def (n, x))
      | _ -> None))
  | _ -> None

(* {1 Component slicing} *)

let slice conjs =
  let arr = Array.of_list conjs in
  let n = Array.length arr in
  let parent = Array.init n Fun.id in
  let rec find i = if parent.(i) = i then i else (parent.(i) <- find parent.(i); parent.(i)) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  let owner = Hashtbl.create 64 in
  Array.iteri
    (fun i c ->
      List.iter
        (fun name ->
          match Hashtbl.find_opt owner name with
          | Some j -> union i j
          | None -> Hashtbl.add owner name i)
        (var_names c))
    arr;
  (* A component is droppable iff every conjunct in it holds under the
     all-defaults model (zero / false everywhere). *)
  let defaults = Model.create () in
  let droppable = Hashtbl.create 8 in
  Array.iteri
    (fun i c ->
      let r = find i in
      let ok =
        Option.value ~default:true (Hashtbl.find_opt droppable r)
        && Eval.eval_bool defaults c
      in
      Hashtbl.replace droppable r ok)
    arr;
  let kept = ref [] and dropped = ref [] and bindings = ref [] in
  Array.iteri
    (fun i c ->
      if Hashtbl.find droppable (find i) then begin
        dropped := c :: !dropped;
        List.iter
          (fun (name, sort) ->
            let dflt =
              if Sort.is_bool sort then T.fls
              else T.bv (B.zero (Sort.width sort))
            in
            bindings := Def (name, dflt) :: !bindings)
          (T.free_vars c)
      end
      else kept := c :: !kept)
    arr;
  (List.rev !kept, List.rev !dropped, !bindings)

(* {1 The driver} *)

let max_rounds = 10_000

let run terms : result =
  let conjs = ref (resplit (split_list terms)) in
  let bindings = ref [] in
  let trace = ref [] in
  let eliminated = ref 0 in
  let contradiction () = List.exists T.is_false !conjs in
  (* Eliminate one definition at a time until none (or a contradiction)
     remains. *)
  let rounds = ref 0 in
  let changed = ref true in
  while !changed && not (contradiction ()) && !rounds < max_rounds do
    incr rounds;
    changed := false;
    (* Equality substitution. *)
    let rec pick_def seen = function
      | [] -> None
      | c :: rest -> (
        match as_definition c with
        | Some (n, rhs) -> Some (n, rhs, c, List.rev_append seen rest)
        | None -> pick_def (c :: seen) rest)
    in
    (match pick_def [] !conjs with
    | Some (n, rhs, c, rest) ->
      let subst v = if String.equal v n then Some rhs else None in
      conjs := resplit (List.map (T.substitute subst) rest);
      bindings := Def (n, rhs) :: !bindings;
      trace := T_def (n, rhs, c) :: !trace;
      incr eliminated;
      changed := true
    | None ->
      (* Unconstrained elimination: no definitions left, so occurrence
         counts are stable within this round. *)
      let counts = occurrence_counts !conjs in
      let rec drop_unconstrained = function
        | [] -> []
        | c :: rest -> (
          match as_unconstrained counts c with
          | Some b ->
            (* Invalidate the dropped conjunct's variables so two
               conjuncts sharing a variable cannot both be dropped in
               one sweep on a stale count. *)
            List.iter (fun v -> Hashtbl.replace counts v max_int) (var_names c);
            bindings := b :: !bindings;
            trace := T_unconstrained (b, c) :: !trace;
            incr eliminated;
            changed := true;
            drop_unconstrained rest
          | None -> c :: drop_unconstrained rest)
      in
      conjs := drop_unconstrained !conjs)
  done;
  if contradiction () then
    { conjuncts = [ T.fls ]; key = T.fls; bindings = !bindings;
      trace = List.rev !trace; eliminated = !eliminated; sliced = 0 }
  else begin
    let kept, dropped, slice_bindings = slice !conjs in
    bindings := slice_bindings @ !bindings;
    if dropped <> [] then trace := T_slice dropped :: !trace;
    let key = T.and_ kept in
    let conjuncts =
      match key.T.node with
      | T.And ts -> Array.to_list ts
      | T.True -> []
      | _ -> [ key ]
    in
    { conjuncts; key; bindings = !bindings; trace = List.rev !trace;
      eliminated = !eliminated; sliced = List.length dropped }
  end

(* {1 Model completion}

   Bindings are recorded newest elimination first, and a binding's
   right-hand side can only mention variables that were still live when
   it was recorded — i.e. variables eliminated *later* (earlier in the
   list) or surviving into the residual formula. Evaluating newest
   first therefore sees every dependency already pinned. *)

let complete res (m : Model.t) : Model.t =
  let m = Model.copy m in
  List.iter
    (fun b ->
      match b with
      | Def (name, t) ->
        if Sort.is_bool (T.sort t) then
          Model.set_bool m name (Eval.eval_bool m t)
        else Model.set_bv m name (Eval.eval_bv m t)
      | Diseq (name, t) ->
        if Sort.is_bool (T.sort t) then
          Model.set_bool m name (not (Eval.eval_bool m t))
        else
          let v = Eval.eval_bv m t in
          Model.set_bv m name (B.add v (B.one (B.width v))))
    res.bindings;
  m
