(** Relational queries over a fabric: reach, isolate, temporal.

    Each query composes fabric paths ({!Relation.enumerate}) under boot
    semantics ({!Relation.ground_boot}) and decides them with the
    shared solver stack (query cache, word-level preprocessing,
    optional proof certification of every refutation). Claims are never
    taken from the solver alone:

    - A satisfiable breach/reach answer must {e replay}: the model's
      packet(s) are pushed through the actual wired runtimes
      ({!Fabric.push}) from boot state and the flow is tagged confirmed
      only if the concrete run ends where the symbolic path claimed.
    - An unsatisfiable answer can be certified through
      {!Vdp_cert.Certificate}, upgrading [Holds] to a checked proof.

    Query depth is bounded at two packets: depth 1 is a single packet
    from a cold (boot) fabric, depth 2 composes a renamed "prime"
    packet first — enough to express the NAT temporal property ("an
    inbound flow is answered only after an outbound packet"), which is
    the [Temporal] query: cold-unreachable at depth 1 {e and}
    reachable, replay-confirmed, at depth 2. *)

module B = Vdp_bitvec.Bitvec
module T = Vdp_smt.Term
module Solver = Vdp_smt.Solver
module S = Vdp_symbex.Sstate
module Engine = Vdp_symbex.Engine
module Ir = Vdp_ir.Types
module P = Vdp_packet.Packet
module Config = Vdp_click.Config
module Witness = Vdp_verif.Witness
module Summaries = Vdp_verif.Summaries
module Compose = Vdp_verif.Compose
module Cert = Vdp_cert.Certificate

type config = {
  engine : Engine.config;
  solver_budget : int;
  max_paths : int;
  cache : bool;
  preprocess : bool;
  certify : bool;
}

let default_config =
  {
    engine = Engine.default_config;
    solver_budget = 2_000_000;
    max_paths = 200_000;
    cache = true;
    preprocess = true;
    certify = false;
  }

(** A concrete packet flow witnessing a query answer. [w_prime] is the
    first packet of a depth-2 flow (with the ingress it entered at). *)
type flow = {
  w_prime : (string * P.t) option;
  w_ingress : string;
  w_packet : P.t;
  w_end : string;  (** where the concrete replay ended *)
  w_confirmed : bool;
  w_note : string option;  (** divergence point when unconfirmed *)
}

type verdict =
  | Holds of flow option
      (** property established; positive queries (reach, temporal)
          carry their replay-confirmed witness flow *)
  | Fails of flow list * string
      (** counterexample flows (isolate breaches, temporal cold
          reaches), or a liveness failure with an empty list *)
  | Unknown of string

type report = {
  verdict : verdict;
  prop : Config.topo_prop;
  paths : int;  (** composite states enumerated *)
  checks : int;  (** solver decisions *)
  sat : int;
  depth : int;  (** packets composed: 1 or 2 *)
  time : float;
  cert : Cert.summary option;
}

let prop_to_string = function
  | Config.Reach (a, b) -> Printf.sprintf "reach %s -> %s" a b
  | Config.Isolate (a, b) -> Printf.sprintf "isolate %s -> %s" a b
  | Config.Temporal (a, b) -> Printf.sprintf "temporal %s -> %s" a b

let verdict_to_string = function
  | Holds None -> "holds"
  | Holds (Some _) -> "holds (witness confirmed)"
  | Fails (flows, reason) ->
    let confirmed =
      List.length (List.filter (fun f -> f.w_confirmed) flows)
    in
    if flows = [] then Printf.sprintf "fails (%s)" reason
    else
      Printf.sprintf "fails: %d flow(s), %d replay-confirmed (%s)"
        (List.length flows) confirmed reason
  | Unknown msg -> Printf.sprintf "unknown (%s)" msg

(** Every flow of a failing verdict replayed Confirmed (vacuously true
    for the other verdicts) — the trust gate for breach reports. *)
let all_confirmed r =
  match r.verdict with
  | Fails (flows, _) -> List.for_all (fun f -> f.w_confirmed) flows
  | _ -> true

let cert_complete = function
  | None -> true
  | Some (s : Cert.summary) ->
    s.Cert.failed = 0 && s.Cert.certified = s.Cert.attempted

(* {1 Shared query machinery} *)

type qctx = {
  rel : Relation.t;
  cfg : config;
  cert : Cert.collector option;
  mutable npaths : int;
  mutable checks : int;
  mutable sat : int;
  mutable unknowns : int;
  mutable budget_hit : bool;
}

let base_assume cfg =
  [
    T.ule (T.var S.len_var 16)
      (T.bv_int ~width:16 cfg.engine.Engine.max_len);
  ]

let make_qctx rel cfg =
  {
    rel;
    cfg;
    cert =
      (if cfg.certify then
         Some
           (Cert.create_collector ~preprocess:cfg.preprocess
              ~max_conflicts:cfg.solver_budget ())
       else None);
    npaths = 0;
    checks = 0;
    sat = 0;
    unknowns = 0;
    budget_hit = false;
  }

(* All plausible fabric paths from one ingress (any end). *)
let paths_from q ingress =
  let acc = ref [] in
  (try
     q.npaths <-
       q.npaths
       + Relation.enumerate q.rel ~ingress ~assume:(base_assume q.cfg)
           ~max_paths:q.cfg.max_paths (fun fp -> acc := fp :: !acc)
   with Relation.Path_budget -> q.budget_hit <- true);
  List.rev !acc

let ends_at_egress target (fp : Relation.fpath) =
  match fp.Relation.fp_end with
  | Relation.E_egress (pi, e) -> (pi, e) = target
  | _ -> false

(* Decide one (possibly primed) attack path; certify refutations. *)
let decide q ?prime ~attack () =
  let terms, deps = Relation.query_terms q.rel ?prime ~attack () in
  let cache = if q.cfg.cache then Some Solver.shared_cache else None in
  q.checks <- q.checks + 1;
  match
    Solver.check ?cache ~deps ~preprocess:q.cfg.preprocess
      ~max_conflicts:q.cfg.solver_budget terms
  with
  | Solver.Sat m ->
    q.sat <- q.sat + 1;
    Some m
  | Solver.Unsat ->
    (match q.cert with
    | Some col ->
      ignore (Cert.certify_refutation col terms : (Cert.t, string) result)
    | None -> ());
    None
  | Solver.Unknown ->
    q.unknowns <- q.unknowns + 1;
    None

let ends_match (fe : Relation.fend) (ff : Fabric.ffinal) =
  match (fe, ff) with
  | Relation.E_egress (p, e), Fabric.F_egress (p', e') -> p = p' && e = e'
  | Relation.E_drop (p, n), Fabric.F_drop (p', n') -> p = p' && n = n'
  | Relation.E_crash (p, n, _), Fabric.F_crash (p', n', _) ->
    p = p' && n = n'
  | _ -> false

let labeled_trail fab (fp : Relation.fpath) =
  List.map
    (fun (pi, n) -> ((Fabric.pipe fab pi).Fabric.p_name, n))
    fp.Relation.fp_trail

(* Replay a model on fresh wired runtimes from boot state: prime packet
   first (when present), then the attack packet; both must end exactly
   where their symbolic paths claim. *)
let replay_flow q ~model ?prime ~attack ~ingress_name ~ingress () =
  let fab = q.rel.Relation.fab in
  let max_len = q.cfg.engine.Engine.max_len in
  let fi = Fabric.instantiate fab in
  let note = ref None in
  let push_and_check (fp : Relation.fpath) (ing : int * int) pkt =
    let pipe, in_port = ing in
    let fr = Fabric.push fi ~pipe ~in_port pkt in
    let ok = ends_match fp.Relation.fp_end fr.Fabric.f_final in
    if not ok && !note = None then begin
      let d =
        Witness.divergence_steps (labeled_trail fab fp) fr.Fabric.f_steps
      in
      note :=
        Some
          (Printf.sprintf "replay ended at %s%s"
             (Fabric.ffinal_to_string fab fr.Fabric.f_final)
             (match d with Some d -> "; " ^ d | None -> ""))
    end;
    (ok, fr)
  in
  let prime_res =
    match prime with
    | None -> None
    | Some (pr_ing_name, pr_ing, pr) ->
      let pkt = Relation.prime_witness_packet model ~max_len in
      let ok, _ = push_and_check pr pr_ing (P.clone pkt) in
      Some (pr_ing_name, pkt, ok)
  in
  let pkt = Vdp_verif.Compose.witness_packet model ~max_len in
  let ok, fr = push_and_check attack ingress (P.clone pkt) in
  let confirmed =
    ok && match prime_res with Some (_, _, pok) -> pok | None -> true
  in
  {
    w_prime = Option.map (fun (n, p, _) -> (n, p)) prime_res;
    w_ingress = ingress_name;
    w_packet = pkt;
    w_end = Fabric.ffinal_to_string fab fr.Fabric.f_final;
    w_confirmed = confirmed;
    w_note = !note;
  }

(* Prime candidates: all paths from every ingress that write private
   state, labeled with their ingress. *)
let prime_candidates q =
  List.concat_map
    (fun (name, ing) ->
      List.filter_map
        (fun fp ->
          if Relation.writes_of_path fp <> [] then Some (name, ing, fp)
          else None)
        (paths_from q ing))
    q.rel.Relation.fab.Fabric.ingresses

let incompleteness q =
  if q.budget_hit then Some "path budget exhausted"
  else if q.unknowns > 0 then
    Some (Printf.sprintf "%d solver answers unknown" q.unknowns)
  else if Relation.any_incomplete q.rel then
    Some "incomplete element summaries"
  else None

(* {1 The three queries} *)

(* Interval-plausible parse variants whose path condition is already
   unsatisfiable on its own (typically an offset-concretization variant
   contradicting an earlier header check) can never pair into a
   feasible two-packet flow; weed them out once before the quadratic
   depth-2 scans. Plain satisfiability of the path condition — no boot
   grounding, since a primed query replaces the cold store state. Not
   counted against the certificate collector: dropping a pair whose
   side is infeasible alone only removes unsatisfiable supersets. *)
let shape_feasible q (fp : Relation.fpath) =
  q.checks <- q.checks + 1;
  let cache = if q.cfg.cache then Some Solver.shared_cache else None in
  match
    Solver.check ?cache ~deps:fp.Relation.fp_st.Compose.static_deps
      ~preprocess:q.cfg.preprocess ~max_conflicts:q.cfg.solver_budget
      fp.Relation.fp_st.Compose.cond
  with
  | Solver.Sat _ -> true
  | Solver.Unsat -> false
  | Solver.Unknown ->
    q.unknowns <- q.unknowns + 1;
    true

(* Shared first stage: attack candidates from [a] ending at [b]. *)
let attack_candidates q a b =
  let ingress = Fabric.ingress q.rel.Relation.fab a in
  let target = Fabric.egress q.rel.Relation.fab b in
  (ingress, List.filter (ends_at_egress target) (paths_from q ingress))

(* Isolation: no packet from [a] may reach [b], cold or primed by one
   earlier packet from any ingress. All feasible flows are replayed and
   reported; refutations are certified when configured. *)
let run_isolate q a b =
  let ingress, attacks = attack_candidates q a b in
  let breaches = ref [] and depth = ref 1 in
  List.iter
    (fun attack ->
      match decide q ~attack () with
      | Some m ->
        breaches :=
          replay_flow q ~model:m ~attack ~ingress_name:a ~ingress ()
          :: !breaches
      | None -> ())
    attacks;
  (* Depth 2 only when depth 1 is clean: a cold breach already decides
     the verdict, and the bench gates want the cheapest witness. *)
  if !breaches = [] && attacks <> [] then begin
    depth := 2;
    let attacks = List.filter (shape_feasible q) attacks in
    let primes =
      List.filter (fun (_, _, pr) -> shape_feasible q pr) (prime_candidates q)
    in
    List.iter
      (fun attack ->
        List.iter
          (fun (pr_name, pr_ing, pr) ->
            if Relation.couples q.rel ~prime:pr ~attack then
              match decide q ~prime:pr ~attack () with
              | Some m ->
                breaches :=
                  replay_flow q ~model:m
                    ~prime:(pr_name, pr_ing, pr)
                    ~attack ~ingress_name:a ~ingress ()
                  :: !breaches
              | None -> ())
          primes)
      attacks
  end;
  let verdict =
    match (List.rev !breaches, incompleteness q) with
    | (_ :: _ as flows), _ -> Fails (flows, "isolation breached")
    | [], Some why -> Unknown why
    | [], None -> Holds None
  in
  (verdict, !depth)

(* Reachability: some packet from [a] reaches [b]; try cold first, then
   primed. The witness must replay-confirm to count. *)
let run_reach q a b =
  let ingress, attacks = attack_candidates q a b in
  let found = ref None and depth = ref 1 in
  let try_one ?prime attack =
    if !found = None then
      match
        decide q
          ?prime:(Option.map (fun (_, _, fp) -> fp) prime)
          ~attack ()
      with
      | Some m ->
        let f =
          replay_flow q ~model:m ?prime ~attack ~ingress_name:a ~ingress ()
        in
        if f.w_confirmed then found := Some f
      | None -> ()
  in
  List.iter (fun attack -> try_one attack) attacks;
  if !found = None && attacks <> [] then begin
    depth := 2;
    let attacks = List.filter (shape_feasible q) attacks in
    let primes =
      List.filter (fun (_, _, pr) -> shape_feasible q pr) (prime_candidates q)
    in
    List.iter
      (fun attack ->
        List.iter
          (fun (pr_name, pr_ing, pr) ->
            if Relation.couples q.rel ~prime:pr ~attack then
              try_one ~prime:(pr_name, pr_ing, pr) attack)
          primes)
      attacks
  end;
  let verdict =
    match (!found, incompleteness q) with
    | Some f, _ -> Holds (Some f)
    | None, Some why -> Unknown why
    | None, None -> Fails ([], "no feasible path")
  in
  (verdict, !depth)

(* Temporal: [b] unreachable from [a] on a cold fabric, and reachable
   (replay-confirmed) after one priming packet — the NAT property. *)
let run_temporal q a b =
  let ingress, attacks = attack_candidates q a b in
  let cold = ref [] in
  List.iter
    (fun attack ->
      match decide q ~attack () with
      | Some m ->
        cold :=
          replay_flow q ~model:m ~attack ~ingress_name:a ~ingress ()
          :: !cold
      | None -> ())
    attacks;
  if !cold <> [] then
    (Fails (List.rev !cold, "reachable from a cold fabric"), 1)
  else
    match incompleteness q with
    | Some why -> (Unknown why, 1)
    | None ->
      let attacks = List.filter (shape_feasible q) attacks in
      let primes =
        List.filter (fun (_, _, pr) -> shape_feasible q pr)
          (prime_candidates q)
      in
      let found = ref None in
      List.iter
        (fun attack ->
          List.iter
            (fun (pr_name, pr_ing, pr) ->
              if
                !found = None
                && Relation.couples q.rel ~prime:pr ~attack
              then
                match decide q ~prime:pr ~attack () with
                | Some m ->
                  let f =
                    replay_flow q ~model:m
                      ~prime:(pr_name, pr_ing, pr)
                      ~attack ~ingress_name:a ~ingress ()
                  in
                  if f.w_confirmed then found := Some f
                | None -> ())
            primes)
        attacks;
      (match (!found, incompleteness q) with
      | Some f, _ -> (Holds (Some f), 2)
      | None, Some why -> (Unknown why, 2)
      | None, None ->
        (Fails ([], "unreachable even after a priming packet"), 2))

let now () = Unix.gettimeofday ()

(** Run one declared property against a built relation. *)
let run ?(config = default_config) rel prop =
  let q = make_qctx rel config in
  let t0 = now () in
  let verdict, depth =
    match prop with
    | Config.Reach (a, b) -> run_reach q a b
    | Config.Isolate (a, b) -> run_isolate q a b
    | Config.Temporal (a, b) -> run_temporal q a b
  in
  {
    verdict;
    prop;
    paths = q.npaths;
    checks = q.checks;
    sat = q.sat;
    depth;
    time = now () -. t0;
    cert = Option.map Cert.summary q.cert;
  }

(* {1 Fabric crash-freedom} *)

(** Feasible crash ends from any ingress (headroom exhaustion included
    — {!Vdp_verif.Compose} threads the budget through every crossing),
    plus the worst-case instruction bound over all plausible paths. *)
type crash_report = {
  c_verdict : verdict;
  c_max_instrs : int;
  c_paths : int;
  c_cert : Cert.summary option;
}

let verify_crash ?(config = default_config) rel =
  let q = make_qctx rel config in
  let crashes = ref [] in
  let max_instrs = ref 0 in
  let npaths = ref 0 in
  List.iter
    (fun (name, ing) ->
      List.iter
        (fun (fp : Relation.fpath) ->
          incr npaths;
          max_instrs := max !max_instrs fp.Relation.fp_st.Compose.instr_hi;
          match fp.Relation.fp_end with
          | Relation.E_crash _ -> (
            match decide q ~attack:fp () with
            | Some m ->
              crashes :=
                replay_flow q ~model:m ~attack:fp ~ingress_name:name
                  ~ingress:ing ()
                :: !crashes
            | None -> ())
          | _ -> ())
        (paths_from q ing))
    rel.Relation.fab.Fabric.ingresses;
  let verdict =
    match (List.rev !crashes, incompleteness q) with
    | (_ :: _ as flows), _ -> Fails (flows, "crash reachable")
    | [], Some why -> Unknown why
    | [], None -> Holds None
  in
  {
    c_verdict = verdict;
    c_max_instrs = !max_instrs;
    c_paths = !npaths;
    c_cert = Option.map Cert.summary q.cert;
  }

(* {1 Sessions: memoized verdicts under config churn} *)

(* Pipes a property's queries can possibly read: link-closure from the
   relevant ingresses (all of them for isolate/temporal, whose depth-2
   stage composes primes from every ingress). *)
let reachable_pipes fab from_pipes =
  let n = Array.length fab.Fabric.pipes in
  let inset = Array.make n false in
  List.iter (fun pi -> inset.(pi) <- true) from_pipes;
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun (spi, _) (dpi, _) ->
        if inset.(spi) && not inset.(dpi) then begin
          inset.(dpi) <- true;
          changed := true
        end)
      fab.Fabric.links
  done;
  let out = ref [] in
  for pi = n - 1 downto 0 do
    if inset.(pi) then out := pi :: !out
  done;
  !out

let prop_pipes fab = function
  | Config.Reach (a, _) ->
    reachable_pipes fab [ fst (Fabric.ingress fab a) ]
  | Config.Isolate _ | Config.Temporal _ ->
    reachable_pipes fab
      (List.map (fun (_, (pi, _)) -> pi) fab.Fabric.ingresses)

(** A session memoizes per-property reports and revalidates them by
    probing the Step-1 summary cache, exactly like
    {!Vdp_verif.Verifier.session}: a report is reused only while every
    pipeline it can read has {e physically} unchanged summaries
    ({!Vdp_verif.Summaries.unchanged}). A [Static_data] mutation in one
    pipeline's tables invalidates that pipeline's summaries through the
    {!Vdp_verif.Staleness} listeners, which breaks the probe for
    exactly the verdicts whose queries could read the mutated slice —
    other pipelines' summaries, and verdicts not reading the mutated
    pipeline, stay warm. *)
type session = {
  s_fab : Fabric.t;
  s_config : config;
  mutable s_memo : (Config.topo_prop * ((int * Summaries.entry array) list * report)) list;
}

let session ?(config = default_config) fab =
  { s_fab = fab; s_config = config; s_memo = [] }

(** [(report, memoized)] — [memoized] is true when a previous report
    was revalidated without re-querying. *)
let query (s : session) prop =
  let rel = Relation.build ~config:s.s_config.engine s.s_fab in
  match List.assoc_opt prop s.s_memo with
  | Some (probes, r)
    when List.for_all
           (fun (pi, prev) ->
             Summaries.unchanged prev rel.Relation.summaries.(pi))
           probes ->
    (r, true)
  | _ ->
    let r = run ~config:s.s_config rel prop in
    let probes =
      List.map
        (fun pi -> (pi, rel.Relation.summaries.(pi)))
        (prop_pipes s.s_fab prop)
    in
    s.s_memo <-
      (prop, (probes, r)) :: List.remove_assoc prop s.s_memo;
    (r, false)
