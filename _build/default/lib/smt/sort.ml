(** Term sorts: booleans and fixed-width bit vectors. *)

type t =
  | Bool
  | Bv of int  (** width in bits, [>= 1] *)

let equal a b =
  match (a, b) with
  | Bool, Bool -> true
  | Bv w1, Bv w2 -> w1 = w2
  | (Bool | Bv _), _ -> false

let width = function
  | Bv w -> w
  | Bool -> invalid_arg "Sort.width: Bool has no width"

let is_bool = function Bool -> true | Bv _ -> false

let pp fmt = function
  | Bool -> Format.pp_print_string fmt "Bool"
  | Bv w -> Format.fprintf fmt "Bv%d" w
