lib/ir/types.ml: Array Format Vdp_bitvec
