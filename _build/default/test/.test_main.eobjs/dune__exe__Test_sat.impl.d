test/test_sat.ml: Alcotest Array Fun List Printf QCheck QCheck_alcotest String Vdp_smt
