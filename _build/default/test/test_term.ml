(* Smart-constructor normalisation, substitution and traversal. *)

module T = Vdp_smt.Term
module B = Vdp_bitvec.Bitvec

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let teq a b = check_bool "term equal" true (T.equal a b)

let x = T.var "x" 8
let y = T.var "y" 8
let c n = T.bv_int ~width:8 n

let tests =
  [
    Alcotest.test_case "hash-consing shares" `Quick (fun () ->
        check_bool "same node same term" true
          (T.equal (T.add x y) (T.add x y));
        check_bool "ids equal" true ((T.add x y).T.id = (T.add x y).T.id));
    Alcotest.test_case "constant folding" `Quick (fun () ->
        teq (c 5) (T.add (c 2) (c 3));
        teq (c 6) (T.mul (c 2) (c 3));
        teq T.tru (T.ult (c 2) (c 3));
        teq T.fls (T.ult (c 3) (c 3)));
    Alcotest.test_case "identity rewrites" `Quick (fun () ->
        teq x (T.add x (c 0));
        teq x (T.add (c 0) x);
        teq x (T.mul x (c 1));
        teq (c 0) (T.mul x (c 0));
        teq (c 0) (T.sub x x);
        teq (c 0) (T.bxor x x);
        teq x (T.band x x);
        teq x (T.bor x (c 0));
        teq x (T.shl x (c 0)));
    Alcotest.test_case "boolean normalisation" `Quick (fun () ->
        let p = T.bool_var "p" in
        teq p (T.and_ [ T.tru; p ]);
        teq T.fls (T.and_ [ p; T.fls ]);
        teq T.fls (T.and_ [ p; T.not_ p ]);
        teq T.tru (T.or_ [ p; T.not_ p ]);
        teq p (T.and_ [ p; p ]);
        teq p (T.not_ (T.not_ p)));
    Alcotest.test_case "and flattens" `Quick (fun () ->
        let p = T.bool_var "p" and q = T.bool_var "q" and r = T.bool_var "r" in
        teq (T.and_ [ p; q; r ]) (T.and_ [ T.and_ [ p; q ]; r ]));
    Alcotest.test_case "eq is commutative (normalised)" `Quick (fun () ->
        teq (T.eq x y) (T.eq y x);
        teq T.tru (T.eq x x));
    Alcotest.test_case "ite simplification" `Quick (fun () ->
        teq x (T.ite T.tru x y);
        teq y (T.ite T.fls x y);
        teq x (T.ite (T.bool_var "p") x x));
    Alcotest.test_case "extract composition" `Quick (fun () ->
        let v = T.var "v" 32 in
        let inner = T.extract ~hi:23 ~lo:8 v in
        teq (T.extract ~hi:15 ~lo:8 v) (T.extract ~hi:7 ~lo:0 inner));
    Alcotest.test_case "extract over concat" `Quick (fun () ->
        let cc = T.concat x y in
        teq y (T.extract ~hi:7 ~lo:0 cc);
        teq x (T.extract ~hi:15 ~lo:8 cc));
    Alcotest.test_case "extract over zext" `Quick (fun () ->
        let z = T.zext 16 x in
        teq x (T.extract ~hi:7 ~lo:0 z);
        teq (T.bv_int ~width:8 0) (T.extract ~hi:15 ~lo:8 z));
    Alcotest.test_case "zext/sext identity at same width" `Quick (fun () ->
        teq x (T.zext 8 x);
        teq x (T.sext 8 x));
    Alcotest.test_case "free_vars" `Quick (fun () ->
        let t = T.and_ [ T.ult x y; T.eq x (c 3); T.bool_var "p" ] in
        check_int "three vars" 3 (List.length (T.free_vars t)));
    Alcotest.test_case "substitute" `Quick (fun () ->
        let t = T.add x y in
        let t' =
          T.substitute (fun n -> if n = "x" then Some (c 1) else None) t
        in
        teq (T.add (c 1) y) t';
        let t'' =
          T.substitute
            (fun n ->
              if n = "x" then Some (c 1)
              else if n = "y" then Some (c 2)
              else None)
            t
        in
        teq (c 3) t'');
    Alcotest.test_case "rename_vars" `Quick (fun () ->
        let t = T.add x y in
        let t' = T.rename_vars (fun n -> n ^ "!1") t in
        teq (T.add (T.var "x!1" 8) (T.var "y!1" 8)) t');
    Alcotest.test_case "size counts distinct subterms" `Quick (fun () ->
        (* add(x, x) = {x, add} = 2 distinct nodes *)
        check_int "shared" 2 (T.size (T.add x x)));
    Alcotest.test_case "width checks raise" `Quick (fun () ->
        let wide = T.var "w" 16 in
        Alcotest.check_raises "add width mismatch"
          (Invalid_argument "Term.binop: sort mismatch") (fun () ->
            ignore (T.add x wide)));
  ]
