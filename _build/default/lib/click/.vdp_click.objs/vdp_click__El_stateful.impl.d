lib/click/el_stateful.ml: El_util Vdp_bitvec Vdp_ir
