(** Step 1 driver: per-element symbolic execution, cached by element
    class + configuration. Akin to compositional test generation, each
    distinct element is symbexed exactly once no matter how many times
    or where it appears in pipelines.

    The cache is safe to share across domains: lookup and insert happen
    atomically under the cache's lock, and a key that is being symbexed
    by one worker is marked {e in flight} so that concurrent requests
    for the same key block on the condition variable instead of running
    the (expensive) symbolic execution a second time. The same
    discipline also fixes the sequential-era latent bug where a
    re-entrant or interleaved [summarize] could double-run symbex
    between the unguarded lookup and insert. *)

module B = Vdp_bitvec.Bitvec
module Engine = Vdp_symbex.Engine
module Element = Vdp_click.Element

type entry = {
  result : Engine.result;
  time : float;  (** seconds spent symbexing this element *)
}

type cache = {
  tbl : (string, entry) Hashtbl.t;
  lock : Mutex.t;
  ready : Condition.t;  (* signalled when an in-flight key lands *)
  in_flight : (string, unit) Hashtbl.t;
  mutable epoch : int;
      (* bumped by every static-state invalidation sweep; an in-flight
         symbex that straddles a sweep must not land a possibly-mixed
         entry (it read contents both before and after the mutation) *)
  mutable invalidated : int;  (* entries dropped by invalidation *)
}

(* Every cache ever created, so a store mutation can sweep them all;
   caches are few and long-lived. *)
let all_caches : cache list ref = ref []
let all_caches_lock = Mutex.create ()

let create_cache () : cache =
  let c =
    {
      tbl = Hashtbl.create 32;
      lock = Mutex.create ();
      ready = Condition.create ();
      in_flight = Hashtbl.create 4;
      epoch = 0;
      invalidated = 0;
    }
  in
  Mutex.lock all_caches_lock;
  all_caches := c :: !all_caches;
  Mutex.unlock all_caches_lock;
  c

(* The default, process-wide cache. Callers that need isolation pass
   their own [~cache] instead of mutating this one; each cache carries
   its own lock, so isolation keeps working under parallelism. *)
let cache : cache = create_cache ()

(* Drop the entries whose segments baked in the mutated (store, key)
   slice — the element re-symbexes against current contents on its next
   [summarize]. Always bumps the epoch: a sweep means contents changed,
   and any in-flight computation may have observed both versions. *)
let invalidate_static ?(cache = cache) ~sid ~key () =
  Mutex.lock cache.lock;
  cache.epoch <- cache.epoch + 1;
  let victims =
    Hashtbl.fold
      (fun k (e : entry) acc ->
        if
          List.exists
            (fun (sid', k') -> sid' = sid && B.equal k' key)
            e.result.Engine.static_deps
        then k :: acc
        else acc)
      cache.tbl []
  in
  List.iter (Hashtbl.remove cache.tbl) victims;
  let n = List.length victims in
  cache.invalidated <- cache.invalidated + n;
  Mutex.unlock cache.lock;
  n

(* Sweep every live cache; returns total entries dropped. *)
let invalidate_static_all ~sid ~key =
  Mutex.lock all_caches_lock;
  let caches = !all_caches in
  Mutex.unlock all_caches_lock;
  List.fold_left
    (fun acc c -> acc + invalidate_static ~cache:c ~sid ~key ())
    0 caches

let invalidations ?(cache = cache) () =
  Mutex.lock cache.lock;
  let n = cache.invalidated in
  Mutex.unlock cache.lock;
  n

let clear ?(cache = cache) () =
  Mutex.lock cache.lock;
  Hashtbl.reset cache.tbl;
  Mutex.unlock cache.lock

let size ?(cache = cache) () =
  Mutex.lock cache.lock;
  let n = Hashtbl.length cache.tbl in
  Mutex.unlock cache.lock;
  n

let summarize ?(cache = cache) ?(config = Engine.default_config)
    (e : Element.t) : entry =
  let key = Element.summary_key e in
  let compute () =
    let t0 = Unix.gettimeofday () in
    let result = Engine.explore ~config e.Element.program in
    { result; time = Unix.gettimeofday () -. t0 }
  in
  Mutex.lock cache.lock;
  let rec obtain () =
    match Hashtbl.find_opt cache.tbl key with
    | Some entry ->
      Mutex.unlock cache.lock;
      entry
    | None ->
      if Hashtbl.mem cache.in_flight key then begin
        (* Another worker is symbexing this element; wait for it. *)
        Condition.wait cache.ready cache.lock;
        obtain ()
      end
      else begin
        Hashtbl.add cache.in_flight key ();
        let epoch0 = cache.epoch in
        Mutex.unlock cache.lock;
        (* Any exception below must clear the in-flight marker and wake
           the waiters, or they would block forever on a key nobody is
           computing anymore. *)
        let entry =
          try compute ()
          with exn ->
            Mutex.lock cache.lock;
            Hashtbl.remove cache.in_flight key;
            Condition.broadcast cache.ready;
            Mutex.unlock cache.lock;
            raise exn
        in
        Mutex.lock cache.lock;
        Hashtbl.remove cache.in_flight key;
        (* If an invalidation sweep ran while we were symbexing and the
           result read static state, the entry may mix pre- and
           post-mutation contents: don't land it, recompute. (Mutations
           are documented to be serialised against verification, so
           this loop settles immediately in practice.) *)
        if cache.epoch <> epoch0 && entry.result.Engine.static_deps <> []
        then begin
          Condition.broadcast cache.ready;
          obtain ()
        end
        else begin
          Hashtbl.replace cache.tbl key entry;
          Condition.broadcast cache.ready;
          Mutex.unlock cache.lock;
          entry
        end
      end
  in
  obtain ()

let is_suspect_crash (seg : Engine.segment) =
  match seg.Engine.outcome with
  | Engine.O_crash _ -> true
  | Engine.O_emit _ | Engine.O_drop -> false

(** Summarize every element of [els], optionally fanning the distinct
    uncached ones out over a worker pool. Per-element symbex jobs share
    nothing but the (domain-safe) term table, so they parallelise
    embarrassingly; results land in [cache] and the returned array is
    assembled from it, so ordering and sharing are exactly as in the
    sequential case. *)
let summarize_all ?pool ?cache:(c = cache) ?config (els : Element.t array) :
    entry array =
  (match pool with
  | Some pool when Pool.size pool > 1 && Array.length els > 1 ->
    (* Deduplicate first so workers do not serialise on the in-flight
       wait for repeated elements. *)
    let seen = Hashtbl.create 8 in
    let distinct =
      Array.of_list
        (List.filter
           (fun e ->
             let key = Element.summary_key e in
             if Hashtbl.mem seen key then false
             else begin
               Hashtbl.add seen key ();
               true
             end)
           (Array.to_list els))
    in
    ignore (Pool.map pool (fun e -> ignore (summarize ~cache:c ?config e))
              distinct)
  | _ -> ());
  Array.map (fun e -> summarize ~cache:c ?config e) els

(** Summaries for every node of a pipeline (sharing identical ones). *)
let of_pipeline ?pool ?cache ?config (pl : Vdp_click.Pipeline.t) : entry array
    =
  summarize_all ?pool ?cache ?config
    (Array.map
       (fun (n : Vdp_click.Pipeline.node) -> n.Vdp_click.Pipeline.element)
       (Vdp_click.Pipeline.nodes pl))

(** [unchanged prev cur] — every entry is {e physically} the same cache
    record. Entries are immutable once published, so physical identity
    means no invalidation (static-store mutation, [clear]) has touched
    any of them since [prev] was probed; a memoized verdict derived
    from [prev] is still a verdict about [cur]. *)
let unchanged (prev : entry array) (cur : entry array) =
  Array.length prev = Array.length cur
  &&
  let ok = ref true in
  Array.iteri (fun i e -> if e != cur.(i) then ok := false) prev;
  !ok
