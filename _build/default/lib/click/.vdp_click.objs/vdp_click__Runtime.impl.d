lib/click/runtime.ml: Array Element Format List Pipeline Vdp_ir Vdp_packet
