lib/packet/checksum.ml: Bytes Char Packet String
