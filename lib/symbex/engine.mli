(** The symbolic-execution engine — Step 1 of the paper's verification.

    [explore] runs one element's IR program on a fully symbolic packet
    (unconstrained bytes [p\[i\]], length [p.len] bounded by
    [config.max_len]) and enumerates its {e segments}: complete paths
    through the element, each with its path constraint, packet
    transformation, outcome and instruction count.

    Loops with branching bodies are handled by the paper's mini-element
    decomposition: the body is symbexed once from a havocked iteration
    state, a strictly increasing bounded measure (found with the
    solver) bounds the trip count, a solver-verified value-range
    invariant excludes spurious wrap-arounds, and execution resumes
    from the loop exits with packet contents havocked. Such segments
    carry an instruction {e interval} ([instr_lo], [instr_hi]) instead
    of an exact count. Counted straight-line loops (checksums) are
    simply unrolled and stay exact. *)

module T := Vdp_smt.Term

type crash =
  | C_assert of string
  | C_oob of string
  | C_headroom
  | C_div0
  | C_abort of string

type outcome =
  | O_emit of int
  | O_drop
  | O_crash of crash

(** How a segment transforms the packet, in window-relative terms. *)
type out_state = {
  head_delta : int;           (** net Pull (+) / Push (-) in bytes *)
  min_delta : int;
      (** most negative head excursion along the path, [<= 0] and
          [<= head_delta]: the headroom this segment needs on entry.
          An element's own symbex starts from the full configured
          headroom, so composition must check the remaining budget
          against this. *)
  len_out : T.t;              (** output window length *)
  writes : (int * T.t) list;  (** post-window offset -> byte term *)
  havoc : (int * int) option;
      (** [(epoch, head)] when a loop summary forgot the packet
          contents: unwritten output byte [j] is then the deterministic
          havoc variable for absolute offset [head + j]. *)
  meta_out : (Vdp_ir.Types.meta * T.t) list;
}

type segment = {
  cond : T.t list;            (** path constraint, oldest first *)
  out_state : out_state;
  outcome : outcome;
  instr_lo : int;
  instr_hi : int;
  kv_log : Sstate.kv_event list;  (** store interactions, oldest first *)
  summarized : bool;          (** true iff a loop summary contributed *)
}

type config = {
  headroom : int;
  max_len : int;            (** assumed bound on the input length *)
  max_paths : int;
  max_offset_fork : int;    (** candidates when concretising offsets *)
  max_unroll : int;
  summarize_loops : bool;
  branchy_threshold : int;  (** body branches >= this trigger summarisation *)
  solver_budget : int;      (** conflict budget for summary-time checks *)
}

val default_config : config

type result = {
  segments : segment list;
  paths : int;       (** completed paths *)
  incomplete : int;  (** abandoned paths — a nonzero value means any
                         proof built on these segments is partial *)
  forks : int;
  abandon_reasons : (string * int) list;
  static_deps : (int * Vdp_bitvec.Bitvec.t) list;
      (** static-state slices baked into the segments:
          ({!Vdp_ir.Static_data} id, concrete key) per exact static
          read. Mutating one of these slices invalidates any cache
          entry built from this result; symbolic-key reads return
          fresh unconstrained values and depend on no slice. *)
}

val explore : ?config:config -> Vdp_ir.Types.program -> result

val crash_to_string : crash -> string
val pp_outcome : Format.formatter -> outcome -> unit

val crash_matches : crash -> Vdp_ir.Types.crash -> bool
(** Does a concrete interpreter crash correspond to the symbolically
    predicted one? Out-of-bounds crashes match on kind only (the
    interpreter's message embeds concrete offsets). *)

val outcome_matches : outcome -> Vdp_ir.Types.outcome -> bool
(** Lift {!crash_matches} to whole outcomes. *)

val havoc_var : epoch:int -> int -> T.t
(** The havoc variable for absolute buffer offset [abs] of epoch
    [epoch] — matches the names {!Sstate.byte_abs} generates. *)
