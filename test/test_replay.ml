(* Witness replay and the differential oracle (Witness module): random
   packets are pushed through the concrete runtime and walked through
   the symbolic summaries side by side — any disagreement on the
   element path, the key/value state, the packet contents or the
   instruction counts is a verifier bug. Violation witnesses must
   replay to the claimed outcome from the recovered initial state. *)

module B = Vdp_bitvec.Bitvec
module E = Vdp_symbex.Engine
module Click = Vdp_click
module V = Vdp_verif.Verifier
module W = Vdp_verif.Witness
module Summaries = Vdp_verif.Summaries
module Pool = Vdp_verif.Pool

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let find name =
  List.find Sys.file_exists [ "../examples/" ^ name; "examples/" ^ name ]

let assert_clean (r : W.fuzz_report) =
  List.iter
    (fun (i, m) -> Alcotest.failf "packet %d disagreed: %s" i m)
    r.W.f_failures

(* The stateful NetFlow+NAT chain from the bench suite: per-flow
   counters and a rewriter whose port mappings persist across packets,
   so the walk exercises the key/value mirror, not just headers. *)
let nat_config =
  {|
    cl :: Classifier(12/0800, -);
    strip :: Strip(14);
    chk :: CheckIPHeader;
    flow :: FlowCounter;
    nat :: IPRewriter(203.0.113.7);
    cks :: SetIPChecksum;
    out :: EtherEncap(2048, 02:00:00:00:00:01, 02:00:00:00:00:02);
    cl[0] -> strip -> chk -> flow -> nat -> cks -> out;
    cl[1] -> Discard; chk[1] -> Discard; nat[1] -> cks;
    |}

let guard cls config =
  Click.Pipeline.linear
    [
      Click.Registry.make ~name:"cl" ~cls:"Classifier" ~config:[ "12/0800" ];
      Click.Registry.make ~name:"strip" ~cls:"Strip" ~config:[ "14" ];
      Click.Registry.make ~name:"chk" ~cls:"CheckIPHeader" ~config:[];
      Click.Registry.make ~name:"x" ~cls ~config;
    ]

let fast_config =
  { V.default_config with
    V.engine = { E.default_config with E.max_len = 128 } }

let violations r =
  match r.V.verdict with V.Violated vs -> vs | _ -> []

(* Every violation must carry a replay that confirmed concretely. *)
let assert_all_confirmed name (r : V.report) =
  let vs = violations r in
  check_bool (name ^ ": violations found") true (vs <> []);
  List.iter
    (fun (v : V.violation) ->
      check_bool (name ^ ": confirmed") true v.V.confirmed;
      match v.V.replayed with
      | Some w -> check_bool (name ^ ": replay status") true (W.confirmed w)
      | None -> Alcotest.failf "%s: violation carries no replay" name)
    vs;
  check_int
    (name ^ ": every replay confirmed")
    r.V.stats.V.replays r.V.stats.V.replays_confirmed

let differential_tests =
  [
    Alcotest.test_case "router.click: 500 packets, zero disagreements"
      `Slow (fun () ->
        Summaries.clear ();
        let pl = Click.Config.parse_file (find "router.click") in
        let r = W.differential ~seed:7 ~count:500 pl in
        assert_clean r;
        check_int "packets run" 500 r.W.f_packets;
        check_bool "hops walked" true (r.W.f_hops > 500));
    Alcotest.test_case "stateful NAT pipeline: 500 packets" `Slow
      (fun () ->
        Summaries.clear ();
        let pl = Click.Config.parse nat_config in
        let r = W.differential ~seed:3 ~count:500 pl in
        assert_clean r;
        check_int "packets run" 500 r.W.f_packets;
        (* The stateful walk must be exact, never approximate: every
           key/value read is pinned from the mirrored store. *)
        check_int "no approximate hops" 0 r.W.f_approx);
    Alcotest.test_case "differential under 4 domains matches" `Slow
      (fun () ->
        Summaries.clear ();
        let pl = Click.Config.parse_file (find "router.click") in
        let seq = W.differential ~seed:7 ~count:500 pl in
        Summaries.clear ();
        let par =
          Pool.with_pool 4 (fun pool ->
              W.differential ~pool ~seed:7 ~count:500 pl)
        in
        assert_clean par;
        check_int "same packets" seq.W.f_packets par.W.f_packets;
        check_int "same hops" seq.W.f_hops par.W.f_hops;
        check_int "same approx hops" seq.W.f_approx par.W.f_approx);
  ]

let replay_tests =
  [
    Alcotest.test_case "stateless crash replays confirmed" `Quick
      (fun () ->
        Summaries.clear ();
        let r =
          V.check_crash_freedom ~config:fast_config
            (Click.El_toy.e2_pipeline ())
        in
        assert_all_confirmed "toy e2" r);
    Alcotest.test_case "stateful violations replay with recovered state"
      `Slow (fun () ->
        List.iter
          (fun (cls, config, expect_state) ->
            Summaries.clear ();
            let r =
              V.check_crash_freedom ~config:fast_config (guard cls config)
            in
            assert_all_confirmed cls r;
            (* The counter only overflows from a particular state
               history, so its witness must preload the store; the
               quota's div-by-zero is reachable from a fresh state. *)
            let needs_state =
              List.exists
                (fun (v : V.violation) ->
                  match v.V.replayed with
                  | Some { W.state = _ :: _; _ } -> true
                  | _ -> false)
                (violations r)
            in
            if expect_state then
              check_bool (cls ^ ": some witness loads state") true
                needs_state)
          [ ("BuggyCounter", [], true); ("BuggyQuota", [ "1000" ], false) ]);
    Alcotest.test_case "violations replay confirmed under jobs=4" `Slow
      (fun () ->
        Summaries.clear ();
        let config = { fast_config with V.jobs = 4 } in
        let r = V.check_crash_freedom ~config (guard "BuggyCounter" []) in
        assert_all_confirmed "BuggyCounter j4" r);
    Alcotest.test_case "--no-replay skips the runtime entirely" `Quick
      (fun () ->
        Summaries.clear ();
        let config = { fast_config with V.replay = false } in
        let r =
          V.check_crash_freedom ~config (Click.El_toy.e2_pipeline ())
        in
        let vs = violations r in
        check_bool "violations found" true (vs <> []);
        List.iter
          (fun (v : V.violation) ->
            check_bool "no full replay attached" true (v.V.replayed = None))
          vs;
        check_int "no replays counted" 0 r.V.stats.V.replays);
    Alcotest.test_case "bound witness replays within the interval" `Quick
      (fun () ->
        Summaries.clear ();
        let r =
          V.instruction_bound ~config:fast_config
            (Click.El_toy.fig2_pipeline ())
        in
        (match r.V.b_replayed with
        | Some w -> check_bool "bound replay confirmed" true (W.confirmed w)
        | None -> Alcotest.fail "expected a bound replay");
        match (r.V.bound, r.V.measured) with
        | Some b, Some m -> check_bool "measured <= bound" true (m <= b)
        | _ -> Alcotest.fail "expected bound and measurement");
  ]

let tests = differential_tests @ replay_tests
