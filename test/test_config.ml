(* The Click-like configuration language. *)

module Click = Vdp_click

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let tests =
  [
    Alcotest.test_case "declarations and chains" `Quick (fun () ->
        let pl =
          Click.Config.parse
            {|
            a :: Paint(1);
            b :: Paint(2);
            a -> b;
            |}
        in
        check_int "two elements" 2 (Click.Pipeline.length pl);
        let n = Click.Pipeline.node pl 0 in
        check_bool "a connects to b" true
          (n.Click.Pipeline.outputs.(0) = Some (1, 0)));
    Alcotest.test_case "anonymous elements in chains" `Quick (fun () ->
        let pl = Click.Config.parse "Paint(1) -> Paint(2) -> Discard;" in
        check_int "three elements" 3 (Click.Pipeline.length pl));
    Alcotest.test_case "port annotations" `Quick (fun () ->
        let pl =
          Click.Config.parse
            {|
            c :: Classifier(12/0800, -);
            c[1] -> Discard;
            c[0] -> Counter;
            |}
        in
        let c = Click.Pipeline.node pl 0 in
        check_bool "port1 -> node1" true
          (c.Click.Pipeline.outputs.(1) = Some (1, 0));
        check_bool "port0 -> node2" true
          (c.Click.Pipeline.outputs.(0) = Some (2, 0)));
    Alcotest.test_case "comments and whitespace" `Quick (fun () ->
        let pl =
          Click.Config.parse
            "// leading comment\n  a :: Counter; // trailing\n a -> Discard;"
        in
        check_int "two" 2 (Click.Pipeline.length pl));
    Alcotest.test_case "nested-paren configs split correctly" `Quick
      (fun () ->
        (* Classifier patterns contain no parens, but commas split at
           the top level only. *)
        let pl =
          Click.Config.parse
            "c :: StaticIPLookup(10.0.0.0/8 0, 0.0.0.0/0 1);"
        in
        let e = (Click.Pipeline.node pl 0).Click.Pipeline.element in
        check_int "two route args" 2 (List.length e.Click.Element.config));
    Alcotest.test_case "parse errors are reported" `Quick (fun () ->
        let bad s =
          try
            ignore (Click.Config.parse s);
            false
          with
          | Click.Config.Parse_error _ -> true
          | Click.Registry.Unknown_class _ -> true
        in
        check_bool "dangling arrow" true (bad "a :: Counter; a ->");
        check_bool "undeclared" true (bad "a -> b;");
        check_bool "unknown class" true (bad "a :: NoSuchThing;");
        check_bool "duplicate name" true
          (bad "a :: Counter; a :: Counter;"));
    Alcotest.test_case "double connection rejected" `Quick (fun () ->
        check_bool "raises" true
          (try
             ignore
               (Click.Config.parse
                  "a :: Counter; a -> Discard; a -> Discard;");
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "comments survive inside config parens" `Quick
      (fun () ->
        let pl =
          Click.Config.parse
            {|
            f :: IPFilter(allow src 10.1.0.0/16, // own prefix only
                          deny all);            // default deny
            f -> Discard;
            |}
        in
        let e = (Click.Pipeline.node pl 0).Click.Pipeline.element in
        check_int "two rule args" 2 (List.length e.Click.Element.config));
    Alcotest.test_case "named sub-sections prefix and resolve locally"
      `Quick (fun () ->
        let pl =
          Click.Config.parse
            {|
            acl {
              f :: IPFilter(allow all);
              f -> Discard;   // local name resolves to acl.f
            }
            src :: Counter;
            src -> acl.f;     // qualified reference from outside
            |}
        in
        let names =
          List.init (Click.Pipeline.length pl) (fun i ->
              (Click.Pipeline.node pl i).Click.Pipeline.element
                .Click.Element.name)
        in
        check_bool "section member is prefixed" true
          (List.mem "acl.f" names);
        let find n =
          let rec go i =
            if
              (Click.Pipeline.node pl i).Click.Pipeline.element
                .Click.Element.name = n
            then i
            else go (i + 1)
          in
          go 0
        in
        let f = Click.Pipeline.node pl (find "acl.f") in
        let s = Click.Pipeline.node pl (find "src") in
        check_bool "local chain wired" true
          (f.Click.Pipeline.outputs.(0) <> None);
        check_bool "outside reaches in via qualified name" true
          (s.Click.Pipeline.outputs.(0) = Some (find "acl.f", 0)));
    Alcotest.test_case "parse_source dispatches single vs fabric" `Quick
      (fun () ->
        (match Click.Config.parse_source "a :: Counter; a -> Discard;" with
        | Click.Config.Single pl ->
          check_int "single: two nodes" 2 (Click.Pipeline.length pl)
        | Click.Config.Fabric _ -> Alcotest.fail "expected Single");
        match
          Click.Config.parse_source
            {|
            topology {
              pipeline p { a :: Counter; a -> Discard; }
              ingress in = p;
            }
            |}
        with
        | Click.Config.Fabric t ->
          check_int "fabric: one pipeline" 1
            (List.length t.Click.Config.topo_pipelines);
          check_int "fabric: one ingress" 1
            (List.length t.Click.Config.topo_ingresses)
        | Click.Config.Single _ -> Alcotest.fail "expected Fabric");
    Alcotest.test_case "example configs parse and verify" `Quick (fun () ->
        (* cwd is _build/default/test under dune runtest, the repo root
           when the executable is run by hand. *)
        let find name =
          List.find Sys.file_exists
            [ "../examples/" ^ name; "examples/" ^ name ]
        in
        let pl = Click.Config.parse_file (find "router.click") in
        check_int "router has 11 nodes" 11 (Click.Pipeline.length pl);
        let pl2 = Click.Config.parse_file (find "firewall.click") in
        check_bool "firewall parses" true (Click.Pipeline.length pl2 > 5));
  ]
