(** Element class registry: class name + config strings -> element.

    This is what the config-file parser and the CLI instantiate
    through. Third-party classes can be registered at run time (the
    app-market scenario). *)

module Ipv4 = Vdp_packet.Ipv4
module Eth = Vdp_packet.Ethernet

exception Unknown_class of string
exception Bad_config of string * string

let constructors :
    (string, string list -> Vdp_ir.Types.program) Hashtbl.t =
  Hashtbl.create 32

let register cls f = Hashtbl.replace constructors cls f

let fail cls msg = raise (Bad_config (cls, msg))

let expect_empty cls = function
  | [] -> ()
  | _ -> fail cls "expects no configuration"

let int_arg cls s =
  match int_of_string_opt (String.trim s) with
  | Some n -> n
  | None -> fail cls ("not an integer: " ^ s)

let () =
  register "Discard" (fun cfg ->
      expect_empty "Discard" cfg;
      El_basic.discard ());
  register "Counter" (fun cfg ->
      expect_empty "Counter" cfg;
      El_basic.counter ());
  register "Paint" (function
    | [ c ] -> El_basic.paint (int_arg "Paint" c)
    | _ -> fail "Paint" "expects one color argument");
  register "Strip" (function
    | [ n ] -> El_basic.strip (int_arg "Strip" n)
    | _ -> fail "Strip" "expects one length argument");
  register "Unstrip" (function
    | [ n ] -> El_basic.unstrip (int_arg "Unstrip" n)
    | _ -> fail "Unstrip" "expects one length argument");
  register "EtherEncap" (function
    | [ ethertype; src; dst ] ->
      El_basic.ether_encap
        ~ethertype:(int_of_string (String.trim ethertype))
        ~src:(Eth.mac_of_string (String.trim src))
        ~dst:(Eth.mac_of_string (String.trim dst))
    | _ -> fail "EtherEncap" "expects ETHERTYPE, SRC, DST");
  register "EtherRewrite" (function
    | [ src; dst ] ->
      El_basic.ether_rewrite
        ~src:(Eth.mac_of_string (String.trim src))
        ~dst:(Eth.mac_of_string (String.trim dst))
    | _ -> fail "EtherRewrite" "expects SRC, DST");
  register "Classifier" (fun patterns ->
      if patterns = [] then fail "Classifier" "expects at least one pattern";
      El_classifier.compile patterns);
  register "CheckIPHeader" (fun cfg ->
      expect_empty "CheckIPHeader" cfg;
      El_ip.check_ip_header ());
  register "DecIPTTL" (fun cfg ->
      expect_empty "DecIPTTL" cfg;
      El_ip.dec_ip_ttl ());
  register "SetIPChecksum" (fun cfg ->
      expect_empty "SetIPChecksum" cfg;
      El_ip.set_ip_checksum ());
  register "IPGWOptions" (function
    | [ gw ] -> El_ip.ip_gw_options ~gw:(Ipv4.addr_of_string (String.trim gw))
    | _ -> fail "IPGWOptions" "expects the gateway address");
  register "StaticIPLookup" (fun routes ->
      if routes = [] then fail "StaticIPLookup" "expects route entries";
      El_lookup.static_ip_lookup (List.map El_lookup.parse_route routes));
  register "RadixIPLookup" (fun routes ->
      if routes = [] then fail "RadixIPLookup" "expects route entries";
      El_lookup.radix_ip_lookup (List.map El_lookup.parse_route routes));
  register "FlowCounter" (fun cfg ->
      expect_empty "FlowCounter" cfg;
      El_stateful.flow_counter ());
  register "IPRewriter" (function
    | [ ip ] ->
      El_stateful.ip_rewriter ~public_ip:(Ipv4.addr_of_string (String.trim ip))
    | _ -> fail "IPRewriter" "expects the public address");
  register "NATGateway" (function
    | [ ip ] ->
      El_stateful.nat_gateway ~public_ip:(Ipv4.addr_of_string (String.trim ip))
    | _ -> fail "NATGateway" "expects the public address");
  register "SafeDPI" (function
    | [ s; d ] ->
      El_market.safe_dpi ~signature:(int_arg "SafeDPI" s)
        ~depth:(int_arg "SafeDPI" d)
    | _ -> fail "SafeDPI" "expects SIGNATURE, DEPTH");
  register "BuggyPeek" (fun cfg ->
      expect_empty "BuggyPeek" cfg;
      El_market.buggy_peek ());
  register "BuggyQuota" (function
    | [ q ] -> El_market.buggy_quota ~quota:(int_arg "BuggyQuota" q)
    | _ -> fail "BuggyQuota" "expects the quota");
  register "BuggyCounter" (fun cfg ->
      expect_empty "BuggyCounter" cfg;
      El_market.buggy_counter ());
  register "BuggyNAT" (function
    | [ ip ] ->
      El_market.buggy_nat ~public_ip:(Ipv4.addr_of_string (String.trim ip))
    | _ -> fail "BuggyNAT" "expects the public address");
  register "ARPResponder" (function
    | [ ip; mac ] ->
      El_arp.arp_responder
        ~ip:(Ipv4.addr_of_string (String.trim ip))
        ~mac:(Eth.mac_of_string (String.trim mac))
    | _ -> fail "ARPResponder" "expects IP, MAC");
  register "ICMPError" (function
    | [ src; ty; code ] ->
      El_icmp.icmp_error
        ~src:(Ipv4.addr_of_string (String.trim src))
        ~icmp_type:(int_arg "ICMPError" ty)
        ~icmp_code:(int_arg "ICMPError" code)
    | _ -> fail "ICMPError" "expects SRC, TYPE, CODE");
  register "CheckLength" (function
    | [ n ] -> El_switch.check_length (int_arg "CheckLength" n)
    | _ -> fail "CheckLength" "expects the maximum length");
  register "CheckPaint" (function
    | [ c ] -> El_switch.check_paint (int_arg "CheckPaint" c)
    | _ -> fail "CheckPaint" "expects the color");
  register "HashSwitch" (function
    | [ off; len; n ] ->
      El_switch.hash_switch
        ~offset:(int_arg "HashSwitch" off)
        ~length:(int_arg "HashSwitch" len)
        ~nports:(int_arg "HashSwitch" n)
    | _ -> fail "HashSwitch" "expects OFFSET, LENGTH, NPORTS");
  register "RoundRobinSwitch" (function
    | [ n ] ->
      El_switch.round_robin_switch ~nports:(int_arg "RoundRobinSwitch" n)
    | _ -> fail "RoundRobinSwitch" "expects the port count");
  register "IPFilter" (fun rules ->
      if rules = [] then fail "IPFilter" "expects at least one rule";
      El_filter.compile rules)

let classes () =
  Hashtbl.fold (fun k _ acc -> k :: acc) constructors []
  |> List.sort String.compare

let make ~name ~cls ~config =
  match Hashtbl.find_opt constructors cls with
  | None -> raise (Unknown_class cls)
  | Some f -> Element.make ~name ~cls ~config (f config)
