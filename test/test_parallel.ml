(* Domain-parallel verification: worker-pool semantics (ordering,
   exception propagation, sequential fast path), domain-safety of the
   shared SMT substrate (concurrent hash-consing, concurrent summary
   computation), and randomized differentials checking that [-j 4]
   produces exactly the sequential verdicts, bounds and violation
   orders. *)

module T = Vdp_smt.Term
module Par = Vdp_smt.Par
module E = Vdp_symbex.Engine
module Click = Vdp_click
module V = Vdp_verif.Verifier
module Pool = Vdp_verif.Pool
module Summaries = Vdp_verif.Summaries

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* {1 Worker pool} *)

let pool_tests =
  [
    Alcotest.test_case "map is positional with uneven task costs" `Quick
      (fun () ->
        Pool.with_pool 4 (fun pool ->
            let xs = Array.init 200 (fun i -> i) in
            let f i =
              (* Vary cost so claims interleave across runners. *)
              let n = ref 0 in
              for _ = 1 to (i mod 7) * 1_000 do
                incr n
              done;
              ignore !n;
              (i * i) + 1
            in
            let got = Pool.map pool f xs in
            Alcotest.(check (array int)) "same as Array.map" (Array.map f xs)
              got));
    Alcotest.test_case "map propagates a worker exception" `Quick (fun () ->
        Pool.with_pool 3 (fun pool ->
            let xs = Array.init 100 (fun i -> i) in
            Alcotest.check_raises "failure surfaces" (Failure "boom")
              (fun () ->
                ignore
                  (Pool.map pool
                     (fun i -> if i = 37 then failwith "boom" else i)
                     xs));
            (* The pool survives a failed map. *)
            let got = Pool.map pool (fun i -> i + 1) xs in
            check_int "reusable after failure" 100 got.(99)));
    Alcotest.test_case "size-1 pool stays sequential" `Quick (fun () ->
        check_bool "not in parallel mode before" false (Par.active ());
        Pool.with_pool 1 (fun pool ->
            check_int "size clamped" 1 (Pool.size pool);
            check_bool "no parallel mode for one runner" false (Par.active ());
            let got = Pool.map pool (fun i -> 2 * i) (Array.init 10 Fun.id) in
            check_int "maps inline" 18 got.(9)));
    Alcotest.test_case "parallel mode tracks pool lifetime" `Quick (fun () ->
        check_bool "off before" false (Par.active ());
        Pool.with_pool 2 (fun _ -> check_bool "on inside" true (Par.active ()));
        check_bool "off after" false (Par.active ()));
    Alcotest.test_case "map_list keeps order" `Quick (fun () ->
        Pool.with_pool 2 (fun pool ->
            Alcotest.(check (list int))
              "same as List.map" [ 0; 1; 4; 9; 16 ]
              (Pool.map_list pool (fun i -> i * i) [ 0; 1; 2; 3; 4 ])));
    Alcotest.test_case "nested map from inside a task does not deadlock"
      `Quick (fun () ->
        (* The barrier-style pool livelocked here: an outer map task
           calling map again had no runner left to execute the inner
           items. The helping scheduler runs them from the awaiting
           task itself. *)
        Pool.with_pool 4 (fun pool ->
            let got =
              Pool.map pool
                (fun i ->
                  let inner =
                    Pool.map pool (fun j -> (10 * i) + j)
                      (Array.init 8 Fun.id)
                  in
                  Array.fold_left ( + ) 0 inner)
                (Array.init 8 Fun.id)
            in
            let expect i = (8 * 10 * i) + 28 in
            Array.iteri
              (fun i v -> check_int (Printf.sprintf "outer %d" i) (expect i) v)
              got));
    Alcotest.test_case "spawn/await: any order, exceptions at await" `Quick
      (fun () ->
        Pool.with_pool 3 (fun pool ->
            let futs =
              List.init 20 (fun i ->
                  Pool.spawn pool (fun () ->
                      if i = 13 then failwith "task 13";
                      i * 3))
            in
            (* Await in reverse spawn order; helping must still drain
               everything, and only the failing future raises. *)
            List.iteri
              (fun k fut ->
                let i = 19 - k in
                if i = 13 then
                  Alcotest.check_raises "task 13 raises"
                    (Failure "task 13") (fun () ->
                      ignore (Pool.await pool fut))
                else
                  check_int (Printf.sprintf "task %d" i) (i * 3)
                    (Pool.await pool fut))
              (List.rev futs)));
    Alcotest.test_case "scheduler stats account every task" `Quick (fun () ->
        Pool.with_pool 2 (fun pool ->
            Pool.reset_stats pool;
            let futs =
              List.init 50 (fun i -> Pool.spawn pool (fun () -> i))
            in
            List.iter (fun f -> ignore (Pool.await pool f)) futs;
            let s = Pool.stats pool in
            check_int "spawned" 50 s.Pool.spawned;
            check_int "executed" 50 s.Pool.executed;
            check_int "histogram covers executed" 50
              (Array.fold_left ( + ) 0 s.Pool.hist);
            check_bool "stolen within executed" true
              (s.Pool.stolen >= 0 && s.Pool.stolen <= s.Pool.executed);
            check_bool "busy time non-negative" true (s.Pool.busy_seconds >= 0.)));
    Alcotest.test_case "size-1 pool spawns inline, in order" `Quick (fun () ->
        Pool.with_pool 1 (fun pool ->
            let order = ref [] in
            let futs =
              List.init 5 (fun i ->
                  Pool.spawn pool (fun () ->
                      order := i :: !order;
                      i))
            in
            (* Inline execution: all done before any await. *)
            Alcotest.(check (list int)) "sequential order" [ 4; 3; 2; 1; 0 ]
              !order;
            List.iteri
              (fun i f -> check_int "value" i (Pool.await pool f))
              futs;
            let s = Pool.stats pool in
            check_bool "counted" true (s.Pool.spawned >= 5)));
  ]

(* {1 Concurrent term interning} *)

let interning_tests =
  [
    Alcotest.test_case "domains interning the same terms share nodes" `Quick
      (fun () ->
        (* Four domains race to intern an identical family of nested
           terms; hash-consing must hand every domain the same physical
           node for structurally equal terms, with distinct ids for
           distinct terms. *)
        let build () =
          List.init 128 (fun i ->
              let x = T.var "par_x" 16 in
              let k = T.bv_int ~width:16 i in
              T.and_ [ T.ult x (T.add x k); T.eq (T.band x k) k ])
        in
        let per_domain =
          Pool.with_pool 4 (fun pool ->
              Pool.map pool (fun _ -> build ()) (Array.init 4 Fun.id))
        in
        let reference = per_domain.(0) in
        Array.iteri
          (fun d terms ->
            List.iter2
              (fun a b ->
                check_bool
                  (Printf.sprintf "domain %d: physically equal" d)
                  true (a == b))
              reference terms)
          per_domain;
        let ids =
          List.sort_uniq compare (List.map (fun t -> t.T.id) reference)
        in
        check_int "distinct terms keep distinct ids" 128 (List.length ids));
  ]

(* {1 Concurrent summaries} *)

let summaries_tests =
  [
    Alcotest.test_case "concurrent summarize computes each key once" `Quick
      (fun () ->
        let cache = Summaries.create_cache () in
        let el () =
          Click.Registry.make ~name:"ttl" ~cls:"DecIPTTL" ~config:[]
        in
        let entries =
          Pool.with_pool 4 (fun pool ->
              Pool.map pool
                (fun _ -> Summaries.summarize ~cache (el ()))
                (Array.init 8 Fun.id))
        in
        (* The in-flight protocol guarantees one symbex: every caller
           gets the single inserted entry back, physically. *)
        check_int "one cache entry" 1 (Summaries.size ~cache ());
        Array.iter
          (fun e -> check_bool "same entry" true (e == entries.(0)))
          entries);
    Alcotest.test_case "summarize_all with a pool matches sequential" `Quick
      (fun () ->
        let els =
          [|
            Click.Registry.make ~name:"a" ~cls:"Strip" ~config:[ "14" ];
            Click.Registry.make ~name:"b" ~cls:"DecIPTTL" ~config:[];
            Click.Registry.make ~name:"c" ~cls:"Strip" ~config:[ "14" ];
          |]
        in
        let seq_cache = Summaries.create_cache () in
        let seq = Summaries.summarize_all ~cache:seq_cache els in
        let par_cache = Summaries.create_cache () in
        let par =
          Pool.with_pool 3 (fun pool ->
              Summaries.summarize_all ~pool ~cache:par_cache els)
        in
        check_int "same distinct summaries" (Summaries.size ~cache:seq_cache ())
          (Summaries.size ~cache:par_cache ());
        Array.iteri
          (fun i (s : Summaries.entry) ->
            check_int
              (Printf.sprintf "element %d: same segment count" i)
              (List.length s.Summaries.result.E.segments)
              (List.length par.(i).Summaries.result.E.segments))
          seq;
        (* Repeated elements share one summary in both modes. *)
        check_bool "sequential shares" true (seq.(0) == seq.(2));
        check_bool "parallel shares" true (par.(0) == par.(2)));
  ]

(* {1 Randomized differential: sequential vs -j 4} *)

let config ~jobs =
  {
    V.default_config with
    V.engine = { E.default_config with E.max_len = 128 };
    V.jobs;
  }

(* Random linear pipelines over a pool of cheap-to-verify elements;
   element order is arbitrary, so both Proved and Violated verdicts
   occur (e.g. Strip without a preceding length check crashes). *)
let element_pool =
  [|
    (fun name -> Click.Registry.make ~name ~cls:"Classifier"
        ~config:[ "12/0800"; "-" ]);
    (fun name -> Click.Registry.make ~name ~cls:"Strip" ~config:[ "14" ]);
    (fun name -> Click.Registry.make ~name ~cls:"CheckIPHeader" ~config:[]);
    (fun name -> Click.Registry.make ~name ~cls:"DecIPTTL" ~config:[]);
    (fun name -> Click.Registry.make ~name ~cls:"SetIPChecksum" ~config:[]);
    (fun name -> Click.Registry.make ~name ~cls:"FlowCounter" ~config:[]);
  |]

let gen_pipeline : int list QCheck.Gen.t =
  QCheck.Gen.(
    list_size (int_range 2 5) (int_bound (Array.length element_pool - 1)))

let build_pipeline picks =
  Click.Pipeline.linear
    (List.mapi (fun i p -> element_pool.(p) (Printf.sprintf "e%d_%d" i p))
       picks)

let print_pipeline picks =
  String.concat "->" (List.map string_of_int picks)

let violation_sig r =
  match r.V.verdict with
  | V.Violated vs ->
    Some (List.map (fun v -> (v.V.node, v.V.element, v.V.confirmed)) vs)
  | V.Proved -> None
  | V.Unknown _ -> None

let verdict_kind r =
  match r.V.verdict with
  | V.Proved -> `Proved
  | V.Violated _ -> `Violated
  | V.Unknown _ -> `Unknown

let crash_differential =
  QCheck.Test.make ~count:12
    ~name:"crash freedom: -j 4 matches sequential verdicts exactly"
    (QCheck.make ~print:print_pipeline gen_pipeline)
    (fun picks ->
      let pl = build_pipeline picks in
      Summaries.clear ();
      let seq = V.check_crash_freedom ~config:(config ~jobs:1) pl in
      Summaries.clear ();
      let par = V.check_crash_freedom ~config:(config ~jobs:4) pl in
      verdict_kind seq = verdict_kind par
      (* Violations in the same DFS order, at the same nodes, with the
         same runtime confirmation. *)
      && violation_sig seq = violation_sig par
      && seq.V.stats.V.suspects = par.V.stats.V.suspects
      && seq.V.stats.V.suspect_checks = par.V.stats.V.suspect_checks)

let bound_differential =
  QCheck.Test.make ~count:8
    ~name:"instruction bound: -j 4 matches the sequential bound"
    (QCheck.make ~print:print_pipeline gen_pipeline)
    (fun picks ->
      let pl = build_pipeline picks in
      Summaries.clear ();
      let seq = V.instruction_bound ~config:(config ~jobs:1) pl in
      Summaries.clear ();
      let par = V.instruction_bound ~config:(config ~jobs:4) pl in
      seq.V.bound = par.V.bound
      && (match (seq.V.b_verdict, par.V.b_verdict) with
         | V.Proved, V.Proved -> true
         | V.Unknown _, V.Unknown _ -> true
         | V.Violated _, V.Violated _ -> true
         | _ -> false))

let fixed_differential_tests =
  [
    Alcotest.test_case "router: parallel crash stats match sequential" `Slow
      (fun () ->
        let pl =
          Click.Pipeline.linear
            [
              Click.Registry.make ~name:"cl" ~cls:"Classifier"
                ~config:[ "12/0800"; "-" ];
              Click.Registry.make ~name:"strip" ~cls:"Strip"
                ~config:[ "14" ];
              Click.Registry.make ~name:"chk" ~cls:"CheckIPHeader"
                ~config:[];
              Click.Registry.make ~name:"ttl" ~cls:"DecIPTTL" ~config:[];
            ]
        in
        Summaries.clear ();
        let seq = V.check_crash_freedom ~config:(config ~jobs:1) pl in
        Summaries.clear ();
        let par = V.check_crash_freedom ~config:(config ~jobs:4) pl in
        check_bool "both proved" true
          (verdict_kind seq = `Proved && verdict_kind par = `Proved);
        check_int "same composite paths" seq.V.stats.V.composite_paths
          par.V.stats.V.composite_paths;
        check_int "same suspect checks" seq.V.stats.V.suspect_checks
          par.V.stats.V.suspect_checks;
        check_int "same refutations" seq.V.stats.V.refuted
          par.V.stats.V.refuted);
    Alcotest.test_case "router: parallel bound and exactness match" `Slow
      (fun () ->
        let pl =
          Click.Pipeline.linear
            [
              Click.Registry.make ~name:"cl" ~cls:"Classifier"
                ~config:[ "12/0800"; "-" ];
              Click.Registry.make ~name:"strip" ~cls:"Strip"
                ~config:[ "14" ];
              Click.Registry.make ~name:"chk" ~cls:"CheckIPHeader"
                ~config:[];
              Click.Registry.make ~name:"ttl" ~cls:"DecIPTTL" ~config:[];
            ]
        in
        Summaries.clear ();
        let seq = V.instruction_bound ~config:(config ~jobs:1) pl in
        Summaries.clear ();
        let par = V.instruction_bound ~config:(config ~jobs:4) pl in
        check_bool "bound found" true (seq.V.bound <> None);
        check_bool "same bound" true (seq.V.bound = par.V.bound);
        check_bool "same exactness" true (seq.V.exact = par.V.exact);
        (* Both witnesses, possibly different packets, must attain a
           runtime measurement within the proved bound. *)
        match (seq.V.measured, par.V.measured, seq.V.bound) with
        | Some a, Some b, Some bd ->
          check_bool "measured within bound" true (a <= bd && b <= bd)
        | _ -> Alcotest.fail "expected measured witnesses");
    Alcotest.test_case "skewed tree: one subtree dominates, -j 4 matches"
      `Slow (fun () ->
        (* The classifier's IP branch carries the whole stateful chain —
           its composite subtree outweighs the Discard sibling by orders
           of magnitude. The coarse frontier partitioner serialized on
           such trees; fine-grained stealing must keep the verdict,
           counters and DFS order sequential regardless. *)
        let pl =
          Click.Config.parse
            {|
              cl :: Classifier(12/0800, -);
              strip :: Strip(14);
              chk :: CheckIPHeader;
              flow :: FlowCounter;
              nat :: IPRewriter(203.0.113.7);
              cl[0] -> strip -> chk -> flow -> nat;
              cl[1] -> Discard; nat[1] -> Discard;
            |}
        in
        Summaries.clear ();
        let seq = V.check_crash_freedom ~config:(config ~jobs:1) pl in
        Summaries.clear ();
        let par = V.check_crash_freedom ~config:(config ~jobs:4) pl in
        check_bool "same verdict kind" true
          (verdict_kind seq = verdict_kind par);
        check_bool "same violations" true
          (violation_sig seq = violation_sig par);
        check_int "same composite paths" seq.V.stats.V.composite_paths
          par.V.stats.V.composite_paths;
        check_int "same suspect checks" seq.V.stats.V.suspect_checks
          par.V.stats.V.suspect_checks;
        check_int "same refutations" seq.V.stats.V.refuted
          par.V.stats.V.refuted);
  ]

let tests =
  pool_tests @ interning_tests @ summaries_tests
  @ List.map QCheck_alcotest.to_alcotest
      [ crash_differential; bound_differential ]
  @ fixed_differential_tests
