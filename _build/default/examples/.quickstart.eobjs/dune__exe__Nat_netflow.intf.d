examples/nat_netflow.mli:
