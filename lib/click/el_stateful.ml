(** Stateful elements — the "currently experimenting" part of the
    paper: NetFlow-style accounting and NAT-style rewriting, both built
    on private key/value stores whose verification goes through the
    read-returns-anything modelling of {!Vdp_symbex.Kvmodel}. *)

module B = Vdp_bitvec.Bitvec
module Ir = Vdp_ir.Types
module Bld = Vdp_ir.Builder
open El_util

(* IP header length in bytes (the ihl field scaled), as a 16-bit reg. *)
let header_len b =
  let b0 = Bld.load b ~off:(c16 0) ~n:1 in
  let ihl = Bld.assign b ~width:8 (Ir.Binop (Ir.And, Ir.Reg b0, c8 0xf)) in
  let ihl16 = Bld.zext b ~width:16 (Ir.Reg ihl) in
  Bld.assign b ~width:16 (Ir.Binop (Ir.Shl, Ir.Reg ihl16, c16 2))

(* [hlen + n <= len]? CheckIPHeader only guarantees [hlen <= len], so a
   payload-less TCP/UDP frame would otherwise crash the port loads —
   the verifier caught exactly this omission in an earlier revision. *)
let ports_in_window b ~hlen ~n =
  let len = Bld.load_len b in
  let after =
    Bld.assign b ~width:16 (Ir.Binop (Ir.Add, Ir.Reg hlen, c16 n))
  in
  Bld.cmp b Ir.Ule (Ir.Reg after) (Ir.Reg len)

(* The 104-bit flow key src|dst|proto|sport|dport; callers must have
   established that [hlen + 4 <= len]. *)
let flow_key b ~hlen =
  let src = Bld.load b ~off:(c16 12) ~n:4 in
  let dst = Bld.load b ~off:(c16 16) ~n:4 in
  let proto = Bld.load b ~off:(c16 9) ~n:1 in
  let ports = Bld.load b ~off:(Ir.Reg hlen) ~n:4 in
  let k1 = Bld.assign b ~width:64 (Ir.Concat (Ir.Reg src, Ir.Reg dst)) in
  let k2 = Bld.assign b ~width:72 (Ir.Concat (Ir.Reg k1, Ir.Reg proto)) in
  Bld.assign b ~width:104 (Ir.Concat (Ir.Reg k2, Ir.Reg ports))

(** NetFlow-style per-flow packet counter. TCP/UDP flows with readable
    port fields are counted in the private "flows" store; everything
    passes through on port 0. *)
let flow_counter () =
  let b = Bld.create ~name:"FlowCounter" in
  Bld.declare_store b
    (Ir.store ~name:"flows" ~key_width:104 ~val_width:32 ~kind:Ir.Private
       ~default:(B.zero 32) ());
  let proto = Bld.load b ~off:(c16 9) ~n:1 in
  let is_tcp = Bld.cmp b Ir.Eq (Ir.Reg proto) (c8 6) in
  let is_udp = Bld.cmp b Ir.Eq (Ir.Reg proto) (c8 17) in
  let hlen = header_len b in
  let in_window = ports_in_window b ~hlen ~n:4 in
  let tcp_or_udp =
    Bld.assign b ~width:1 (Ir.Binop (Ir.Or, Ir.Reg is_tcp, Ir.Reg is_udp))
  in
  let countable =
    Bld.assign b ~width:1
      (Ir.Binop (Ir.And, Ir.Reg tcp_or_udp, Ir.Reg in_window))
  in
  let count_blk = Bld.new_block b and out_blk = Bld.new_block b in
  Bld.term b (Ir.Branch (Ir.Reg countable, count_blk, out_blk));
  Bld.select b count_blk;
  let key = flow_key b ~hlen in
  let n = Bld.kv_read b ~store:"flows" ~key:(Ir.Reg key) ~val_width:32 in
  let n' = Bld.assign b ~width:32 (Ir.Binop (Ir.Add, Ir.Reg n, c32 1)) in
  Bld.instr b (Ir.Kv_write ("flows", Ir.Reg key, Ir.Reg n'));
  Bld.term b (Ir.Goto out_blk);
  Bld.select b out_blk;
  Bld.term b (Ir.Emit 0);
  Bld.finish b

(** Source-NAT rewriter. TCP/UDP packets get their source address
    rewritten to [public_ip] and their source port to a port allocated
    from the private "nat_next" counter (one mapping per (src, sport)).
    Port 0: rewritten traffic. Port 1: non-TCP/UDP bypass. When the port
    pool is exhausted the packet is dropped — the defensive behaviour;
    see {!El_market.buggy_nat} for the crashing variant the verifier
    catches. *)
let ip_rewriter ~public_ip =
  let b = Bld.create ~name:"IPRewriter" in
  Bld.set_nports b 2;
  Bld.declare_store b
    (Ir.store ~name:"nat_map" ~key_width:48 ~val_width:16 ~kind:Ir.Private
       ~default:(B.zero 16) ());
  Bld.declare_store b
    (Ir.store ~name:"nat_next" ~key_width:1 ~val_width:16 ~kind:Ir.Private
       ~default:(B.zero 16)
       ~init:[ (B.zero 1, B.of_int ~width:16 1024) ] ());
  let proto = Bld.load b ~off:(c16 9) ~n:1 in
  let is_tcp = Bld.cmp b Ir.Eq (Ir.Reg proto) (c8 6) in
  let is_udp = Bld.cmp b Ir.Eq (Ir.Reg proto) (c8 17) in
  let hlen = header_len b in
  let in_window = ports_in_window b ~hlen ~n:2 in
  let tcp_or_udp =
    Bld.assign b ~width:1 (Ir.Binop (Ir.Or, Ir.Reg is_tcp, Ir.Reg is_udp))
  in
  let natable =
    Bld.assign b ~width:1
      (Ir.Binop (Ir.And, Ir.Reg tcp_or_udp, Ir.Reg in_window))
  in
  guard_or_port b (Ir.Reg natable) ~port:1;
  let src = Bld.load b ~off:(c16 12) ~n:4 in
  let sport = Bld.load b ~off:(Ir.Reg hlen) ~n:2 in
  let key = Bld.assign b ~width:48 (Ir.Concat (Ir.Reg src, Ir.Reg sport)) in
  let mapped = Bld.kv_read b ~store:"nat_map" ~key:(Ir.Reg key) ~val_width:16 in
  let have = Bld.cmp b Ir.Ne (Ir.Reg mapped) (c16 0) in
  let use_blk = Bld.new_block b and alloc_blk = Bld.new_block b in
  let chosen = Bld.reg b ~width:16 in
  Bld.term b (Ir.Branch (Ir.Reg have, use_blk, alloc_blk));
  (* Allocate a fresh public port; pool exhausted (wrapped to 0) -> drop. *)
  Bld.select b alloc_blk;
  let next =
    Bld.kv_read b ~store:"nat_next" ~key:(c1 false) ~val_width:16
  in
  let exhausted = Bld.cmp b Ir.Eq (Ir.Reg next) (c16 0) in
  let alloc_ok = Bld.new_block b and dead = Bld.new_block b in
  Bld.term b (Ir.Branch (Ir.Reg exhausted, dead, alloc_ok));
  Bld.select b dead;
  Bld.term b Ir.Drop;
  Bld.select b alloc_ok;
  let next' = Bld.assign b ~width:16 (Ir.Binop (Ir.Add, Ir.Reg next, c16 1)) in
  Bld.instr b (Ir.Kv_write ("nat_next", c1 false, Ir.Reg next'));
  Bld.instr b (Ir.Kv_write ("nat_map", Ir.Reg key, Ir.Reg next));
  Bld.instr b (Ir.Assign (chosen, Ir.Move (Ir.Reg next)));
  let rewrite = Bld.new_block b in
  Bld.term b (Ir.Goto rewrite);
  Bld.select b use_blk;
  Bld.instr b (Ir.Assign (chosen, Ir.Move (Ir.Reg mapped)));
  Bld.term b (Ir.Goto rewrite);
  (* Apply the rewrite; the header checksum is fixed downstream by
     SetIPChecksum. *)
  Bld.select b rewrite;
  Bld.store b ~off:(c16 12) ~n:4 (c32 public_ip);
  Bld.store b ~off:(Ir.Reg hlen) ~n:2 (Ir.Reg chosen);
  Bld.term b (Ir.Emit 0);
  Bld.finish b

(** Bidirectional NAT gateway — the fabric-facing sibling of
    {!ip_rewriter}, dispatching on the input port so one element
    instance carries both directions of the translation state:

    - in-port 0 ({e outbound}, LAN → WAN): source-rewrite to
      [public_ip] exactly as {!ip_rewriter}, but additionally record
      the reverse mapping public-port → inside (src, sport) in the
      private "rev_map" store.
    - in-port 1 ({e inbound}, WAN → LAN): look the destination port up
      in "rev_map"; a hit rewrites the destination back to the inside
      host and emits on port 1, a miss (unsolicited flow — no outbound
      packet has primed the map) drops.

    Output 2 carries non-TCP/UDP bypass traffic for both directions.
    This is the element behind the temporal isolation property: egress
    via port 1 is unreachable from a cold store and becomes reachable
    only after an outbound packet has written "rev_map". *)
let nat_gateway ~public_ip =
  let b = Bld.create ~name:"NATGateway" in
  Bld.set_nports b 3;
  Bld.declare_store b
    (Ir.store ~name:"nat_map" ~key_width:48 ~val_width:16 ~kind:Ir.Private
       ~default:(B.zero 16) ());
  Bld.declare_store b
    (Ir.store ~name:"rev_map" ~key_width:16 ~val_width:48 ~kind:Ir.Private
       ~default:(B.zero 48) ());
  Bld.declare_store b
    (Ir.store ~name:"nat_next" ~key_width:1 ~val_width:16 ~kind:Ir.Private
       ~default:(B.zero 16)
       ~init:[ (B.zero 1, B.of_int ~width:16 1024) ] ());
  let proto = Bld.load b ~off:(c16 9) ~n:1 in
  let is_tcp = Bld.cmp b Ir.Eq (Ir.Reg proto) (c8 6) in
  let is_udp = Bld.cmp b Ir.Eq (Ir.Reg proto) (c8 17) in
  let hlen = header_len b in
  let in_window = ports_in_window b ~hlen ~n:4 in
  let tcp_or_udp =
    Bld.assign b ~width:1 (Ir.Binop (Ir.Or, Ir.Reg is_tcp, Ir.Reg is_udp))
  in
  let natable =
    Bld.assign b ~width:1
      (Ir.Binop (Ir.And, Ir.Reg tcp_or_udp, Ir.Reg in_window))
  in
  guard_or_port b (Ir.Reg natable) ~port:2;
  let in_port = Bld.meta_get b Ir.Port in
  let outbound = Bld.cmp b Ir.Eq (Ir.Reg in_port) (c8 0) in
  let out_blk = Bld.new_block b and in_blk = Bld.new_block b in
  Bld.term b (Ir.Branch (Ir.Reg outbound, out_blk, in_blk));

  (* Outbound: source rewrite + reverse-mapping record. *)
  Bld.select b out_blk;
  let src = Bld.load b ~off:(c16 12) ~n:4 in
  let sport = Bld.load b ~off:(Ir.Reg hlen) ~n:2 in
  let key = Bld.assign b ~width:48 (Ir.Concat (Ir.Reg src, Ir.Reg sport)) in
  let mapped = Bld.kv_read b ~store:"nat_map" ~key:(Ir.Reg key) ~val_width:16 in
  let have = Bld.cmp b Ir.Ne (Ir.Reg mapped) (c16 0) in
  let use_blk = Bld.new_block b and alloc_blk = Bld.new_block b in
  let chosen = Bld.reg b ~width:16 in
  Bld.term b (Ir.Branch (Ir.Reg have, use_blk, alloc_blk));
  Bld.select b alloc_blk;
  let next = Bld.kv_read b ~store:"nat_next" ~key:(c1 false) ~val_width:16 in
  let exhausted = Bld.cmp b Ir.Eq (Ir.Reg next) (c16 0) in
  let alloc_ok = Bld.new_block b and dead = Bld.new_block b in
  Bld.term b (Ir.Branch (Ir.Reg exhausted, dead, alloc_ok));
  Bld.select b dead;
  Bld.term b Ir.Drop;
  Bld.select b alloc_ok;
  let next' = Bld.assign b ~width:16 (Ir.Binop (Ir.Add, Ir.Reg next, c16 1)) in
  Bld.instr b (Ir.Kv_write ("nat_next", c1 false, Ir.Reg next'));
  Bld.instr b (Ir.Kv_write ("nat_map", Ir.Reg key, Ir.Reg next));
  Bld.instr b (Ir.Kv_write ("rev_map", Ir.Reg next, Ir.Reg key));
  Bld.instr b (Ir.Assign (chosen, Ir.Move (Ir.Reg next)));
  let rewrite = Bld.new_block b in
  Bld.term b (Ir.Goto rewrite);
  Bld.select b use_blk;
  Bld.instr b (Ir.Assign (chosen, Ir.Move (Ir.Reg mapped)));
  Bld.term b (Ir.Goto rewrite);
  Bld.select b rewrite;
  Bld.store b ~off:(c16 12) ~n:4 (c32 public_ip);
  Bld.store b ~off:(Ir.Reg hlen) ~n:2 (Ir.Reg chosen);
  Bld.term b (Ir.Emit 0);

  (* Inbound: reverse lookup on the destination port; a cold map means
     no mapping allocated yet -> drop. *)
  Bld.select b in_blk;
  let dport_off =
    Bld.assign b ~width:16 (Ir.Binop (Ir.Add, Ir.Reg hlen, c16 2))
  in
  let dport = Bld.load b ~off:(Ir.Reg dport_off) ~n:2 in
  let back = Bld.kv_read b ~store:"rev_map" ~key:(Ir.Reg dport) ~val_width:48 in
  let known = Bld.cmp b Ir.Ne (Ir.Reg back) (Ir.Const (B.zero 48)) in
  let map_blk = Bld.new_block b and miss_blk = Bld.new_block b in
  Bld.term b (Ir.Branch (Ir.Reg known, map_blk, miss_blk));
  Bld.select b miss_blk;
  Bld.term b Ir.Drop;
  Bld.select b map_blk;
  let inside_ip = Bld.extract b ~hi:47 ~lo:16 (Ir.Reg back) in
  let inside_port = Bld.extract b ~hi:15 ~lo:0 (Ir.Reg back) in
  Bld.store b ~off:(c16 16) ~n:4 (Ir.Reg inside_ip);
  Bld.store b ~off:(Ir.Reg dport_off) ~n:2 (Ir.Reg inside_port);
  Bld.term b (Ir.Emit 1);
  Bld.finish b
