(** Shared, mutable contents of a [Static] key/value store.

    A production FIB is millions of entries; materialising it as an
    association list per consumer (runtime stores, symbolic execution,
    witness replay, the compiled fast path) neither fits memory nor
    supports config churn. Instead every [store_decl] now carries one of
    these: a process-unique identity, a hash table of current contents,
    and a generation counter bumped on every mutation.

    Mutation is the config-churn entry point: [set]/[remove] notify the
    registered listeners with the store identity and the touched key, so
    caches that baked contents into their entries (Step-1 segment
    summaries, Step-2 query-cache entries) can invalidate exactly the
    slices that depended on the mutated key — see
    [Vdp_verif.Staleness].

    Concurrency: lookups may run from many domains at once (symbex
    workers under [-j N]); mutations must be serialised with respect to
    verification, i.e. mutate between verifier runs, not during one.
    Listener registration is append-only and guarded. *)

module B = Vdp_bitvec.Bitvec

(* Keys at most 62 bits wide are stored by their unsigned integer value:
   immediate-int hashing makes a million-entry bulk load several times
   faster than boxed bitvector keys. Wider keys (e.g. 104-bit flow
   tuples) keep the boxed representation. *)
type table =
  | Narrow of (int, B.t) Hashtbl.t
  | Wide of (B.t, B.t) Hashtbl.t

type t = {
  id : int;  (** process-unique identity, survives program transforms *)
  key_width : int;
  val_width : int;
  tbl : table;
  mutable generation : int;  (** bumped on every [set]/[remove] *)
}

let next_id = Atomic.make 0

type listener = t -> B.t -> unit

let listeners : listener list ref = ref []
let listeners_lock = Mutex.create ()

let add_listener f =
  Mutex.lock listeners_lock;
  listeners := f :: !listeners;
  Mutex.unlock listeners_lock

let create ?(size = 64) ~key_width ~val_width () =
  if key_width < 1 then invalid_arg "Static_data: key width must be >= 1";
  let size = max 16 size in
  {
    id = Atomic.fetch_and_add next_id 1;
    key_width;
    val_width;
    tbl =
      (if key_width <= 62 then Narrow (Hashtbl.create size)
       else Wide (Hashtbl.create size));
    generation = 0;
  }

let check_widths t k v =
  if B.width k <> t.key_width then
    invalid_arg "Static_data: key width mismatch";
  match v with
  | Some v when B.width v <> t.val_width ->
    invalid_arg "Static_data: value width mismatch"
  | _ -> ()

let notify t k = List.iter (fun f -> f t k) !listeners

let ikey (k : B.t) = B.to_int_trunc k
let bkey t i = B.of_int ~width:t.key_width i

let set t k v =
  check_widths t k (Some v);
  (match t.tbl with
  | Narrow h -> Hashtbl.replace h (ikey k) v
  | Wide h -> Hashtbl.replace h k v);
  t.generation <- t.generation + 1;
  notify t k

let remove t k =
  check_widths t k None;
  let present =
    match t.tbl with
    | Narrow h ->
      let i = ikey k in
      Hashtbl.mem h i && (Hashtbl.remove h i; true)
    | Wide h -> Hashtbl.mem h k && (Hashtbl.remove h k; true)
  in
  if present then begin
    t.generation <- t.generation + 1;
    notify t k
  end

(* Install without notifying: bulk construction, before any consumer can
   have cached a view of the contents. *)
let preload t k v =
  check_widths t k (Some v);
  match t.tbl with
  | Narrow h -> Hashtbl.replace h (ikey k) v
  | Wide h -> Hashtbl.replace h k v

(* [preload] minus the presence probe: the caller guarantees the key is
   not yet bound (e.g. writing each live slot exactly once into a fresh
   store). Binding an existing key again would shadow it and corrupt
   [length]. *)
let preload_fresh t k v =
  check_widths t k (Some v);
  match t.tbl with
  | Narrow h -> Hashtbl.add h (ikey k) v
  | Wide h -> Hashtbl.add h k v

(* [preload_fresh] taking the key as its unsigned integer value — saves
   a bitvector round trip on million-entry bulk loads. Narrow-key
   stores only. *)
let preload_fresh_int t i v =
  (match t.tbl with
  | Narrow _ -> ()
  | Wide _ -> invalid_arg "Static_data: integer keys need width <= 62");
  if i < 0 || i lsr t.key_width <> 0 then
    invalid_arg "Static_data: key out of range";
  (match v with
  | v when B.width v <> t.val_width ->
    invalid_arg "Static_data: value width mismatch"
  | _ -> ());
  match t.tbl with Narrow h -> Hashtbl.add h i v | Wide _ -> assert false

let of_list ~key_width ~val_width kvs =
  let t = create ~key_width ~val_width () in
  List.iter (fun (k, v) -> preload t k v) kvs;
  t

let find t k =
  match t.tbl with
  | Narrow h -> Hashtbl.find_opt h (ikey k)
  | Wide h -> Hashtbl.find_opt h k

let mem t k =
  match t.tbl with
  | Narrow h -> Hashtbl.mem h (ikey k)
  | Wide h -> Hashtbl.mem h k

let length t =
  match t.tbl with Narrow h -> Hashtbl.length h | Wide h -> Hashtbl.length h

let iter f t =
  match t.tbl with
  | Narrow h -> Hashtbl.iter (fun i v -> f (bkey t i) v) h
  | Wide h -> Hashtbl.iter f h

let fold f t acc =
  match t.tbl with
  | Narrow h -> Hashtbl.fold (fun i v acc -> f (bkey t i) v acc) h acc
  | Wide h -> Hashtbl.fold f h acc

let to_list t = fold (fun k v acc -> (k, v) :: acc) t []
let id t = t.id
let generation t = t.generation
