(** IPFilter — an ordered allow/deny rule list over the IPv4 5-tuple,
    compiled to IR (a small cousin of Click's IPFilter).

    Rule grammar (one rule per config argument, first match wins):

    {v
    allow src 10.0.0.0/8 dst 192.168.0.0/16 proto udp dport 53
    deny proto tcp dport 22
    allow all
    v}

    Packets matching an [allow] rule leave on port 0, [deny] matches
    are dropped, and packets matching no rule are dropped. A rule with
    port clauses only matches TCP/UDP packets whose port fields are
    within the frame; malformed-length packets never match such rules
    (and so fall through). Expects the IP header at offset 0. *)

module B = Vdp_bitvec.Bitvec
module Ir = Vdp_ir.Types
module Bld = Vdp_ir.Builder
module Ipv4 = Vdp_packet.Ipv4
open El_util

type action = Allow | Deny

type clause =
  | Src of int * int  (* prefix, masklen *)
  | Dst of int * int
  | Proto of int
  | Sport of int * int  (* inclusive range *)
  | Dport of int * int

type rule = { action : action; clauses : clause list }

let mask_of_len len =
  if len = 0 then 0 else 0xffffffff lxor ((1 lsl (32 - len)) - 1)

let parse_cidr s =
  match String.split_on_char '/' s with
  | [ addr; len ] -> (Ipv4.addr_of_string addr, int_of_string len)
  | [ addr ] -> (Ipv4.addr_of_string addr, 32)
  | _ -> invalid_arg ("IPFilter: bad prefix " ^ s)

let parse_ports s =
  match String.split_on_char '-' s with
  | [ p ] -> (int_of_string p, int_of_string p)
  | [ lo; hi ] -> (int_of_string lo, int_of_string hi)
  | _ -> invalid_arg ("IPFilter: bad port range " ^ s)

let parse_proto = function
  | "tcp" -> 6
  | "udp" -> 17
  | "icmp" -> 1
  | n -> int_of_string n

let parse_rule spec =
  let tokens =
    String.split_on_char ' ' (String.trim spec)
    |> List.filter (fun t -> t <> "")
  in
  match tokens with
  | [] -> invalid_arg "IPFilter: empty rule"
  | action :: rest ->
    let action =
      match String.lowercase_ascii action with
      | "allow" -> Allow
      | "deny" | "drop" -> Deny
      | a -> invalid_arg ("IPFilter: unknown action " ^ a)
    in
    let rec clauses = function
      | [] -> []
      | [ "all" ] -> []
      | "src" :: v :: rest ->
        let p, l = parse_cidr v in
        Src (p, l) :: clauses rest
      | "dst" :: v :: rest ->
        let p, l = parse_cidr v in
        Dst (p, l) :: clauses rest
      | "proto" :: v :: rest -> Proto (parse_proto v) :: clauses rest
      | "sport" :: v :: rest ->
        let lo, hi = parse_ports v in
        Sport (lo, hi) :: clauses rest
      | "dport" :: v :: rest ->
        let lo, hi = parse_ports v in
        Dport (lo, hi) :: clauses rest
      | t :: _ -> invalid_arg ("IPFilter: unknown clause " ^ t)
    in
    { action; clauses = clauses rest }

let needs_ports r =
  List.exists (function Sport _ | Dport _ -> true | _ -> false) r.clauses

(* Native reference semantics, used by tests as an oracle. *)
let rule_matches_packet r (p : Vdp_packet.Packet.t) =
  match Ipv4.parse p with
  | None -> false
  | Some h ->
    let hlen = h.Ipv4.ihl * 4 in
    let ports_ok =
      (h.Ipv4.proto = 6 || h.Ipv4.proto = 17)
      && Vdp_packet.Packet.length p >= hlen + 4
    in
    List.for_all
      (fun clause ->
        match clause with
        | Src (prefix, len) -> h.Ipv4.src land mask_of_len len = prefix land mask_of_len len
        | Dst (prefix, len) -> h.Ipv4.dst land mask_of_len len = prefix land mask_of_len len
        | Proto n -> h.Ipv4.proto = n
        | Sport (lo, hi) ->
          ports_ok
          &&
          let v = Vdp_packet.Packet.get_be p hlen 2 in
          lo <= v && v <= hi
        | Dport (lo, hi) ->
          ports_ok
          &&
          let v = Vdp_packet.Packet.get_be p (hlen + 2) 2 in
          lo <= v && v <= hi)
      r.clauses

let classify_packet rules p =
  match List.find_opt (fun r -> rule_matches_packet r p) rules with
  | Some { action = Allow; _ } -> `Allow
  | Some { action = Deny; _ } -> `Deny
  | None -> `Deny

(* {1 Compilation to IR} *)

let compile specs =
  let rules = List.map parse_rule specs in
  let b = Bld.create ~name:"IPFilter" in
  (* Shared field loads, guarded by a minimal length check. *)
  let len = Bld.load_len b in
  let has_hdr = Bld.cmp b Ir.Ule (c16 20) (Ir.Reg len) in
  guard_or_drop b (Ir.Reg has_hdr);
  let src = Bld.load b ~off:(c16 12) ~n:4 in
  let dst = Bld.load b ~off:(c16 16) ~n:4 in
  let proto = Bld.load b ~off:(c16 9) ~n:1 in
  let b0 = Bld.load b ~off:(c16 0) ~n:1 in
  let ihl = Bld.assign b ~width:8 (Ir.Binop (Ir.And, Ir.Reg b0, c8 0xf)) in
  let ihl16 = Bld.zext b ~width:16 (Ir.Reg ihl) in
  let hlen =
    Bld.assign b ~width:16 (Ir.Binop (Ir.Shl, Ir.Reg ihl16, c16 2))
  in
  (* ports_ok = proto in {tcp, udp} && hlen + 4 <= len *)
  let is_tcp = Bld.cmp b Ir.Eq (Ir.Reg proto) (c8 6) in
  let is_udp = Bld.cmp b Ir.Eq (Ir.Reg proto) (c8 17) in
  let l4 =
    Bld.assign b ~width:1 (Ir.Binop (Ir.Or, Ir.Reg is_tcp, Ir.Reg is_udp))
  in
  let after =
    Bld.assign b ~width:16 (Ir.Binop (Ir.Add, Ir.Reg hlen, c16 4))
  in
  let fits = Bld.cmp b Ir.Ule (Ir.Reg after) (Ir.Reg len) in
  let ports_ok =
    Bld.assign b ~width:1 (Ir.Binop (Ir.And, Ir.Reg l4, Ir.Reg fits))
  in
  (* Port loads happen inside a guarded block; rules needing ports jump
     there only when ports_ok. We pre-load into registers on the ok
     path and use a flag register on the other. *)
  let sport = Bld.reg b ~width:16 in
  let dport = Bld.reg b ~width:16 in
  Bld.instr b (Ir.Assign (sport, Ir.Move (c16 0)));
  Bld.instr b (Ir.Assign (dport, Ir.Move (c16 0)));
  let load_blk = Bld.new_block b and rules_blk = Bld.new_block b in
  Bld.term b (Ir.Branch (Ir.Reg ports_ok, load_blk, rules_blk));
  Bld.select b load_blk;
  let sp = Bld.load b ~off:(Ir.Reg hlen) ~n:2 in
  let off2 =
    Bld.assign b ~width:16 (Ir.Binop (Ir.Add, Ir.Reg hlen, c16 2))
  in
  let dp = Bld.load b ~off:(Ir.Reg off2) ~n:2 in
  Bld.instr b (Ir.Assign (sport, Ir.Move (Ir.Reg sp)));
  Bld.instr b (Ir.Assign (dport, Ir.Move (Ir.Reg dp)));
  Bld.term b (Ir.Goto rules_blk);
  Bld.select b rules_blk;
  (* Rule chain. *)
  let clause_cond clause =
    match clause with
    | Src (prefix, len) ->
      let masked =
        Bld.assign b ~width:32
          (Ir.Binop (Ir.And, Ir.Reg src, c32 (mask_of_len len)))
      in
      Bld.cmp b Ir.Eq (Ir.Reg masked) (c32 (prefix land mask_of_len len))
    | Dst (prefix, len) ->
      let masked =
        Bld.assign b ~width:32
          (Ir.Binop (Ir.And, Ir.Reg dst, c32 (mask_of_len len)))
      in
      Bld.cmp b Ir.Eq (Ir.Reg masked) (c32 (prefix land mask_of_len len))
    | Proto n -> Bld.cmp b Ir.Eq (Ir.Reg proto) (c8 n)
    | Sport (lo, hi) ->
      let ge = Bld.cmp b Ir.Ule (c16 lo) (Ir.Reg sport) in
      let le = Bld.cmp b Ir.Ule (Ir.Reg sport) (c16 hi) in
      Bld.assign b ~width:1 (Ir.Binop (Ir.And, Ir.Reg ge, Ir.Reg le))
    | Dport (lo, hi) ->
      let ge = Bld.cmp b Ir.Ule (c16 lo) (Ir.Reg dport) in
      let le = Bld.cmp b Ir.Ule (Ir.Reg dport) (c16 hi) in
      Bld.assign b ~width:1 (Ir.Binop (Ir.And, Ir.Reg ge, Ir.Reg le))
  in
  let rec chain = function
    | [] -> Bld.term b Ir.Drop (* default deny *)
    | rule :: rest ->
      let conds =
        (if needs_ports rule then [ Ir.Reg ports_ok ] else [])
        @ List.map (fun c -> Ir.Reg (clause_cond c)) rule.clauses
      in
      let matched =
        List.fold_left
          (fun acc c ->
            Ir.Reg (Bld.assign b ~width:1 (Ir.Binop (Ir.And, acc, c))))
          (c1 true) conds
      in
      let hit_blk = Bld.new_block b and next_blk = Bld.new_block b in
      Bld.term b (Ir.Branch (matched, hit_blk, next_blk));
      Bld.select b hit_blk;
      (match rule.action with
      | Allow -> Bld.term b (Ir.Emit 0)
      | Deny -> Bld.term b Ir.Drop);
      Bld.select b next_blk;
      chain rest
  in
  chain rules;
  Bld.finish b
