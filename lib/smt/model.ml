(** Variable assignments produced by the solver (or built by hand).

    Lookups of unassigned variables default to zero / false, matching the
    convention that a satisfying model only needs to pin the variables
    the constraints mention. *)

module B = Vdp_bitvec.Bitvec

type t = {
  bvs : (string, B.t) Hashtbl.t;
  bools : (string, bool) Hashtbl.t;
}

let create () = { bvs = Hashtbl.create 16; bools = Hashtbl.create 16 }

let copy m = { bvs = Hashtbl.copy m.bvs; bools = Hashtbl.copy m.bools }

let set_bv m name v = Hashtbl.replace m.bvs name v
let set_bool m name b = Hashtbl.replace m.bools name b

let bv m name ~width =
  match Hashtbl.find_opt m.bvs name with
  | Some v -> v
  | None -> B.zero width

let bv_opt m name = Hashtbl.find_opt m.bvs name
let bool_opt m name = Hashtbl.find_opt m.bools name
let bool m name = Option.value ~default:false (Hashtbl.find_opt m.bools name)

let of_list pairs =
  let m = create () in
  List.iter (fun (name, v) -> set_bv m name v) pairs;
  m

let bindings m =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) m.bvs []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (k, v) -> Format.fprintf fmt "%s = %s@," k (B.to_string_hex v))
    (bindings m);
  Format.fprintf fmt "@]"
