# Convenience targets; `make ci` is what the CI job runs.

.PHONY: all build test bench ci clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

ci: build
	dune runtest
	dune exec bin/vdpverify.exe -- crash examples/router.click
	dune exec bin/vdpverify.exe -- crash -j 4 --certify examples/router.click
	dune exec bin/vdpverify.exe -- verify --certify examples/router.click
	dune exec bin/vdpverify.exe -- crash --certify examples/firewall.click
	dune exec bin/vdpverify.exe -- replay examples/router.click
	dune exec bin/vdpverify.exe -- replay examples/firewall.click
	dune exec bin/vdpverify.exe -- replay --engine batched examples/router.click
	dune exec bin/vdpverify.exe -- replay --engine compiled examples/router.click
	dune exec bin/vdpverify.exe -- replay --engine compiled examples/firewall.click
	dune exec bin/vdpverify.exe -- pump -n 20000 --engine compiled examples/router.click
	dune exec bench/main.exe -- e1
	VDP_E7_SMOKE=1 dune exec bench/main.exe -- e7
	dune exec bench/main.exe -- e8
	VDP_E9_SMOKE=1 dune exec bench/main.exe -- e9
	VDP_E10_SMOKE=1 dune exec bench/main.exe -- e10
	VDP_E11_SMOKE=1 dune exec bench/main.exe -- e11
	VDP_E12_SMOKE=1 dune exec bench/main.exe -- e12
	dune exec bin/vdpverify.exe -- delta examples/radix_router.click --add "198.51.100.0/24 1"
	dune exec bin/vdpverify.exe -- reach examples/multi_tenant.click
	dune exec bin/vdpverify.exe -- isolate examples/multi_tenant.click
	VDP_E13_SMOKE=1 dune exec bench/main.exe -- e13

clean:
	dune clean
