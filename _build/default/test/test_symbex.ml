(* The symbolic-execution engine: segment enumeration, crash
   detection, loop handling — and the key soundness oracle: every
   concrete run is covered by exactly the segment whose constraints the
   packet satisfies, with matching outcome and instruction count. *)

module B = Vdp_bitvec.Bitvec
module T = Vdp_smt.Term
module Model = Vdp_smt.Model
module Eval = Vdp_smt.Eval
module Ir = Vdp_ir.Types
module Interp = Vdp_ir.Interp
module Stores = Vdp_ir.Stores
module P = Vdp_packet.Packet
module E = Vdp_symbex.Engine
module S = Vdp_symbex.Sstate
module L = Vdp_symbex.Loopinfo
module Click = Vdp_click

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let crashes (r : E.result) =
  List.filter
    (fun s -> match s.E.outcome with E.O_crash _ -> true | _ -> false)
    r.E.segments

(* Build a model binding the packet input variables to a concrete
   packet (window-relative). *)
let model_of_packet pkt =
  let m = Model.create () in
  Model.set_bv m S.len_var (B.of_int ~width:16 (P.length pkt));
  for j = 0 to P.length pkt - 1 do
    Model.set_bv m (S.byte_var j) (B.of_int ~width:8 (P.get_u8 pkt j))
  done;
  m

(* A segment covers a packet if all its constraints evaluate true
   (internal variables default to the model's zero — only valid for
   programs without KV reads or havoc; fine for the elements below). *)
let covering_segments (r : E.result) pkt =
  let m = model_of_packet pkt in
  List.filter
    (fun (s : E.segment) -> List.for_all (Eval.eval_bool m) s.E.cond)
    r.E.segments

let same_outcome (sym : E.outcome) (conc : Ir.outcome) =
  match (sym, conc) with
  | E.O_emit p, Ir.Emitted q -> p = q
  | E.O_drop, Ir.Dropped -> true
  | E.O_crash _, Ir.Crashed _ -> true
  | _ -> false

let unit_tests =
  [
    Alcotest.test_case "fig1 finds the crash and its inputs" `Quick
      (fun () ->
        let r = E.explore (Click.El_toy.fig1 ()) in
        check_int "no incomplete" 0 r.E.incomplete;
        (* Paths: len=0 oob, assert crash, in<10, in>=10. *)
        let cr = crashes r in
        check_bool "has assert crash" true
          (List.exists
             (fun s ->
               match s.E.outcome with
               | E.O_crash (E.C_assert _) -> true
               | _ -> false)
             cr);
        (* The assert-crash segment is satisfiable exactly by negative
           bytes. *)
        let assert_seg =
          List.find
            (fun s ->
              match s.E.outcome with
              | E.O_crash (E.C_assert _) -> true
              | _ -> false)
            cr
        in
        match Vdp_smt.Solver.check assert_seg.E.cond with
        | Vdp_smt.Solver.Sat m ->
          let b0 = Model.bv m (S.byte_var 0) ~width:8 in
          check_bool "witness byte is negative (signed)" true (B.msb b0)
        | _ -> Alcotest.fail "expected satisfiable crash segment");
    Alcotest.test_case "loop summarisation bounds instruction count"
      `Quick (fun () ->
        let r = E.explore (Click.El_ip.ip_gw_options ~gw:1) in
        check_int "complete" 0 r.E.incomplete;
        check_bool "some segment summarized" true
          (List.exists (fun s -> s.E.summarized) r.E.segments);
        List.iter
          (fun (s : E.segment) ->
            check_bool "hi >= lo" true (s.E.instr_hi >= s.E.instr_lo);
            check_bool "bounded" true (s.E.instr_hi < 10_000))
          r.E.segments);
    Alcotest.test_case "unrolled checksum loop is exact" `Quick (fun () ->
        let r = E.explore (Click.El_ip.check_ip_header ()) in
        check_int "complete" 0 r.E.incomplete;
        List.iter
          (fun (s : E.segment) ->
            check_bool "exact count" true (s.E.instr_lo = s.E.instr_hi))
          r.E.segments);
    Alcotest.test_case "division forks a crash segment" `Quick (fun () ->
        let r = E.explore (Click.El_market.buggy_quota ~quota:100) in
        check_bool "div0 segment" true
          (List.exists
             (fun s -> s.E.outcome = E.O_crash E.C_div0)
             r.E.segments));
    Alcotest.test_case "static store reads resolve concretely" `Quick
      (fun () ->
        (* RadixIPLookup reads lpm16/lpm32 with symbolic keys: fresh
           values; but the Counter's private store also yields fresh
           values — check the kv log records them. *)
        let r = E.explore (Click.El_basic.counter ()) in
        let seg = List.hd r.E.segments in
        check_bool "kv events logged" true (List.length seg.E.kv_log >= 4));
    Alcotest.test_case "loopinfo finds the options loop" `Quick (fun () ->
        let loops = L.analyze (Click.El_ip.ip_gw_options ~gw:1) in
        check_bool "at least one loop" true (loops <> []);
        check_bool "a branchy loop exists" true
          (List.exists (fun l -> l.L.body_branches >= 2) loops));
    Alcotest.test_case "loopinfo: checksum loop is straight-line" `Quick
      (fun () ->
        let loops = L.analyze (Click.El_ip.check_ip_header ()) in
        check_bool "exactly one loop" true (List.length loops = 1);
        let l = List.hd loops in
        check_int "no body branches" 0 l.L.body_branches);
    Alcotest.test_case "strip suspect covers short packets only" `Quick
      (fun () ->
        let r = E.explore (Click.El_basic.strip 14) in
        let cr = List.hd (crashes r) in
        (* Satisfiable, and every model has len < 14. *)
        match Vdp_smt.Solver.check cr.E.cond with
        | Vdp_smt.Solver.Sat m ->
          check_bool "len < 14" true
            (B.to_int_trunc (Model.bv m S.len_var ~width:16) < 14)
        | _ -> Alcotest.fail "expected sat");
  ]

(* Oracle: for random concrete packets, the engine's segments must
   cover the packet and predict outcome + instruction count. Uses
   store-free, loop-free elements so segment conditions are total. *)
let coverage_oracle name prog gen_pkt =
  QCheck.Test.make ~count:100 ~name
    (QCheck.make ~print:(fun i -> string_of_int i) QCheck.Gen.int)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let pkt = gen_pkt st in
      let r = E.explore prog in
      QCheck.assume (r.E.incomplete = 0);
      let covering = covering_segments r pkt in
      (* Exactly one segment must cover any concrete input. *)
      if List.length covering <> 1 then false
      else begin
        let seg = List.hd covering in
        let stores = Stores.init prog.Ir.stores in
        let res = Interp.run prog stores (P.clone pkt) in
        same_outcome seg.E.outcome res.Interp.outcome
        && seg.E.instr_lo <= res.Interp.instr_count
        && res.Interp.instr_count <= seg.E.instr_hi
      end)

let props =
  [
    coverage_oracle "segments partition inputs: CheckIPHeader"
      (Click.El_ip.check_ip_header ())
      (fun st ->
        if Random.State.bool st then
          Vdp_packet.Gen.random_frame ~min_len:1 ~max_len:64 st
        else begin
          let f = Vdp_packet.Gen.random_flow st in
          let p = Vdp_packet.Gen.frame_of_flow f in
          P.pull p 14;
          p
        end);
    coverage_oracle "segments partition inputs: Classifier"
      (Click.El_classifier.compile [ "12/0800"; "12/0806 20/0001"; "-" ])
      (fun st -> Vdp_packet.Gen.random_frame ~min_len:1 ~max_len:48 st);
    coverage_oracle "segments partition inputs: DecIPTTL"
      (Click.El_ip.dec_ip_ttl ())
      (fun st -> Vdp_packet.Gen.random_frame ~min_len:1 ~max_len:32 st);
    coverage_oracle "segments partition inputs: StaticIPLookup"
      (Click.El_lookup.static_ip_lookup
         (List.map Click.El_lookup.parse_route
            [ "10.0.0.0/8 0"; "192.168.0.0/16 1"; "0.0.0.0/0 2" ]))
      (fun st -> Vdp_packet.Gen.random_frame ~min_len:1 ~max_len:32 st);
    coverage_oracle "segments partition inputs: ToyE2"
      (Click.El_toy.e2 ())
      (fun st -> Vdp_packet.Gen.random_frame ~min_len:1 ~max_len:4 st);
  ]

let tests = unit_tests @ List.map QCheck_alcotest.to_alcotest props
