lib/smt/term.mli: Format Sort Vdp_bitvec
