(** Cheap unsigned-interval analysis used to refute constraints without
    bit-blasting.

    Two services:
    - [range t] — conservative unsigned bounds of a bit-vector term
      (widths up to 30 bits; wider terms fall back to the trivial range);
    - [refute t] — [true] only if the boolean term is definitely
      unsatisfiable. Sound, far from complete: it intersects the ranges
      implied by comparison atoms that share a common subject term, which
      is exactly the shape produced by composing pipeline segments
      (e.g. [in < 0 && 0 < 0] in the paper's toy example). *)

module B = Vdp_bitvec.Bitvec

let max_tracked_width = 30

let full_range w =
  if w > max_tracked_width then None else Some (0, (1 lsl w) - 1)

let rec range (t : Term.t) : (int * int) option =
  let w = Term.width t in
  if w > max_tracked_width then None
  else
    match t.node with
    | Bv_const v -> let n = B.to_int_trunc v in Some (n, n)
    | Zext (_, a) ->
      (match range a with
      | Some r -> Some r
      | None -> full_range w)
    | Extract (hi, 0, a) -> (
      match range a with
      | Some (lo', hi') when hi' < 1 lsl (hi + 1) -> Some (lo', hi')
      | _ -> full_range w)
    | Bv_bin (Badd, a, b) -> (
      match (range a, range b) with
      | Some (la, ha), Some (lb, hb) when ha + hb < 1 lsl w ->
        Some (la + lb, ha + hb)
      | _ -> full_range w)
    | Bv_bin (Bmul, a, b) -> (
      match (range a, range b) with
      | Some (la, ha), Some (lb, hb) when ha * hb < 1 lsl w ->
        Some (la * lb, ha * hb)
      | _ -> full_range w)
    | Bv_bin (Band, a, b) -> (
      let bound t' =
        match range t' with Some (_, h) -> h | None -> (1 lsl w) - 1
      in
      Some (0, min (bound a) (bound b)))
    | Bv_bin (Blshr, a, b) -> (
      match (range a, Term.const_value b) with
      | Some (_, ha), Some k -> Some (0, ha lsr B.to_int_trunc k)
      | _ -> full_range w)
    | Bv_bin (Bshl, a, b) -> (
      match (range a, Term.const_value b) with
      | Some (lo', hi'), Some k ->
        let k = B.to_int_trunc k in
        if k < w && hi' lsl k < 1 lsl w then Some (lo' lsl k, hi' lsl k)
        else full_range w
      | _ -> full_range w)
    | _ -> full_range w

(* Constraint atoms of the shape [cmp subject const] (or symmetric). *)
type bound = { subject : Term.t; lo : int; hi : int }

let atom_bound (t : Term.t) ~(positive : bool) : bound option =
  let mk subject lo hi =
    let w = Term.width subject in
    if w > max_tracked_width then None else Some { subject; lo; hi }
  in
  let max_of t' = (1 lsl Term.width t') - 1 in
  let as_const t' =
    match Term.const_value t' with
    | Some v ->
      let n = B.to_int_trunc v in
      if B.width v <= max_tracked_width then Some n else None
    | None -> None
  in
  match (t.node, positive) with
  | Term.Bv_cmp (op, a, b), _ -> (
    let flip (op : Term.cmp) : Term.cmp =
      (* negation: not (a < b) == b <= a *)
      match op with Ult -> Ule | Ule -> Ult | Slt -> Sle | Sle -> Slt
    in
    let op, a, b = if positive then (op, a, b) else (flip op, b, a) in
    match (op, as_const a, as_const b) with
    | Term.Ult, None, Some n ->
      if n = 0 then mk a 1 0 (* empty *) else mk a 0 (n - 1)
    | Term.Ule, None, Some n -> mk a 0 n
    | Term.Ult, Some n, None -> mk b (n + 1) (max_of b)
    | Term.Ule, Some n, None -> mk b n (max_of b)
    | _ -> None)
  | Term.Eq (a, b), true -> (
    match (as_const a, as_const b) with
    | Some n, None -> mk b n n
    | None, Some n -> mk a n n
    | _ -> None)
  | _ -> None

(* A term whose unsigned range is a single value — syntactic constants
   plus anything the range analysis pins down (masked constants etc.). *)
let point_value t =
  match range t with Some (lo, hi) when lo = hi -> Some lo | _ -> None

(* {1 Refutation explanations}

   [explain] runs the same analysis as {!refute} but records, per
   subject, which atoms of the conjunction drove the interval empty, in
   the order they applied. The result is a replayable script — not a
   proof by authority: the independent checker in [Vdp_cert] re-derives
   every step (atom membership in the raw conjunction, the bound each
   atom implies, the endpoint each disequality shaves) with its own
   pattern matching and range analysis, so a bug here yields a rejected
   certificate, not a wrong verdict. *)

type explain_step =
  | X_bound of Term.t * int * int
      (** atom implying [subject ∈ \[lo, hi\]], intersected in order *)
  | X_shave of Term.t * int
      (** disequality atom excluding value [n]; at replay time [n] must
          be the current lower or upper endpoint (or the whole interval) *)

type explanation =
  | Ex_interval of { subject : Term.t; steps : explain_step list }
      (** replaying [steps] against the subject's sound initial range
          yields an empty interval *)
  | Ex_diseq_points of Term.t
      (** a disequality atom whose two sides are the same single value *)

let refute (t : Term.t) : bool =
  if Term.is_false t then true
  else
    (* Conjunctions nest once composite conditions are re-conjoined
       (e.g. [And [And [...]; atom]]); flatten them all. *)
    let atoms = ref [] in
    let rec collect (t : Term.t) =
      match t.node with
      | Term.And ts -> Array.iter collect ts
      | _ -> atoms := t :: !atoms
    in
    collect t;
    let tbl : (int, Term.t * int * int) Hashtbl.t = Hashtbl.create 16 in
    let contradiction = ref false in
    let interval_of (subject : Term.t) =
      match Hashtbl.find_opt tbl subject.id with
      | Some (_, lo, hi) -> (lo, hi)
      | None -> (
        match range subject with Some r -> r | None -> (0, max_int))
    in
    let note { subject; lo; hi } =
      let lo0, hi0 = interval_of subject in
      let lo' = max lo lo0 and hi' = min hi hi0 in
      if lo' > hi' then contradiction := true
      else Hashtbl.replace tbl subject.id (subject, lo', hi')
    in
    (* Negated equalities cannot be intervals, but they shave the ends
       off one: collect them and apply after the bounds have settled. *)
    let diseqs : (Term.t * int) list ref = ref [] in
    let note_diseq (a : Term.t) (b : Term.t) =
      if Term.width a <= max_tracked_width then
        match (point_value a, point_value b) with
        | Some n, None -> diseqs := (b, n) :: !diseqs
        | None, Some n -> diseqs := (a, n) :: !diseqs
        | Some n, Some m -> if n = m then contradiction := true
        | None, None -> ()
    in
    List.iter
      (fun atom ->
        let atom, positive =
          match atom.Term.node with
          | Term.Not inner -> (inner, false)
          | _ -> (atom, true)
        in
        match (atom.Term.node, positive) with
        | Term.Eq (a, b), false when not (Sort.is_bool (Term.sort a)) ->
          note_diseq a b
        | _ -> (
          match atom_bound atom ~positive with
          | Some b -> note b
          | None -> ()))
      !atoms;
    (* Each diseq can tighten an interval endpoint, which can arm other
       diseqs on the same subject; iterate to a fixpoint (each pass that
       changes anything shrinks some interval, so this terminates). *)
    let changed = ref true in
    while !changed && not !contradiction do
      changed := false;
      List.iter
        (fun ((subject : Term.t), n) ->
          if not !contradiction then begin
            let lo, hi = interval_of subject in
            if lo = n && hi = n then contradiction := true
            else if lo = n then begin
              Hashtbl.replace tbl subject.id (subject, lo + 1, hi);
              changed := true
            end
            else if hi = n then begin
              Hashtbl.replace tbl subject.id (subject, lo, hi - 1);
              changed := true
            end
          end)
        !diseqs
    done;
    !contradiction

let explain (t : Term.t) : explanation option =
  if Term.is_false t then None
  else begin
    let atoms = ref [] in
    let rec collect (t : Term.t) =
      match t.node with
      | Term.And ts -> Array.iter collect ts
      | _ -> atoms := t :: !atoms
    in
    collect t;
    (* subject id -> (subject, lo, hi, applied steps newest first) *)
    let tbl : (int, Term.t * int * int * explain_step list) Hashtbl.t =
      Hashtbl.create 16
    in
    let found = ref None in
    let state_of (subject : Term.t) =
      match Hashtbl.find_opt tbl subject.id with
      | Some (_, lo, hi, steps) -> (lo, hi, steps)
      | None -> (
        match range subject with
        | Some (lo, hi) -> (lo, hi, [])
        | None -> (0, max_int, []))
    in
    let emit subject steps =
      if !found = None then
        found := Some (Ex_interval { subject; steps = List.rev steps })
    in
    let note atom { subject; lo; hi } =
      let lo0, hi0, steps = state_of subject in
      let lo' = max lo lo0 and hi' = min hi hi0 in
      let steps = X_bound (atom, lo, hi) :: steps in
      if lo' > hi' then emit subject steps
      else Hashtbl.replace tbl subject.id (subject, lo', hi', steps)
    in
    let diseqs : (Term.t * Term.t * int) list ref = ref [] in
    let note_diseq atom (a : Term.t) (b : Term.t) =
      if Term.width a <= max_tracked_width then
        match (point_value a, point_value b) with
        | Some n, None -> diseqs := (atom, b, n) :: !diseqs
        | None, Some n -> diseqs := (atom, a, n) :: !diseqs
        | Some n, Some m ->
          if n = m && !found = None then found := Some (Ex_diseq_points atom)
        | None, None -> ()
    in
    List.iter
      (fun atom ->
        if !found = None then begin
          let inner, positive =
            match atom.Term.node with
            | Term.Not inner -> (inner, false)
            | _ -> (atom, true)
          in
          match (inner.Term.node, positive) with
          | Term.Eq (a, b), false when not (Sort.is_bool (Term.sort a)) ->
            note_diseq atom a b
          | _ -> (
            match atom_bound inner ~positive with
            | Some b -> note atom b
            | None -> ())
        end)
      !atoms;
    let changed = ref true in
    while !changed && !found = None do
      changed := false;
      List.iter
        (fun ((atom : Term.t), (subject : Term.t), n) ->
          if !found = None then begin
            let lo, hi, steps = state_of subject in
            if lo = n && hi = n then
              emit subject (X_shave (atom, n) :: steps)
            else if lo = n then begin
              Hashtbl.replace tbl subject.id
                (subject, lo + 1, hi, X_shave (atom, n) :: steps);
              changed := true
            end
            else if hi = n then begin
              Hashtbl.replace tbl subject.id
                (subject, lo, hi - 1, X_shave (atom, n) :: steps);
              changed := true
            end
          end)
        !diseqs
    done;
    !found
  end
