lib/smt/bitblast.ml: Array Hashtbl List Model Sat Sort Term Vdp_bitvec
