(* LPM structures (trie vs DIR arrays), flow table, classifier. *)

module Lpm = Vdp_tables.Lpm
module Dir = Vdp_tables.Dir_lpm
module Ft = Vdp_tables.Flow_table
module Cls = Vdp_tables.Classifier
module P = Vdp_packet.Packet
module Ipv4 = Vdp_packet.Ipv4

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let ip = Ipv4.addr_of_string

let opt_int = Alcotest.(check (option int))

let sample_routes =
  [
    (ip "0.0.0.0", 0, 0);
    (ip "10.0.0.0", 8, 1);
    (ip "10.1.0.0", 16, 2);
    (ip "10.1.2.0", 24, 3);
    (ip "192.168.0.0", 16, 4);
  ]

let unit_tests =
  [
    Alcotest.test_case "trie longest match" `Quick (fun () ->
        let t = Lpm.of_list sample_routes in
        opt_int "default" (Some 0) (Lpm.lookup t (ip "8.8.8.8"));
        opt_int "/8" (Some 1) (Lpm.lookup t (ip "10.200.0.1"));
        opt_int "/16" (Some 2) (Lpm.lookup t (ip "10.1.99.1"));
        opt_int "/24" (Some 3) (Lpm.lookup t (ip "10.1.2.200"));
        opt_int "other /16" (Some 4) (Lpm.lookup t (ip "192.168.44.5")));
    Alcotest.test_case "trie without default" `Quick (fun () ->
        let t = Lpm.of_list [ (ip "10.0.0.0", 8, 1) ] in
        opt_int "miss" None (Lpm.lookup t (ip "11.0.0.1")));
    Alcotest.test_case "dir agrees on samples" `Quick (fun () ->
        let d = Dir.of_routes sample_routes in
        opt_int "default" (Some 0) (Dir.lookup d (ip "8.8.8.8"));
        opt_int "/24" (Some 3) (Dir.lookup d (ip "10.1.2.200"));
        opt_int "/16 behind /24" (Some 2) (Dir.lookup d (ip "10.1.3.1")));
    Alcotest.test_case "dir handles /32" `Quick (fun () ->
        let d =
          Dir.of_routes [ (ip "0.0.0.0", 0, 0); (ip "10.1.2.3", 32, 9) ]
        in
        opt_int "host" (Some 9) (Dir.lookup d (ip "10.1.2.3"));
        opt_int "neighbour" (Some 0) (Dir.lookup d (ip "10.1.2.4")));
    Alcotest.test_case "flow table basics" `Quick (fun () ->
        let t = Ft.create ~buckets:8 ~overflow:8 in
        Ft.set t 1 10;
        Ft.set t 9 90;  (* same bucket as 1 for many hash choices *)
        Ft.set t 1 11;
        opt_int "updated" (Some 11) (Ft.find t 1);
        opt_int "chained" (Some 90) (Ft.find t 9);
        opt_int "missing" None (Ft.find t 3);
        check_int "count" 2 (Ft.count t));
    Alcotest.test_case "flow table remove" `Quick (fun () ->
        let t = Ft.create ~buckets:4 ~overflow:8 in
        List.iter (fun k -> Ft.set t k (k * 10)) [ 1; 5; 9; 13 ];
        Ft.remove t 5;
        opt_int "gone" None (Ft.find t 5);
        opt_int "kept" (Some 90) (Ft.find t 9);
        Ft.set t 5 50;
        opt_int "reinserted" (Some 50) (Ft.find t 5));
    Alcotest.test_case "flow table raises Full" `Quick (fun () ->
        let t = Ft.create ~buckets:1 ~overflow:2 in
        Ft.set t 0 0;
        Ft.set t 1 1;
        Ft.set t 2 2;
        check_bool "full" true
          (try Ft.set t 3 3; false with Ft.Full -> true));
    Alcotest.test_case "classifier patterns" `Quick (fun () ->
        let t = Cls.parse [ "12/0800"; "12/0806 20/0001"; "-" ] in
        let ipv4_frame =
          P.create (String.make 12 '\000' ^ "\x08\x00" ^ String.make 20 '\000')
        in
        opt_int "ip" (Some 0) (Cls.classify t ipv4_frame);
        let arp_req =
          P.create
            (String.make 12 '\000' ^ "\x08\x06" ^ String.make 6 '\000'
           ^ "\x00\x01" ^ String.make 10 '\000')
        in
        opt_int "arp request" (Some 1) (Cls.classify t arp_req);
        let other = P.create (String.make 14 '\xff') in
        opt_int "fallthrough" (Some 2) (Cls.classify t other);
        (* Short frame can't match the 14-byte patterns, falls to '-' *)
        let short = P.create "abc" in
        opt_int "short" (Some 2) (Cls.classify t short));
    Alcotest.test_case "classifier with mask" `Quick (fun () ->
        let t = Cls.parse [ "0/40%f0" ] in
        opt_int "0x45 matches" (Some 0) (Cls.classify t (P.create "\x45"));
        opt_int "0x40 matches" (Some 0) (Cls.classify t (P.create "\x40"));
        opt_int "0x55 no" None (Cls.classify t (P.create "\x55")));
  ]

let mask_of_len len =
  if len = 0 then 0 else 0xffffffff lxor ((1 lsl (32 - len)) - 1)

let random_route_list =
  QCheck.Gen.(
    let route =
      let* len = int_range 0 32 in
      let* hi = int_bound 0xffff in
      let* lo = int_bound 0xffff in
      let addr = (hi lsl 16) lor lo in
      let* nh = int_range 0 50 in
      return (addr land mask_of_len len, len, nh)
    in
    list_size (int_range 1 20) route)

let props =
  [
    QCheck.Test.make ~count:100 ~name:"dir agrees with trie"
      (QCheck.make
         ~print:(fun routes ->
           String.concat "; "
             (List.map
                (fun (p, l, n) ->
                  Printf.sprintf "%s/%d->%d" (Ipv4.addr_to_string p) l n)
                routes))
         random_route_list)
      (fun routes ->
        (* Dir_lpm supports prefixes <= stride(16)+low(16); all ok. *)
        let trie = Lpm.of_list routes in
        let dir = Dir.of_routes routes in
        let st = Random.State.make [| 7 |] in
        let ok = ref true in
        for _ = 1 to 200 do
          let addr = Random.State.int st 0x3fffffff * 4 in
          (* On ties (same prefix+len inserted twice with different nh),
             both structures keep the last insert in their own order;
             restrict the check to unambiguous tables. *)
          if Lpm.lookup trie addr <> Dir.lookup dir addr then ok := false
        done;
        let unambiguous =
          let tbl = Hashtbl.create 16 in
          List.for_all
            (fun (p, l, _) ->
              let key = (p land (if l = 0 then 0 else 0xffffffff lxor ((1 lsl (32 - l)) - 1)), l) in
              if Hashtbl.mem tbl key then false
              else begin
                Hashtbl.add tbl key ();
                true
              end)
            routes
        in
        QCheck.assume unambiguous;
        !ok);
    QCheck.Test.make ~count:100 ~name:"flow table model check"
      QCheck.(list_of_size (QCheck.Gen.int_range 1 60)
                (pair (int_bound 30) (int_bound 1000)))
      (fun ops ->
        let t = Ft.create ~buckets:16 ~overflow:64 in
        let model = Hashtbl.create 16 in
        List.iter
          (fun (k, v) ->
            Ft.set t k v;
            Hashtbl.replace model k v)
          ops;
        Hashtbl.fold
          (fun k v acc -> acc && Ft.find t k = Some v)
          model true
        && Ft.count t = Hashtbl.length model);
  ]

(* Randomized route tables that force the boundary prefix lengths: a
   /0 default, a batch of /32 host routes (trie depth 32, where the
   fold's shift arithmetic must stay defined), and random middles; then
   trie vs DIR agreement on a full sweep of a subspace plus random
   addresses across the whole space. *)
let boundary_tests =
  [
    Alcotest.test_case "random tables with /0 and /32, trie vs DIR" `Slow
      (fun () ->
        let st = Random.State.make [| 1337 |] in
        for _ = 1 to 5 do
          let base = Random.State.int st 0x3fffffff * 4 in
          let routes =
            (0, 0, 99)  (* default route *)
            :: List.init 16 (fun i ->
                   (* host routes clustered near [base] *)
                   ((base + i) land 0xffffffff, 32, 100 + i))
            @ List.init 40 (fun i ->
                  let len = 1 + Random.State.int st 31 in
                  let p = Random.State.int st 0x3fffffff * 4 in
                  let mask =
                    if len = 0 then 0
                    else 0xffffffff lxor ((1 lsl (32 - len)) - 1)
                  in
                  (p land mask, len, 200 + i))
          in
          (* Last insert wins in the trie; make the table unambiguous by
             keeping the first route per (prefix, len). *)
          let seen = Hashtbl.create 64 in
          let routes =
            List.filter
              (fun (p, l, _) ->
                let mask =
                  if l = 0 then 0
                  else 0xffffffff lxor ((1 lsl (32 - l)) - 1)
                in
                let key = (p land mask, l) in
                if Hashtbl.mem seen key then false
                else (Hashtbl.add seen key (); true))
              routes
          in
          let trie = Lpm.of_list routes in
          let dir = Dir.of_routes routes in
          (* Full-address sweep of the 2^12 subspace around the host
             routes: exercises /32 matches and their neighbours. *)
          let sweep_base = base land 0xfffff000 in
          for off = 0 to 4095 do
            let addr = sweep_base lor off in
            opt_int "sweep agree" (Lpm.lookup trie addr) (Dir.lookup dir addr)
          done;
          (* And random probes across the whole space. *)
          for _ = 1 to 2000 do
            let addr = Random.State.int st 0x3fffffff * 4 in
            opt_int "random agree" (Lpm.lookup trie addr)
              (Dir.lookup dir addr)
          done
        done);
    Alcotest.test_case "fold roundtrips /0 and /32 prefixes" `Quick
      (fun () ->
        let routes =
          [ (0, 0, 1); (ip "255.255.255.255", 32, 2); (ip "10.0.0.1", 32, 3);
            (ip "10.0.0.0", 8, 4); (ip "128.0.0.0", 1, 5) ]
        in
        let trie = Lpm.of_list routes in
        let collected =
          Lpm.fold (fun ~prefix ~len v acc -> (prefix, len, v) :: acc) trie []
        in
        check_int "all routes folded" (List.length routes)
          (List.length collected);
        List.iter
          (fun r ->
            check_bool "route present" true (List.mem r collected))
          routes;
        (* The deepest fold path reaches len = 32 exactly once per host
           route and must reproduce the full prefix bits. *)
        check_bool "/32 all-ones prefix intact" true
          (List.mem (ip "255.255.255.255", 32, 2) collected));
  ]

(* Out-of-order churn: routes inserted, updated and deleted in random
   length order must leave the DIR table equal to a trie rebuilt from
   the surviving routes. Guards the staleness bug where an insert
   shorter than an existing more-specific route clobbered the
   specific's expanded slots. *)
let churn_tests =
  [
    Alcotest.test_case "short-after-long insert keeps the specific" `Quick
      (fun () ->
        (* /20 first (allocates a low block), then /0 and /8 beneath
           it: the broader routes must fill only unowned slots. *)
        let dir = Dir.create () in
        Dir.insert dir ~prefix:(ip "10.0.16.0") ~len:20 1;
        Dir.insert dir ~prefix:0 ~len:0 2;
        Dir.insert dir ~prefix:(ip "10.0.0.0") ~len:8 3;
        opt_int "/20 survives /0 and /8" (Some 1)
          (Dir.lookup dir (ip "10.0.17.9"));
        opt_int "/8 covers the rest of 10/8" (Some 3)
          (Dir.lookup dir (ip "10.9.0.1"));
        opt_int "/0 covers everything else" (Some 2)
          (Dir.lookup dir (ip "192.0.2.1"));
        (* Deleting the specific uncovers the /8, then the /0. *)
        check_bool "delete /20" true
          (Dir.delete dir ~prefix:(ip "10.0.16.0") ~len:20);
        opt_int "falls back to /8" (Some 3)
          (Dir.lookup dir (ip "10.0.17.9"));
        check_bool "delete /8" true
          (Dir.delete dir ~prefix:(ip "10.0.0.0") ~len:8);
        opt_int "falls back to /0" (Some 2)
          (Dir.lookup dir (ip "10.0.17.9")));
  ]

let churn_props =
  [
    QCheck.Test.make ~count:60
      ~name:"dir agrees with trie under out-of-order churn"
      QCheck.(
        make
          ~print:(fun ops ->
            String.concat "; "
              (List.map
                 (fun (del, p, l, nh) ->
                   Printf.sprintf "%s %s/%d->%d"
                     (if del then "del" else "ins")
                     (Ipv4.addr_to_string p) l nh)
                 ops))
          Gen.(
            list_size (int_range 1 60)
              (let* del = int_bound 3 in
               let* len = int_range 0 32 in
               let* hi = int_bound 0xffff in
               let* lo = int_bound 0xffff in
               let* nh = int_range 0 50 in
               return
                 (del = 0, ((hi lsl 16) lor lo) land mask_of_len len, len, nh))))
      (fun ops ->
        let dir = Dir.create () in
        let model = Hashtbl.create 16 in
        List.iter
          (fun (del, p, l, nh) ->
            if del then begin
              (* Deleting a present key must succeed, an absent one
                 must report failure; the model tracks presence. *)
              let present = Hashtbl.mem model (p, l) in
              let deleted = Dir.delete dir ~prefix:p ~len:l in
              if deleted <> present then
                QCheck.Test.fail_reportf "delete %s/%d: %b, model %b"
                  (Ipv4.addr_to_string p) l deleted present;
              Hashtbl.remove model (p, l)
            end
            else begin
              Dir.insert dir ~prefix:p ~len:l nh;
              Hashtbl.replace model (p, l) nh
            end)
          ops;
        let trie = Lpm.create () in
        Hashtbl.iter
          (fun (p, l) nh -> Lpm.add trie ~prefix:p ~len:l nh)
          model;
        if Dir.count dir <> Hashtbl.length model then
          QCheck.Test.fail_reportf "count %d, model %d" (Dir.count dir)
            (Hashtbl.length model);
        let st = Random.State.make [| 99 |] in
        let probe addr =
          if Lpm.lookup trie addr <> Dir.lookup dir addr then
            QCheck.Test.fail_reportf "lookup %s: trie %s, dir %s"
              (Ipv4.addr_to_string addr)
              (match Lpm.lookup trie addr with
              | None -> "miss"
              | Some v -> string_of_int v)
              (match Dir.lookup dir addr with
              | None -> "miss"
              | Some v -> string_of_int v)
        in
        for _ = 1 to 300 do
          probe (Random.State.int st 0x3fffffff * 4)
        done;
        (* Probe each surviving route's own cone and its fringe. *)
        Hashtbl.iter
          (fun (p, l) _ ->
            probe p;
            probe (p lor (0xffffffff land lnot (mask_of_len l)));
            probe (p lxor 0x10000))
          model;
        true);
  ]

let tests =
  unit_tests @ boundary_tests @ churn_tests
  @ List.map QCheck_alcotest.to_alcotest (props @ churn_props)
