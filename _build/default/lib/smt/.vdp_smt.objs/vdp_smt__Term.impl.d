lib/smt/term.ml: Array Format Hashtbl List Printf Set Sort Stdlib String Vdp_bitvec
