(** Routing lookup elements.

    [StaticIPLookup] compiles the route table into a compare/branch
    chain (longest prefix first) — the table is static state baked into
    the code, which is what makes per-configuration reachability proofs
    meaningful.

    [RadixIPLookup] keeps the routes in a static key/value store indexed
    DIR-style by the top 16 address bits — one bounded store read per
    packet, demonstrating the paper's array-backed-structure approach.
    Prefixes longer than 16 bits fall back to a second store read. *)

module B = Vdp_bitvec.Bitvec
module Ir = Vdp_ir.Types
module Bld = Vdp_ir.Builder
open El_util

type route = {
  prefix : int;   (** network byte-order 32-bit address *)
  plen : int;
  gw : int;       (** next-hop address annotation (0 = directly connected) *)
  port : int;
}

let parse_route spec =
  (* "10.0.0.0/8 1" or "10.0.0.0/8 192.168.0.1 1" *)
  match String.split_on_char ' ' (String.trim spec)
        |> List.filter (fun s -> s <> "")
  with
  | [ cidr; port ] | [ cidr; _; port ] as parts -> (
    let gw =
      match parts with
      | [ _; gw; _ ] -> Vdp_packet.Ipv4.addr_of_string gw
      | _ -> 0
    in
    match String.split_on_char '/' cidr with
    | [ addr; len ] ->
      {
        prefix = Vdp_packet.Ipv4.addr_of_string addr;
        plen = int_of_string len;
        gw;
        port = int_of_string port;
      }
    | _ -> invalid_arg ("StaticIPLookup: bad route " ^ spec))
  | _ -> invalid_arg ("StaticIPLookup: bad route " ^ spec)

let mask_of_len len =
  if len = 0 then 0 else 0xffffffff lxor ((1 lsl (32 - len)) - 1)

let static_ip_lookup routes =
  let routes =
    List.sort (fun r1 r2 -> Stdlib.compare r2.plen r1.plen) routes
  in
  let nports =
    List.fold_left (fun acc r -> max acc (r.port + 1)) 1 routes
  in
  let b = Bld.create ~name:"StaticIPLookup" in
  Bld.set_nports b nports;
  let dst = Bld.load b ~off:(c16 16) ~n:4 in
  let rec chain = function
    | [] -> Bld.term b Ir.Drop (* no route: drop (Click discards too) *)
    | r :: rest ->
      let masked =
        Bld.assign b ~width:32
          (Ir.Binop (Ir.And, Ir.Reg dst, c32 (mask_of_len r.plen)))
      in
      let hit =
        Bld.cmp b Ir.Eq (Ir.Reg masked) (c32 (r.prefix land mask_of_len r.plen))
      in
      let hit_blk = Bld.new_block b and miss_blk = Bld.new_block b in
      Bld.term b (Ir.Branch (Ir.Reg hit, hit_blk, miss_blk));
      Bld.select b hit_blk;
      Bld.instr b (Ir.Meta_set (Ir.W0, c32 r.gw));
      Bld.term b (Ir.Emit r.port);
      Bld.select b miss_blk;
      chain rest
  in
  chain routes;
  Bld.finish b

(** DIR-16-16: static store "lpm16" maps the top 16 bits to a route
    word [port+1 | gw<<8], 0 = miss; store "lpm32" maps the full address
    for longer prefixes, consulted only when the first word has its
    spill bit (bit 40) set. Route words are 48 bits:
    [spill(1) | gw(32) | port+1(8)] packed as gw*256 + code. *)
let route_word ~spill ~gw ~port =
  let w = (gw * 256) + (port + 1) in
  B.of_int ~width:48 (if spill then w lor (1 lsl 40) else w)

let radix_ip_lookup routes =
  (* Expand <=16-bit prefixes over the top-16 table; longer prefixes get
     exact-match entries per covered /32 — callers use them for host
     routes. *)
  let top = Hashtbl.create 1024 in
  let long = Hashtbl.create 64 in
  let sorted =
    List.sort (fun r1 r2 -> Stdlib.compare r1.plen r2.plen) routes
  in
  List.iter
    (fun r ->
      if r.plen <= 16 then begin
        let base = (r.prefix lsr 16) land 0xffff in
        let span = 1 lsl (16 - r.plen) in
        let base = base land lnot (span - 1) in
        for i = base to base + span - 1 do
          Hashtbl.replace top i (r.gw, r.port, false)
        done
      end
      else begin
        if r.plen <> 32 then
          invalid_arg "RadixIPLookup: prefixes must be <=16 or exactly 32";
        Hashtbl.replace long r.prefix (r.gw, r.port);
        let ti = (r.prefix lsr 16) land 0xffff in
        let gw, port, _ =
          match Hashtbl.find_opt top ti with
          | Some entry -> entry
          | None -> (0, -1, false)
        in
        Hashtbl.replace top ti (gw, port, true)
      end)
    sorted;
  let nports =
    List.fold_left (fun acc r -> max acc (r.port + 1)) 1 routes
  in
  let top_init =
    Hashtbl.fold
      (fun k (gw, port, spill) acc ->
        let word =
          if port < 0 then route_word ~spill ~gw:0 ~port:(-1)
          else route_word ~spill ~gw ~port
        in
        (B.of_int ~width:16 k, word) :: acc)
      top []
  in
  let long_init =
    Hashtbl.fold
      (fun k (gw, port) acc ->
        (B.of_int ~width:32 k, route_word ~spill:false ~gw ~port) :: acc)
      long []
  in
  let b = Bld.create ~name:"RadixIPLookup" in
  Bld.set_nports b nports;
  Bld.declare_store b
    {
      Ir.store_name = "lpm16";
      key_width = 16;
      val_width = 48;
      kind = Ir.Static;
      default = B.zero 48;
      init = top_init;
    };
  Bld.declare_store b
    {
      Ir.store_name = "lpm32";
      key_width = 32;
      val_width = 48;
      kind = Ir.Static;
      default = B.zero 48;
      init = long_init;
    };
  let dst = Bld.load b ~off:(c16 16) ~n:4 in
  let hi16 = Bld.extract b ~hi:31 ~lo:16 (Ir.Reg dst) in
  let word = Bld.kv_read b ~store:"lpm16" ~key:(Ir.Reg hi16) ~val_width:48 in
  (* Spill to the exact-match table? *)
  let spill_bit = Bld.extract b ~hi:40 ~lo:40 (Ir.Reg word) in
  let exact_blk = Bld.new_block b and decide_blk = Bld.new_block b in
  let final = Bld.reg b ~width:48 in
  Bld.instr b (Ir.Assign (final, Ir.Move (Ir.Reg word)));
  Bld.term b (Ir.Branch (Ir.Reg spill_bit, exact_blk, decide_blk));
  Bld.select b exact_blk;
  let word32 = Bld.kv_read b ~store:"lpm32" ~key:(Ir.Reg dst) ~val_width:48 in
  (* Exact miss falls back to the top-level word (minus its spill bit). *)
  let miss = Bld.cmp b Ir.Eq (Ir.Reg word32) (Ir.Const (B.zero 48)) in
  let strip_spill =
    Bld.assign b ~width:48
      (Ir.Binop
         (Ir.And, Ir.Reg word, Ir.Const (B.lognot (B.shl (B.one 48) 40))))
  in
  let chosen =
    Bld.select_val b ~width:48 (Ir.Reg miss) (Ir.Reg strip_spill)
      (Ir.Reg word32)
  in
  Bld.instr b (Ir.Assign (final, Ir.Move (Ir.Reg chosen)));
  Bld.term b (Ir.Goto decide_blk);
  Bld.select b decide_blk;
  let code = Bld.extract b ~hi:7 ~lo:0 (Ir.Reg final) in
  let has_route = Bld.cmp b Ir.Ne (Ir.Reg code) (c8 0) in
  guard_or_drop b (Ir.Reg has_route);
  let gw = Bld.extract b ~hi:39 ~lo:8 (Ir.Reg final) in
  Bld.instr b (Ir.Meta_set (Ir.W0, Ir.Reg gw));
  (* Dispatch on the port encoded in the route word. *)
  let rec dispatch p =
    if p >= nports then Bld.term b Ir.Drop
    else begin
      let hit = Bld.cmp b Ir.Eq (Ir.Reg code) (c8 (p + 1)) in
      let hit_blk = Bld.new_block b and next_blk = Bld.new_block b in
      Bld.term b (Ir.Branch (Ir.Reg hit, hit_blk, next_blk));
      Bld.select b hit_blk;
      Bld.term b (Ir.Emit p);
      Bld.select b next_blk;
      dispatch (p + 1)
    end
  in
  dispatch 0;
  Bld.finish b
