(** Pipeline graphs: elements wired output-port to input-port.

    Output ports with no edge are {e egress points}: a packet emitted
    there leaves the pipeline (ToDevice in Click terms). Egress points
    are numbered in (node, port) order; both the runtime and the
    verifier use that numbering. *)

type node = {
  element : Element.t;
  outputs : (int * int) option array;  (** port -> (dst node, dst port) *)
}

type t = {
  nodes : node array;
  entry : int;
}

let nodes t = t.nodes
let entry t = t.entry
let node t i = t.nodes.(i)
let length t = Array.length t.nodes

(** [create elements edges] — [edges] are
    [(src_node, src_port, dst_node, dst_port)]. *)
let create ?(entry = 0) elements edges =
  let elements = Array.of_list elements in
  let nodes =
    Array.map
      (fun e ->
        { element = e; outputs = Array.make (Element.nports e) None })
      elements
  in
  List.iter
    (fun (src, sport, dst, dport) ->
      if src < 0 || src >= Array.length nodes then
        invalid_arg "Pipeline.create: bad source node";
      if dst < 0 || dst >= Array.length nodes then
        invalid_arg "Pipeline.create: bad destination node";
      let n = nodes.(src) in
      if sport < 0 || sport >= Array.length n.outputs then
        invalid_arg
          (Printf.sprintf "Pipeline.create: %s has no output port %d"
             n.element.Element.name sport);
      if n.outputs.(sport) <> None then
        invalid_arg
          (Printf.sprintf "Pipeline.create: output %s[%d] connected twice"
             n.element.Element.name sport);
      ignore dport;
      n.outputs.(sport) <- Some (dst, dport))
    edges;
  if entry < 0 || entry >= Array.length nodes then
    invalid_arg "Pipeline.create: bad entry";
  { nodes; entry }

(** Chain elements through port 0. *)
let linear elements =
  let n = List.length elements in
  let edges = List.init (n - 1) (fun i -> (i, 0, i + 1, 0)) in
  create elements edges

(** Egress points: (node, port) pairs with no outgoing edge, in order.
    The index in this array is the pipeline-level output number. *)
let egress_points t =
  let acc = ref [] in
  Array.iteri
    (fun ni n ->
      Array.iteri
        (fun p edge -> if edge = None then acc := (ni, p) :: !acc)
        n.outputs)
    t.nodes;
  Array.of_list (List.rev !acc)

let egress_index t ~node:ni ~port =
  let pts = egress_points t in
  let rec go i =
    if i >= Array.length pts then None
    else if pts.(i) = (ni, port) then Some i
    else go (i + 1)
  in
  go 0

(** Topological check: pipelines must be acyclic (packet ownership moves
    strictly forward). Returns a topological order or raises. *)
let topological_order t =
  let n = Array.length t.nodes in
  let state = Array.make n 0 (* 0 unvisited, 1 in progress, 2 done *) in
  let order = ref [] in
  let rec visit i =
    match state.(i) with
    | 1 -> invalid_arg "Pipeline: cycle detected"
    | 2 -> ()
    | _ ->
      state.(i) <- 1;
      Array.iter
        (function Some (dst, _) -> visit dst | None -> ())
        t.nodes.(i).outputs;
      state.(i) <- 2;
      order := i :: !order
  in
  for i = 0 to n - 1 do
    visit i
  done;
  !order

let validate t =
  ignore (topological_order t);
  t

let pp fmt t =
  Format.fprintf fmt "@[<v>pipeline (%d elements):@," (Array.length t.nodes);
  Array.iteri
    (fun i n ->
      Format.fprintf fmt "  [%d] %a" i Element.pp n.element;
      Array.iteri
        (fun p -> function
          | Some (dst, dp) -> Format.fprintf fmt "  [%d]->[%d]%d" p dp dst
          | None -> Format.fprintf fmt "  [%d]->out" p)
        n.outputs;
      Format.fprintf fmt "@,")
    t.nodes;
  Format.fprintf fmt "@]"
