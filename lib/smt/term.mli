(** Hash-consed terms over booleans and bit vectors.

    All construction goes through the smart constructors below, which
    maintain maximal sharing and perform aggressive constant folding and
    local rewriting. Terms are immutable; physical equality coincides
    with semantic-syntactic equality after normalisation, so [t.id] can
    be used as a hash key. *)

type bvbin =
  | Badd | Bsub | Bmul | Budiv | Burem | Bsdiv | Bsrem
  | Band | Bor | Bxor | Bshl | Blshr | Bashr

type cmp = Ult | Ule | Slt | Sle

type node =
  | True
  | False
  | Bool_var of string
  | Not of t
  | And of t array
  | Or of t array
  | Eq of t * t
  | Ite of t * t * t
  | Bv_const of Vdp_bitvec.Bitvec.t
  | Bv_var of string * int
  | Bv_bin of bvbin * t * t
  | Bv_not of t
  | Bv_neg of t
  | Bv_cmp of cmp * t * t
  | Extract of int * int * t  (** [Extract (hi, lo, t)] *)
  | Concat of t * t
  | Zext of int * t
  | Sext of int * t

and t = private { id : int; node : node; sort : Sort.t }

val sort : t -> Sort.t
val width : t -> int
(** Width of a bit-vector term; raises for booleans. *)

val equal : t -> t -> bool
val hash : t -> int
val compare : t -> t -> int

(** {1 Boolean constructors} *)

val tru : t
val fls : t
val bool_const : bool -> t
val bool_var : string -> t
val not_ : t -> t
val and_ : t list -> t
val or_ : t list -> t
val and2 : t -> t -> t
val or2 : t -> t -> t
val implies : t -> t -> t
val eq : t -> t -> t
val neq : t -> t -> t
val ite : t -> t -> t -> t

(** {1 Bit-vector constructors} *)

val bv : Vdp_bitvec.Bitvec.t -> t
val bv_int : width:int -> int -> t
val var : string -> int -> t
(** [var name width] — a symbolic bit vector. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val udiv : t -> t -> t
val urem : t -> t -> t
val sdiv : t -> t -> t
val srem : t -> t -> t
val band : t -> t -> t
val bor : t -> t -> t
val bxor : t -> t -> t
val bnot : t -> t
val bneg : t -> t
val shl : t -> t -> t
val lshr : t -> t -> t
val ashr : t -> t -> t
val ult : t -> t -> t
val ule : t -> t -> t
val ugt : t -> t -> t
val uge : t -> t -> t
val slt : t -> t -> t
val sle : t -> t -> t
val extract : hi:int -> lo:int -> t -> t
val concat : t -> t -> t
(** [concat hi lo]. *)

val zext : int -> t -> t
(** [zext w t] extends to total width [w]. *)

val sext : int -> t -> t

val is_true : t -> bool
val is_false : t -> bool
val const_value : t -> Vdp_bitvec.Bitvec.t option
(** [Some v] iff the term is a bit-vector constant. *)

(** {1 Traversal} *)

val children : t -> t list
val fold_subterms : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Folds over every distinct subterm exactly once (DAG traversal). *)

val free_vars : t -> (string * Sort.t) list
(** Distinct free variables, in no particular order. *)

val size : t -> int
(** Number of distinct subterms. *)

val substitute : (string -> t option) -> t -> t
(** Simultaneous substitution of variables (both bool and bv); the
    replacement must have the variable's sort. *)

val substitute_vars :
  ?memo:(int, t) Hashtbl.t -> (string -> Sort.t -> t option) -> t -> t
(** Like {!substitute}, but the callback also receives the variable's
    sort (so a rename can rebuild the variable without knowing widths
    a priori), and an optional caller-supplied memo table lets a batch
    of terms that share structure be rewritten in one DAG walk: pass
    the same table to every call made with the {e same} callback. *)

val rename_vars : (string -> string) -> t -> t
(** Rename every free variable. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
