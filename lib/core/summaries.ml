(** Step 1 driver: per-element symbolic execution, cached by element
    class + configuration. Akin to compositional test generation, each
    distinct element is symbexed exactly once no matter how many times
    or where it appears in pipelines. *)

module Engine = Vdp_symbex.Engine
module Element = Vdp_click.Element

type entry = {
  result : Engine.result;
  time : float;  (** seconds spent symbexing this element *)
}

type cache = (string, entry) Hashtbl.t

let create_cache () : cache = Hashtbl.create 32

(* The default, process-wide cache. Callers that need isolation (e.g. a
   future parallel Step 1 with one worker per domain) pass their own
   [~cache] instead of mutating this one. *)
let cache : cache = create_cache ()

let clear () = Hashtbl.reset cache

let summarize ?(cache = cache) ?(config = Engine.default_config)
    (e : Element.t) : entry =
  let key = Element.summary_key e in
  match Hashtbl.find_opt cache key with
  | Some entry -> entry
  | None ->
    let t0 = Unix.gettimeofday () in
    let result = Engine.explore ~config e.Element.program in
    let entry = { result; time = Unix.gettimeofday () -. t0 } in
    Hashtbl.add cache key entry;
    entry

let is_suspect_crash (seg : Engine.segment) =
  match seg.Engine.outcome with
  | Engine.O_crash _ -> true
  | Engine.O_emit _ | Engine.O_drop -> false

(** Summaries for every node of a pipeline (sharing identical ones). *)
let of_pipeline ?cache ?config (pl : Vdp_click.Pipeline.t) : entry array =
  Array.map
    (fun (n : Vdp_click.Pipeline.node) ->
      summarize ?cache ?config n.Vdp_click.Pipeline.element)
    (Vdp_click.Pipeline.nodes pl)
