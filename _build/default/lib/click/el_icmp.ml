(** ICMPError — rewrites an IP packet into an ICMP error about it
    (Click's ICMPError, e.g. time-exceeded for DecIPTTL's expired
    port). Input: IP packet at offset 0. Output: a new IP packet
    [new IP header (20) | ICMP header (8) | original IP header + 8
    bytes], checksummed and ready for routing. Port 1 rejects packets
    too short to quote. *)

module B = Vdp_bitvec.Bitvec
module Ir = Vdp_ir.Types
module Bld = Vdp_ir.Builder
open El_util

let icmp_error ~src ~icmp_type ~icmp_code =
  let b = Bld.create ~name:"ICMPError" in
  Bld.set_nports b 2;
  (* Need a full IP header to quote. *)
  let len = Bld.load_len b in
  let has_min = Bld.cmp b Ir.Ule (c16 20) (Ir.Reg len) in
  guard_or_port b (Ir.Reg has_min) ~port:1;
  let b0 = Bld.load b ~off:(c16 0) ~n:1 in
  let ihl = Bld.assign b ~width:8 (Ir.Binop (Ir.And, Ir.Reg b0, c8 0xf)) in
  let ihl16 = Bld.zext b ~width:16 (Ir.Reg ihl) in
  let hlen =
    Bld.assign b ~width:16 (Ir.Binop (Ir.Shl, Ir.Reg ihl16, c16 2))
  in
  (* Quote the header + 8 payload bytes (or what exists of them). *)
  let quote_want =
    Bld.assign b ~width:16 (Ir.Binop (Ir.Add, Ir.Reg hlen, c16 8))
  in
  let enough = Bld.cmp b Ir.Ule (Ir.Reg quote_want) (Ir.Reg len) in
  let quote =
    Bld.select_val b ~width:16 (Ir.Reg enough) (Ir.Reg quote_want)
      (Ir.Reg len)
  in
  let sane = Bld.cmp b Ir.Ule (Ir.Reg quote) (Ir.Reg len) in
  guard_or_port b (Ir.Reg sane) ~port:1;
  (* Original destination becomes the error's destination. *)
  let orig_src = Bld.load b ~off:(c16 12) ~n:4 in
  (* Make room for the new IP (20) + ICMP (8) headers, then truncate
     to headers + quote. *)
  Bld.instr b (Ir.Push 28);
  let total =
    Bld.assign b ~width:16 (Ir.Binop (Ir.Add, Ir.Reg quote, c16 28))
  in
  Bld.instr b (Ir.Take (Ir.Reg total));
  (* New IP header. *)
  Bld.store b ~off:(c16 0) ~n:1 (c8 0x45);
  Bld.store b ~off:(c16 1) ~n:1 (c8 0);
  Bld.store b ~off:(c16 2) ~n:2 (Ir.Reg total);
  Bld.store b ~off:(c16 4) ~n:4 (c32 0) (* ident, flags *);
  Bld.store b ~off:(c16 8) ~n:1 (c8 64) (* ttl *);
  Bld.store b ~off:(c16 9) ~n:1 (c8 1) (* proto ICMP *);
  Bld.store b ~off:(c16 10) ~n:2 (c16 0);
  Bld.store b ~off:(c16 12) ~n:4 (c32 src);
  Bld.store b ~off:(c16 16) ~n:4 (Ir.Reg orig_src);
  (* ICMP header: type, code, checksum(0), unused. *)
  Bld.store b ~off:(c16 20) ~n:1 (c8 icmp_type);
  Bld.store b ~off:(c16 21) ~n:1 (c8 icmp_code);
  Bld.store b ~off:(c16 22) ~n:2 (c16 0);
  Bld.store b ~off:(c16 24) ~n:4 (c32 0);
  (* ICMP checksum over [20, total) — a data-dependent-length loop. *)
  let sum = Bld.reg b ~width:32 in
  let off = Bld.reg b ~width:16 in
  Bld.instr b (Ir.Assign (sum, Ir.Move (c32 0)));
  Bld.instr b (Ir.Assign (off, Ir.Move (c16 20)));
  let head = Bld.new_block b in
  let two = Bld.new_block b in
  let one = Bld.new_block b in
  let step = Bld.new_block b in
  let exit = Bld.new_block b in
  Bld.term b (Ir.Goto head);
  Bld.select b head;
  let off1 =
    Bld.assign b ~width:16 (Ir.Binop (Ir.Add, Ir.Reg off, c16 1))
  in
  let more2 = Bld.cmp b Ir.Ult (Ir.Reg off1) (Ir.Reg total) in
  let more1_blk = Bld.new_block b in
  Bld.term b (Ir.Branch (Ir.Reg more2, two, more1_blk));
  Bld.select b more1_blk;
  let more1 = Bld.cmp b Ir.Ult (Ir.Reg off) (Ir.Reg total) in
  Bld.term b (Ir.Branch (Ir.Reg more1, one, exit));
  (* Full 16-bit word. *)
  Bld.select b two;
  let word = Bld.load b ~off:(Ir.Reg off) ~n:2 in
  let wide = Bld.zext b ~width:32 (Ir.Reg word) in
  Bld.instr b (Ir.Assign (sum, Ir.Binop (Ir.Add, Ir.Reg sum, Ir.Reg wide)));
  Bld.term b (Ir.Goto step);
  (* Trailing odd byte, padded with zero. *)
  Bld.select b one;
  let byte = Bld.load b ~off:(Ir.Reg off) ~n:1 in
  let wideb = Bld.zext b ~width:32 (Ir.Reg byte) in
  let shifted =
    Bld.assign b ~width:32 (Ir.Binop (Ir.Shl, Ir.Reg wideb, c32 8))
  in
  Bld.instr b
    (Ir.Assign (sum, Ir.Binop (Ir.Add, Ir.Reg sum, Ir.Reg shifted)));
  Bld.term b (Ir.Goto step);
  Bld.select b step;
  Bld.instr b (Ir.Assign (off, Ir.Binop (Ir.Add, Ir.Reg off, c16 2)));
  Bld.term b (Ir.Goto head);
  Bld.select b exit;
  let fold () =
    let low =
      Bld.assign b ~width:32 (Ir.Binop (Ir.And, Ir.Reg sum, c32 0xffff))
    in
    let high =
      Bld.assign b ~width:32 (Ir.Binop (Ir.Lshr, Ir.Reg sum, c32 16))
    in
    Bld.instr b (Ir.Assign (sum, Ir.Binop (Ir.Add, Ir.Reg low, Ir.Reg high)))
  in
  fold ();
  fold ();
  let low16 = Bld.extract b ~hi:15 ~lo:0 (Ir.Reg sum) in
  let cks = Bld.assign b ~width:16 (Ir.Unop (Ir.Not, Ir.Reg low16)) in
  Bld.store b ~off:(c16 22) ~n:2 (Ir.Reg cks);
  (* Finally the IP header checksum (fixed 20 bytes). *)
  let ip_sum = checksum_sum b ~hlen_rv:(c16 20) in
  let ip_cks = Bld.assign b ~width:16 (Ir.Unop (Ir.Not, Ir.Reg ip_sum)) in
  Bld.store b ~off:(c16 10) ~n:2 (Ir.Reg ip_cks);
  Bld.term b (Ir.Emit 0);
  Bld.finish b
