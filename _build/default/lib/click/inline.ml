(** Whole-pipeline inlining — the substrate of the {e monolithic}
    verification baseline the paper compares against.

    Produces a single IR program in which each element's [Emit p] is
    rewired to a jump to its successor's entry block. Registers and
    blocks are renumbered; store names are prefixed with the node index
    so two instances of the same class keep disjoint state (matching the
    per-instance store instantiation of the runtime). *)

module Ir = Vdp_ir.Types

let prefix_store ni name = Printf.sprintf "n%d.%s" ni name

let inline (pl : Pipeline.t) : Ir.program =
  let nodes = Pipeline.nodes pl in
  let n = Array.length nodes in
  (* Per-node offsets. *)
  let reg_base = Array.make n 0 in
  let block_base = Array.make n 0 in
  let nregs = ref 0 and nblocks = ref 0 in
  Array.iteri
    (fun i (node : Pipeline.node) ->
      let p = node.Pipeline.element.Element.program in
      reg_base.(i) <- !nregs;
      block_base.(i) <- !nblocks;
      nregs := !nregs + Array.length p.Ir.reg_widths;
      nblocks := !nblocks + Array.length p.Ir.blocks)
    nodes;
  let egress = Pipeline.egress_points pl in
  let negress = Array.length egress in
  let reg_widths = Array.make !nregs 0 in
  let blocks = Array.make !nblocks { Ir.instrs = []; term = Ir.Drop } in
  let stores = ref [] in
  Array.iteri
    (fun i (node : Pipeline.node) ->
      let p = node.Pipeline.element.Element.program in
      let rb = reg_base.(i) and bb = block_base.(i) in
      Array.iteri (fun r w -> reg_widths.(rb + r) <- w) p.Ir.reg_widths;
      List.iter
        (fun d ->
          stores :=
            { d with Ir.store_name = prefix_store i d.Ir.store_name }
            :: !stores)
        p.Ir.stores;
      let rv = function
        | Ir.Const v -> Ir.Const v
        | Ir.Reg r -> Ir.Reg (rb + r)
      in
      let rhs = function
        | Ir.Move v -> Ir.Move (rv v)
        | Ir.Unop (op, v) -> Ir.Unop (op, rv v)
        | Ir.Binop (op, a, b) -> Ir.Binop (op, rv a, rv b)
        | Ir.Cmp (op, a, b) -> Ir.Cmp (op, rv a, rv b)
        | Ir.Select (c, a, b) -> Ir.Select (rv c, rv a, rv b)
        | Ir.Extract (hi, lo, v) -> Ir.Extract (hi, lo, rv v)
        | Ir.Concat (a, b) -> Ir.Concat (rv a, rv b)
        | Ir.Zext (w, v) -> Ir.Zext (w, rv v)
        | Ir.Sext (w, v) -> Ir.Sext (w, rv v)
      in
      let instr = function
        | Ir.Assign (r, rh) -> Ir.Assign (rb + r, rhs rh)
        | Ir.Load (r, off, k) -> Ir.Load (rb + r, rv off, k)
        | Ir.Store (off, v, k) -> Ir.Store (rv off, rv v, k)
        | Ir.Load_len r -> Ir.Load_len (rb + r)
        | Ir.Pull k -> Ir.Pull k
        | Ir.Push k -> Ir.Push k
        | Ir.Take v -> Ir.Take (rv v)
        | Ir.Meta_get (r, m) -> Ir.Meta_get (rb + r, m)
        | Ir.Meta_set (m, v) -> Ir.Meta_set (m, rv v)
        | Ir.Kv_read (r, s, k) -> Ir.Kv_read (rb + r, prefix_store i s, rv k)
        | Ir.Kv_write (s, k, v) -> Ir.Kv_write (prefix_store i s, rv k, rv v)
        | Ir.Assert (c, m) -> Ir.Assert (rv c, m)
      in
      let term = function
        | Ir.Goto l -> Ir.Goto (bb + l)
        | Ir.Branch (c, t, e) -> Ir.Branch (rv c, bb + t, bb + e)
        | Ir.Emit p -> (
          match node.Pipeline.outputs.(p) with
          | Some (dst, _dport) -> Ir.Goto block_base.(dst)
          | None -> (
            match Pipeline.egress_index pl ~node:i ~port:p with
            | Some e -> Ir.Emit e
            | None -> assert false))
        | Ir.Drop -> Ir.Drop
        | Ir.Abort m -> Ir.Abort m
      in
      Array.iteri
        (fun bi (blk : Ir.block) ->
          blocks.(bb + bi) <-
            { Ir.instrs = List.map instr blk.Ir.instrs; term = term blk.Ir.term })
        p.Ir.blocks)
    nodes;
  (* The pipeline entry element must own block 0. *)
  let entry = Pipeline.entry pl in
  if block_base.(entry) <> 0 then begin
    (* Swap the entry node's first block into position 0 is intrusive;
       instead prepend a trampoline — but block 0 must be the entry, so
       rotate: simplest correct approach is to append a copy of the
       blocks with a leading goto. *)
    let with_tramp = Array.make (Array.length blocks + 1) blocks.(0) in
    with_tramp.(0) <- { Ir.instrs = []; term = Ir.Goto (block_base.(entry) + 1) };
    Array.iteri
      (fun i blk ->
        let shift = function
          | Ir.Goto l -> Ir.Goto (l + 1)
          | Ir.Branch (c, t, e) -> Ir.Branch (c, t + 1, e + 1)
          | t -> t
        in
        with_tramp.(i + 1) <- { blk with Ir.term = shift blk.Ir.term })
      blocks;
    Vdp_ir.Validate.check_program
      {
        Ir.name = "pipeline-inline";
        reg_widths;
        blocks = with_tramp;
        stores = List.rev !stores;
        nports = max 1 negress;
      }
  end
  else
    Vdp_ir.Validate.check_program
      {
        Ir.name = "pipeline-inline";
        reg_widths;
        blocks;
        stores = List.rev !stores;
        nports = max 1 negress;
      }
