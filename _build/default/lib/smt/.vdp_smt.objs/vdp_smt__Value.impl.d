lib/smt/value.ml: Format Vdp_bitvec
