(** The baseline the paper compares against: feed the {e whole
    pipeline} to the symbolic-execution engine as one program, with no
    pipeline decomposition, no summary reuse and no loop
    summarisation — the setup under which their general-purpose
    verifier "did not complete within 12 hours".

    The engine is budgeted (paths); exhausting the budget yields
    [Did_not_finish], the honest analogue of a wall-clock timeout. *)

module T = Vdp_smt.Term
module Solver = Vdp_smt.Solver
module Engine = Vdp_symbex.Engine
module S = Vdp_symbex.Sstate

type outcome =
  | Completed of {
      verdict : [ `Proved | `Violated of int ];
      paths : int;
      time : float;
    }
  | Did_not_finish of {
      paths_explored : int;
      time : float;
    }

let default_engine_config =
  {
    Engine.default_config with
    Engine.summarize_loops = false; (* vanilla symbex: unroll everything *)
  }

let check_crash_freedom ?(engine_config = default_engine_config)
    ?(solver_budget = 500_000) ?(time_limit = infinity)
    (pl : Vdp_click.Pipeline.t) : outcome =
  let t0 = Unix.gettimeofday () in
  let prog = Vdp_click.Inline.inline pl in
  let result = Engine.explore ~config:engine_config prog in
  let elapsed () = Unix.gettimeofday () -. t0 in
  if result.Engine.incomplete > 0 || elapsed () > time_limit then
    Did_not_finish { paths_explored = result.Engine.paths; time = elapsed () }
  else begin
    (* Check each crashing path directly against the solver. *)
    let violations = ref 0 in
    let gave_up = ref false in
    List.iter
      (fun (seg : Engine.segment) ->
        if (not !gave_up) && elapsed () <= time_limit then
          match seg.Engine.outcome with
          | Engine.O_crash _ -> (
            match
              Solver.check ~max_conflicts:solver_budget seg.Engine.cond
            with
            | Solver.Sat _ -> incr violations
            | Solver.Unsat -> ()
            | Solver.Unknown -> gave_up := true)
          | _ -> ())
      result.Engine.segments;
    if !gave_up || elapsed () > time_limit then
      Did_not_finish { paths_explored = result.Engine.paths; time = elapsed () }
    else
      Completed
        {
          verdict =
            (if !violations > 0 then `Violated !violations else `Proved);
          paths = result.Engine.paths;
          time = elapsed ();
        }
  end
