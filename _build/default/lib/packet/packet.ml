exception Out_of_bounds of string

type t = {
  buf : Bytes.t;
  mutable head : int;
  mutable len : int;
  mutable port : int;
  mutable color : int;
  mutable w0 : int;
  mutable w1 : int;
}

let default_headroom = 64
let max_frame = 2048

let of_bytes ?(headroom = default_headroom) data =
  let len = Bytes.length data in
  if len > max_frame then raise (Out_of_bounds "create: frame too large");
  let buf = Bytes.make (headroom + max_frame) '\000' in
  Bytes.blit data 0 buf headroom len;
  { buf; head = headroom; len; port = 0; color = 0; w0 = 0; w1 = 0 }

let create ?headroom data = of_bytes ?headroom (Bytes.of_string data)
let length p = p.len

let clone p =
  {
    buf = Bytes.copy p.buf;
    head = p.head;
    len = p.len;
    port = p.port;
    color = p.color;
    w0 = p.w0;
    w1 = p.w1;
  }

let content p = Bytes.sub_string p.buf p.head p.len

let check p off n what =
  if off < 0 || n < 0 || off + n > p.len then
    raise
      (Out_of_bounds
         (Printf.sprintf "%s: offset %d size %d in packet of length %d" what
            off n p.len))

let get_u8 p off =
  check p off 1 "get_u8";
  Char.code (Bytes.get p.buf (p.head + off))

let set_u8 p off v =
  check p off 1 "set_u8";
  Bytes.set p.buf (p.head + off) (Char.chr (v land 0xff))

let get_be p off n =
  check p off n "get_be";
  if n > 7 then invalid_arg "Packet.get_be: more than 7 bytes";
  let acc = ref 0 in
  for i = 0 to n - 1 do
    acc := (!acc lsl 8) lor Char.code (Bytes.get p.buf (p.head + off + i))
  done;
  !acc

let set_be p off n v =
  check p off n "set_be";
  if n > 7 then invalid_arg "Packet.set_be: more than 7 bytes";
  for i = 0 to n - 1 do
    Bytes.set p.buf
      (p.head + off + i)
      (Char.chr ((v lsr (8 * (n - 1 - i))) land 0xff))
  done

let blit_string p off s =
  check p off (String.length s) "blit_string";
  Bytes.blit_string s 0 p.buf (p.head + off) (String.length s)

let pull p n =
  if n < 0 || n > p.len then
    raise (Out_of_bounds (Printf.sprintf "pull %d of %d" n p.len));
  p.head <- p.head + n;
  p.len <- p.len - n

let push p n =
  if n < 0 || n > p.head then
    raise (Out_of_bounds (Printf.sprintf "push %d with headroom %d" n p.head));
  p.head <- p.head - n;
  p.len <- p.len + n;
  Bytes.fill p.buf p.head n '\000'

let take p n =
  if n < 0 || n > p.len then
    raise (Out_of_bounds (Printf.sprintf "take %d of %d" n p.len));
  p.len <- n

let hex_dump p =
  let b = Buffer.create (3 * p.len) in
  for i = 0 to p.len - 1 do
    if i > 0 && i mod 16 = 0 then Buffer.add_char b '\n'
    else if i > 0 then Buffer.add_char b ' ';
    Buffer.add_string b (Printf.sprintf "%02x" (get_u8 p i))
  done;
  Buffer.contents b

let pp fmt p =
  Format.fprintf fmt "packet[len=%d port=%d color=%d]" p.len p.port p.color
