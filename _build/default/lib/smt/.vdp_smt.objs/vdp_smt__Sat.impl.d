lib/smt/sat.ml: Array List Stdlib
