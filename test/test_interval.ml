(* The interval analysis: ranges must over-approximate, refutations
   must be sound (never refute a satisfiable constraint). *)

module B = Vdp_bitvec.Bitvec
module T = Vdp_smt.Term
module I = Vdp_smt.Interval
module Model = Vdp_smt.Model
module Eval = Vdp_smt.Eval

let check_bool = Alcotest.(check bool)

let x = T.var "x" 8
let c n = T.bv_int ~width:8 n

let unit_tests =
  [
    Alcotest.test_case "range of constants" `Quick (fun () ->
        check_bool "const" true (I.range (c 42) = Some (42, 42)));
    Alcotest.test_case "range through masks and shifts" `Quick (fun () ->
        (* (zext16 (x & 0x0f)) << 2 : the header-length pattern. *)
        let hlen = T.shl (T.zext 16 (T.band x (c 0x0f))) (T.bv_int ~width:16 2) in
        match I.range hlen with
        | Some (lo, hi) -> check_bool "0..60" true (lo = 0 && hi = 60)
        | None -> Alcotest.fail "expected a range");
    Alcotest.test_case "refutes contradictory bounds" `Quick (fun () ->
        check_bool "x<5 && x>10" true
          (I.refute (T.and_ [ T.ult x (c 5); T.ult (c 10) x ]));
        check_bool "x<10 && x>5 sat" false
          (I.refute (T.and_ [ T.ult x (c 10); T.ult (c 5) x ])));
    Alcotest.test_case "refutes eq against range" `Quick (fun () ->
        let masked = T.band x (c 0x0f) in
        check_bool "masked = 200 impossible" true
          (I.refute (T.eq masked (c 200))));
    Alcotest.test_case "negated atoms" `Quick (fun () ->
        (* not (x < 5) && x < 3  is unsat *)
        check_bool "refuted" true
          (I.refute (T.and_ [ T.not_ (T.ult x (c 5)); T.ult x (c 3) ])));
    Alcotest.test_case "negated equality against a point range" `Quick
      (fun () ->
        (* x = 7 && x <> 7 *)
        check_bool "point diseq" true
          (I.refute (T.and_ [ T.eq x (c 7); T.not_ (T.eq x (c 7)) ]));
        (* x <> 7 alone is satisfiable *)
        check_bool "diseq alone sat" false
          (I.refute (T.not_ (T.eq x (c 7))));
        (* x & 0 = 0, so (x & 0) <> 0 is unsat — point via range, not
           via a syntactic constant. *)
        check_bool "range point diseq" true
          (I.refute (T.not_ (T.eq (T.band x (c 0)) (c 0)))));
    Alcotest.test_case "diseqs shave interval endpoints" `Quick (fun () ->
        (* x <= 1 && x <> 0 && x <> 1 *)
        check_bool "endpoints shaved to empty" true
          (I.refute
             (T.and_
                [
                  T.ule x (c 1);
                  T.not_ (T.eq x (c 0));
                  T.not_ (T.eq x (c 1));
                ]));
        (* x <= 2 && x <> 0 && x <> 2 still admits x = 1 *)
        check_bool "hole in the middle not refutable" false
          (I.refute
             (T.and_
                [
                  T.ule x (c 2);
                  T.not_ (T.eq x (c 0));
                  T.not_ (T.eq x (c 2));
                ])));
    Alcotest.test_case "recurses into nested conjunctions" `Quick (fun () ->
        let inner = T.and_ [ T.ult x (c 5); T.bool_var "b" ] in
        check_bool "nested" true
          (I.refute (T.and_ [ inner; T.ult (c 10) x ])));
  ]

(* Soundness: anything interval-refuted is really unsat (checked by
   brute force over one 8-bit variable). *)
let soundness =
  let gen =
    QCheck.Gen.(
      let atom =
        let* op = int_bound 2 in
        let* k = int_bound 255 in
        let* flip = bool in
        let base = T.var "x" 8 in
        let t =
          match op with
          | 0 -> T.ult base (T.bv_int ~width:8 k)
          | 1 -> T.ule (T.bv_int ~width:8 k) base
          | _ -> T.eq base (T.bv_int ~width:8 k)
        in
        return (if flip then T.not_ t else t)
      in
      let* n = int_range 1 4 in
      let* atoms = list_repeat n atom in
      return (T.and_ atoms))
  in
  QCheck.Test.make ~count:500 ~name:"interval refutation is sound"
    (QCheck.make ~print:T.to_string gen)
    (fun t ->
      if I.refute t then begin
        (* Must be unsat: no byte value satisfies it. *)
        let sat = ref false in
        for v = 0 to 255 do
          let m = Model.of_list [ ("x", B.of_int ~width:8 v) ] in
          if Eval.eval_bool m t then sat := true
        done;
        not !sat
      end
      else true)

(* Brute-force differential vs Eval at widths up to 12: every refuted
   constraint must have no satisfying assignment at all. Atoms include
   negated equalities and the conjunction is randomly nested. *)
let soundness_wide =
  let gen =
    QCheck.Gen.(
      let* w = int_range 4 12 in
      let base = T.var "x" w in
      let atom =
        let* op = int_bound 3 in
        let* k = int_bound ((1 lsl w) - 1) in
        let* flip = bool in
        let kt = T.bv_int ~width:w k in
        let t =
          match op with
          | 0 -> T.ult base kt
          | 1 -> T.ule kt base
          | 2 -> T.eq base kt
          | _ -> T.eq (T.band base kt) kt
        in
        return (if flip then T.not_ t else t)
      in
      let* n = int_range 1 6 in
      let* atoms = list_repeat n atom in
      let* split = int_bound n in
      (* Random nesting: an inner conjunction inside the outer one. *)
      let outer, inner = List.filteri (fun i _ -> i < split) atoms,
                         List.filteri (fun i _ -> i >= split) atoms in
      let parts = if inner = [] then outer else T.and_ inner :: outer in
      return (w, T.and_ parts))
  in
  QCheck.Test.make ~count:300
    ~name:"interval refutation sound vs brute-force Eval (w <= 12)"
    (QCheck.make ~print:(fun (w, t) -> Printf.sprintf "w=%d %s" w (T.to_string t)) gen)
    (fun (w, t) ->
      if I.refute t then begin
        let sat = ref false in
        for v = 0 to (1 lsl w) - 1 do
          let m = Model.of_list [ ("x", B.of_int ~width:w v) ] in
          if Eval.eval_bool m t then sat := true
        done;
        not !sat
      end
      else true)

let tests =
  unit_tests
  @ List.map QCheck_alcotest.to_alcotest [ soundness; soundness_wide ]
