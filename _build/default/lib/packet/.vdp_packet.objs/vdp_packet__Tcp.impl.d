lib/packet/tcp.ml: Bytes Char Packet
