examples/element_market.ml: Format List String Unix Vdp_click Vdp_packet Vdp_symbex Vdp_verif
