(** Longest-prefix match on a binary trie — the reference
    implementation that the array-based {!Dir_lpm} is checked against. *)

type 'a node = {
  mutable value : 'a option;
  mutable zero : 'a node option;
  mutable one : 'a node option;
}

type 'a t = { root : 'a node; mutable count : int }

let create () = { root = { value = None; zero = None; one = None }; count = 0 }

let bit_of addr i = (addr lsr (31 - i)) land 1

let add t ~prefix ~len value =
  if len < 0 || len > 32 then invalid_arg "Lpm.add: bad prefix length";
  let rec go node i =
    if i = len then begin
      if node.value = None then t.count <- t.count + 1;
      node.value <- Some value
    end
    else begin
      let child =
        if bit_of prefix i = 0 then node.zero else node.one
      in
      let child =
        match child with
        | Some c -> c
        | None ->
          let c = { value = None; zero = None; one = None } in
          if bit_of prefix i = 0 then node.zero <- Some c
          else node.one <- Some c;
          c
      in
      go child (i + 1)
    end
  in
  go t.root 0

let remove t ~prefix ~len =
  if len < 0 || len > 32 then invalid_arg "Lpm.remove: bad prefix length";
  let rec go node i =
    if i = len then
      match node.value with
      | None -> false
      | Some _ ->
        node.value <- None;
        t.count <- t.count - 1;
        true
    else
      match (if bit_of prefix i = 0 then node.zero else node.one) with
      | None -> false
      | Some c -> go c (i + 1)
  in
  go t.root 0

let lookup t addr =
  let best = ref t.root.value in
  let rec go node i =
    if i < 32 then
      let child = if bit_of addr i = 0 then node.zero else node.one in
      match child with
      | None -> ()
      | Some c ->
        (match c.value with Some _ -> best := c.value | None -> ());
        go c (i + 1)
  in
  go t.root 0;
  !best

let count t = t.count

let fold f t init =
  let rec go node prefix len acc =
    let acc =
      match node.value with Some v -> f ~prefix ~len v acc | None -> acc
    in
    let acc =
      match node.zero with
      | Some c -> go c prefix (len + 1) acc
      | None -> acc
    in
    match node.one with
    | Some c ->
      (* [add] caps prefixes at /32, so a node at depth 32 never has
         children — but keep the shift amount defined rather than rely
         on it ([1 lsl -1] is unspecified in OCaml). *)
      assert (len < 32);
      go c (prefix lor (1 lsl (31 - len))) (len + 1) acc
    | None -> acc
  in
  go t.root 0 0 init

let of_list routes =
  let t = create () in
  List.iter (fun (prefix, len, v) -> add t ~prefix ~len v) routes;
  t
