(** Adversarial multi-tenant scenario generator.

    Emits randomized fabrics over the element market in the textual
    [topology { ... }] form (so every generated scenario also exercises
    the parser end-to-end): T tenant ingress pipelines, each admitting
    only its own 10.<t>.0.0/16 source prefix and decorated with a
    random selection of harmless elements, all feeding a shared core
    pipeline whose IPFilter enforces pairwise tenant isolation (deny
    every tenant-destination prefix) before a StaticIPLookup routes
    surviving traffic to the WAN egress.

    Leaks are {e planted} with ground truth:
    - [`Dropped_deny] removes one tenant's deny rule from the core
      filter — every other tenant can then reach that tenant's LAN
      egress, so exactly (T-1) of the T*(T-1) isolate pairs breach.
    - [`Misordered] puts the catch-all allow {e before} the denies
      (first match wins, so every deny is dead) — all pairs breach.
    - [`None] is the leak-free control: all pairs must be proved.

    {!check} runs every pair through {!Query.run_isolate} and scores
    detection: a planted pair must come back [Fails] with every flow
    replay-confirmed, a safe pair must come back [Holds]. *)

module Config = Vdp_click.Config

type leak = [ `None | `Dropped_deny | `Misordered ]

type scenario = {
  sc_source : string;  (** the generated topology config text *)
  sc_fab : Fabric.t;
  sc_tenants : int;
  sc_leak : leak;
  sc_planted : (string * string) list;
      (** (ingress, egress) pairs that must be detected as breaches *)
  sc_safe : (string * string) list;  (** pairs that must hold *)
}

let tenant_prefix t = Printf.sprintf "10.%d.0.0/16" t

(* A random harmless decoration for a tenant pipeline, as a chain
   fragment. Single-output elements only: an unwired extra output
   would register as an egress point and shift the pipeline's egress
   numbering. Stateful decorations must key their stores at fixed
   offsets (Counter, not FlowCounter): a store keyed on data behind a
   variable header length splits into one unmergeable write-bearing
   state per parse variant, and the cross-pipeline product of those
   variants with the two IPFilters is intractable. *)
let decoration st t =
  match Random.State.int st 3 with
  | 0 -> Printf.sprintf "Paint(%d)" (t land 0xff)
  | 1 -> Printf.sprintf "Paint(%d)" (0x80 lor (t land 0x7f))
  | _ -> "Counter"

let generate ?(tenants = 3) ~seed ~(leak : leak) () =
  if tenants < 2 then invalid_arg "Scenario.generate: need >= 2 tenants";
  let st = Random.State.make [| 0x7090; seed |] in
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "// generated multi-tenant scenario (seed %d)\n" seed;
  pr "topology {\n";
  (* Tenant ingress pipelines. *)
  for t = 1 to tenants do
    let deco =
      if Random.State.bool st then
        Printf.sprintf " -> %s" (decoration st t)
      else ""
    in
    pr "  pipeline tenant%d {\n" t;
    pr "    cl :: Classifier(12/0800, -);\n";
    pr "    chk :: CheckIPHeader;\n";
    pr "    cl[0] -> Strip(14) -> chk%s\n" deco;
    pr "          -> IPFilter(allow src %s, deny all);\n" (tenant_prefix t);
    pr "    chk[1] -> Discard;\n";
    pr "    cl[1] -> Discard;\n";
    pr "  }\n"
  done;
  (* The shared core: pairwise-isolation filter, then routing. The
     victim of a [`Dropped_deny] leak is a random tenant. *)
  let victim = 1 + Random.State.int st tenants in
  let denies =
    List.concat_map
      (fun t ->
        if leak = `Dropped_deny && t = victim then []
        else [ Printf.sprintf "deny dst %s" (tenant_prefix t) ])
      (List.init tenants (fun i -> i + 1))
  in
  let rules =
    match leak with
    | `Misordered -> "allow all" :: denies
    | _ -> denies @ [ "allow all" ]
  in
  pr "  pipeline core {\n";
  pr "    fw :: IPFilter(%s);\n" (String.concat ", " rules);
  pr "    rt :: StaticIPLookup(%s0.0.0.0/0 0);\n"
    (String.concat ""
       (List.init tenants (fun i ->
            Printf.sprintf "%s %d, " (tenant_prefix (i + 1)) (i + 1))));
  pr "    fw -> rt;\n";
  pr "  }\n";
  for t = 1 to tenants do
    pr "  tenant%d[0] -> core;\n" t
  done;
  for t = 1 to tenants do
    pr "  ingress t%d = tenant%d;\n" t t
  done;
  pr "  egress wan = core[0];\n";
  for t = 1 to tenants do
    pr "  egress lan%d = core[%d];\n" t t
  done;
  (* Declared properties: the full isolation matrix plus a liveness
     check per tenant (the control fabric must still forward). *)
  for i = 1 to tenants do
    pr "  reach t%d -> wan;\n" i;
    for j = 1 to tenants do
      if i <> j then pr "  isolate t%d -> lan%d;\n" i j
    done
  done;
  pr "}\n";
  let sc_source = Buffer.contents buf in
  let fab =
    match Config.parse_source sc_source with
    | Config.Fabric topo -> Fabric.of_topo topo
    | Config.Single _ -> assert false
  in
  let pairs =
    List.concat_map
      (fun i ->
        List.filter_map
          (fun j ->
            if i <> j then
              Some (Printf.sprintf "t%d" i, Printf.sprintf "lan%d" j)
            else None)
          (List.init tenants (fun k -> k + 1)))
      (List.init tenants (fun k -> k + 1))
  in
  let planted =
    match leak with
    | `None -> []
    | `Misordered -> pairs
    | `Dropped_deny ->
      List.filter
        (fun (_, b) -> b = Printf.sprintf "lan%d" victim)
        pairs
  in
  let safe = List.filter (fun p -> not (List.mem p planted)) pairs in
  {
    sc_source;
    sc_fab = fab;
    sc_tenants = tenants;
    sc_leak = leak;
    sc_planted = planted;
    sc_safe = safe;
  }

(* {1 Scoring} *)

type score = {
  detected : int;  (** planted pairs reported as breaches *)
  planted : int;
  confirmed : bool;  (** every reported breach flow replay-confirmed *)
  false_leaks : int;  (** safe pairs reported as breaches *)
  safe_proved : int;
  safe : int;
  unknowns : int;
}

(** Run the full isolation matrix of a scenario and score it against
    the planted ground truth. *)
let check ?(config = Query.default_config) sc =
  let rel = Relation.build ~config:config.Query.engine sc.sc_fab in
  let confirmed = ref true in
  let run_pair (a, b) =
    let r = Query.run ~config rel (Config.Isolate (a, b)) in
    (match r.Query.verdict with
    | Query.Fails (flows, _) ->
      if not (List.for_all (fun f -> f.Query.w_confirmed) flows) then
        confirmed := false
    | _ -> ());
    r.Query.verdict
  in
  let planted_results = List.map run_pair sc.sc_planted in
  let safe_results = List.map run_pair sc.sc_safe in
  let count p l = List.length (List.filter p l) in
  let is_fail = function Query.Fails _ -> true | _ -> false in
  let is_hold = function Query.Holds _ -> true | _ -> false in
  let is_unknown = function Query.Unknown _ -> true | _ -> false in
  {
    detected = count is_fail planted_results;
    planted = List.length sc.sc_planted;
    confirmed = !confirmed;
    false_leaks = count is_fail safe_results;
    safe_proved = count is_hold safe_results;
    safe = List.length sc.sc_safe;
    unknowns =
      count is_unknown planted_results + count is_unknown safe_results;
  }
