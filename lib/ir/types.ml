(** The packet-processing element IR.

    Elements are written in (or compiled to) this small imperative
    language. The same programs are executed concretely by the dataplane
    runtime ({!Interp}) and symbolically by the verifier — the OCaml
    analogue of the paper running S2E over the element binaries.

    The language enforces the paper's state discipline by construction:
    - {e packet state} — the packet window, read/written via
      [Load]/[Store]/[Pull]/[Push] and metadata annotations;
    - {e private state} — key/value stores declared [Private], visible
      only to the owning element;
    - {e static state} — key/value stores declared [Static], readable
      but never writable.

    There is no other mutable state, and no channel between elements
    except handing the packet to an output port. *)

module B = Vdp_bitvec.Bitvec

type reg = int

type rvalue =
  | Const of B.t
  | Reg of reg

type unop =
  | Not
  | Neg

type binop =
  | Add | Sub | Mul | Udiv | Urem | Sdiv | Srem
  | And | Or | Xor | Shl | Lshr | Ashr

type cmpop = Eq | Ne | Ult | Ule | Slt | Sle

type rhs =
  | Move of rvalue
  | Unop of unop * rvalue
  | Binop of binop * rvalue * rvalue
  | Cmp of cmpop * rvalue * rvalue      (** result width 1 *)
  | Select of rvalue * rvalue * rvalue  (** cond (width 1), then, else *)
  | Extract of int * int * rvalue       (** hi, lo *)
  | Concat of rvalue * rvalue
  | Zext of int * rvalue
  | Sext of int * rvalue

(** Packet metadata annotations (Click's packet annotations). *)
type meta =
  | Port   (** input port, 8 bits *)
  | Color  (** paint annotation, 8 bits *)
  | W0     (** scratch word (e.g. next-hop address), 32 bits *)
  | W1     (** scratch word, 32 bits *)

let meta_width = function Port | Color -> 8 | W0 | W1 -> 32

type instr =
  | Assign of reg * rhs
  | Load of reg * rvalue * int
      (** [Load (dst, off, n)] — read [n] bytes big-endian at byte offset
          [off] (16-bit rvalue, relative to head) into [dst] (width 8n).
          Out-of-window access crashes. *)
  | Store of rvalue * rvalue * int
      (** [Store (off, value, n)] — write [n] bytes big-endian. *)
  | Load_len of reg  (** packet length in bytes; [dst] has width 16 *)
  | Pull of int      (** strip bytes from the front; crashes if too long *)
  | Push of int      (** prepend zeroed bytes; crashes if headroom exhausted *)
  | Take of rvalue   (** truncate packet to the given 16-bit length *)
  | Meta_get of reg * meta
  | Meta_set of meta * rvalue
  | Kv_read of reg * string * rvalue
      (** [Kv_read (dst, store, key)] — [dst] gets the stored value or
          the store's default. *)
  | Kv_write of string * rvalue * rvalue  (** store, key, value *)
  | Assert of rvalue * string
      (** crash with the given message if the width-1 condition is 0 *)

type terminator =
  | Goto of int
  | Branch of rvalue * int * int  (** cond (width 1), then-block, else-block *)
  | Emit of int                   (** deliver the packet to an output port *)
  | Drop
  | Abort of string               (** unconditional crash (unreachable code) *)

type block = {
  instrs : instr list;
  term : terminator;
}

type store_kind =
  | Static   (** read-only as far as the pipeline is concerned *)
  | Private  (** read/write, owned by exactly one element *)

type store_decl = {
  store_name : string;
  key_width : int;
  val_width : int;
  kind : store_kind;
  default : B.t;                 (** returned on missing keys *)
  init : Static_data.t;
      (** contents: live (mutable, shared) for [Static] stores; the
          per-instance starting state for [Private] ones *)
}

(* Smart constructor: builds the store's [Static_data] contents from an
   association list with the declared widths. *)
let store ~name ~key_width ~val_width ~kind ~default ?(init = []) () :
    store_decl =
  {
    store_name = name;
    key_width;
    val_width;
    kind;
    default;
    init = Static_data.of_list ~key_width ~val_width init;
  }

type program = {
  name : string;
  reg_widths : int array;        (** register [r] has width [reg_widths.(r)] *)
  blocks : block array;          (** entry is block 0 *)
  stores : store_decl list;
  nports : int;                  (** number of output ports *)
}

(** {1 Crash taxonomy — what "crash-freedom" rules out} *)

type crash =
  | Assert_failed of string
  | Out_of_bounds of string  (** load/store/pull/take outside the window *)
  | Headroom_exhausted
  | Div_by_zero
  | Aborted of string
  | Budget_exhausted         (** runaway loop: instruction budget exceeded *)

type outcome =
  | Emitted of int
  | Dropped
  | Crashed of crash

let pp_crash fmt = function
  | Assert_failed m -> Format.fprintf fmt "assertion failed: %s" m
  | Out_of_bounds m -> Format.fprintf fmt "out-of-bounds access: %s" m
  | Headroom_exhausted -> Format.pp_print_string fmt "headroom exhausted"
  | Div_by_zero -> Format.pp_print_string fmt "division by zero"
  | Aborted m -> Format.fprintf fmt "abort: %s" m
  | Budget_exhausted -> Format.pp_print_string fmt "instruction budget exhausted"

let pp_outcome fmt = function
  | Emitted p -> Format.fprintf fmt "emit(%d)" p
  | Dropped -> Format.pp_print_string fmt "drop"
  | Crashed c -> Format.fprintf fmt "crash(%a)" pp_crash c

let rvalue_width prog = function
  | Const v -> B.width v
  | Reg r -> prog.reg_widths.(r)
