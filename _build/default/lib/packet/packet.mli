(** Mutable packet buffers with headroom, as handled by the dataplane.

    A packet is a window [head .. head+len) into a fixed buffer. Encap
    elements {!push} headers in front (consuming headroom); decap
    elements {!pull} them off. All offsets in the accessors are relative
    to the current head. Out-of-window access raises {!Out_of_bounds} —
    the concrete counterpart of the crashes the verifier hunts for. *)

exception Out_of_bounds of string

type t = {
  buf : Bytes.t;
  mutable head : int;
  mutable len : int;
  mutable port : int;   (** input port annotation *)
  mutable color : int;  (** paint annotation *)
  mutable w0 : int;     (** scratch annotation (e.g. next-hop) *)
  mutable w1 : int;     (** scratch annotation *)
}

val default_headroom : int
val max_frame : int
(** Largest frame the dataplane accepts (buffer capacity minus headroom). *)

val create : ?headroom:int -> string -> t
(** [create data] — a packet whose payload is [data]. *)

val of_bytes : ?headroom:int -> Bytes.t -> t
val length : t -> int
val clone : t -> t
val content : t -> string
(** The current window as a string. *)

(** {1 Byte access (offsets relative to head)} *)

val get_u8 : t -> int -> int
val set_u8 : t -> int -> int -> unit
val get_be : t -> int -> int -> int
(** [get_be p off n] — big-endian integer of [n <= 7] bytes. *)

val set_be : t -> int -> int -> int -> unit
(** [set_be p off n v]. *)

val blit_string : t -> int -> string -> unit

(** {1 Head manipulation} *)

val pull : t -> int -> unit
(** Remove [n] bytes from the front. Raises if [n > len]. *)

val push : t -> int -> unit
(** Prepend [n] (zeroed) bytes. Raises if headroom is exhausted. *)

val take : t -> int -> unit
(** Truncate the packet to [n] bytes. Raises if [n > len]. *)

val pp : Format.formatter -> t -> unit
val hex_dump : t -> string
