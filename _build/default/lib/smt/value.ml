(** Concrete values: what a term evaluates to under an assignment. *)

module B = Vdp_bitvec.Bitvec

type t =
  | Vbool of bool
  | Vbv of B.t

let equal a b =
  match (a, b) with
  | Vbool x, Vbool y -> x = y
  | Vbv x, Vbv y -> B.equal x y
  | (Vbool _ | Vbv _), _ -> false

let to_bool = function
  | Vbool b -> b
  | Vbv _ -> invalid_arg "Value.to_bool"

let to_bv = function
  | Vbv v -> v
  | Vbool _ -> invalid_arg "Value.to_bv"

let pp fmt = function
  | Vbool b -> Format.pp_print_bool fmt b
  | Vbv v -> B.pp fmt v
