lib/click/el_icmp.ml: El_util Vdp_bitvec Vdp_ir
