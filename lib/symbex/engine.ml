(** The symbolic-execution engine: explores every feasible path
    ("segment") of one element under unconstrained symbolic input,
    collecting per-segment path constraints, packet transformations,
    outcomes and instruction counts — Step 1 of the paper's two-step
    verification.

    Loops are either unrolled (counted, straight-line bodies like
    checksums) or summarised via the mini-element decomposition: the
    body is symbexed once from a havocked iteration state, a strictly
    increasing bounded measure is found with the solver to bound the
    trip count, and execution resumes from the loop exits with packet
    contents havocked. Summarised segments carry an instruction
    {e interval} instead of an exact count. *)

module B = Vdp_bitvec.Bitvec
module T = Vdp_smt.Term
module Interval = Vdp_smt.Interval
module Solver = Vdp_smt.Solver
module Ir = Vdp_ir.Types
module Sdata = Vdp_ir.Static_data
module S = Sstate

type crash =
  | C_assert of string
  | C_oob of string
  | C_headroom
  | C_div0
  | C_abort of string

type outcome =
  | O_emit of int
  | O_drop
  | O_crash of crash

type out_state = {
  head_delta : int;
  min_delta : int;
  len_out : T.t;
  writes : (int * T.t) list;  (** post-window offset -> byte term *)
  havoc : (int * int) option;
      (** [(epoch, head)] when a loop summary forgot the packet
          contents: unwritten output byte [j] is then the deterministic
          havoc variable for absolute offset [head + j], matching the
          names the segment's own post-havoc reads used. *)
  meta_out : (Ir.meta * T.t) list;
}

let havoc_var ~epoch abs = T.var (Printf.sprintf "!hv%d_%d" epoch abs) 8

type segment = {
  cond : T.t list;
  out_state : out_state;
  outcome : outcome;
  instr_lo : int;
  instr_hi : int;
  kv_log : S.kv_event list;
  summarized : bool;  (** involved a loop summary (bounds, not exact) *)
}

type config = {
  headroom : int;
  max_len : int;           (** assumed bound on the input length *)
  max_paths : int;
  max_offset_fork : int;   (** candidates when concretising offsets *)
  max_unroll : int;
  summarize_loops : bool;
  branchy_threshold : int; (** body branches >= this trigger summarisation *)
  solver_budget : int;     (** conflict budget for summary-time checks *)
}

let default_config =
  {
    headroom = Vdp_packet.Packet.default_headroom;
    max_len = 1514;
    max_paths = 200_000;
    max_offset_fork = 64;
    max_unroll = 80;
    summarize_loops = true;
    branchy_threshold = 1;
    solver_budget = 20_000;
  }

type result = {
  segments : segment list;
  paths : int;        (** completed paths *)
  incomplete : int;   (** abandoned paths (budget / unsupported) *)
  forks : int;
  abandon_reasons : (string * int) list;
  static_deps : (int * B.t) list;
      (** static-state slices the segments baked in: ({!Static_data} id,
          concrete key) per exact static read. A mutation of one of
          these slices invalidates any cache entry built from this
          result; symbolic-key reads return fresh unconstrained values
          and therefore depend on no slice. *)
}

exception Budget_exceeded

type mode =
  | Normal
  | Summary of {
      head : int;
      body : int list;
      register_continue : S.t -> unit;
      register_exit : S.t -> int -> unit;
    }

type ctx = {
  prog : Ir.program;
  cfg : config;
  loops : Loopinfo.loop list;
  mutable segments : segment list;
  mutable npaths : int;
  mutable nincomplete : int;
  mutable nforks : int;
  mutable abandoned : (string * int) list;
  mutable static_deps : (int * B.t) list;
}

(* Per-path "summarized" and instruction-slack live in the state's
   [extra_instrs]; a path is summarized iff extra_instrs > 0 or the
   packet was havocked. *)

let crash_to_string = function
  | C_assert m -> "assert: " ^ m
  | C_oob m -> "out-of-bounds: " ^ m
  | C_headroom -> "headroom exhausted"
  | C_div0 -> "division by zero"
  | C_abort m -> "abort: " ^ m

let pp_outcome fmt = function
  | O_emit p -> Format.fprintf fmt "emit(%d)" p
  | O_drop -> Format.pp_print_string fmt "drop"
  | O_crash c -> Format.fprintf fmt "crash(%s)" (crash_to_string c)

(* The interpreter's out-of-bounds messages carry concrete offsets the
   symbolic engine cannot know, so O_oob matches on kind only. *)
let crash_matches (c : crash) (rc : Ir.crash) =
  match (c, rc) with
  | C_assert m, Ir.Assert_failed m' -> m = m'
  | C_oob _, Ir.Out_of_bounds _ -> true
  | C_headroom, Ir.Headroom_exhausted -> true
  | C_div0, Ir.Div_by_zero -> true
  | C_abort m, Ir.Aborted m' -> m = m'
  | _ -> false

let outcome_matches (o : outcome) (ro : Ir.outcome) =
  match (o, ro) with
  | O_emit p, Ir.Emitted p' -> p = p'
  | O_drop, Ir.Dropped -> true
  | O_crash c, Ir.Crashed rc -> crash_matches c rc
  | _ -> false

(* Cheap feasibility filter: constant folding + interval refutation.
   Sound to keep infeasible paths (Step 2 re-checks with the solver). *)
let plausible (st : S.t) extra =
  let conj = T.and_ (extra :: st.S.path) in
  (not (T.is_false conj)) && not (Interval.refute conj)

let rv_term (st : S.t) = function
  | Ir.Const v -> T.bv v
  | Ir.Reg r -> st.S.regs.(r)

let finish_segment ctx (st : S.t) outcome =
  ctx.npaths <- ctx.npaths + 1;
  if ctx.npaths > ctx.cfg.max_paths then raise Budget_exceeded;
  let writes =
    Hashtbl.fold
      (fun abs term acc ->
        let post = abs - st.S.head in
        if post >= 0 then (post, term) :: acc else acc)
      st.S.overrides []
    |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)
  in
  let seg =
    {
      cond = S.path_conjuncts st;
      out_state =
        {
          head_delta = st.S.head - st.S.headroom;
          min_delta = st.S.min_head - st.S.headroom;
          len_out = st.S.len;
          writes;
          havoc =
            (if st.S.havocked_packet then Some (st.S.havoc_epoch, st.S.head)
             else None);
          meta_out = st.S.meta;
        };
      outcome;
      instr_lo = st.S.instrs;
      instr_hi = st.S.instrs + st.S.extra_instrs;
      kv_log = List.rev st.S.kv_log;
      summarized = st.S.extra_instrs > 0 || st.S.havocked_packet;
    }
  in
  ctx.segments <- seg :: ctx.segments

let abandon ?(reason = "other") ctx =
  ctx.nincomplete <- ctx.nincomplete + 1;
  let n = try List.assoc reason ctx.abandoned with Not_found -> 0 in
  ctx.abandoned <- (reason, n + 1) :: List.remove_assoc reason ctx.abandoned

(* Fork on a boolean term. Each side runs only if cheaply plausible. *)
let fork ctx st cond k_true k_false =
  if T.is_true cond then k_true st
  else if T.is_false cond then k_false st
  else begin
    let t_ok = plausible st cond in
    let f_ok = plausible st (T.not_ cond) in
    match (t_ok, f_ok) with
    | true, true ->
      ctx.nforks <- ctx.nforks + 1;
      let st' = S.clone st in
      S.assume st cond;
      k_true st;
      S.assume st' (T.not_ cond);
      k_false st'
    | true, false ->
      S.assume st cond;
      k_true st
    | false, true ->
      S.assume st (T.not_ cond);
      k_false st
    | false, false -> (* path itself infeasible *) ()
  end

(* Concretise a 16-bit offset term: call [k st v] for every plausible
   concrete value. Symbolic offsets only survive to here in normal mode
   (summaries replace such reads with fresh values). *)
let concretize ctx (st : S.t) ~max_v term k =
  match T.const_value term with
  | Some v -> k st (B.to_int_trunc v)
  | None -> (
    match Interval.range term with
    | Some (lo, hi) when hi - lo + 1 <= ctx.cfg.max_offset_fork ->
      let hi = min hi max_v in
      let candidates = ref [] in
      for v = lo to hi do
        let cond = T.eq term (T.bv_int ~width:(T.width term) v) in
        if plausible st cond then candidates := (v, cond) :: !candidates
      done;
      (match !candidates with
      | [] -> ()
      | [ (v, cond) ] ->
        S.assume st cond;
        k st v
      | many ->
        List.iter
          (fun (v, cond) ->
            ctx.nforks <- ctx.nforks + 1;
            let st' = S.clone st in
            S.assume st' cond;
            k st' v)
          many)
    | _ -> abandon ~reason:"offset-fork" ctx)

(* Out-of-bounds condition for an [n]-byte access at 16-bit offset
   [off]: computed at 32 bits to avoid wrap-around. *)
let oob_cond (st : S.t) off n =
  let off32 = T.zext 32 off in
  let len32 = T.zext 32 st.S.len in
  T.ugt (T.add off32 (T.bv_int ~width:32 n)) len32

let bump st = st.S.instrs <- st.S.instrs + 1

let rec exec_block ctx mode (st : S.t) =
  let blk = ctx.prog.Ir.blocks.(st.S.block) in
  exec_instrs ctx mode st blk.Ir.instrs (fun st ->
      bump st;
      exec_term ctx mode st blk.Ir.term)

and exec_instrs ctx mode st instrs k =
  match instrs with
  | [] -> k st
  | ins :: rest ->
    exec_instr ctx mode st ins (fun st -> exec_instrs ctx mode st rest k)

and exec_instr ctx mode (st : S.t) ins k =
  bump st;
  let rv = rv_term st in
  match ins with
  | Ir.Assign (r, rhs) -> exec_rhs ctx mode st r rhs k
  | Ir.Load (r, off, n) ->
    let off_t = rv off in
    fork ctx st (oob_cond st off_t n)
      (fun st ->
        finish_segment ctx st (O_crash (C_oob (Printf.sprintf "load+%d" n))))
      (fun st ->
        match mode with
        | Summary _ when T.const_value off_t = None ->
          (* Symbolic offset under havoc: over-approximate the value. *)
          st.S.regs.(r) <- S.fresh st ~hint:"ld" (8 * n);
          k st
        | _ ->
          concretize ctx st ~max_v:(ctx.cfg.headroom + ctx.cfg.max_len - n)
            off_t
            (fun st v ->
              let bytes = List.init n (fun i -> S.byte st (v + i)) in
              let term =
                List.fold_left
                  (fun acc b -> T.concat acc b)
                  (List.hd bytes) (List.tl bytes)
              in
              st.S.regs.(r) <- term;
              k st))
  | Ir.Store (off, value, n) ->
    let off_t = rv off in
    let v_t = rv value in
    fork ctx st (oob_cond st off_t n)
      (fun st ->
        finish_segment ctx st (O_crash (C_oob (Printf.sprintf "store+%d" n))))
      (fun st ->
        match mode with
        | Summary _ when T.const_value off_t = None ->
          (* Written contents are lost to the post-loop havoc anyway. *)
          k st
        | _ ->
          concretize ctx st ~max_v:(ctx.cfg.headroom + ctx.cfg.max_len - n)
            off_t
            (fun st v ->
              for i = 0 to n - 1 do
                let hi = (8 * (n - i)) - 1 in
                S.write_byte st (v + i) (T.extract ~hi ~lo:(hi - 7) v_t)
              done;
              k st))
  | Ir.Load_len r ->
    st.S.regs.(r) <- st.S.len;
    k st
  | Ir.Pull n ->
    fork ctx st (T.ult st.S.len (T.bv_int ~width:16 n))
      (fun st ->
        finish_segment ctx st (O_crash (C_oob (Printf.sprintf "pull %d" n))))
      (fun st ->
        st.S.head <- st.S.head + n;
        st.S.len <- T.sub st.S.len (T.bv_int ~width:16 n);
        k st)
  | Ir.Push n ->
    if st.S.head < n then
      finish_segment ctx st (O_crash C_headroom)
    else begin
      st.S.head <- st.S.head - n;
      if st.S.head < st.S.min_head then st.S.min_head <- st.S.head;
      st.S.len <- T.add st.S.len (T.bv_int ~width:16 n);
      for i = 0 to n - 1 do
        S.write_byte st i (T.bv (B.zero 8))
      done;
      k st
    end
  | Ir.Take v ->
    let v_t = rv v in
    fork ctx st (T.ugt v_t st.S.len)
      (fun st -> finish_segment ctx st (O_crash (C_oob "take")))
      (fun st ->
        st.S.len <- v_t;
        k st)
  | Ir.Meta_get (r, m) ->
    st.S.regs.(r) <- S.meta_term st m;
    k st
  | Ir.Meta_set (m, v) ->
    S.set_meta st m (rv v);
    k st
  | Ir.Kv_read (r, name, key) -> (
    let key_t = rv key in
    let decl =
      List.find (fun d -> d.Ir.store_name = name) ctx.prog.Ir.stores
    in
    match (decl.Ir.kind, T.const_value key_t) with
    | Ir.Static, Some kv ->
      (* A concrete-key read of a static store is exact — the current
         value is baked into the segment, so record the slice read:
         if that (store, key) mutates, this summary is stale. *)
      let data = decl.Ir.init in
      let value =
        match Sdata.find data kv with
        | Some v -> v
        | None -> decl.Ir.default
      in
      let dep = (Sdata.id data, kv) in
      if
        not
          (List.exists
             (fun (i, k') -> i = fst dep && B.equal k' kv)
             ctx.static_deps)
      then ctx.static_deps <- dep :: ctx.static_deps;
      st.S.regs.(r) <- T.bv value;
      k st
    | _ ->
      (* The paper's model: a read may return anything that could have
         been written (Step 1 over-approximates with a fresh value). *)
      let value = S.fresh st ~hint:("kv_" ^ name) decl.Ir.val_width in
      S.record_kv st
        (S.Kv_read { store = name; key = key_t; value; cond = S.path_term st });
      st.S.regs.(r) <- value;
      k st)
  | Ir.Kv_write (name, key, v) ->
    S.record_kv st
      (S.Kv_write
         { store = name; key = rv key; value = rv v; cond = S.path_term st });
    k st
  | Ir.Assert (c, msg) ->
    fork ctx st (T.eq (rv c) (T.bv (B.of_bool true)))
      k
      (fun st -> finish_segment ctx st (O_crash (C_assert msg)))

and exec_rhs ctx mode st r rhs k =
  ignore mode;
  let rv = rv_term st in
  let simple t =
    st.S.regs.(r) <- t;
    k st
  in
  match rhs with
  | Ir.Move v -> simple (rv v)
  | Ir.Unop (Ir.Not, v) -> simple (T.bnot (rv v))
  | Ir.Unop (Ir.Neg, v) -> simple (T.bneg (rv v))
  | Ir.Binop (op, a, b) -> (
    let ta = rv a and tb = rv b in
    let divlike f =
      (* Division by zero crashes; fork on the divisor. *)
      fork ctx st (T.eq tb (T.bv (B.zero (T.width tb))))
        (fun st -> finish_segment ctx st (O_crash C_div0))
        (fun st ->
          st.S.regs.(r) <- f ta tb;
          k st)
    in
    match op with
    | Ir.Add -> simple (T.add ta tb)
    | Ir.Sub -> simple (T.sub ta tb)
    | Ir.Mul -> simple (T.mul ta tb)
    | Ir.Udiv -> divlike T.udiv
    | Ir.Urem -> divlike T.urem
    | Ir.Sdiv -> divlike T.sdiv
    | Ir.Srem -> divlike T.srem
    | Ir.And -> simple (T.band ta tb)
    | Ir.Or -> simple (T.bor ta tb)
    | Ir.Xor -> simple (T.bxor ta tb)
    | Ir.Shl -> simple (T.shl ta tb)
    | Ir.Lshr -> simple (T.lshr ta tb)
    | Ir.Ashr -> simple (T.ashr ta tb))
  | Ir.Cmp (op, a, b) ->
    let ta = rv a and tb = rv b in
    let cond =
      match op with
      | Ir.Eq -> T.eq ta tb
      | Ir.Ne -> T.neq ta tb
      | Ir.Ult -> T.ult ta tb
      | Ir.Ule -> T.ule ta tb
      | Ir.Slt -> T.slt ta tb
      | Ir.Sle -> T.sle ta tb
    in
    simple (T.ite cond (T.bv (B.of_bool true)) (T.bv (B.of_bool false)))
  | Ir.Select (c, a, b) ->
    let cond = T.eq (rv c) (T.bv (B.of_bool true)) in
    simple (T.ite cond (rv a) (rv b))
  | Ir.Extract (hi, lo, v) -> simple (T.extract ~hi ~lo (rv v))
  | Ir.Concat (a, b) -> simple (T.concat (rv a) (rv b))
  | Ir.Zext (w, v) -> simple (T.zext w (rv v))
  | Ir.Sext (w, v) -> simple (T.sext w (rv v))

and exec_term ctx mode (st : S.t) term =
  match term with
  | Ir.Goto l -> goto ctx mode st l
  | Ir.Branch (c, t, e) ->
    let cond = T.eq (rv_term st c) (T.bv (B.of_bool true)) in
    fork ctx st cond
      (fun st -> goto ctx mode st t)
      (fun st -> goto ctx mode st e)
  | Ir.Emit p -> finish_segment ctx st (O_emit p)
  | Ir.Drop -> finish_segment ctx st O_drop
  | Ir.Abort m -> finish_segment ctx st (O_crash (C_abort m))

and goto ctx mode (st : S.t) l =
  match mode with
  | Summary { head; register_continue; _ } when l = head ->
    register_continue st
  | Summary { body; register_exit; _ } when not (List.mem l body) ->
    register_exit st l
  | _ -> (
    let visits =
      match Hashtbl.find_opt st.S.visits l with Some v -> v | None -> 0
    in
    Hashtbl.replace st.S.visits l (visits + 1);
    let normal = match mode with Normal -> true | Summary _ -> false in
    let loop =
      if normal && visits = 0 && ctx.cfg.summarize_loops then
        match Loopinfo.loop_at ctx.loops l with
        | Some lp
          when lp.Loopinfo.body_branches >= ctx.cfg.branchy_threshold
               && not lp.Loopinfo.has_head_adjust ->
          Some lp
        | _ -> None
      else None
    in
    match loop with
    | Some lp -> summarize_loop ctx st lp
    | None ->
      if visits + 1 > ctx.cfg.max_unroll then abandon ~reason:"unroll" ctx
      else begin
        st.S.block <- l;
        exec_block ctx mode st
      end)

(* {1 Loop summarisation (mini-element decomposition)} *)

and summarize_loop ctx (st : S.t) (lp : Loopinfo.loop) =
  let head = lp.Loopinfo.head in
  let base_instrs = st.S.instrs in
  let budget = ctx.cfg.solver_budget in
  (* Explore one havocked iteration of the body. Modified registers get
     fresh "pre" variables; packet contents are forgotten (writes in
     previous iterations could be anywhere the body's own guards
     allow). [assume_bound] optionally constrains one pre variable —
     the solver-verified value-range invariant of the second phase. *)
  let explore_body ~assume_bound =
    let st0 = S.clone st in
    let pre = Hashtbl.create 8 in
    List.iter
      (fun r ->
        let v = S.fresh st0 ~hint:"pre" (T.width st0.S.regs.(r)) in
        Hashtbl.replace pre r v;
        st0.S.regs.(r) <- v)
      lp.Loopinfo.modified_regs;
    List.iter
      (fun m -> S.set_meta st0 m (S.fresh st0 ~hint:"mpre" (Ir.meta_width m)))
      lp.Loopinfo.modified_meta;
    S.havoc_packet st0;
    (match assume_bound with
    | Some (r, i) ->
      let pre_v = Hashtbl.find pre r in
      S.assume st0 (T.ult pre_v (T.bv_int ~width:(T.width pre_v) i))
    | None -> ());
    let continues = ref [] in
    let exits = ref [] in
    let mode =
      Summary
        {
          head;
          body = lp.Loopinfo.body;
          register_continue = (fun s -> continues := s :: !continues);
          register_exit = (fun s l -> exits := (s, l) :: !exits);
        }
    in
    st0.S.block <- head;
    exec_block ctx mode st0;
    (!continues, !exits, pre)
  in
  (* Phase A: unconstrained havoc — used to discover the measure. *)
  let saved_segments = ctx.segments in
  let saved_npaths = ctx.npaths in
  let continues_a, exits_a, pre_a = explore_body ~assume_bound:None in
  (* A strictly increasing, bounded measure among the modified
     registers bounds the trip count. Full path constraints are used:
     pre-loop facts (header-length bounds etc.) matter. *)
  let progress_reg r =
    let pre_v = Hashtbl.find pre_a r in
    if T.width pre_v > 16 then None
    else if
      List.for_all
        (fun (s : S.t) ->
          let post = s.S.regs.(r) in
          Solver.is_unsat ~max_conflicts:budget (T.ule post pre_v :: s.S.path))
        continues_a
    then begin
      (* Smallest power-of-two bound C with pre < C on every continue. *)
      let rec find_bound c =
        if c > 1 lsl T.width pre_v then None
        else if
          List.for_all
            (fun (s : S.t) ->
              Solver.is_unsat ~max_conflicts:budget
                (T.uge pre_v (T.bv_int ~width:(T.width pre_v) (c - 1))
                :: s.S.path))
            continues_a
        then Some c
        else find_bound (2 * c)
      in
      match find_bound 2 with Some c -> Some (r, c) | None -> None
    end
    else None
  in
  let measure =
    if continues_a = [] then Some (-1, 0) (* body always exits: one pass *)
    else
      List.fold_left
        (fun acc r -> match acc with Some _ -> acc | None -> progress_reg r)
        None lp.Loopinfo.modified_regs
  in
  match measure with
  | None ->
    abandon ~reason:"no-measure" ctx (* cannot bound the loop: give up *)
  | Some (r, iters) ->
    (* Value-range invariant: if [init < 2C] and every continuing
       iteration's post stays [< 2C], then "measure < 2C" holds at every
       iteration entry (induction), so the body can be re-explored under
       that assumption. This kills the spurious wrap-around crashes a
       fully havocked counter would otherwise admit. *)
    let invariant =
      if r < 0 then None
      else begin
        let w = T.width (Hashtbl.find pre_a r) in
        let i = 2 * iters in
        if i >= 1 lsl w then None
        else begin
          let i_bv = T.bv_int ~width:w i in
          let init_ok =
            Solver.is_unsat ~max_conflicts:budget
              (T.uge st.S.regs.(r) i_bv :: st.S.path)
          in
          let posts_ok =
            List.for_all
              (fun (s : S.t) ->
                Solver.is_unsat ~max_conflicts:budget
                  (T.uge s.S.regs.(r) i_bv :: s.S.path))
              continues_a
          in
          if init_ok && posts_ok then Some (r, i) else None
        end
      end
    in
    let continues, exits =
      match invariant with
      | None -> (continues_a, exits_a)
      | Some _ ->
        (* Re-explore under the invariant; drop phase-A recordings. *)
        ctx.segments <- saved_segments;
        ctx.npaths <- saved_npaths;
        let continues_b, exits_b, _ = explore_body ~assume_bound:invariant in
        (continues_b, exits_b)
    in
    let max_body =
      List.fold_left
        (fun m (s : S.t) -> max m (s.S.instrs - base_instrs))
        0 continues
    in
    let slack = iters * max_body in
    (* Resume from every exit of the (havocked) final iteration. *)
    List.iter
      (fun ((s : S.t), target) ->
        let s = S.clone s in
        s.S.extra_instrs <- s.S.extra_instrs + slack;
        goto ctx Normal s target)
      exits

(* {1 Entry point} *)

let explore ?(config = default_config) (prog : Ir.program) : result =
  let st = S.init ~headroom:config.headroom prog in
  (* Global input assumption: the frame fits the modelled buffer. *)
  S.assume st
    (T.ule (T.var S.len_var 16) (T.bv_int ~width:16 config.max_len));
  let ctx =
    {
      prog;
      cfg = config;
      loops = Loopinfo.analyze prog;
      segments = [];
      npaths = 0;
      nincomplete = 0;
      nforks = 0;
      abandoned = [];
      static_deps = [];
    }
  in
  (try exec_block ctx Normal st with Budget_exceeded -> ctx.nincomplete <- ctx.nincomplete + 1);
  {
    segments = List.rev ctx.segments;
    paths = ctx.npaths;
    incomplete = ctx.nincomplete;
    forks = ctx.nforks;
    abandon_reasons = ctx.abandoned;
    static_deps = ctx.static_deps;
  }
