lib/packet/udp.ml: Bytes Char Packet
