(** The dataplane verifier: Step-1 summaries + Step-2 composition.

    Three target properties from the paper:
    - {b crash freedom} — no input packet can crash the pipeline;
    - {b bounded execution} — a provable upper bound on instructions
      executed per packet, with the packet that attains it;
    - {b reachability} — e.g. "well-formed packets to X are never
      dropped", checked for a specific configuration.

    Crash-freedom exploration only descends into subtrees that can
    still reach a suspect segment — the pruning that, combined with
    per-element summary caching, gives the paper's exponential-to-
    linear collapse.

    Step-2 feasibility checks run, by default, against one {e
    incremental} solver context carried down the composition DFS: each
    descent pushes a scope and asserts only the new segment's
    constraints, each return pops it, and the solver keeps its blasted
    term DAG and learned clauses throughout. A shared query cache
    additionally memoizes identical composite conditions (common across
    properties on the same pipeline). [config.incremental = false]
    restores flat per-check solving; [config.cache = false] disables
    memoization — both escape hatches exist so the two modes can be
    differentially tested and benchmarked against each other.

    With [config.jobs > 1] both steps run on a {!Pool} of that many
    domains. Step 1 fans the distinct element symbex jobs out (they
    share nothing but the domain-safe term table). Step 2 runs as a
    fine-grained task graph on the pool's helping scheduler: every
    composite tree node and every terminal feasibility check is its
    own dynamically-spawned task, each pool domain keeps one
    persistent incremental solver context that it re-seeds per task,
    and every parent merges its children's results in spawn (= DFS)
    order — so verdicts, violation lists and bound witnesses are
    ordered exactly as the sequential DFS produces them. See
    {!section-worksteal} below. *)

module B = Vdp_bitvec.Bitvec
module T = Vdp_smt.Term
module Solver = Vdp_smt.Solver
module Engine = Vdp_symbex.Engine
module S = Vdp_symbex.Sstate
module Ir = Vdp_ir.Types
module Click = struct
  module Pipeline = Vdp_click.Pipeline
  module Element = Vdp_click.Element
  module Runtime = Vdp_click.Runtime
end

type config = {
  engine : Engine.config;
  solver_budget : int;  (** conflict budget per composite check *)
  assume : T.t list;    (** extra assumptions on the input packet *)
  validate_witnesses : bool;
  replay : bool;
      (** replay each witness through {!Witness.replay}: derive the
          initial private state the violating path depends on, load it,
          and require the concrete runtime to reproduce the claimed
          outcome before tagging the violation confirmed. Off, the
          legacy stateless spot-check of [validate_witnesses] is all
          that runs. *)
  max_composite_paths : int;
  incremental : bool;
      (** carry one push/pop solver context down the Step-2 DFS *)
  cache : bool;  (** memoize Step-2 queries in [Solver.shared_cache] *)
  preprocess : bool;
      (** word-level solver preprocessing (equality substitution,
          constant propagation, slicing) before bit-blasting each
          Step-2 query *)
  jobs : int;
      (** domains used for Step-1 symbex and Step-2 suspect checking;
          1 (the default) keeps everything on the calling domain.
          Parallel runs enforce [max_composite_paths] through one
          atomic counter shared by all tasks, so the budget is global
          (tasks already in flight when it trips still finish). *)
  certify : bool;
      (** produce and independently check a proof certificate for every
          refuted suspect-path query ({!Vdp_cert.Certificate}); the
          per-run summary lands in the report's [cert] field. A verdict
          of [Proved] (or an exact bound) is only as trustworthy as its
          refutations, so this is the knob that upgrades "the solver
          said so" to "the solver said so and a separate checker agreed
          on every answer". *)
}

let default_config =
  {
    engine = Engine.default_config;
    solver_budget = 2_000_000;
    assume = [];
    validate_witnesses = true;
    replay = true;
    max_composite_paths = 2_000_000;
    incremental = true;
    cache = true;
    preprocess = true;
    jobs = 1;
    certify = false;
  }

type violation = {
  node : int;
  element : string;
  outcome : Engine.outcome;
  cond : T.t list;
  witness : Vdp_packet.Packet.t option;
  confirmed : bool;
      (** the witness reproduced the outcome on the concrete runtime *)
  stateful : bool;  (** depends on values read from private state *)
  replayed : Witness.t option;
      (** full replay record (run, loaded state, divergence point) when
          [config.replay] was on *)
}

type verdict =
  | Proved
  | Violated of violation list
  | Unknown of string

type stats = {
  mutable elements : int;
  mutable unique_summaries : int;
  mutable segments_total : int;
  mutable suspects : int;
  mutable composite_paths : int;
  mutable suspect_checks : int;
  mutable refuted : int;
  mutable unknown_checks : int;
  mutable replays : int;
  mutable replays_confirmed : int;
  mutable step1_time : float;
  mutable step2_time : float;
}

let fresh_stats () =
  {
    elements = 0;
    unique_summaries = 0;
    segments_total = 0;
    suspects = 0;
    composite_paths = 0;
    suspect_checks = 0;
    refuted = 0;
    unknown_checks = 0;
    replays = 0;
    replays_confirmed = 0;
    step1_time = 0.;
    step2_time = 0.;
  }

type report = {
  verdict : verdict;
  stats : stats;
  cert : Vdp_cert.Certificate.summary option;
      (** certification summary when [config.certify] was on *)
}

(* {1 Shared plumbing} *)

(* Wall clock, not CPU time: the bench harness compares against
   [Unix.gettimeofday]-based timings, and CPU time under-reports once
   solving is incremental or parallel. *)
let now () = Unix.gettimeofday ()

(* The Step-2 solving strategy. In incremental mode the context is
   maintained so that, on entry to [visit node st], it holds exactly
   the constraints of [st.cond]; flat mode re-solves [st.cond] from
   scratch at every suspect. *)
type step2 =
  | Flat of Solver.Cache.t option * bool  (* (cache, preprocess) *)
  | Incremental of Solver.ctx

let make_step2 cfg =
  let cache = if cfg.cache then Some Solver.shared_cache else None in
  if cfg.incremental then
    Incremental
      (Solver.create_ctx ?cache ~preprocess:cfg.preprocess
         ~track_core:cfg.certify ())
  else Flat (cache, cfg.preprocess)

let make_flat cfg =
  Flat
    ((if cfg.cache then Some Solver.shared_cache else None), cfg.preprocess)

(* Enter the composite state [st]: in incremental mode, open a scope
   holding exactly the constraints [apply] just added. *)
let enter step2 (st : Compose.t) =
  match step2 with
  | Flat _ -> ()
  | Incremental c ->
    Solver.push c;
    Solver.assert_terms c st.Compose.new_cond

let leave = function
  | Flat _ -> ()
  | Incremental c -> Solver.pop c

(* Check feasibility of [st.cond @ extra]. Incremental-mode invariant:
   the context currently holds [st.cond]. *)
let check_state step2 ~max_conflicts (st : Compose.t) extra =
  let deps = st.Compose.static_deps in
  match step2 with
  | Flat (cache, preprocess) ->
    Solver.check ?cache ~deps ~preprocess ~max_conflicts
      (extra @ st.Compose.cond)
  | Incremental c ->
    if extra = [] then Solver.check_ctx ~deps ~max_conflicts c
    else begin
      Solver.push c;
      Solver.assert_terms c extra;
      let r = Solver.check_ctx ~deps ~max_conflicts c in
      Solver.pop c;
      r
    end

(* Decide feasibility with a single unbounded query; only a satisfiable
   answer pays extra for witness shrinking (retry under increasingly
   loose length bounds and keep the first satisfiable one — purely
   cosmetic, soundness only needs the unbounded answer). Checks on a
   crash-free pipeline are overwhelmingly unsat, so the common case
   costs exactly one query instead of one per bound. *)
let check_small step2 ~max_conflicts (st : Compose.t) =
  match check_state step2 ~max_conflicts st [] with
  | (Solver.Unsat | Solver.Unknown) as r -> r
  | Solver.Sat m ->
    let rec shrink = function
      | [] -> Solver.Sat m
      | b :: rest -> (
        let bound = T.ule (T.var S.len_var 16) (T.bv_int ~width:16 b) in
        match check_state step2 ~max_conflicts st [ bound ] with
        | Solver.Sat m' -> Solver.Sat m'
        | Solver.Unsat | Solver.Unknown -> shrink rest)
    in
    shrink [ 16; 64; 128 ]

(* Certification plumbing: one thread-safe collector per run when
   [config.certify]; every [Unsat] suspect-path answer sends its refuted
   conjunction through it. Only the outer, unbounded query ([st.cond])
   is certified — the witness-shrinking retries in [check_small] run
   only after a [Sat], and a [Sat] is vouched for by witness replay,
   not by a proof. *)
let make_cert cfg =
  if cfg.certify then
    Some
      (Vdp_cert.Certificate.create_collector ~preprocess:cfg.preprocess
         ~max_conflicts:cfg.solver_budget ())
  else None

(* Hand the certificate producer what the answering solver already
   knows: the preprocessing result (so the proof cache is keyed exactly
   like the query cache) and the unsat core over the residual conjuncts
   (so only the core is re-blasted). Flat mode solves one-shot and
   exposes neither. Must be read before the context runs another
   check — callers capture the pair synchronously. *)
let cert_pre_core = function
  | Incremental c -> (Solver.last_pre c, Solver.last_core c)
  | Flat _ -> (None, None)

let certify_now cert step2 (st : Compose.t) =
  match cert with
  | None -> ()
  | Some col ->
    let pre, core = cert_pre_core step2 in
    ignore
      (Vdp_cert.Certificate.certify_refutation ?pre ?core col st.Compose.cond
        : (Vdp_cert.Certificate.t, string) result)

let cert_summary cert = Option.map Vdp_cert.Certificate.summary cert

let base_assumptions cfg =
  T.ule (T.var S.len_var 16)
    (T.bv_int ~width:16 cfg.engine.Engine.max_len)
  :: cfg.assume

(* The composite state at the pipeline entry, carrying the configured
   headroom as the remaining push budget. *)
let initial_state cfg =
  Compose.initial ~assume:(base_assumptions cfg)
    ~headroom:cfg.engine.Engine.headroom ()

let step1 ?pool cfg (pl : Click.Pipeline.t) stats =
  (* From here on, static-store mutations must invalidate the caches
     the run is about to populate. *)
  Staleness.install ();
  let t0 = now () in
  let before = Summaries.size () in
  let summaries = Summaries.of_pipeline ?pool ~config:cfg.engine pl in
  stats.step1_time <- now () -. t0;
  stats.elements <- Array.length summaries;
  stats.unique_summaries <- Summaries.size () - before;
  stats.segments_total <-
    Array.fold_left
      (fun acc (e : Summaries.entry) ->
        acc + List.length e.Summaries.result.Engine.segments)
      0 summaries;
  summaries

let any_incomplete summaries =
  Array.exists
    (fun (e : Summaries.entry) -> e.Summaries.result.Engine.incomplete > 0)
    summaries

(* Does the runtime reproduce the predicted outcome for this witness? *)
let validate_crash pl pkt node =
  let inst = Click.Runtime.instantiate pl in
  match (Click.Runtime.push inst (Vdp_packet.Packet.clone pkt)).Click.Runtime.final with
  | Click.Runtime.Crashed_at (n, _) -> n = node
  | _ -> false

(* Replay one Sat model: with [config.replay], through the full
   witness-replay machinery (initial private state derived from the
   model and loaded); otherwise the legacy stateless spot-check.
   Returns (replay record, witness packet, confirmed). *)
let replay_model cfg pl (stats : stats) ~model ~st ~expect =
  let max_len = cfg.engine.Engine.max_len in
  if cfg.replay && cfg.validate_witnesses then begin
    let r = Witness.replay pl ~max_len ~model ~st ~expect in
    stats.replays <- stats.replays + 1;
    let ok = Witness.confirmed r in
    if ok then stats.replays_confirmed <- stats.replays_confirmed + 1;
    (Some r, r.Witness.packet, ok)
  end
  else
    let pkt = Compose.witness_packet model ~max_len in
    let confirmed =
      cfg.validate_witnesses
      &&
      match expect with
      | Witness.Crash_at node -> validate_crash pl pkt node
      | _ -> false
    in
    (None, pkt, confirmed)

let trace_reads_kv (st : Compose.t) =
  List.exists
    (fun (_, ev) -> match ev with S.Kv_read _ -> true | _ -> false)
    st.Compose.kv_trace

let segment_reads_kv (seg : Engine.segment) =
  List.exists
    (function S.Kv_read _ -> true | S.Kv_write _ -> false)
    seg.Engine.kv_log

exception Path_budget

(* {1:worksteal Work-stealing Step-2}

   With [jobs > 1], Step-2 is a dynamic task graph on the {!Pool}
   helping scheduler instead of a pre-partitioned frontier: every
   composite tree node ([W_subtree]) and every terminal feasibility
   check ([W_check]) becomes its own task, spawned as its parent
   expands. A subtree task is pure [Compose] work — expand one node's
   segments, spawn a task per work item, await the children and merge;
   only check tasks touch the solver.

   Each pool domain lazily builds one {e persistent} incremental
   context and re-seeds it at every check task ("clone on steal": pop
   all scopes, push one, assert the task's accumulated prefix). The
   re-seed itself is cheap — scopes are just term lists — while the
   expensive state (blasted term DAG, gate encodings, learned clauses)
   stays with the domain across every task it runs. The coarse
   frontier partitioning this replaces re-rooted each subtree into a
   brand-new context, re-blasting the shared prefix per subtree and
   solving all frontier checks flat.

   Determinism: a parent merges child results in spawn (= DFS) order,
   so violation lists, bound witnesses and counters come out exactly
   as the sequential DFS orders them. The composite-path budget is one
   atomic counter shared by every task; a task that finds it exhausted
   returns a budget-hit marker instead of expanding.

   Check tasks never await anything, so a domain that helps (runs
   another task while blocked in [Pool.await]) can never interleave
   two users of its context: only check tasks use the context, and
   they run to completion before the helping await returns. *)

type 'chk work =
  | W_check of 'chk
  | W_subtree of int * Compose.t

let with_jobs cfg f =
  if cfg.jobs <= 1 then f None
  else Pool.with_pool cfg.jobs (fun pool -> f (Some pool))

(* One persistent Step-2 context per pool domain, built on first use;
   a fresh key per run keeps runs (and their configs) isolated. *)
let worker_ctx_key cfg = Domain.DLS.new_key (fun () -> make_step2 cfg)

let reseed step2 (st : Compose.t) =
  match step2 with
  | Flat _ -> ()
  | Incremental c ->
    while Solver.depth c > 0 do
      Solver.pop c
    done;
    Solver.push c;
    Solver.assert_terms c (List.rev st.Compose.cond)

(* Fold the pool's scheduler counters into the global solver stats;
   the bench harness reports them alongside the solver counters. *)
let record_sched pool =
  let ps = Pool.stats pool in
  let g = Solver.stats in
  g.Solver.sched_spawned <- g.Solver.sched_spawned + ps.Pool.spawned;
  g.Solver.sched_executed <- g.Solver.sched_executed + ps.Pool.executed;
  g.Solver.sched_stolen <- g.Solver.sched_stolen + ps.Pool.stolen;
  g.Solver.sched_busy <- g.Solver.sched_busy +. ps.Pool.busy_seconds;
  g.Solver.sched_idle <- g.Solver.sched_idle +. ps.Pool.idle_seconds;
  Array.iteri
    (fun i n -> g.Solver.sched_hist.(i) <- g.Solver.sched_hist.(i) + n)
    ps.Pool.hist

(* Certificates are produced and checked as their own pool tasks, so
   proof production/checking overlaps ongoing solving instead of
   serializing after each refutation. The answering context's
   preprocessing result and unsat core must be captured synchronously
   (the context is re-seeded by the domain's next task); only the
   produce-and-check work is deferred. The futures are drained before
   the run reads its certification summary. *)
type cert_queue = {
  cq_mutex : Mutex.t;
  mutable cq_futs : unit Pool.future list;
}

let make_cert_queue () = { cq_mutex = Mutex.create (); cq_futs = [] }

let async_cert pool q cert step2 (st : Compose.t) =
  match cert with
  | None -> ()
  | Some col ->
    let pre, core = cert_pre_core step2 in
    let cond = st.Compose.cond in
    let fut =
      Pool.spawn pool (fun () ->
          ignore
            (Vdp_cert.Certificate.certify_refutation ?pre ?core col cond
              : (Vdp_cert.Certificate.t, string) result))
    in
    Mutex.lock q.cq_mutex;
    q.cq_futs <- fut :: q.cq_futs;
    Mutex.unlock q.cq_mutex

let drain_certs pool q =
  Mutex.lock q.cq_mutex;
  let futs = q.cq_futs in
  q.cq_futs <- [];
  Mutex.unlock q.cq_mutex;
  List.iter (fun f -> Pool.await pool f) futs

(* Step-2 counters produced by one worker, merged positionally. *)
let merge_counters into (from : stats) =
  into.composite_paths <- into.composite_paths + from.composite_paths;
  into.suspect_checks <- into.suspect_checks + from.suspect_checks;
  into.refuted <- into.refuted + from.refuted;
  into.unknown_checks <- into.unknown_checks + from.unknown_checks;
  into.replays <- into.replays + from.replays;
  into.replays_confirmed <- into.replays_confirmed + from.replays_confirmed

(* {1 Crash freedom} *)

(* The DFS body shared by the sequential pass and each parallel
   subtree worker. [check_one] expects the context to hold the state
   {e before} the crash segment's constraints; it enters/leaves the
   crash state itself. [?outcome] overrides the segment's own outcome
   in the reported violation — used when composition discovers that a
   segment dips below the {e remaining} headroom budget even though the
   element-local summary (which assumed a full budget) did not crash.
   [danger.(i)] marks nodes where some segment's worst push excursion
   can exceed the least budget any path carries in (a static
   over-approximation): only there do drop/emit segments need the
   per-path dip check, so headroom-safe pipelines pay nothing. *)
let crash_visitor cfg pl nodes (summaries : Summaries.entry array)
    has_suspect danger ~(stats : stats) ~violations ~unknowns ~certify step2 =
  let check_one ?outcome node (seg : Engine.segment) (st' : Compose.t) =
    stats.suspect_checks <- stats.suspect_checks + 1;
    enter step2 st';
    (match check_small step2 ~max_conflicts:cfg.solver_budget st' with
    | Solver.Unsat ->
      stats.refuted <- stats.refuted + 1;
      certify st'
    | Solver.Unknown ->
      stats.unknown_checks <- stats.unknown_checks + 1;
      incr unknowns
    | Solver.Sat model ->
      let stateful =
        trace_reads_kv st' && segment_reads_kv seg
      in
      let replayed, witness, confirmed =
        replay_model cfg pl stats ~model ~st:st'
          ~expect:(Witness.Crash_at node)
      in
      violations :=
        {
          node;
          element = nodes.(node).Click.Pipeline.element.Click.Element.name;
          outcome =
            (match outcome with Some o -> o | None -> seg.Engine.outcome);
          cond = st'.Compose.cond;
          witness = Some witness;
          confirmed;
          stateful;
          replayed;
        }
        :: !violations);
    leave step2
  in
  let rec visit node (st : Compose.t) =
    stats.composite_paths <- stats.composite_paths + 1;
    if stats.composite_paths > cfg.max_composite_paths then
      raise Path_budget;
    let tag = Printf.sprintf "n%d" node in
    let deps = summaries.(node).Summaries.result.Engine.static_deps in
    List.iter
      (fun (seg : Engine.segment) ->
        match seg.Engine.outcome with
        | Engine.O_crash _ ->
          let st' = Compose.apply ~deps st ~tag seg in
          let outcome =
            if st'.Compose.headroom_short then
              Some (Engine.O_crash Engine.C_headroom)
            else None
          in
          check_one ?outcome node seg st'
        | Engine.O_drop ->
          if danger.(node) then begin
            let st' = Compose.apply ~deps st ~tag seg in
            if st'.Compose.headroom_short then
              check_one ~outcome:(Engine.O_crash Engine.C_headroom) node seg
                st'
          end
        | Engine.O_emit p -> (
          let dst =
            match nodes.(node).Click.Pipeline.outputs.(p) with
            | Some (dst, _) when has_suspect.(dst) -> Some dst
            | _ -> None
          in
          if danger.(node) || dst <> None then
            let st' = Compose.apply ~deps st ~tag seg in
            if st'.Compose.headroom_short then
              (* The runtime crashes mid-segment; nothing runs behind
                 this element on such a path, so do not descend. *)
              check_one ~outcome:(Engine.O_crash Engine.C_headroom) node seg
                st'
            else
              match dst with
              | Some dst when Compose.plausible st' ->
                enter step2 st';
                visit dst st';
                leave step2
              | _ -> ()))
      summaries.(node).Summaries.result.Engine.segments
  in
  (check_one, visit)

type crash_check = {
  cc_node : int;
  cc_seg : Engine.segment;
  cc_st : Compose.t;  (* state after applying the crash segment *)
  cc_outcome : Engine.outcome option;
      (* overriding outcome (composition-level headroom crash) *)
}

(* One visit step of the crash DFS, as frontier expansion — mirrors the
   segment loop of [crash_visitor.visit], including the headroom dip
   checks gated on [danger]. *)
let crash_expand nodes (summaries : Summaries.entry array) has_suspect danger
    node st =
  let tag = Printf.sprintf "n%d" node in
  let deps = summaries.(node).Summaries.result.Engine.static_deps in
  let hr_check seg st' =
    [ W_check
        { cc_node = node; cc_seg = seg; cc_st = st';
          cc_outcome = Some (Engine.O_crash Engine.C_headroom) } ]
  in
  List.concat_map
    (fun (seg : Engine.segment) ->
      match seg.Engine.outcome with
      | Engine.O_crash _ ->
        let st' = Compose.apply ~deps st ~tag seg in
        if st'.Compose.headroom_short then hr_check seg st'
        else
          [ W_check
              { cc_node = node; cc_seg = seg; cc_st = st';
                cc_outcome = None } ]
      | Engine.O_drop ->
        if danger.(node) then begin
          let st' = Compose.apply ~deps st ~tag seg in
          if st'.Compose.headroom_short then hr_check seg st' else []
        end
        else []
      | Engine.O_emit p -> (
        let dst =
          match nodes.(node).Click.Pipeline.outputs.(p) with
          | Some (dst, _) when has_suspect.(dst) -> Some dst
          | _ -> None
        in
        if danger.(node) || dst <> None then
          let st' = Compose.apply ~deps st ~tag seg in
          if st'.Compose.headroom_short then hr_check seg st'
          else
            match dst with
            | Some dst when Compose.plausible st' -> [ W_subtree (dst, st') ]
            | _ -> []
        else []))
    summaries.(node).Summaries.result.Engine.segments

let check_crash_freedom ?(config = default_config) (pl : Click.Pipeline.t) :
    report =
  with_jobs config @@ fun pool ->
  let stats = fresh_stats () in
  let cert = make_cert config in
  let summaries = step1 ?pool config pl stats in
  let nodes = Click.Pipeline.nodes pl in
  let n = Array.length nodes in
  let entry = Click.Pipeline.entry pl in
  let order = Click.Pipeline.topological_order pl in
  (* Static headroom budgeting: [budget.(i)] is the least remaining
     headroom any path can carry into node [i] (forward min-plus pass
     over the segments' net head deltas). A node is a [danger] node iff
     some segment's worst push excursion can dip below that least
     budget — an over-approximation of the per-path [headroom_short]
     check, so pipelines that provably stay within budget skip the
     dynamic dip checks entirely. *)
  let budget = Array.make n max_int in
  budget.(entry) <- config.engine.Engine.headroom;
  let danger = Array.make n false in
  List.iter
    (fun i ->
      if budget.(i) < max_int then
        List.iter
          (fun (seg : Engine.segment) ->
            let out = seg.Engine.out_state in
            if budget.(i) + out.Engine.min_delta < 0 then danger.(i) <- true;
            match seg.Engine.outcome with
            | Engine.O_emit p -> (
              match nodes.(i).Click.Pipeline.outputs.(p) with
              | Some (dst, _) ->
                let b = budget.(i) + out.Engine.head_delta in
                if b < budget.(dst) then budget.(dst) <- b
              | None -> ())
            | Engine.O_drop | Engine.O_crash _ -> ())
          summaries.(i).Summaries.result.Engine.segments)
    order;
  (* Which nodes can still lead to a suspect segment (their own crash
     segments, a possible headroom dip, or either further down)? *)
  let has_suspect = Array.make n false in
  List.iter
    (fun i ->
      let own =
        danger.(i)
        || List.exists Summaries.is_suspect_crash
             summaries.(i).Summaries.result.Engine.segments
      in
      let below =
        Array.exists
          (function
            | Some (dst, _) -> has_suspect.(dst)
            | None -> false)
          nodes.(i).Click.Pipeline.outputs
      in
      has_suspect.(i) <- own || below)
    (List.rev order);
  Array.iter
    (fun (e : Summaries.entry) ->
      stats.suspects <-
        stats.suspects
        + List.length
            (List.filter Summaries.is_suspect_crash
               e.Summaries.result.Engine.segments))
    summaries;
  let t0 = now () in
  let violations, unknowns, budget_hit =
    match pool with
    | Some pool when Pool.size pool > 1 && has_suspect.(entry) ->
      let key = worker_ctx_key config in
      let visits = Atomic.make 0 in
      let cq = make_cert_queue () in
      (* A check task re-seeds its domain's context with the state
         {e before} the crash segment ([check_one] enters/leaves the
         crash state itself, mirroring the sequential DFS). *)
      let check_leaf { cc_node; cc_seg; cc_st; cc_outcome } st_parent () =
        let local = fresh_stats () in
        let violations = ref [] and unknowns = ref 0 in
        let step2 = Domain.DLS.get key in
        reseed step2 st_parent;
        let check_one, _ =
          crash_visitor config pl nodes summaries has_suspect danger
            ~stats:local ~violations ~unknowns
            ~certify:(fun st -> async_cert pool cq cert step2 st)
            step2
        in
        check_one ?outcome:cc_outcome cc_node cc_seg cc_st;
        (List.rev !violations, !unknowns, local, false)
      in
      let rec subtree node st () =
        let local = fresh_stats () in
        local.composite_paths <- 1;
        if Atomic.fetch_and_add visits 1 >= config.max_composite_paths then
          ([], 0, local, true)
        else
          let futs =
            List.map
              (function
                | W_check chk -> Pool.spawn pool (check_leaf chk st)
                | W_subtree (dst, st') -> Pool.spawn pool (subtree dst st'))
              (crash_expand nodes summaries has_suspect danger node st)
          in
          List.fold_left
            (fun (vs, unk, acc, bh) fut ->
              let vs_i, unk_i, s_i, bh_i = Pool.await pool fut in
              merge_counters acc s_i;
              (vs @ vs_i, unk + unk_i, acc, bh || bh_i))
            ([], 0, local, false) futs
      in
      let st0 = initial_state config in
      let vs, unk, s, bh =
        Pool.await pool (Pool.spawn pool (subtree entry st0))
      in
      merge_counters stats s;
      drain_certs pool cq;
      record_sched pool;
      (vs, unk, bh)
    | _ ->
      let step2 = make_step2 config in
      let violations = ref [] in
      let unknowns = ref 0 in
      let _, visit =
        crash_visitor config pl nodes summaries has_suspect danger ~stats
          ~violations ~unknowns ~certify:(certify_now cert step2) step2
      in
      let budget_hit =
        try
          if has_suspect.(entry) then begin
            let st0 = initial_state config in
            enter step2 st0;
            visit entry st0;
            leave step2
          end;
          false
        with Path_budget -> true
      in
      (List.rev !violations, !unknowns, budget_hit)
  in
  stats.step2_time <- now () -. t0;
  let verdict =
    if violations <> [] then Violated violations
    else if budget_hit then Unknown "composite path budget exceeded"
    else if unknowns > 0 then Unknown "solver budget exceeded on some checks"
    else if any_incomplete summaries then
      Unknown "element symbolic execution was incomplete"
    else Proved
  in
  { verdict; stats; cert = cert_summary cert }

(* {1 Incremental (delta) re-verification}

   A [session] memoizes the last crash-freedom report for one pipeline
   and re-validates it by probing the Step-1 summary cache: the report
   is a deterministic function of the element summaries (plus config),
   so if every summary entry comes back {e physically} unchanged — i.e.
   no static-store mutation invalidated any of them since the last run
   — the previous [Proved] verdict still holds and is returned without
   re-composing or re-solving anything. A mutation that does invalidate
   a summary makes the probe recompute exactly that element; the
   mismatch then triggers a full (but cache-warm) re-verification.
   Non-[Proved] reports are never reused: a violation's witness is
   replayed against {e current} store contents, so its confirmation
   status must be recomputed. *)

type session = {
  s_pl : Click.Pipeline.t;
  s_config : config;
  mutable s_prev : (Summaries.entry array * report) option;
}

let session ?(config = default_config) pl =
  Staleness.install ();
  { s_pl = pl; s_config = config; s_prev = None }

let verify_crash (s : session) : report * bool =
  let probe () = Summaries.of_pipeline ~config:s.s_config.engine s.s_pl in
  match s.s_prev with
  | Some (prev, r)
    when (match r.verdict with Proved -> true | _ -> false)
         && Summaries.unchanged prev (probe ()) ->
    (r, true)
  | _ ->
    let r = check_crash_freedom ~config:s.s_config s.s_pl in
    s.s_prev <- Some (probe (), r);
    (r, false)

(* {1 Bounded execution} *)

type bound_report = {
  bound : int option;  (** max instructions over feasible paths *)
  exact : bool;
      (** false if any loop summary contributed slack, or if a
          candidate path longer than [bound] came back [Unknown] (the
          true maximum might then exceed the reported one) *)
  witness : Vdp_packet.Packet.t option;
  measured : int option;
      (** instructions the runtime actually spent on the witness *)
  b_replayed : Witness.t option;
      (** replay record of the witness (with its derived initial
          state), when [config.replay] was on *)
  b_stats : stats;
  b_verdict : verdict;  (** Unknown if exploration was incomplete *)
  b_cert : Vdp_cert.Certificate.summary option;
}

let rec atomic_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then atomic_max a v

(* The bound DFS body shared by the sequential pass and each parallel
   subtree worker. [best] is (instr_hi, final composite state, model)
   of the longest feasible path seen so far, first-in-DFS-order on
   ties.
   [hint] is a pruning accelerator shared across workers: the largest
   instr_hi proven feasible anywhere so far. Skipping paths at or below
   it never loses the maximum, so the bound stays deterministic; which
   equal-length witness is kept (and the check count) may vary. *)
let bound_visitor cfg nodes (summaries : Summaries.entry array)
    ~(stats : stats) ~best ~hint ~unknown_hi ~completed ~certify step2 =
  let record_unknown (st : Compose.t) =
    stats.unknown_checks <- stats.unknown_checks + 1;
    if st.Compose.instr_hi > !unknown_hi then unknown_hi := st.Compose.instr_hi
  in
  (* Incremental mode checks each completed path as the DFS reaches it
     (sharing the prefix context), keeping the running maximum; only
     paths that could raise the maximum are checked. *)
  let leaf (st' : Compose.t) =
    let improves =
      (match !best with
      | None -> true
      | Some (b, _, _) -> st'.Compose.instr_hi > b)
      && st'.Compose.instr_hi > Atomic.get hint
    in
    if improves then begin
      stats.suspect_checks <- stats.suspect_checks + 1;
      enter step2 st';
      (match check_state step2 ~max_conflicts:cfg.solver_budget st' [] with
      | Solver.Sat model ->
        atomic_max hint st'.Compose.instr_hi;
        best := Some (st'.Compose.instr_hi, st', model)
      | Solver.Unsat ->
        stats.refuted <- stats.refuted + 1;
        certify st'
      | Solver.Unknown -> record_unknown st');
      leave step2
    end
  in
  let complete st' crashed =
    match step2 with
    | Flat _ -> completed := (st', crashed) :: !completed
    | Incremental _ -> leaf st'
  in
  let rec visit node (st : Compose.t) =
    stats.composite_paths <- stats.composite_paths + 1;
    if stats.composite_paths > cfg.max_composite_paths then
      raise Path_budget;
    let tag = Printf.sprintf "n%d" node in
    let deps = summaries.(node).Summaries.result.Engine.static_deps in
    List.iter
      (fun (seg : Engine.segment) ->
        let st' = Compose.apply ~deps st ~tag seg in
        if Compose.plausible st' then
          match seg.Engine.outcome with
          | Engine.O_crash _ -> complete st' true
          | Engine.O_drop -> complete st' false
          | Engine.O_emit p -> (
            match nodes.(node).Click.Pipeline.outputs.(p) with
            | None -> complete st' false
            | Some (dst, _) ->
              enter step2 st';
              visit dst st';
              leave step2))
      summaries.(node).Summaries.result.Engine.segments
  in
  (record_unknown, complete, visit)

(* One visit step of the bound DFS, as frontier expansion. The check
   payload is a completed path: (final state, ended-in-crash). *)
let bound_expand nodes (summaries : Summaries.entry array) node st =
  let tag = Printf.sprintf "n%d" node in
  let deps = summaries.(node).Summaries.result.Engine.static_deps in
  List.concat_map
    (fun (seg : Engine.segment) ->
      let st' = Compose.apply ~deps st ~tag seg in
      if not (Compose.plausible st') then []
      else
        match seg.Engine.outcome with
        | Engine.O_crash _ -> [ W_check (st', true) ]
        | Engine.O_drop -> [ W_check (st', false) ]
        | Engine.O_emit p -> (
          match nodes.(node).Click.Pipeline.outputs.(p) with
          | None -> [ W_check (st', false) ]
          | Some (dst, _) -> [ W_subtree (dst, st') ]))
    summaries.(node).Summaries.result.Engine.segments

let instruction_bound ?(config = default_config) (pl : Click.Pipeline.t) :
    bound_report =
  with_jobs config @@ fun pool ->
  let stats = fresh_stats () in
  let cert = make_cert config in
  let summaries = step1 ?pool config pl stats in
  let nodes = Click.Pipeline.nodes pl in
  let t0 = now () in
  (* Best feasible path so far: (instr_hi, final state, model). *)
  let best : (int * Compose.t * Vdp_smt.Model.t) option ref = ref None in
  (* Longest candidate that came back Unknown; if it exceeds the final
     bound, the bound may undercount and must not be reported exact. *)
  let unknown_hi = ref (-1) in
  let hint = Atomic.make (-1) in
  let completed : (Compose.t * bool) list ref = ref [] in
  (* (final state, ended-in-crash) — flat mode only *)
  let budget_hit =
    match pool with
    | Some pool when Pool.size pool > 1 ->
      let key = worker_ctx_key config in
      let visits = Atomic.make 0 in
      let cq = make_cert_queue () in
      (* A completed path: in incremental mode check it now on the
         domain's re-seeded context (the shared [hint] prunes paths
         that cannot raise the maximum); in flat mode just collect it
         for the longest-first search below. Task result:
         (best, unknown_hi, completed in DFS order, counters, budget). *)
      let check_leaf (st, crashed) () =
        let local = fresh_stats () in
        if not config.incremental then
          (None, -1, [ (st, crashed) ], local, false)
        else if st.Compose.instr_hi <= Atomic.get hint then
          (None, -1, [], local, false)
        else begin
          let step2 = Domain.DLS.get key in
          reseed step2 st;
          local.suspect_checks <- 1;
          match
            check_state step2 ~max_conflicts:config.solver_budget st []
          with
          | Solver.Sat model ->
            atomic_max hint st.Compose.instr_hi;
            (Some (st.Compose.instr_hi, st, model), -1, [], local, false)
          | Solver.Unsat ->
            local.refuted <- 1;
            async_cert pool cq cert step2 st;
            (None, -1, [], local, false)
          | Solver.Unknown ->
            local.unknown_checks <- 1;
            (None, st.Compose.instr_hi, [], local, false)
        end
      in
      let rec subtree node st () =
        let local = fresh_stats () in
        local.composite_paths <- 1;
        if Atomic.fetch_and_add visits 1 >= config.max_composite_paths then
          (None, -1, [], local, true)
        else
          let futs =
            List.map
              (function
                | W_check chk -> Pool.spawn pool (check_leaf chk)
                | W_subtree (dst, st') -> Pool.spawn pool (subtree dst st'))
              (bound_expand nodes summaries node st)
          in
          (* Merge in spawn order: a later candidate replaces the best
             only if strictly longer, so ties resolve to the first in
             global DFS order — the same path the sequential DFS
             keeps. *)
          List.fold_left
            (fun (b, uhi, comp, acc, bh) fut ->
              let b_i, uhi_i, comp_i, s_i, bh_i = Pool.await pool fut in
              merge_counters acc s_i;
              let b' =
                match (b, b_i) with
                | None, _ -> b_i
                | Some _, None -> b
                | Some (x, _, _), Some (y, _, _) -> if y > x then b_i else b
              in
              (b', max uhi uhi_i, comp @ comp_i, acc, bh || bh_i))
            (None, -1, [], local, false) futs
      in
      let st0 = initial_state config in
      let b, uhi, comp, s, bh =
        Pool.await pool
          (Pool.spawn pool (subtree (Click.Pipeline.entry pl) st0))
      in
      merge_counters stats s;
      best := b;
      if uhi > !unknown_hi then unknown_hi := uhi;
      (* Flat mode: the sequential push-front loop builds the list in
         reverse-DFS order; match it so the stable longest-first sort
         below breaks ties identically. *)
      completed := List.rev comp;
      drain_certs pool cq;
      record_sched pool;
      bh
    | _ -> (
      let step2 = make_step2 config in
      let _, _, visit =
        bound_visitor config nodes summaries ~stats ~best ~hint ~unknown_hi
          ~completed ~certify:(certify_now cert step2) step2
      in
      try
        let st0 = initial_state config in
        enter step2 st0;
        visit (Click.Pipeline.entry pl) st0;
        leave step2;
        false
      with Path_budget -> true)
  in
  (if not config.incremental then begin
     (* Longest first; the first satisfiable path gives the bound. *)
     let cache = if config.cache then Some Solver.shared_cache else None in
     let candidates =
       List.sort
         (fun ((a : Compose.t), _) (b, _) ->
           Stdlib.compare b.Compose.instr_hi a.Compose.instr_hi)
         !completed
     in
     let rec search = function
       | [] -> ()
       | ((st : Compose.t), _crashed) :: rest -> (
         stats.suspect_checks <- stats.suspect_checks + 1;
         match
           Solver.check ?cache ~deps:st.Compose.static_deps
             ~max_conflicts:config.solver_budget st.Compose.cond
         with
         | Solver.Sat model -> best := Some (st.Compose.instr_hi, st, model)
         | Solver.Unsat ->
           stats.refuted <- stats.refuted + 1;
           certify_now cert (make_flat config) st;
           search rest
         | Solver.Unknown ->
           stats.unknown_checks <- stats.unknown_checks + 1;
           if st.Compose.instr_hi > !unknown_hi then
             unknown_hi := st.Compose.instr_hi;
           search rest)
     in
     search candidates
   end);
  let bound, exact =
    match !best with
    | Some (b, st, _) ->
      (Some b, (not st.Compose.summarized) && !unknown_hi <= b)
    | None -> (None, false)
  in
  let witness, measured, b_replayed =
    match !best with
    | None -> (None, None, None)
    | Some (_, st, model) ->
      let max_len = config.engine.Engine.max_len in
      if config.replay && config.validate_witnesses then begin
        (* Load the private state the longest path assumed, then require
           the runtime's count to land inside the path's interval. *)
        let r =
          Witness.replay pl ~max_len ~model ~st
            ~expect:
              (Witness.Instrs_between
                 (st.Compose.instr_lo, st.Compose.instr_hi))
        in
        stats.replays <- stats.replays + 1;
        if Witness.confirmed r then
          stats.replays_confirmed <- stats.replays_confirmed + 1;
        ( Some r.Witness.packet,
          Some r.Witness.run.Click.Runtime.total_instrs,
          Some r )
      end
      else
        let pkt = Compose.witness_packet model ~max_len in
        if config.validate_witnesses then
          let inst = Click.Runtime.instantiate pl in
          let r = Click.Runtime.push inst (Vdp_packet.Packet.clone pkt) in
          (Some pkt, Some r.Click.Runtime.total_instrs, None)
        else (Some pkt, None, None)
  in
  stats.step2_time <- now () -. t0;
  let verdict =
    if budget_hit then Unknown "composite path budget exceeded"
    else if any_incomplete summaries then
      Unknown "element symbolic execution was incomplete"
    else if stats.unknown_checks > 0 then
      Unknown "solver budget exceeded on some checks"
    else Proved
  in
  {
    bound;
    exact;
    witness;
    measured;
    b_replayed;
    b_stats = stats;
    b_verdict = verdict;
    b_cert = cert_summary cert;
  }

(* {1 Reachability} *)

(** [check_reachability ~assume ~bad pl] proves that no input packet
    satisfying [assume] can end in a way matching [bad]; returns
    violations (with witnesses) otherwise. *)
type path_end =
  | End_egress of int  (** pipeline egress number *)
  | End_drop of int    (** node index that dropped *)
  | End_crash of int

let expect_of_end = function
  | End_egress e -> Witness.Egress_at e
  | End_drop n -> Witness.Drop_at n
  | End_crash n -> Witness.Crash_at n

(* The reachability DFS body. [check_end] expects the context to hold
   [st.cond] already (its caller entered the state). *)
let reach_visitor cfg pl nodes (summaries : Summaries.entry array) ~bad
    ~(stats : stats) ~violations ~unknowns ~certify step2 =
  let check_end node (st : Compose.t) outcome path_end =
    if bad path_end then begin
      stats.suspect_checks <- stats.suspect_checks + 1;
      match check_small step2 ~max_conflicts:cfg.solver_budget st with
      | Solver.Unsat ->
        stats.refuted <- stats.refuted + 1;
        certify st
      | Solver.Unknown ->
        stats.unknown_checks <- stats.unknown_checks + 1;
        incr unknowns
      | Solver.Sat model ->
        let replayed, witness, confirmed =
          replay_model cfg pl stats ~model ~st
            ~expect:(expect_of_end path_end)
        in
        violations :=
          {
            node;
            element = nodes.(node).Click.Pipeline.element.Click.Element.name;
            outcome;
            cond = st.Compose.cond;
            witness = Some witness;
            confirmed;
            stateful = trace_reads_kv st;
            replayed;
          }
          :: !violations
    end
  in
  let rec visit node (st : Compose.t) =
    stats.composite_paths <- stats.composite_paths + 1;
    if stats.composite_paths > cfg.max_composite_paths then
      raise Path_budget;
    let tag = Printf.sprintf "n%d" node in
    let deps = summaries.(node).Summaries.result.Engine.static_deps in
    List.iter
      (fun (seg : Engine.segment) ->
        let st' = Compose.apply ~deps st ~tag seg in
        if Compose.plausible st' then
          match seg.Engine.outcome with
          | Engine.O_crash _ ->
            enter step2 st';
            check_end node st' seg.Engine.outcome (End_crash node);
            leave step2
          | Engine.O_drop ->
            enter step2 st';
            check_end node st' seg.Engine.outcome (End_drop node);
            leave step2
          | Engine.O_emit p -> (
            match nodes.(node).Click.Pipeline.outputs.(p) with
            | None -> (
              match Click.Pipeline.egress_index pl ~node ~port:p with
              | Some e ->
                enter step2 st';
                check_end node st' seg.Engine.outcome (End_egress e);
                leave step2
              | None -> ())
            | Some (dst, _) ->
              enter step2 st';
              visit dst st';
              leave step2))
      summaries.(node).Summaries.result.Engine.segments
  in
  (check_end, visit)

type reach_check = {
  rc_node : int;
  rc_outcome : Engine.outcome;
  rc_end : path_end;
  rc_st : Compose.t;
}

(* One visit step of the reachability DFS, as frontier expansion; only
   path ends matching [bad] become check items. *)
let reach_expand pl nodes (summaries : Summaries.entry array) ~bad node st =
  let tag = Printf.sprintf "n%d" node in
  let deps = summaries.(node).Summaries.result.Engine.static_deps in
  let check seg st' path_end =
    if bad path_end then
      [ W_check
          { rc_node = node; rc_outcome = seg.Engine.outcome;
            rc_end = path_end; rc_st = st' } ]
    else []
  in
  List.concat_map
    (fun (seg : Engine.segment) ->
      let st' = Compose.apply ~deps st ~tag seg in
      if not (Compose.plausible st') then []
      else
        match seg.Engine.outcome with
        | Engine.O_crash _ -> check seg st' (End_crash node)
        | Engine.O_drop -> check seg st' (End_drop node)
        | Engine.O_emit p -> (
          match nodes.(node).Click.Pipeline.outputs.(p) with
          | None -> (
            match Click.Pipeline.egress_index pl ~node ~port:p with
            | Some e -> check seg st' (End_egress e)
            | None -> [])
          | Some (dst, _) -> [ W_subtree (dst, st') ]))
    summaries.(node).Summaries.result.Engine.segments

let check_reachability ?(config = default_config) ~bad (pl : Click.Pipeline.t)
    : report =
  with_jobs config @@ fun pool ->
  let stats = fresh_stats () in
  let cert = make_cert config in
  let summaries = step1 ?pool config pl stats in
  let nodes = Click.Pipeline.nodes pl in
  let t0 = now () in
  let violations, unknowns, budget_hit =
    match pool with
    | Some pool when Pool.size pool > 1 ->
      let key = worker_ctx_key config in
      let visits = Atomic.make 0 in
      let cq = make_cert_queue () in
      (* [check_end] expects the context to hold the path-end state in
         full, so the check task re-seeds with [rc_st] itself. *)
      let check_leaf { rc_node; rc_outcome; rc_end; rc_st } () =
        let local = fresh_stats () in
        let violations = ref [] and unknowns = ref 0 in
        let step2 = Domain.DLS.get key in
        reseed step2 rc_st;
        let check_end, _ =
          reach_visitor config pl nodes summaries ~bad ~stats:local
            ~violations ~unknowns
            ~certify:(fun st -> async_cert pool cq cert step2 st)
            step2
        in
        check_end rc_node rc_st rc_outcome rc_end;
        (List.rev !violations, !unknowns, local, false)
      in
      let rec subtree node st () =
        let local = fresh_stats () in
        local.composite_paths <- 1;
        if Atomic.fetch_and_add visits 1 >= config.max_composite_paths then
          ([], 0, local, true)
        else
          let futs =
            List.map
              (function
                | W_check chk -> Pool.spawn pool (check_leaf chk)
                | W_subtree (dst, st') -> Pool.spawn pool (subtree dst st'))
              (reach_expand pl nodes summaries ~bad node st)
          in
          List.fold_left
            (fun (vs, unk, acc, bh) fut ->
              let vs_i, unk_i, s_i, bh_i = Pool.await pool fut in
              merge_counters acc s_i;
              (vs @ vs_i, unk + unk_i, acc, bh || bh_i))
            ([], 0, local, false) futs
      in
      let st0 = initial_state config in
      let vs, unk, s, bh =
        Pool.await pool
          (Pool.spawn pool (subtree (Click.Pipeline.entry pl) st0))
      in
      merge_counters stats s;
      drain_certs pool cq;
      record_sched pool;
      (vs, unk, bh)
    | _ ->
      let violations = ref [] in
      let unknowns = ref 0 in
      let step2 = make_step2 config in
      let _, visit =
        reach_visitor config pl nodes summaries ~bad ~stats ~violations
          ~unknowns ~certify:(certify_now cert step2) step2
      in
      let budget_hit =
        try
          let st0 = initial_state config in
          enter step2 st0;
          visit (Click.Pipeline.entry pl) st0;
          leave step2;
          false
        with Path_budget -> true
      in
      (List.rev !violations, !unknowns, budget_hit)
  in
  stats.step2_time <- now () -. t0;
  let verdict =
    if violations <> [] then Violated violations
    else if budget_hit then Unknown "composite path budget exceeded"
    else if unknowns > 0 then Unknown "solver budget exceeded on some checks"
    else if any_incomplete summaries then
      Unknown "element symbolic execution was incomplete"
    else Proved
  in
  { verdict; stats; cert = cert_summary cert }
