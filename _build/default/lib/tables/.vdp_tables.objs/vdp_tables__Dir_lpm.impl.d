lib/tables/dir_lpm.ml: Array List Stdlib
