lib/click/el_arp.ml: El_util Vdp_bitvec Vdp_ir
