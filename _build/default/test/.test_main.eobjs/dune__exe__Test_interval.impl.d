test/test_interval.ml: Alcotest List QCheck QCheck_alcotest Vdp_bitvec Vdp_smt
