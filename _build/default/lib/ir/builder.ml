(** Imperative construction of IR programs.

    A builder holds a set of blocks under construction; instructions are
    appended to the {e selected} block, and a block is finished by
    giving it a terminator. [finish] checks that every created block was
    terminated and returns the immutable program. *)

module B = Vdp_bitvec.Bitvec
open Types

type pending_block = {
  mutable rev_instrs : instr list;
  mutable terminator : terminator option;
}

type t = {
  prog_name : string;
  mutable widths : int list;    (* reversed *)
  mutable nregs : int;
  mutable blocks : pending_block array;
  mutable nblocks : int;
  mutable current : int;
  mutable decls : store_decl list;  (* reversed *)
  mutable nports : int;
}

let create ~name =
  let entry = { rev_instrs = []; terminator = None } in
  {
    prog_name = name;
    widths = [];
    nregs = 0;
    blocks = Array.make 8 entry;
    nblocks = 1;
    current = 0;
    decls = [];
    nports = 1;
  }

let reg b ~width =
  if width < 1 then invalid_arg "Builder.reg: width < 1";
  let r = b.nregs in
  b.nregs <- r + 1;
  b.widths <- width :: b.widths;
  r

let new_block b =
  if b.nblocks = Array.length b.blocks then begin
    let arr =
      Array.make (2 * b.nblocks) { rev_instrs = []; terminator = None }
    in
    Array.blit b.blocks 0 arr 0 b.nblocks;
    b.blocks <- arr
  end;
  let label = b.nblocks in
  b.blocks.(label) <- { rev_instrs = []; terminator = None };
  b.nblocks <- label + 1;
  label

let select b label =
  if label < 0 || label >= b.nblocks then invalid_arg "Builder.select";
  b.current <- label

let current b = b.current

let instr b i =
  let blk = b.blocks.(b.current) in
  if blk.terminator <> None then
    invalid_arg "Builder.instr: block already terminated";
  blk.rev_instrs <- i :: blk.rev_instrs

let term b t =
  let blk = b.blocks.(b.current) in
  if blk.terminator <> None then
    invalid_arg "Builder.term: block already terminated";
  blk.terminator <- Some t

let declare_store b decl = b.decls <- decl :: b.decls
let set_nports b n = b.nports <- n

(* {1 Expression conveniences — each allocates a destination register} *)

let assign b ~width rhs =
  let r = reg b ~width in
  instr b (Assign (r, rhs));
  r

let const v = Const v
let int_ ~width n = Const (B.of_int ~width n)
let r_ r = Reg r

let width_of b = function
  | Const v -> B.width v
  | Reg r -> List.nth b.widths (b.nregs - 1 - r)

let binop b op x y =
  let w = width_of b x in
  assign b ~width:w (Binop (op, x, y))

let add b x y = binop b Add x y
let sub b x y = binop b Sub x y
let band b x y = binop b And x y
let bor b x y = binop b Or x y
let shl b x y = binop b Shl x y
let lshr b x y = binop b Lshr x y

let cmp b op x y = assign b ~width:1 (Cmp (op, x, y))
let eq b x y = cmp b Eq x y
let ne b x y = cmp b Ne x y
let ult b x y = cmp b Ult x y
let ule b x y = cmp b Ule x y

let load b ~off ~n =
  let r = reg b ~width:(8 * n) in
  instr b (Load (r, off, n));
  r

let store b ~off ~n v = instr b (Store (off, v, n))

let load_len b =
  let r = reg b ~width:16 in
  instr b (Load_len r);
  r

let meta_get b m =
  let r = reg b ~width:(meta_width m) in
  instr b (Meta_get (r, m));
  r

let kv_read b ~store:name ~key ~val_width =
  let r = reg b ~width:val_width in
  instr b (Kv_read (r, name, key));
  r

let extract b ~hi ~lo x = assign b ~width:(hi - lo + 1) (Extract (hi, lo, x))
let zext b ~width x = assign b ~width (Zext (width, x))
let select_val b ~width c x y = assign b ~width (Select (c, x, y))

(* {1 Structured control flow} *)

(** [if_ b cond then_ else_] — runs each continuation in a fresh block
    and rejoins in a new block which becomes current (unless both arms
    terminated). Arms report whether they fell through via [`Fallthrough]
    or ended the path via [`Closed]. *)
let if_ b cond then_branch else_branch =
  let tb = new_block b and eb = new_block b in
  term b (Branch (cond, tb, eb));
  select b tb;
  let t_state = then_branch () in
  let t_open = (t_state = `Fallthrough, current b) in
  select b eb;
  let e_state = else_branch () in
  let e_open = (e_state = `Fallthrough, current b) in
  match (t_open, e_open) with
  | (false, _), (false, _) -> `Closed
  | _ ->
    let join = new_block b in
    (match t_open with
    | true, blk ->
      select b blk;
      term b (Goto join)
    | false, _ -> ());
    (match e_open with
    | true, blk ->
      select b blk;
      term b (Goto join)
    | false, _ -> ());
    select b join;
    `Fallthrough

(** [if_crash b cond msg] — assert the negation: crash when [cond] holds. *)
let crash_if b cond msg =
  let w1 = assign b ~width:1 (Unop (Not, cond)) in
  instr b (Assert (Reg w1, msg))

let finish b =
  let blocks =
    Array.init b.nblocks (fun i ->
        let blk = b.blocks.(i) in
        match blk.terminator with
        | Some t -> { instrs = List.rev blk.rev_instrs; term = t }
        | None ->
          invalid_arg
            (Printf.sprintf "Builder.finish(%s): block %d not terminated"
               b.prog_name i))
  in
  let reg_widths = Array.of_list (List.rev b.widths) in
  {
    name = b.prog_name;
    reg_widths;
    blocks;
    stores = List.rev b.decls;
    nports = b.nports;
  }
