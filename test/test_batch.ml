(* The batched runtime and the compiled fast path: all three engines
   must be observationally identical — same finals, same per-element
   steps, same instruction counts, same packet bytes, same key/value
   state — on the same workloads. Plus the robustness fixes that ride
   along: RadixIPLookup across the full /0–/32 prefix range (checked
   against the Lpm trie reference), hop-budget exhaustion as a counted
   final instead of an exception, and the interpreter's assign-width
   check. *)

module B = Vdp_bitvec.Bitvec
module Ir = Vdp_ir.Types
module Interp = Vdp_ir.Interp
module Stores = Vdp_ir.Stores
module Lpm = Vdp_tables.Lpm
module P = Vdp_packet.Packet
module Gen = Vdp_packet.Gen
module Click = Vdp_click
module R = Click.Runtime
module El = Click.El_lookup

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let find name =
  List.find Sys.file_exists [ "../examples/" ^ name; "examples/" ^ name ]

let engines = [ R.Scalar; R.Batched; R.Compiled ]

let final_str f = Format.asprintf "%a" R.pp_final f

(* {1 RadixIPLookup vs the Lpm trie, /0 through /32} *)

(* A bare IPv4 header window: the lookup elements read dst at offset
   16 relative to head, i.e. they run post-Strip. *)
let ip_pkt dst =
  let b = Bytes.make 20 '\000' in
  Bytes.set b 16 (Char.chr ((dst lsr 24) land 0xff));
  Bytes.set b 17 (Char.chr ((dst lsr 16) land 0xff));
  Bytes.set b 18 (Char.chr ((dst lsr 8) land 0xff));
  Bytes.set b 19 (Char.chr (dst land 0xff));
  P.create (Bytes.to_string b)

let rand32 st =
  (Random.State.bits st lsl 16) lxor Random.State.bits st land 0xffffffff

(* Random route table with every prefix length reachable, prefixes
   masked to their length, unique (prefix, len) pairs so the reference
   and the element agree on tie-breaking. *)
let random_routes st n =
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  while Hashtbl.length seen < n do
    let plen = Random.State.int st 33 in
    let prefix = rand32 st land El.mask_of_len plen in
    if not (Hashtbl.mem seen (prefix, plen)) then begin
      Hashtbl.replace seen (prefix, plen) ();
      let gw = if Random.State.bool st then rand32 st else 0 in
      let port = Random.State.int st 8 in
      out := { El.prefix; plen; gw; port } :: !out
    end
  done;
  !out

let check_lookup_agrees ~msg trie inst addr =
  let expect = Lpm.lookup trie addr in
  let pkt = ip_pkt addr in
  let r = R.push inst pkt in
  match (expect, r.R.final) with
  | Some route, R.Egress p ->
    check_int (msg ^ ": port") route.El.port p;
    check_int (msg ^ ": gateway in W0") route.El.gw pkt.P.w0
  | None, R.Dropped_at 0 -> ()
  | _ ->
    Alcotest.failf "%s: addr %#x: trie says %s, element says %s" msg addr
      (match expect with
      | Some r -> Printf.sprintf "port %d" r.El.port
      | None -> "no route")
      (final_str r.R.final)

let radix_differential engine () =
  let st = Random.State.make [| 0xd1f; R.max_hops |] in
  for table = 0 to 14 do
    let routes = random_routes st (5 + Random.State.int st 25) in
    let trie =
      Lpm.of_list (List.map (fun r -> (r.El.prefix, r.El.plen, r)) routes)
    in
    let pl =
      Click.Pipeline.linear
        [
          Click.Element.make ~name:"rt" ~cls:"RadixIPLookup" ~config:[]
            (El.radix_ip_lookup routes);
        ]
    in
    let inst = R.instantiate ~engine pl in
    let msg = Printf.sprintf "table %d" table in
    List.iter
      (fun r ->
        (* The prefix itself, its last covered address, and the first
           address past the range — the off-by-one spots. *)
        check_lookup_agrees ~msg trie inst r.El.prefix;
        check_lookup_agrees ~msg trie inst
          (r.El.prefix lor (lnot (El.mask_of_len r.El.plen) land 0xffffffff));
        check_lookup_agrees ~msg trie inst
          ((r.El.prefix + (1 lsl (32 - min 31 r.El.plen))) land 0xffffffff))
      routes;
    for _ = 1 to 50 do
      check_lookup_agrees ~msg trie inst (rand32 st)
    done
  done

let radix_fixed () =
  (* The prefix lengths the pre-fix element rejected (/17–/31) plus
     the /0 default route, with deliberate spill overlaps. *)
  let routes =
    List.map El.parse_route
      [
        "0.0.0.0/0 9.9.9.9 0";
        "10.0.0.0/8 1";
        "10.128.0.0/17 2";
        "10.128.64.0/18 3";
        "10.128.0.0/24 4";
        "10.128.0.128/25 5";
        "10.128.0.129/32 6";
        "203.0.113.0/31 7";
      ]
  in
  let trie =
    Lpm.of_list (List.map (fun r -> (r.El.prefix, r.El.plen, r)) routes)
  in
  List.iter
    (fun engine ->
      let pl =
        Click.Pipeline.linear
          [
            Click.Element.make ~name:"rt" ~cls:"RadixIPLookup" ~config:[]
              (El.radix_ip_lookup routes);
          ]
      in
      let inst = R.instantiate ~engine pl in
      let msg = "fixed/" ^ R.engine_name engine in
      let ip = Vdp_packet.Ipv4.addr_of_string in
      List.iter
        (check_lookup_agrees ~msg trie inst)
        [
          ip "8.8.8.8"; (* default *)
          ip "10.1.2.3"; (* /8 *)
          ip "10.128.1.1"; (* /17 *)
          ip "10.128.65.0"; (* /18 *)
          ip "10.128.0.77"; (* /24 *)
          ip "10.128.0.200"; (* /25 *)
          ip "10.128.0.129"; (* /32 *)
          ip "10.128.0.128"; (* /25, one below the host route *)
          ip "203.0.113.1"; (* /31 *)
          ip "203.0.113.2"; (* default again *)
        ])
    engines

(* {1 Scalar vs batched vs compiled: exact observational equality} *)

let window p = Bytes.sub_string p.P.buf p.P.head p.P.len

let meta p = (p.P.port, p.P.color, p.P.w0, p.P.w1)

(* Every store of every node, as sorted printable entries. *)
let store_snapshot inst =
  let pl = inst.R.pipeline in
  List.init (Click.Pipeline.length pl) (fun ni ->
      let prog =
        (Click.Pipeline.node pl ni).Click.Pipeline.element
          .Click.Element.program
      in
      List.map
        (fun (d : Ir.store_decl) ->
          let es =
            Stores.entries inst.R.stores.(ni) d.Ir.store_name
            |> List.map (fun (k, v) ->
                   (B.to_string_hex k, B.to_string_hex v))
            |> List.sort compare
          in
          (d.Ir.store_name, es))
        prog.Ir.stores)

let check_same_runs name (runs_a, snap_a) (runs_b, snap_b) =
  List.iteri
    (fun i ((ra : R.run), (pa : P.t), ((rb : R.run), (pb : P.t))) ->
      let fail fmt = Alcotest.failf ("%s: packet %d: " ^^ fmt) name i in
      if ra.R.final <> rb.R.final then
        fail "finals differ: %s vs %s" (final_str ra.R.final)
          (final_str rb.R.final);
      if ra.R.total_instrs <> rb.R.total_instrs then
        fail "instruction counts differ: %d vs %d" ra.R.total_instrs
          rb.R.total_instrs;
      if ra.R.steps <> rb.R.steps then fail "step traces differ";
      if window pa <> window pb then fail "packet bytes differ";
      if meta pa <> meta pb then fail "packet metadata differs")
    (List.map2 (fun (ra, pa) rb -> (ra, pa, rb)) runs_a runs_b);
  if snap_a <> snap_b then
    Alcotest.failf "%s: final store state differs" name

let run_engine pl engine pkts =
  let inst = R.instantiate ~engine pl in
  let runs =
    List.map
      (fun p ->
        let q = P.clone p in
        (R.push inst q, q))
      pkts
  in
  (runs, store_snapshot inst)

let nat_config =
  {|
    cl :: Classifier(12/0800, -);
    strip :: Strip(14);
    chk :: CheckIPHeader;
    flow :: FlowCounter;
    nat :: IPRewriter(203.0.113.7);
    cks :: SetIPChecksum;
    out :: EtherEncap(2048, 02:00:00:00:00:01, 02:00:00:00:00:02);
    cl[0] -> strip -> chk -> flow -> nat -> cks -> out;
    cl[1] -> Discard; chk[1] -> Discard; nat[1] -> cks;
    |}

let engine_differential name pl () =
  let pkts = Gen.workload ~seed:3 ~nflows:8 ~corrupt_ratio:0.2 300 in
  let scalar = run_engine pl R.Scalar pkts in
  List.iter
    (fun engine ->
      check_same_runs
        (Printf.sprintf "%s scalar-vs-%s" name (R.engine_name engine))
        scalar
        (run_engine pl engine pkts))
    [ R.Batched; R.Compiled ];
  (* The aggregate driver must agree with itself across engines too. *)
  let stats engine =
    let st =
      R.run_workload
        (R.instantiate ~engine pl)
        (List.map P.clone pkts)
    in
    R.(st.sent, st.egressed, st.dropped, st.crashed, st.hop_budget,
       st.instrs, st.max_instrs)
  in
  let s = stats R.Scalar in
  List.iter
    (fun engine ->
      check_bool
        (Printf.sprintf "%s aggregate stats %s" name (R.engine_name engine))
        true
        (stats engine = s))
    [ R.Batched; R.Compiled ]

(* {1 Hop budget as a counted final} *)

let pass name = Click.Registry.make ~name ~cls:"Strip" ~config:[ "0" ]

let cyclic () =
  Click.Pipeline.create
    [ pass "a"; pass "b" ]
    [ (0, 0, 1, 0); (1, 0, 0, 0) ]

let hop_budget_scalar () =
  let inst = R.instantiate (cyclic ()) in
  let r = R.push inst (P.create "x") in
  (match r.R.final with
  | R.Hop_budget_at _ -> ()
  | f -> Alcotest.failf "expected hop-budget final, got %s" (final_str f));
  (* Counted in aggregate stats, not raised. *)
  let st =
    R.run_workload
      (R.instantiate (cyclic ()))
      (List.init 5 (fun _ -> P.create "x"))
  in
  check_int "sent" 5 st.R.sent;
  check_int "hop_budget" 5 st.R.hop_budget;
  check_int "crashed" 0 st.R.crashed

let hop_budget_batched_rejects_cycles () =
  List.iter
    (fun engine ->
      Alcotest.check_raises
        (R.engine_name engine ^ " rejects cycles")
        (Invalid_argument "Pipeline: cycle detected")
        (fun () -> ignore (R.instantiate ~engine (cyclic ()))))
    [ R.Batched; R.Compiled ]

let hop_budget_long_chain () =
  (* An acyclic chain longer than the budget: every engine must stop
     at the same node with the same final. *)
  let n = R.max_hops + 40 in
  let pl =
    Click.Pipeline.linear
      (List.init n (fun i -> pass (Printf.sprintf "s%d" i)))
  in
  let finals =
    List.map
      (fun engine ->
        let inst = R.instantiate ~engine pl in
        (R.push inst (P.create "x")).R.final)
      engines
  in
  List.iter
    (fun f ->
      match f with
      | R.Hop_budget_at ni -> check_int "budget node" (R.max_hops + 1) ni
      | f -> Alcotest.failf "expected hop-budget final, got %s" (final_str f))
    finals

(* {1 Interpreter assign-width check} *)

let interp_width_check () =
  let bad =
    {
      Ir.name = "bad";
      reg_widths = [| 8 |];
      blocks =
        [|
          {
            Ir.instrs =
              [ Ir.Assign (0, Ir.Move (Ir.Const (B.of_int ~width:16 5))) ];
            term = Ir.Drop;
          };
        |];
      stores = [];
      nports = 1;
    }
  in
  Alcotest.check_raises "width mismatch detected"
    (Invalid_argument "Interp: bad: assign produces width 16, r0 has width 8")
    (fun () -> ignore (Interp.run bad (Stores.init []) (P.create "x")))

let tests =
  [
    Alcotest.test_case "radix vs trie, random /0-/32 (scalar)" `Quick
      (radix_differential R.Scalar);
    Alcotest.test_case "radix vs trie, random /0-/32 (compiled)" `Quick
      (radix_differential R.Compiled);
    Alcotest.test_case "radix fixed cases, all engines" `Quick radix_fixed;
    Alcotest.test_case "engines agree on router.click" `Quick (fun () ->
        engine_differential "router"
          (Click.Config.parse_file (find "router.click"))
          ());
    Alcotest.test_case "engines agree on firewall.click" `Quick (fun () ->
        engine_differential "firewall"
          (Click.Config.parse_file (find "firewall.click"))
          ());
    Alcotest.test_case "engines agree on NetFlow+NAT state" `Quick (fun () ->
        engine_differential "nat" (Click.Config.parse nat_config) ());
    Alcotest.test_case "hop budget is a final, not an exception" `Quick
      hop_budget_scalar;
    Alcotest.test_case "batched engines reject cyclic pipelines" `Quick
      hop_budget_batched_rejects_cycles;
    Alcotest.test_case "hop budget agrees across engines" `Quick
      hop_budget_long_chain;
    Alcotest.test_case "interpreter rejects width-mismatched assigns" `Quick
      interp_width_check;
  ]
