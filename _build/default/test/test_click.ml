(* The Click layer: config parsing, element semantics end-to-end on the
   runtime, and equivalence of the inlined (monolithic) program. *)

module B = Vdp_bitvec.Bitvec
module Ir = Vdp_ir.Types
module Interp = Vdp_ir.Interp
module Stores = Vdp_ir.Stores
module P = Vdp_packet.Packet
module Eth = Vdp_packet.Ethernet
module Ipv4 = Vdp_packet.Ipv4
module Gen = Vdp_packet.Gen
module Cls = Vdp_tables.Classifier
module Click = Vdp_click

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* The default Click IP-router style pipeline used across the repo. *)
let router_config =
  {|
  cl :: Classifier(12/0800, -);
  strip :: Strip(14);
  chk :: CheckIPHeader;
  opts :: IPGWOptions(9.9.9.1);
  rt :: StaticIPLookup(10.0.0.0/8 0, 192.168.0.0/16 1, 0.0.0.0/0 2);
  ttl :: DecIPTTL;
  out :: EtherEncap(2048, 02:00:00:00:00:01, 02:00:00:00:00:02);
  cl[0] -> strip -> chk -> opts -> ttl -> rt;
  rt[0] -> out;
  rt[1] -> out;
  rt[2] -> out;
  cl[1] -> Discard;
  chk[1] -> Discard;
  opts[1] -> Discard;
  ttl[1] -> Discard;
  |}

let make_router () = Click.Config.parse router_config

let flow dst =
  {
    Gen.src_ip = Ipv4.addr_of_string "172.16.0.1";
    dst_ip = Ipv4.addr_of_string dst;
    src_port = 1234;
    dst_port = 80;
    proto = Ipv4.proto_udp;
  }

let unit_tests =
  [
    Alcotest.test_case "config parses" `Quick (fun () ->
        let pl = make_router () in
        check_int "elements (incl. anonymous Discards)" 11
          (Click.Pipeline.length pl));
    Alcotest.test_case "valid packet forwards and is rewritten" `Quick
      (fun () ->
        let pl = make_router () in
        let inst = Click.Runtime.instantiate pl in
        let pkt = Gen.frame_of_flow ~ttl:64 (flow "10.1.2.3") in
        let r = Click.Runtime.push inst pkt in
        (match r.Click.Runtime.final with
        | Click.Runtime.Egress _ -> ()
        | f ->
          Alcotest.failf "expected egress, got %a" Click.Runtime.pp_final f);
        (* TTL decremented, checksum still valid, fresh Ethernet header. *)
        let q = P.clone pkt in
        P.pull q Eth.header_len;
        (match Ipv4.parse q with
        | Some h ->
          check_int "ttl" 63 h.Ipv4.ttl;
          check_bool "checksum ok" true (Ipv4.header_ok q)
        | None -> Alcotest.fail "ip parse");
        match Eth.parse pkt with
        | Some e ->
          check_string "dst mac" "02:00:00:00:00:02"
            (Eth.mac_to_string e.Eth.dst)
        | None -> Alcotest.fail "eth parse");
    Alcotest.test_case "routing selects ports" `Quick (fun () ->
        let pl = make_router () in
        let inst = Click.Runtime.instantiate pl in
        let egress_of dst =
          let pkt = Gen.frame_of_flow (flow dst) in
          match (Click.Runtime.push inst pkt).Click.Runtime.final with
          | Click.Runtime.Egress _ ->
            (* All three routes encap via the same element; check the
               route by which rt port was taken using steps. *)
            List.find_map
              (fun (s : Click.Runtime.step) ->
                if s.Click.Runtime.element = "rt" then
                  match s.Click.Runtime.outcome with
                  | Ir.Emitted p -> Some p
                  | _ -> None
                else None)
              (Click.Runtime.push inst (Gen.frame_of_flow (flow dst)))
                .Click.Runtime.steps
          | _ -> None
        in
        check_bool "10/8 -> port0" true (egress_of "10.9.9.9" = Some 0);
        check_bool "192.168/16 -> port1" true
          (egress_of "192.168.3.4" = Some 1);
        check_bool "default -> port2" true (egress_of "8.8.8.8" = Some 2));
    Alcotest.test_case "non-IP goes to discard" `Quick (fun () ->
        let pl = make_router () in
        let inst = Click.Runtime.instantiate pl in
        let arp = P.create (Eth.header ~dst:Eth.broadcast
                              ~src:(Eth.mac_of_string "02:00:00:00:00:09")
                              ~ethertype:Eth.ethertype_arp
                            ^ String.make 28 '\000') in
        match (Click.Runtime.push inst arp).Click.Runtime.final with
        | Click.Runtime.Dropped_at _ -> ()
        | f -> Alcotest.failf "expected drop, got %a" Click.Runtime.pp_final f);
    Alcotest.test_case "bad checksum dropped" `Quick (fun () ->
        let pl = make_router () in
        let inst = Click.Runtime.instantiate pl in
        let pkt = Gen.frame_of_flow (flow "10.1.2.3") in
        (* Corrupt the TTL without fixing the checksum. *)
        P.set_u8 pkt (Eth.header_len + 8) 13;
        match (Click.Runtime.push inst pkt).Click.Runtime.final with
        | Click.Runtime.Dropped_at _ -> ()
        | f -> Alcotest.failf "expected drop, got %a" Click.Runtime.pp_final f);
    Alcotest.test_case "ttl 1 dropped via DecIPTTL port 1" `Quick (fun () ->
        let pl = make_router () in
        let inst = Click.Runtime.instantiate pl in
        let pkt = Gen.frame_of_flow ~ttl:1 (flow "10.1.2.3") in
        match (Click.Runtime.push inst pkt).Click.Runtime.final with
        | Click.Runtime.Dropped_at _ -> ()
        | f -> Alcotest.failf "expected drop, got %a" Click.Runtime.pp_final f);
    Alcotest.test_case "no crash on 10k fuzzed frames" `Quick (fun () ->
        let pl = make_router () in
        let inst = Click.Runtime.instantiate pl in
        let st = Random.State.make [| 99 |] in
        for _ = 1 to 5_000 do
          let pkt = Gen.random_frame ~min_len:1 ~max_len:96 st in
          match (Click.Runtime.push inst pkt).Click.Runtime.final with
          | Click.Runtime.Crashed_at (n, c) ->
            Alcotest.failf "crash at %d: %a" n Ir.pp_crash c
          | _ -> ()
        done;
        for _ = 1 to 5_000 do
          let pkt =
            Gen.corrupt st (Gen.frame_of_flow (flow "10.0.0.1"))
          in
          match (Click.Runtime.push inst pkt).Click.Runtime.final with
          | Click.Runtime.Crashed_at (n, c) ->
            Alcotest.failf "crash at %d: %a" n Ir.pp_crash c
          | _ -> ()
        done);
    Alcotest.test_case "record route option gets stamped" `Quick (fun () ->
        let pl = make_router () in
        let inst = Click.Runtime.instantiate pl in
        (* RR: kind 7, len 7, ptr 4, one empty slot; padded with EOL. *)
        let options = "\x07\x07\x04\x00\x00\x00\x00\x00" in
        let pkt = Gen.frame_with_options ~options (flow "10.1.2.3") in
        let r = Click.Runtime.push inst pkt in
        (match r.Click.Runtime.final with
        | Click.Runtime.Egress _ -> ()
        | f -> Alcotest.failf "expected egress, got %a" Click.Runtime.pp_final f);
        let q = P.clone pkt in
        P.pull q Eth.header_len;
        (* Option data slot now holds the gateway 9.9.9.1. *)
        check_int "stamped addr" (Ipv4.addr_of_string "9.9.9.1")
          (P.get_be q 23 4);
        check_int "ptr advanced" 8 (P.get_u8 q 22));
    Alcotest.test_case "flow counter counts per flow" `Quick (fun () ->
        let e =
          Click.Registry.make ~name:"fc" ~cls:"FlowCounter" ~config:[]
        in
        let pl = Click.Pipeline.linear [ e ] in
        let inst = Click.Runtime.instantiate pl in
        let p1 () =
          let pkt = Gen.frame_of_flow (flow "10.0.0.1") in
          P.pull pkt Eth.header_len;
          pkt
        in
        let p2 () =
          let pkt = Gen.frame_of_flow (flow "10.0.0.2") in
          P.pull pkt Eth.header_len;
          pkt
        in
        ignore (Click.Runtime.push inst (p1 ()));
        ignore (Click.Runtime.push inst (p1 ()));
        ignore (Click.Runtime.push inst (p2 ()));
        let entries = Stores.entries inst.Click.Runtime.stores.(0) "flows" in
        check_int "two flows" 2 (List.length entries);
        let counts =
          List.map (fun (_, v) -> B.to_int_trunc v) entries
          |> List.sort Stdlib.compare
        in
        check_bool "counts 1 and 2" true (counts = [ 1; 2 ]));
    Alcotest.test_case "NAT rewrites and reuses mapping" `Quick (fun () ->
        let e =
          Click.Registry.make ~name:"nat" ~cls:"IPRewriter"
            ~config:[ "1.2.3.4" ]
        in
        let pl = Click.Pipeline.linear [ e ] in
        let inst = Click.Runtime.instantiate pl in
        let mk () =
          let pkt = Gen.frame_of_flow (flow "10.0.0.1") in
          P.pull pkt Eth.header_len;
          pkt
        in
        let pkt = mk () in
        let r = Click.Runtime.push inst pkt in
        check_bool "egress" true
          (match r.Click.Runtime.final with
          | Click.Runtime.Egress _ -> true
          | _ -> false);
        check_int "src rewritten" (Ipv4.addr_of_string "1.2.3.4")
          (P.get_be pkt 12 4);
        let port1 = P.get_be pkt 20 2 in
        check_int "port allocated" 1024 port1;
        (* Same flow again: same mapping. *)
        let pkt2 = mk () in
        ignore (Click.Runtime.push inst pkt2);
        check_int "mapping reused" port1 (P.get_be pkt2 20 2));
    Alcotest.test_case "buggy elements crash on crafted input" `Quick
      (fun () ->
        let crashing cls config pkt =
          let e = Click.Registry.make ~name:"x" ~cls ~config in
          let pl = Click.Pipeline.linear [ e ] in
          let inst = Click.Runtime.instantiate pl in
          match (Click.Runtime.push inst pkt).Click.Runtime.final with
          | Click.Runtime.Crashed_at _ -> true
          | _ -> false
        in
        (* BuggyPeek: ident field as offset. *)
        let pkt = Gen.frame_of_flow (flow "10.0.0.1") in
        P.pull pkt Eth.header_len;
        P.set_be pkt 4 2 9999;
        check_bool "peek oob" true (crashing "BuggyPeek" [] pkt);
        (* BuggyQuota: TTL 0 divides by zero. *)
        let pkt = Gen.frame_of_flow ~ttl:0 (flow "10.0.0.1") in
        P.pull pkt Eth.header_len;
        check_bool "quota div0" true (crashing "BuggyQuota" [ "1000" ] pkt));
    Alcotest.test_case "unknown class rejected" `Quick (fun () ->
        check_bool "raises" true
          (try
             ignore (Click.Registry.make ~name:"x" ~cls:"NoSuch" ~config:[]);
             false
           with Click.Registry.Unknown_class _ -> true));
    Alcotest.test_case "cyclic pipeline rejected" `Quick (fun () ->
        let e1 = Click.Registry.make ~name:"a" ~cls:"Paint" ~config:[ "1" ] in
        let e2 = Click.Registry.make ~name:"b" ~cls:"Paint" ~config:[ "2" ] in
        check_bool "raises" true
          (try
             ignore
               (Click.Pipeline.validate
                  (Click.Pipeline.create [ e1; e2 ]
                     [ (0, 0, 1, 0); (1, 0, 0, 0) ]));
             false
           with Invalid_argument _ -> true));
  ]

(* Inlined program behaves exactly like the per-element runtime (on a
   fresh instance each, since stores are stateful). *)
let inline_equiv =
  QCheck.Test.make ~count:150 ~name:"inlined pipeline = runtime"
    QCheck.(pair (int_bound 1000000) bool)
    (fun (seed, well_formed) ->
      let pl = make_router () in
      let st = Random.State.make [| seed |] in
      let pkt =
        if well_formed then
          let f = Gen.random_flow st in
          Gen.corrupt st (Gen.frame_of_flow f)
        else Gen.random_frame ~min_len:1 ~max_len:80 st
      in
      let pkt2 = P.clone pkt in
      (* Runtime execution. *)
      let inst = Click.Runtime.instantiate pl in
      let r = Click.Runtime.push inst pkt in
      (* Monolithic execution. *)
      let prog = Click.Inline.inline pl in
      let stores = Stores.init prog.Ir.stores in
      let m = Interp.run prog stores pkt2 in
      let same_final =
        match (r.Click.Runtime.final, m.Interp.outcome) with
        | Click.Runtime.Egress e, Ir.Emitted p -> e = p
        | Click.Runtime.Dropped_at _, Ir.Dropped -> true
        | Click.Runtime.Crashed_at _, Ir.Crashed _ -> true
        | _ -> false
      in
      same_final
      && P.length pkt = P.length pkt2
      && P.content pkt = P.content pkt2)

let tests = unit_tests @ List.map QCheck_alcotest.to_alcotest [ inline_equiv ]
