lib/click/el_util.ml: Vdp_bitvec Vdp_ir
