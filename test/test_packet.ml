(* Packet buffers, headers, checksums, generators. *)

module P = Vdp_packet.Packet
module Eth = Vdp_packet.Ethernet
module Ipv4 = Vdp_packet.Ipv4
module Udp = Vdp_packet.Udp
module Cks = Vdp_packet.Checksum
module Gen = Vdp_packet.Gen

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let sample_frame () =
  Gen.frame_of_flow
    {
      Gen.src_ip = Ipv4.addr_of_string "10.1.2.3";
      dst_ip = Ipv4.addr_of_string "192.168.7.9";
      src_port = 4242;
      dst_port = 80;
      proto = Ipv4.proto_udp;
    }

let unit_tests =
  [
    Alcotest.test_case "window accessors" `Quick (fun () ->
        let p = P.create "abcdef" in
        check_int "len" 6 (P.length p);
        check_int "byte" (Char.code 'c') (P.get_u8 p 2);
        P.set_u8 p 2 0x7a;
        check_string "content" "abzdef" (P.content p));
    Alcotest.test_case "out of bounds raises" `Quick (fun () ->
        let p = P.create "abc" in
        check_bool "get" true
          (try ignore (P.get_u8 p 3); false with P.Out_of_bounds _ -> true);
        check_bool "get_be" true
          (try ignore (P.get_be p 2 2); false with P.Out_of_bounds _ -> true));
    Alcotest.test_case "pull/push roundtrip" `Quick (fun () ->
        let p = P.create "headerpayload" in
        P.pull p 6;
        check_string "stripped" "payload" (P.content p);
        P.push p 6;
        check_int "len back" 13 (P.length p);
        (* pushed bytes are zeroed *)
        check_int "zeroed" 0 (P.get_u8 p 0));
    Alcotest.test_case "pull too much raises" `Quick (fun () ->
        let p = P.create "ab" in
        check_bool "raises" true
          (try P.pull p 3; false with P.Out_of_bounds _ -> true));
    Alcotest.test_case "headroom exhaustion raises" `Quick (fun () ->
        let p = P.create ~headroom:4 "x" in
        check_bool "raises" true
          (try P.push p 5; false with P.Out_of_bounds _ -> true));
    Alcotest.test_case "get_be/set_be" `Quick (fun () ->
        let p = P.create "\x00\x00\x00\x00" in
        P.set_be p 0 4 0xdeadbeef;
        check_int "roundtrip" 0xdeadbeef (P.get_be p 0 4));
    Alcotest.test_case "mac conversions" `Quick (fun () ->
        let m = Eth.mac_of_string "02:00:aa:bb:cc:0f" in
        check_string "roundtrip" "02:00:aa:bb:cc:0f" (Eth.mac_to_string m));
    Alcotest.test_case "ip address conversions" `Quick (fun () ->
        check_string "roundtrip" "10.0.200.1"
          (Ipv4.addr_to_string (Ipv4.addr_of_string "10.0.200.1"));
        check_int "exact" ((10 lsl 24) lor 1) (Ipv4.addr_of_string "10.0.0.1"));
    Alcotest.test_case "well-formed frame parses" `Quick (fun () ->
        let p = sample_frame () in
        (match Eth.parse p with
        | Some e -> check_int "ethertype" Eth.ethertype_ipv4 e.Eth.ethertype
        | None -> Alcotest.fail "ethernet parse");
        P.pull p Eth.header_len;
        match Ipv4.parse p with
        | Some h ->
          check_int "version" 4 h.Ipv4.version;
          check_int "ihl" 5 h.Ipv4.ihl;
          check_int "proto" Ipv4.proto_udp h.Ipv4.proto;
          check_bool "header valid" true (Ipv4.header_ok p);
          check_int "total_len" (P.length p) h.Ipv4.total_len;
          (match Udp.parse ~off:20 p with
          | Some u ->
            check_int "sport" 4242 u.Udp.src_port;
            check_int "dport" 80 u.Udp.dst_port
          | None -> Alcotest.fail "udp parse")
        | None -> Alcotest.fail "ip parse");
    Alcotest.test_case "checksum detects corruption" `Quick (fun () ->
        let p = sample_frame () in
        P.pull p Eth.header_len;
        check_bool "valid" true (Ipv4.header_ok p);
        P.set_u8 p 8 (P.get_u8 p 8 lxor 0xff);
        check_bool "invalid after corruption" false (Ipv4.header_ok p));
    Alcotest.test_case "set_checksum repairs" `Quick (fun () ->
        let p = sample_frame () in
        P.pull p Eth.header_len;
        P.set_u8 p 8 7 (* change TTL *);
        check_bool "broken" false (Ipv4.header_ok p);
        Ipv4.set_checksum p;
        check_bool "repaired" true (Ipv4.header_ok p));
    Alcotest.test_case "options frame has correct ihl" `Quick (fun () ->
        let flow = { (Gen.random_flow (Random.State.make [| 1 |])) with
                     Gen.proto = Ipv4.proto_udp } in
        (* RR option: kind 7, len 7, ptr 4, one slot. Padded to 8. *)
        let options = "\x07\x07\x04\x00\x00\x00\x00" in
        let p = Gen.frame_with_options ~options flow in
        P.pull p Eth.header_len;
        match Ipv4.parse p with
        | Some h ->
          check_int "ihl" 7 h.Ipv4.ihl;
          check_bool "valid" true (Ipv4.header_ok p)
        | None -> Alcotest.fail "parse");
    Alcotest.test_case "rfc1071 example" `Quick (fun () ->
        (* Classic example: 0x0001 0xf203 0xf4f5 0xf6f7 -> sum 0xddf2,
           checksum 0x220d. *)
        let data = "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7" in
        check_int "checksum" 0x220d (Cks.checksum data 0 8));
    Alcotest.test_case "workload generation" `Quick (fun () ->
        let pkts = Gen.workload ~nflows:4 20 in
        check_int "count" 20 (List.length pkts);
        List.iter
          (fun p ->
            let p = P.clone p in
            P.pull p Eth.header_len;
            Alcotest.(check bool) "well-formed" true (Ipv4.header_ok p))
          pkts);
  ]

let alloc_tests =
  [
    Alcotest.test_case "packet checksum paths do not allocate" `Quick
      (fun () ->
        (* over_packet/valid_packet must read the buffer in place; the
           old Bytes.to_string copy cost ~270 words per call, so 1000
           calls would show up as hundreds of thousands of minor words.
           Allow a small slack for the Gc counter boxing itself. *)
        let p =
          P.create
            (Ipv4.header ~tos:0 ~total_len:20 ~ident:0 ~ttl:64
               ~proto:Ipv4.proto_udp ~src:0x0a000001 ~dst:0x0a000002 ())
        in
        ignore (Cks.over_packet p 0 20);
        ignore (Cks.valid_packet p 0 20);
        let before = Gc.minor_words () in
        for _ = 1 to 1_000 do
          ignore (Cks.over_packet p 0 20);
          ignore (Cks.valid_packet p 0 20)
        done;
        let delta = Gc.minor_words () -. before in
        Alcotest.(check bool)
          (Printf.sprintf "allocation-free (%.0f minor words)" delta)
          true (delta < 256.));
  ]

let props =
  [
    QCheck.Test.make ~count:200 ~name:"checksummed headers verify"
      QCheck.(pair (int_bound 0xffffffff) (int_bound 0xffffffff))
      (fun (src, dst) ->
        let h =
          Ipv4.header ~tos:0 ~total_len:20 ~ident:0 ~ttl:64
            ~proto:Ipv4.proto_udp ~src ~dst ()
        in
        Cks.valid h 0 20);
    QCheck.Test.make ~count:200 ~name:"clone isolates mutation"
      QCheck.(string_of_size (QCheck.Gen.int_range 1 64))
      (fun s ->
        let p = P.create s in
        let q = P.clone p in
        P.set_u8 q 0 ((P.get_u8 q 0 + 1) land 0xff);
        P.get_u8 p 0 = Char.code s.[0]);
  ]

let tests =
  unit_tests @ alloc_tests @ List.map QCheck_alcotest.to_alcotest props
