lib/click/el_toy.ml: El_util Element Pipeline Vdp_bitvec Vdp_ir
