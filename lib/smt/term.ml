module B = Vdp_bitvec.Bitvec

type bvbin =
  | Badd | Bsub | Bmul | Budiv | Burem | Bsdiv | Bsrem
  | Band | Bor | Bxor | Bshl | Blshr | Bashr

type cmp = Ult | Ule | Slt | Sle

type node =
  | True
  | False
  | Bool_var of string
  | Not of t
  | And of t array
  | Or of t array
  | Eq of t * t
  | Ite of t * t * t
  | Bv_const of B.t
  | Bv_var of string * int
  | Bv_bin of bvbin * t * t
  | Bv_not of t
  | Bv_neg of t
  | Bv_cmp of cmp * t * t
  | Extract of int * int * t
  | Concat of t * t
  | Zext of int * t
  | Sext of int * t

and t = { id : int; node : node; sort : Sort.t }

let sort t = t.sort
let width t = Sort.width t.sort
let equal a b = a == b
let hash t = t.id
let compare a b = Stdlib.compare a.id b.id

(* {1 Hash-consing} *)

module Node_key = struct
  type nonrec t = node

  let equal n1 n2 =
    match (n1, n2) with
    | True, True | False, False -> true
    | Bool_var s1, Bool_var s2 -> String.equal s1 s2
    | Not a, Not b | Bv_not a, Bv_not b | Bv_neg a, Bv_neg b -> a == b
    | And a, And b | Or a, Or b ->
      Array.length a = Array.length b && Array.for_all2 ( == ) a b
    | Eq (a1, a2), Eq (b1, b2) | Concat (a1, a2), Concat (b1, b2) ->
      a1 == b1 && a2 == b2
    | Ite (a1, a2, a3), Ite (b1, b2, b3) -> a1 == b1 && a2 == b2 && a3 == b3
    | Bv_const v1, Bv_const v2 -> B.equal v1 v2
    | Bv_var (s1, w1), Bv_var (s2, w2) -> w1 = w2 && String.equal s1 s2
    | Bv_bin (o1, a1, a2), Bv_bin (o2, b1, b2) ->
      o1 = o2 && a1 == b1 && a2 == b2
    | Bv_cmp (o1, a1, a2), Bv_cmp (o2, b1, b2) ->
      o1 = o2 && a1 == b1 && a2 == b2
    | Extract (h1, l1, a), Extract (h2, l2, b) -> h1 = h2 && l1 = l2 && a == b
    | Zext (w1, a), Zext (w2, b) | Sext (w1, a), Sext (w2, b) ->
      w1 = w2 && a == b
    | ( ( True | False | Bool_var _ | Not _ | And _ | Or _ | Eq _ | Ite _
        | Bv_const _ | Bv_var _ | Bv_bin _ | Bv_not _ | Bv_neg _ | Bv_cmp _
        | Extract _ | Concat _ | Zext _ | Sext _ ),
        _ ) ->
      false

  let hash = function
    | True -> 1
    | False -> 2
    | Bool_var s -> 3 + (Hashtbl.hash s * 7)
    | Not a -> 5 + (a.id * 31)
    | And ts -> Array.fold_left (fun h t -> (h * 31) + t.id) 7 ts
    | Or ts -> Array.fold_left (fun h t -> (h * 31) + t.id) 11 ts
    | Eq (a, b) -> 13 + (a.id * 31) + (b.id * 17)
    | Ite (c, a, b) -> 17 + (c.id * 31) + (a.id * 17) + (b.id * 7)
    | Bv_const v -> 19 + B.hash v
    | Bv_var (s, w) -> 23 + (Hashtbl.hash s * 7) + w
    | Bv_bin (op, a, b) ->
      29 + (Hashtbl.hash op * 5) + (a.id * 31) + (b.id * 17)
    | Bv_not a -> 31 + (a.id * 31)
    | Bv_neg a -> 37 + (a.id * 31)
    | Bv_cmp (op, a, b) ->
      41 + (Hashtbl.hash op * 5) + (a.id * 31) + (b.id * 17)
    | Extract (hi, lo, a) -> 43 + (hi * 131) + (lo * 31) + (a.id * 17)
    | Concat (a, b) -> 47 + (a.id * 31) + (b.id * 17)
    | Zext (w, a) -> 53 + (w * 31) + (a.id * 17)
    | Sext (w, a) -> 59 + (w * 31) + (a.id * 17)
end

module Tbl = Hashtbl.Make (Node_key)

(* The interning table is sharded by node hash so that concurrent
   domains contend only when they intern structurally colliding nodes,
   not on one global lock. Ids come from an atomic counter; they are
   dense but not insertion-ordered under parallelism, which is fine —
   everything downstream needs ids only as stable per-process keys and
   as an arbitrary-but-fixed total order ([eq] canonicalisation).

   Sequential runs skip the mutexes entirely ([Par.active] is one
   atomic load), so single-domain verification pays ~zero overhead. *)

let shard_bits = 8
let nshards = 1 lsl shard_bits

type shard = { tbl : t Tbl.t; lock : Mutex.t }

let shards =
  Array.init nshards (fun _ ->
      { tbl = Tbl.create 1_024; lock = Mutex.create () })

let next_id = Atomic.make 0

let intern shard node sort =
  match Tbl.find_opt shard.tbl node with
  | Some t -> t
  | None ->
    let t = { id = Atomic.fetch_and_add next_id 1; node; sort } in
    Tbl.add shard.tbl node t;
    t

let mk node sort =
  let shard = shards.(Node_key.hash node land (nshards - 1)) in
  if Par.active () then begin
    Mutex.lock shard.lock;
    match intern shard node sort with
    | t -> Mutex.unlock shard.lock; t
    | exception e -> Mutex.unlock shard.lock; raise e
  end
  else intern shard node sort

(* {1 Basic constructors} *)

let tru = mk True Sort.Bool
let fls = mk False Sort.Bool
let bool_const b = if b then tru else fls
let bool_var s = mk (Bool_var s) Sort.Bool
let bv v = mk (Bv_const v) (Sort.Bv (B.width v))
let bv_int ~width n = bv (B.of_int ~width n)
let var s w = mk (Bv_var (s, w)) (Sort.Bv w)
let is_true t = t == tru
let is_false t = t == fls

let const_value t =
  match t.node with Bv_const v -> Some v | _ -> None

let check_same_width a b ctx =
  if not (Sort.equal a.sort b.sort) then
    invalid_arg (Printf.sprintf "Term.%s: sort mismatch" ctx)

(* {1 Boolean layer} *)

let not_ t =
  match t.node with
  | True -> fls
  | False -> tru
  | Not a -> a
  | _ -> mk (Not t) Sort.Bool

(* Flatten, deduplicate, short-circuit. [neutral] is the identity element,
   [absorbing] annihilates. *)
let assoc_bool ~neutral ~absorbing ~wrap ts =
  let module S = Set.Make (struct
    type nonrec t = t

    let compare = compare
  end) in
  let exception Absorbed in
  let rec collect acc t =
    if t == neutral then acc
    else if t == absorbing then raise Absorbed
    else
      match (t.node, wrap [||] = And [||]) with
      | And inner, true | Or inner, false ->
        Array.fold_left collect acc inner
      | _ -> S.add t acc
  in
  try
    let set = List.fold_left collect S.empty ts in
    (* x and (not x) together decide the connective. *)
    let contradicts = S.exists (fun t -> S.mem (not_ t) set) set in
    if contradicts then absorbing
    else
      match S.elements set with
      | [] -> neutral
      | [ t ] -> t
      | elts -> mk (wrap (Array.of_list elts)) Sort.Bool
  with Absorbed -> absorbing

let and_ ts = assoc_bool ~neutral:tru ~absorbing:fls ~wrap:(fun a -> And a) ts
let or_ ts = assoc_bool ~neutral:fls ~absorbing:tru ~wrap:(fun a -> Or a) ts
let and2 a b = and_ [ a; b ]
let or2 a b = or_ [ a; b ]
let implies a b = or2 (not_ a) b

(* {1 Bit-vector layer} *)

let binop_fold op a b =
  match op with
  | Badd -> B.add a b
  | Bsub -> B.sub a b
  | Bmul -> B.mul a b
  | Budiv -> B.udiv a b
  | Burem -> B.urem a b
  | Bsdiv -> B.sdiv a b
  | Bsrem -> B.srem a b
  | Band -> B.logand a b
  | Bor -> B.logor a b
  | Bxor -> B.logxor a b
  | Bshl -> B.shl_bv a b
  | Blshr -> B.lshr_bv a b
  | Bashr -> B.ashr_bv a b

let cmp_fold op a b =
  match op with
  | Ult -> B.ult a b
  | Ule -> B.ule a b
  | Slt -> B.slt a b
  | Sle -> B.sle a b

let rec bnot t =
  match t.node with
  | Bv_const v -> bv (B.lognot v)
  | Bv_not a -> a
  | _ -> mk (Bv_not t) t.sort

and bneg t =
  match t.node with
  | Bv_const v -> bv (B.neg v)
  | Bv_neg a -> a
  | _ -> mk (Bv_neg t) t.sort

and binop op a b =
  check_same_width a b "binop";
  let w = width a in
  match (a.node, b.node) with
  | Bv_const va, Bv_const vb -> bv (binop_fold op va vb)
  | _ ->
    let zero_a = (match a.node with Bv_const v -> B.is_zero v | _ -> false) in
    let zero_b = (match b.node with Bv_const v -> B.is_zero v | _ -> false) in
    let ones_b = (match b.node with Bv_const v -> B.is_ones v | _ -> false) in
    let one_b = (match b.node with Bv_const v -> B.is_one v | _ -> false) in
    (match op with
    | Badd when zero_a -> b
    | Badd when zero_b -> a
    | Bsub when zero_b -> a
    | Bsub when equal a b -> bv (B.zero w)
    | Bsub when zero_a -> bneg b
    | Bmul when zero_a || zero_b -> bv (B.zero w)
    | Bmul when one_b -> a
    | Bmul when (match a.node with Bv_const v -> B.is_one v | _ -> false) -> b
    | Band when zero_a || zero_b -> bv (B.zero w)
    | Band when ones_b -> a
    | Band when (match a.node with Bv_const v -> B.is_ones v | _ -> false) -> b
    | Band when equal a b -> a
    | Bor when zero_b -> a
    | Bor when zero_a -> b
    | Bor when equal a b -> a
    | Bor when ones_b -> bv (B.ones w)
    | Bxor when zero_b -> a
    | Bxor when zero_a -> b
    | Bxor when equal a b -> bv (B.zero w)
    | (Bshl | Blshr | Bashr) when zero_b -> a
    | (Bshl | Blshr) when zero_a -> bv (B.zero w)
    | _ -> mk (Bv_bin (op, a, b)) a.sort)

let add = binop Badd
let sub = binop Bsub
let mul = binop Bmul
let udiv = binop Budiv
let urem = binop Burem
let sdiv = binop Bsdiv
let srem = binop Bsrem
let band = binop Band
let bor = binop Bor
let bxor = binop Bxor
let shl = binop Bshl
let lshr = binop Blshr
let ashr = binop Bashr

let bv_cmp op a b =
  check_same_width a b "cmp";
  match (a.node, b.node) with
  | Bv_const va, Bv_const vb -> bool_const (cmp_fold op va vb)
  | _ when equal a b -> (
    match op with Ult | Slt -> fls | Ule | Sle -> tru)
  | _, Bv_const vb when op = Ult && B.is_zero vb -> fls
  | Bv_const va, _ when op = Ule && B.is_zero va -> tru
  | _, Bv_const vb when op = Ule && B.is_ones vb -> tru
  | Bv_const va, _ when op = Ult && B.is_ones va -> fls
  | _ -> mk (Bv_cmp (op, a, b)) Sort.Bool

let ult = bv_cmp Ult
let ule = bv_cmp Ule
let slt = bv_cmp Slt
let sle = bv_cmp Sle
let ugt a b = ult b a
let uge a b = ule b a

let rec eq a b =
  if not (Sort.equal a.sort b.sort) then invalid_arg "Term.eq: sort mismatch";
  if equal a b then tru
  else
    match (a.node, b.node) with
    | Bv_const va, Bv_const vb -> bool_const (B.equal va vb)
    | True, _ -> b
    | _, True -> a
    | False, _ -> not_ b
    | _, False -> not_ a
    (* (ite c a b) = k simplifies when the branches are constants. *)
    | Ite (c, x, y), Bv_const k | Bv_const k, Ite (c, x, y) -> (
      match (x.node, y.node) with
      | Bv_const vx, Bv_const vy -> (
        match (B.equal vx k, B.equal vy k) with
        | true, true -> tru
        | true, false -> c
        | false, true -> not_ c
        | false, false -> fls)
      | _ ->
        if a.id <= b.id then mk (Eq (a, b)) Sort.Bool
        else mk (Eq (b, a)) Sort.Bool)
    (* zext x = 0 iff x = 0, etc.: strip matching extensions. *)
    | Zext (_, x), Zext (_, y) when width x = width y -> eq x y
    | Zext (_, x), Bv_const v | Bv_const v, Zext (_, x) ->
      let wx = width x in
      let high = B.extract ~hi:B.(width v) ~lo:wx (B.concat (B.zero 1) v) in
      if B.is_zero high then eq x (bv (B.extract ~hi:(wx - 1) ~lo:0 v))
      else fls
    | _ -> if a.id <= b.id then mk (Eq (a, b)) Sort.Bool
           else mk (Eq (b, a)) Sort.Bool

let neq a b = not_ (eq a b)

let ite c a b =
  if not (Sort.equal a.sort b.sort) then invalid_arg "Term.ite: sort mismatch";
  match c.node with
  | True -> a
  | False -> b
  | _ ->
    if equal a b then a
    else if Sort.is_bool a.sort then or2 (and2 c a) (and2 (not_ c) b)
    else mk (Ite (c, a, b)) a.sort

let rec extract ~hi ~lo t =
  let w = width t in
  if lo < 0 || hi < lo || hi >= w then invalid_arg "Term.extract: bad range";
  if lo = 0 && hi = w - 1 then t
  else
    match t.node with
    | Bv_const v -> bv (B.extract ~hi ~lo v)
    | Extract (_, lo', inner) -> extract ~hi:(hi + lo') ~lo:(lo + lo') inner
    | Concat (a, b) ->
      let wb = width b in
      if hi < wb then extract ~hi ~lo b
      else if lo >= wb then extract ~hi:(hi - wb) ~lo:(lo - wb) a
      else mk (Extract (hi, lo, t)) (Sort.Bv (hi - lo + 1))
    | Zext (_, inner) ->
      let wi = width inner in
      if hi < wi then extract ~hi ~lo inner
      else if lo >= wi then bv (B.zero (hi - lo + 1))
      else mk (Extract (hi, lo, t)) (Sort.Bv (hi - lo + 1))
    | _ -> mk (Extract (hi, lo, t)) (Sort.Bv (hi - lo + 1))

let concat a b =
  match (a.node, b.node) with
  | Bv_const va, Bv_const vb -> bv (B.concat va vb)
  | _ ->
    let w = width a + width b in
    mk (Concat (a, b)) (Sort.Bv w)

let zext w t =
  let wt = width t in
  if w < wt then invalid_arg "Term.zext: narrowing";
  if w = wt then t
  else
    match t.node with
    | Bv_const v -> bv (B.zext w v)
    | Zext (_, inner) -> mk (Zext (w, inner)) (Sort.Bv w)
    | _ -> mk (Zext (w, t)) (Sort.Bv w)

let sext w t =
  let wt = width t in
  if w < wt then invalid_arg "Term.sext: narrowing";
  if w = wt then t
  else
    match t.node with
    | Bv_const v -> bv (B.sext w v)
    | _ -> mk (Sext (w, t)) (Sort.Bv w)

(* {1 Traversal} *)

let children t =
  match t.node with
  | True | False | Bool_var _ | Bv_const _ | Bv_var _ -> []
  | Not a | Bv_not a | Bv_neg a | Extract (_, _, a) | Zext (_, a) | Sext (_, a)
    ->
    [ a ]
  | And ts | Or ts -> Array.to_list ts
  | Eq (a, b) | Bv_bin (_, a, b) | Bv_cmp (_, a, b) | Concat (a, b) ->
    [ a; b ]
  | Ite (c, a, b) -> [ c; a; b ]

let fold_subterms f init t =
  let seen = Hashtbl.create 64 in
  let rec go acc t =
    if Hashtbl.mem seen t.id then acc
    else begin
      Hashtbl.add seen t.id ();
      let acc = List.fold_left go acc (children t) in
      f acc t
    end
  in
  go init t

let free_vars t =
  fold_subterms
    (fun acc t ->
      match t.node with
      | Bool_var s -> (s, Sort.Bool) :: acc
      | Bv_var (s, w) -> (s, Sort.Bv w) :: acc
      | _ -> acc)
    [] t

let size t = fold_subterms (fun n _ -> n + 1) 0 t

let rebuild map_child t =
  match t.node with
  | True | False | Bool_var _ | Bv_const _ | Bv_var _ -> t
  | Not a -> not_ (map_child a)
  | And ts -> and_ (List.map map_child (Array.to_list ts))
  | Or ts -> or_ (List.map map_child (Array.to_list ts))
  | Eq (a, b) -> eq (map_child a) (map_child b)
  | Ite (c, a, b) -> ite (map_child c) (map_child a) (map_child b)
  | Bv_bin (op, a, b) -> binop op (map_child a) (map_child b)
  | Bv_not a -> bnot (map_child a)
  | Bv_neg a -> bneg (map_child a)
  | Bv_cmp (op, a, b) -> bv_cmp op (map_child a) (map_child b)
  | Extract (hi, lo, a) -> extract ~hi ~lo (map_child a)
  | Concat (a, b) -> concat (map_child a) (map_child b)
  | Zext (w, a) -> zext w (map_child a)
  | Sext (w, a) -> sext w (map_child a)

let substitute lookup t =
  let memo = Hashtbl.create 64 in
  let rec go t =
    match Hashtbl.find_opt memo t.id with
    | Some t' -> t'
    | None ->
      let t' =
        match t.node with
        | Bool_var s -> (
          match lookup s with
          | Some r ->
            if not (Sort.equal r.sort Sort.Bool) then
              invalid_arg "Term.substitute: sort mismatch";
            r
          | None -> t)
        | Bv_var (s, w) -> (
          match lookup s with
          | Some r ->
            if not (Sort.equal r.sort (Sort.Bv w)) then
              invalid_arg "Term.substitute: sort mismatch";
            r
          | None -> t)
        | _ -> rebuild go t
      in
      Hashtbl.add memo t.id t';
      t'
  in
  go t

let substitute_vars ?memo lookup t =
  let memo = match memo with Some m -> m | None -> Hashtbl.create 64 in
  let rec go t =
    match Hashtbl.find_opt memo t.id with
    | Some t' -> t'
    | None ->
      let t' =
        match t.node with
        | Bool_var s -> (
          match lookup s Sort.Bool with
          | Some r ->
            if not (Sort.equal r.sort Sort.Bool) then
              invalid_arg "Term.substitute_vars: sort mismatch";
            r
          | None -> t)
        | Bv_var (s, w) -> (
          match lookup s (Sort.Bv w) with
          | Some r ->
            if not (Sort.equal r.sort (Sort.Bv w)) then
              invalid_arg "Term.substitute_vars: sort mismatch";
            r
          | None -> t)
        | _ -> rebuild go t
      in
      Hashtbl.add memo t.id t';
      t'
  in
  go t

let rename_vars f t =
  let memo = Hashtbl.create 64 in
  let rec go t =
    match Hashtbl.find_opt memo t.id with
    | Some t' -> t'
    | None ->
      let t' =
        match t.node with
        | Bool_var s -> bool_var (f s)
        | Bv_var (s, w) -> var (f s) w
        | _ -> rebuild go t
      in
      Hashtbl.add memo t.id t';
      t'
  in
  go t

(* {1 Printing} *)

let bvbin_name = function
  | Badd -> "bvadd" | Bsub -> "bvsub" | Bmul -> "bvmul"
  | Budiv -> "bvudiv" | Burem -> "bvurem" | Bsdiv -> "bvsdiv"
  | Bsrem -> "bvsrem" | Band -> "bvand" | Bor -> "bvor" | Bxor -> "bvxor"
  | Bshl -> "bvshl" | Blshr -> "bvlshr" | Bashr -> "bvashr"

let cmp_name = function
  | Ult -> "bvult" | Ule -> "bvule" | Slt -> "bvslt" | Sle -> "bvsle"

let rec pp fmt t =
  match t.node with
  | True -> Format.pp_print_string fmt "true"
  | False -> Format.pp_print_string fmt "false"
  | Bool_var s -> Format.pp_print_string fmt s
  | Not a -> Format.fprintf fmt "(not %a)" pp a
  | And ts -> pp_nary fmt "and" ts
  | Or ts -> pp_nary fmt "or" ts
  | Eq (a, b) -> Format.fprintf fmt "(= %a %a)" pp a pp b
  | Ite (c, a, b) -> Format.fprintf fmt "(ite %a %a %a)" pp c pp a pp b
  | Bv_const v -> Format.pp_print_string fmt (B.to_string_hex v)
  | Bv_var (s, w) -> Format.fprintf fmt "%s:%d" s w
  | Bv_bin (op, a, b) ->
    Format.fprintf fmt "(%s %a %a)" (bvbin_name op) pp a pp b
  | Bv_not a -> Format.fprintf fmt "(bvnot %a)" pp a
  | Bv_neg a -> Format.fprintf fmt "(bvneg %a)" pp a
  | Bv_cmp (op, a, b) ->
    Format.fprintf fmt "(%s %a %a)" (cmp_name op) pp a pp b
  | Extract (hi, lo, a) -> Format.fprintf fmt "%a[%d:%d]" pp a hi lo
  | Concat (a, b) -> Format.fprintf fmt "(concat %a %a)" pp a pp b
  | Zext (w, a) -> Format.fprintf fmt "(zext%d %a)" w pp a
  | Sext (w, a) -> Format.fprintf fmt "(sext%d %a)" w pp a

and pp_nary fmt name ts =
  Format.fprintf fmt "(%s" name;
  Array.iter (fun t -> Format.fprintf fmt " %a" pp t) ts;
  Format.fprintf fmt ")"

let to_string t = Format.asprintf "%a" pp t
