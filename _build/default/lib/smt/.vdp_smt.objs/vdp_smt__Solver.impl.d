lib/smt/solver.ml: Bitblast Eval Format Interval Model Printf Sat Term
