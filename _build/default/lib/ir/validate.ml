(** Static well-formedness checks on IR programs.

    Rejects programs the interpreter and the symbolic engine would both
    choke on: width mismatches, dangling block labels, unknown registers
    and stores, writes to static stores, and out-of-range port numbers.
    Every element registered with the Click layer passes this check at
    construction time. *)

open Types

exception Invalid of string

let fail fmt = Format.kasprintf (fun m -> raise (Invalid m)) fmt

let rvalue_width prog = function
  | Const v -> Vdp_bitvec.Bitvec.width v
  | Reg r ->
    if r < 0 || r >= Array.length prog.reg_widths then
      fail "unknown register r%d" r;
    prog.reg_widths.(r)

let check_rhs prog ctx dst_width rhs =
  let rw = rvalue_width prog in
  let expect what actual expected =
    if actual <> expected then
      fail "%s: %s has width %d, expected %d" ctx what actual expected
  in
  match rhs with
  | Move v -> expect "operand" (rw v) dst_width
  | Unop (_, v) -> expect "operand" (rw v) dst_width
  | Binop (_, a, b) ->
    expect "lhs" (rw a) dst_width;
    expect "rhs" (rw b) dst_width
  | Cmp (_, a, b) ->
    expect "dst" dst_width 1;
    if rw a <> rw b then
      fail "%s: comparison of widths %d and %d" ctx (rw a) (rw b)
  | Select (c, a, b) ->
    expect "condition" (rw c) 1;
    expect "then" (rw a) dst_width;
    expect "else" (rw b) dst_width
  | Extract (hi, lo, v) ->
    if lo < 0 || hi < lo || hi >= rw v then
      fail "%s: extract [%d:%d] of width %d" ctx hi lo (rw v);
    expect "dst" dst_width (hi - lo + 1)
  | Concat (a, b) -> expect "dst" dst_width (rw a + rw b)
  | Zext (w, v) | Sext (w, v) ->
    if w < rw v then fail "%s: narrowing extension" ctx;
    expect "dst" dst_width w

let check_program (prog : program) =
  let nblocks = Array.length prog.blocks in
  let store_decl name =
    match List.find_opt (fun d -> d.store_name = name) prog.stores with
    | Some d -> d
    | None -> fail "undeclared store %s" name
  in
  let rw = rvalue_width prog in
  let check_label ctx l =
    if l < 0 || l >= nblocks then fail "%s: dangling block label %d" ctx l
  in
  Array.iteri
    (fun bi block ->
      let ctx = Printf.sprintf "%s: block %d" prog.name bi in
      List.iter
        (fun ins ->
          match ins with
          | Assign (r, rhs) -> check_rhs prog ctx prog.reg_widths.(r) rhs
          | Load (r, off, n) ->
            if n < 1 || n > 8 then fail "%s: load of %d bytes" ctx n;
            if rw off <> 16 then fail "%s: load offset not 16-bit" ctx;
            if prog.reg_widths.(r) <> 8 * n then
              fail "%s: load dst width %d for %d bytes" ctx
                prog.reg_widths.(r) n
          | Store (off, v, n) ->
            if n < 1 || n > 8 then fail "%s: store of %d bytes" ctx n;
            if rw off <> 16 then fail "%s: store offset not 16-bit" ctx;
            if rw v <> 8 * n then
              fail "%s: store value width %d for %d bytes" ctx (rw v) n
          | Load_len r ->
            if prog.reg_widths.(r) <> 16 then fail "%s: len dst not 16-bit" ctx
          | Pull n | Push n ->
            if n < 0 then fail "%s: negative head adjustment" ctx
          | Take v -> if rw v <> 16 then fail "%s: take length not 16-bit" ctx
          | Meta_get (r, m) ->
            if prog.reg_widths.(r) <> meta_width m then
              fail "%s: metadata width mismatch" ctx
          | Meta_set (m, v) ->
            if rw v <> meta_width m then
              fail "%s: metadata width mismatch" ctx
          | Kv_read (r, name, key) ->
            let d = store_decl name in
            if rw key <> d.key_width then fail "%s: key width mismatch" ctx;
            if prog.reg_widths.(r) <> d.val_width then
              fail "%s: value width mismatch" ctx
          | Kv_write (name, key, v) ->
            let d = store_decl name in
            (match d.kind with
            | Static -> fail "%s: write to static store %s" ctx name
            | Private -> ());
            if rw key <> d.key_width then fail "%s: key width mismatch" ctx;
            if rw v <> d.val_width then fail "%s: value width mismatch" ctx
          | Assert (c, _) ->
            if rw c <> 1 then fail "%s: assert condition not 1-bit" ctx)
        block.instrs;
      match block.term with
      | Goto l -> check_label ctx l
      | Branch (c, t, e) ->
        if rw c <> 1 then fail "%s: branch condition not 1-bit" ctx;
        check_label ctx t;
        check_label ctx e
      | Emit p ->
        if p < 0 || p >= prog.nports then fail "%s: emit to port %d" ctx p
      | Drop | Abort _ -> ())
    prog.blocks;
  prog
