(** A fixed pool of worker domains with a chunk-free self-balancing
    work queue.

    [create n] spawns [n - 1] domains; the caller participates as the
    n-th runner inside {!map}, so a pool of size [n] keeps exactly [n]
    domains busy. A pool of size 1 spawns nothing and {!map} degrades
    to [Array.map] — the sequential fast path costs one branch.

    Work distribution is an atomic next-index counter rather than
    pre-cut chunks: runners claim the next unclaimed element until the
    array is exhausted, so wildly uneven item costs (one subtree of the
    suspect-path DFS can dwarf its siblings) still balance.

    Guarantees:
    - {e deterministic result ordering} — [map pool f xs] returns
      results positionally, exactly like [Array.map f xs];
    - {e exception propagation} — if any [f xs.(i)] raises, one of the
      raised exceptions (the smallest failing index among those that
      ran) is re-raised with its backtrace in the caller once every
      runner has stopped; remaining unclaimed items are skipped;
    - spawning the pool enters {!Vdp_smt.Par} parallel mode (shared
      SMT state becomes lock-guarded) and {!shutdown} leaves it.

    A pool is meant to be driven from one orchestrating domain; [map]
    itself must not be called from inside a task running on the same
    pool (the nested call would deadlock waiting for runners the outer
    call already occupies). *)

type task = unit -> unit

type t = {
  mutable workers : unit Domain.t array;
  size : int;  (* total concurrent runners, including the caller *)
  queue : task Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
}

let size pool = pool.size

let rec worker_loop pool =
  Mutex.lock pool.lock;
  while Queue.is_empty pool.queue && not pool.closed do
    Condition.wait pool.nonempty pool.lock
  done;
  match Queue.take_opt pool.queue with
  | None ->
    (* closed and drained *)
    Mutex.unlock pool.lock
  | Some task ->
    Mutex.unlock pool.lock;
    task ();
    worker_loop pool

let create n =
  let n = max 1 n in
  let pool =
    {
      workers = [||];
      size = n;
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      closed = false;
    }
  in
  if n > 1 then begin
    (* Flip the SMT substrate to locked mode {e before} any worker can
       intern a term or touch a shared cache. *)
    Vdp_smt.Par.enter ();
    pool.workers <-
      Array.init (n - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool))
  end;
  pool

let shutdown pool =
  if pool.size > 1 && not pool.closed then begin
    Mutex.lock pool.lock;
    pool.closed <- true;
    Condition.broadcast pool.nonempty;
    Mutex.unlock pool.lock;
    Array.iter Domain.join pool.workers;
    pool.workers <- [||];
    Vdp_smt.Par.leave ()
  end

let with_pool n f =
  let pool = create n in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let submit pool task =
  Mutex.lock pool.lock;
  if pool.closed then begin
    Mutex.unlock pool.lock;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.add task pool.queue;
  Condition.signal pool.nonempty;
  Mutex.unlock pool.lock

let map pool f xs =
  let n = Array.length xs in
  if pool.size <= 1 || n <= 1 then Array.map f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failed = Atomic.make false in
    let error_lock = Mutex.create () in
    let errors = ref [] in  (* (index, exn, backtrace) *)
    let runner () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Atomic.get failed then continue := false
        else
          match f xs.(i) with
          | r -> results.(i) <- Some r
          | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            Atomic.set failed true;
            Mutex.lock error_lock;
            errors := (i, e, bt) :: !errors;
            Mutex.unlock error_lock
      done
    in
    (* Fan out one runner per pool slot; the caller runs the last one
       inline, then blocks until the submitted runners drain. *)
    let done_lock = Mutex.create () in
    let done_cond = Condition.create () in
    let remaining = ref (pool.size - 1) in
    for _ = 1 to pool.size - 1 do
      submit pool (fun () ->
          runner ();
          Mutex.lock done_lock;
          decr remaining;
          if !remaining = 0 then Condition.broadcast done_cond;
          Mutex.unlock done_lock)
    done;
    runner ();
    Mutex.lock done_lock;
    while !remaining > 0 do
      Condition.wait done_cond done_lock
    done;
    Mutex.unlock done_lock;
    match !errors with
    | [] ->
      Array.map
        (function Some r -> r | None -> assert false (* all claimed *))
        results
    | errs ->
      let _, e, bt =
        List.fold_left
          (fun ((i0, _, _) as acc) ((i, _, _) as cand) ->
            if i < i0 then cand else acc)
          (List.hd errs) (List.tl errs)
      in
      Printexc.raise_with_backtrace e bt
  end

let map_list pool f xs = Array.to_list (map pool f (Array.of_list xs))
