lib/symbex/loopinfo.ml: Array Fun List Stdlib Vdp_ir
