// The IP-router pipeline with the array-backed (DIR-16-8-8) route
// table instead of the compiled compare/branch chain. The table is
// shared, mutable static state: verify, change a route, re-verify —
// only the work that the change can influence is redone.
//   dune exec bin/vdpverify.exe -- crash examples/radix_router.click
//   dune exec bin/vdpverify.exe -- delta --add "172.16.0.0/12 1" examples/radix_router.click

cl :: Classifier(12/0800, -);
strip :: Strip(14);
chk :: CheckIPHeader;
opts :: IPGWOptions(9.9.9.1);
rt :: RadixIPLookup(10.0.0.0/8 0, 192.168.0.0/16 1, 0.0.0.0/0 2);
ttl :: DecIPTTL;
out :: EtherEncap(2048, 02:00:00:00:00:01, 02:00:00:00:00:02);

cl[0] -> strip -> chk -> opts -> ttl -> rt;
rt[0] -> out;
rt[1] -> out;
rt[2] -> out;

cl[1] -> Discard;
chk[1] -> Discard;
opts[1] -> Discard;
ttl[1] -> Discard;
