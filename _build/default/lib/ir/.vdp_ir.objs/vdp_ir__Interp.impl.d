lib/ir/interp.ml: Array Char List Printf Stores String Types Vdp_bitvec Vdp_packet
