lib/ir/validate.ml: Array Format List Printf Types Vdp_bitvec
