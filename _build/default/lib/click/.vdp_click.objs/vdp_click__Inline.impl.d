lib/click/inline.ml: Array Element List Pipeline Printf Vdp_ir
