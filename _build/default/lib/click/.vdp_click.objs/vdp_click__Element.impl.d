lib/click/element.ml: Format String Vdp_ir
