lib/core/verifier.ml: Array Compose Hashtbl List Printf Stdlib Summaries Sys Vdp_bitvec Vdp_click Vdp_ir Vdp_packet Vdp_smt Vdp_symbex
