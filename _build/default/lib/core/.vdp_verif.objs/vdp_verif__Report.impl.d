lib/core/report.ml: Format List Vdp_packet Vdp_symbex Verifier
