(** CDCL SAT solver (MiniSat-style core).

    Literal encoding: variable [v] yields the positive literal [2 * v]
    and the negative literal [2 * v + 1]. Variables are created with
    {!new_var} before use. The solver is incremental: clauses may be
    added between {!solve} calls, and [solve ~assumptions] checks
    satisfiability under a set of assumed literals while retaining
    every learned clause for subsequent calls (the MiniSat interface).
    Scoped solving is built on top of this by guarding clause groups
    with fresh selector variables and assuming the active selectors.

    [solve ~max_conflicts] gives up with [Unknown] after the budget is
    exhausted — used by the verification benchmarks to emulate the
    "did not finish" outcome of the monolithic baseline. *)

type t

val create : ?reduce_interval:int -> unit -> t
(** [reduce_interval] is the conflict budget before the first
    learned-clause database reduction (default 2000); each reduction
    deletes the lowest-activity half of the live learned clauses
    (locked and binary clauses are kept) and grows the budget. *)

val new_var : t -> int
val lit : int -> bool -> int
(** [lit v positive]. *)

val lit_not : int -> int
val lit_var : int -> int
val lit_is_pos : int -> bool

val add_clause : ?tag:int -> t -> int list -> unit
(** Adding the empty clause (or a clause that simplifies to it at level
    0) makes the instance trivially unsat. May be called after a [Sat]
    answer; any leftover search trail is undone first. [tag] labels the
    clause for unsat-core extraction via {!last_cone_tags} (only
    meaningful when {!enable_tracking} is on). *)

type result = Sat | Unsat | Unknown

val solve : ?max_conflicts:int -> ?assumptions:int list -> t -> result
(** Satisfiability of the clause database under the assumed literals
    (default none). [Unsat] under non-empty assumptions does not mean
    the database itself is unsat — dropping assumptions may restore
    satisfiability. Learned clauses, variable activities and saved
    phases carry over between calls. *)

val value : t -> int -> bool
(** Value of a variable in the satisfying assignment; only meaningful
    after [solve] returned [Sat]. Unassigned variables read as [false]. *)

val simplify : t -> unit
(** Remove (lazily) every clause satisfied by the level-0 assignment.
    Cheap — one scan of the clause arena — and sound to call between
    {!solve} calls; used to sweep out clauses guarded by permanently
    negated selector literals. *)

val num_vars : t -> int
val num_clauses : t -> int
(** Clause-arena entries ever created, including learned and deleted. *)

val num_conflicts : t -> int
val num_decisions : t -> int
val num_propagations : t -> int

val num_problem_clauses : t -> int
(** Live non-learned clauses (units absorbed into the level-0 trail are
    not counted). *)

val num_learned : t -> int
(** Live learned clauses. *)

val num_learned_deleted : t -> int
(** Cumulative learned clauses deleted by database reduction. *)

val num_problem_deleted : t -> int
(** Cumulative problem clauses removed by {!simplify}. *)

val num_reductions : t -> int

(** {1 DRAT proof logging}

    When enabled (before any clause is added), the solver records the
    problem clauses exactly as asserted plus one step per clause-database
    mutation: every learned clause — including units enqueued at level 0
    and the empty clause when the database is refuted outright — and
    every deletion performed by database reduction or {!simplify}. The
    result is a forward DRAT trace over {!proof_cnf} that an independent
    checker (see [Vdp_cert.Drat]) can validate; this module never checks
    its own proofs.

    A {!solve} under non-empty [assumptions] that answers [Unsat] does
    {e not} derive the empty clause (the refutation is relative to the
    assumptions), so such traces do not certify anything on their own;
    certificate producers re-solve assumption-free. [Unknown] answers
    likewise leave the trace without an empty clause, so a budget-starved
    run can never be mistaken for a refutation. *)

type proof_step =
  | P_add of int array  (** learned (RUP) clause; [[||]] is the empty clause *)
  | P_delete of int array  (** clause removed from the database *)

val enable_proof : t -> unit
val proof_enabled : t -> bool

val proof_steps : t -> proof_step list
(** Logged steps, oldest first; [[]] when logging is off. *)

val proof_cnf : t -> int list list
(** Problem clauses as asserted via {!add_clause} (after sort/dedup but
    before any level-0 simplification), oldest first. *)

val proof_sizes : t -> int * int
(** [(additions, deletions)] logged so far. *)

(** {1 Antecedent tracking: unsat cores and backward proof trimming}

    When enabled (before any clause is added), every asserted clause and
    every derived clause receives a serial, and each derivation records
    the serials it resolved on. On every [Unsat] exit — including
    [Unsat] under assumptions — the solver captures the backward
    dependency {e cone} of the final conflict before undoing any
    assignment. The cone supports two queries, valid until the next
    {!solve} or until another clause refutes the database. *)

val enable_tracking : t -> unit
val tracking : t -> bool

val last_cone_tags : t -> int list
(** Tags (from [add_clause ~tag]) of the asserted clauses inside the
    last [Unsat]'s dependency cone — an unsat core over whatever the
    caller tagged. Unordered, deduplicated. [[]] if tracking is off or
    the last answer was not [Unsat]. *)

val trimmed_proof : t -> (int list list * proof_step list) option
(** Backward-trimmed refutation: the subset of {!proof_cnf} and of the
    [P_add] steps reachable from the empty clause of the last
    assumption-free [Unsat], both oldest first and with no deletions.
    Every kept derived clause is RUP with respect to the clauses kept
    before it, so the trimmed trace checks as a standard forward DRAT
    proof with an expected deletion count of 0. [None] unless both
    proof logging and tracking are on and a cone was captured. *)
