(* Bit-vector semantics checked against OCaml's native integers on
   widths small enough to embed exactly. *)

module B = Vdp_bitvec.Bitvec

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* Unsigned value of [v] for widths <= 30. *)
let u v = B.to_int_trunc v

(* Signed reference value for width [w]. *)
let s ~w v =
  let n = B.to_int_trunc v in
  if n >= 1 lsl (w - 1) then n - (1 lsl w) else n

let mask w n = n land ((1 lsl w) - 1)

let unit_tests =
  [
    Alcotest.test_case "of_int/to_int roundtrip" `Quick (fun () ->
        check_int "42 @8" 42 (u (B.of_int ~width:8 42));
        check_int "255 @8" 255 (u (B.of_int ~width:8 255));
        check_int "256 trunc @8" 0 (u (B.of_int ~width:8 256));
        check_int "-1 @8" 255 (u (B.of_int ~width:8 (-1)));
        check_int "0 @1" 0 (u (B.of_int ~width:1 0)));
    Alcotest.test_case "wide roundtrip via bytes" `Quick (fun () ->
        let s0 = "\x01\x02\x03\x04\x05\x06\x07\x08\x09\x0a\x0b\x0c" in
        check_string "bytes" s0 (B.to_bytes_be (B.of_bytes_be s0)));
    Alcotest.test_case "of_string bases" `Quick (fun () ->
        check_int "dec" 1234 (u (B.of_string ~width:16 "1234"));
        check_int "hex" 0xbeef (u (B.of_string ~width:16 "0xbeef"));
        check_int "bin" 0b1011 (u (B.of_string ~width:8 "0b1011")));
    Alcotest.test_case "to_string" `Quick (fun () ->
        check_string "hex" "0x00ff" (B.to_string_hex (B.of_int ~width:16 255));
        check_string "dec" "255" (B.to_string_dec (B.of_int ~width:16 255));
        check_string "dec0" "0" (B.to_string_dec (B.zero 16)));
    Alcotest.test_case "division by zero (SMT-LIB)" `Quick (fun () ->
        let a = B.of_int ~width:8 17 and z = B.zero 8 in
        check_bool "udiv" true (B.equal (B.udiv a z) (B.ones 8));
        check_bool "urem" true (B.equal (B.urem a z) a));
    Alcotest.test_case "extract/concat" `Quick (fun () ->
        let v = B.of_int ~width:16 0xabcd in
        check_int "hi" 0xab (u (B.extract ~hi:15 ~lo:8 v));
        check_int "lo" 0xcd (u (B.extract ~hi:7 ~lo:0 v));
        let back =
          B.concat (B.extract ~hi:15 ~lo:8 v) (B.extract ~hi:7 ~lo:0 v)
        in
        check_bool "concat" true (B.equal back v));
    Alcotest.test_case "sext" `Quick (fun () ->
        check_int "neg" 0xfff0 (u (B.sext 16 (B.of_int ~width:8 0xf0)));
        check_int "pos" 0x0070 (u (B.sext 16 (B.of_int ~width:8 0x70))));
    Alcotest.test_case "shift bv amounts saturate" `Quick (fun () ->
        let a = B.of_int ~width:8 0xff in
        check_int "shl 200" 0 (u (B.shl_bv a (B.of_int ~width:8 200)));
        check_int "lshr 200" 0 (u (B.lshr_bv a (B.of_int ~width:8 200)));
        check_int "ashr neg 200" 0xff
          (u (B.ashr_bv a (B.of_int ~width:8 200))));
    Alcotest.test_case "popcount" `Quick (fun () ->
        check_int "0xff" 8 (B.popcount (B.of_int ~width:8 0xff));
        check_int "0" 0 (B.popcount (B.zero 64)));
    Alcotest.test_case "wide ops (>64 bits)" `Quick (fun () ->
        let w = 100 in
        let a = B.of_string ~width:w "0xfffffffffffffffffffffffff" in
        check_bool "a + 1 - 1 = a" true
          (B.equal a B.(sub (add a (one w)) (one w)));
        check_bool "a * 1 = a" true (B.equal a (B.mul a (B.one w)));
        check_bool "a / a = 1" true (B.equal (B.one w) (B.udiv a a)));
  ]

(* {1 Properties vs the native-int oracle} *)

let gen_pair w =
  QCheck.Gen.(pair (int_bound ((1 lsl w) - 1)) (int_bound ((1 lsl w) - 1)))

let arb_pair w =
  QCheck.make
    ~print:(fun (a, b) -> Printf.sprintf "(%d, %d)" a b)
    (gen_pair w)

let binop_agrees name w f_bv f_int =
  QCheck.Test.make ~count:500 ~name (arb_pair w) (fun (a, b) ->
      let va = B.of_int ~width:w a and vb = B.of_int ~width:w b in
      u (f_bv va vb) = mask w (f_int a b))

let w = 13

let props =
  [
    binop_agrees "add" w B.add ( + );
    binop_agrees "sub" w B.sub ( - );
    binop_agrees "mul" w B.mul ( * );
    binop_agrees "and" w B.logand ( land );
    binop_agrees "or" w B.logor ( lor );
    binop_agrees "xor" w B.logxor ( lxor );
    binop_agrees "udiv" w B.udiv (fun a b ->
        if b = 0 then (1 lsl w) - 1 else a / b);
    binop_agrees "urem" w B.urem (fun a b -> if b = 0 then a else a mod b);
    QCheck.Test.make ~count:500 ~name:"ult agrees" (arb_pair w)
      (fun (a, b) ->
        B.ult (B.of_int ~width:w a) (B.of_int ~width:w b) = (a < b));
    QCheck.Test.make ~count:500 ~name:"slt agrees" (arb_pair w)
      (fun (a, b) ->
        let va = B.of_int ~width:w a and vb = B.of_int ~width:w b in
        B.slt va vb = (s ~w va < s ~w vb));
    QCheck.Test.make ~count:500 ~name:"sdiv truncates toward zero"
      (arb_pair w) (fun (a, b) ->
        let va = B.of_int ~width:w a and vb = B.of_int ~width:w b in
        let sa = s ~w va and sb = s ~w vb in
        QCheck.assume (sb <> 0);
        (* OCaml division truncates toward zero, like bvsdiv. *)
        s ~w (B.sdiv va vb) = sa / sb
        || (* quotient overflow: min_int / -1 wraps *)
        (sa = -(1 lsl (w - 1)) && sb = -1));
    QCheck.Test.make ~count:500 ~name:"neg = 0 - x"
      (QCheck.int_bound ((1 lsl w) - 1)) (fun a ->
        let va = B.of_int ~width:w a in
        B.equal (B.neg va) (B.sub (B.zero w) va));
    QCheck.Test.make ~count:500 ~name:"shl/lshr agree with int"
      (QCheck.pair (QCheck.int_bound ((1 lsl w) - 1)) (QCheck.int_bound (w - 1)))
      (fun (a, k) ->
        let va = B.of_int ~width:w a in
        u (B.shl va k) = mask w (a lsl k) && u (B.lshr va k) = a lsr k);
    QCheck.Test.make ~count:500 ~name:"lognot involutive"
      (QCheck.int_bound ((1 lsl w) - 1)) (fun a ->
        let va = B.of_int ~width:w a in
        B.equal va (B.lognot (B.lognot va)));
    QCheck.Test.make ~count:200 ~name:"udivrem reconstruction" (arb_pair w)
      (fun (a, b) ->
        QCheck.assume (b <> 0);
        let va = B.of_int ~width:w a and vb = B.of_int ~width:w b in
        let q = B.udiv va vb and r = B.urem va vb in
        B.equal va (B.add (B.mul q vb) r) && B.ult r vb);
    QCheck.Test.make ~count:200 ~name:"bytes roundtrip"
      (QCheck.string_of_size (QCheck.Gen.int_range 1 32))
      (fun str -> String.equal str (B.to_bytes_be (B.of_bytes_be str)));
    QCheck.Test.make ~count:200 ~name:"dec string roundtrip"
      (QCheck.int_bound ((1 lsl w) - 1)) (fun a ->
        let va = B.of_int ~width:w a in
        B.equal va (B.of_string ~width:w (B.to_string_dec va)));
  ]

let tests = unit_tests @ List.map QCheck_alcotest.to_alcotest props
