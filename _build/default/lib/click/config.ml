(** Parser for the Click-like configuration language.

    Supported syntax (a practical subset of Click's):

    {v
    // comment
    cl :: Classifier(12/0800, -);
    chk :: CheckIPHeader;
    cl[0] -> Strip(14) -> chk;
    chk[1] -> Discard;
    v}

    Declarations introduce named elements; connection chains wire output
    port [p] of the left element to input port [q] of the right one
    ([p]/[q] default to 0). Anonymous elements may be declared inline in
    a chain, as in Click. The first declared element is the pipeline
    entry unless an [input] name exists. *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

type token =
  | Ident of string
  | Coloncolon
  | Arrow
  | Lbracket
  | Rbracket
  | Lparen
  | Rparen
  | Semi
  | Int of int
  | Config_blob of string  (** raw text inside parentheses *)

(* Tokenises everything except parenthesised configs, which are kept as
   raw blobs because Click configs have their own per-element syntax. *)
let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let i = ref 0 in
  let push t = tokens := t :: !tokens in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = ':' && !i + 1 < n && src.[!i + 1] = ':' then begin
      push Coloncolon;
      i := !i + 2
    end
    else if c = '-' && !i + 1 < n && src.[!i + 1] = '>' then begin
      push Arrow;
      i := !i + 2
    end
    else if c = '[' then (push Lbracket; incr i)
    else if c = ']' then (push Rbracket; incr i)
    else if c = ';' then (push Semi; incr i)
    else if c = '(' then begin
      (* Raw blob until the matching close paren. *)
      let depth = ref 1 in
      let start = !i + 1 in
      incr i;
      while !i < n && !depth > 0 do
        (match src.[!i] with
        | '(' -> incr depth
        | ')' -> decr depth
        | _ -> ());
        incr i
      done;
      if !depth > 0 then fail "unbalanced parenthesis";
      push (Config_blob (String.sub src start (!i - 1 - start)))
    end
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      while !i < n && src.[!i] >= '0' && src.[!i] <= '9' do incr i done;
      push (Int (int_of_string (String.sub src start (!i - start))))
    end
    else if
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
    then begin
      let start = !i in
      while
        !i < n
        && (let c = src.[!i] in
            (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
            || (c >= '0' && c <= '9') || c = '_')
      do
        incr i
      done;
      push (Ident (String.sub src start (!i - start)))
    end
    else fail "unexpected character %c" c
  done;
  List.rev !tokens

(* Split a config blob on top-level commas. *)
let split_config blob =
  let blob = String.trim blob in
  if blob = "" then []
  else begin
    let parts = ref [] and buf = Buffer.create 16 and depth = ref 0 in
    String.iter
      (fun c ->
        match c with
        | '(' ->
          incr depth;
          Buffer.add_char buf c
        | ')' ->
          decr depth;
          Buffer.add_char buf c
        | ',' when !depth = 0 ->
          parts := Buffer.contents buf :: !parts;
          Buffer.clear buf
        | _ -> Buffer.add_char buf c)
      blob;
    parts := Buffer.contents buf :: !parts;
    List.rev_map String.trim !parts
  end

type endpoint = { el : int; port : int option }

let parse src =
  let tokens = ref (tokenize src) in
  let peek () = match !tokens with [] -> None | t :: _ -> Some t in
  let advance () =
    match !tokens with
    | [] -> fail "unexpected end of input"
    | t :: rest ->
      tokens := rest;
      t
  in
  let expect t what =
    let got = advance () in
    if got <> t then fail "expected %s" what
  in
  (* Collected state *)
  let decls : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let elements = ref [] (* reversed (name, cls, config) *) in
  let nelements = ref 0 in
  let edges = ref [] in
  let anon_counter = ref 0 in
  let declare name cls config =
    if Hashtbl.mem decls name then fail "duplicate element name %s" name;
    let idx = !nelements in
    Hashtbl.add decls name idx;
    elements := (name, cls, config) :: !elements;
    incr nelements;
    idx
  in
  let is_class_name s = s <> "" && s.[0] >= 'A' && s.[0] <= 'Z' in
  (* Parse one element reference inside a chain: either a declared name
     or an inline anonymous declaration Class(config). *)
  let element_ref ident =
    if is_class_name ident then begin
      let config =
        match peek () with
        | Some (Config_blob blob) ->
          ignore (advance ());
          split_config blob
        | _ -> []
      in
      incr anon_counter;
      declare (Printf.sprintf "%s@%d" ident !anon_counter) ident config
    end
    else
      match Hashtbl.find_opt decls ident with
      | Some idx -> idx
      | None -> fail "undeclared element %s" ident
  in
  let opt_port () =
    match peek () with
    | Some Lbracket ->
      ignore (advance ());
      let p =
        match advance () with
        | Int p -> p
        | _ -> fail "expected port number"
      in
      expect Rbracket "]";
      Some p
    | _ -> None
  in
  let rec statement () =
    match peek () with
    | None -> ()
    | Some Semi ->
      ignore (advance ());
      statement ()
    | Some (Ident first) -> (
      ignore (advance ());
      match peek () with
      | Some Coloncolon ->
        (* name :: Class(config) ; *)
        ignore (advance ());
        let cls =
          match advance () with
          | Ident c -> c
          | _ -> fail "expected class name after ::"
        in
        let config =
          match peek () with
          | Some (Config_blob blob) ->
            ignore (advance ());
            split_config blob
          | _ -> []
        in
        ignore (declare first cls config);
        expect Semi ";";
        statement ()
      | _ ->
        (* A connection chain starting with [first]. *)
        let src = element_ref first in
        chain { el = src; port = opt_port () };
        statement ())
    | Some _ -> fail "expected element name or declaration"
  and chain (src : endpoint) =
    match peek () with
    | Some Arrow ->
      ignore (advance ());
      let dport = opt_port () in
      let dst_ident =
        match advance () with
        | Ident id -> id
        | _ -> fail "expected element after ->"
      in
      let dst = element_ref dst_ident in
      let sport_next = opt_port () in
      edges :=
        (src.el, Option.value ~default:0 src.port, dst,
         Option.value ~default:0 dport)
        :: !edges;
      chain { el = dst; port = sport_next }
    | Some Semi ->
      ignore (advance ())
    | None -> ()
    | Some _ -> fail "expected -> or ; in chain"
  in
  statement ();
  let elements =
    List.rev_map
      (fun (name, cls, config) -> Registry.make ~name ~cls ~config)
      !elements
  in
  let entry =
    match Hashtbl.find_opt decls "input" with Some i -> i | None -> 0
  in
  Pipeline.validate (Pipeline.create ~entry elements (List.rev !edges))

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  parse src
