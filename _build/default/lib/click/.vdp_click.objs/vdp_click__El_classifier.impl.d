lib/click/el_classifier.ml: Array El_util List String Vdp_bitvec Vdp_ir Vdp_tables
