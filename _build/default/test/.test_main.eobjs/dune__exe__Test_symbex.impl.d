test/test_symbex.ml: Alcotest List QCheck QCheck_alcotest Random Vdp_bitvec Vdp_click Vdp_ir Vdp_packet Vdp_smt Vdp_symbex
