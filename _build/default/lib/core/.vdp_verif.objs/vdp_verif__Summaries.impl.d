lib/core/summaries.ml: Array Hashtbl Sys Vdp_click Vdp_symbex
