(* Stateful elements — the paper's "currently experimenting" frontier:
   a NetFlow-style per-flow counter and a source-NAT rewriter, both
   keeping private state in key/value stores.

   Shows (1) the stateful pipeline verified crash-free under the
   read-returns-anything store model, (2) the write-back provenance
   check refuting an impossible stored value, and (3) the runtime
   actually translating flows.

     dune exec examples/nat_netflow.exe *)

module B = Vdp_bitvec.Bitvec
module T = Vdp_smt.Term
module Click = Vdp_click
module E = Vdp_symbex.Engine
module S = Vdp_symbex.Sstate
module V = Vdp_verif.Verifier
module Kv = Vdp_verif.Kvmodel
module Report = Vdp_verif.Report
module P = Vdp_packet.Packet
module Gen = Vdp_packet.Gen
module Ipv4 = Vdp_packet.Ipv4

let config =
  {|
  cl :: Classifier(12/0800, -);
  strip :: Strip(14);
  chk :: CheckIPHeader;
  flow :: FlowCounter;
  nat :: IPRewriter(203.0.113.7);
  cks :: SetIPChecksum;
  out :: EtherEncap(2048, 02:00:00:00:00:01, 02:00:00:00:00:02);
  cl[0] -> strip -> chk -> flow -> nat -> cks -> out;
  cl[1] -> Discard; chk[1] -> Discard;
  nat[1] -> cks;
  |}

let () =
  let pl = Click.Config.parse config in

  Format.printf "=== crash freedom of the stateful pipeline ===@.";
  let report = V.check_crash_freedom pl in
  Format.printf "%a@." Report.pp_report report;

  (* The paper's two-part stateful verification, demonstrated on the
     deliberately broken counter: Step 1 finds that reading 0xff from
     the private store crashes the element; the write-back check shows
     0xff is producible (0xfe + 1), so the bug is real. *)
  Format.printf "@.=== key/value store provenance (BuggyCounter) ===@.";
  let prog = Click.El_market.buggy_counter () in
  let summary = E.explore prog in
  let crash =
    List.find
      (fun s ->
        match s.E.outcome with E.O_crash (E.C_assert _) -> true | _ -> false)
      summary.E.segments
  in
  let read_var =
    List.find_map
      (function S.Kv_read { value; _ } -> Some value | _ -> None)
      crash.E.kv_log
    |> Option.get
  in
  (match
     Kv.check_provenance ~summary ~store:"c8" ~default:(B.zero 8) ~read_var
       crash.E.cond
   with
  | Kv.Written w ->
    Format.printf "bad value 0xff IS producible (%s) -> genuine bug@." w
  | Kv.Default_value -> Format.printf "bad value is the default?!@."
  | Kv.Unwritable -> Format.printf "bad value refuted@.");
  (* And a value no write can produce is refuted: *)
  (match
     Kv.check_provenance ~summary ~store:"c8" ~default:(B.zero 8) ~read_var
       (T.eq read_var (T.bv_int ~width:8 0x7f) :: crash.E.cond)
   with
  | Kv.Unwritable ->
    Format.printf "contradictory stored value correctly refuted@."
  | _ -> Format.printf "unexpected provenance@.");

  Format.printf "@.=== running flows through the NAT ===@.";
  let inst = Click.Runtime.instantiate pl in
  let flows =
    List.init 5 (fun i ->
        {
          Gen.src_ip = Ipv4.addr_of_string (Printf.sprintf "172.16.0.%d" (i + 1));
          dst_ip = Ipv4.addr_of_string "8.8.8.8";
          src_port = 40_000 + i;
          dst_port = 53;
          proto = Ipv4.proto_udp;
        })
  in
  List.iter
    (fun f ->
      (* Two packets per flow: the mapping must be stable. *)
      let once () =
        let pkt = Gen.frame_of_flow f in
        let _ = Click.Runtime.push inst pkt in
        let q = P.clone pkt in
        P.pull q 14;
        (Ipv4.addr_to_string (P.get_be q 12 4), P.get_be q 20 2,
         Ipv4.header_ok q)
      in
      let src1, port1, ok1 = once () in
      let _, port2, _ = once () in
      Format.printf
        "flow %s:%d -> translated %s:%d (stable across packets: %b, checksum \
         ok: %b)@."
        (Ipv4.addr_to_string f.Gen.src_ip)
        f.Gen.src_port src1 port1 (port1 = port2) ok1)
    flows;
  (* Per-flow counters observed by NetFlow. *)
  let flow_node =
    (* node index of the FlowCounter in config order *)
    let nodes = Click.Pipeline.nodes pl in
    let rec find i =
      if i >= Array.length nodes then failwith "flow node"
      else if
        nodes.(i).Click.Pipeline.element.Click.Element.cls = "FlowCounter"
      then i
      else find (i + 1)
    in
    find 0
  in
  let entries =
    Vdp_ir.Stores.entries inst.Click.Runtime.stores.(flow_node) "flows"
  in
  Format.printf "NetFlow saw %d flows, %d packets total@."
    (List.length entries)
    (List.fold_left (fun acc (_, v) -> acc + B.to_int_trunc v) 0 entries)
