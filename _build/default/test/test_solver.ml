(* End-to-end solver checks: hand-written constraints with known status,
   plus random terms cross-checked against brute-force enumeration of
   all variable assignments at small widths. *)

module T = Vdp_smt.Term
module B = Vdp_bitvec.Bitvec
module Solver = Vdp_smt.Solver
module Model = Vdp_smt.Model
module Eval = Vdp_smt.Eval

let check_bool = Alcotest.(check bool)

let status terms =
  match Solver.check terms with
  | Solver.Sat _ -> `Sat
  | Solver.Unsat -> `Unsat
  | Solver.Unknown -> `Unknown

let expect_sat terms = check_bool "sat" true (status terms = `Sat)
let expect_unsat terms = check_bool "unsat" true (status terms = `Unsat)

let x = T.var "x" 8
let y = T.var "y" 8
let c n = T.bv_int ~width:8 n

let unit_tests =
  [
    Alcotest.test_case "simple sat" `Quick (fun () ->
        expect_sat [ T.eq x (c 42) ]);
    Alcotest.test_case "simple unsat" `Quick (fun () ->
        expect_unsat [ T.eq x (c 1); T.eq x (c 2) ]);
    Alcotest.test_case "paper toy composition is infeasible" `Quick (fun () ->
        (* Fig. 2: C1(in) = in < 0 (signed), then E2 sees out = 0 and
           asserts 0 >= 0... composed constraint (in < 0) && (0 < 0). *)
        let in_ = T.var "in" 8 in
        let zero = c 0 in
        expect_unsat [ T.slt in_ zero; T.slt zero zero ]);
    Alcotest.test_case "range conjunction" `Quick (fun () ->
        expect_sat [ T.ult x (c 10); T.ult (c 5) x ];
        expect_unsat [ T.ult x (c 5); T.ult (c 10) x ]);
    Alcotest.test_case "arithmetic identity is valid" `Quick (fun () ->
        (* (x + y) - y = x  — its negation must be unsat. *)
        expect_unsat [ T.neq (T.sub (T.add x y) y) x ]);
    Alcotest.test_case "mul/div relation" `Quick (fun () ->
        (* x = 6, y = x / 2 => y = 3 *)
        expect_unsat
          [ T.eq x (c 6); T.eq y (T.udiv x (c 2)); T.neq y (c 3) ]);
    Alcotest.test_case "udiv by zero is all-ones" `Quick (fun () ->
        expect_unsat [ T.neq (T.udiv x (c 0)) (c 255) ]);
    Alcotest.test_case "signed vs unsigned differ on high bit" `Quick
      (fun () ->
        (* x = 0x80: unsigned 128 > 0, signed negative. *)
        expect_sat [ T.eq x (c 0x80); T.slt x (c 0) ];
        expect_unsat [ T.eq x (c 0x80); T.ult x (c 0x80) ]);
    Alcotest.test_case "shift circuit" `Quick (fun () ->
        expect_unsat [ T.neq (T.shl (c 1) (c 3)) (c 8) ];
        expect_unsat [ T.neq (T.shl x (c 8)) (c 0) ];
        expect_unsat [ T.neq (T.ashr (c 0x80) (c 7)) (c 0xff) ]);
    Alcotest.test_case "model satisfies constraints" `Quick (fun () ->
        let terms =
          [ T.ult x y; T.ult y (c 20); T.eq (T.band x (c 1)) (c 1) ]
        in
        match Solver.check terms with
        | Solver.Sat m ->
          List.iter
            (fun t -> check_bool "holds" true (Eval.eval_bool m t))
            terms
        | _ -> Alcotest.fail "expected sat");
    Alcotest.test_case "sext comparison" `Quick (fun () ->
        let w16 = T.sext 16 x in
        (* sext preserves signed order against 0. *)
        expect_unsat
          [ T.slt x (c 0); T.sle (T.bv_int ~width:16 0) w16 ]);
    Alcotest.test_case "concat/extract roundtrip" `Quick (fun () ->
        let cc = T.concat x y in
        expect_unsat [ T.neq (T.extract ~hi:15 ~lo:8 cc) x ]);
    Alcotest.test_case "max_conflicts small budget" `Quick (fun () ->
        (* A multiplication equation that needs real search; with a
           1-conflict budget the solver may give up (Unknown) but must
           never return a wrong definite answer. *)
        let terms = [ T.eq (T.mul x y) (c 143); T.ult (c 1) x; T.ult x (c 143); T.ult (c 1) y ] in
        (match Solver.check ~max_conflicts:1 terms with
        | Solver.Unsat -> Alcotest.fail "143 = 11 * 13 is satisfiable"
        | Solver.Sat m ->
          check_bool "model valid" true
            (List.for_all (Eval.eval_bool m) terms)
        | Solver.Unknown -> ()));
  ]

(* {1 Random-term cross-check against brute force} *)

(* Generate random boolean terms over two 4-bit variables. *)
let gen_term : T.t QCheck.Gen.t =
  let open QCheck.Gen in
  let w = 4 in
  let var_x = T.var "bx" w and var_y = T.var "by" w in
  let rec bv_term depth =
    if depth = 0 then
      oneof
        [ return var_x; return var_y;
          map (fun n -> T.bv_int ~width:w n) (int_bound 15) ]
    else
      let sub = bv_term (depth - 1) in
      oneof
        [
          map2 T.add sub sub;
          map2 T.sub sub sub;
          map2 T.mul sub sub;
          map2 T.band sub sub;
          map2 T.bor sub sub;
          map2 T.bxor sub sub;
          map2 T.udiv sub sub;
          map2 T.urem sub sub;
          map2 T.shl sub sub;
          map2 T.lshr sub sub;
          map T.bnot sub;
          map T.bneg sub;
          sub;
        ]
  in
  let rec bool_term depth =
    if depth = 0 then
      let atom =
        oneof
          [
            map2 T.ult (bv_term 1) (bv_term 1);
            map2 T.ule (bv_term 1) (bv_term 1);
            map2 T.slt (bv_term 1) (bv_term 1);
            map2 T.eq (bv_term 1) (bv_term 1);
          ]
      in
      atom
    else
      let sub = bool_term (depth - 1) in
      oneof
        [
          map2 (fun a b -> T.and_ [ a; b ]) sub sub;
          map2 (fun a b -> T.or_ [ a; b ]) sub sub;
          map T.not_ sub;
          sub;
        ]
  in
  bool_term 2

let brute_force_sat t =
  let exception Found in
  try
    for i = 0 to 15 do
      for j = 0 to 15 do
        let m =
          Model.of_list
            [ ("bx", B.of_int ~width:4 i); ("by", B.of_int ~width:4 j) ]
        in
        if Eval.eval_bool m t then raise Found
      done
    done;
    false
  with Found -> true

let random_term_test =
  QCheck.Test.make ~count:300 ~name:"solver agrees with brute force"
    (QCheck.make ~print:T.to_string gen_term)
    (fun t ->
      let solver_sat =
        match Solver.check [ t ] with
        | Solver.Sat _ -> true
        | Solver.Unsat -> false
        | Solver.Unknown -> QCheck.assume_fail ()
      in
      solver_sat = brute_force_sat t)

let tests =
  unit_tests @ List.map QCheck_alcotest.to_alcotest [ random_term_test ]
