test/test_packet.ml: Alcotest Char List QCheck QCheck_alcotest Random String Vdp_packet
