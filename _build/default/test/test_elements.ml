(* The extended element library: ARPResponder, ICMPError, the
   switches, and the IPFilter compiler (checked against its native
   reference semantics). *)

module B = Vdp_bitvec.Bitvec
module Ir = Vdp_ir.Types
module P = Vdp_packet.Packet
module Eth = Vdp_packet.Ethernet
module Ipv4 = Vdp_packet.Ipv4
module Arp = Vdp_packet.Arp
module Gen = Vdp_packet.Gen
module Cks = Vdp_packet.Checksum
module Click = Vdp_click
module E = Vdp_symbex.Engine
module V = Vdp_verif.Verifier

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let single cls config = Click.Pipeline.linear [ Click.Registry.make ~name:"x" ~cls ~config ]

let push1 pl pkt =
  let inst = Click.Runtime.instantiate pl in
  Click.Runtime.push inst pkt

let our_mac = "02:aa:bb:cc:dd:ee"
let our_ip = "192.0.2.1"

let arp_request ~sender_ip ~target_ip =
  let sender_mac = Eth.mac_of_string "02:00:00:00:00:07" in
  let body =
    Arp.build
      {
        Arp.op = Arp.op_request;
        sender_mac;
        sender_ip = Ipv4.addr_of_string sender_ip;
        target_mac = "\000\000\000\000\000\000";
        target_ip = Ipv4.addr_of_string target_ip;
      }
  in
  P.create
    (Eth.header ~dst:Eth.broadcast ~src:sender_mac
       ~ethertype:Eth.ethertype_arp
    ^ body)

let unit_tests =
  [
    Alcotest.test_case "ARPResponder answers requests for us" `Quick
      (fun () ->
        let pl = single "ARPResponder" [ our_ip; our_mac ] in
        let pkt = arp_request ~sender_ip:"192.0.2.9" ~target_ip:our_ip in
        let r = push1 pl pkt in
        check_bool "emitted on port 0" true
          (match r.Click.Runtime.final with
          | Click.Runtime.Egress 0 -> true
          | _ -> false);
        (* The frame is now a reply from us to the requester. *)
        (match Eth.parse pkt with
        | Some e ->
          check_string "dst" "02:00:00:00:00:07" (Eth.mac_to_string e.Eth.dst);
          check_string "src" our_mac (Eth.mac_to_string e.Eth.src)
        | None -> Alcotest.fail "eth parse");
        let q = P.clone pkt in
        P.pull q Eth.header_len;
        match Arp.parse q with
        | Some a ->
          check_int "op reply" Arp.op_reply a.Arp.op;
          check_string "sender mac is ours" our_mac
            (Eth.mac_to_string a.Arp.sender_mac);
          check_int "sender ip is ours" (Ipv4.addr_of_string our_ip)
            a.Arp.sender_ip;
          check_int "target ip is requester"
            (Ipv4.addr_of_string "192.0.2.9") a.Arp.target_ip
        | None -> Alcotest.fail "arp parse");
    Alcotest.test_case "ARPResponder ignores other targets" `Quick
      (fun () ->
        let pl = single "ARPResponder" [ our_ip; our_mac ] in
        let pkt = arp_request ~sender_ip:"192.0.2.9" ~target_ip:"192.0.2.250" in
        let r = push1 pl pkt in
        check_bool "port 1" true
          (match r.Click.Runtime.final with
          | Click.Runtime.Egress 1 -> true
          | _ -> false));
    Alcotest.test_case "ARPResponder never crashes (verified)" `Quick
      (fun () ->
        Vdp_verif.Summaries.clear ();
        let r = V.check_crash_freedom (single "ARPResponder" [ our_ip; our_mac ]) in
        check_bool "proved" true (r.V.verdict = V.Proved));
    Alcotest.test_case "ICMPError builds a valid error packet" `Quick
      (fun () ->
        let pl = single "ICMPError" [ our_ip; "11"; "0" ] in
        let orig =
          Gen.frame_of_flow ~ttl:1
            {
              Gen.src_ip = Ipv4.addr_of_string "10.5.5.5";
              dst_ip = Ipv4.addr_of_string "8.8.8.8";
              src_port = 1111;
              dst_port = 53;
              proto = Ipv4.proto_udp;
            }
        in
        P.pull orig Eth.header_len;
        let orig_len = P.length orig in
        let r = push1 pl orig in
        check_bool "emitted" true
          (match r.Click.Runtime.final with
          | Click.Runtime.Egress 0 -> true
          | _ -> false);
        (* Result: valid IP header, proto ICMP, dst = original src. *)
        check_bool "ip valid" true (Ipv4.header_ok orig);
        (match Ipv4.parse orig with
        | Some h ->
          check_int "proto icmp" 1 h.Ipv4.proto;
          check_int "dst is original src" (Ipv4.addr_of_string "10.5.5.5")
            h.Ipv4.dst;
          check_int "src is ours" (Ipv4.addr_of_string our_ip) h.Ipv4.src;
          check_int "total = 28 + quote" (28 + 28) h.Ipv4.total_len;
          check_bool "shorter than original + 28" true
            (h.Ipv4.total_len <= orig_len + 28)
        | None -> Alcotest.fail "parse");
        (* ICMP region checksums to zero. *)
        let icmp_len = P.length orig - 20 in
        check_bool "icmp checksum valid" true
          (Cks.valid_packet orig 20 icmp_len);
        check_int "icmp type" 11 (P.get_u8 orig 20);
        (* The quoted original header sits at offset 28. *)
        check_int "quoted version/ihl" 0x45 (P.get_u8 orig 28));
    Alcotest.test_case "ICMPError crash-free behind CheckIPHeader" `Slow
      (fun () ->
        Vdp_verif.Summaries.clear ();
        let pl =
          Click.Pipeline.linear
            [
              Click.Registry.make ~name:"chk" ~cls:"CheckIPHeader" ~config:[];
              Click.Registry.make ~name:"icmp" ~cls:"ICMPError"
                ~config:[ our_ip; "11"; "0" ];
            ]
        in
        let r = V.check_crash_freedom pl in
        check_bool "proved" true (r.V.verdict = V.Proved));
    Alcotest.test_case "CheckLength splits by size" `Quick (fun () ->
        let pl = single "CheckLength" [ "64" ] in
        let short = push1 pl (P.create (String.make 64 'a')) in
        let long = push1 pl (P.create (String.make 65 'a')) in
        check_bool "short -> 0" true
          (short.Click.Runtime.final = Click.Runtime.Egress 0);
        check_bool "long -> 1" true
          (long.Click.Runtime.final = Click.Runtime.Egress 1));
    Alcotest.test_case "Paint + CheckPaint" `Quick (fun () ->
        let pl =
          Click.Pipeline.linear
            [
              Click.Registry.make ~name:"p" ~cls:"Paint" ~config:[ "7" ];
              Click.Registry.make ~name:"c" ~cls:"CheckPaint" ~config:[ "7" ];
            ]
        in
        let r = push1 pl (P.create "hello") in
        check_bool "painted matches" true
          (r.Click.Runtime.final = Click.Runtime.Egress 0);
        let pl2 =
          Click.Pipeline.linear
            [
              Click.Registry.make ~name:"p" ~cls:"Paint" ~config:[ "3" ];
              Click.Registry.make ~name:"c" ~cls:"CheckPaint" ~config:[ "7" ];
            ]
        in
        let r2 = push1 pl2 (P.create "hello") in
        check_bool "mismatch to port 1" true
          (r2.Click.Runtime.final = Click.Runtime.Egress 1));
    Alcotest.test_case "HashSwitch is deterministic and in range" `Quick
      (fun () ->
        let pl = single "HashSwitch" [ "12"; "4"; "3" ] in
        let st = Random.State.make [| 3 |] in
        for _ = 1 to 200 do
          let pkt = Gen.random_frame ~min_len:16 ~max_len:64 st in
          let xor = ref 0 in
          for i = 12 to 15 do
            xor := !xor lxor P.get_u8 pkt i
          done;
          let expect = !xor mod 3 in
          let r = push1 pl pkt in
          check_bool "expected port" true
            (r.Click.Runtime.final = Click.Runtime.Egress expect)
        done);
    Alcotest.test_case "RoundRobinSwitch cycles" `Quick (fun () ->
        let pl = single "RoundRobinSwitch" [ "3" ] in
        let inst = Click.Runtime.instantiate pl in
        let ports =
          List.init 7 (fun _ ->
              match
                (Click.Runtime.push inst (P.create "x")).Click.Runtime.final
              with
              | Click.Runtime.Egress p -> p
              | _ -> -1)
        in
        check_bool "cycle" true (ports = [ 0; 1; 2; 0; 1; 2; 0 ]));
    Alcotest.test_case "IPFilter basic rules" `Quick (fun () ->
        let pl =
          single "IPFilter"
            [ "deny proto tcp dport 22"; "allow src 10.0.0.0/8"; "deny all" ]
        in
        let mk ?(proto = Ipv4.proto_tcp) ?(dport = 80) src =
          let p =
            Gen.frame_of_flow
              {
                Gen.src_ip = Ipv4.addr_of_string src;
                dst_ip = Ipv4.addr_of_string "192.0.2.7";
                src_port = 1234;
                dst_port = dport;
                proto;
              }
          in
          P.pull p Eth.header_len;
          p
        in
        let final p = (push1 pl p).Click.Runtime.final in
        check_bool "ssh denied" true
          (match final (mk ~dport:22 "10.1.1.1") with
          | Click.Runtime.Dropped_at _ -> true
          | _ -> false);
        check_bool "10/8 allowed" true
          (final (mk "10.1.1.1") = Click.Runtime.Egress 0);
        check_bool "other denied" true
          (match final (mk "11.1.1.1") with
          | Click.Runtime.Dropped_at _ -> true
          | _ -> false));
    Alcotest.test_case "IPFilter is crash-free stand-alone" `Quick
      (fun () ->
        Vdp_verif.Summaries.clear ();
        let pl =
          single "IPFilter"
            [ "deny proto tcp dport 22"; "allow src 10.0.0.0/8 sport 1-1024";
              "allow proto icmp"; "deny all" ]
        in
        let r = V.check_crash_freedom pl in
        check_bool "proved" true (r.V.verdict = V.Proved));
  ]

(* IR-compiled IPFilter agrees with the native reference semantics. *)
let filter_oracle =
  let rules_spec =
    [ "deny proto tcp dport 22";
      "allow src 10.0.0.0/8 dst 192.0.0.0/8";
      "allow proto udp sport 1024-65535";
      "deny all" ]
  in
  let rules = List.map Vdp_click.El_filter.parse_rule rules_spec in
  QCheck.Test.make ~count:300 ~name:"IPFilter IR = native semantics"
    (QCheck.make ~print:string_of_int QCheck.Gen.int)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let pkt =
        if Random.State.bool st then
          Gen.random_frame ~min_len:1 ~max_len:64 st
        else begin
          let p = Gen.frame_of_flow (Gen.random_flow st) in
          P.pull p Eth.header_len;
          if Random.State.bool st then Gen.corrupt st p else p
        end
      in
      let native = Vdp_click.El_filter.classify_packet rules (P.clone pkt) in
      let pl = single "IPFilter" rules_spec in
      let final = (push1 pl (P.clone pkt)).Click.Runtime.final in
      match (native, final) with
      | `Allow, Click.Runtime.Egress 0 -> true
      | `Deny, Click.Runtime.Dropped_at _ -> true
      (* Native parses headers only when 20 bytes are present; the IR
         drops shorter frames — both land in `Deny. *)
      | _ -> false)

let tests = unit_tests @ List.map QCheck_alcotest.to_alcotest [ filter_oracle ]
