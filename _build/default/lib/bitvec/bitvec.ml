(* Fixed-width bit vectors, little-endian limbs in base 2^16.

   16-bit limbs keep every intermediate product within OCaml's native
   [int] range (16 x 16 = 32 bits plus carries), so no boxed arithmetic
   is needed anywhere. Widths in this code base are small (packets and
   header fields), so the O(n^2) schoolbook algorithms are plenty. *)

let limb_bits = 16
let limb_mask = 0xFFFF

type t = { width : int; limbs : int array }

let width v = v.width
let nlimbs_of_width w = (w + limb_bits - 1) / limb_bits

(* Mask of significant bits in the top limb. *)
let top_mask w =
  let r = w mod limb_bits in
  if r = 0 then limb_mask else (1 lsl r) - 1

let normalize v =
  let n = Array.length v.limbs in
  v.limbs.(n - 1) <- v.limbs.(n - 1) land top_mask v.width;
  v

let make w = { width = w; limbs = Array.make (nlimbs_of_width w) 0 }

let zero w =
  if w < 1 then invalid_arg "Bitvec.zero: width < 1";
  make w

let of_int ~width:w n =
  if w < 1 then invalid_arg "Bitvec.of_int: width < 1";
  let v = make w in
  let n = ref n in
  for i = 0 to Array.length v.limbs - 1 do
    (* [asr] keeps sign-fill so negative ints become two's complement. *)
    v.limbs.(i) <- !n land limb_mask;
    n := !n asr limb_bits
  done;
  normalize v

let of_int64 ~width:w n =
  if w < 1 then invalid_arg "Bitvec.of_int64: width < 1";
  let v = make w in
  let n = ref n in
  for i = 0 to Array.length v.limbs - 1 do
    v.limbs.(i) <- Int64.to_int (Int64.logand !n 0xFFFFL);
    n := Int64.shift_right !n limb_bits
  done;
  normalize v

let one w = of_int ~width:w 1

let ones w =
  let v = make w in
  Array.fill v.limbs 0 (Array.length v.limbs) limb_mask;
  normalize v

let of_bool b = of_int ~width:1 (if b then 1 else 0)

let copy v = { v with limbs = Array.copy v.limbs }

let testbit v i =
  if i < 0 || i >= v.width then false
  else v.limbs.(i / limb_bits) land (1 lsl (i mod limb_bits)) <> 0

let msb v = testbit v (v.width - 1)
let is_zero v = Array.for_all (fun l -> l = 0) v.limbs

let is_ones v =
  let n = Array.length v.limbs in
  let rec go i =
    if i = n then true
    else
      let expect = if i = n - 1 then top_mask v.width else limb_mask in
      v.limbs.(i) = expect && go (i + 1)
  in
  go 0

let equal a b =
  a.width = b.width && Array.for_all2 (fun x y -> x = y) a.limbs b.limbs

let is_one v = equal v (one v.width)
let is_true v = testbit v 0

let hash v =
  Array.fold_left (fun acc l -> (acc * 31) + l) (v.width * 7919) v.limbs

let compare_u a b =
  if a.width <> b.width then invalid_arg "Bitvec.compare_u: width mismatch";
  let rec go i =
    if i < 0 then 0
    else if a.limbs.(i) <> b.limbs.(i) then Stdlib.compare a.limbs.(i) b.limbs.(i)
    else go (i - 1)
  in
  go (Array.length a.limbs - 1)

let compare_s a b =
  match (msb a, msb b) with
  | true, false -> -1
  | false, true -> 1
  | _ -> compare_u a b

let compare a b =
  if a.width <> b.width then Stdlib.compare a.width b.width else compare_u a b

let ult a b = compare_u a b < 0
let ule a b = compare_u a b <= 0
let slt a b = compare_s a b < 0
let sle a b = compare_s a b <= 0

(* {1 Arithmetic} *)

let add a b =
  if a.width <> b.width then invalid_arg "Bitvec.add: width mismatch";
  let r = make a.width in
  let carry = ref 0 in
  for i = 0 to Array.length r.limbs - 1 do
    let s = a.limbs.(i) + b.limbs.(i) + !carry in
    r.limbs.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  normalize r

let lognot a =
  let r = make a.width in
  for i = 0 to Array.length r.limbs - 1 do
    r.limbs.(i) <- lnot a.limbs.(i) land limb_mask
  done;
  normalize r

let neg a = add (lognot a) (one a.width)
let sub a b = add a (neg b)

let mul a b =
  if a.width <> b.width then invalid_arg "Bitvec.mul: width mismatch";
  let n = Array.length a.limbs in
  let acc = Array.make n 0 in
  for i = 0 to n - 1 do
    if a.limbs.(i) <> 0 then begin
      let carry = ref 0 in
      for j = 0 to n - 1 - i do
        let p = (a.limbs.(i) * b.limbs.(j)) + acc.(i + j) + !carry in
        acc.(i + j) <- p land limb_mask;
        carry := p lsr limb_bits
      done
    end
  done;
  normalize { width = a.width; limbs = acc }

let binop_bits f a b =
  if a.width <> b.width then invalid_arg "Bitvec: width mismatch";
  let r = make a.width in
  for i = 0 to Array.length r.limbs - 1 do
    r.limbs.(i) <- f a.limbs.(i) b.limbs.(i) land limb_mask
  done;
  normalize r

let logand = binop_bits ( land )
let logor = binop_bits ( lor )
let logxor = binop_bits ( lxor )

let shl a k =
  if k <= 0 then if k = 0 then copy a else invalid_arg "Bitvec.shl"
  else if k >= a.width then zero a.width
  else begin
    let r = make a.width in
    let limb_shift = k / limb_bits and bit_shift = k mod limb_bits in
    let n = Array.length r.limbs in
    for i = n - 1 downto 0 do
      let src = i - limb_shift in
      let lo = if src >= 0 then a.limbs.(src) lsl bit_shift else 0 in
      let hi =
        if bit_shift > 0 && src - 1 >= 0 then
          a.limbs.(src - 1) lsr (limb_bits - bit_shift)
        else 0
      in
      r.limbs.(i) <- (lo lor hi) land limb_mask
    done;
    normalize r
  end

let lshr a k =
  if k <= 0 then if k = 0 then copy a else invalid_arg "Bitvec.lshr"
  else if k >= a.width then zero a.width
  else begin
    let r = make a.width in
    let limb_shift = k / limb_bits and bit_shift = k mod limb_bits in
    let n = Array.length r.limbs in
    for i = 0 to n - 1 do
      let src = i + limb_shift in
      let lo = if src < n then a.limbs.(src) lsr bit_shift else 0 in
      let hi =
        if bit_shift > 0 && src + 1 < n then
          a.limbs.(src + 1) lsl (limb_bits - bit_shift)
        else 0
      in
      r.limbs.(i) <- (lo lor hi) land limb_mask
    done;
    normalize r
  end

let ashr a k =
  if k <= 0 then if k = 0 then copy a else invalid_arg "Bitvec.ashr"
  else if not (msb a) then lshr a k
  else if k >= a.width then ones a.width
  else begin
    (* Logical shift, then fill the vacated high bits with ones. *)
    let r = lshr a k in
    for i = a.width - k to a.width - 1 do
      r.limbs.(i / limb_bits) <-
        r.limbs.(i / limb_bits) lor (1 lsl (i mod limb_bits))
    done;
    normalize r
  end

let to_int v =
  let max_bit = Sys.int_size - 1 in
  let rec high_clear i = i >= v.width || ((not (testbit v i)) && high_clear (i + 1)) in
  if not (high_clear max_bit) then None
  else begin
    let acc = ref 0 in
    for i = Array.length v.limbs - 1 downto 0 do
      acc := (!acc lsl limb_bits) lor v.limbs.(i)
    done;
    Some !acc
  end

let to_int_exn v =
  match to_int v with
  | Some n -> n
  | None -> invalid_arg "Bitvec.to_int_exn: does not fit"

let to_int_trunc v =
  let bits = min v.width (Sys.int_size - 1) in
  let acc = ref 0 in
  for i = bits - 1 downto 0 do
    acc := (!acc lsl 1) lor (if testbit v i then 1 else 0)
  done;
  !acc

let to_signed_int v =
  if not (msb v) then to_int v
  else match to_int (neg v) with
    | Some n when n > 0 || n = 0 -> Some (-n)
    | _ -> None

let shift_amount v =
  (* Effective shift for bv-valued shift amounts: anything >= width
     saturates to width (full shift-out). *)
  match to_int v with
  | Some n when n < v.width -> n
  | _ -> v.width

let shl_bv a b = shl a (min (shift_amount b) a.width)
let lshr_bv a b = lshr a (min (shift_amount b) a.width)

let ashr_bv a b =
  let k = shift_amount b in
  if k >= a.width then if msb a then ones a.width else zero a.width
  else ashr a k

(* Shift-subtract long division; returns (quotient, remainder). *)
let udivrem a b =
  if a.width <> b.width then invalid_arg "Bitvec.udiv: width mismatch";
  if is_zero b then (ones a.width, copy a) (* SMT-LIB semantics *)
  else begin
    let w = a.width in
    let q = make w and r = make w in
    for i = w - 1 downto 0 do
      (* r := (r << 1) | bit_i(a) *)
      let r' = shl r 1 in
      if testbit a i then r'.limbs.(0) <- r'.limbs.(0) lor 1;
      Array.blit r'.limbs 0 r.limbs 0 (Array.length r.limbs);
      if compare_u r b >= 0 then begin
        let d = sub r b in
        Array.blit d.limbs 0 r.limbs 0 (Array.length r.limbs);
        q.limbs.(i / limb_bits) <-
          q.limbs.(i / limb_bits) lor (1 lsl (i mod limb_bits))
      end
    done;
    (normalize q, normalize r)
  end

let udiv a b = fst (udivrem a b)
let urem a b = snd (udivrem a b)

(* SMT-LIB [bvsdiv]/[bvsrem]: truncated division on magnitudes. *)
let sdiv a b =
  match (msb a, msb b) with
  | false, false -> udiv a b
  | true, false -> neg (udiv (neg a) b)
  | false, true -> neg (udiv a (neg b))
  | true, true -> udiv (neg a) (neg b)

let srem a b =
  match (msb a, msb b) with
  | false, false -> urem a b
  | true, false -> neg (urem (neg a) b)
  | false, true -> urem a (neg b)
  | true, true -> neg (urem (neg a) (neg b))

let extract ~hi ~lo v =
  if lo < 0 || hi < lo || hi >= v.width then
    invalid_arg "Bitvec.extract: bad range";
  let w = hi - lo + 1 in
  let shifted = lshr v lo in
  let r = make w in
  let n = Array.length r.limbs in
  Array.blit shifted.limbs 0 r.limbs 0 n;
  normalize r

let zext w v =
  if w < v.width then invalid_arg "Bitvec.zext: narrowing";
  let r = make w in
  Array.blit v.limbs 0 r.limbs 0 (Array.length v.limbs);
  normalize r

let sext w v =
  if w < v.width then invalid_arg "Bitvec.sext: narrowing";
  if not (msb v) then zext w v
  else begin
    let r = ones w in
    (* Clear the low [v.width] bits, then install [v]. *)
    let low = zext w v in
    let cleared = shl (lshr r v.width) v.width in
    logor cleared low
  end

let concat hi lo =
  let w = hi.width + lo.width in
  logor (shl (zext w hi) lo.width) (zext w lo)

let popcount v =
  let c = ref 0 in
  for i = 0 to v.width - 1 do
    if testbit v i then incr c
  done;
  !c

let of_bytes_be s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bitvec.of_bytes_be: empty";
  let v = make (8 * len) in
  for i = 0 to len - 1 do
    let byte = Char.code s.[len - 1 - i] in
    let bit = i * 8 in
    let li = bit / limb_bits and off = bit mod limb_bits in
    v.limbs.(li) <- v.limbs.(li) lor ((byte lsl off) land limb_mask);
    if off + 8 > limb_bits then
      v.limbs.(li + 1) <- v.limbs.(li + 1) lor (byte lsr (limb_bits - off))
  done;
  normalize v

let to_bytes_be v =
  if v.width mod 8 <> 0 then invalid_arg "Bitvec.to_bytes_be: ragged width";
  let len = v.width / 8 in
  String.init len (fun i ->
      let bit = (len - 1 - i) * 8 in
      let byte = ref 0 in
      for j = 7 downto 0 do
        byte := (!byte lsl 1) lor (if testbit v (bit + j) then 1 else 0)
      done;
      Char.chr !byte)

let of_string ~width:w s =
  let digit_val c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Bitvec.of_string: bad digit"
  in
  let base, body =
    if String.length s > 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then
      (16, String.sub s 2 (String.length s - 2))
    else if String.length s > 2 && s.[0] = '0' && (s.[1] = 'b' || s.[1] = 'B')
    then (2, String.sub s 2 (String.length s - 2))
    else (10, s)
  in
  if body = "" then invalid_arg "Bitvec.of_string: empty";
  let base_bv = of_int ~width:w base in
  String.fold_left
    (fun acc c ->
      if c = '_' then acc
      else begin
        let d = digit_val c in
        if d >= base then invalid_arg "Bitvec.of_string: bad digit";
        add (mul acc base_bv) (of_int ~width:w d)
      end)
    (zero w) body

let to_string_hex v =
  let ndigits = (v.width + 3) / 4 in
  let buf = Buffer.create (ndigits + 2) in
  Buffer.add_string buf "0x";
  for i = ndigits - 1 downto 0 do
    let nib = ref 0 in
    for j = 3 downto 0 do
      nib := (!nib lsl 1) lor (if testbit v ((i * 4) + j) then 1 else 0)
    done;
    Buffer.add_char buf "0123456789abcdef".[!nib]
  done;
  Buffer.contents buf

let to_string_dec v =
  if is_zero v then "0"
  else begin
    let ten = of_int ~width:v.width 10 in
    let buf = Buffer.create 8 in
    let rec go x =
      if not (is_zero x) then begin
        let q, r = udivrem x ten in
        Buffer.add_char buf (Char.chr (Char.code '0' + to_int_trunc r));
        go q
      end
    in
    go v;
    let s = Buffer.contents buf in
    String.init (String.length s) (fun i -> s.[String.length s - 1 - i])
  end

let pp fmt v = Format.fprintf fmt "%s:%d" (to_string_hex v) v.width
