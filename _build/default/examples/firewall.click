// A small stateless firewall in front of a paint-based splitter.
//   dune exec bin/vdpverify.exe -- crash examples/firewall.click

cl :: Classifier(12/0800, 12/0806, -);
chk :: CheckIPHeader;
fw :: IPFilter(deny proto tcp dport 22,
               allow src 10.0.0.0/8,
               allow proto icmp,
               deny all);
arp :: ARPResponder(192.0.2.1, 02:00:00:00:00:fe);

cl[0] -> Strip(14) -> chk -> fw -> Paint(1) -> CheckPaint(1);
cl[1] -> arp;
cl[2] -> Discard;
chk[1] -> Discard;
arp[1] -> Discard;
