(** The paper's treatment of mutable data structures (§3, "Element
    Verification"): model every private store as a key/value interface
    whose reads may return anything, find the "bad" values that violate
    the property (the fresh read variables appearing in a violating
    constraint), then {e go back and check whether any input could have
    caused a bad value to be written in the first place}.

    This module implements the write-back check: a violation whose
    constraint pins a value read from store [s] is refuted unless that
    value is the store default or some write in the owning element can
    produce it (for some packet, under that write's own path
    condition). One write step is checked — an over-approximation that
    never wrongly refutes, since any value ever present in a store is
    either its default or was produced by some write. *)

module B = Vdp_bitvec.Bitvec
module T = Vdp_smt.Term
module Solver = Vdp_smt.Solver
module S = Vdp_symbex.Sstate
module Engine = Vdp_symbex.Engine

type provenance =
  | Default_value
  | Written of string  (** description of a producing write *)
  | Unwritable  (** neither default nor writable: value impossible *)

(* Rename a writing packet's variables so they do not collide with the
   violating packet's. *)
let rename_writer t =
  T.rename_vars
    (fun n ->
      if S.is_internal n then "!w" ^ n
      else if
        n = S.len_var
        || (String.length n > 2 && String.sub n 0 2 = "p[")
        || (String.length n > 2 && String.sub n 0 2 = "p.")
      then "w." ^ n
      else n)
    t

(** All writes to [store] across the element's segments, as
    (renamed path condition, renamed written value). *)
let writes_to ~(summary : Engine.result) store =
  List.concat_map
    (fun (seg : Engine.segment) ->
      List.filter_map
        (function
          | S.Kv_write { store = s; cond; value; _ } when s = store ->
            Some (rename_writer cond, rename_writer value)
          | S.Kv_write _ | S.Kv_read _ -> None)
        seg.Engine.kv_log)
    summary.Engine.segments

(** Can the violating constraint actually occur, given where values in
    [store] come from? [read_var] is the fresh variable the read
    returned; [default] the store's declared default. *)
let check_provenance ?(max_conflicts = 2_000_000) ~(summary : Engine.result)
    ~store ~default ~(read_var : T.t) violation_cond : provenance =
  if
    Solver.is_sat ~max_conflicts
      (T.eq read_var (T.bv default) :: violation_cond)
  then Default_value
  else begin
    let rec try_writes i = function
      | [] -> Unwritable
      | (wcond, wval) :: rest ->
        if
          Solver.is_sat ~max_conflicts
            (wcond :: T.eq read_var wval :: violation_cond)
        then Written (Printf.sprintf "write #%d to store %s" i store)
        else try_writes (i + 1) rest
    in
    try_writes 0 (writes_to ~summary store)
  end

(* The fresh read variables appearing free in the violating
   constraint. *)
let constrained_vars violation_cond =
  List.concat_map
    (fun c -> List.map fst (T.free_vars c))
    violation_cond

(** Refine a violation that depends on private state: [true] if it
    survives (every constrained read value is producible), [false] if
    it is refuted (some required store value can never exist).
    [store_default] maps a store name to its declared default. *)
let violation_survives ?max_conflicts ~(summary : Engine.result)
    ~(store_default : string -> B.t)
    ~(kv_trace : (string * S.kv_event) list) violation_cond : bool =
  let free = constrained_vars violation_cond in
  List.for_all
    (fun (_, ev) ->
      match ev with
      | S.Kv_write _ -> true
      | S.Kv_read { store; value; _ } -> (
        match value.T.node with
        | T.Bv_var (name, _) ->
          if not (List.mem name free) then true
          else begin
            match
              check_provenance ?max_conflicts ~summary ~store
                ~default:(store_default store) ~read_var:value violation_cond
            with
            | Default_value | Written _ -> true
            | Unwritable -> false
          end
        | _ -> true))
    kv_trace
