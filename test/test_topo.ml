(* The topology fabric: parsing + resolution, concrete cross-pipeline
   pushes with per-pipeline step labels, relational enumeration, the
   reach/isolate/temporal queries with mandatory witness replay, and
   the adversarial scenario generator's ground truth. *)

module B = Vdp_bitvec.Bitvec
module Ir = Vdp_ir.Types
module Bld = Vdp_ir.Builder
module E = Vdp_symbex.Engine
module Click = Vdp_click
module P = Vdp_packet.Packet
module Summaries = Vdp_verif.Summaries
module F = Vdp_topo.Fabric
module R = Vdp_topo.Relation
module Q = Vdp_topo.Query
module Sc = Vdp_topo.Scenario

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* Small packets keep the solver fast; every fabric under test parses
   well within 192 bytes. *)
let fast_config =
  { Q.default_config with
    Q.engine = { E.default_config with E.max_len = 192 } }

let fabric_of src =
  match Click.Config.parse_source src with
  | Click.Config.Fabric topo -> F.of_topo topo
  | Click.Config.Single _ -> Alcotest.fail "expected a topology"

(* {1 Parsing and resolution} *)

let parse_tests =
  [
    Alcotest.test_case "topology parses and resolves" `Quick (fun () ->
        let fab =
          fabric_of
            {|
            // a two-pipeline fabric
            topology {
              pipeline left {
                f :: IPFilter(allow src 10.1.0.0/16, deny all);
              }
              pipeline right {
                rt :: StaticIPLookup(10.0.0.0/8 0, 0.0.0.0/0 1);
              }
              left[0] -> right;  // wire the filter into the router
              ingress in = left;
              egress lan = right[0];
              egress wan = right[1];
              reach in -> wan;
              isolate in -> lan;
            }
            |}
        in
        check_int "two pipelines" 2 (Array.length fab.F.pipes);
        check_string "first pipeline" "left" fab.F.pipes.(0).F.p_name;
        check_int "one link" 1 (Hashtbl.length fab.F.links);
        check_bool "link left[0] -> right" true
          (Hashtbl.find_opt fab.F.links (0, 0) = Some (1, 0));
        check_bool "ingress resolves" true (F.ingress fab "in" = (0, 0));
        check_bool "egress resolves" true (F.egress fab "wan" = (1, 1));
        check_bool "egress name lookup" true
          (F.egress_name fab ~pipe:1 ~eg:0 = Some "lan");
        check_int "two props" 2 (List.length fab.F.props));
    Alcotest.test_case "element-level egress references" `Quick (fun () ->
        let fab =
          fabric_of
            {|
            topology {
              pipeline p {
                c :: Classifier(12/0800, -);
                c[0] -> Counter;
              }
              ingress i = p;
              egress nonip = p.c[1];
              egress counted = p[1];
            }
            |}
        in
        (* c[1] is unwired, so it is an egress point; the Counter's
           output is the other. Element-level and index-level egress
           references must agree with the pipeline's own numbering. *)
        check_int "two egress points" 2
          (Array.length fab.F.pipes.(0).F.p_egress);
        check_bool "element ref resolves" true
          (F.egress fab "nonip" = (0, 0));
        check_bool "index ref resolves" true
          (F.egress fab "counted" = (0, 1)));
    Alcotest.test_case "bad topologies are rejected" `Quick (fun () ->
        let bad src =
          try
            ignore (fabric_of src);
            false
          with F.Bad_fabric _ | Click.Config.Parse_error _ -> true
        in
        check_bool "unknown link target" true
          (bad "topology { pipeline p { Counter; } p[0] -> q; }");
        check_bool "linked egress cannot be a fabric egress" true
          (bad
             {|topology {
                 pipeline p { Counter; }
                 pipeline q { Counter; }
                 p[0] -> q;
                 egress e = p[0];
               }|});
        check_bool "prop over unknown ingress" true
          (bad
             {|topology {
                 pipeline p { Counter; }
                 egress e = p[0];
                 reach nosuch -> e;
               }|});
        check_bool "double-linked egress" true
          (bad
             {|topology {
                 pipeline p { Counter; }
                 pipeline q { Counter; }
                 p[0] -> q;
                 p[0] -> q;
               }|}));
    Alcotest.test_case "tag roundtrip" `Quick (fun () ->
        check_bool "roundtrip" true
          (F.parse_tag (F.tag ~pipe:3 ~node:17) = Some (3, 17));
        check_bool "foreign tags rejected" true (F.parse_tag "n4" = None);
        check_bool "garbage rejected" true (F.parse_tag "pxny" = None));
  ]

(* {1 Concrete pushes across links} *)

(* An Ethernet+IPv4 frame with the given source/destination and
   protocol, long enough for the port window checks. *)
let ip_frame ~src ~dst =
  let data = Bytes.make 64 '\000' in
  Bytes.set data 12 '\x08';
  (* ethertype 0800 *)
  let w32 off v =
    for i = 0 to 3 do
      Bytes.set data (off + i)
        (Char.chr ((v lsr (8 * (3 - i))) land 0xff))
    done
  in
  Bytes.set data 14 '\x45';
  (* version 4, ihl 5 *)
  Bytes.set data 16 '\x00';
  Bytes.set data 17 '\x32';
  (* total length 50 <= frame *)
  Bytes.set data 23 '\x06';
  (* protocol TCP *)
  w32 26 src;
  w32 30 dst;
  (* Valid IP header checksum: CheckIPHeader verifies it. *)
  let sum = ref 0 in
  for w = 0 to 9 do
    sum :=
      !sum
      + (Char.code (Bytes.get data (14 + (2 * w))) lsl 8)
      + Char.code (Bytes.get data (14 + (2 * w) + 1))
  done;
  let folded = ref !sum in
  while !folded > 0xffff do
    folded := (!folded land 0xffff) + (!folded lsr 16)
  done;
  let ck = lnot !folded land 0xffff in
  Bytes.set data 24 (Char.chr (ck lsr 8));
  Bytes.set data 25 (Char.chr (ck land 0xff));
  P.create (Bytes.to_string data)

let push_tests =
  [
    Alcotest.test_case "packets cross links with labeled steps" `Quick
      (fun () ->
        let fab =
          fabric_of
            {|
            topology {
              pipeline adm {
                cl :: Classifier(12/0800, -);
                cl[0] -> Strip(14) -> CheckIPHeader;
                cl[1] -> Discard;
              }
              pipeline fwd {
                rt :: StaticIPLookup(10.0.0.0/8 0, 0.0.0.0/0 1);
              }
              adm[0] -> fwd;
              ingress in = adm;
              egress lan = fwd[0];
              egress wan = fwd[1];
            }
            |}
        in
        let fi = F.instantiate fab in
        let fr =
          F.push fi ~pipe:0 ~in_port:0
            (ip_frame ~src:0x0a010101 ~dst:0x0a020202)
        in
        check_bool "ends at lan" true (fr.F.f_final = F.F_egress (1, 0));
        check_int "one crossing" 1 fr.F.f_crossings;
        let labels =
          List.sort_uniq compare
            (List.map
               (fun (s : Click.Runtime.step) -> s.Click.Runtime.pipeline)
               fr.F.f_steps)
        in
        check_bool "steps labeled by pipeline" true
          (labels = [ "adm"; "fwd" ]);
        check_bool "trace is in execution order" true
          (match fr.F.f_steps with
          | first :: _ -> first.Click.Runtime.pipeline = "adm"
          | [] -> false));
    Alcotest.test_case "standalone pipelines keep unlabeled steps" `Quick
      (fun () ->
        let pl = Click.Config.parse "Counter -> Discard;" in
        let inst = Click.Runtime.instantiate pl in
        let run =
          Click.Runtime.push inst (ip_frame ~src:1 ~dst:2)
        in
        check_bool "no pipeline label" true
          (List.for_all
             (fun (s : Click.Runtime.step) -> s.Click.Runtime.pipeline = "")
             run.Click.Runtime.steps));
    Alcotest.test_case "link loops trip the crossing budget" `Quick
      (fun () ->
        let fab =
          fabric_of
            {|
            topology {
              pipeline a { Counter; }
              pipeline b { Counter; }
              a[0] -> b;
              b[0] -> a;
              ingress i = a;
            }
            |}
        in
        let fi = F.instantiate fab in
        let fr = F.push fi ~pipe:0 ~in_port:0 (ip_frame ~src:1 ~dst:2) in
        check_bool "budget final" true
          (match fr.F.f_final with F.F_budget _ -> true | _ -> false));
  ]

(* {1 Relational enumeration} *)

let enum_tests =
  [
    Alcotest.test_case "enumeration spans links and merges variants"
      `Slow
      (fun () ->
        Summaries.clear ();
        let fab =
          fabric_of
            {|
            topology {
              pipeline adm {
                cl :: Classifier(12/0800, -);
                chk :: CheckIPHeader;
                cl[0] -> Strip(14) -> chk;
                chk[1] -> Discard;
                cl[1] -> Discard;
              }
              pipeline fwd {
                rt :: StaticIPLookup(10.0.0.0/8 0, 0.0.0.0/0 1);
              }
              adm[0] -> fwd;
              ingress in = adm;
              egress lan = fwd[0];
              egress wan = fwd[1];
            }
            |}
        in
        let rel = R.build ~config:fast_config.Q.engine fab in
        let ends = Hashtbl.create 8 in
        let states = ref 0 in
        ignore
          (R.enumerate rel ~ingress:(0, 0) ~assume:[] (fun fp ->
               incr states;
               (match fp.R.fp_end with
               | R.E_egress (pi, e) ->
                 Hashtbl.replace ends ("egress", pi, e) ()
               | R.E_drop (pi, n) -> Hashtbl.replace ends ("drop", pi, n) ()
               | R.E_crash (pi, n, _) ->
                 Hashtbl.replace ends ("crash", pi, n) ());
               (* Cross-pipeline trails must be tagged per pipe. *)
               check_bool "trail starts in adm" true
                 (List.hd fp.R.fp_trail = (0, 0))));
        check_bool "reaches both fabric egresses" true
          (Hashtbl.mem ends ("egress", 1, 0)
          && Hashtbl.mem ends ("egress", 1, 1));
        (* Disjunctive sibling merging keeps the state count far below
           the raw parse-variant product (30+ CheckIPHeader variants
           alone). *)
        check_bool "merged state count is small" true (!states <= 40));
  ]

(* {1 Queries with replay} *)

(* A filtered fabric in both a correct and a deliberately leaky
   (misordered rules: allow-all shadows the deny) configuration. *)
let filtered_fabric ~leaky =
  let rules =
    if leaky then "allow all, deny dst 10.2.0.0/16"
    else "deny dst 10.2.0.0/16, allow all"
  in
  fabric_of
    (Printf.sprintf
       {|
       topology {
         pipeline adm {
           cl :: Classifier(12/0800, -);
           chk :: CheckIPHeader;
           cl[0] -> Strip(14) -> chk;
           chk[1] -> Discard;
           cl[1] -> Discard;
         }
         pipeline core {
           fw :: IPFilter(%s);
           rt :: StaticIPLookup(10.2.0.0/16 1, 0.0.0.0/0 0);
           fw -> rt;
         }
         adm[0] -> core;
         ingress in = adm;
         egress wan = core[0];
         egress lan2 = core[1];
         reach in -> wan;
         isolate in -> lan2;
       }
       |}
       rules)

let query_tests =
  [
    Alcotest.test_case "reach: witness must replay end-to-end" `Slow
      (fun () ->
        Summaries.clear ();
        let fab = filtered_fabric ~leaky:false in
        let rel = R.build ~config:fast_config.Q.engine fab in
        let r = Q.run ~config:fast_config rel (Click.Config.Reach ("in", "wan")) in
        (match r.Q.verdict with
        | Q.Holds (Some f) ->
          check_bool "confirmed" true f.Q.w_confirmed;
          check_bool "cold witness" true (f.Q.w_prime = None);
          check_bool "lands on wan" true
            (f.Q.w_end = "egress core[0] (wan)")
        | v -> Alcotest.failf "reach: %s" (Q.verdict_to_string v)));
    Alcotest.test_case "isolate: deny rule proves, shadowed rule leaks"
      `Slow
      (fun () ->
        Summaries.clear ();
        let safe = filtered_fabric ~leaky:false in
        let rel = R.build ~config:fast_config.Q.engine safe in
        let r =
          Q.run ~config:fast_config rel (Click.Config.Isolate ("in", "lan2"))
        in
        (match r.Q.verdict with
        | Q.Holds None -> ()
        | v -> Alcotest.failf "safe isolate: %s" (Q.verdict_to_string v));
        Summaries.clear ();
        let leaky = filtered_fabric ~leaky:true in
        let rel = R.build ~config:fast_config.Q.engine leaky in
        let r =
          Q.run ~config:fast_config rel (Click.Config.Isolate ("in", "lan2"))
        in
        match r.Q.verdict with
        | Q.Fails (flows, _) ->
          check_bool "at least one flow" true (flows <> []);
          check_bool "every breach replay-confirmed" true
            (List.for_all (fun f -> f.Q.w_confirmed) flows);
          check_bool "report is trusted" true (Q.all_confirmed r)
        | v -> Alcotest.failf "leaky isolate: %s" (Q.verdict_to_string v));
    Alcotest.test_case
      "temporal: NAT return path needs a priming packet" `Slow
      (fun () ->
        Summaries.clear ();
        let fab =
          fabric_of
            {|
            topology {
              pipeline t {
                f :: IPFilter(allow src 10.1.0.0/16, deny all);
              }
              pipeline gw {
                nat :: NATGateway(203.0.113.1);
                rt :: StaticIPLookup(10.1.0.0/16 0, 0.0.0.0/0 1);
                nat[1] -> rt;
                nat[2] -> Discard;
              }
              t[0] -> [0] gw;
              ingress inside = t;
              ingress wan = gw[1];
              egress wan_out = gw[0];
              egress lan = gw[1];
              temporal wan -> lan;
            }
            |}
        in
        let rel = R.build ~config:fast_config.Q.engine fab in
        let r =
          Q.run ~config:fast_config rel (Click.Config.Temporal ("wan", "lan"))
        in
        match r.Q.verdict with
        | Q.Holds (Some f) ->
          check_int "depth two" 2 r.Q.depth;
          check_bool "primed" true (f.Q.w_prime <> None);
          check_bool "primed via the inside ingress" true
            (match f.Q.w_prime with
            | Some (n, _) -> n = "inside"
            | None -> false);
          check_bool "confirmed end-to-end" true f.Q.w_confirmed
        | v -> Alcotest.failf "temporal: %s" (Q.verdict_to_string v));
    Alcotest.test_case "fabric crash-freedom: proof and confirmed crash"
      `Slow
      (fun () ->
        Summaries.clear ();
        (* The safe filtered fabric is crash-free, with a real bound. *)
        let fab = filtered_fabric ~leaky:false in
        let rel = R.build ~config:fast_config.Q.engine fab in
        let c = Q.verify_crash ~config:fast_config rel in
        (match c.Q.c_verdict with
        | Q.Holds None -> ()
        | v -> Alcotest.failf "safe fabric: %s" (Q.verdict_to_string v));
        check_bool "instruction bound is positive" true (c.Q.c_max_instrs > 0);
        (* BuggyQuota divides by the TTL byte: a zero-TTL packet crashes
           the downstream pipeline, and the crash must replay there. *)
        Summaries.clear ();
        let fab =
          fabric_of
            {|
            topology {
              pipeline adm {
                cl :: Classifier(12/0800, -);
                chk :: CheckIPHeader;
                cl[0] -> Strip(14) -> chk;
                chk[1] -> Discard;
                cl[1] -> Discard;
              }
              pipeline app {
                q :: BuggyQuota(1000);
              }
              adm[0] -> app;
              ingress in = adm;
              egress out = app[0];
              reach in -> out;
            }
            |}
        in
        let rel = R.build ~config:fast_config.Q.engine fab in
        let c = Q.verify_crash ~config:fast_config rel in
        match c.Q.c_verdict with
        | Q.Fails (flows, _) ->
          check_bool "at least one crash flow" true (flows <> []);
          check_bool "every crash replay-confirmed" true
            (List.for_all (fun f -> f.Q.w_confirmed) flows);
          check_bool "crash lands in the app pipeline" true
            (List.exists
               (fun f ->
                 (* ffinal_to_string renders "crash at app:node ...". *)
                 let n = String.length f.Q.w_end in
                 n >= 12 && String.sub f.Q.w_end 0 12 = "crash at app")
               flows)
        | v -> Alcotest.failf "buggy fabric: %s" (Q.verdict_to_string v));
  ]

(* {1 Scenario generator ground truth} *)

let scenario_tests =
  [
    Alcotest.test_case "generator plants what it claims" `Quick (fun () ->
        let sc = Sc.generate ~tenants:3 ~seed:7 ~leak:`Dropped_deny () in
        check_int "tenant count" 3 sc.Sc.sc_tenants;
        check_int "planted pairs" 2 (List.length sc.Sc.sc_planted);
        check_int "safe pairs" 4 (List.length sc.Sc.sc_safe);
        (* Same seed, same fabric text; different seed, different text
           (decorations and victim differ). *)
        let sc' = Sc.generate ~tenants:3 ~seed:7 ~leak:`Dropped_deny () in
        check_bool "deterministic" true
          (sc.Sc.sc_source = sc'.Sc.sc_source);
        let none = Sc.generate ~tenants:3 ~seed:7 ~leak:`None () in
        check_int "control plants nothing" 0
          (List.length none.Sc.sc_planted));
    Alcotest.test_case "planted leak is detected and confirmed" `Slow
      (fun () ->
        Summaries.clear ();
        let sc = Sc.generate ~tenants:2 ~seed:3 ~leak:`Misordered () in
        let score = Sc.check ~config:fast_config sc in
        check_int "all planted pairs detected" score.Sc.planted
          score.Sc.detected;
        check_bool "breaches replay-confirmed" true score.Sc.confirmed;
        check_int "no false leaks" 0 score.Sc.false_leaks;
        check_int "no unknowns" 0 score.Sc.unknowns);
  ]

let tests =
  parse_tests @ push_tests @ enum_tests @ query_tests @ scenario_tests
