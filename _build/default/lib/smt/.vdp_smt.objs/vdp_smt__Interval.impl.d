lib/smt/interval.ml: Array Hashtbl List Term Vdp_bitvec
