lib/click/el_lookup.ml: El_util Hashtbl List Stdlib String Vdp_bitvec Vdp_ir Vdp_packet
