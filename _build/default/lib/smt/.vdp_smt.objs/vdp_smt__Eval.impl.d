lib/smt/eval.ml: Array Hashtbl Model Term Value Vdp_bitvec
