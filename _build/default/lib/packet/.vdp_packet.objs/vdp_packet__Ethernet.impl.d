lib/packet/ethernet.ml: Bytes Char List Packet Printf String
