(** IPv4 headers, including options. *)

let min_header_len = 20
let proto_icmp = 1
let proto_tcp = 6
let proto_udp = 17

type addr = int (* host-order 32-bit, always in [0, 2^32) *)

let addr_of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] ->
    let n x =
      let v = int_of_string x in
      if v < 0 || v > 255 then invalid_arg "Ipv4.addr_of_string";
      v
    in
    (n a lsl 24) lor (n b lsl 16) lor (n c lsl 8) lor n d
  | _ -> invalid_arg "Ipv4.addr_of_string"

let addr_to_string a =
  Printf.sprintf "%d.%d.%d.%d"
    ((a lsr 24) land 0xff)
    ((a lsr 16) land 0xff)
    ((a lsr 8) land 0xff)
    (a land 0xff)

type option_kind =
  | Opt_eol        (* 0 *)
  | Opt_nop        (* 1 *)
  | Opt_rr         (* 7: record route *)
  | Opt_timestamp  (* 68 *)
  | Opt_other of int

let option_code = function
  | Opt_eol -> 0
  | Opt_nop -> 1
  | Opt_rr -> 7
  | Opt_timestamp -> 68
  | Opt_other c -> c

type t = {
  version : int;
  ihl : int;  (** header length in 32-bit words *)
  tos : int;
  total_len : int;
  ident : int;
  flags : int;
  frag_off : int;
  ttl : int;
  proto : int;
  checksum : int;
  src : addr;
  dst : addr;
}

(** Parse at offset [off] (relative to head); no validity checks beyond
    having 20 readable bytes. *)
let parse ?(off = 0) (p : Packet.t) =
  if Packet.length p < off + min_header_len then None
  else
    let b0 = Packet.get_u8 p off in
    Some
      {
        version = b0 lsr 4;
        ihl = b0 land 0xf;
        tos = Packet.get_u8 p (off + 1);
        total_len = Packet.get_be p (off + 2) 2;
        ident = Packet.get_be p (off + 4) 2;
        flags = Packet.get_u8 p (off + 6) lsr 5;
        frag_off = Packet.get_be p (off + 6) 2 land 0x1fff;
        ttl = Packet.get_u8 p (off + 8);
        proto = Packet.get_u8 p (off + 9);
        checksum = Packet.get_be p (off + 10) 2;
        src = Packet.get_be p (off + 12) 4;
        dst = Packet.get_be p (off + 16) 4;
      }

(** Serialise a header (without options) into a 20-byte string with a
    correct checksum unless [checksum] is forced. *)
let header ?checksum:cks ~tos ~total_len ~ident ~ttl ~proto ~src ~dst () =
  let b = Bytes.make min_header_len '\000' in
  Bytes.set b 0 (Char.chr 0x45);
  Bytes.set b 1 (Char.chr (tos land 0xff));
  Bytes.set b 2 (Char.chr ((total_len lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (total_len land 0xff));
  Bytes.set b 4 (Char.chr ((ident lsr 8) land 0xff));
  Bytes.set b 5 (Char.chr (ident land 0xff));
  Bytes.set b 8 (Char.chr (ttl land 0xff));
  Bytes.set b 9 (Char.chr (proto land 0xff));
  Bytes.set b 12 (Char.chr ((src lsr 24) land 0xff));
  Bytes.set b 13 (Char.chr ((src lsr 16) land 0xff));
  Bytes.set b 14 (Char.chr ((src lsr 8) land 0xff));
  Bytes.set b 15 (Char.chr (src land 0xff));
  Bytes.set b 16 (Char.chr ((dst lsr 24) land 0xff));
  Bytes.set b 17 (Char.chr ((dst lsr 16) land 0xff));
  Bytes.set b 18 (Char.chr ((dst lsr 8) land 0xff));
  Bytes.set b 19 (Char.chr (dst land 0xff));
  let c =
    match cks with
    | Some c -> c
    | None -> Checksum.checksum (Bytes.to_string b) 0 min_header_len
  in
  Bytes.set b 10 (Char.chr ((c lsr 8) land 0xff));
  Bytes.set b 11 (Char.chr (c land 0xff));
  Bytes.to_string b

(** Serialise a header with options. [options] is the raw option bytes;
    padded with EOL to a multiple of 4. *)
let header_with_options ?checksum:cks ~tos ~ident ~ttl ~proto ~src ~dst
    ~options ~payload_len () =
  let opt_len = 4 * ((String.length options + 3) / 4) in
  let ihl = 5 + (opt_len / 4) in
  if ihl > 15 then invalid_arg "Ipv4.header_with_options: too many options";
  let total_len = (ihl * 4) + payload_len in
  let base =
    header ~checksum:0 ~tos ~total_len ~ident ~ttl ~proto ~src ~dst ()
  in
  let b = Bytes.make (ihl * 4) '\000' in
  Bytes.blit_string base 0 b 0 min_header_len;
  Bytes.set b 0 (Char.chr (0x40 lor ihl));
  Bytes.blit_string options 0 b min_header_len (String.length options);
  let c =
    match cks with
    | Some c -> c
    | None -> Checksum.checksum (Bytes.to_string b) 0 (ihl * 4)
  in
  Bytes.set b 10 (Char.chr ((c lsr 8) land 0xff));
  Bytes.set b 11 (Char.chr (c land 0xff));
  Bytes.to_string b

(** Recompute and install the header checksum in place (header at
    offset [off], length [ihl] words read from the packet). *)
let set_checksum ?(off = 0) (p : Packet.t) =
  let ihl = Packet.get_u8 p off land 0xf in
  Packet.set_be p (off + 10) 2 0;
  let region = String.init (ihl * 4) (fun i -> Char.chr (Packet.get_u8 p (off + i))) in
  Packet.set_be p (off + 10) 2 (Checksum.checksum region 0 (ihl * 4))

(** The validity predicate CheckIPHeader implements. *)
let header_ok ?(off = 0) (p : Packet.t) =
  match parse ~off p with
  | None -> false
  | Some h ->
    h.version = 4 && h.ihl >= 5
    && Packet.length p >= off + (h.ihl * 4)
    && h.total_len >= h.ihl * 4
    && Packet.length p >= off + h.total_len
    &&
    let region =
      String.init (h.ihl * 4) (fun i -> Char.chr (Packet.get_u8 p (off + i)))
    in
    Checksum.valid region 0 (h.ihl * 4)
