(** Synthetic traffic generation: well-formed flows for throughput
    benchmarks and adversarial frames for robustness tests. Replaces the
    paper's testbed traffic sources. *)

type flow = {
  src_ip : Ipv4.addr;
  dst_ip : Ipv4.addr;
  src_port : int;
  dst_port : int;
  proto : int;
}

let random_mac st =
  String.init 6 (fun i ->
      (* Clear the multicast bit of the first byte. *)
      let b = Random.State.int st 256 in
      Char.chr (if i = 0 then b land 0xfe else b))

let random_flow st =
  {
    src_ip = Random.State.int st 0x3fffffff * 4;
    dst_ip = Random.State.int st 0x3fffffff * 4;
    src_port = 1024 + Random.State.int st 60000;
    dst_port = 1 + Random.State.int st 1023;
    proto = (if Random.State.bool st then Ipv4.proto_udp else Ipv4.proto_tcp);
  }

(** A well-formed Ethernet+IPv4+UDP/TCP frame for [flow]. *)
let frame_of_flow ?(ttl = 64) ?(payload = "payload!") flow =
  let l4 =
    if flow.proto = Ipv4.proto_udp then
      Udp.header ~src_port:flow.src_port ~dst_port:flow.dst_port
        ~payload_len:(String.length payload)
    else
      Tcp.header ~src_port:flow.src_port ~dst_port:flow.dst_port ~seq:1
        ~ack:0 ~flags:Tcp.flag_ack
  in
  let ip =
    Ipv4.header ~tos:0
      ~total_len:(Ipv4.min_header_len + String.length l4 + String.length payload)
      ~ident:0 ~ttl ~proto:flow.proto ~src:flow.src_ip ~dst:flow.dst_ip ()
  in
  let eth =
    Ethernet.header ~dst:(Ethernet.mac_of_string "02:00:00:00:00:01")
      ~src:(Ethernet.mac_of_string "02:00:00:00:00:02")
      ~ethertype:Ethernet.ethertype_ipv4
  in
  Packet.create (eth ^ ip ^ l4 ^ payload)

(** A frame whose IP header carries [options] (raw bytes). *)
let frame_with_options ?(ttl = 64) ?(payload = "xy") ~options flow =
  let ip =
    Ipv4.header_with_options ~tos:0 ~ident:0 ~ttl ~proto:flow.proto
      ~src:flow.src_ip ~dst:flow.dst_ip ~options
      ~payload_len:(String.length payload) ()
  in
  let eth =
    Ethernet.header ~dst:(Ethernet.mac_of_string "02:00:00:00:00:01")
      ~src:(Ethernet.mac_of_string "02:00:00:00:00:02")
      ~ethertype:Ethernet.ethertype_ipv4
  in
  Packet.create (eth ^ ip ^ payload)

(** Uniform random bytes: almost always malformed. *)
let random_frame ?(min_len = 1) ?(max_len = 128) st =
  let len = min_len + Random.State.int st (max_len - min_len + 1) in
  Packet.create (String.init len (fun _ -> Char.chr (Random.State.int st 256)))

(** Mutate one byte of a well-formed frame — the classic fuzz step. *)
let corrupt st p =
  let p = Packet.clone p in
  if Packet.length p > 0 then begin
    let off = Random.State.int st (Packet.length p) in
    Packet.set_u8 p off (Random.State.int st 256)
  end;
  p

(** An infinite-ish workload: [n] frames drawn from [nflows] flows, a
    fraction [corrupt_ratio] of them fuzzed. *)
let workload ?(seed = 42) ?(nflows = 16) ?(corrupt_ratio = 0.0) n =
  let st = Random.State.make [| seed |] in
  let flows = Array.init nflows (fun _ -> random_flow st) in
  List.init n (fun i ->
      let p = frame_of_flow flows.(i mod nflows) in
      if Random.State.float st 1.0 < corrupt_ratio then corrupt st p else p)
