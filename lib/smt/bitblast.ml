(* Bit-blasting of terms onto the CDCL SAT solver.

   Every bit-vector term maps to an array of SAT literals (LSB first);
   every boolean term maps to one literal. A dedicated variable pinned
   true at level 0 provides constant literals. Results are cached per
   hash-consed term id, so the DAG is encoded once. *)

module B = Vdp_bitvec.Bitvec

type ctx = {
  sat : Sat.t;
  true_lit : int;
  bool_cache : (int, int) Hashtbl.t;        (* term id -> literal *)
  bits_cache : (int, int array) Hashtbl.t;  (* term id -> bit literals *)
  bv_vars : (string, int array) Hashtbl.t;
  bool_vars : (string, int) Hashtbl.t;
  (* AIG-style structural hashing: two-input gates are cached on
     normalized literal pairs, so each distinct gate is encoded exactly
     once per context. Word-level circuits (adders, comparators,
     multiplexers) are built from these gates, so shared cones — e.g.
     [a - b] and [a >= b], which both expand to the adder of
     [a + ~b + 1] — dedup automatically. *)
  and_cache : (int * int, int) Hashtbl.t;
  xor_cache : (int * int, int) Hashtbl.t;
  ite_cache : (int * int * int, int) Hashtbl.t;
  mutable gate_hits : int;
  mutable gate_misses : int;
  (* Gate provenance for {!clause_cone}: per gate output variable, its
     Tseitin defining clauses and the variables of its input literals.
     Recorded only when the context is created with [~provenance:true]
     — a long-lived context can then hand any subset of its gate graph
     to a fresh solver as a self-contained CNF. *)
  provenance : provenance option;
}

and provenance = {
  defs : (int, int list list) Hashtbl.t;  (* gate var -> defining clauses *)
  deps : (int, int list) Hashtbl.t;       (* gate var -> input vars *)
}

(* [~proof] turns on DRAT logging in the underlying solver before the
   constant-true unit is asserted, so the recorded CNF is complete;
   [~reduce_interval] is forwarded to {!Sat.create} (certification tests
   shrink it to force clause-database deletions into the proof). *)
let create ?reduce_interval ?(proof = false) ?(track = false)
    ?(provenance = false) () =
  let sat = Sat.create ?reduce_interval () in
  if proof then Sat.enable_proof sat;
  if track then Sat.enable_tracking sat;
  let v = Sat.new_var sat in
  let true_lit = Sat.lit v true in
  Sat.add_clause sat [ true_lit ];
  {
    sat;
    true_lit;
    bool_cache = Hashtbl.create 256;
    bits_cache = Hashtbl.create 256;
    bv_vars = Hashtbl.create 64;
    bool_vars = Hashtbl.create 16;
    and_cache = Hashtbl.create 256;
    xor_cache = Hashtbl.create 256;
    ite_cache = Hashtbl.create 64;
    gate_hits = 0;
    gate_misses = 0;
    provenance =
      (if provenance then
         Some { defs = Hashtbl.create 1024; deps = Hashtbl.create 1024 }
       else None);
  }

let gate_hits ctx = ctx.gate_hits
let gate_misses ctx = ctx.gate_misses

let sat ctx = ctx.sat
let false_lit ctx = Sat.lit_not ctx.true_lit
let const_lit ctx b = if b then ctx.true_lit else false_lit ctx
let fresh ctx = Sat.lit (Sat.new_var ctx.sat) true
let clause ctx lits = Sat.add_clause ctx.sat lits

(* Register a freshly defined gate: output literal, input literals, the
   clauses just added. No-op unless provenance recording is on. *)
let record_gate ctx o inputs clauses =
  match ctx.provenance with
  | None -> ()
  | Some p ->
    let v = Sat.lit_var o in
    Hashtbl.replace p.defs v clauses;
    Hashtbl.replace p.deps v (List.map Sat.lit_var inputs)

(* {1 Gates} *)

let g_and ctx a b =
  if a = const_lit ctx false || b = const_lit ctx false then const_lit ctx false
  else if a = ctx.true_lit then b
  else if b = ctx.true_lit then a
  else if a = b then a
  else if a = Sat.lit_not b then const_lit ctx false
  else begin
    let key = if a < b then (a, b) else (b, a) in
    match Hashtbl.find_opt ctx.and_cache key with
    | Some o ->
      ctx.gate_hits <- ctx.gate_hits + 1;
      o
    | None ->
      ctx.gate_misses <- ctx.gate_misses + 1;
      let o = fresh ctx in
      clause ctx [ Sat.lit_not o; a ];
      clause ctx [ Sat.lit_not o; b ];
      clause ctx [ o; Sat.lit_not a; Sat.lit_not b ];
      record_gate ctx o [ a; b ]
        [
          [ Sat.lit_not o; a ];
          [ Sat.lit_not o; b ];
          [ o; Sat.lit_not a; Sat.lit_not b ];
        ];
      Hashtbl.add ctx.and_cache key o;
      o
  end

let g_or ctx a b = Sat.lit_not (g_and ctx (Sat.lit_not a) (Sat.lit_not b))

let g_xor ctx a b =
  if a = const_lit ctx false then b
  else if b = const_lit ctx false then a
  else if a = ctx.true_lit then Sat.lit_not b
  else if b = ctx.true_lit then Sat.lit_not a
  else if a = b then const_lit ctx false
  else if a = Sat.lit_not b then ctx.true_lit
  else begin
    (* xor(a, b) = xor(|a|, |b|) negated once per negative input, so
       the gate is cached on the sign-stripped pair and the output
       sign is recomputed — xor(a, b), xor(~a, b), xor(a, ~b) and
       xor(~a, ~b) all share one encoding. *)
    let sign = (a land 1) lxor (b land 1) in
    let va = a land lnot 1 and vb = b land lnot 1 in
    let key = if va < vb then (va, vb) else (vb, va) in
    let o =
      match Hashtbl.find_opt ctx.xor_cache key with
      | Some o ->
        ctx.gate_hits <- ctx.gate_hits + 1;
        o
      | None ->
        ctx.gate_misses <- ctx.gate_misses + 1;
        let va, vb = key in
        let o = fresh ctx in
        clause ctx [ Sat.lit_not o; va; vb ];
        clause ctx [ Sat.lit_not o; Sat.lit_not va; Sat.lit_not vb ];
        clause ctx [ o; Sat.lit_not va; vb ];
        clause ctx [ o; va; Sat.lit_not vb ];
        record_gate ctx o [ va; vb ]
          [
            [ Sat.lit_not o; va; vb ];
            [ Sat.lit_not o; Sat.lit_not va; Sat.lit_not vb ];
            [ o; Sat.lit_not va; vb ];
            [ o; va; Sat.lit_not vb ];
          ];
        Hashtbl.add ctx.xor_cache key o;
        o
    in
    o lxor sign
  end

let g_iff ctx a b = Sat.lit_not (g_xor ctx a b)

let rec g_ite ctx c t e =
  if c = ctx.true_lit then t
  else if c = const_lit ctx false then e
  else if t = e then t
  else if c land 1 = 1 then g_ite ctx (Sat.lit_not c) e t
  else begin
    let key = (c, t, e) in
    match Hashtbl.find_opt ctx.ite_cache key with
    | Some o ->
      ctx.gate_hits <- ctx.gate_hits + 1;
      o
    | None ->
      ctx.gate_misses <- ctx.gate_misses + 1;
      let o = fresh ctx in
      clause ctx [ Sat.lit_not c; Sat.lit_not t; o ];
      clause ctx [ Sat.lit_not c; t; Sat.lit_not o ];
      clause ctx [ c; Sat.lit_not e; o ];
      clause ctx [ c; e; Sat.lit_not o ];
      clause ctx [ Sat.lit_not t; Sat.lit_not e; o ];
      clause ctx [ t; e; Sat.lit_not o ];
      record_gate ctx o [ c; t; e ]
        [
          [ Sat.lit_not c; Sat.lit_not t; o ];
          [ Sat.lit_not c; t; Sat.lit_not o ];
          [ c; Sat.lit_not e; o ];
          [ c; e; Sat.lit_not o ];
          [ Sat.lit_not t; Sat.lit_not e; o ];
          [ t; e; Sat.lit_not o ];
        ];
      Hashtbl.add ctx.ite_cache key o;
      o
  end

let g_and_list ctx = List.fold_left (g_and ctx) (const_lit ctx true)
let g_or_list ctx = List.fold_left (g_or ctx) (const_lit ctx false)

(* {1 Word-level circuits over literal arrays (LSB first)} *)

let const_bits ctx v =
  Array.init (B.width v) (fun i -> const_lit ctx (B.testbit v i))

let full_adder ctx a b cin =
  let ab = g_xor ctx a b in
  let sum = g_xor ctx ab cin in
  let carry = g_or ctx (g_and ctx a b) (g_and ctx ab cin) in
  (sum, carry)

(* Returns (sum bits, carry out). *)
let adder ctx a b cin =
  let w = Array.length a in
  let sum = Array.make w (const_lit ctx false) in
  let carry = ref cin in
  for i = 0 to w - 1 do
    let s, c = full_adder ctx a.(i) b.(i) !carry in
    sum.(i) <- s;
    carry := c
  done;
  (sum, !carry)

let bits_not ctx a = ignore ctx; Array.map Sat.lit_not a
let bits_add ctx a b = fst (adder ctx a b (const_lit ctx false))
let bits_neg ctx a = fst (adder ctx (bits_not ctx a) (const_bits ctx (B.zero (Array.length a))) ctx.true_lit)
let bits_sub ctx a b = fst (adder ctx a (bits_not ctx b) ctx.true_lit)

(* a >= b (unsigned) is the carry-out of a + ~b + 1. *)
let bits_uge ctx a b = snd (adder ctx a (bits_not ctx b) ctx.true_lit)
let bits_ult ctx a b = Sat.lit_not (bits_uge ctx a b)

let bits_slt ctx a b =
  (* Flip sign bits, then compare unsigned. *)
  let w = Array.length a in
  let flip bits =
    Array.mapi (fun i l -> if i = w - 1 then Sat.lit_not l else l) bits
  in
  bits_ult ctx (flip a) (flip b)

let bits_eq ctx a b =
  let per_bit = Array.to_list (Array.map2 (g_iff ctx) a b) in
  g_and_list ctx per_bit

let bits_mux ctx c t e = Array.map2 (fun ti ei -> g_ite ctx c ti ei) t e

let bits_mul ctx a b =
  let w = Array.length a in
  let acc = ref (Array.make w (const_lit ctx false)) in
  for i = 0 to w - 1 do
    (* Partial product: (a << i) masked by b_i. *)
    let pp =
      Array.init w (fun j ->
          if j < i then const_lit ctx false else g_and ctx a.(j - i) b.(i))
    in
    acc := bits_add ctx !acc pp
  done;
  !acc

(* Restoring division; matches SMT-LIB semantics including division by
   zero (quotient all-ones, remainder = dividend). Internally keeps the
   remainder at w+1 bits so the shifted value never wraps. *)
let bits_udivrem ctx a b =
  let w = Array.length a in
  let f = const_lit ctx false in
  let bx = Array.append b [| f |] in
  let q = Array.make w f in
  let r = ref (Array.make (w + 1) f) in
  for i = w - 1 downto 0 do
    let r' =
      Array.init (w + 1) (fun j -> if j = 0 then a.(i) else !r.(j - 1))
    in
    let ge = bits_uge ctx r' bx in
    let sub = bits_sub ctx r' bx in
    q.(i) <- ge;
    r := bits_mux ctx ge sub r'
  done;
  (q, Array.sub !r 0 w)

(* Barrel shifter; [fill] supplies the bit shifted in. Amounts >= w
   select [fill] everywhere. *)
let bits_shift ctx ~left ~fill a amount =
  let w = Array.length a in
  let stages =
    let rec bits_needed n acc = if 1 lsl acc >= n then acc else bits_needed n (acc + 1) in
    bits_needed w 0
  in
  let shifted = ref (Array.copy a) in
  for s = 0 to stages - 1 do
    let k = 1 lsl s in
    let cur = !shifted in
    let moved =
      Array.init w (fun i ->
          let src = if left then i - k else i + k in
          if src < 0 || src >= w then fill else cur.(src))
    in
    shifted := bits_mux ctx amount.(s) moved cur
  done;
  (* If the amount is >= w, everything is shifted out. *)
  let wconst = const_bits ctx (B.of_int ~width:w w) in
  let big = bits_uge ctx amount wconst in
  Array.map (fun l -> g_ite ctx big fill l) !shifted

(* {1 Term translation} *)

let rec bits_of ctx (t : Term.t) : int array =
  match Hashtbl.find_opt ctx.bits_cache t.id with
  | Some bits -> bits
  | None ->
    let bits = compute_bits ctx t in
    Hashtbl.add ctx.bits_cache t.id bits;
    bits

and compute_bits ctx (t : Term.t) : int array =
  let w = Term.width t in
  match t.node with
  | Bv_const v -> const_bits ctx v
  | Bv_var (name, _) -> (
    match Hashtbl.find_opt ctx.bv_vars name with
    | Some bits -> bits
    | None ->
      let bits = Array.init w (fun _ -> fresh ctx) in
      Hashtbl.add ctx.bv_vars name bits;
      bits)
  | Bv_not a -> bits_not ctx (bits_of ctx a)
  | Bv_neg a -> bits_neg ctx (bits_of ctx a)
  | Bv_bin (op, a, b) -> (
    let ba = bits_of ctx a and bb = bits_of ctx b in
    match op with
    | Badd -> bits_add ctx ba bb
    | Bsub -> bits_sub ctx ba bb
    | Bmul -> bits_mul ctx ba bb
    | Budiv -> fst (bits_udivrem ctx ba bb)
    | Burem -> snd (bits_udivrem ctx ba bb)
    | Bsdiv | Bsrem ->
      let sign_a = ba.(w - 1) and sign_b = bb.(w - 1) in
      let abs_a = bits_mux ctx sign_a (bits_neg ctx ba) ba in
      let abs_b = bits_mux ctx sign_b (bits_neg ctx bb) bb in
      let q0, r0 = bits_udivrem ctx abs_a abs_b in
      if op = Bsdiv then
        let flip = g_xor ctx sign_a sign_b in
        bits_mux ctx flip (bits_neg ctx q0) q0
      else bits_mux ctx sign_a (bits_neg ctx r0) r0
    | Band -> Array.map2 (g_and ctx) ba bb
    | Bor -> Array.map2 (g_or ctx) ba bb
    | Bxor -> Array.map2 (g_xor ctx) ba bb
    | Bshl -> bits_shift ctx ~left:true ~fill:(const_lit ctx false) ba bb
    | Blshr -> bits_shift ctx ~left:false ~fill:(const_lit ctx false) ba bb
    | Bashr -> bits_shift ctx ~left:false ~fill:ba.(w - 1) ba bb)
  | Ite (c, a, b) ->
    let lc = lit_of_bool ctx c in
    bits_mux ctx lc (bits_of ctx a) (bits_of ctx b)
  | Extract (hi, lo, a) ->
    let ba = bits_of ctx a in
    Array.sub ba lo (hi - lo + 1)
  | Concat (a, b) -> Array.append (bits_of ctx b) (bits_of ctx a)
  | Zext (_, a) ->
    let ba = bits_of ctx a in
    Array.init w (fun i ->
        if i < Array.length ba then ba.(i) else const_lit ctx false)
  | Sext (_, a) ->
    let ba = bits_of ctx a in
    let msb = ba.(Array.length ba - 1) in
    Array.init w (fun i -> if i < Array.length ba then ba.(i) else msb)
  | True | False | Bool_var _ | Not _ | And _ | Or _ | Eq _ | Bv_cmp _ ->
    invalid_arg "Bitblast.bits_of: boolean term"

and lit_of_bool ctx (t : Term.t) : int =
  match Hashtbl.find_opt ctx.bool_cache t.id with
  | Some l -> l
  | None ->
    let l = compute_bool ctx t in
    Hashtbl.add ctx.bool_cache t.id l;
    l

and compute_bool ctx (t : Term.t) : int =
  match t.node with
  | True -> ctx.true_lit
  | False -> false_lit ctx
  | Bool_var name -> (
    match Hashtbl.find_opt ctx.bool_vars name with
    | Some l -> l
    | None ->
      let l = fresh ctx in
      Hashtbl.add ctx.bool_vars name l;
      l)
  | Not a -> Sat.lit_not (lit_of_bool ctx a)
  | And ts -> g_and_list ctx (List.map (lit_of_bool ctx) (Array.to_list ts))
  | Or ts -> g_or_list ctx (List.map (lit_of_bool ctx) (Array.to_list ts))
  | Eq (a, b) ->
    if Sort.is_bool (Term.sort a) then
      g_iff ctx (lit_of_bool ctx a) (lit_of_bool ctx b)
    else bits_eq ctx (bits_of ctx a) (bits_of ctx b)
  | Ite (c, a, b) ->
    g_ite ctx (lit_of_bool ctx c) (lit_of_bool ctx a) (lit_of_bool ctx b)
  | Bv_cmp (op, a, b) -> (
    let ba = bits_of ctx a and bb = bits_of ctx b in
    match op with
    | Ult -> bits_ult ctx ba bb
    | Ule -> Sat.lit_not (bits_ult ctx bb ba)
    | Slt -> bits_slt ctx ba bb
    | Sle -> Sat.lit_not (bits_slt ctx bb ba))
  | Bv_const _ | Bv_var _ | Bv_bin _ | Bv_not _ | Bv_neg _ | Extract _
  | Concat _ | Zext _ | Sext _ ->
    invalid_arg "Bitblast.lit_of_bool: bit-vector term"

(* [?tag] labels the one root clause for unsat-core extraction (the
   Tseitin clauses are definitional and untagged on purpose: a core over
   tags means a core over asserted constraints). *)
let assert_term ?tag ctx t =
  let l = lit_of_bool ctx t in
  Sat.add_clause ?tag ctx.sat [ l ]

(* Scoped assertion: the constraint binds only while [selector] is
   assumed true, so a solver context can retire it by dropping (or
   permanently negating) the selector. Only the root clause is guarded:
   the Tseitin clauses produced while translating [t] merely define
   fresh gate literals, are valid unconditionally, and therefore stay
   shared across scopes via the per-term caches. *)
let assert_under ?tag ctx ~selector t =
  let l = lit_of_bool ctx t in
  Sat.add_clause ?tag ctx.sat [ Sat.lit_not selector; l ]

(* {1 Model extraction (after a Sat result)} *)

let lit_model_value ctx l =
  let v = Sat.value ctx.sat (Sat.lit_var l) in
  if Sat.lit_is_pos l then v else not v

let extract_model ctx : Model.t =
  let m = Model.create () in
  Hashtbl.iter
    (fun name bits ->
      let w = Array.length bits in
      let v = ref (B.zero w) in
      Array.iteri
        (fun i l ->
          if lit_model_value ctx l then
            v := B.logor !v (B.shl (B.one w) i))
        bits;
      Model.set_bv m name !v)
    ctx.bv_vars;
  Hashtbl.iter
    (fun name l -> Model.set_bool m name (lit_model_value ctx l))
    ctx.bool_vars;
  m

(* {1 Clause-cone extraction (provenance contexts)} *)

(* The transitive Tseitin definition cone of [roots]: the defining
   clauses of every gate reachable from the roots' variables through
   gate input edges. Variables that name no gate (problem variables,
   the constant-true var) terminate the walk. Gates come out in
   ascending variable order, so certificate payloads built from a
   shared context are deterministic. The cone plus the constant-true
   unit is a self-contained CNF equisatisfiable with the roots'
   conjunction once each root is asserted as a unit. *)
let clause_cone ctx roots =
  match ctx.provenance with
  | None -> invalid_arg "Bitblast.clause_cone: provenance recording off"
  | Some p ->
    let seen = Hashtbl.create 256 in
    let gates = ref [] in
    let rec visit v =
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        match Hashtbl.find_opt p.deps v with
        | Some ins ->
          gates := v :: !gates;
          List.iter visit ins
        | None -> ()
      end
    in
    List.iter (fun l -> visit (Sat.lit_var l)) roots;
    let gate_vars = List.sort compare !gates in
    List.concat_map (fun v -> Hashtbl.find p.defs v) gate_vars
