(* The incremental solver layer: push/pop scope semantics, the query
   cache, differential flat-vs-incremental checks on random constraints
   and on real pipelines, plus regressions for the newest-first
   composite condition lists and the Unknown-aware instruction bound. *)

module B = Vdp_bitvec.Bitvec
module T = Vdp_smt.Term
module Solver = Vdp_smt.Solver
module Model = Vdp_smt.Model
module Eval = Vdp_smt.Eval
module E = Vdp_symbex.Engine
module Click = Vdp_click
module V = Vdp_verif.Verifier
module Compose = Vdp_verif.Compose
module Summaries = Vdp_verif.Summaries

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let x = T.var "x" 8
let y = T.var "y" 8
let c n = T.bv_int ~width:8 n

let status = function
  | Solver.Sat _ -> `Sat
  | Solver.Unsat -> `Unsat
  | Solver.Unknown -> `Unknown

(* {1 Scope semantics} *)

let scope_tests =
  [
    Alcotest.test_case "pop retracts a contradiction" `Quick (fun () ->
        let ctx = Solver.create_ctx () in
        Solver.assert_terms ctx [ T.ult x (c 10) ];
        check_bool "base sat" true (status (Solver.check_ctx ctx) = `Sat);
        Solver.push ctx;
        Solver.assert_terms ctx [ T.ult (c 20) x ];
        check_bool "contradiction unsat" true
          (status (Solver.check_ctx ctx) = `Unsat);
        Solver.pop ctx;
        (* The same context must recover satisfiability. *)
        check_bool "sat after pop" true
          (status (Solver.check_ctx ctx) = `Sat);
        check_int "depth back to root" 0 (Solver.depth ctx));
    Alcotest.test_case "nested scopes accumulate and retract" `Quick
      (fun () ->
        let ctx = Solver.create_ctx () in
        Solver.assert_terms ctx [ T.ult x y ];
        Solver.push ctx;
        Solver.assert_terms ctx [ T.eq y (c 5) ];
        Solver.push ctx;
        Solver.assert_terms ctx [ T.eq x (c 7) ];
        check_bool "7 < 5 unsat" true
          (status (Solver.check_ctx ctx) = `Unsat);
        Solver.pop ctx;
        (match Solver.check_ctx ctx with
        | Solver.Sat m ->
          check_bool "model: x < 5" true
            (Eval.eval_bool m (T.ult x (c 5)))
        | _ -> Alcotest.fail "expected sat");
        Solver.pop ctx;
        check_bool "outer sat" true (status (Solver.check_ctx ctx) = `Sat));
    Alcotest.test_case "models remain valid across reuse" `Quick (fun () ->
        (* Many sat/unsat alternations on one context; every Sat answer
           must satisfy exactly the live assertions. *)
        let ctx = Solver.create_ctx () in
        Solver.assert_terms ctx [ T.ult x (c 100) ];
        for i = 0 to 30 do
          Solver.push ctx;
          let t =
            if i mod 3 = 2 then T.ult (c 200) x (* contradicts the root *)
            else T.eq (T.band x (c 3)) (c (i mod 4))
          in
          Solver.assert_terms ctx [ t ];
          (match Solver.check_ctx ctx with
          | Solver.Sat m ->
            List.iter
              (fun live ->
                check_bool "live assertion holds" true (Eval.eval_bool m live))
              (Solver.asserted ctx)
          | Solver.Unsat ->
            check_bool "only the contradiction is unsat" true (i mod 3 = 2)
          | Solver.Unknown -> Alcotest.fail "unexpected unknown");
          Solver.pop ctx
        done);
    Alcotest.test_case "pop on root scope is an error" `Quick (fun () ->
        let ctx = Solver.create_ctx () in
        Alcotest.check_raises "invalid_arg"
          (Invalid_argument "Solver.pop: no scope to pop") (fun () ->
            Solver.pop ctx));
    Alcotest.test_case "per-context stats are isolated" `Quick (fun () ->
        let a = Solver.create_ctx () in
        let b = Solver.create_ctx () in
        Solver.assert_terms a [ T.eq x (c 1) ];
        ignore (Solver.check_ctx a);
        ignore (Solver.check_ctx a);
        check_int "a counted" 2 (Solver.ctx_stats a).Solver.calls;
        check_int "b untouched" 0 (Solver.ctx_stats b).Solver.calls);
  ]

(* {1 Query cache} *)

let cache_tests =
  [
    Alcotest.test_case "hit on permuted conjunction" `Quick (fun () ->
        let cache = Solver.Cache.create () in
        let a = T.ult x y and b = T.ult y (c 50) in
        let h0 = Solver.stats.Solver.cache_hits in
        (match Solver.check ~cache [ a; b ] with
        | Solver.Sat _ -> ()
        | _ -> Alcotest.fail "expected sat");
        (* Same conjunction, different order: hash-consing makes the
           key identical, so this must be answered from the cache. *)
        (match Solver.check ~cache [ b; a ] with
        | Solver.Sat m ->
          check_bool "cached model valid" true
            (Eval.eval_bool m (T.and_ [ a; b ]))
        | _ -> Alcotest.fail "expected sat");
        check_int "one hit" (h0 + 1) Solver.stats.Solver.cache_hits;
        check_int "one entry" 1 (Solver.Cache.length cache));
    Alcotest.test_case "cached and uncached answers agree" `Quick (fun () ->
        let cache = Solver.Cache.create () in
        let queries =
          [
            [ T.eq x (c 3); T.eq y (c 4) ];
            [ T.ult x y; T.ult y x ];
            [ T.eq (T.add x y) (c 0) ];
            [ T.eq x (c 3); T.eq y (c 4) ] (* repeat: served from cache *);
          ]
        in
        List.iter
          (fun q ->
            check_bool "same status" true
              (status (Solver.check ~cache q) = status (Solver.check q)))
          queries);
    Alcotest.test_case "fifo eviction is bounded and counted" `Quick
      (fun () ->
        let cache = Solver.Cache.create ~capacity:4 () in
        let e0 = Solver.stats.Solver.cache_evictions in
        for i = 0 to 9 do
          (* [x = i] alone would be eliminated (and the query folded)
             by preprocessing before it ever reaches the cache, so
             exercise the FIFO mechanics with preprocessing off. *)
          ignore (Solver.check ~cache ~preprocess:false [ T.eq x (c i) ])
        done;
        check_int "length capped" 4 (Solver.Cache.length cache);
        check_int "evictions counted" (e0 + 6)
          Solver.stats.Solver.cache_evictions);
    Alcotest.test_case "hit across eliminated conjuncts" `Quick (fun () ->
        (* The cache is keyed on the *preprocessed* conjunction, so a
           query carrying an eliminable definition and an unconstrained
           bound must land on the same entry as its stripped core. *)
        let cache = Solver.Cache.create () in
        let k = T.var "kk8" 8 and lone = T.var "lone8" 8 in
        let core = [ T.ult x y; T.ult y (c 77) ] in
        let with_def =
          T.eq k (T.add x (c 1)) :: T.ule k (T.add x (c 1)) :: core
        in
        let with_lone = T.ule lone (c 3) :: core in
        let h0 = Solver.stats.Solver.cache_hits in
        (match Solver.check ~cache with_def with
        | Solver.Sat m ->
          check_bool "def model valid" true
            (List.for_all (Eval.eval_bool m) with_def)
        | _ -> Alcotest.fail "expected sat");
        check_int "one entry after the defining query" 1
          (Solver.Cache.length cache);
        (match Solver.check ~cache core with
        | Solver.Sat _ -> ()
        | _ -> Alcotest.fail "expected sat");
        (match Solver.check ~cache with_lone with
        | Solver.Sat m ->
          check_bool "lone model valid" true
            (List.for_all (Eval.eval_bool m) with_lone)
        | _ -> Alcotest.fail "expected sat");
        check_int "still one entry" 1 (Solver.Cache.length cache);
        check_int "both follow-ups were hits" (h0 + 2)
          Solver.stats.Solver.cache_hits);
    Alcotest.test_case "incremental contexts share a cache" `Quick (fun () ->
        let cache = Solver.Cache.create () in
        let run () =
          let ctx = Solver.create_ctx ~cache () in
          Solver.assert_terms ctx [ T.ult x (c 9); T.ult (c 3) x ];
          status (Solver.check_ctx ctx)
        in
        let h0 = Solver.stats.Solver.cache_hits in
        let first = run () in
        let second = run () in
        check_bool "both sat" true (first = `Sat && second = `Sat);
        check_bool "second answered from cache" true
          (Solver.stats.Solver.cache_hits > h0));
  ]

(* {1 Random differential: flat vs incremental} *)

(* Random boolean terms over two 4-bit variables (as in test_solver). *)
let gen_terms : T.t list QCheck.Gen.t =
  let open QCheck.Gen in
  let w = 4 in
  let var_x = T.var "bx" w and var_y = T.var "by" w in
  let bv_leaf =
    oneof
      [ return var_x; return var_y;
        map (fun n -> T.bv_int ~width:w n) (int_bound 15) ]
  in
  let bv_term =
    oneof
      [
        map2 T.add bv_leaf bv_leaf;
        map2 T.sub bv_leaf bv_leaf;
        map2 T.mul bv_leaf bv_leaf;
        map2 T.band bv_leaf bv_leaf;
        map2 T.bxor bv_leaf bv_leaf;
        map T.bnot bv_leaf;
        bv_leaf;
      ]
  in
  let atom =
    oneof
      [
        map2 T.ult bv_term bv_term;
        map2 T.ule bv_term bv_term;
        map2 T.slt bv_term bv_term;
        map2 T.eq bv_term bv_term;
        map (fun t -> T.not_ t) (map2 T.eq bv_term bv_term);
      ]
  in
  list_size (int_range 1 6) atom

let print_terms ts = String.concat " /\\ " (List.map T.to_string ts)

let random_differential =
  QCheck.Test.make ~count:200
    ~name:"incremental scopes agree with flat solving"
    (QCheck.make ~print:print_terms gen_terms)
    (fun terms ->
      let flat = status (Solver.check terms) in
      (* One scope per term, innermost checked — the same shape the
         verifier's DFS produces. *)
      let ctx = Solver.create_ctx () in
      List.iter
        (fun t ->
          Solver.push ctx;
          Solver.assert_terms ctx [ t ])
        terms;
      let inc = status (Solver.check_ctx ctx) in
      (* And after popping back to an earlier prefix, a re-check of the
         full list via fresh scopes must still agree. *)
      List.iter (fun _ -> Solver.pop ctx) terms;
      Solver.assert_terms ctx terms;
      let inc' = status (Solver.check_ctx ctx) in
      flat = inc && flat = inc')

let random_reuse =
  QCheck.Test.make ~count:60
    ~name:"context reuse across unrelated queries stays sound"
    (QCheck.make
       ~print:(fun (a, b) -> print_terms a ^ " || " ^ print_terms b)
       QCheck.Gen.(pair gen_terms gen_terms))
    (fun (q1, q2) ->
      (* Both queries through ONE context (learned clauses from q1
         retained while solving q2) vs fresh flat checks. *)
      let ctx = Solver.create_ctx () in
      let check_under q =
        Solver.push ctx;
        Solver.assert_terms ctx q;
        let r = status (Solver.check_ctx ctx) in
        Solver.pop ctx;
        r
      in
      check_under q1 = status (Solver.check q1)
      && check_under q2 = status (Solver.check q2))

(* {1 Pipeline differential + regressions} *)

let router_prefix k =
  let elements =
    [
      Click.Registry.make ~name:"cl" ~cls:"Classifier"
        ~config:[ "12/0800"; "-" ];
      Click.Registry.make ~name:"strip" ~cls:"Strip" ~config:[ "14" ];
      Click.Registry.make ~name:"chk" ~cls:"CheckIPHeader" ~config:[];
      Click.Registry.make ~name:"ttl" ~cls:"DecIPTTL" ~config:[];
    ]
  in
  Click.Pipeline.linear (List.filteri (fun i _ -> i < k) elements)

let config ~incremental ~cache =
  {
    V.default_config with
    V.engine = { E.default_config with E.max_len = 128 };
    V.incremental;
    V.cache;
  }

let violated_nodes r =
  match r.V.verdict with
  | V.Violated vs -> List.sort_uniq compare (List.map (fun v -> v.V.node) vs)
  | _ -> []

let same_verdict a b =
  match (a.V.verdict, b.V.verdict) with
  | V.Proved, V.Proved -> true
  | V.Violated _, V.Violated _ -> violated_nodes a = violated_nodes b
  | V.Unknown _, V.Unknown _ -> true
  | _ -> false

let pipeline_tests =
  [
    Alcotest.test_case "crash freedom: flat and incremental agree" `Slow
      (fun () ->
        (* k=2 has real violations (short packets crash Strip), k=4 is
           proved — both verdict kinds are exercised. *)
        List.iter
          (fun k ->
            let flat =
              Summaries.clear ();
              V.check_crash_freedom
                ~config:(config ~incremental:false ~cache:false)
                (router_prefix k)
            in
            let inc =
              Summaries.clear ();
              V.check_crash_freedom
                ~config:(config ~incremental:true ~cache:true)
                (router_prefix k)
            in
            check_bool
              (Printf.sprintf "k=%d verdicts+nodes agree" k)
              true (same_verdict flat inc))
          [ 2; 4 ]);
    Alcotest.test_case "instruction bound: flat and incremental agree" `Slow
      (fun () ->
        let flat =
          Summaries.clear ();
          V.instruction_bound
            ~config:(config ~incremental:false ~cache:false)
            (router_prefix 4)
        in
        let inc =
          Summaries.clear ();
          V.instruction_bound
            ~config:(config ~incremental:true ~cache:true)
            (router_prefix 4)
        in
        check_bool "bound found" true (flat.V.bound <> None);
        check_bool "same bound" true (flat.V.bound = inc.V.bound);
        check_bool "same exactness" true (flat.V.exact = inc.V.exact));
    Alcotest.test_case "compose shares the condition prefix physically"
      `Quick (fun () ->
        Summaries.clear ();
        let entry =
          Summaries.summarize
            (Click.Registry.make ~name:"ttl" ~cls:"DecIPTTL" ~config:[])
        in
        let seg = List.hd entry.Summaries.result.E.segments in
        let st0 = Compose.initial ~assume:[ T.ult x y ] () in
        let st1 = Compose.apply st0 ~tag:"n0" seg in
        (* Newest-first: the delta is the head, the old list is the
           very tail — physically (no copy). *)
        let rec drop n l = if n = 0 then l else drop (n - 1) (List.tl l) in
        let tail =
          drop (List.length st1.Compose.new_cond) st1.Compose.cond
        in
        check_bool "tail is st0.cond (physical)" true
          (tail == st0.Compose.cond);
        check_bool "delta is the head" true
          (List.length st1.Compose.cond
          = List.length st1.Compose.new_cond + List.length st0.Compose.cond));
    Alcotest.test_case "starved solver cannot yield an exact bound" `Quick
      (fun () ->
        (* With a 1-conflict budget most checks return Unknown; the
           bound must then be absent or marked inexact — never silently
           exact (the pre-fix behaviour skipped Unknown candidates). *)
        List.iter
          (fun incremental ->
            Summaries.clear ();
            let r =
              V.instruction_bound
                ~config:
                  {
                    (config ~incremental ~cache:false) with
                    V.solver_budget = 1;
                  }
                (router_prefix 3)
            in
            if r.V.b_stats.V.unknown_checks > 0 then
              check_bool
                (Printf.sprintf "inexact under starvation (incremental=%b)"
                   incremental)
                true
                (r.V.bound = None || not r.V.exact))
          [ false; true ]);
  ]

let tests =
  scope_tests @ cache_tests
  @ List.map QCheck_alcotest.to_alcotest [ random_differential; random_reuse ]
  @ pipeline_tests
