(* Quickstart: the paper's Fig. 2 in twenty lines.

   Build the two-element toy pipeline, prove it crash-free
   compositionally, then show that E2 alone is NOT crash-free and get
   the crashing packet.

     dune exec examples/quickstart.exe *)

module V = Vdp_verif.Verifier
module Report = Vdp_verif.Report
module P = Vdp_packet.Packet

let () =
  (* E1 clamps negatives; E2 asserts non-negative then clamps to >= 10. *)
  let pipeline = Vdp_click.El_toy.fig2_pipeline () in

  Format.printf "=== E1 -> E2 (the paper's Fig. 2 pipeline) ===@.";
  let report = V.check_crash_freedom pipeline in
  Format.printf "%a@." Report.pp_report report;

  Format.printf "=== E2 alone ===@.";
  let e2_only = Vdp_click.El_toy.e2_pipeline () in
  let report = V.check_crash_freedom e2_only in
  Format.printf "%a@." Report.pp_report report;

  (* Use the returned packet: drive the runtime into the crash. *)
  (match report.V.verdict with
  | V.Violated (v :: _) -> (
    match v.V.witness with
    | Some pkt ->
      let inst = Vdp_click.Runtime.instantiate e2_only in
      let run = Vdp_click.Runtime.push inst (P.clone pkt) in
      Format.printf "replaying the witness on the runtime: %a@."
        Vdp_click.Runtime.pp_final run.Vdp_click.Runtime.final
    | None -> ())
  | _ -> ());

  (* The toy pipeline also terminates within a provable bound. *)
  Format.printf "@.=== instruction bound for E1 -> E2 ===@.";
  let bound = V.instruction_bound pipeline in
  Format.printf "%a@." Report.pp_bound_report bound
