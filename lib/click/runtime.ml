(** The push-mode dataplane runtime: drives packets through a pipeline,
    collecting per-hop traces and aggregate statistics. This is the
    "fast path" whose behaviour the verifier proves things about.

    Three engines share one observable semantics:

    - {!Scalar} — the original per-packet recursive walk over the
      per-instruction interpreter. The only engine that tolerates
      cyclic pipelines (until the hop budget trips).
    - {!Batched} — per-element batch processing: packets are staged in
      a preallocated slot ring, and each node's program runs over every
      packet queued at that node (in topological order) before the
      batch moves on. No per-packet list or closure allocation in the
      hot loop. Because pipelines are DAGs, a packet's node sequence is
      strictly ascending in topological order, so per-slot traces come
      out in true execution order.
    - {!Compiled} — the batched schedule, with each element's IR
      lowered once per instance to an OCaml closure program
      ({!Vdp_ir.Compile}) instead of being re-interpreted per packet.

    Outcomes, traces, instruction counts and store evolution are
    identical across engines; the differential oracle and
    [test_batch.ml] enforce that. *)

module Ir = Vdp_ir.Types
module Interp = Vdp_ir.Interp
module Compile = Vdp_ir.Compile
module Stores = Vdp_ir.Stores
module P = Vdp_packet.Packet

type engine = Scalar | Batched | Compiled

let engine_name = function
  | Scalar -> "scalar"
  | Batched -> "batched"
  | Compiled -> "compiled"

let engine_of_string = function
  | "scalar" -> Some Scalar
  | "batched" -> Some Batched
  | "compiled" -> Some Compiled
  | _ -> None

type step = {
  node : int;
  element : string;
  outcome : Ir.outcome;
  instrs : int;
  pipeline : string;
      (** the instance's label — which pipeline of a fabric took the
          step; [""] for a standalone pipeline *)
}

type final =
  | Egress of int  (** pipeline-level output number *)
  | Dropped_at of int
  | Crashed_at of int * Ir.crash
  | Hop_budget_at of int
      (** the hop budget was exhausted entering this node (cyclic
          pipeline or one deeper than {!max_hops}) *)

type run = {
  final : final;
  steps : step list;  (** in execution order *)
  total_instrs : int;
}

let max_hops = 1024
let default_batch = 256

type instance = {
  pipeline : Pipeline.t;
  label : string;
      (** pipeline name carried into every {!step}; [""] outside a
          fabric, so single-pipeline reports are unchanged *)
  stores : Stores.t array;  (** per-node private/static store state *)
  engine : engine;
  exec : (P.t -> Interp.result) array;  (** per-node executor *)
  egress_of : int array array;
      (** [egress_of.(node).(port)] — pipeline output number, -1 if the
          port is wired to another element *)
  order : int array;  (** topological order; [||] for {!Scalar} *)
  (* Preallocated batch ring: parallel per-slot arrays, plus one int
     queue per node. A packet visits a node at most once (DAG), so
     [capacity] slots per queue always suffice. *)
  capacity : int;
  ring : P.t array;
  finals : final array;
  finished : bool array;
  hops : int array;
  totals : int array;
  steps_rev : step list array;
  queues : int array array;
  qlen : int array;
}

let dummy_packet = P.create ""
let dummy_final = Dropped_at (-1)

let instantiate ?(engine = Scalar) ?(batch = default_batch) ?(label = "")
    pipeline =
  let stores =
    Array.map
      (fun (n : Pipeline.node) ->
        Stores.init n.Pipeline.element.Element.program.Ir.stores)
      (Pipeline.nodes pipeline)
  in
  let nnodes = Pipeline.length pipeline in
  let exec =
    Array.init nnodes (fun i ->
        let prog =
          (Pipeline.node pipeline i).Pipeline.element.Element.program
        in
        match engine with
        | Scalar | Batched -> Interp.run prog stores.(i)
        | Compiled -> Compile.compile prog stores.(i))
  in
  let egress_of =
    let pts = Pipeline.egress_points pipeline in
    let t =
      Array.map
        (fun (n : Pipeline.node) ->
          Array.make (Array.length n.Pipeline.outputs) (-1))
        (Pipeline.nodes pipeline)
    in
    Array.iteri (fun e (ni, p) -> t.(ni).(p) <- e) pts;
    t
  in
  let order =
    match engine with
    | Scalar -> [||]
    | Batched | Compiled ->
      (* Raises on cyclic pipelines: the batch schedule needs packet
         paths to ascend in topological order. *)
      Array.of_list (Pipeline.topological_order pipeline)
  in
  let capacity = match engine with Scalar -> 1 | _ -> max 1 batch in
  {
    pipeline;
    label;
    stores;
    engine;
    exec;
    egress_of;
    order;
    capacity;
    ring = Array.make capacity dummy_packet;
    finals = Array.make capacity dummy_final;
    finished = Array.make capacity false;
    hops = Array.make capacity 0;
    totals = Array.make capacity 0;
    steps_rev = Array.make capacity [];
    queues = Array.init nnodes (fun _ -> Array.make capacity 0);
    qlen = Array.make nnodes 0;
  }

let engine inst = inst.engine
let reset inst = Array.iter Stores.reset inst.stores

(** Preload private store entries, e.g. the initial state a verifier
    witness depends on: [(node, store, [(key, value); ...])]. *)
let load_state inst entries =
  List.iter
    (fun (node, store, kvs) ->
      List.iter (fun (k, v) -> Stores.write inst.stores.(node) store k v) kvs)
    entries

(* {1 The scalar engine} *)

let push_scalar ?trace inst pkt =
  let steps = ref [] in
  let total = ref 0 in
  let rec hop ni hops =
    if hops > max_hops then Hop_budget_at ni
    else begin
      let n = Pipeline.node inst.pipeline ni in
      let r = inst.exec.(ni) pkt in
      total := !total + r.Interp.instr_count;
      let step =
        {
          node = ni;
          element = n.Pipeline.element.Element.name;
          outcome = r.Interp.outcome;
          instrs = r.Interp.instr_count;
          pipeline = inst.label;
        }
      in
      steps := step :: !steps;
      (match trace with Some f -> f step pkt | None -> ());
      match r.Interp.outcome with
      | Ir.Emitted p -> (
        match n.Pipeline.outputs.(p) with
        | Some (dst, dport) ->
          pkt.P.port <- dport;
          hop dst (hops + 1)
        | None -> Egress inst.egress_of.(ni).(p))
      | Ir.Dropped -> Dropped_at ni
      | Ir.Crashed c -> Crashed_at (ni, c)
    end
  in
  let final = hop (Pipeline.entry inst.pipeline) 0 in
  { final; steps = List.rev !steps; total_instrs = !total }

(* {1 The batched engines} *)

(* Run the first [k] ring slots through the pipeline, one node at a
   time in topological order. Input ports must already be set on the
   slot packets. Per-slot finals/totals land in the instance arrays;
   step records (and the [trace] callback, invoked with the packet as
   the element left it, before the port is rewritten for the next hop)
   only when [collect]. *)
let batch_sweep ?trace ~collect inst k =
  let pl = inst.pipeline in
  for i = 0 to k - 1 do
    inst.hops.(i) <- 0;
    inst.finished.(i) <- false;
    inst.totals.(i) <- 0;
    inst.steps_rev.(i) <- []
  done;
  Array.fill inst.qlen 0 (Array.length inst.qlen) 0;
  let entry = Pipeline.entry pl in
  let eq = inst.queues.(entry) in
  for i = 0 to k - 1 do
    eq.(i) <- i
  done;
  inst.qlen.(entry) <- k;
  for oi = 0 to Array.length inst.order - 1 do
    let ni = inst.order.(oi) in
    let qn = inst.qlen.(ni) in
    if qn > 0 then begin
      let node = Pipeline.node pl ni in
      let name = node.Pipeline.element.Element.name in
      let exec = inst.exec.(ni) in
      let q = inst.queues.(ni) in
      for qi = 0 to qn - 1 do
        let slot = q.(qi) in
        if not inst.finished.(slot) then
          if inst.hops.(slot) > max_hops then begin
            inst.finals.(slot) <- Hop_budget_at ni;
            inst.finished.(slot) <- true
          end
          else begin
            let pkt = inst.ring.(slot) in
            let r = exec pkt in
            inst.totals.(slot) <- inst.totals.(slot) + r.Interp.instr_count;
            inst.hops.(slot) <- inst.hops.(slot) + 1;
            if collect then begin
              let step =
                {
                  node = ni;
                  element = name;
                  outcome = r.Interp.outcome;
                  instrs = r.Interp.instr_count;
                  pipeline = inst.label;
                }
              in
              inst.steps_rev.(slot) <- step :: inst.steps_rev.(slot);
              match trace with Some f -> f step pkt | None -> ()
            end;
            match r.Interp.outcome with
            | Ir.Emitted p -> (
              match node.Pipeline.outputs.(p) with
              | Some (dst, dport) ->
                pkt.P.port <- dport;
                let dq = inst.queues.(dst) in
                dq.(inst.qlen.(dst)) <- slot;
                inst.qlen.(dst) <- inst.qlen.(dst) + 1
              | None ->
                inst.finals.(slot) <- Egress inst.egress_of.(ni).(p);
                inst.finished.(slot) <- true)
            | Ir.Dropped ->
              inst.finals.(slot) <- Dropped_at ni;
              inst.finished.(slot) <- true
            | Ir.Crashed c ->
              inst.finals.(slot) <- Crashed_at (ni, c);
              inst.finished.(slot) <- true
          end
      done
    end
  done

let push_batched ?trace inst pkt =
  inst.ring.(0) <- pkt;
  batch_sweep ?trace ~collect:true inst 1;
  inst.ring.(0) <- dummy_packet;
  {
    final = inst.finals.(0);
    steps = List.rev inst.steps_rev.(0);
    total_instrs = inst.totals.(0);
  }

(** Push one packet in at [in_port] of the entry element. The packet is
    mutated in place (clone first if you need the original). [trace] is
    called after every element with the step just taken and the packet
    as the element left it — before the output port meta is rewritten
    for the next hop — so a caller can snapshot per-element state. *)
let push ?(in_port = 0) ?trace inst pkt =
  pkt.P.port <- in_port;
  match inst.engine with
  | Scalar -> push_scalar ?trace inst pkt
  | Batched | Compiled -> push_batched ?trace inst pkt

(* {1 Aggregate statistics over a workload} *)

type stats = {
  mutable sent : int;
  mutable egressed : int;
  mutable dropped : int;
  mutable crashed : int;
  mutable hop_budget : int;
      (** packets cut off by the hop budget (pathological pipelines) *)
  mutable instrs : int;
  mutable max_instrs : int;
}

let fresh_stats () =
  { sent = 0; egressed = 0; dropped = 0; crashed = 0; hop_budget = 0;
    instrs = 0; max_instrs = 0 }

let count_final st = function
  | Egress _ -> st.egressed <- st.egressed + 1
  | Dropped_at _ -> st.dropped <- st.dropped + 1
  | Crashed_at _ -> st.crashed <- st.crashed + 1
  | Hop_budget_at _ -> st.hop_budget <- st.hop_budget + 1

(** Drive a workload and aggregate. Batched engines fill the slot ring
    with up to [capacity] packets per sweep; the scalar engine pushes
    one packet at a time. A packet that exhausts the hop budget is
    counted in [hop_budget] rather than aborting the whole workload. *)
let run_workload ?(in_port = 0) inst pkts =
  let st = fresh_stats () in
  (match inst.engine with
  | Scalar ->
    List.iter
      (fun pkt ->
        let r = push ~in_port inst pkt in
        st.sent <- st.sent + 1;
        st.instrs <- st.instrs + r.total_instrs;
        st.max_instrs <- max st.max_instrs r.total_instrs;
        count_final st r.final)
      pkts
  | Batched | Compiled ->
    let pkts = Array.of_list pkts in
    let n = Array.length pkts in
    let pos = ref 0 in
    while !pos < n do
      let k = min inst.capacity (n - !pos) in
      for i = 0 to k - 1 do
        let pkt = pkts.(!pos + i) in
        pkt.P.port <- in_port;
        inst.ring.(i) <- pkt
      done;
      batch_sweep ~collect:false inst k;
      for i = 0 to k - 1 do
        st.sent <- st.sent + 1;
        st.instrs <- st.instrs + inst.totals.(i);
        st.max_instrs <- max st.max_instrs inst.totals.(i);
        count_final st inst.finals.(i);
        inst.ring.(i) <- dummy_packet
      done;
      pos := !pos + k
    done);
  st

(* Restore working packet [dst] to the pristine state of template
   [src] (its clone): window position, window bytes and metadata.
   Bytes the previous run wrote outside the restored window are
   unreachable once head/len are reset. *)
let refresh dst src =
  dst.P.head <- src.P.head;
  dst.P.len <- src.P.len;
  Bytes.blit src.P.buf src.P.head dst.P.buf src.P.head src.P.len;
  dst.P.port <- src.P.port;
  dst.P.color <- src.P.color;
  dst.P.w0 <- src.P.w0;
  dst.P.w1 <- src.P.w1

(** Steady-state driver: push [count] packets drawn round-robin from a
    preallocated template pool, restoring a working copy in place
    before each — no allocation in the loop, like a NIC refilling its
    RX ring. Same aggregate stats as {!run_workload} over the same
    packet sequence. *)
let run_pool ?(in_port = 0) inst templates count =
  let npool = Array.length templates in
  if npool = 0 then invalid_arg "Runtime.run_pool: empty pool";
  let work = Array.map P.clone templates in
  let st = fresh_stats () in
  (match inst.engine with
  | Scalar ->
    for i = 0 to count - 1 do
      let j = i mod npool in
      refresh work.(j) templates.(j);
      let r = push ~in_port inst work.(j) in
      st.sent <- st.sent + 1;
      st.instrs <- st.instrs + r.total_instrs;
      st.max_instrs <- max st.max_instrs r.total_instrs;
      count_final st r.final
    done
  | Batched | Compiled ->
    let pos = ref 0 in
    while !pos < count do
      (* One sweep must not alias two ring slots to one pool packet. *)
      let k = min (min inst.capacity npool) (count - !pos) in
      for i = 0 to k - 1 do
        let j = (!pos + i) mod npool in
        refresh work.(j) templates.(j);
        work.(j).P.port <- in_port;
        inst.ring.(i) <- work.(j)
      done;
      batch_sweep ~collect:false inst k;
      for i = 0 to k - 1 do
        st.sent <- st.sent + 1;
        st.instrs <- st.instrs + inst.totals.(i);
        st.max_instrs <- max st.max_instrs inst.totals.(i);
        count_final st inst.finals.(i);
        inst.ring.(i) <- dummy_packet
      done;
      pos := !pos + k
    done);
  st

let pp_final fmt = function
  | Egress e -> Format.fprintf fmt "egress %d" e
  | Dropped_at n -> Format.fprintf fmt "dropped at node %d" n
  | Crashed_at (n, c) ->
    Format.fprintf fmt "CRASH at node %d: %a" n Ir.pp_crash c
  | Hop_budget_at n ->
    Format.fprintf fmt "hop budget exceeded at node %d" n

let pp_run fmt r =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun s ->
      Format.fprintf fmt "%-16s %a (%d instrs)@," s.element Ir.pp_outcome
        s.outcome s.instrs)
    r.steps;
  Format.fprintf fmt "=> %a, %d instructions total@]" pp_final r.final
    r.total_instrs
