(** Per-pipeline transfer relations, composed across the fabric.

    The verifier's Step-2 machinery composes element summaries along the
    paths of {e one} pipeline. This module lifts that to a fabric: a
    depth-first enumeration walks element segments across link
    crossings, building one {!Vdp_verif.Compose} state per fabric-level
    path with position tags ["p<pipe>n<node>"] ({!Fabric.tag}), so all
    of Compose — headroom accounting, static-slice deps, the kv event
    trace, instruction intervals — works unchanged over the composed
    fabric.

    Two things are new relative to single-pipeline Step 2:

    - {b Boot semantics} ({!ground_boot}): relational properties like
      isolation are claims about runs {e from boot state}, not from an
      adversarially chosen store state. For every private-store read in
      a path's kv trace we assert that the value returned is exactly
      what the chain of earlier writes (else the declared initial
      contents) produces for that key. Static stores keep the engine's
      treatment: concrete-key reads are baked at summary time,
      symbolic-key reads stay adversarial — sound for [Proved], and any
      spurious breach dies in mandatory concrete replay.

    - {b Multi-packet composition} ({!query_terms} with [~prime]): a
      second ("prime") packet's path is composed as usual and then all
      its variables are renamed behind {!prime_prefix}; concatenating
      its (renamed) kv events in front of the attack packet's and
      grounding the combined trace couples the two runs through the
      store — exactly "the NAT answers inbound flows only after an
      outbound packet has primed the mapping". *)

module B = Vdp_bitvec.Bitvec
module T = Vdp_smt.Term
module Model = Vdp_smt.Model
module S = Vdp_symbex.Sstate
module Engine = Vdp_symbex.Engine
module Ir = Vdp_ir.Types
module Pipeline = Vdp_click.Pipeline
module Element = Vdp_click.Element
module Compose = Vdp_verif.Compose
module Summaries = Vdp_verif.Summaries
module Staleness = Vdp_verif.Staleness

type t = {
  fab : Fabric.t;
  summaries : Summaries.entry array array;  (** per pipe, per node *)
  config : Engine.config;
}

(** Summarize every pipeline of the fabric (Step 1, shared cache). *)
let build ?pool ?(config = Engine.default_config) (fab : Fabric.t) =
  Staleness.install ();
  {
    fab;
    summaries =
      Array.map
        (fun (p : Fabric.pipe) ->
          Summaries.of_pipeline ?pool ~config p.Fabric.p_pl)
        fab.Fabric.pipes;
    config;
  }

let any_incomplete rel =
  Array.exists
    (fun per_pipe ->
      Array.exists
        (fun (e : Summaries.entry) ->
          e.Summaries.result.Engine.incomplete > 0)
        per_pipe)
    rel.summaries

(* {1 Fabric path enumeration} *)

type fend =
  | E_egress of int * int  (** (pipe, egress index), unlinked *)
  | E_drop of int * int  (** (pipe, node) *)
  | E_crash of int * int * Engine.crash

type fpath = {
  fp_trail : (int * int) list;  (** (pipe, node) in order *)
  fp_end : fend;
  fp_st : Compose.t;
}

exception Path_budget

let set_port st port =
  {
    st with
    Compose.meta =
      (Ir.Port, T.bv_int ~width:8 port)
      :: List.remove_assoc Ir.Port st.Compose.meta;
  }

(* {2 Disjunctive sibling merging}

   Per-element segment summaries are {e parse-variant} heavy: an
   IPFilter expands to thousands of segments, almost all of which are
   pure filters — same (empty) byte effects, same outcome port,
   different path condition. Composing such elements across a fabric
   segment-by-segment multiplies those variants into an intractable
   path product (the repository already skips the instruction bound on
   the firewall example for exactly this reason). The fabric
   enumeration therefore merges, after every element application, the
   sibling successor states that differ {e only} in their path
   condition: one successor per (destination, effect shape), its
   condition the disjunction of the siblings'. Effect-shape equality
   is detected by physical sharing — a pure segment's successor reuses
   the parent's override table entries, length term, metadata and kv
   trace, so the pointer checks below are exact for the states worth
   merging and merely conservative for the rest (an unmerged sibling
   is never wrong, only slower). Instruction intervals widen to the
   group's envelope, which keeps hop/instruction bounds sound. *)

let rec phys_list_equal a b =
  match (a, b) with
  | [], [] -> true
  | x :: a', y :: b' -> x == y && phys_list_equal a' b'
  | _ -> false

let overrides_shared a b =
  Hashtbl.length a = Hashtbl.length b
  && (try
        Hashtbl.iter
          (fun j t ->
            match Hashtbl.find_opt b j with
            | Some t' when t' == t -> ()
            | _ -> raise Exit)
          a;
        true
      with Exit -> false)

let same_shape (a : Compose.t) (b : Compose.t) =
  a.Compose.background = b.Compose.background
  && a.Compose.len == b.Compose.len
  && phys_list_equal a.Compose.meta b.Compose.meta
  && a.Compose.kv_trace == b.Compose.kv_trace
  && a.Compose.summarized = b.Compose.summarized
  && a.Compose.headroom = b.Compose.headroom
  && a.Compose.headroom_short = b.Compose.headroom_short
  && phys_list_equal a.Compose.static_deps b.Compose.static_deps
  && overrides_shared a.Compose.overrides b.Compose.overrides

let rec drop_exactly n l =
  if n = 0 then l else drop_exactly (n - 1) (List.tl l)

let merge_group (group : Compose.t list) =
  match group with
  | [ st ] -> st
  | [] -> assert false
  | st0 :: _ ->
    let disj =
      T.or_
        (List.map (fun (s : Compose.t) -> T.and_ s.Compose.new_cond) group)
    in
    (* Siblings share the pre-apply condition suffix; peel this
       sibling's contribution off to recover it. *)
    let parent_cond =
      drop_exactly (List.length st0.Compose.new_cond) st0.Compose.cond
    in
    {
      st0 with
      Compose.cond = disj :: parent_cond;
      new_cond = [ disj ];
      instr_lo =
        List.fold_left
          (fun a (s : Compose.t) -> min a s.Compose.instr_lo)
          max_int group;
      instr_hi =
        List.fold_left
          (fun a (s : Compose.t) -> max a s.Compose.instr_hi)
          0 group;
    }

(* Group [(key, st)] pairs by key (with [=]) preserving first-seen
   order, then merge each key's states into shape classes. *)
let merge_by_key pairs =
  let keys = ref [] in
  List.iter
    (fun (key, _) -> if not (List.mem key !keys) then keys := key :: !keys)
    pairs;
  List.rev_map
    (fun key ->
      let sts =
        List.rev
          (List.filter_map
             (fun (k, st) -> if k = key then Some st else None)
             pairs)
      in
      let groups = ref [] in
      List.iter
        (fun st ->
          match
            List.find_opt (fun (rep, _) -> same_shape rep st) !groups
          with
          | Some (_, members) -> members := st :: !members
          | None -> groups := (st, ref [ st ]) :: !groups)
        sts;
      (key, List.rev_map (fun (_, members) -> merge_group !members) !groups))
    !keys

(** Enumerate fabric paths from [ingress = (pipe, in_port)] depth-first,
    calling [k] on every completed path whose composite state the
    interval filter cannot refute. Sibling states that differ only in
    path condition are merged disjunctively at every hop (see above),
    so one reported path may cover many parse variants. Raises
    {!Path_budget} beyond [max_paths] composite states. *)
let enumerate rel ~ingress:(pi0, in_port) ~assume ?(max_paths = 200_000) k =
  let paths = ref 0 in
  let rec visit pi node crossings trail (st : Compose.t) =
    incr paths;
    if !paths > max_paths then raise Path_budget;
    let p = rel.fab.Fabric.pipes.(pi) in
    let nodes = Pipeline.nodes p.Fabric.p_pl in
    let tag = Fabric.tag ~pipe:pi ~node in
    let entry = rel.summaries.(pi).(node) in
    let deps = entry.Summaries.result.Engine.static_deps in
    let trail = (pi, node) :: trail in
    let finished = ref [] in
    let goto = ref [] in
    List.iter
      (fun (seg : Engine.segment) ->
        let st' = Compose.apply ~deps st ~tag seg in
        if Compose.plausible st' then
          if st'.Compose.headroom_short then
            finished :=
              (E_crash (pi, node, Engine.C_headroom), st') :: !finished
          else
            match seg.Engine.outcome with
            | Engine.O_crash c ->
              finished := (E_crash (pi, node, c), st') :: !finished
            | Engine.O_drop ->
              finished := (E_drop (pi, node), st') :: !finished
            | Engine.O_emit port -> (
              match nodes.(node).Pipeline.outputs.(port) with
              | Some (dst, dport) ->
                (* The runtime rewrites the port annotation on every
                   edge; track it so elements branching on the input
                   port (the NAT gateway) compose exactly. *)
                goto := ((pi, dst, dport, crossings), st') :: !goto
              | None -> (
                match
                  Pipeline.egress_index p.Fabric.p_pl ~node ~port
                with
                | None -> ()  (* unreachable: unwired => egress *)
                | Some e -> (
                  match Hashtbl.find_opt rel.fab.Fabric.links (pi, e) with
                  | Some (dpi, dport) ->
                    if crossings < Fabric.max_crossings then
                      goto :=
                        ( ( dpi,
                            Pipeline.entry
                              rel.fab.Fabric.pipes.(dpi).Fabric.p_pl,
                            dport,
                            crossings + 1 ),
                          st' )
                        :: !goto
                  | None ->
                    finished := (E_egress (pi, e), st') :: !finished))))
      entry.Summaries.result.Engine.segments;
    List.iter
      (fun (fe, sts) ->
        List.iter
          (fun st' ->
            k { fp_trail = List.rev trail; fp_end = fe; fp_st = st' })
          sts)
      (merge_by_key (List.rev !finished));
    List.iter
      (fun ((dpi, dnode, dport, cr), sts) ->
        List.iter
          (fun st' -> visit dpi dnode cr trail (set_port st' dport))
          sts)
      (merge_by_key (List.rev !goto))
  in
  let st0 =
    Compose.initial ~assume
      ~meta:[ (Ir.Port, T.bv_int ~width:8 in_port) ]
      ~headroom:rel.config.Engine.headroom ()
  in
  visit pi0
    (Pipeline.entry rel.fab.Fabric.pipes.(pi0).Fabric.p_pl)
    0 [] st0;
  !paths

(* {1 Boot-state grounding} *)

let store_decl rel tag store =
  match Fabric.parse_tag tag with
  | None -> None
  | Some (pi, node) ->
    let prog =
      (Pipeline.node rel.fab.Fabric.pipes.(pi).Fabric.p_pl node)
        .Pipeline.element
        .Element.program
    in
    List.find_opt
      (fun (d : Ir.store_decl) -> d.Ir.store_name = store)
      prog.Ir.stores

(* Initial contents of a private store, as an ITE over the declared
   init entries bottoming out at the default. *)
let init_term (d : Ir.store_decl) key =
  Vdp_ir.Static_data.fold
    (fun k v acc -> T.ite (T.eq key (T.bv k)) (T.bv v) acc)
    d.Ir.init
    (T.bv d.Ir.default)

(** Boot-semantics constraints for a kv event list ({e oldest first}):
    every private-store read returns what the chain of earlier writes
    to the same store instance — else the declared initial contents —
    holds at its key. *)
let ground_boot rel (events : (string * S.kv_event) list) : T.t list =
  (* (tag, store) -> conditional writes so far, oldest first *)
  let written : (string * string, (T.t * T.t * T.t) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let writes_of inst =
    match Hashtbl.find_opt written inst with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.add written inst r;
      r
  in
  let out = ref [] in
  List.iter
    (fun (tag, ev) ->
      match ev with
      | S.Kv_write { store; key; value; cond } ->
        let r = writes_of (tag, store) in
        r := (cond, key, value) :: !r
      | S.Kv_read { store; key; value; cond } -> (
        match store_decl rel tag store with
        | Some d when d.Ir.kind = Ir.Private ->
          let base = init_term d key in
          let chain =
            List.fold_left
              (fun acc (wc, wk, wv) ->
                T.ite (T.and2 wc (T.eq wk key)) wv acc)
              base
              (List.rev !(writes_of (tag, store)))
          in
          out := T.implies cond (T.eq value chain) :: !out
        | _ -> ()))
    events;
  List.rev !out

(* {1 Two-packet (primed) queries} *)

(** Every variable of the prime packet's composed path is renamed
    behind this prefix; no engine- or composer-minted name starts with
    a quote, so the two runs' variables cannot collide. *)
let prime_prefix = "'"

let rename_event ren = function
  | S.Kv_read { store; key; value; cond } ->
    S.Kv_read
      { store; key = ren key; value = ren value; cond = ren cond }
  | S.Kv_write { store; key; value; cond } ->
    S.Kv_write
      { store; key = ren key; value = ren value; cond = ren cond }

(* Store instances a path reads / conditionally writes (private only —
   the coupling between packets runs through private state). *)
let reads_of rel (fp : fpath) =
  List.filter_map
    (fun (tag, ev) ->
      match ev with
      | S.Kv_read { store; _ } -> (
        match store_decl rel tag store with
        | Some d when d.Ir.kind = Ir.Private -> Some (tag, store)
        | _ -> None)
      | _ -> None)
    fp.fp_st.Compose.kv_trace

let writes_of_path (fp : fpath) =
  List.filter_map
    (fun (tag, ev) ->
      match ev with
      | S.Kv_write { store; _ } -> Some (tag, store)
      | _ -> None)
    fp.fp_st.Compose.kv_trace

(** Can [prime] influence [attack] at all? A prime path is only worth
    composing when it writes a store instance the attack path reads. *)
let couples rel ~prime ~attack =
  let reads = reads_of rel attack in
  List.exists (fun w -> List.mem w reads) (writes_of_path prime)

(** The full solver query for [attack] (optionally primed): path
    constraints plus boot grounding over the combined kv trace.
    Also returns the static-slice deps for cache invalidation. *)
let query_terms rel ?prime ~(attack : fpath) () :
    T.t list * (int * B.t) list =
  let attack_events = List.rev attack.fp_st.Compose.kv_trace in
  match prime with
  | None ->
    ( ground_boot rel attack_events @ attack.fp_st.Compose.cond,
      attack.fp_st.Compose.static_deps )
  | Some (pr : fpath) ->
    let memo = Hashtbl.create 64 in
    let ren t =
      T.substitute_vars ~memo
        (fun name sort ->
          match sort with
          | Vdp_smt.Sort.Bool -> Some (T.bool_var (prime_prefix ^ name))
          | Vdp_smt.Sort.Bv w -> Some (T.var (prime_prefix ^ name) w))
        t
    in
    let pr_cond = List.map ren pr.fp_st.Compose.cond in
    let pr_events =
      List.rev_map
        (fun (tag, ev) -> (tag, rename_event ren ev))
        pr.fp_st.Compose.kv_trace
    in
    let deps =
      pr.fp_st.Compose.static_deps
      @ List.filter
          (fun d -> not (List.mem d pr.fp_st.Compose.static_deps))
          attack.fp_st.Compose.static_deps
    in
    ( ground_boot rel (pr_events @ attack_events)
      @ pr_cond @ attack.fp_st.Compose.cond,
      deps )

(** The prime packet's bytes under a model of a primed query — the
    composite witness is (this packet first, then the attack packet
    from {!Vdp_verif.Compose.witness_packet}). *)
let prime_witness_packet (m : Model.t) ~max_len =
  let pref n = prime_prefix ^ n in
  let len =
    match Model.bv_opt m (pref S.len_var) with
    | Some v -> min (B.to_int_trunc v) max_len
    | None -> 0
  in
  let data =
    String.init len (fun j ->
        match Model.bv_opt m (pref (S.byte_var j)) with
        | Some v -> Char.chr (B.to_int_trunc v land 0xff)
        | None -> '\000')
  in
  Vdp_packet.Packet.create data
