lib/click/config.ml: Buffer Hashtbl List Option Pipeline Printf Registry String
