lib/click/el_basic.ml: El_util Vdp_bitvec Vdp_ir
