lib/symbex/sstate.ml: Array Hashtbl List Printf String Vdp_bitvec Vdp_ir Vdp_smt
