test/test_verif.ml: Alcotest List Option QCheck QCheck_alcotest Random String Vdp_bitvec Vdp_click Vdp_ir Vdp_packet Vdp_smt Vdp_symbex Vdp_verif
