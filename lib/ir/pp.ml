(** Human-readable program listings (for reports and debugging). *)

module B = Vdp_bitvec.Bitvec
open Types

let rvalue fmt = function
  | Const v -> Format.pp_print_string fmt (B.to_string_hex v)
  | Reg r -> Format.fprintf fmt "r%d" r

let unop_name = function Not -> "not" | Neg -> "neg"

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Udiv -> "udiv"
  | Urem -> "urem" | Sdiv -> "sdiv" | Srem -> "srem" | And -> "and"
  | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Lshr -> "lshr"
  | Ashr -> "ashr"

let cmpop_name = function
  | Eq -> "eq" | Ne -> "ne" | Ult -> "ult" | Ule -> "ule"
  | Slt -> "slt" | Sle -> "sle"

let meta_name = function
  | Port -> "port" | Color -> "color" | W0 -> "w0" | W1 -> "w1"

let rhs fmt = function
  | Move v -> rvalue fmt v
  | Unop (op, v) -> Format.fprintf fmt "%s %a" (unop_name op) rvalue v
  | Binop (op, a, b) ->
    Format.fprintf fmt "%s %a, %a" (binop_name op) rvalue a rvalue b
  | Cmp (op, a, b) ->
    Format.fprintf fmt "%s %a, %a" (cmpop_name op) rvalue a rvalue b
  | Select (c, a, b) ->
    Format.fprintf fmt "select %a, %a, %a" rvalue c rvalue a rvalue b
  | Extract (hi, lo, v) -> Format.fprintf fmt "%a[%d:%d]" rvalue v hi lo
  | Concat (a, b) -> Format.fprintf fmt "concat %a, %a" rvalue a rvalue b
  | Zext (w, v) -> Format.fprintf fmt "zext%d %a" w rvalue v
  | Sext (w, v) -> Format.fprintf fmt "sext%d %a" w rvalue v

let instr fmt = function
  | Assign (r, rh) -> Format.fprintf fmt "r%d := %a" r rhs rh
  | Load (r, off, n) ->
    Format.fprintf fmt "r%d := pkt[%a .. +%d]" r rvalue off n
  | Store (off, v, n) ->
    Format.fprintf fmt "pkt[%a .. +%d] := %a" rvalue off n rvalue v
  | Load_len r -> Format.fprintf fmt "r%d := pkt.len" r
  | Pull n -> Format.fprintf fmt "pull %d" n
  | Push n -> Format.fprintf fmt "push %d" n
  | Take v -> Format.fprintf fmt "take %a" rvalue v
  | Meta_get (r, m) -> Format.fprintf fmt "r%d := meta.%s" r (meta_name m)
  | Meta_set (m, v) -> Format.fprintf fmt "meta.%s := %a" (meta_name m) rvalue v
  | Kv_read (r, s, k) -> Format.fprintf fmt "r%d := %s[%a]" r s rvalue k
  | Kv_write (s, k, v) -> Format.fprintf fmt "%s[%a] := %a" s rvalue k rvalue v
  | Assert (c, m) -> Format.fprintf fmt "assert %a  ; %s" rvalue c m

let terminator fmt = function
  | Goto l -> Format.fprintf fmt "goto b%d" l
  | Branch (c, t, e) -> Format.fprintf fmt "br %a ? b%d : b%d" rvalue c t e
  | Emit p -> Format.fprintf fmt "emit %d" p
  | Drop -> Format.pp_print_string fmt "drop"
  | Abort m -> Format.fprintf fmt "abort %S" m

let program fmt (p : program) =
  Format.fprintf fmt "@[<v>program %s (%d regs, %d blocks, %d ports)@,"
    p.name (Array.length p.reg_widths) (Array.length p.blocks) p.nports;
  List.iter
    (fun d ->
      Format.fprintf fmt "store %s : bv%d -> bv%d (%s, %d entries)@,"
        d.store_name d.key_width d.val_width
        (match d.kind with Static -> "static" | Private -> "private")
        (Static_data.length d.init))
    p.stores;
  Array.iteri
    (fun i blk ->
      Format.fprintf fmt "b%d:@," i;
      List.iter (fun ins -> Format.fprintf fmt "  %a@," instr ins) blk.instrs;
      Format.fprintf fmt "  %a@," terminator blk.term)
    p.blocks;
  Format.fprintf fmt "@]"

let program_to_string p = Format.asprintf "%a" program p
